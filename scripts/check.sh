#!/usr/bin/env bash
# Full local gate: the tier-1 suite under the default preset, the
# sanitize-labeled suites rebuilt and rerun under asan-ubsan, and the
# tsan-labeled suites (the host execution engine's concurrency tests) under
# thread sanitizer with the worker pool active. Escape-hatch reruns cover
# the barrier sync mode, a forced 2-node topology, the compressed-wire
# codec layer (CAGMRES_COMPRESS), and the ILU preconditioner suite under
# tsan in both sync modes. Run from anywhere; everything happens
# relative to the repo root.
#
#   --bench-smoke   additionally run the wall-clock bench at tiny sizes and
#                   fail unless it produces well-formed BENCH_wallclock.json
#   --chaos-smoke   additionally run the chaos campaigns (single-node and
#                   --nodes=2 multi-node) under the tsan preset; fast
#                   default-build campaigns always run as part of the gate
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke=0
chaos_smoke=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --chaos-smoke) chaos_smoke=1 ;;
    *) echo "unknown argument: $arg (known: --bench-smoke, --chaos-smoke)" >&2; exit 2 ;;
  esac
done

echo "== default preset: configure + build + full test suite =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

echo
echo "== asan-ubsan preset: configure + build + sanitize-labeled tests =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j
ctest --preset asan-ubsan -j

echo
echo "== tsan preset: configure + build + tsan-labeled tests (2 workers) =="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset tsan -j

echo
echo "== barrier escape hatch: sim/ortho/fault suites, CAGMRES_SYNC_MODE=barrier =="
# Event sync is the default now (DESIGN §10); rerun the suites that exercise
# the runtime, the orthogonalization schedules, and the fault scenarios with
# the barrier escape hatch forced on and the host pool active, so the
# non-default mode keeps CI coverage and the hatch stays usable.
# -R before -j: a bare -j greedily consumes the next token as its value.
CAGMRES_SYNC_MODE=barrier CAGMRES_HOST_WORKERS=2 \
  ctest --preset default -R '^(sim_test|ortho_test|faults_test|chaos_test)$' -j
CAGMRES_SYNC_MODE=barrier CAGMRES_HOST_WORKERS=2 \
  ctest --preset tsan -j

echo
echo "== multi-node escape hatch: ortho/mpk suites, CAGMRES_TOPOLOGY=2 =="
# Force a 2-node topology on the suites that exercise the hierarchical
# two-stage reductions and the split halo exchange (DESIGN §13), event mode
# with the host pool, then again under tsan: the node-leader closures and
# per-side pack events must stay race-free with workers draining streams.
CAGMRES_TOPOLOGY=2 CAGMRES_HOST_WORKERS=2 \
  ctest --preset default -R '^(ortho_test|mpk_test)$' -j
CAGMRES_TOPOLOGY=2 CAGMRES_HOST_WORKERS=2 \
  ctest --preset tsan -R '^(ortho_test|mpk_test)$' -j

echo
echo "== compressed-wire escape hatch: mpk/ortho/fault suites, CAGMRES_COMPRESS =="
# Arm the transfer codec layer (DESIGN §14) on the suites that drive the
# halo exchange, the reduction tree, and the checkpoint/recovery paths, so
# the quantized wire formats keep CI coverage under the default build and
# under tsan (codec passes run on device streams the worker pool drains).
CAGMRES_COMPRESS=halo=fp32,reduce=fp32 CAGMRES_HOST_WORKERS=2 \
  ctest --preset default -R '^(mpk_test|ortho_test|faults_test)$' -j
CAGMRES_COMPRESS=halo=fp32,reduce=fp32 CAGMRES_HOST_WORKERS=2 \
  ctest --preset tsan -j

echo
echo "== precond escape hatch: precond suite, both sync modes, tsan =="
# The ILU(k) handle subsystem (DESIGN §15): the level-scheduled trisolves
# run one OpenMP-parallel kernel per level on device streams the worker
# pool drains, so the suite must stay race-free under tsan with 2 workers
# in both sync modes — and bit-stable, which the suite itself asserts.
CAGMRES_HOST_WORKERS=2 \
  ctest --preset tsan -L precond -j
CAGMRES_SYNC_MODE=barrier CAGMRES_HOST_WORKERS=2 \
  ctest --preset tsan -L precond -j

echo
echo "== chaos gate: 64-schedule campaign, both sync modes, default build =="
# The invariant oracle (DESIGN §11): every randomized fault schedule must
# end converged, cleanly errored, or watchdog-tripped, replay bit-identically,
# and keep zero-fault schedules byte-identical to the baseline.
./build/tools/chaos --schedules=64 --seed=7 --modes=both

echo
echo "== chaos gate: 64-schedule multi-node campaign (--nodes=2) =="
# Node-scoped schedules (atomic node kills, inter-node link rates, node
# corrupt storms) against the hierarchical partner-checkpoint recovery
# ladder (DESIGN §12).
./build/tools/chaos --schedules=64 --seed=7 --modes=both --nodes=2

echo
echo "== chaos gate: 64-schedule multi-node campaign with compressed wires =="
# The invariant oracle must hold with quantized transfers armed: codec
# passes reprice every retransmission and shrink every checkpoint shard,
# and none of that may open a window the fault schedules can exploit.
CAGMRES_COMPRESS=halo=fp32,reduce=fp32 \
  ./build/tools/chaos --schedules=64 --seed=7 --modes=both --nodes=2

echo
echo "== chaos gate: 64-schedule multi-node campaign, preconditioned drivers =="
# Widen the alternation with the right-preconditioned ILU drivers
# (--precond): kills and corrupt storms land inside preconditioner setup
# and the level-scheduled trisolves, and the handle's post-repartition
# rebuilds must keep same-seed replays bit-identical.
./build/tools/chaos --schedules=64 --seed=7 --modes=both --nodes=2 \
  --precond=ilu:k=1

if [[ "$chaos_smoke" == 1 ]]; then
  echo
  echo "== chaos smoke: campaigns under the tsan preset =="
  ./build-tsan/tools/chaos --schedules=64 --seed=7 --modes=both
  ./build-tsan/tools/chaos --schedules=32 --seed=7 --modes=both --nodes=2
fi

if [[ "$bench_smoke" == 1 ]]; then
  echo
  echo "== bench smoke: tiny wall-clock run must emit well-formed JSON =="
  out=build/BENCH_wallclock.smoke.json
  rm -f "$out"
  ./build/bench/wallclock --smoke --out "$out"
  [[ -s "$out" ]] || { echo "bench smoke: $out missing or empty" >&2; exit 1; }
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("solver_sweep", "event_overlap", "scale_sweep", "hier_reduce",
            "node_kill_recovery", "compress", "precond", "gram_microbench",
            "nproc"):
    if key not in doc:
        sys.exit(f"bench smoke: JSON missing key {key!r}")
if not doc["solver_sweep"]:
    sys.exit("bench smoke: empty solver_sweep")
for row in doc["solver_sweep"]:
    if not row.get("identical_to_serial"):
        sys.exit(f"bench smoke: results diverged across workers: {row}")
ov = doc["event_overlap"]
if not ov.get("identical_results"):
    sys.exit(f"bench smoke: event/barrier results diverged: {ov}")
if not doc["hier_reduce"]:
    sys.exit("bench smoke: empty hier_reduce")
for row in doc["hier_reduce"]:
    if not row.get("identical_results"):
        sys.exit(f"bench smoke: hier/flat results diverged: {row}")
    if not row.get("hier_cheaper"):
        sys.exit(f"bench smoke: hierarchical fold not cheaper: {row}")
    if not row.get("at_most_one_msg_per_node"):
        sys.exit(f"bench smoke: >1 inter-node msg per node per reduction: {row}")
if ov["event_sim_seconds"] > 1.10 * ov["barrier_sim_seconds"]:
    sys.exit(
        "bench smoke: event-sync charged time regressed >10% vs barrier: "
        f"{ov['event_sim_seconds']:.6f}s vs {ov['barrier_sim_seconds']:.6f}s"
    )
print("bench smoke: JSON OK")
EOF
fi

echo
echo "All checks passed."
