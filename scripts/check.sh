#!/usr/bin/env bash
# Full local gate: the tier-1 suite under the default preset, then the
# sanitize-labeled suites rebuilt and rerun under asan-ubsan. Run from
# anywhere; everything happens relative to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== default preset: configure + build + full test suite =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

echo
echo "== asan-ubsan preset: configure + build + sanitize-labeled tests =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j
ctest --preset asan-ubsan -j

echo
echo "All checks passed."
