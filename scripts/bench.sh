#!/usr/bin/env bash
# Wall-clock bench runner: builds the default preset and runs the host-engine
# worker sweep + blocked-BLAS microbench, writing BENCH_wallclock.json at the
# repo root. Extra arguments pass straight through to the bench binary
# (e.g. --matrix=cant --scale=1.0 --ng=2); see `wallclock --help`.
#
# Note: the worker-sweep speedup needs real cores. On a single-core machine
# the sweep still runs (and still checks result identity across worker
# counts) but can show no wall-clock win; "nproc" is recorded in the JSON so
# readers can tell.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j --target wallclock

./build/bench/wallclock --out BENCH_wallclock.json "$@"

echo
echo "Wrote $(pwd)/BENCH_wallclock.json"
