#!/usr/bin/env bash
# Wall-clock bench runner: builds the default preset and runs the host-engine
# worker sweep + event-overlap comparison + blocked-BLAS microbench, writing
# BENCH_wallclock.json at the repo root. Extra arguments pass straight
# through to the bench binary (e.g. --matrix=cant --scale=1.0 --ng=2); see
# `wallclock --help`.
#
#   --compare   after the run, gate on the event_overlap section: fail if
#               event-sync charged time exceeds the barrier-sync baseline at
#               all (event mode is the fast path and must never lose), or if
#               the two modes' results diverged. Also gates the scale_sweep
#               and node_kill_recovery sections: every sweep point must have
#               run, and partner checkpointing must beat the flat
#               host-checkpoint restart at every ng >= 16 shape present.
#               The hier_reduce section gates too: the hierarchical
#               two-stage fold must charge strictly less than the flat
#               per-device fold at every ng >= 16 shape, send at most one
#               inter-node message per node per reduction, and match the
#               flat results bitwise.
#
# Note: the worker-sweep speedup needs real cores. On a single-core machine
# the sweep still runs (and still checks result identity across worker
# counts) but can show no wall-clock win; "nproc" is recorded in the JSON so
# readers can tell.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
passthrough=()
for arg in "$@"; do
  case "$arg" in
    --compare) compare=1 ;;
    *) passthrough+=("$arg") ;;
  esac
done

cmake --preset default
cmake --build --preset default -j --target wallclock

./build/bench/wallclock --out BENCH_wallclock.json ${passthrough[@]+"${passthrough[@]}"}

echo
echo "Wrote $(pwd)/BENCH_wallclock.json"

if [[ "$compare" == 1 ]]; then
  echo
  echo "== compare: event-sync vs barrier-sync charged time =="
  python3 - BENCH_wallclock.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
ov = doc.get("event_overlap")
if not ov:
    sys.exit("compare: JSON has no event_overlap section")
if not ov.get("identical_results"):
    sys.exit(f"compare: event and barrier modes produced different x: {ov}")
barrier = ov["barrier_sim_seconds"]
event = ov["event_sim_seconds"]
if event > barrier:
    sys.exit(
        "compare: event-sync charged time lost to barrier-sync: "
        f"{event:.6f}s vs {barrier:.6f}s"
    )
print(
    f"compare OK: barrier {barrier:.6f}s, event {event:.6f}s "
    f"(speedup {barrier / event:.4f}x, results identical)"
)

sweep = doc.get("scale_sweep")
if not sweep:
    sys.exit("compare: JSON has no scale_sweep section")
kills = doc.get("node_kill_recovery")
if kills is None:
    sys.exit("compare: JSON has no node_kill_recovery section")
for row in kills:
    # Convergence is not gated: g3_circuit runs out its iteration budget at
    # full size with or without faults (see ROADMAP's preconditioning item).
    # The gate is the charged-cost story: partner restore must win at scale.
    if row["ng"] >= 16 and not row.get("partner_cheaper"):
        sys.exit(
            "compare: partner checkpoint lost to host-checkpoint restart "
            f"at ng={row['ng']}: partner {row['partner_sim_seconds']:.6f}s "
            f"vs host {row['host_sim_seconds']:.6f}s"
        )
for row in kills:
    print(
        f"compare OK: ng={row['ng']} node-kill partner "
        f"{row['partner_sim_seconds']:.6f}s vs host "
        f"{row['host_sim_seconds']:.6f}s "
        f"(partner_cheaper={row['partner_cheaper']})"
    )
print(f"compare OK: scale_sweep covers {len(sweep)} (ng, nodes) points")

hier = doc.get("hier_reduce")
if not hier:
    sys.exit("compare: JSON has no hier_reduce section")
for row in hier:
    if not row.get("identical_results"):
        sys.exit(f"compare: hier and flat folds produced different x: {row}")
    if not row.get("at_most_one_msg_per_node"):
        sys.exit(
            "compare: reduction sent more than one inter-node message per "
            f"node: {row}"
        )
    if row["ng"] >= 16 and not row.get("hier_cheaper"):
        sys.exit(
            "compare: hierarchical fold lost to flat fold at "
            f"ng={row['ng']}: hier {row['hier_sim_seconds']:.6f}s vs "
            f"flat {row['flat_sim_seconds']:.6f}s"
        )
    print(
        f"compare OK: ng={row['ng']} ({row['nodes']} nodes) hier "
        f"{row['hier_sim_seconds']:.6f}s vs flat "
        f"{row['flat_sim_seconds']:.6f}s "
        f"(speedup {row['speedup']:.4f}x, "
        f"reduction net msgs {row['flat_reduction_net_msgs']} -> "
        f"{row['hier_reduction_net_msgs']})"
    )
EOF
fi
