#!/usr/bin/env bash
# Wall-clock bench runner: builds the default preset and runs the host-engine
# worker sweep + event-overlap comparison + blocked-BLAS microbench, writing
# BENCH_wallclock.json at the repo root. Extra arguments pass straight
# through to the bench binary (e.g. --matrix=cant --scale=1.0 --ng=2); see
# `wallclock --help`.
#
#   --compare   after the run, gate on the event_overlap section: fail if
#               event-sync charged time exceeds the barrier-sync baseline at
#               all (event mode is the fast path and must never lose), or if
#               the two modes' results diverged. Also gates the scale_sweep
#               and node_kill_recovery sections: every sweep point must have
#               run, and partner checkpointing must beat the flat
#               host-checkpoint restart at every ng >= 16 shape present.
#               The hier_reduce section gates too: the hierarchical
#               two-stage fold must charge strictly less than the flat
#               per-device fold at every ng >= 16 shape, send at most one
#               inter-node message per node per reduction, and match the
#               flat results bitwise. The compress section gates on every
#               coded run shipping strictly fewer net bytes than the
#               uncoded one while staying within the convergence health
#               budget (a coded run may not unconverge a converging shape).
#               The precond section gates on the ILU(k) subsystem earning
#               its keep: on every shape whose unpreconditioned run
#               exhausted the iteration budget, some ILU row must converge
#               with strictly fewer iterations; at least one capped shape
#               must exist at all, and on at least one of them the best
#               ILU row must also charge a lower total (setup + solve)
#               than the capped run.
#               A JSON missing a section (e.g. an older baseline written
#               before that section existed) only warns; the remaining
#               gates still run.
#
# Note: the worker-sweep speedup needs real cores. On a single-core machine
# the sweep still runs (and still checks result identity across worker
# counts) but can show no wall-clock win; "nproc" is recorded in the JSON so
# readers can tell.
set -euo pipefail
cd "$(dirname "$0")/.."

compare=0
passthrough=()
for arg in "$@"; do
  case "$arg" in
    --compare) compare=1 ;;
    *) passthrough+=("$arg") ;;
  esac
done

cmake --preset default
cmake --build --preset default -j --target wallclock

./build/bench/wallclock --out BENCH_wallclock.json ${passthrough[@]+"${passthrough[@]}"}

echo
echo "Wrote $(pwd)/BENCH_wallclock.json"

if [[ "$compare" == 1 ]]; then
  echo
  echo "== compare: event-sync vs barrier-sync charged time =="
  python3 - BENCH_wallclock.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)

def warn_missing(name):
    # Older baselines predate some sections; a missing one is a warning,
    # not a gate failure, so comparisons against old JSONs keep working.
    print(f"compare WARNING: JSON has no {name} section (old baseline?)")

ov = doc.get("event_overlap")
if not ov:
    warn_missing("event_overlap")
    ov = None
if ov and not ov.get("identical_results"):
    sys.exit(f"compare: event and barrier modes produced different x: {ov}")
if ov:
    barrier = ov["barrier_sim_seconds"]
    event = ov["event_sim_seconds"]
    if event > barrier:
        sys.exit(
            "compare: event-sync charged time lost to barrier-sync: "
            f"{event:.6f}s vs {barrier:.6f}s"
        )
    print(
        f"compare OK: barrier {barrier:.6f}s, event {event:.6f}s "
        f"(speedup {barrier / event:.4f}x, results identical)"
    )

sweep = doc.get("scale_sweep")
if not sweep:
    warn_missing("scale_sweep")
kills = doc.get("node_kill_recovery")
if kills is None:
    warn_missing("node_kill_recovery")
    kills = []
for row in kills:
    # Convergence is not gated: g3_circuit runs out its iteration budget at
    # full size with or without faults (see ROADMAP's preconditioning item).
    # The gate is the charged-cost story: partner restore must win at scale.
    if row["ng"] >= 16 and not row.get("partner_cheaper"):
        sys.exit(
            "compare: partner checkpoint lost to host-checkpoint restart "
            f"at ng={row['ng']}: partner {row['partner_sim_seconds']:.6f}s "
            f"vs host {row['host_sim_seconds']:.6f}s"
        )
for row in kills:
    print(
        f"compare OK: ng={row['ng']} node-kill partner "
        f"{row['partner_sim_seconds']:.6f}s vs host "
        f"{row['host_sim_seconds']:.6f}s "
        f"(partner_cheaper={row['partner_cheaper']})"
    )
if sweep:
    print(f"compare OK: scale_sweep covers {len(sweep)} (ng, nodes) points")

hier = doc.get("hier_reduce")
if not hier:
    warn_missing("hier_reduce")
    hier = []
for row in hier:
    if not row.get("identical_results"):
        sys.exit(f"compare: hier and flat folds produced different x: {row}")
    if not row.get("at_most_one_msg_per_node"):
        sys.exit(
            "compare: reduction sent more than one inter-node message per "
            f"node: {row}"
        )
    if row["ng"] >= 16 and not row.get("hier_cheaper"):
        sys.exit(
            "compare: hierarchical fold lost to flat fold at "
            f"ng={row['ng']}: hier {row['hier_sim_seconds']:.6f}s vs "
            f"flat {row['flat_sim_seconds']:.6f}s"
        )
    print(
        f"compare OK: ng={row['ng']} ({row['nodes']} nodes) hier "
        f"{row['hier_sim_seconds']:.6f}s vs flat "
        f"{row['flat_sim_seconds']:.6f}s "
        f"(speedup {row['speedup']:.4f}x, "
        f"reduction net msgs {row['flat_reduction_net_msgs']} -> "
        f"{row['hier_reduction_net_msgs']})"
    )

comp = doc.get("compress")
if not comp:
    warn_missing("compress")
    comp = []
base = next((r for r in comp if r["codec"] == "none"), None)
if comp and base is None:
    sys.exit("compare: compress section has no uncoded baseline row")
for row in comp:
    if row is base:
        continue
    # Every coded run must ship strictly fewer bytes over the inter-node
    # network than the uncoded baseline...
    if row["net_bytes"] >= base["net_bytes"]:
        sys.exit(
            f"compare: codec '{row['codec']}' did not shrink net bytes: "
            f"{row['net_bytes']:.0f} vs {base['net_bytes']:.0f}"
        )
    # ...and stay within the convergence health budget: quantized wires may
    # cost extra restarts, but may not unconverge a converging shape.
    if base["converged"] and not row["converged"]:
        sys.exit(
            f"compare: codec '{row['codec']}' broke convergence "
            f"(baseline converged, coded run did not)"
        )
    print(
        f"compare OK: codec '{row['codec']}' net bytes "
        f"{base['net_bytes']:.3g} -> {row['net_bytes']:.3g} "
        f"(x{base['net_bytes'] / row['net_bytes']:.2f}), "
        f"sim {base['sim_seconds']:.6f}s -> {row['sim_seconds']:.6f}s, "
        f"iterations {base['iterations']} -> {row['iterations']}"
    )

pre = doc.get("precond")
if pre is None:
    warn_missing("precond")
    pre = []
by_matrix = {}
for row in pre:
    by_matrix.setdefault(row["matrix"], {})[row["precond"]] = row
capped = 0
rescued = 0
for matrix, rows in by_matrix.items():
    none = rows.get("none")
    if none is None:
        sys.exit(f"compare: precond section has no 'none' row for {matrix}")
    ilus = [rows[k] for k in ("ilu0", "ilu1") if k in rows]
    if not ilus:
        sys.exit(f"compare: precond section has no ILU rows for {matrix}")
    if none["converged"]:
        continue
    # This shape exhausted its unpreconditioned iteration budget: some ILU
    # row must converge it with strictly fewer iterations. Charged total is
    # allowed to lose per shape (deep level schedules price each
    # preconditioned iteration up), but at least ONE capped shape across
    # the section must also win on total — see the `rescued` check below.
    capped += 1
    winners = [
        r for r in ilus
        if r["converged"] and r["iterations"] < none["iterations"]
    ]
    if not winners:
        sys.exit(
            f"compare: no ILU row converges the capped shape {matrix} in "
            f"fewer iterations: none it={none['iterations']} vs "
            + "; ".join(
                f"{r['precond']} it={r['iterations']} "
                f"converged={r['converged']}" for r in ilus
            )
        )
    best = min(winners, key=lambda r: r["total_sim_seconds"])
    cheaper = best["total_sim_seconds"] < none["total_sim_seconds"]
    if cheaper:
        rescued += 1
    print(
        f"compare OK: {matrix} capped at {none['iterations']} iterations "
        f"unpreconditioned; {best['precond']} converges in "
        f"{best['iterations']} (setup {best['setup_sim_seconds']:.6f}s + "
        f"solve {best['solve_sim_seconds']:.6f}s = "
        f"{best['total_sim_seconds']:.6f}s vs "
        f"{none['total_sim_seconds']:.6f}s"
        f"{', cheaper' if cheaper else ', dearer per-shape'})"
    )
if pre and capped == 0:
    sys.exit(
        "compare: precond section has no budget-capped unpreconditioned "
        "shape — the ILU gate never engaged"
    )
if pre and capped > 0 and rescued == 0:
    sys.exit(
        "compare: ILU converged every capped shape but never beat the "
        "unpreconditioned charged total on any of them"
    )
EOF
fi
