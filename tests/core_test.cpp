// Unit tests for the core solver machinery: Newton/Leja shifts, Hessenberg
// recovery, problem preparation, and the GMRES / CA-GMRES / CPU-GMRES
// solvers on small systems.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "blas/blas3.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/cpu_gmres.hpp"
#include "core/gmres.hpp"
#include "core/hessenberg.hpp"
#include "core/shifts.hpp"
#include "core/solver_common.hpp"
#include "sparse/generators.hpp"

namespace cagmres::core {
namespace {

using sparse::CsrMatrix;

std::vector<double> ones_rhs(int n) {
  return std::vector<double>(static_cast<std::size_t>(n), 1.0);
}

TEST(Shifts, LejaFirstIsLargestAndPairsAdjacent) {
  std::vector<std::complex<double>> vals = {
      {1.0, 0.0}, {0.5, 2.0}, {0.5, -2.0}, {-3.0, 0.0}, {0.1, 0.0}};
  const Shifts s = leja_order(vals);
  ASSERT_EQ(s.size(), 5);
  EXPECT_DOUBLE_EQ(s.re[0], -3.0);  // largest magnitude first
  EXPECT_DOUBLE_EQ(s.im[0], 0.0);
  // The complex pair appears adjacently, +im then -im.
  for (int k = 0; k < s.size(); ++k) {
    if (s.im[static_cast<std::size_t>(k)] > 0.0) {
      ASSERT_LT(k + 1, s.size());
      EXPECT_DOUBLE_EQ(s.im[static_cast<std::size_t>(k) + 1],
                       -s.im[static_cast<std::size_t>(k)]);
      EXPECT_DOUBLE_EQ(s.re[static_cast<std::size_t>(k) + 1],
                       s.re[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(Shifts, LejaMaximizesDistanceGreedily) {
  // On the real line {0, 1, 10}: start at 10, then 0 (distance 10), then 1.
  std::vector<std::complex<double>> vals = {{0., 0.}, {1., 0.}, {10., 0.}};
  const Shifts s = leja_order(vals);
  EXPECT_DOUBLE_EQ(s.re[0], 10.0);
  EXPECT_DOUBLE_EQ(s.re[1], 0.0);
  EXPECT_DOUBLE_EQ(s.re[2], 1.0);
}

TEST(Shifts, NewtonShiftsCycleAndDemoteStraddlingPairs) {
  std::vector<std::complex<double>> ritz = {{2.0, 1.0}, {2.0, -1.0}};
  // s = 3: pair + wrapped first member, which must degrade to real.
  const Shifts s = newton_shifts(ritz, 3);
  ASSERT_EQ(s.size(), 3);
  EXPECT_DOUBLE_EQ(s.im[0], 1.0);
  EXPECT_DOUBLE_EQ(s.im[1], -1.0);
  EXPECT_DOUBLE_EQ(s.im[2], 0.0);  // wrapped pair-first demoted
}

TEST(Shifts, BlockShiftsDemoteTrailingPairFirst) {
  Shifts s;
  s.re = {1.0, 1.0, 2.0};
  s.im = {0.5, -0.5, 0.0};
  const Shifts b1 = block_shifts(s, 1);  // cuts inside the pair
  EXPECT_DOUBLE_EQ(b1.im[0], 0.0);
  const Shifts b2 = block_shifts(s, 2);
  EXPECT_DOUBLE_EQ(b2.im[0], 0.5);
  EXPECT_DOUBLE_EQ(b2.im[1], -0.5);
}

TEST(Shifts, ConsistencyPredicateAcceptsIntactPairsOnly) {
  Shifts good;
  good.re = {1.0, 1.0, 2.0};
  good.im = {0.5, -0.5, 0.0};
  EXPECT_TRUE(shifts_consistent(good));

  Shifts orphan_open;  // +im with no conjugate following
  orphan_open.re = {1.0, 2.0};
  orphan_open.im = {0.5, 0.0};
  EXPECT_FALSE(shifts_consistent(orphan_open));

  Shifts orphan_close;  // -im with no conjugate preceding
  orphan_close.re = {2.0, 1.0};
  orphan_close.im = {0.0, -0.5};
  EXPECT_FALSE(shifts_consistent(orphan_close));

  Shifts mismatched;  // pair with different real parts
  mismatched.re = {1.0, 3.0};
  mismatched.im = {0.5, -0.5};
  EXPECT_FALSE(shifts_consistent(mismatched));
}

TEST(Shifts, BlockShiftsAlwaysProduceConsistentTrains) {
  // Every clip length of a train mixing reals and pairs must come out
  // pair-consistent (the CA block loop relies on this at every block).
  Shifts s;
  s.re = {2.0, 1.0, 1.0, 0.5, 0.5, -1.0};
  s.im = {0.0, 0.7, -0.7, 0.3, -0.3, 0.0};
  for (int len = 1; len <= 6; ++len) {
    const Shifts b = block_shifts(s, len);
    EXPECT_TRUE(shifts_consistent(b)) << "clip length " << len;
  }
}

TEST(Hessenberg, ChangeOfBasisStructure) {
  Shifts cs;
  cs.re = {2.0, 1.0, 1.0, 0.5};
  cs.im = {0.0, 0.7, -0.7, 0.0};
  const blas::DMat b = build_change_of_basis(cs);
  EXPECT_EQ(b.rows(), 5);
  EXPECT_EQ(b.cols(), 4);
  EXPECT_DOUBLE_EQ(b(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(b(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(b(1, 2), -0.49);  // -beta^2 above the pair's second col
  EXPECT_DOUBLE_EQ(b(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(b(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(b(4, 3), 1.0);
}

TEST(Hessenberg, RecoveryIsExactOnSyntheticData) {
  // Choose random upper-triangular R and shifts; H must satisfy
  // H * R(1:m,1:m) == R * B exactly (that is the defining identity).
  const int m = 6;
  Rng rng(5);
  blas::DMat r(m + 1, m + 1);
  for (int j = 0; j <= m; ++j) {
    for (int i = 0; i < j; ++i) r(i, j) = rng.normal();
    r(j, j) = 1.0 + rng.uniform();
  }
  Shifts cs;
  cs.re.assign(static_cast<std::size_t>(m), 0.3);
  cs.im.assign(static_cast<std::size_t>(m), 0.0);
  cs.im[2] = 0.9;
  cs.im[3] = -0.9;
  const blas::DMat b = build_change_of_basis(cs);
  const blas::DMat h = hessenberg_from_basis(r, b);

  blas::DMat rb(m + 1, m), hr(m + 1, m);
  blas::gemm(blas::Trans::N, blas::Trans::N, m + 1, m, m + 1, 1.0, r.data(),
             r.ld(), b.data(), b.ld(), 0.0, rb.data(), rb.ld());
  // H is (m+1) x m, so the contracted dimension of H * R(1:m,1:m) is m.
  blas::DMat r_mm(m, m);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j; ++i) r_mm(i, j) = r(i, j);
  }
  blas::gemm(blas::Trans::N, blas::Trans::N, m + 1, m, m, 1.0, h.data(),
             h.ld(), r_mm.data(), r_mm.ld(), 0.0, hr.data(), hr.ld());
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= m; ++i) EXPECT_NEAR(hr(i, j), rb(i, j), 1e-10);
  }
  // Hessenberg structure.
  for (int j = 0; j < m; ++j) {
    for (int i = j + 2; i <= m; ++i) EXPECT_EQ(h(i, j), 0.0);
  }
}

TEST(ProblemSetup, RecoversPermutedScaledSolution) {
  const CsrMatrix a = sparse::make_laplace2d(9, 7, 0.2);
  const int n = a.n_rows;
  Rng rng(6);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.normal();
  std::vector<double> b(static_cast<std::size_t>(n));
  sparse::spmv(a, x_true.data(), b.data());

  for (const bool balance : {false, true}) {
    const Problem p =
        make_problem(a, b, 2, graph::Ordering::kKway, balance, 3);
    // Solve the prepared system directly (dense-free check): verify that
    // y with y_i = x_true[perm[i]] / col_scale satisfies the prepared system.
    std::vector<double> y(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      y[static_cast<std::size_t>(i)] =
          x_true[static_cast<std::size_t>(p.perm[static_cast<std::size_t>(i)])] /
          p.scaling.col[static_cast<std::size_t>(i)];
    }
    std::vector<double> lhs(static_cast<std::size_t>(n));
    sparse::spmv(p.a, y.data(), lhs.data());
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(lhs[static_cast<std::size_t>(i)], p.b[static_cast<std::size_t>(i)], 1e-10);
    }
    // recover_solution maps y back to x_true.
    const std::vector<double> x = recover_solution(p, y);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-10);
    }
  }
}

// ---------------------------------------------------------------------------
// Solver convergence tests.
// ---------------------------------------------------------------------------

struct SolverCase {
  int ng;
  graph::Ordering ordering;
};

class GmresTest : public ::testing::TestWithParam<SolverCase> {};

TEST_P(GmresTest, ConvergesOnConvectionDiffusion) {
  const auto [ng, ordering] = GetParam();
  const CsrMatrix a = sparse::make_laplace2d(24, 24, 0.3, 0.2);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, ng, ordering, true, 1);
  sim::Machine machine(ng);
  SolverOptions opts;
  opts.m = 30;
  opts.tol = 1e-6;
  const SolveResult res = gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  // The tolerance applies to the prepared system; allow slack in the
  // original space where the scaling differs.
  const double rel = true_residual(a, b, res.x) /
                     blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-4);
  EXPECT_GT(res.stats.iterations, 0);
  EXPECT_GT(res.stats.time_total, 0.0);
  EXPECT_GT(res.stats.time_spmv, 0.0);
  EXPECT_GT(res.stats.time_orth, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndOrderings, GmresTest,
    ::testing::Values(SolverCase{1, graph::Ordering::kNatural},
                      SolverCase{2, graph::Ordering::kRcm},
                      SolverCase{3, graph::Ordering::kKway}),
    [](const auto& info) {
      return "ng" + std::to_string(info.param.ng) + "_" +
             graph::to_string(info.param.ordering);
    });

TEST(Gmres, MgsAndCgsAgreeOnSolution) {
  const CsrMatrix a = sparse::make_laplace2d(18, 18, 0.4, 0.3);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 25;
  opts.tol = 1e-8;

  sim::Machine m1(2), m2(2);
  opts.gmres_orth = ortho::Method::kMgs;
  const SolveResult r_mgs = gmres(m1, p, opts);
  opts.gmres_orth = ortho::Method::kCgs;
  const SolveResult r_cgs = gmres(m2, p, opts);
  ASSERT_TRUE(r_mgs.stats.converged);
  ASSERT_TRUE(r_cgs.stats.converged);
  for (int i = 0; i < a.n_rows; ++i) {
    EXPECT_NEAR(r_mgs.x[static_cast<std::size_t>(i)],
                r_cgs.x[static_cast<std::size_t>(i)], 1e-5);
  }
  // MGS pays many more messages per restart (Fig. 10's latency story).
  EXPECT_GT(m1.counters().total_msgs(), 2 * m2.counters().total_msgs());
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  const CsrMatrix a = sparse::make_laplace2d(6, 6);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 0.0);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(1);
  const SolveResult res = gmres(machine, p, SolverOptions{});
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(res.stats.iterations, 0);
  for (const double v : res.x) EXPECT_EQ(v, 0.0);
}

TEST(Gmres, ResidualHistoryDecreasesAcrossRestarts) {
  // Harder problem to force several restarts.
  const CsrMatrix a = sparse::make_laplace2d(30, 30, 0.0, 0.0);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(1);
  SolverOptions opts;
  opts.m = 10;
  opts.tol = 1e-6;
  opts.max_restarts = 300;
  const SolveResult res = gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.restarts, 2);
  const auto& h = res.stats.residual_history;
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_LE(h[i], h[i - 1] * (1.0 + 1e-10));  // GMRES is monotone
  }
}

struct CaCase {
  int ng;
  int s;
  ortho::Method tsqr;
  Basis basis;
};

class CaGmresTest : public ::testing::TestWithParam<CaCase> {};

TEST_P(CaGmresTest, ConvergesAndMatchesDirectResidual) {
  const auto& c = GetParam();
  const CsrMatrix a = sparse::make_laplace2d(24, 24, 0.3, 0.25);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p =
      make_problem(a, b, c.ng, graph::Ordering::kKway, false, 11);
  sim::Machine machine(c.ng);
  SolverOptions opts;
  opts.m = 24;
  opts.s = c.s;
  opts.tsqr = c.tsqr;
  opts.basis = c.basis;
  opts.tol = 1e-6;
  const SolveResult res = ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged)
      << to_string(c.tsqr) << " s=" << c.s << " ng=" << c.ng;
  const double rel =
      true_residual(a, b, res.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5) << to_string(c.tsqr);
  if (c.s > 1) {
    EXPECT_GT(res.stats.time_mpk, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CaGmresTest,
    ::testing::Values(
        CaCase{1, 4, ortho::Method::kCholQr, Basis::kNewton},
        CaCase{2, 4, ortho::Method::kCholQr, Basis::kNewton},
        CaCase{3, 6, ortho::Method::kCholQr, Basis::kNewton},
        CaCase{2, 4, ortho::Method::kSvqr, Basis::kNewton},
        CaCase{2, 4, ortho::Method::kCaqr, Basis::kNewton},
        CaCase{2, 4, ortho::Method::kMgs, Basis::kNewton},
        CaCase{2, 4, ortho::Method::kCgs, Basis::kNewton},
        CaCase{2, 4, ortho::Method::kCholQr, Basis::kMonomial},
        CaCase{3, 1, ortho::Method::kCholQr, Basis::kNewton},
        CaCase{2, 8, ortho::Method::kSvqr, Basis::kMonomial}),
    [](const auto& info) {
      const CaCase& c = info.param;
      return "ng" + std::to_string(c.ng) + "_s" + std::to_string(c.s) + "_" +
             ortho::to_string(c.tsqr) + "_" + to_string(c.basis);
    });

TEST(CaGmres, MatchesGmresIterationCountsForBenignProblems) {
  const CsrMatrix a = sparse::make_laplace2d(20, 20, 0.2, 0.4);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-6;
  sim::Machine m1(2), m2(2);
  const SolveResult rg = gmres(m1, p, opts);
  const SolveResult rc = ca_gmres(m2, p, opts);
  ASSERT_TRUE(rg.stats.converged);
  ASSERT_TRUE(rc.stats.converged);
  // Same Krylov spaces in exact arithmetic: restart counts nearly equal.
  EXPECT_NEAR(rc.stats.restarts, rg.stats.restarts, 1.0);
}

TEST(CaGmres, ForcedReorthogonalizationRunsAndConverges) {
  const CsrMatrix a = sparse::make_laplace2d(16, 16, 0.3, 0.3);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(1);
  SolverOptions opts;
  opts.m = 16;
  opts.s = 4;
  opts.reorthogonalize = true;
  opts.tol = 1e-6;
  const SolveResult res = ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.reorth_blocks, 0);
}

TEST(CaGmres, SpmvFallbackPathConverges) {
  const CsrMatrix a = sparse::make_laplace2d(16, 16, 0.1, 0.3);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(2);
  SolverOptions opts;
  opts.m = 16;
  opts.s = 4;
  opts.use_mpk = false;  // generate blocks by repeated SpMV (Fig. 15 note)
  opts.tol = 1e-6;
  const SolveResult res = ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(res.stats.time_mpk, 0.0);
  EXPECT_GT(res.stats.time_spmv, 0.0);
  const double rel =
      true_residual(a, b, res.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
}

TEST(CaGmres, CommunicationDropsVsGmres) {
  // The headline claim: CA-GMRES communicates far less per generated basis
  // vector than GMRES.
  const CsrMatrix a = sparse::make_laplace2d(22, 22, 0.2, 0.3);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, 3, graph::Ordering::kKway, false, 3);
  SolverOptions opts;
  opts.m = 18;
  opts.s = 6;
  opts.tol = 1e-6;
  // Monomial basis so CA-GMRES needs no shift-harvesting GMRES restart —
  // the comparison is then pure CA cycles vs pure GMRES cycles.
  opts.basis = Basis::kMonomial;
  sim::Machine m1(3), m2(3);
  const SolveResult rg = gmres(m1, p, opts);
  const SolveResult rc = ca_gmres(m2, p, opts);
  ASSERT_TRUE(rg.stats.converged);
  ASSERT_TRUE(rc.stats.converged);
  const double msgs_per_iter_g =
      static_cast<double>(m1.counters().total_msgs()) / rg.stats.iterations;
  const double msgs_per_iter_c =
      static_cast<double>(m2.counters().total_msgs()) / rc.stats.iterations;
  EXPECT_LT(msgs_per_iter_c, 0.5 * msgs_per_iter_g);
}

TEST(CpuGmres, ConvergesAndMatchesDeviceSolver) {
  const CsrMatrix a = sparse::make_laplace2d(20, 18, 0.25, 0.3);
  const std::vector<double> b = ones_rhs(a.n_rows);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.tol = 1e-7;
  sim::Machine mc(1), md(1);
  const SolveResult rc = cpu_gmres(mc, p, opts);
  const SolveResult rd = gmres(md, p, opts);
  ASSERT_TRUE(rc.stats.converged);
  ASSERT_TRUE(rd.stats.converged);
  for (int i = 0; i < a.n_rows; ++i) {
    EXPECT_NEAR(rc.x[static_cast<std::size_t>(i)],
                rd.x[static_cast<std::size_t>(i)], 1e-5);
  }
  // The CPU run involves zero PCIe messages.
  EXPECT_EQ(mc.counters().total_msgs(), 0);
  EXPECT_GT(mc.clock().elapsed(), 0.0);
}

TEST(SolverOptions, ParseHelpers) {
  EXPECT_EQ(parse_basis("newton"), Basis::kNewton);
  EXPECT_EQ(to_string(Basis::kMonomial), "monomial");
  EXPECT_THROW(parse_basis("chebyshev"), Error);
}

}  // namespace
}  // namespace cagmres::core
