// Tests for depth-1 pipelined GMRES (Ghysels et al., paper ref [19]).
#include <cmath>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/gmres.hpp"
#include "core/pipelined.hpp"
#include "core/solver_common.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

namespace cagmres::core {
namespace {

TEST(Pipelined, ConvergesAndMatchesGmresSolution) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 18, 0.25, 0.3);
  std::vector<double> b(static_cast<std::size_t>(a.n_rows));
  Rng rng(21);
  for (auto& e : b) e = rng.normal();
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 25;
  opts.tol = 1e-8;

  sim::Machine m1(2), m2(2);
  const SolveResult rg = gmres(m1, p, opts);
  const SolveResult rp = pipelined_gmres(m2, p, opts);
  ASSERT_TRUE(rg.stats.converged);
  ASSERT_TRUE(rp.stats.converged);
  // Same Krylov space, CGS-grade recurrence: solutions agree well beyond
  // the solve tolerance.
  for (int i = 0; i < a.n_rows; ++i) {
    EXPECT_NEAR(rp.x[static_cast<std::size_t>(i)],
                rg.x[static_cast<std::size_t>(i)], 1e-5);
  }
  EXPECT_NEAR(rp.stats.restarts, rg.stats.restarts, 1.0);
}

TEST(Pipelined, SolvesAcrossDeviceCounts) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(15, 15, 0.1, 0.4);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  for (int ng = 1; ng <= 3; ++ng) {
    const Problem p =
        make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
    sim::Machine machine(ng);
    SolverOptions opts;
    opts.m = 20;
    opts.tol = 1e-7;
    const SolveResult res = pipelined_gmres(machine, p, opts);
    EXPECT_TRUE(res.stats.converged) << ng;
    const double rel =
        true_residual(a, b, res.x) / blas::nrm2(a.n_rows, b.data());
    EXPECT_LT(rel, 1e-5) << ng;
  }
}

TEST(Pipelined, FewerMessagesPerIterationThanCgsGmres) {
  // One fused reduction (projections + norm) per iteration vs CGS-GMRES's
  // two separate ones.
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.2, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 3, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.max_restarts = 2;
  sim::Machine m1(3), m2(3);
  const auto rg = gmres(m1, p, opts).stats;
  const auto rp = pipelined_gmres(m2, p, opts).stats;
  const double g =
      static_cast<double>(m1.counters().total_msgs()) / std::max(rg.iterations, 1);
  const double pm =
      static_cast<double>(m2.counters().total_msgs()) / std::max(rp.iterations, 1);
  EXPECT_LT(pm, g);
}

TEST(Pipelined, HidesLatencyBetterThanCgsGmresWhenLatencyGrows) {
  const sparse::CsrMatrix a = sparse::make_cant_like(0.25);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 3, graph::Ordering::kNatural, true, 1);
  SolverOptions opts;
  opts.m = 30;
  opts.max_restarts = 2;

  auto ratio_at = [&](double lat_scale) {
    sim::PerfModel pm;
    pm.pcie_latency_s *= lat_scale;
    sim::Machine m1(3, pm), m2(3, pm);
    const auto tg = gmres(m1, p, opts).stats.time_total;
    const auto tp = pipelined_gmres(m2, p, opts).stats.time_total;
    return tg / tp;  // >1 = pipelining wins
  };
  const double low = ratio_at(1.0);
  const double high = ratio_at(10.0);
  EXPECT_GT(high, low);   // the advantage grows with latency
  EXPECT_GT(high, 1.05);  // and is material when latency dominates
}

TEST(Pipelined, HonestNonConvergenceUnderCap) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(30, 30);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, true, 1);
  sim::Machine machine(1);
  SolverOptions opts;
  opts.m = 5;
  opts.tol = 1e-12;
  opts.max_restarts = 2;
  const SolveResult res = pipelined_gmres(machine, p, opts);
  EXPECT_FALSE(res.stats.converged);
  EXPECT_EQ(res.stats.restarts, 2);
}

// A cyclic shift: the GMRES residual stays exactly 1 for n iterations, so
// a restarted solve stagnates forever — the watchdog's canonical prey.
Problem make_stagnating_problem(int n, int ng) {
  sparse::CsrMatrix a;
  a.n_rows = n;
  a.n_cols = n;
  a.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    a.col_idx.push_back((i + n - 1) % n);
    a.vals.push_back(1.0);
    a.row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(a.col_idx.size());
  }
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  b[0] = 1.0;
  return make_problem(a, b, ng, graph::Ordering::kNatural, false, 1);
}

TEST(PipelinedHealth, StagnationWatchdogStopsAHopelessSolve) {
  const Problem p = make_stagnating_problem(64, 2);
  SolverOptions opts;
  opts.m = 20;
  opts.tol = 1e-6;
  opts.max_restarts = 200;
  opts.health.monitor_stagnation = true;
  opts.health.stagnation_window = 2;
  sim::Machine machine(2);
  ErrorCode code = ErrorCode::kBadInput;
  try {
    pipelined_gmres(machine, p, opts);
    FAIL() << "stagnating solve ran to the restart cap";
  } catch (const Error& e) {
    code = e.code();
  }
  // The pipelined recurrence has an empty ladder: a stagnation trip with
  // nothing left to try stops the solve instead of burning 200 restarts.
  EXPECT_EQ(code, ErrorCode::kDeadlineExceeded);
}

TEST(PipelinedHealth, ReportOnlyModeObservesWithoutChangingTheSolve) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(18, 16, 0.2, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 25;
  opts.tol = 1e-8;

  sim::Machine m_plain(2);
  const SolveResult plain = pipelined_gmres(m_plain, p, opts);

  opts.health.monitor_stagnation = true;
  opts.health.monitor_residual_gap = true;
  opts.health.escalate = false;  // log, never act
  sim::Machine m_watched(2);
  const SolveResult watched = pipelined_gmres(m_watched, p, opts);

  // The watchdogs read host-side state only: results and simulated times
  // are byte-identical to the unmonitored solve.
  EXPECT_EQ(plain.x, watched.x);
  EXPECT_EQ(plain.stats.time_total, watched.stats.time_total);
  EXPECT_EQ(plain.stats.residual_history, watched.stats.residual_history);
  EXPECT_EQ(m_plain.clock().elapsed(), m_watched.clock().elapsed());
  // ...and monitor 2 actually measured the recurrence/true gap.
  EXPECT_GT(watched.stats.residual_gap, 0.0);
}

TEST(PipelinedHealth, IterationBudgetIsEnforced) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.0, 0.01);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 10;
  opts.tol = 1e-12;
  opts.max_restarts = 100;
  opts.health.max_iterations = 15;
  sim::Machine machine(1);
  EXPECT_THROW(pipelined_gmres(machine, p, opts), Error);
}

}  // namespace
}  // namespace cagmres::core
