// Numerical health monitor + escalation ladder tests (core/health.hpp):
// the deterministic rung walk, each monitor's trip conditions, the
// byte-identity of solves whose monitors never charge anything, and the
// acceptance scenarios — a monomial basis pushed past its breaking point
// converging under the ladder, and a stagnating / over-budget solve exiting
// with kDeadlineExceeded instead of hanging.
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/health.hpp"
#include "core/solver_common.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

namespace cagmres {
namespace {

using core::EscalationPolicy;
using core::EscalationStep;
using core::HealthEventKind;
using core::HealthOptions;
using core::LadderCapabilities;
using core::SolveHealthMonitor;
using sim::Machine;

struct TestSystem {
  sparse::CsrMatrix a;
  std::vector<double> b;
  core::Problem p;
};

TestSystem make_system(int ng) {
  TestSystem s;
  s.a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  s.b.assign(static_cast<std::size_t>(s.a.n_rows), 1.0);
  s.p = core::make_problem(s.a, s.b, ng, graph::Ordering::kNatural, true, 1);
  return s;
}

/// Pure (unshifted) 2D Laplacian: condition ~ grid^2, spectral radius ~ 8,
/// so a monomial s-step basis's R diagonal spans ~8^s — the regime the
/// paper's Fig. 13 shows breaking CholQR at large s.
TestSystem make_hard_system(int ng, int grid = 30) {
  TestSystem s;
  s.a = sparse::make_laplace2d(grid, grid, 0.0, 0.0);
  // A random RHS (unlike the smooth all-ones vector) puts weight on the
  // dominant eigenvector, so the monomial columns really do grow like
  // rho^j; with balancing off the raw spectral radius ~8 is kept and an
  // s=12 block spans ~8^12 in column norm — the regime that breaks CholQR.
  s.b.resize(static_cast<std::size_t>(s.a.n_rows));
  Rng rng(42);
  for (auto& e : s.b) e = rng.normal();
  s.p = core::make_problem(s.a, s.b, ng, graph::Ordering::kNatural,
                           /*balance=*/false, 1);
  return s;
}

/// Cyclic shift (permutation) matrix with b = e1: the classic GMRES
/// stagnation example. Every Krylov vector is a fresh unit coordinate, the
/// least-squares minimizer is y = 0, and the residual stays exactly ||b||
/// for n-1 steps — so restarted GMRES with m < n never moves at all.
TestSystem make_stagnating_system(int n, int ng) {
  TestSystem s;
  s.a.n_rows = n;
  s.a.n_cols = n;
  s.a.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    s.a.col_idx.push_back((i + n - 1) % n);  // row i picks up x_{i-1}
    s.a.vals.push_back(1.0);
    s.a.row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(s.a.col_idx.size());
  }
  s.b.assign(static_cast<std::size_t>(n), 0.0);
  s.b[0] = 1.0;
  s.p = core::make_problem(s.a, s.b, ng, graph::Ordering::kNatural,
                           /*balance=*/false, 1);
  return s;
}

core::SolverOptions base_opts() {
  core::SolverOptions o;
  o.m = 30;
  o.s = 6;
  o.tol = 1e-6;
  o.max_restarts = 400;
  return o;
}

double relative_residual(const TestSystem& s, const std::vector<double>& x) {
  return core::true_residual(s.a, s.b, x) /
         blas::nrm2(s.a.n_rows, s.b.data());
}

int count_instants(const Machine& m, const std::string& name) {
  int n = 0;
  for (const auto& e : m.trace().events()) {
    if (e.name == name) ++n;
  }
  return n;
}

std::optional<ErrorCode> solve_error_code(Machine& m, const TestSystem& s,
                                          const core::SolverOptions& o,
                                          bool ca) {
  try {
    if (ca) {
      core::ca_gmres(m, s.p, o);
    } else {
      core::gmres(m, s.p, o);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "solve threw [%s]: %s\n",
                 to_string(e.code()).c_str(), e.what());
    return e.code();
  }
  return std::nullopt;
}

// --- policy / engine unit tests --------------------------------------

TEST(EscalationPolicy, WalksRungsInLadderOrderThenExhausts) {
  LadderCapabilities caps;
  caps.force_reorth = true;
  caps.shrink_s = true;
  caps.rebuild_shifts = true;
  caps.tsqr_switches = 2;
  caps.fallback_gmres = true;
  EscalationPolicy policy(caps);
  EXPECT_EQ(policy.next(), EscalationStep::kForceReorth);
  EXPECT_EQ(policy.next(), EscalationStep::kShrinkS);
  EXPECT_EQ(policy.next(), EscalationStep::kRebuildShifts);
  EXPECT_EQ(policy.next(), EscalationStep::kSwitchTsqr);
  EXPECT_EQ(policy.next(), EscalationStep::kSwitchTsqr);
  EXPECT_FALSE(policy.exhausted());
  EXPECT_EQ(policy.next(), EscalationStep::kFallbackGmres);
  EXPECT_TRUE(policy.exhausted());
  EXPECT_EQ(policy.next(), EscalationStep::kNone);
  EXPECT_EQ(policy.next(), EscalationStep::kNone);
}

TEST(EscalationPolicy, GmresLadderIsJustTheOrthSwitch) {
  LadderCapabilities caps;
  caps.switch_orth = true;
  EscalationPolicy policy(caps);
  EXPECT_EQ(policy.next(), EscalationStep::kSwitchOrth);
  EXPECT_EQ(policy.next(), EscalationStep::kNone);
}

TEST(HealthOptions, AnyReflectsEveryMonitorAndBudget) {
  HealthOptions h;
  EXPECT_FALSE(h.any());
  h.monitor_condition = true;
  EXPECT_TRUE(h.any());
  h = HealthOptions{};
  h.monitor_residual_gap = true;
  EXPECT_TRUE(h.any());
  h = HealthOptions{};
  h.monitor_stagnation = true;
  EXPECT_TRUE(h.any());
  h = HealthOptions{};
  h.max_solve_seconds = 1.0;
  EXPECT_TRUE(h.any());
  h = HealthOptions{};
  h.max_iterations = 10;
  EXPECT_TRUE(h.any());
}

TEST(SolveHealthMonitor, FalseConvergenceTrip) {
  Machine m(1);
  HealthOptions h;
  h.monitor_residual_gap = true;
  SolveHealthMonitor hm(m, h, LadderCapabilities{}, 0.0);
  // Recurrence claimed convergence, truth disagrees: must trip even though
  // the gap itself is below the plain gap limit.
  const HealthEventKind trip = hm.check_residual_gap(
      /*true_res=*/2e-4, /*recurrence_res=*/5e-5, /*claimed_converged=*/true,
      /*still_unconverged=*/true, 1, 30);
  EXPECT_EQ(trip, HealthEventKind::kFalseConvergence);
  ASSERT_EQ(hm.events().size(), 1u);
  EXPECT_EQ(hm.events()[0].kind, HealthEventKind::kFalseConvergence);
  EXPECT_NEAR(hm.residual_gap_last(), 4.0, 1e-12);
}

TEST(SolveHealthMonitor, GapTripAndStatsTracking) {
  Machine m(1);
  HealthOptions h;
  h.monitor_residual_gap = true;
  h.residual_gap_limit = 10.0;
  SolveHealthMonitor hm(m, h, LadderCapabilities{}, 0.0);
  EXPECT_EQ(hm.check_residual_gap(1.0, 0.5, false, true, 0, 0),
            HealthEventKind::kNone);
  EXPECT_EQ(hm.check_residual_gap(1.0, 0.01, false, true, 1, 0),
            HealthEventKind::kResidualGap);
  EXPECT_NEAR(hm.residual_gap_last(), 100.0, 1e-9);
  EXPECT_NEAR(hm.residual_gap_max(), 100.0, 1e-9);
  // No recurrence estimate available -> no check, stats unchanged.
  EXPECT_EQ(hm.check_residual_gap(1.0, -1.0, false, true, 2, 0),
            HealthEventKind::kNone);
  EXPECT_NEAR(hm.residual_gap_last(), 100.0, 1e-9);
}

TEST(SolveHealthMonitor, StagnationAndDivergenceTrips) {
  Machine m(1);
  HealthOptions h;
  h.monitor_stagnation = true;
  h.stagnation_window = 2;
  h.stagnation_reduction = 0.5;
  h.divergence_factor = 100.0;
  SolveHealthMonitor hm(m, h, LadderCapabilities{}, 0.0);
  EXPECT_EQ(hm.check_progress(1.0, 0, 0), HealthEventKind::kNone);
  EXPECT_EQ(hm.check_progress(0.9, 1, 0), HealthEventKind::kNone);
  // 0.8 vs 1.0 two restarts ago: shrank less than 2x -> stagnation.
  EXPECT_EQ(hm.check_progress(0.8, 2, 0), HealthEventKind::kStagnation);
  // Blowing up 100x past the best-so-far -> divergence.
  EXPECT_EQ(hm.check_progress(500.0, 3, 0), HealthEventKind::kDivergence);
}

TEST(SolveHealthMonitor, BudgetsThrowDeadlineExceeded) {
  Machine m(1);
  HealthOptions h;
  h.max_iterations = 100;
  SolveHealthMonitor hm(m, h, LadderCapabilities{}, 0.0);
  EXPECT_NO_THROW(hm.check_budget(100, 3));
  try {
    hm.check_budget(101, 3);
    FAIL() << "expected kDeadlineExceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
}

TEST(SolveHealthMonitor, EscalateBurnsInapplicableRungsInOrder) {
  Machine m(1);
  HealthOptions h;
  h.monitor_stagnation = true;
  LadderCapabilities caps;
  caps.force_reorth = true;
  caps.shrink_s = true;
  caps.fallback_gmres = true;
  SolveHealthMonitor hm(m, h, caps, 0.0);
  // force_reorth is reported not-applicable: the walk must burn it and land
  // on shrink_s, never revisiting the burnt rung.
  const auto skip_reorth = [](EscalationStep s) {
    return s != EscalationStep::kForceReorth;
  };
  EXPECT_EQ(hm.escalate(HealthEventKind::kStagnation, 1.0, 0, 0, skip_reorth),
            EscalationStep::kShrinkS);
  EXPECT_EQ(hm.escalate(HealthEventKind::kStagnation, 1.0, 9, 0, skip_reorth),
            EscalationStep::kFallbackGmres);
  EXPECT_EQ(hm.escalate(HealthEventKind::kStagnation, 1.0, 18, 0, skip_reorth),
            EscalationStep::kNone);
  // Events: escalation, escalation, ladder_exhausted.
  ASSERT_EQ(hm.events().size(), 3u);
  EXPECT_EQ(hm.events()[0].action, EscalationStep::kShrinkS);
  EXPECT_EQ(hm.events()[1].action, EscalationStep::kFallbackGmres);
  EXPECT_EQ(hm.events()[2].kind, HealthEventKind::kLadderExhausted);
}

TEST(SolveHealthMonitor, ConditionMonitorTripsOnBadRDiagonal) {
  Machine m(1);
  HealthOptions h;
  h.monitor_condition = true;
  h.kappa_limit = 1e6;
  h.condition_sample_every = 0;  // free estimate only
  SolveHealthMonitor hm(m, h, LadderCapabilities{}, 0.0);
  sim::DistMultiVec v({4}, 3);
  blas::DMat r(3, 3);
  r(0, 0) = 1.0;
  r(1, 1) = 1.0;
  r(2, 2) = 1e-3;
  EXPECT_EQ(hm.check_block(r, v, 0, 3, 0, 6), HealthEventKind::kNone);
  r(2, 2) = 1e-9;
  EXPECT_EQ(hm.check_block(r, v, 0, 3, 0, 12),
            HealthEventKind::kConditionTrip);
  // A zero diagonal entry means numerically dependent columns: inf, trip.
  r(2, 2) = 0.0;
  EXPECT_EQ(hm.check_block(r, v, 0, 3, 0, 18),
            HealthEventKind::kConditionTrip);
}

// --- whole-prefix condition sampling (ISSUE 4 satellite) --------------

TEST(SolveHealthMonitor, PrefixSamplingTripsOnDependentBasisColumns) {
  Machine m(1);
  HealthOptions h;
  h.monitor_condition = true;
  h.condition_sample_prefix = true;
  h.q_kappa_limit = 1e6;
  SolveHealthMonitor hm(m, h, LadderCapabilities{}, 0.0);

  sim::DistMultiVec v({6}, 3);
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 6; ++i) v.col(0, j)[i] = (i == j) ? 1.0 : 0.0;
  }
  // Orthonormal prefix: kappa = 1, no trip.
  EXPECT_EQ(hm.check_restart_prefix(v, 3, 0, 6), HealthEventKind::kNone);
  // A single-column prefix has nothing to measure.
  EXPECT_EQ(hm.check_restart_prefix(v, 1, 0, 6), HealthEventKind::kNone);
  // Make column 2 nearly equal to column 0: kappa blows past the limit.
  for (int i = 0; i < 6; ++i) {
    v.col(0, 2)[i] = v.col(0, 0)[i] + ((i == 1) ? 1e-12 : 0.0);
  }
  EXPECT_EQ(hm.check_restart_prefix(v, 3, 0, 12),
            HealthEventKind::kConditionTrip);
  ASSERT_EQ(hm.events().size(), 1u);
  EXPECT_EQ(hm.events()[0].kind, HealthEventKind::kConditionTrip);
  EXPECT_NE(hm.events()[0].detail.find("basis-prefix"), std::string::npos);
}

TEST(SolveHealthMonitor, PrefixModeDisablesPerBlockChargedSamples) {
  // With prefix sampling on, check_block must keep only the free R-diagonal
  // estimate: no charged kappa sample even on a sample_every=1 cadence.
  Machine m(1);
  HealthOptions h;
  h.monitor_condition = true;
  h.condition_sample_prefix = true;
  h.condition_sample_every = 1;
  SolveHealthMonitor hm(m, h, LadderCapabilities{}, 0.0);

  sim::DistMultiVec v({4}, 3);
  blas::DMat r(3, 3);
  r(0, 0) = r(1, 1) = r(2, 2) = 1.0;
  const double t0 = m.clock().elapsed();
  EXPECT_EQ(hm.check_block(r, v, 0, 3, 0, 6), HealthEventKind::kNone);
  EXPECT_EQ(m.clock().elapsed(), t0);  // nothing charged
}

TEST(HealthOff, PrefixSamplingOffIsByteIdenticalAndOnOnlyAddsTime) {
  const TestSystem s = make_system(2);
  const core::SolverOptions opts = base_opts();
  ASSERT_FALSE(opts.health.condition_sample_prefix);  // off by default

  Machine m_off(2);
  const core::SolveResult r_off = core::ca_gmres(m_off, s.p, opts);

  // Prefix sampling on a healthy system: same arithmetic on the basis (the
  // sweep only reads V), so identical x — but the per-restart charged
  // sweep must cost simulated time, and no trips fire.
  core::SolverOptions on = opts;
  on.health.monitor_condition = true;
  on.health.condition_sample_prefix = true;
  on.health.q_kappa_limit = 1e12;
  Machine m_on(2);
  const core::SolveResult r_on = core::ca_gmres(m_on, s.p, on);
  EXPECT_TRUE(r_on.stats.converged);
  EXPECT_EQ(r_off.x, r_on.x);
  EXPECT_EQ(r_off.stats.iterations, r_on.stats.iterations);
  EXPECT_GT(m_on.clock().elapsed(), m_off.clock().elapsed());
  for (const auto& e : r_on.stats.health_events) {
    EXPECT_NE(e.kind, HealthEventKind::kConditionTrip);
  }
}

// --- byte-identity ----------------------------------------------------

TEST(HealthOff, DefaultOptionsChargeAndComputeNothingExtra) {
  const TestSystem s = make_system(3);
  const core::SolverOptions opts = base_opts();
  ASSERT_FALSE(opts.health.any());

  Machine m1(3);
  const core::SolveResult r1 = core::ca_gmres(m1, s.p, opts);
  EXPECT_TRUE(r1.stats.health_events.empty());
  EXPECT_EQ(r1.stats.ladder_steps, 0);
  EXPECT_EQ(r1.stats.residual_gap, 0.0);

  // The free monitors (gap guard + watchdog + iteration budget) only read
  // numbers the solver already has on the host; with untrippable thresholds
  // armed, the solve must stay byte-identical in results AND simulated time.
  core::SolverOptions armed = opts;
  armed.health.monitor_residual_gap = true;
  armed.health.residual_gap_limit = 1e30;
  armed.health.monitor_stagnation = true;
  armed.health.stagnation_reduction = 1e-30;
  armed.health.max_iterations = 1000000;
  ASSERT_TRUE(armed.health.any());
  Machine m2(3);
  const core::SolveResult r2 = core::ca_gmres(m2, s.p, armed);

  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.stats.time_total, r2.stats.time_total);
  EXPECT_EQ(r1.stats.iterations, r2.stats.iterations);
  EXPECT_EQ(r1.stats.residual_history, r2.stats.residual_history);
  EXPECT_EQ(m1.clock().elapsed(), m2.clock().elapsed());
  EXPECT_EQ(r2.stats.ladder_steps, 0);
  EXPECT_TRUE(r2.stats.health_events.empty());
  // ... and the armed run now reports the (healthy) residual gap.
  EXPECT_GT(r2.stats.residual_gap, 0.0);
}

TEST(HealthOff, GmresFreeMonitorsAreByteIdentical) {
  const TestSystem s = make_system(2);
  const core::SolverOptions opts = base_opts();
  Machine m1(2);
  const core::SolveResult r1 = core::gmres(m1, s.p, opts);

  core::SolverOptions armed = opts;
  armed.health.monitor_residual_gap = true;
  armed.health.residual_gap_limit = 1e30;
  armed.health.monitor_stagnation = true;
  armed.health.stagnation_reduction = 1e-30;
  Machine m2(2);
  const core::SolveResult r2 = core::gmres(m2, s.p, armed);

  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.stats.time_total, r2.stats.time_total);
  EXPECT_EQ(r1.stats.residual_history, r2.stats.residual_history);
  EXPECT_EQ(m1.clock().elapsed(), m2.clock().elapsed());
}

// --- acceptance: ladder rescues a broken monomial basis ---------------

TEST(Ladder, RescuesMonomialBasisAtLargeS) {
  // s = 15 monomial on a 40x40 pure Laplacian: the first block's R diagonal
  // already spans > 1e7, CholQR's breakdown shift keeps discarding
  // directions, and within an 8-restart budget the unmonitored solve
  // cannot reach 1e-6. The monitors must notice, the ladder must land it,
  // and the walk must be recorded.
  const TestSystem s = make_hard_system(3, /*grid=*/40);

  core::SolverOptions opts;
  opts.m = 45;
  opts.s = 15;
  opts.tol = 1e-6;
  opts.max_restarts = 8;
  opts.basis = core::Basis::kMonomial;
  opts.reorthogonalize = false;
  opts.reorth_on_breakdown = false;  // the pre-health escape hatch: off
  opts.adaptive_s = false;

  // Control: with no monitors the degraded basis burns the whole restart
  // budget without converging.
  {
    Machine control(3);
    const core::SolveResult bare = core::ca_gmres(control, s.p, opts);
    ASSERT_FALSE(bare.stats.converged);
  }

  opts.health.monitor_condition = true;
  opts.health.monitor_residual_gap = true;
  opts.health.monitor_stagnation = true;

  Machine machine(3);
  const core::SolveResult res = core::ca_gmres(machine, s.p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
  EXPECT_GT(res.stats.ladder_steps, 0);
  ASSERT_FALSE(res.stats.health_events.empty());
  // The log must contain at least one trip and the matching escalation.
  bool saw_trip = false;
  bool saw_action = false;
  for (const auto& e : res.stats.health_events) {
    if (e.kind == HealthEventKind::kConditionTrip ||
        e.kind == HealthEventKind::kStagnation ||
        e.kind == HealthEventKind::kResidualGap ||
        e.kind == HealthEventKind::kFalseConvergence) {
      saw_trip = true;
    }
    if (e.kind == HealthEventKind::kEscalation) {
      EXPECT_NE(e.action, EscalationStep::kNone);
      saw_action = true;
    }
  }
  EXPECT_TRUE(saw_trip);
  EXPECT_TRUE(saw_action);
}

TEST(Ladder, ArmedSolveIsDeterministic) {
  const TestSystem s = make_hard_system(3);

  core::SolverOptions opts;
  opts.m = 36;
  opts.s = 12;
  opts.tol = 1e-6;
  opts.max_restarts = 400;
  opts.basis = core::Basis::kMonomial;
  opts.reorth_on_breakdown = false;
  opts.health.monitor_condition = true;
  opts.health.monitor_stagnation = true;

  Machine m1(3);
  const core::SolveResult r1 = core::ca_gmres(m1, s.p, opts);
  Machine m2(3);
  const core::SolveResult r2 = core::ca_gmres(m2, s.p, opts);
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.stats.time_total, r2.stats.time_total);
  EXPECT_EQ(r1.stats.ladder_steps, r2.stats.ladder_steps);
  ASSERT_EQ(r1.stats.health_events.size(), r2.stats.health_events.size());
  for (std::size_t i = 0; i < r1.stats.health_events.size(); ++i) {
    EXPECT_EQ(r1.stats.health_events[i].kind, r2.stats.health_events[i].kind);
    EXPECT_EQ(r1.stats.health_events[i].action,
              r2.stats.health_events[i].action);
    EXPECT_EQ(r1.stats.health_events[i].time, r2.stats.health_events[i].time);
  }
}

// --- acceptance: budgets and stagnation exit cleanly ------------------

TEST(Deadline, IterationBudgetStopsCaGmres) {
  const TestSystem s = make_system(3);
  core::SolverOptions opts = base_opts();
  opts.tol = 1e-14;  // unreachable: would run to max_restarts
  opts.health.max_iterations = 50;
  Machine machine(3);
  EXPECT_EQ(solve_error_code(machine, s, opts, /*ca=*/true),
            ErrorCode::kDeadlineExceeded);
}

TEST(Deadline, SimulatedTimeBudgetStopsCaGmresAndMarksTrace) {
  const TestSystem s = make_system(3);
  core::SolverOptions opts = base_opts();
  opts.tol = 1e-14;
  opts.health.max_solve_seconds = 1e-4;  // a fraction of one restart
  Machine machine(3);
  machine.enable_trace();
  EXPECT_EQ(solve_error_code(machine, s, opts, /*ca=*/true),
            ErrorCode::kDeadlineExceeded);
  // SolveStats dies with the throw; the trace marker survives it.
  EXPECT_EQ(count_instants(machine, "health:deadline"), 1);
}

TEST(Deadline, IterationBudgetStopsGmres) {
  const TestSystem s = make_system(2);
  core::SolverOptions opts = base_opts();
  opts.tol = 1e-14;
  opts.health.max_iterations = 40;
  Machine machine(2);
  EXPECT_EQ(solve_error_code(machine, s, opts, /*ca=*/false),
            ErrorCode::kDeadlineExceeded);
}

TEST(Stagnation, SingularSystemExitsWithDeadlineNotHang) {
  // The dead row makes progress below ||e_dead|| impossible; without the
  // watchdog this runs all max_restarts. With it, GMRES trips stagnation,
  // downshifts CGS -> MGS, trips again, finds the ladder exhausted, and
  // exits with kDeadlineExceeded — in a handful of restarts.
  const TestSystem s = make_stagnating_system(64, 2);
  core::SolverOptions opts = base_opts();
  opts.max_restarts = 200;
  opts.health.monitor_stagnation = true;
  opts.health.stagnation_window = 2;
  Machine machine(2);
  machine.enable_trace();
  EXPECT_EQ(solve_error_code(machine, s, opts, /*ca=*/false),
            ErrorCode::kDeadlineExceeded);
  // The ladder actually acted (CGS -> MGS) before giving up.
  EXPECT_EQ(count_instants(machine, "health:escalate:switch_orth"), 1);
  EXPECT_GE(count_instants(machine, "health:ladder_exhausted"), 1);
}

TEST(Stagnation, CaGmresWalksItsFullLadderThenExits) {
  const TestSystem s = make_stagnating_system(64, 2);
  core::SolverOptions opts = base_opts();
  opts.max_restarts = 200;
  opts.health.monitor_stagnation = true;
  opts.health.stagnation_window = 2;
  Machine machine(2);
  machine.enable_trace();
  EXPECT_EQ(solve_error_code(machine, s, opts, /*ca=*/true),
            ErrorCode::kDeadlineExceeded);
  // The terminal rung (standard-GMRES fallback) must have been reached
  // before the ladder was declared exhausted.
  EXPECT_EQ(count_instants(machine, "health:escalate:fallback_gmres"), 1);
  EXPECT_GE(count_instants(machine, "health:ladder_exhausted"), 1);
}

TEST(Stagnation, ReportOnlyModeLogsButNeverActs) {
  const TestSystem s = make_stagnating_system(64, 2);
  core::SolverOptions opts = base_opts();
  opts.max_restarts = 12;  // bounded: report-only must NOT throw
  opts.health.monitor_stagnation = true;
  opts.health.stagnation_window = 2;
  opts.health.escalate = false;
  Machine machine(2);
  const core::SolveResult res = core::ca_gmres(machine, s.p, opts);
  EXPECT_FALSE(res.stats.converged);
  EXPECT_EQ(res.stats.ladder_steps, 0);
  bool saw_stagnation = false;
  for (const auto& e : res.stats.health_events) {
    if (e.kind == HealthEventKind::kStagnation) saw_stagnation = true;
    EXPECT_NE(e.kind, HealthEventKind::kEscalation);
  }
  EXPECT_TRUE(saw_stagnation);
}

// --- false-convergence guard on a real solve --------------------------

TEST(ResidualGap, HealthySolveReportsGapNearOne) {
  const TestSystem s = make_system(3);
  core::SolverOptions opts = base_opts();
  opts.health.monitor_residual_gap = true;
  Machine machine(3);
  const core::SolveResult res = core::ca_gmres(machine, s.p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.residual_gap, 0.0);
  EXPECT_LT(res.stats.residual_gap_max, 10.0);  // recurrence tracked truth
  EXPECT_GE(res.stats.recurrence_residual, 0.0);
}

TEST(ResidualGap, DriftedRecurrenceTripsTheGuardInSolve) {
  // Regression for silent false convergence: single-pass CGS as the block
  // orthogonalizer loses orthogonality on the hard monomial basis (the
  // paper's Fig. 13 "CGS needs 2x" case), so the recurrence residual
  // drifts from the explicitly computed one. Report-only mode must record
  // the drift — before the guard existed this mismatch was invisible: the
  // solver just kept restarting off bad LS solves.
  const TestSystem s = make_hard_system(3);

  core::SolverOptions opts;
  opts.m = 36;
  opts.s = 12;
  opts.tol = 1e-6;
  opts.max_restarts = 60;
  opts.basis = core::Basis::kMonomial;
  opts.tsqr = ortho::Method::kCgs;
  opts.reorthogonalize = false;
  opts.reorth_on_breakdown = false;
  opts.health.monitor_residual_gap = true;
  opts.health.residual_gap_limit = 1.5;  // tight: catch the drift early
  opts.health.escalate = false;          // observe, don't rescue

  Machine machine(3);
  const core::SolveResult res = core::ca_gmres(machine, s.p, opts);
  bool saw_gap_trip = false;
  for (const auto& e : res.stats.health_events) {
    if (e.kind == HealthEventKind::kResidualGap ||
        e.kind == HealthEventKind::kFalseConvergence) {
      saw_gap_trip = true;
    }
  }
  EXPECT_TRUE(saw_gap_trip);
  EXPECT_GT(res.stats.residual_gap_max, 1.5);
  // Report-only mode never mutates the solve.
  EXPECT_EQ(res.stats.ladder_steps, 0);
  // The solve still finished honestly: converged means the TRUE residual
  // met the tolerance at a restart boundary.
  if (res.stats.converged) {
    EXPECT_LT(relative_residual(s, res.x), 1e-5);
  }
}

// --- adaptive_s x Newton interaction (satellite) ----------------------

TEST(AdaptiveS, NewtonBasisShrinksAndRecovers) {
  // adaptive_s with the Newton basis: the shift train must stay consistent
  // (conjugate pairs kept intact by block_shifts) while s halves and grows
  // across blocks. The Newton basis never breaks CholQR on this system —
  // that is its whole point — so the shrink is induced through the ladder:
  // with reorthogonalize already on, the force-reorth rung is unavailable
  // and the first condition trip goes straight to kShrinkS. The adaptive
  // controller then grows s back block by block, re-clipping the Newton
  // shift train at every size on the way up.
  const TestSystem s = make_hard_system(3);

  core::SolverOptions opts;
  opts.m = 36;
  opts.s = 12;
  opts.tol = 1e-8;
  opts.max_restarts = 400;
  opts.basis = core::Basis::kNewton;
  opts.reorthogonalize = true;  // burns the force-reorth rung
  opts.reorth_on_breakdown = false;
  opts.adaptive_s = true;
  opts.health.monitor_condition = true;
  // Newton R-diagonal estimates on this system sit around 1.8e3-2e3; a
  // limit inside that band deterministically trips on the worst blocks.
  opts.health.kappa_limit = 1900.0;
  opts.health.condition_sample_every = 0;  // free estimate only

  Machine machine(3);
  const core::SolveResult res = core::ca_gmres(machine, s.p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_LT(relative_residual(s, res.x), 1e-7);
  EXPECT_GT(res.stats.ladder_steps, 0);
  // The shrink rung fired and some block actually ran shorter than s...
  bool shrank = false;
  for (const auto& e : res.stats.health_events) {
    if (e.action == EscalationStep::kShrinkS) shrank = true;
  }
  EXPECT_TRUE(shrank);
  int smallest = opts.s;
  std::size_t smallest_at = 0;
  for (std::size_t i = 0; i < res.stats.block_sizes.size(); ++i) {
    if (res.stats.block_sizes[i] < smallest) {
      smallest = res.stats.block_sizes[i];
      smallest_at = i;
    }
  }
  EXPECT_LT(smallest, opts.s);
  // ...and the adaptive controller recovered: a later block grew again.
  int later_max = 0;
  for (std::size_t i = smallest_at + 1; i < res.stats.block_sizes.size();
       ++i) {
    later_max = std::max(later_max, res.stats.block_sizes[i]);
  }
  EXPECT_GT(later_max, smallest);
}

TEST(Ladder, ShrinkSWorksWithoutAdaptiveSAndNewtonShiftsStayConsistent) {
  // The kShrinkS rung reuses the adaptive-s machinery even when adaptive_s
  // is off; with the Newton basis the shrunk blocks keep clipping the shift
  // train (pair demotion), which shifts_consistent asserts internally.
  const TestSystem s = make_hard_system(3);

  core::SolverOptions opts;
  opts.m = 36;
  opts.s = 12;
  opts.tol = 1e-6;
  opts.max_restarts = 400;
  opts.basis = core::Basis::kNewton;
  opts.reorthogonalize = false;
  opts.reorth_on_breakdown = false;
  opts.adaptive_s = false;
  opts.health.monitor_condition = true;
  opts.health.monitor_stagnation = true;

  Machine machine(3);
  const core::SolveResult res = core::ca_gmres(machine, s.p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
  // If the ladder shrank s, the later blocks must reflect it.
  bool shrank = false;
  for (const auto& e : res.stats.health_events) {
    if (e.action == EscalationStep::kShrinkS) shrank = true;
  }
  if (shrank) {
    int smallest = opts.s;
    for (int sz : res.stats.block_sizes) smallest = std::min(smallest, sz);
    EXPECT_LT(smallest, opts.s);
  }
}

TEST(Ladder, CursorSurvivesCheckpointRollback) {
  // A device kill mid-solve makes the solver repartition, restore the
  // checkpointed x, and replay the restart — and the replayed cycle trips
  // the condition monitor all over again. The EscalationPolicy cursor must
  // NOT rewind with the rollback: rungs already consumed stay consumed, so
  // the ladder keeps making forward progress instead of re-trying
  // force-reorth after every fault.
  const TestSystem s = make_hard_system(3, /*grid=*/40);

  core::SolverOptions opts;
  opts.m = 45;
  opts.s = 15;
  opts.tol = 1e-6;
  opts.max_restarts = 8;
  opts.basis = core::Basis::kMonomial;
  opts.reorthogonalize = false;
  opts.reorth_on_breakdown = false;
  opts.adaptive_s = false;
  opts.health.monitor_condition = true;
  opts.health.monitor_residual_gap = true;
  opts.health.monitor_stagnation = true;

  Machine machine(3);
  sim::parse_fault_spec("kill:d1@op=400", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, opts);

  // The fault actually fired and forced a rollback...
  EXPECT_EQ(machine.n_devices(), 2);
  EXPECT_EQ(res.stats.recovery.device_failures, 1);
  EXPECT_GE(res.stats.recovery.rollbacks, 1);
  // ...and the ladder still acted (the same trips as the fault-free run).
  EXPECT_GT(res.stats.ladder_steps, 0);

  // Pin the cursor semantics: single-shot rungs fire at most once across
  // the whole solve (rollback included), and the action sequence never
  // steps back down the ladder.
  auto rung_index = [](EscalationStep a) {
    switch (a) {
      case EscalationStep::kForceReorth: return 0;
      case EscalationStep::kShrinkS: return 1;
      case EscalationStep::kRebuildShifts: return 2;
      case EscalationStep::kSwitchTsqr: return 3;
      case EscalationStep::kSwitchOrth: return 4;
      case EscalationStep::kFallbackGmres: return 5;
      case EscalationStep::kNone: return 6;
    }
    return 6;
  };
  int n_force_reorth = 0, n_shrink = 0, n_rebuild = 0, n_fallback = 0;
  int last_rung = -1;
  for (const auto& e : res.stats.health_events) {
    if (e.kind != HealthEventKind::kEscalation) continue;
    n_force_reorth += e.action == EscalationStep::kForceReorth;
    n_shrink += e.action == EscalationStep::kShrinkS;
    n_rebuild += e.action == EscalationStep::kRebuildShifts;
    n_fallback += e.action == EscalationStep::kFallbackGmres;
    EXPECT_GE(rung_index(e.action), last_rung)
        << "ladder stepped backwards after the rollback: "
        << core::to_string(e.action);
    last_rung = rung_index(e.action);
  }
  EXPECT_LE(n_force_reorth, 1);
  EXPECT_LE(n_shrink, 1);
  EXPECT_LE(n_rebuild, 1);
  EXPECT_LE(n_fallback, 1);
}

}  // namespace
}  // namespace cagmres
