// Edge-case and failure-injection tests: degenerate sizes, extreme solver
// parameters, non-convergence reporting, and argument validation across
// modules.
#include <cmath>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "blas/blas2.hpp"
#include "blas/blas3.hpp"
#include "blas/eig.hpp"
#include "blas/lapack.hpp"
#include "blas/least_squares.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "ortho/tsqr.hpp"
#include "sim/machine.hpp"
#include "sparse/coo.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"

#include "codec_tol.hpp"

namespace cagmres {
namespace {

TEST(BlasEdge, ZeroLengthOperations) {
  double dummy = 0.0;
  EXPECT_EQ(blas::dot(0, &dummy, &dummy), 0.0);
  EXPECT_EQ(blas::nrm2(0, &dummy), 0.0);
  blas::axpy(0, 1.0, &dummy, &dummy);  // must not touch memory
  blas::gemv_n(0, 0, 1.0, &dummy, 1, &dummy, 0.0, &dummy);
  blas::gemm(blas::Trans::N, blas::Trans::N, 0, 0, 0, 1.0, &dummy, 1, &dummy,
             1, 0.0, &dummy, 1);
}

TEST(BlasEdge, GemmWithAlphaZeroOnlyScalesC) {
  blas::DMat a(2, 2), b(2, 2), c(2, 2);
  c(0, 0) = 4.0;
  c(1, 1) = 6.0;
  a(0, 0) = std::nan("");  // must never be read
  blas::gemm(blas::Trans::N, blas::Trans::N, 2, 2, 2, 0.0, a.data(), 2,
             b.data(), 2, 0.5, c.data(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(BlasEdge, OneByOneFactorizations) {
  blas::DMat b(1, 1);
  b(0, 0) = 9.0;
  EXPECT_EQ(blas::potrf_upper(b), -1);
  EXPECT_DOUBLE_EQ(b(0, 0), 3.0);

  blas::DMat v(1, 1);
  v(0, 0) = -5.0;
  blas::DMat q, r;
  blas::qr_explicit(v, q, r);
  EXPECT_DOUBLE_EQ(r(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(q(0, 0), -1.0);

  auto eig = blas::hessenberg_eig(b);  // b now holds chol factor 3
  EXPECT_DOUBLE_EQ(eig[0].real(), 3.0);
}

TEST(BlasEdge, GivensWithZeroColumnMakesSolveThrow) {
  // A zero column never reaches the LS solver in GMRES (happy breakdown is
  // caught on the basis-vector norm first); if a caller feeds one anyway,
  // the triangular factor is singular and solve() must refuse.
  blas::GivensLS ls(2, 1.0);
  const double col[2] = {0.0, 0.0};
  ls.append_column(col);
  EXPECT_THROW(ls.solve(), Error);
}

TEST(SparseEdge, SingleRowMatrixAndEll) {
  sparse::CooBuilder b(1, 1);
  b.add(0, 0, 2.0);
  const sparse::CsrMatrix a = b.build();
  a.validate();
  const sparse::EllMatrix e = sparse::to_ell(a);
  const double x = 3.0;
  double y = 0.0;
  sparse::spmv(e, &x, &y);
  EXPECT_DOUBLE_EQ(y, 6.0);
}

TEST(SparseEdge, EmptyRowsSurvivePipeline) {
  // A matrix with completely empty rows must survive conversion, stats,
  // partitioning, and SpMV.
  sparse::CooBuilder b(4, 4);
  b.add(0, 0, 1.0);
  b.add(2, 2, 1.0);
  b.add(0, 2, -1.0);
  b.add(2, 0, -1.0);
  const sparse::CsrMatrix a = b.build();
  a.validate();
  EXPECT_EQ(a.row_nnz(1), 0);
  const sparse::EllMatrix e = sparse::to_ell(a);
  std::vector<double> x = {1, 2, 3, 4}, y1(4), y2(4);
  sparse::spmv(a, x.data(), y1.data());
  sparse::spmv(e, x.data(), y2.data());
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)]);
  EXPECT_DOUBLE_EQ(y1[1], 0.0);
  // MPK over it (identity-ish powers).
  const mpk::MpkPlan plan = mpk::build_mpk_plan(a, {0, 2, 4}, 2);
  sim::Machine m(2);
  sim::DistMultiVec v(plan.rows_per_device(), 3);
  v.col(0, 0)[0] = 1.0;
  mpk::MpkExecutor exec(plan);
  exec.apply(m, v, 0, 2);
  m.sync();  // the host reads the basis columns below
  EXPECT_DOUBLE_EQ(v.col(0, 2)[0], a.at(0, 0) * a.at(0, 0) +
                                       a.at(0, 2) * a.at(2, 0));
}

TEST(SolverEdge, RestartLengthOne) {
  // GMRES(1) is steepest-descent-like; must still run and make progress.
  const sparse::CsrMatrix a = sparse::make_laplace2d(8, 8, 0.0, 2.0);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(1);
  core::SolverOptions opts;
  opts.m = 1;
  opts.tol = 1e-4;
  opts.max_restarts = 500;
  const core::SolveResult res = core::gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
}

TEST(SolverEdge, SEqualsMAndSExceedsM) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(10, 10, 0.1, 0.5);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  for (const int s : {12, 40}) {  // == m and > m (clamped)
    sim::Machine machine(1);
    core::SolverOptions opts;
    opts.m = 12;
    opts.s = s;
    opts.tol = 1e-6;
    const core::SolveResult res = core::ca_gmres(machine, p, opts);
    EXPECT_TRUE(res.stats.converged) << "s=" << s;
  }
}

TEST(SolverEdge, NonConvergenceIsReportedHonestly) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(30, 30);  // hard enough
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(1);
  core::SolverOptions opts;
  opts.m = 5;
  opts.tol = 1e-12;
  opts.max_restarts = 3;  // nowhere near enough
  const core::SolveResult res = core::gmres(machine, p, opts);
  EXPECT_FALSE(res.stats.converged);
  EXPECT_EQ(res.stats.restarts, 3);
  EXPECT_GT(res.stats.final_residual, 0.0);
  // The partial solution is still the best-so-far iterate, not garbage.
  EXPECT_LT(core::true_residual(a, b, res.x),
            blas::nrm2(a.n_rows, b.data()));
}

TEST(SolverEdge, TinySystemManyDevices) {
  // n barely larger than the device count; blocks of 2-3 rows each.
  const sparse::CsrMatrix a = sparse::make_laplace2d(3, 3, 0.0, 1.0);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 3, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(3);
  core::SolverOptions opts;
  opts.m = 9;
  opts.s = 2;
  opts.tol = 1e-10;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  const double rel = core::true_residual(a, b, res.x) /
                     blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, test::codec_tol(1e-9, 1e-7));
}

TEST(SolverEdge, IdentityMatrixConvergesInOneIteration) {
  sparse::CooBuilder builder(50, 50);
  for (int i = 0; i < 50; ++i) builder.add(i, i, 1.0);
  const sparse::CsrMatrix a = builder.build();
  std::vector<double> b(50);
  Rng rng(3);
  for (auto& e : b) e = rng.normal();
  const core::Problem p =
      core::make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  sim::Machine machine(2);
  core::SolverOptions opts;
  opts.m = 10;
  opts.tol = 1e-12;
  const core::SolveResult res = core::gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  // Exact arithmetic converges in one iteration; fp32-quantized reduction
  // wires (CAGMRES_COMPRESS) leave a residual that takes a few more.
  EXPECT_LE(res.stats.iterations, test::codec_armed() ? 2 * opts.m : 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR(res.x[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(OrthoEdge, SingleColumnTsqrIsJustNormalization) {
  for (const auto method :
       {ortho::Method::kMgs, ortho::Method::kCgs, ortho::Method::kCholQr,
        ortho::Method::kSvqr, ortho::Method::kCaqr}) {
    sim::Machine m(2);
    sim::DistMultiVec v(std::vector<int>{40, 40}, 1);
    Rng rng(5);
    double nrm_sq = 0.0;
    for (int d = 0; d < 2; ++d) {
      for (int i = 0; i < 40; ++i) {
        v.col(d, 0)[i] = rng.normal();
        nrm_sq += v.col(d, 0)[i] * v.col(d, 0)[i];
      }
    }
    const ortho::TsqrResult res = ortho::tsqr(m, method, v, 0, 1);
    m.sync();  // the host reads the normalized column below
    EXPECT_NEAR(res.r(0, 0), std::sqrt(nrm_sq),
                test::codec_tol(1e-10, 1e-7) * std::sqrt(nrm_sq))
        << ortho::to_string(method);
    double after = 0.0;
    for (int d = 0; d < 2; ++d) {
      for (int i = 0; i < 40; ++i) after += v.col(d, 0)[i] * v.col(d, 0)[i];
    }
    EXPECT_NEAR(after, 1.0, test::codec_tol(1e-12, 1e-6))
        << ortho::to_string(method);
  }
}

TEST(OrthoEdge, ZeroColumnThrowsForGramSchmidt) {
  sim::Machine m(1);
  sim::DistMultiVec v(std::vector<int>{30}, 2);
  for (int i = 0; i < 30; ++i) v.col(0, 0)[i] = 1.0;
  // Column 1 stays zero.
  EXPECT_THROW(ortho::tsqr(m, ortho::Method::kMgs, v, 0, 2), Error);
  EXPECT_THROW(ortho::tsqr(m, ortho::Method::kCgs, v, 0, 2), Error);
}

TEST(OrthoEdge, BadColumnRangeRejected) {
  sim::Machine m(1);
  sim::DistMultiVec v(std::vector<int>{10}, 3);
  EXPECT_THROW(ortho::tsqr(m, ortho::Method::kCholQr, v, 2, 2), Error);
  EXPECT_THROW(ortho::tsqr(m, ortho::Method::kCholQr, v, 0, 4), Error);
  EXPECT_THROW(ortho::borth(m, ortho::BorthMethod::kCgs, v, 3, 3), Error);
}

TEST(MpkEdge, ApplyArgumentValidation) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(6, 6);
  const mpk::MpkPlan plan = mpk::build_mpk_plan(a, {0, 36}, 3);
  mpk::MpkExecutor exec(plan);
  sim::Machine m(1);
  sim::DistMultiVec v(plan.rows_per_device(), 3);
  EXPECT_THROW(exec.apply(m, v, 0, 4), Error);   // steps > plan.s
  EXPECT_THROW(exec.apply(m, v, 1, 3), Error);   // column overflow
  EXPECT_THROW(exec.apply(m, v, 0, 0), Error);   // zero steps
  sim::DistMultiVec wrong(std::vector<int>{20}, 3);
  EXPECT_THROW(exec.apply(m, wrong, 0, 2), Error);  // row-layout mismatch
}

TEST(ProblemEdge, MismatchedSizesRejected) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(4, 4);
  EXPECT_THROW(core::make_problem(a, std::vector<double>(5, 1.0), 1,
                                  graph::Ordering::kNatural),
               Error);
  sparse::CooBuilder rect(3, 4);
  rect.add(0, 0, 1.0);
  EXPECT_THROW(core::make_problem(rect.build(), std::vector<double>(3, 1.0),
                                  1, graph::Ordering::kNatural),
               Error);
}

}  // namespace
}  // namespace cagmres
