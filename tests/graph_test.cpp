// Unit tests for the graph algorithms: adjacency, BFS, RCM, k-way
// partitioning, and partition metrics.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/adjacency.hpp"
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "graph/partition.hpp"
#include "graph/rcm.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"

namespace cagmres::graph {
namespace {

using sparse::CsrMatrix;

/// Path graph 0-1-2-...-(n-1) as a matrix.
CsrMatrix path_matrix(int n) {
  sparse::CooBuilder b(n, n);
  for (int i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      b.add(i + 1, i, -1.0);
    }
  }
  return b.build();
}

TEST(Adjacency, SymmetrizesAndDropsSelfLoops) {
  sparse::CooBuilder b(3, 3);
  b.add(0, 0, 1.0);
  b.add(0, 1, 1.0);  // only one direction stored
  b.add(2, 1, 1.0);
  const Adjacency g = build_adjacency(b.build());
  EXPECT_EQ(g.n, 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);  // sees both 0 and 2
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(*g.begin(0), 1);
}

TEST(Bfs, LevelsOnPathGraph) {
  const Adjacency g = build_adjacency(path_matrix(6));
  const LevelStructure ls = bfs_levels(g, 0);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(ls.level[static_cast<std::size_t>(v)], v);
  EXPECT_EQ(ls.height, 5);
  EXPECT_EQ(ls.reached, 6);
}

TEST(Bfs, MultiSourceAndDisconnected) {
  // Two disconnected paths: 0-1-2 and 3-4.
  sparse::CooBuilder b(5, 5);
  b.add(0, 1, 1.0);
  b.add(1, 2, 1.0);
  b.add(3, 4, 1.0);
  for (int i = 0; i < 5; ++i) b.add(i, i, 1.0);
  const Adjacency g = build_adjacency(b.build());
  const LevelStructure ls = bfs_levels(g, std::vector<int>{0, 2});
  EXPECT_EQ(ls.level[0], 0);
  EXPECT_EQ(ls.level[1], 1);
  EXPECT_EQ(ls.level[2], 0);
  EXPECT_EQ(ls.level[3], -1);  // unreachable
  EXPECT_EQ(ls.reached, 3);
}

TEST(Bfs, PseudoPeripheralOnPathFindsEndpoint) {
  const Adjacency g = build_adjacency(path_matrix(9));
  const int v = pseudo_peripheral_vertex(g, 4);  // start in the middle
  EXPECT_TRUE(v == 0 || v == 8);
}

TEST(Rcm, IsAPermutation) {
  const CsrMatrix a = sparse::make_circuit_like(0.04, true, 3);
  const std::vector<int> p = rcm_ordering(build_adjacency(a));
  ASSERT_EQ(static_cast<int>(p.size()), a.n_rows);
  std::vector<char> seen(p.size(), 0);
  for (const int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, a.n_rows);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST(Rcm, ReducesBandwidthOfScrambledGrid) {
  // A randomly permuted pure grid: RCM must recover most of the lost
  // locality (a circuit-like graph with random long edges bounds what any
  // ordering can do, so use the clean grid for the strong assertion).
  const CsrMatrix grid = sparse::make_laplace2d(24, 24);
  Rng rng(55);
  const CsrMatrix scrambled =
      sparse::permute_symmetric(grid, rng.permutation(grid.n_rows));
  const sparse::MatrixStats before = sparse::compute_stats(scrambled);
  const std::vector<int> p = rcm_ordering(build_adjacency(scrambled));
  const CsrMatrix ar = sparse::permute_symmetric(scrambled, p);
  const sparse::MatrixStats after = sparse::compute_stats(ar);
  EXPECT_LT(after.avg_bandwidth, 0.25 * before.avg_bandwidth);
  EXPECT_LT(after.bandwidth, 64);  // near the grid's natural band of ~24

  // On the circuit-like graph RCM still helps, just less dramatically.
  const CsrMatrix cir = sparse::make_circuit_like(0.05, true, 5);
  const sparse::MatrixStats cb = sparse::compute_stats(cir);
  const CsrMatrix cr =
      sparse::permute_symmetric(cir, rcm_ordering(build_adjacency(cir)));
  EXPECT_LT(sparse::compute_stats(cr).avg_bandwidth, 0.7 * cb.avg_bandwidth);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  sparse::CooBuilder b(6, 6);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(2, 3, 1.0);
  b.add(3, 2, 1.0);
  for (int i = 0; i < 6; ++i) b.add(i, i, 1.0);
  const std::vector<int> p = rcm_ordering(build_adjacency(b.build()));
  EXPECT_EQ(p.size(), 6u);  // isolated vertices 4, 5 included
}

TEST(Kway, PartitionIsBalancedAndComplete) {
  const CsrMatrix a = sparse::make_laplace2d(20, 20);
  const Adjacency g = build_adjacency(a);
  for (const int np : {2, 3, 4}) {
    const std::vector<int> part = kway_partition(g, np, 1);
    const std::vector<int> sizes = part_sizes(part, np);
    for (const int s : sizes) EXPECT_GT(s, 0);
    EXPECT_LE(imbalance(part, np), 1.12);
  }
}

TEST(Kway, CutBeatsRandomAssignment) {
  const CsrMatrix a = sparse::make_laplace2d(24, 24);
  const Adjacency g = build_adjacency(a);
  const std::vector<int> part = kway_partition(g, 3, 2);
  Rng rng(9);
  std::vector<int> random_part(static_cast<std::size_t>(g.n));
  for (auto& p : random_part) p = static_cast<int>(rng.bounded(3));
  // A grid has a natural cut ~O(sqrt(n)); random assignment cuts ~2/3 of
  // all edges. The partitioner must be far closer to the former.
  EXPECT_LT(edge_cut(g, part), edge_cut(g, random_part) / 4);
}

TEST(Kway, SinglePartTrivial) {
  const CsrMatrix a = path_matrix(10);
  const Adjacency g = build_adjacency(a);
  const std::vector<int> part = kway_partition(g, 1, 0);
  for (const int p : part) EXPECT_EQ(p, 0);
  EXPECT_EQ(edge_cut(g, part), 0);
}

TEST(Kway, DisconnectedGraphStillCovered) {
  sparse::CooBuilder b(8, 8);
  for (int i = 0; i < 8; ++i) b.add(i, i, 1.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);  // the rest are isolated vertices
  const Adjacency g = build_adjacency(b.build());
  const std::vector<int> part = kway_partition(g, 2, 3);
  const std::vector<int> sizes = part_sizes(part, 2);
  EXPECT_EQ(sizes[0] + sizes[1], 8);
  EXPECT_GT(sizes[0], 0);
  EXPECT_GT(sizes[1], 0);
}

TEST(Partition, NaturalGivesContiguousEqualBlocks) {
  const CsrMatrix a = path_matrix(10);
  const Partition p = make_partition(a, 3, Ordering::kNatural);
  EXPECT_EQ(p.offsets.front(), 0);
  EXPECT_EQ(p.offsets.back(), 10);
  for (int d = 0; d < 3; ++d) EXPECT_GE(p.part_rows(d), 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.perm[static_cast<std::size_t>(i)], i);
}

TEST(Partition, AllSchemesProduceValidPermutations) {
  const CsrMatrix a = sparse::make_circuit_like(0.04, true, 17);
  for (const Ordering o :
       {Ordering::kNatural, Ordering::kRcm, Ordering::kKway}) {
    const Partition p = make_partition(a, 3, o, 5);
    ASSERT_EQ(static_cast<int>(p.perm.size()), a.n_rows) << to_string(o);
    std::vector<char> seen(p.perm.size(), 0);
    for (const int v : p.perm) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = 1;
    }
    EXPECT_EQ(p.offsets.front(), 0);
    EXPECT_EQ(p.offsets.back(), a.n_rows);
    for (int d = 0; d < 3; ++d) EXPECT_GT(p.part_rows(d), 0);
  }
}

TEST(Partition, NodeFirstSplitIsolatesDisconnectedBands) {
  // Two banded (cant-like) blocks with no coupling between them, split
  // node-first over 2 nodes x 4 devices: the KWY node stage must put one
  // component per node, so no halo edge crosses the inter-node link.
  const int nb = 120, band = 3;
  sparse::CooBuilder b(2 * nb, 2 * nb);
  for (int blk = 0; blk < 2; ++blk) {
    const int base = blk * nb;
    for (int i = 0; i < nb; ++i) {
      b.add(base + i, base + i, 4.0);
      for (int w = 1; w <= band; ++w) {
        if (i + w < nb) {
          b.add(base + i, base + i + w, -1.0);
          b.add(base + i + w, base + i, -1.0);
        }
      }
    }
  }
  const CsrMatrix a = b.build();
  const Partition p = make_partition(a, 8, Ordering::kKway, 3, 2);
  EXPECT_EQ(p.n_parts, 8);
  for (int d = 0; d < 8; ++d) EXPECT_GT(p.part_rows(d), 0);
  EXPECT_EQ(cross_node_edges(a, p, 2), 0);
  // The node-agnostic split of the same graph is what the node-first stage
  // improves on; it must never do better than the dedicated split.
  const Partition flat = make_partition(a, 8, Ordering::kKway, 3);
  EXPECT_GE(cross_node_edges(a, flat, 2), cross_node_edges(a, p, 2));
}

TEST(Partition, ParseRoundTrip) {
  EXPECT_EQ(parse_ordering("natural"), Ordering::kNatural);
  EXPECT_EQ(parse_ordering("rcm"), Ordering::kRcm);
  EXPECT_EQ(parse_ordering("kwy"), Ordering::kKway);
  EXPECT_EQ(to_string(Ordering::kKway), "kway");
  EXPECT_THROW(parse_ordering("hilbert"), Error);
}

TEST(Metrics, EdgeCutCountsOnce) {
  const Adjacency g = build_adjacency(path_matrix(4));
  EXPECT_EQ(edge_cut(g, {0, 0, 1, 1}), 1);
  EXPECT_EQ(edge_cut(g, {0, 1, 0, 1}), 3);
  EXPECT_DOUBLE_EQ(imbalance({0, 0, 1, 1}, 2), 1.0);
}

}  // namespace
}  // namespace cagmres::graph
