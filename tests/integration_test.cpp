// Cross-module integration tests: end-to-end identities that tie the
// substrates together — MPK feeding TSQR, the Hessenberg recovery against
// an explicitly computed A*Q, solver equivalence across data layouts, and
// clock/counter consistency across whole solves.
#include <cmath>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "blas/blas3.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/cpu_gmres.hpp"
#include "core/gmres.hpp"
#include "core/hessenberg.hpp"
#include "core/shifts.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "ortho/borth.hpp"
#include "ortho/metrics.hpp"
#include "ortho/tsqr.hpp"
#include "sim/device_blas.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

#include "codec_tol.hpp"

namespace cagmres {
namespace {

using sim::DistMultiVec;
using sim::Machine;

/// Gathers a distributed column into one host vector.
std::vector<double> gather_col(const DistMultiVec& v, int col) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(v.total_rows()));
  for (int d = 0; d < v.n_parts(); ++d) {
    const double* p = v.col(d, col);
    out.insert(out.end(), p, p + v.local_rows(d));
  }
  return out;
}

/// Runs one CA block pipeline (MPK -> BOrth -> TSQR) by hand and verifies
/// the defining identity A Q(:,1:k) = Q H column by column against
/// explicitly computed SpMVs.
TEST(Pipeline, HessenbergIdentityHoldsAgainstExplicitSpmv) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(14, 13, 0.3, 0.5);
  const int n = a.n_rows;
  const int s = 4, blocks = 3, m = s * blocks;  // m = 12 basis vectors
  const std::vector<int> offsets = {0, n / 2, n};
  const mpk::MpkPlan plan = mpk::build_mpk_plan(a, offsets, s);
  mpk::MpkExecutor exec(plan);
  Machine machine(2);

  DistMultiVec v(plan.rows_per_device(), m + 1);
  Rng rng(3);
  {
    std::vector<double> r0(static_cast<std::size_t>(n));
    for (auto& e : r0) e = rng.normal();
    const double nrm = blas::nrm2(n, r0.data());
    std::size_t off = 0;
    for (int d = 0; d < 2; ++d) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        v.col(d, 0)[i] = r0[off + static_cast<std::size_t>(i)] / nrm;
      }
      off += static_cast<std::size_t>(v.local_rows(d));
    }
  }

  // Newton shifts: arbitrary but fixed, with a conjugate pair.
  core::Shifts step;
  step.re = {0.8, 1.1, 1.1, -0.3};
  step.im = {0.0, 0.6, -0.6, 0.0};

  blas::DMat r_total(m + 1, m + 1);
  r_total(0, 0) = 1.0;
  std::vector<char> starts(static_cast<std::size_t>(m) + 1, 0);
  starts[0] = 1;
  core::Shifts col_shifts;
  col_shifts.re.assign(static_cast<std::size_t>(m), 0.0);
  col_shifts.im.assign(static_cast<std::size_t>(m), 0.0);

  int done = 1;
  while (done < m + 1) {
    starts[static_cast<std::size_t>(done) - 1] = 1;
    exec.apply(machine, v, done - 1, s, {step.re.data(), step.im.data()});
    for (int i = 0; i < s; ++i) {
      col_shifts.re[static_cast<std::size_t>(done - 1 + i)] = step.re[static_cast<std::size_t>(i)];
      col_shifts.im[static_cast<std::size_t>(done - 1 + i)] = step.im[static_cast<std::size_t>(i)];
    }
    const blas::DMat c =
        ortho::borth(machine, ortho::BorthMethod::kCgs, v, done, done + s);
    const ortho::TsqrResult tq =
        ortho::tsqr(machine, ortho::Method::kCaqr, v, done, done + s);
    for (int i = 0; i < s; ++i) {
      for (int row = 0; row < done; ++row) r_total(row, done + i) = c(row, i);
      for (int row = 0; row <= i; ++row) {
        r_total(done + row, done + i) = tq.r(row, i);
      }
    }
    done += s;
  }
  machine.sync();  // the host gathers the basis columns below
  const blas::DMat h = core::hessenberg_blocked(r_total, starts, col_shifts);

  // Verify A q_j == sum_i H(i,j) q_i for every column.
  std::vector<double> aq(static_cast<std::size_t>(n));
  for (int j = 0; j < m; ++j) {
    const std::vector<double> qj = gather_col(v, j);
    // The multivector lives in the permuted (here: identity-partitioned)
    // space, and offsets split the natural order, so plain SpMV applies.
    sparse::spmv(a, qj.data(), aq.data());
    std::vector<double> recon(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i <= j + 1; ++i) {
      const std::vector<double> qi = gather_col(v, i);
      blas::axpy(n, h(i, j), qi.data(), recon.data());
    }
    double err = 0.0, scale = 0.0;
    for (int i = 0; i < n; ++i) {
      err += (recon[static_cast<std::size_t>(i)] - aq[static_cast<std::size_t>(i)]) *
             (recon[static_cast<std::size_t>(i)] - aq[static_cast<std::size_t>(i)]);
      scale += aq[static_cast<std::size_t>(i)] * aq[static_cast<std::size_t>(i)];
    }
    EXPECT_LT(std::sqrt(err / (scale + 1e-300)), test::codec_tol(1e-9, 1e-8))
        << "column " << j;
  }
  // And the basis is orthonormal (to fp32 grade when a codec quantizes the
  // projection coefficients on the wire).
  EXPECT_LT(ortho::orthogonality_error(v, 0, m + 1),
            test::codec_tol(1e-10, 1e-4));
}

TEST(Pipeline, MpkThenTsqrSpansTheKrylovSpace) {
  // After orthogonalization, the basis columns must span the same Krylov
  // space as explicitly computed powers: verify by projecting the powers
  // onto the Q basis and checking the residual is ~0.
  const sparse::CsrMatrix a = sparse::make_laplace2d(10, 10, 0.2, 0.4);
  const int n = a.n_rows, s = 5;
  const mpk::MpkPlan plan = mpk::build_mpk_plan(a, {0, n}, s);
  mpk::MpkExecutor exec(plan);
  Machine machine(1);
  DistMultiVec v(plan.rows_per_device(), s + 1);
  Rng rng(4);
  for (int i = 0; i < n; ++i) v.col(0, 0)[i] = rng.normal();
  const std::vector<double> x0 = gather_col(v, 0);
  exec.apply(machine, v, 0, s);
  ortho::tsqr(machine, ortho::Method::kCaqr, v, 0, s + 1);
  machine.sync();  // the host reads the panel below

  // Explicit power A^s x0.
  std::vector<double> p = x0, tmp(static_cast<std::size_t>(n));
  for (int k = 0; k < s; ++k) {
    sparse::spmv(a, p.data(), tmp.data());
    p.swap(tmp);
  }
  // Residual of p after projection onto span(Q).
  std::vector<double> proj(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j <= s; ++j) {
    const double* qj = v.col(0, j);
    const double coef = blas::dot(n, qj, p.data());
    blas::axpy(n, coef, qj, proj.data());
  }
  double num = 0.0, den = 0.0;
  for (int i = 0; i < n; ++i) {
    num += (p[static_cast<std::size_t>(i)] - proj[static_cast<std::size_t>(i)]) *
           (p[static_cast<std::size_t>(i)] - proj[static_cast<std::size_t>(i)]);
    den += p[static_cast<std::size_t>(i)] * p[static_cast<std::size_t>(i)];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-8);
}

TEST(Equivalence, SolutionIndependentOfDeviceCount) {
  // The same problem solved on 1, 2, 3 devices differs only by reduction
  // rounding: solutions must agree far beyond the solve tolerance.
  const sparse::CsrMatrix a = sparse::make_laplace2d(18, 15, 0.25, 0.4);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  std::vector<std::vector<double>> solutions;
  for (int ng = 1; ng <= 3; ++ng) {
    const core::Problem p =
        core::make_problem(a, b, ng, graph::Ordering::kNatural, false, 1);
    Machine machine(ng);
    core::SolverOptions opts;
    opts.m = 25;
    opts.s = 5;
    opts.tol = 1e-9;
    const core::SolveResult res = core::ca_gmres(machine, p, opts);
    ASSERT_TRUE(res.stats.converged);
    solutions.push_back(res.x);
  }
  for (std::size_t k = 1; k < solutions.size(); ++k) {
    for (int i = 0; i < a.n_rows; ++i) {
      EXPECT_NEAR(solutions[k][static_cast<std::size_t>(i)],
                  solutions[0][static_cast<std::size_t>(i)], 1e-6);
    }
  }
}

TEST(Equivalence, SolutionIndependentOfOrdering) {
  // Natural / RCM / KWY reorder the computation but solve the same system.
  const sparse::CsrMatrix a = sparse::make_circuit_like(0.04, true, 5);
  std::vector<double> b(static_cast<std::size_t>(a.n_rows));
  Rng rng(6);
  for (auto& e : b) e = rng.normal();
  std::vector<double> reference;
  for (const auto o : {graph::Ordering::kNatural, graph::Ordering::kRcm,
                       graph::Ordering::kKway}) {
    const core::Problem p = core::make_problem(a, b, 2, o, true, 3);
    Machine machine(2);
    core::SolverOptions opts;
    opts.m = 30;
    opts.s = 6;
    // fp32-quantized reduction wires cap the attainable residual on this
    // ill-conditioned circuit matrix; ask only for what the codec can give.
    opts.tol = test::codec_tol(1e-8, 1e-4);
    opts.max_restarts = 400;
    const core::SolveResult res = core::ca_gmres(machine, p, opts);
    ASSERT_TRUE(res.stats.converged) << graph::to_string(o);
    if (reference.empty()) {
      reference = res.x;
    } else {
      for (int i = 0; i < a.n_rows; ++i) {
        EXPECT_NEAR(res.x[static_cast<std::size_t>(i)],
                    reference[static_cast<std::size_t>(i)],
                    test::codec_near(2e-5,
                                     reference[static_cast<std::size_t>(i)],
                                     100.0))
            << graph::to_string(o);
      }
    }
  }
}

TEST(Equivalence, EllAndCsrDevicePathsAgree) {
  const sparse::CsrMatrix a = sparse::make_cant_like(0.1);
  const std::vector<int> offsets = {0, a.n_rows / 3, a.n_rows};
  const mpk::MpkPlan plan_ell = mpk::build_mpk_plan(a, offsets, 3, true);
  const mpk::MpkPlan plan_csr = mpk::build_mpk_plan(a, offsets, 3, false);
  Machine m1(2), m2(2);
  DistMultiVec v1(plan_ell.rows_per_device(), 4);
  Rng rng(7);
  for (int d = 0; d < 2; ++d) {
    for (int i = 0; i < v1.local_rows(d); ++i) v1.col(d, 0)[i] = rng.normal();
  }
  DistMultiVec v2 = v1;
  // Named executors: their z scratch buffers must outlive the enqueued
  // kernels (a temporary would be destroyed before the streams drain).
  mpk::MpkExecutor exec_ell(plan_ell), exec_csr(plan_csr);
  exec_ell.apply(m1, v1, 0, 3);
  exec_csr.apply(m2, v2, 0, 3);
  m1.sync();  // the host compares the two bases below
  m2.sync();
  for (int d = 0; d < 2; ++d) {
    for (int k = 1; k <= 3; ++k) {
      for (int i = 0; i < v1.local_rows(d); ++i) {
        EXPECT_NEAR(v1.col(d, k)[i], v2.col(d, k)[i], 1e-12);
      }
    }
  }
  // The device model prices CSR traversal above ELLPACK (the reason the
  // paper uses ELLPACK on GPUs).
  EXPECT_LT(m1.clock().elapsed(), m2.clock().elapsed());
}

TEST(Accounting, PhaseTimesPartitionTheTotal) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 16, 0.2, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 3, graph::Ordering::kKway, true, 2);
  Machine machine(3);
  core::SolverOptions opts;
  opts.m = 16;
  opts.s = 4;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  const auto& st = res.stats;
  const double sum = st.time_spmv + st.time_mpk + st.time_orth +
                     st.time_borth + st.time_tsqr + st.time_other;
  EXPECT_NEAR(sum, st.time_total, 1e-9 + 1e-9 * st.time_total);
  EXPECT_GE(st.time_other, 0.0);
  EXPECT_GT(st.time_tsqr, 0.0);
  EXPECT_GT(st.time_borth, 0.0);
}

TEST(Accounting, SolverChargesScaleWithDevices) {
  // On a large enough matrix, more devices => more total messages but less
  // elapsed time. (On tiny matrices latency dominates and extra devices
  // hurt — which the model also reproduces, see the paper's scaling
  // caveats.)
  const sparse::CsrMatrix a = sparse::make_cant_like(1.0);  // n ~ 62k
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  std::vector<double> elapsed;
  std::vector<std::int64_t> msgs;
  for (const int ng : {1, 3}) {
    const core::Problem p =
        core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
    Machine machine(ng);
    core::SolverOptions opts;
    opts.m = 30;
    opts.max_restarts = 2;
    core::gmres(machine, p, opts);
    elapsed.push_back(machine.clock().elapsed());
    msgs.push_back(machine.counters().total_msgs());
  }
  EXPECT_LT(elapsed[1], elapsed[0]);
  EXPECT_GT(msgs[1], msgs[0]);
}

TEST(CpuPath, MatchesDeviceNumericsBitwiseOnOneDevice) {
  // With one device and MGS, the device GMRES and CPU GMRES perform the
  // same floating-point operations in the same order up to the residual
  // reductions; the solutions agree to near machine precision.
  const sparse::CsrMatrix a = sparse::make_laplace2d(12, 11, 0.15, 0.5);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  core::SolverOptions opts;
  opts.m = 20;
  opts.tol = 1e-10;
  opts.gmres_orth = ortho::Method::kMgs;
  Machine m1(1), m2(1);
  const auto r_dev = core::gmres(m1, p, opts);
  const auto r_cpu = core::cpu_gmres(m2, p, opts);
  ASSERT_TRUE(r_dev.stats.converged);
  ASSERT_TRUE(r_cpu.stats.converged);
  EXPECT_EQ(r_dev.stats.restarts, r_cpu.stats.restarts);
  // The CPU path never touches the wire, so an armed codec legitimately
  // perturbs only the device side: compare to convergence grade then.
  for (int i = 0; i < a.n_rows; ++i) {
    EXPECT_NEAR(r_dev.x[static_cast<std::size_t>(i)],
                r_cpu.x[static_cast<std::size_t>(i)],
                test::codec_tol(1e-12, 1e-10));
  }
}

TEST(Shifts, NewtonBasisImprovesBlockConditioning) {
  // End-to-end property behind §IV-A: with identical setups, the Newton
  // basis blocks are orders of magnitude better conditioned than monomial.
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.1, 0.05);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, true, 1);
  auto worst_kappa = [&](core::Basis basis) {
    Machine machine(1);
    core::SolverOptions opts;
    opts.m = 24;
    opts.s = 12;
    opts.basis = basis;
    opts.max_restarts = 6;
    opts.collect_tsqr_errors = true;
    opts.tsqr = ortho::Method::kSvqr;  // never breaks down
    const auto res = core::ca_gmres(machine, p, opts);
    double mx = 0.0;
    for (const auto& e : res.stats.tsqr_errors) {
      mx = std::max(mx, e.kappa_block);
    }
    return mx;
  };
  const double kappa_mono = worst_kappa(core::Basis::kMonomial);
  const double kappa_newton = worst_kappa(core::Basis::kNewton);
  EXPECT_LT(kappa_newton * 1e2, kappa_mono);
}

}  // namespace
}  // namespace cagmres
