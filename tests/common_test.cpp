// Unit tests for the common utilities: RNG determinism and statistics,
// option parsing, table rendering, and error macros — plus the vector I/O
// added to sparse/io.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sparse/io.hpp"

namespace cagmres {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  // Different seeds diverge immediately.
  Rng a2(123);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(6);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BoundedIsUnbiasedEnough) {
  Rng rng(7);
  int counts[5] = {0, 0, 0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(5)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
  EXPECT_THROW(rng.bounded(0), Error);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(8);
  const std::vector<int> p = rng.permutation(200);
  std::vector<char> seen(200, 0);
  for (const int v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 200);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST(Options, ParsesAllForms) {
  Options opts("test");
  opts.add("alpha", "1", "an int");
  opts.add("name", "x", "a string");
  opts.add("flag", "0", "a boolean");
  opts.add("list", "1,2", "an int list");
  const char* argv[] = {"prog", "--alpha=7", "--name", "hello", "--flag",
                        "--list=3,4,5"};
  ASSERT_TRUE(opts.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(opts.get_int("alpha"), 7);
  EXPECT_EQ(opts.get("name"), "hello");
  EXPECT_TRUE(opts.get_bool("flag"));
  EXPECT_EQ(opts.get_int_list("list"), (std::vector<int>{3, 4, 5}));
}

TEST(Options, IntListRejectsEmptyAndGarbageEntries) {
  Options opts("test");
  opts.add("s", "1,2", "an int list");
  auto set = [&](const char* value) {
    const std::string arg = std::string("--s=") + value;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(opts.parse(2, const_cast<char**>(argv)));
  };
  set("1,,4");  // empty middle entry must not be silently skipped
  EXPECT_THROW(opts.get_int_list("s"), Error);
  set("1,2,");  // trailing separator
  EXPECT_THROW(opts.get_int_list("s"), Error);
  set(",1");  // leading separator
  EXPECT_THROW(opts.get_int_list("s"), Error);
  set("1,two,3");  // non-numeric entry
  EXPECT_THROW(opts.get_int_list("s"), Error);
  set("1,2x");  // trailing garbage after a valid prefix
  EXPECT_THROW(opts.get_int_list("s"), Error);
  set("7");  // single entry still fine
  EXPECT_EQ(opts.get_int_list("s"), (std::vector<int>{7}));
  set("-3,0,12");  // signs and zero still fine
  EXPECT_EQ(opts.get_int_list("s"), (std::vector<int>{-3, 0, 12}));
}

TEST(Options, DefaultsAndErrors) {
  Options opts("test");
  opts.add("x", "2.5", "a double");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(opts.parse(1, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(opts.get_double("x"), 2.5);
  EXPECT_THROW(opts.get("nope"), Error);

  const char* bad[] = {"prog", "--unknown=1"};
  EXPECT_THROW(opts.parse(2, const_cast<char**>(bad)), Error);
  const char* notopt[] = {"prog", "stray"};
  EXPECT_THROW(opts.parse(2, const_cast<char**>(notopt)), Error);
  EXPECT_THROW(opts.add("x", "1", "duplicate"), Error);
}

TEST(Options, HelpReturnsFalseAndPrints) {
  Options opts("my tool");
  opts.add("k", "1", "the knob");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(opts.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(opts.help().find("my tool"), std::string::npos);
  EXPECT_NE(opts.help().find("--k"), std::string::npos);
}

TEST(Table, AlignsColumnsAndSeparators) {
  Table t({"aa", "b"});
  t.add_row({"1", "22"});
  t.add_separator();
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("aa"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream is(s);
  std::string line;
  int lines = 0;
  std::size_t header_len = 0;
  while (std::getline(is, line)) {
    if (lines == 0) {
      header_len = line.size();
    } else if (lines % 2 == 0) {
      EXPECT_EQ(line.size(), header_len);  // data rows align with the header
    }
    ++lines;
  }
  EXPECT_EQ(lines, 5);  // header, rule, row, rule, row
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt_int(1234567), "1234567");
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    CAGMRES_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(VectorIo, RoundTripsMatrixMarketArray) {
  const std::vector<double> x = {1.5, -2.25, 1e-17, 4.0};
  std::stringstream ss;
  sparse::write_vector(x, ss);
  const std::vector<double> y = sparse::read_vector(ss);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(VectorIo, ReadsBareNumberList) {
  std::stringstream ss("1.0\n2.0\n3.0\n");
  const std::vector<double> x = sparse::read_vector(ss);
  EXPECT_EQ(x, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(VectorIo, RejectsShortArrayAndMatrixShapes) {
  std::stringstream short_file(
      "%%MatrixMarket matrix array real general\n3 1\n1.0\n2.0\n");
  EXPECT_THROW(sparse::read_vector(short_file), Error);
  std::stringstream two_cols(
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(sparse::read_vector(two_cols), Error);
  std::stringstream empty("");
  EXPECT_THROW(sparse::read_vector(empty), Error);
}

}  // namespace
}  // namespace cagmres
