// Tests for the paper-§VII extension features: mixed-precision CholQR
// (ref [23]), the adaptive block-size scheme, and rank-revealing pivoted QR
// (ref [10]).
#include <cmath>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "blas/blas3.hpp"
#include "blas/lapack.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/solver_common.hpp"
#include "ortho/metrics.hpp"
#include "ortho/tsqr.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

namespace cagmres {
namespace {

using sim::DistMultiVec;
using sim::Machine;

std::vector<int> split_rows(int n, int ng) {
  std::vector<int> rows(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    rows[static_cast<std::size_t>(d)] =
        static_cast<int>((static_cast<long long>(n) * (d + 1)) / ng -
                         (static_cast<long long>(n) * d) / ng);
  }
  return rows;
}

void fill_random(DistMultiVec& v, Rng& rng) {
  for (int d = 0; d < v.n_parts(); ++d) {
    for (int j = 0; j < v.cols(); ++j) {
      double* col = v.col(d, j);
      for (int i = 0; i < v.local_rows(d); ++i) col[i] = rng.normal();
    }
  }
}

TEST(CholQrMixed, FactorizesWithFloatLevelOrthogonality) {
  Machine m(2);
  Rng rng(41);
  const int n = 400, k = 6;
  DistMultiVec v(split_rows(n, 2), k);
  fill_random(v, rng);
  DistMultiVec v0 = v;

  const ortho::TsqrResult res =
      ortho::tsqr(m, ortho::Method::kCholQrMp, v, 0, k);
  EXPECT_FALSE(res.breakdown);
  const ortho::OrthoErrors e = ortho::measure_errors(v, v0, 0, k, res.r);
  // Float Gram: orthogonality at single-precision level, far above double
  // CholQR but far below failure.
  EXPECT_LT(e.orthogonality, 1e-4);
  EXPECT_GT(e.orthogonality, 1e-12);
  // The factorization error stays small (R consistent with the Q produced).
  EXPECT_LT(e.factorization, 1e-4);
}

TEST(CholQrMixed, CheaperThanDoubleCholQr) {
  const int n = 200000, k = 20;
  Rng rng(42);
  Machine m_double(3), m_mixed(3);
  DistMultiVec v1(split_rows(n, 3), k);
  fill_random(v1, rng);
  DistMultiVec v2 = v1;
  ortho::tsqr(m_double, ortho::Method::kCholQr, v1, 0, k);
  ortho::tsqr(m_mixed, ortho::Method::kCholQrMp, v2, 0, k);
  m_double.sync_all();
  m_mixed.sync_all();
  EXPECT_LT(m_mixed.clock().elapsed(), m_double.clock().elapsed());
  // Identical communication structure: still just 2 messages per device.
  EXPECT_EQ(m_mixed.counters().total_msgs(), m_double.counters().total_msgs());
}

TEST(CholQrMixed, ParseRoundTrip) {
  EXPECT_EQ(ortho::parse_method("cholqr_mp"), ortho::Method::kCholQrMp);
  EXPECT_EQ(ortho::to_string(ortho::Method::kCholQrMp), "cholqr_mp");
}

TEST(CholQrMixed, SolvesInsideCaGmresWithReorth) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.2, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  Machine machine(2);
  core::SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tsqr = ortho::Method::kCholQrMp;
  opts.reorthogonalize = true;  // recover the lost digits
  opts.tol = 1e-6;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  const double rel = core::true_residual(a, b, res.x) /
                     blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
}

TEST(AdaptiveS, ShrinksOnBreakdownAndRecovers) {
  // Monomial basis with s=20 on this matrix reliably breaks CholQR; the
  // adaptive scheme must shrink the block size instead of thrashing.
  const sparse::CsrMatrix a = sparse::make_laplace2d(30, 30, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, true, 1);
  Machine machine(1);
  core::SolverOptions opts;
  opts.m = 40;
  opts.s = 20;
  opts.basis = core::Basis::kMonomial;
  opts.adaptive_s = true;
  opts.max_restarts = 12;
  opts.tol = 1e-8;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  ASSERT_FALSE(res.stats.block_sizes.empty());
  if (res.stats.cholqr_breakdowns > 0) {
    // After a breakdown some later block must be smaller than s.
    int smallest = opts.s;
    for (const int bs : res.stats.block_sizes) smallest = std::min(smallest, bs);
    EXPECT_LT(smallest, opts.s);
  }
  // Every block size stays within [min_s, s].
  for (const int bs : res.stats.block_sizes) {
    EXPECT_GE(bs, opts.adaptive_min_s);
    EXPECT_LE(bs, opts.s);
  }
}

TEST(AdaptiveS, DisabledKeepsFixedBlocks) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 16, 0.2, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  Machine machine(1);
  core::SolverOptions opts;
  opts.m = 16;
  opts.s = 5;
  opts.tol = 1e-6;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  for (std::size_t i = 0; i < res.stats.block_sizes.size(); ++i) {
    const int bs = res.stats.block_sizes[i];
    EXPECT_TRUE(bs == 5 || bs == 1)  // 16 = 5+5+5+1 per restart
        << "block " << i << " size " << bs;
  }
}

TEST(PivotedQr, ReconstructsWithPermutation) {
  const int m = 30, n = 8;
  Rng rng(43);
  blas::DMat a(m, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) a(i, j) = rng.normal();
  }
  const blas::PivotedQr f = blas::qr_pivoted(a);
  EXPECT_EQ(f.rank, n);

  // Diagonal magnitudes non-increasing.
  for (int k = 1; k < n; ++k) {
    EXPECT_LE(std::fabs(f.qr(k, k)), std::fabs(f.qr(k - 1, k - 1)) + 1e-12);
  }
  // Q R == A P.
  blas::DMat q;
  blas::orgqr(f.qr, f.tau, q);
  blas::DMat r(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) r(i, j) = f.qr(i, j);
  }
  blas::DMat qr = q;
  blas::trmm_right_upper(m, n, r.data(), r.ld(), qr.data(), qr.ld());
  for (int j = 0; j < n; ++j) {
    const int src = f.jpvt[static_cast<std::size_t>(j)];
    for (int i = 0; i < m; ++i) EXPECT_NEAR(qr(i, j), a(i, src), 1e-10);
  }
}

TEST(PivotedQr, RevealsRankOfDeficientMatrix) {
  const int m = 40, n = 6, true_rank = 3;
  Rng rng(44);
  // A = U * W with U (m x r), W (r x n): rank r by construction.
  blas::DMat u(m, true_rank), w(true_rank, n), a(m, n);
  for (int j = 0; j < true_rank; ++j) {
    for (int i = 0; i < m; ++i) u(i, j) = rng.normal();
  }
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < true_rank; ++i) w(i, j) = rng.normal();
  }
  blas::gemm(blas::Trans::N, blas::Trans::N, m, n, true_rank, 1.0, u.data(),
             u.ld(), w.data(), w.ld(), 0.0, a.data(), a.ld());
  const blas::PivotedQr f = blas::qr_pivoted(a, 1e-10);
  EXPECT_EQ(f.rank, true_rank);
}

TEST(PivotedQr, ZeroMatrixHasRankZero) {
  blas::DMat a(5, 3);
  const blas::PivotedQr f = blas::qr_pivoted(a);
  EXPECT_EQ(f.rank, 0);
}

TEST(PivotedQr, GradedColumnsPivotLargestFirst) {
  const int m = 25, n = 5;
  Rng rng(45);
  blas::DMat a(m, n);
  for (int j = 0; j < n; ++j) {
    const double scale = std::pow(10.0, -j);
    for (int i = 0; i < m; ++i) a(i, j) = scale * rng.normal();
  }
  const blas::PivotedQr f = blas::qr_pivoted(a);
  EXPECT_EQ(f.jpvt[0], 0);  // largest column chosen first
}

}  // namespace
}  // namespace cagmres
