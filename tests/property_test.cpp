// Property-based parameterized sweeps (TEST_P) over the solver and kernel
// configuration space: every combination must satisfy the same invariants
// (correct solutions, orthogonality bounds, conserved message counts,
// clock monotonicity).
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "ortho/metrics.hpp"
#include "ortho/tsqr.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

#include "codec_tol.hpp"

namespace cagmres {
namespace {

// ---------------------------------------------------------------------------
// Solver sweep: (ng, s, ordering, balance) — solution must satisfy the
// original system to tolerance, stats must be self-consistent.
// ---------------------------------------------------------------------------

struct SolveParam {
  int ng;
  int s;
  graph::Ordering ordering;
  bool balance;
};

class SolveSweep : public ::testing::TestWithParam<SolveParam> {};

TEST_P(SolveSweep, SolvesTheOriginalSystem) {
  const SolveParam& prm = GetParam();
  const sparse::CsrMatrix a = sparse::make_laplace2d(22, 19, 0.3, 0.3);
  std::vector<double> b(static_cast<std::size_t>(a.n_rows));
  Rng rng(77);
  for (auto& e : b) e = rng.normal();

  const core::Problem p =
      core::make_problem(a, b, prm.ng, prm.ordering, prm.balance, 9);
  sim::Machine machine(prm.ng);
  core::SolverOptions opts;
  opts.m = 24;
  opts.s = prm.s;
  opts.tol = 1e-7;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  ASSERT_TRUE(res.stats.converged);

  const double rel = core::true_residual(a, b, res.x) /
                     blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
  // Stats invariants.
  EXPECT_GE(res.stats.iterations, res.stats.restarts);
  EXPECT_GT(res.stats.time_total, 0.0);
  EXPECT_LE(res.stats.final_residual,
            res.stats.initial_residual * (1.0 + 1e-12));
  // The clock never runs backwards and matches the stats window.
  EXPECT_GE(machine.clock().elapsed(), res.stats.time_total - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolveSweep,
    ::testing::Values(SolveParam{1, 1, graph::Ordering::kNatural, true},
                      SolveParam{1, 8, graph::Ordering::kNatural, false},
                      SolveParam{2, 4, graph::Ordering::kRcm, true},
                      SolveParam{2, 12, graph::Ordering::kKway, true},
                      SolveParam{3, 6, graph::Ordering::kKway, false},
                      SolveParam{3, 24, graph::Ordering::kRcm, true}),
    [](const auto& info) {
      const SolveParam& p = info.param;
      return "ng" + std::to_string(p.ng) + "_s" + std::to_string(p.s) + "_" +
             graph::to_string(p.ordering) + (p.balance ? "_bal" : "_raw");
    });

// ---------------------------------------------------------------------------
// TSQR orthogonality-bound sweep: per Fig. 10 each method's error must stay
// within (a generous multiple of) its model bound on panels of controlled
// conditioning.
// ---------------------------------------------------------------------------

struct BoundParam {
  ortho::Method method;
  double noise;  // controls kappa of the graded panel
};

class OrthoBoundSweep : public ::testing::TestWithParam<BoundParam> {};

TEST_P(OrthoBoundSweep, ErrorWithinModelBound) {
  const auto& prm = GetParam();
  const int n = 3000, k = 10, ng = 2;
  std::vector<int> rows = {n / 2, n - n / 2};
  sim::DistMultiVec v(rows, k);
  Rng rng(11);
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = rng.normal();
  }
  for (int j = 1; j < k; ++j) {
    for (int d = 0; d < ng; ++d) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        v.col(d, j)[i] =
            1.7 * v.col(d, j - 1)[i] + prm.noise * rng.normal();
      }
    }
  }
  const double kappa = ortho::condition_number(v, 0, k);
  ASSERT_LT(kappa, 1e7);  // keep within the measurable regime

  sim::Machine machine(ng);
  ortho::tsqr(machine, prm.method, v, 0, k);
  machine.sync();  // the host reads the panel below
  const double err = ortho::orthogonality_error(v, 0, k);
  // With a transfer codec armed the reduction partials cross the wire in
  // fp32, so single precision becomes the working precision of the model.
  const double eps = test::codec_armed() ? 1.2e-7 : 2.2e-16;
  double bound = 0.0;
  switch (prm.method) {
    case ortho::Method::kMgs:
      bound = eps * kappa;
      break;
    case ortho::Method::kCgs:
      bound = eps * kappa * kappa;  // practical CGS bound for mild kappa
      break;
    case ortho::Method::kCholQr:
    case ortho::Method::kSvqr:
      bound = eps * kappa * kappa;
      break;
    case ortho::Method::kCholQrMp:
      bound = 1.2e-7 * kappa * kappa;  // single-precision Gram
      break;
    case ortho::Method::kCaqr:
      bound = eps;
      break;
  }
  // Generous safety factor: these are order-of-magnitude models.
  EXPECT_LT(err, 1e3 * bound * k) << "kappa=" << kappa;
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, OrthoBoundSweep,
    ::testing::Values(BoundParam{ortho::Method::kMgs, 1e-2},
                      BoundParam{ortho::Method::kMgs, 1e-4},
                      BoundParam{ortho::Method::kCgs, 1e-2},
                      BoundParam{ortho::Method::kCholQr, 1e-2},
                      BoundParam{ortho::Method::kCholQr, 1e-4},
                      BoundParam{ortho::Method::kSvqr, 1e-4},
                      BoundParam{ortho::Method::kCholQrMp, 1e-2},
                      BoundParam{ortho::Method::kCaqr, 1e-4}),
    [](const auto& info) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "%.0e", info.param.noise);
      std::string noise(buf);
      for (auto& c : noise) {
        if (c == '-') c = 'm';
        if (c == '+') c = 'p';
      }
      return ortho::to_string(info.param.method) + "_noise" + noise;
    });

// ---------------------------------------------------------------------------
// MPK sweep: for every (matrix family, s, ng) the kernel output equals s
// repeated SpMVs, and the per-call message count equals one gather +
// one scatter per communicating device.
// ---------------------------------------------------------------------------

struct MpkParam {
  int family;  // 0 = laplace2d, 1 = cant-like, 2 = circuit-like
  int s;
  int ng;
};

class MpkSweep : public ::testing::TestWithParam<MpkParam> {};

TEST_P(MpkSweep, MatchesRepeatedSpmvAndMessageModel) {
  const auto& prm = GetParam();
  sparse::CsrMatrix a;
  switch (prm.family) {
    case 0:
      a = sparse::make_laplace2d(17, 16, 0.2);
      break;
    case 1:
      a = sparse::make_cant_like(0.12);
      break;
    default:
      a = sparse::make_circuit_like(0.04, true, 9);
      break;
  }
  std::vector<int> offsets(static_cast<std::size_t>(prm.ng) + 1);
  for (int d = 0; d <= prm.ng; ++d) {
    offsets[static_cast<std::size_t>(d)] =
        static_cast<int>((static_cast<long long>(a.n_rows) * d) / prm.ng);
  }
  const mpk::MpkPlan plan = mpk::build_mpk_plan(a, offsets, prm.s);
  mpk::MpkExecutor exec(plan);
  sim::Machine machine(prm.ng);
  sim::DistMultiVec v(plan.rows_per_device(), prm.s + 1);
  Rng rng(13);
  std::vector<double> x(static_cast<std::size_t>(a.n_rows));
  for (auto& e : x) e = rng.normal();
  std::size_t off = 0;
  for (int d = 0; d < prm.ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) {
      v.col(d, 0)[i] = x[off + static_cast<std::size_t>(i)];
    }
    off += static_cast<std::size_t>(v.local_rows(d));
  }
  exec.apply(machine, v, 0, prm.s);
  machine.sync();  // the host reads the basis columns below

  // Numerics: equality with repeated host SpMV.
  std::vector<double> ref = x, tmp(static_cast<std::size_t>(a.n_rows));
  for (int k = 1; k <= prm.s; ++k) {
    sparse::spmv(a, ref.data(), tmp.data());
    ref.swap(tmp);
  }
  off = 0;
  double scale = blas::amax(a.n_rows, ref.data()) + 1.0;
  for (int d = 0; d < prm.ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) {
      EXPECT_NEAR(v.col(d, prm.s)[i], ref[off + static_cast<std::size_t>(i)],
                  test::codec_near(1e-11 * scale,
                                   ref[off + static_cast<std::size_t>(i)],
                                   scale));
    }
    off += static_cast<std::size_t>(v.local_rows(d));
  }

  // Message model: one D2H per sending device, one H2D per receiving one.
  int senders = 0, receivers = 0;
  for (int d = 0; d < prm.ng; ++d) {
    if (!plan.dev[static_cast<std::size_t>(d)].send_local_rows.empty()) {
      ++senders;
    }
    if (!plan.dev[static_cast<std::size_t>(d)].ext_global.empty()) {
      ++receivers;
    }
  }
  EXPECT_EQ(machine.counters().d2h_msgs, senders);
  EXPECT_EQ(machine.counters().h2d_msgs, receivers);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MpkSweep,
    ::testing::Values(MpkParam{0, 1, 2}, MpkParam{0, 3, 3}, MpkParam{0, 6, 1},
                      MpkParam{1, 2, 3}, MpkParam{1, 5, 2}, MpkParam{2, 2, 2},
                      MpkParam{2, 4, 3}),
    [](const auto& info) {
      const std::string fam = info.param.family == 0   ? "grid"
                              : info.param.family == 1 ? "cant"
                                                       : "circuit";
      return fam + "_s" + std::to_string(info.param.s) + "_ng" +
             std::to_string(info.param.ng);
    });

// ---------------------------------------------------------------------------
// Restart-length sweep: GMRES(m) monotone per-restart, larger m never
// increases the restart count.
// ---------------------------------------------------------------------------

class RestartSweep : public ::testing::TestWithParam<int> {};

TEST_P(RestartSweep, LargerMNeedsNoMoreRestartsThanConsistency) {
  const int m = GetParam();
  const sparse::CsrMatrix a = sparse::make_laplace2d(24, 24, 0.0, 0.05);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kNatural, true, 1);
  sim::Machine machine(1);
  core::SolverOptions opts;
  opts.m = m;
  opts.tol = 1e-6;
  opts.max_restarts = 500;
  const core::SolveResult res = core::gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  const auto& h = res.stats.residual_history;
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_LE(h[i], h[i - 1] * (1.0 + 1e-10));
  }
}

INSTANTIATE_TEST_SUITE_P(Ms, RestartSweep, ::testing::Values(5, 10, 20, 40),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cagmres
