// Telemetry consistency tests: the solver statistics, phase attribution,
// per-kernel counters, and traces must all tell the same story about one
// solve.
#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/solver_common.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

namespace cagmres {
namespace {

core::Problem small_problem(int ng) {
  static const sparse::CsrMatrix a = sparse::make_laplace2d(18, 16, 0.2, 0.2);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  return core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
}

TEST(Telemetry, BlockSizesAccountForEveryCaIteration) {
  const core::Problem p = small_problem(2);
  sim::Machine machine(2);
  core::SolverOptions opts;
  opts.m = 18;
  opts.s = 5;
  opts.tol = 1e-8;
  opts.basis = core::Basis::kMonomial;  // every restart is a CA cycle
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  ASSERT_TRUE(res.stats.converged);
  const int sum = std::accumulate(res.stats.block_sizes.begin(),
                                  res.stats.block_sizes.end(), 0);
  EXPECT_EQ(sum, res.stats.iterations);
}

TEST(Telemetry, TsqrErrorSamplesMatchBlockAndReorthCounts) {
  const core::Problem p = small_problem(1);
  sim::Machine machine(1);
  core::SolverOptions opts;
  opts.m = 12;
  opts.s = 4;
  opts.basis = core::Basis::kMonomial;
  opts.reorthogonalize = true;
  opts.collect_tsqr_errors = true;
  opts.max_restarts = 4;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  // Every block produces one pass-0 sample; every reorthogonalized block
  // one pass-1 sample.
  int pass0 = 0, pass1 = 0;
  for (const auto& e : res.stats.tsqr_errors) {
    (e.pass == 0 ? pass0 : pass1) += 1;
    EXPECT_GE(e.restart, 0);
    EXPECT_GT(e.kappa_block, 0.0);
  }
  EXPECT_EQ(pass0, static_cast<int>(res.stats.block_sizes.size()));
  EXPECT_EQ(pass1, res.stats.reorth_blocks);
}

TEST(Telemetry, ResidualHistoryHasOneEntryPerRestartTop) {
  const core::Problem p = small_problem(1);
  sim::Machine machine(1);
  core::SolverOptions opts;
  opts.m = 6;
  opts.tol = 1e-8;
  opts.max_restarts = 100;
  const core::SolveResult res = core::gmres(machine, p, opts);
  ASSERT_TRUE(res.stats.converged);
  // One residual per executed restart plus the final (converged) check.
  EXPECT_EQ(static_cast<int>(res.stats.residual_history.size()),
            res.stats.restarts + 1);
  EXPECT_DOUBLE_EQ(res.stats.residual_history.front(),
                   res.stats.initial_residual);
}

TEST(Telemetry, TraceBusyTimeMatchesKernelSeconds) {
  const core::Problem p = small_problem(2);
  sim::Machine machine(2);
  machine.enable_trace();
  core::SolverOptions opts;
  opts.m = 10;
  opts.max_restarts = 2;
  core::gmres(machine, p, opts);

  // Sum of traced device kernel durations (excluding transfers) must equal
  // the per-kernel counter seconds.
  double traced = 0.0;
  for (const auto& e : machine.trace().events()) {
    if (e.device >= 0 && e.name != "d2h" && e.name != "h2d") {
      traced += e.t_end - e.t_start;
    }
  }
  double counted = 0.0;
  for (const double s : machine.counters().kernel_seconds) counted += s;
  EXPECT_NEAR(traced, counted, 1e-12 + 1e-9 * counted);
}

TEST(Telemetry, TraceShowsDeviceConcurrency) {
  // Two devices must actually overlap in simulated time (the concurrency
  // the Clock models is visible in the trace).
  const core::Problem p = small_problem(2);
  sim::Machine machine(2);
  machine.enable_trace();
  core::SolverOptions opts;
  opts.m = 8;
  opts.max_restarts = 1;
  core::gmres(machine, p, opts);

  bool overlap = false;
  const auto& ev = machine.trace().events();
  for (std::size_t i = 0; i < ev.size() && !overlap; ++i) {
    if (ev[i].device != 0) continue;
    for (std::size_t j = 0; j < ev.size(); ++j) {
      if (ev[j].device != 1) continue;
      if (ev[i].t_start < ev[j].t_end && ev[j].t_start < ev[i].t_end) {
        overlap = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap);
}

TEST(Telemetry, PhaseBucketsArePositiveWhereExpected) {
  const core::Problem p = small_problem(3);
  sim::Machine machine(3);
  core::SolverOptions opts;
  opts.m = 12;
  opts.s = 4;
  opts.basis = core::Basis::kNewton;
  opts.tol = 1e-10;  // force several restarts past the shift harvest
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  const auto& st = res.stats;
  // Newton basis: the harvest restart uses per-iteration Orth; CA cycles
  // use BOrth+TSQR+MPK. All four buckets must be populated.
  EXPECT_GT(st.time_orth, 0.0);
  EXPECT_GT(st.time_borth, 0.0);
  EXPECT_GT(st.time_tsqr, 0.0);
  EXPECT_GT(st.time_mpk, 0.0);
  EXPECT_GT(st.time_spmv, 0.0);
}

}  // namespace
}  // namespace cagmres
