// Chaos engine tests: deterministic schedule generation, --faults spec
// round-trips, the simulated watchdog, the graceful-degradation floor, the
// invariant oracle on zero-fault schedules, and the ddmin minimizer.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "common/error.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/solver_common.hpp"
#include "sim/chaos.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

namespace cagmres {
namespace {

using sim::ChaosConfig;
using sim::ChaosOutcome;
using sim::ChaosRunner;
using sim::ChaosSchedule;
using sim::ChaosSolver;
using sim::FaultEvent;
using sim::FaultKind;
using sim::Machine;
using sim::SyncMode;

/// A slim config for the unit tests: one solver, one mode, one worker
/// count, so each oracle check costs two solves (run + replay).
ChaosConfig slim_config() {
  ChaosConfig cfg;
  cfg.modes = {SyncMode::kEvent};
  cfg.worker_counts = {0};
  cfg.both_solvers = false;
  return cfg;
}

TEST(ChaosGenerate, SameSeedSameIndexIsIdentical) {
  ChaosRunner a(slim_config());
  ChaosRunner b(slim_config());
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.generate(7, i).to_spec(), b.generate(7, i).to_spec());
  }
  EXPECT_NE(a.generate(7, 1).to_spec(), a.generate(7, 2).to_spec());
  EXPECT_NE(a.generate(7, 1).to_spec(), a.generate(8, 1).to_spec());
}

TEST(ChaosGenerate, EveryEighthScheduleIsZeroFault) {
  ChaosRunner r(slim_config());
  EXPECT_FALSE(r.generate(7, 0).armed());
  EXPECT_FALSE(r.generate(7, 8).armed());
  EXPECT_TRUE(r.generate(7, 1).armed());
}

TEST(ChaosSpec, RoundTripsThroughTheFaultsGrammar) {
  ChaosRunner r(slim_config());
  for (int i = 0; i < 24; ++i) {
    const ChaosSchedule s = r.generate(3, i);
    const std::string spec = s.to_spec();
    EXPECT_EQ(ChaosSchedule::from_spec(spec).to_spec(), spec) << spec;
  }
}

TEST(ChaosSpec, HandRoundTripKeepsEventOrderAndRates) {
  const std::string spec =
      "seed=42;stall_us=125;kill:*@t=0.001;kill:*@t=0.001;"
      "nan:d2@op=99;corrupt:p=0.69999999999999996";
  const ChaosSchedule s = ChaosSchedule::from_spec(spec);
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kDeviceFail);
  EXPECT_EQ(s.events[1].kind, FaultKind::kDeviceFail);
  EXPECT_EQ(s.events[2].kind, FaultKind::kKernelNan);
  EXPECT_EQ(s.events[2].device, 2);
  EXPECT_EQ(ChaosSchedule::from_spec(s.to_spec()).to_spec(), s.to_spec());
}

TEST(ChaosSpec, NodeScopedFaultsRoundTrip) {
  // The node-scoped grammar: atomic node kills (n<k> or wildcard targets),
  // inter-node link rates, and the node-targeted corrupt storm all survive
  // spec -> schedule -> spec.
  const std::string spec =
      "seed=9;nodekill:n1@op=600;nodekill:*@t=0.002;"
      "linkcorrupt:p=0.03;linkstall:p=0.0625;nodecorrupt:n0@p=0.015625";
  const ChaosSchedule s = ChaosSchedule::from_spec(spec);
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kNodeFail);
  EXPECT_EQ(s.events[0].device, 1);  // the *node* id for kNodeFail
  EXPECT_EQ(s.events[1].device, -1);
  EXPECT_EQ(s.rates.link_corrupt, 0.03);
  EXPECT_EQ(s.rates.link_stall, 0.0625);
  EXPECT_EQ(s.rates.node_corrupt, 0.015625);
  EXPECT_EQ(s.rates.corrupt_node, 0);
  EXPECT_EQ(ChaosSchedule::from_spec(s.to_spec()).to_spec(), s.to_spec());
}

TEST(ChaosGenerate, MultiNodeCampaignMixesNodeFaultsSingleNodeUnchanged) {
  // n_nodes > 1 mixes node kills and link rates into generated schedules;
  // every new RNG draw is short-circuit-guarded, so the single-node stream
  // (and thus every existing campaign) is byte-identical to before.
  ChaosConfig multi = slim_config();
  multi.n_nodes = 2;
  ChaosRunner m(multi);
  ChaosRunner flat(slim_config());
  bool saw_node_fault = false;
  for (int i = 1; i < 48; ++i) {
    const ChaosSchedule s = m.generate(3, i);
    for (const FaultEvent& e : s.events) {
      saw_node_fault |= e.kind == FaultKind::kNodeFail;
    }
    saw_node_fault |= s.rates.link_corrupt > 0.0 ||
                      s.rates.link_stall > 0.0 || s.rates.node_corrupt > 0.0;
    const std::string spec = s.to_spec();
    EXPECT_EQ(ChaosSchedule::from_spec(spec).to_spec(), spec) << spec;
    // The flat generator never emits node-scoped faults.
    const ChaosSchedule f = flat.generate(3, i);
    for (const FaultEvent& e : f.events) {
      EXPECT_NE(e.kind, FaultKind::kNodeFail);
    }
    EXPECT_EQ(f.rates.link_corrupt, 0.0);
  }
  EXPECT_TRUE(saw_node_fault);
}

TEST(ChaosCampaign, MultiNodeSmokeCampaignIsViolationFree) {
  ChaosConfig cfg = slim_config();
  cfg.n_devices = 4;
  cfg.n_nodes = 2;
  ChaosRunner r(cfg);
  const auto stats = r.run_campaign(7, 9);
  EXPECT_EQ(stats.schedules, 9);
  EXPECT_EQ(stats.runs, 9);
  EXPECT_TRUE(stats.violations.empty());
  EXPECT_EQ(stats.converged + stats.unconverged + stats.clean_errors +
                stats.watchdogs,
            stats.runs);
}

TEST(Watchdog, DeadlineTripsAsTypedError) {
  const auto a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const auto p = core::make_problem(a, b, 3, graph::Ordering::kNatural,
                                    true, 1);
  Machine machine(3);
  machine.set_deadline(1e-6);  // far below any full solve
  core::SolverOptions opts;
  opts.m = 30;
  opts.tol = 1e-6;
  opts.max_restarts = 400;
  try {
    core::gmres(machine, p, opts);
    FAIL() << "a 1us deadline must trip the watchdog";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded) << e.what();
  }
  EXPECT_GT(machine.clock().elapsed(), 1e-6);
  // Disarmed machines never trip, and reset() keeps the configuration.
  machine.reset();
  EXPECT_DOUBLE_EQ(machine.deadline(), 1e-6);
  machine.set_deadline(0.0);
  const auto res = core::gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
}

TEST(DegradationFloor, MinDevicesHandsOffToCpuGmres) {
  const auto a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const auto p = core::make_problem(a, b, 3, graph::Ordering::kNatural,
                                    true, 1);
  Machine machine(3);
  sim::parse_fault_spec("kill:d1@op=500", machine.fault_injector());
  core::SolverOptions opts;
  opts.m = 30;
  opts.s = 6;
  opts.tol = 1e-6;
  opts.max_restarts = 400;
  opts.min_devices = 3;  // any retirement breaches the floor
  const auto res = core::ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  ASSERT_TRUE(res.stats.degraded.active);
  EXPECT_EQ(res.stats.degraded.devices_at_handoff, 3);
  EXPECT_NE(res.stats.degraded.reason.find("floor"), std::string::npos);
  const double rel =
      core::true_residual(a, b, res.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
}

TEST(ChaosOracle, ZeroFaultScheduleMatchesBaselineBytes) {
  ChaosRunner r(slim_config());
  const ChaosSchedule zero = r.generate(7, 0);
  ASSERT_FALSE(zero.armed());
  EXPECT_TRUE(r.run_schedule(zero, 0).empty());
}

TEST(ChaosOracle, FaultyScheduleRunsCleanAndReplaysIdentically) {
  ChaosRunner r(slim_config());
  const ChaosSchedule s =
      ChaosSchedule::from_spec("seed=5;kill:*@t=2ms;nan:p=0.001");
  EXPECT_TRUE(r.run_schedule(s, 1).empty());
  const auto one = r.run_one(s, ChaosSolver::kCaGmres, SyncMode::kEvent, 0);
  EXPECT_TRUE(one.violation.empty()) << one.violation;
  EXPECT_EQ(one.outcome, ChaosOutcome::kConverged);
  EXPECT_GE(one.device_failures, 1);
}

TEST(ChaosMinimize, SyntheticPredicateReachesOneMinimalEvent) {
  ChaosRunner r(slim_config());
  // A noisy 6-event schedule whose "bug" is any kill aimed at device 1.
  ChaosSchedule s = ChaosSchedule::from_spec(
      "seed=11;nan:d0@op=50;stall:*@t=1ms;kill:d1@op=100;corrupt:d2@op=30;"
      "nan:*@t=2ms;stall:d0@op=900;nan:p=0.001;stall:p=0.01");
  int probes = 0;
  const auto predicate = [&](const ChaosSchedule& cand) {
    ++probes;
    for (const FaultEvent& e : cand.events) {
      if (e.kind == FaultKind::kDeviceFail && e.device == 1) return true;
    }
    return false;
  };
  const ChaosSchedule min = r.minimize(s, predicate);
  ASSERT_EQ(min.events.size(), 1u);
  EXPECT_EQ(min.events[0].kind, FaultKind::kDeviceFail);
  EXPECT_EQ(min.events[0].device, 1);
  EXPECT_EQ(min.rates.kernel_nan, 0.0);   // rates zeroed away
  EXPECT_EQ(min.rates.transfer_stall, 0.0);
  EXPECT_GT(probes, 1);
}

TEST(ChaosMinimize, RejectsNonViolatingInput) {
  ChaosRunner r(slim_config());
  const ChaosSchedule s;
  EXPECT_THROW(
      r.minimize(s, [](const ChaosSchedule&) { return false; }), Error);
}

TEST(ChaosCampaign, SmokeCampaignIsViolationFree) {
  ChaosConfig cfg = slim_config();
  cfg.check_replay = true;
  ChaosRunner r(cfg);
  const auto stats = r.run_campaign(7, 9);
  EXPECT_EQ(stats.schedules, 9);
  EXPECT_EQ(stats.zero_fault, 2);  // indices 0 and 8
  EXPECT_EQ(stats.runs, 9);
  EXPECT_TRUE(stats.violations.empty());
  EXPECT_EQ(stats.converged + stats.unconverged + stats.clean_errors +
                stats.watchdogs,
            stats.runs);
}

TEST(ChaosDemoOracle, SeededBugMinimizesToAtMostThreeEvents) {
  // The acceptance drill: plant a deliberately broken oracle (any device
  // kill is a "violation"), find a violating schedule, and check ddmin
  // brings the reproducer down to <= 3 events.
  ChaosConfig cfg = slim_config();
  cfg.demo_bug_kills = 1;
  ChaosRunner r(cfg);
  ChaosSchedule bad;
  bool found = false;
  for (int i = 1; i < 32 && !found; ++i) {
    const ChaosSchedule s = r.generate(7, i);
    if (r.violates(s, ChaosSolver::kCaGmres)) {
      bad = s;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no schedule tripped the demo oracle";
  const ChaosSchedule min = r.minimize(bad, ChaosSolver::kCaGmres);
  EXPECT_LE(min.events.size(), 3u);
  EXPECT_TRUE(r.violates(min, ChaosSolver::kCaGmres));
  bool has_kill = false;
  for (const FaultEvent& e : min.events) {
    if (e.kind == FaultKind::kDeviceFail) has_kill = true;
  }
  EXPECT_TRUE(has_kill);
}

// --- preconditioned drivers in the alternation ------------------------

TEST(ChaosPrecond, CampaignWithIluDriversIsViolationFree) {
  // An armed precond spec widens the slim roster to {ca, precond_ca}: half
  // the schedules chaos the right-preconditioned driver — kills and NaN
  // storms land inside ILU setup and the level-scheduled trisolves — and
  // the full oracle (sanctioned terminal state, true-residual check on
  // convergence claims, same-seed replay bit-identity across the handle's
  // repartition rebuilds, zero-fault baseline bytes) must stay clean.
  ChaosConfig cfg = slim_config();
  cfg.precond = "ilu:k=1";
  ChaosRunner r(cfg);
  const auto stats = r.run_campaign(7, 10);
  EXPECT_EQ(stats.schedules, 10);
  EXPECT_EQ(stats.runs, 10);
  EXPECT_TRUE(stats.violations.empty()) << stats.violations.front().what;
  EXPECT_EQ(stats.converged + stats.unconverged + stats.clean_errors +
                stats.watchdogs,
            stats.runs);
}

TEST(ChaosPrecond, KillAndCorruptStormSurvivePreconditionedRuns) {
  ChaosConfig cfg = slim_config();
  cfg.precond = "ilu:k=1,underlap=1";
  ChaosRunner r(cfg);
  // An early op-triggered kill (lands around preconditioner setup of the
  // first restart) plus a transfer-corrupt drizzle; index 1 selects the
  // preconditioned CA-GMRES slot of the widened roster.
  const ChaosSchedule s =
      ChaosSchedule::from_spec("seed=5;kill:*@op=10;corrupt:p=0.01");
  EXPECT_TRUE(r.run_schedule(s, 1).empty());
  const auto one =
      r.run_one(s, ChaosSolver::kPrecondCaGmres, SyncMode::kEvent, 0);
  EXPECT_TRUE(one.violation.empty()) << one.violation;
  EXPECT_GE(one.device_failures, 1);
  // The preconditioned GMRES variant holds up under the same schedule.
  const auto two =
      r.run_one(s, ChaosSolver::kPrecondGmres, SyncMode::kEvent, 0);
  EXPECT_TRUE(two.violation.empty()) << two.violation;
}

TEST(ChaosPrecond, EmptySpecKeepsRosterAndBytesUnchanged) {
  // No spec: solver_for must keep the historical 2-cycle and the runs'
  // fingerprints must match a pre-widening runner bit for bit.
  ChaosRunner plain(slim_config());
  ChaosConfig cfg = slim_config();
  cfg.precond = "none";  // parses to kNone: also unarmed
  ChaosRunner none(cfg);
  const ChaosSchedule s =
      ChaosSchedule::from_spec("seed=5;kill:*@t=2ms;nan:p=0.001");
  const auto a = plain.run_one(s, ChaosSolver::kCaGmres, SyncMode::kEvent, 0);
  const auto b = none.run_one(s, ChaosSolver::kCaGmres, SyncMode::kEvent, 0);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

}  // namespace
}  // namespace cagmres
