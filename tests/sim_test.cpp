// Unit tests for the simulated multi-GPU runtime: clock semantics, the
// performance model, counters, phase attribution, and the charged kernels.
#include <array>
#include <atomic>
#include <cmath>
#include <memory>
#include <cstddef>
#include <future>
#include <mutex>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/pipelined.hpp"
#include "core/solver_common.hpp"
#include "graph/partition.hpp"
#include "sim/clock.hpp"
#include "sim/device_blas.hpp"
#include "sim/fault.hpp"
#include "sim/host_pool.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"
#include "sparse/generators.hpp"

namespace cagmres::sim {
namespace {

TEST(Clock, DevicesRunConcurrently) {
  Clock c(3);
  c.device_advance(0, 1.0);
  c.device_advance(1, 2.0);
  c.device_advance(2, 0.5);
  // Concurrent devices: elapsed is the max, not the sum.
  EXPECT_DOUBLE_EQ(c.elapsed(), 2.0);
  EXPECT_DOUBLE_EQ(c.host_time(), 0.0);
  c.host_wait_all();
  EXPECT_DOUBLE_EQ(c.host_time(), 2.0);
}

TEST(Clock, KernelCannotStartBeforeHostPostsIt) {
  Clock c(2);
  c.host_advance(5.0);
  c.device_advance(0, 1.0);  // posted at host time 5
  EXPECT_DOUBLE_EQ(c.device_time(0), 6.0);
  EXPECT_DOUBLE_EQ(c.device_time(1), 0.0);
}

TEST(Clock, SequentialKernelsOnOneDeviceQueue) {
  Clock c(1);
  c.device_advance(0, 1.0);
  c.device_advance(0, 2.0);
  EXPECT_DOUBLE_EQ(c.device_time(0), 3.0);
}

TEST(Clock, SyncAllAlignsEverything) {
  Clock c(2);
  c.device_advance(0, 3.0);
  c.host_advance(1.0);
  c.sync_all();
  EXPECT_DOUBLE_EQ(c.host_time(), 3.0);
  EXPECT_DOUBLE_EQ(c.device_time(0), 3.0);
  EXPECT_DOUBLE_EQ(c.device_time(1), 3.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.elapsed(), 0.0);
}

TEST(Clock, DeviceWaitHost) {
  Clock c(1);
  c.host_advance(4.0);
  c.device_wait_host(0);
  EXPECT_DOUBLE_EQ(c.device_time(0), 4.0);
}

TEST(PerfModel, TransferIsLatencyPlusBandwidth) {
  PerfModel pm;
  const double t1 = pm.transfer_seconds(8.0);
  const double t2 = pm.transfer_seconds(8e6);
  EXPECT_NEAR(t1, pm.pcie_latency_s + 8.0 / pm.pcie_bw, 1e-12);
  EXPECT_NEAR(t2 - t1, (8e6 - 8.0) / pm.pcie_bw, 1e-12);
}

TEST(PerfModel, OptimizedProfileSpeedsUpGemmAndGemv) {
  PerfModel opt;
  opt.profile = KernelProfile::kOptimized;
  PerfModel std_prof;
  std_prof.profile = KernelProfile::kStandard;
  const double flops = 2.0 * 1e5 * 30 * 30;
  const double bytes = 8.0 * 1e5 * 30;
  EXPECT_LT(opt.device_seconds(Kernel::kGemm, flops, bytes),
            std_prof.device_seconds(Kernel::kGemm, flops, bytes));
  EXPECT_LT(opt.device_seconds(Kernel::kGemv, flops / 30, bytes),
            std_prof.device_seconds(Kernel::kGemv, flops / 30, bytes));
  // BLAS-1 is profile independent.
  EXPECT_DOUBLE_EQ(opt.device_seconds(Kernel::kDot, 2e5, 16e5),
                   std_prof.device_seconds(Kernel::kDot, 2e5, 16e5));
}

TEST(PerfModel, EffectiveRateRisesWithSize) {
  // Fig. 11 shape: launch overhead dominates small inputs.
  PerfModel pm;
  auto rate = [&](double n) {
    const double flops = 2.0 * n * 30 * 30;
    return flops / pm.device_seconds(Kernel::kGemm, flops, 8.0 * n * 30);
  };
  EXPECT_LT(rate(1e3), rate(1e5));
  EXPECT_LT(rate(1e5), rate(1e7));
  EXPECT_LT(rate(1e7), pm.gemm_peak_opt);
}

TEST(Machine, ChargesAndCounters) {
  Machine m(2);
  m.charge_device(0, Kernel::kDot, 100.0, 800.0);
  m.charge_device(1, Kernel::kDot, 50.0, 400.0);
  m.d2h(0, 8.0);
  m.h2d(1, 8.0);
  m.charge_host(Kernel::kAxpy, 10.0, 80.0);
  const Counters& c = m.counters();
  EXPECT_DOUBLE_EQ(c.dev_flops[0], 100.0);
  EXPECT_DOUBLE_EQ(c.dev_flops[1], 50.0);
  EXPECT_EQ(c.dev_kernels[0], 1);
  EXPECT_EQ(c.d2h_msgs, 1);
  EXPECT_EQ(c.h2d_msgs, 1);
  EXPECT_DOUBLE_EQ(c.host_flops, 10.0);
  EXPECT_GT(m.clock().elapsed(), 0.0);

  const Counters snap = c;
  m.charge_device(0, Kernel::kAxpy, 30.0, 100.0);
  const Counters diff = m.counters() - snap;
  EXPECT_DOUBLE_EQ(diff.dev_flops[0], 30.0);
  EXPECT_EQ(diff.d2h_msgs, 0);
  EXPECT_DOUBLE_EQ(diff.total_dev_flops(), 30.0);
}

TEST(Machine, PhaseAttributionCoversElapsed) {
  Machine m(2);
  m.set_phase("alpha");
  m.charge_device(0, Kernel::kDot, 1e6, 8e6);
  m.host_wait_all();
  m.set_phase("beta");
  m.charge_host(Kernel::kAxpy, 1e6, 8e6);
  m.set_phase("other");
  const double total = m.phases().total();
  EXPECT_NEAR(total, m.clock().elapsed(), 1e-12);
  EXPECT_GT(m.phases().get("alpha"), 0.0);
  EXPECT_GT(m.phases().get("beta"), 0.0);
}

TEST(Machine, ResetClearsEverything) {
  Machine m(1);
  m.charge_device(0, Kernel::kDot, 1.0, 8.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.clock().elapsed(), 0.0);
  EXPECT_DOUBLE_EQ(m.counters().dev_flops[0], 0.0);
  EXPECT_DOUBLE_EQ(m.phases().total(), 0.0);
}

TEST(DistVec, ScatterGatherRoundTrip) {
  DistVec v(std::vector<int>{3, 2, 4});
  EXPECT_EQ(v.n_parts(), 3);
  EXPECT_EQ(v.total_rows(), 9);
  std::vector<double> x(9);
  for (int i = 0; i < 9; ++i) x[static_cast<std::size_t>(i)] = i * 1.5;
  v.assign_from_host(x);
  EXPECT_DOUBLE_EQ(v.local(1)[0], 4.5);
  EXPECT_EQ(v.to_host(), x);
}

TEST(DistMultiVec, LayoutAndColumnAccess) {
  DistMultiVec v(std::vector<int>{4, 4}, 3);
  EXPECT_EQ(v.cols(), 3);
  EXPECT_EQ(v.total_rows(), 8);
  v.col(1, 2)[3] = 42.0;
  EXPECT_DOUBLE_EQ(v.local(1)(3, 2), 42.0);
}

TEST(DeviceBlas, NumericsMatchHostBlas) {
  Machine m(1);
  const int n = 101;
  Rng rng(31);
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n)), y2(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = rng.normal();
    y[static_cast<std::size_t>(i)] = rng.normal();
  }
  y2 = y;
  const double d = dev_dot(m, 0, n, x.data(), y.data());
  EXPECT_NEAR(d, blas::dot(n, x.data(), y.data()), 1e-12);
  dev_axpy(m, 0, n, 0.5, x.data(), y.data());
  m.sync();  // the host reads y below
  blas::axpy(n, 0.5, x.data(), y2.data());
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)]);
  EXPECT_EQ(m.counters().dev_kernels[0], 2);
}

TEST(DeviceBlas, PackUnpackGatherScatter) {
  Machine m(1);
  std::vector<double> x = {10, 20, 30, 40, 50};
  std::vector<int> idx = {4, 0, 2};
  std::vector<double> out(3);
  dev_pack(m, 0, idx, x.data(), out.data());
  m.sync();  // the host reads out below
  EXPECT_DOUBLE_EQ(out[0], 50);
  EXPECT_DOUBLE_EQ(out[1], 10);
  EXPECT_DOUBLE_EQ(out[2], 30);
  std::vector<double> in = {-1, -2, -3};
  dev_unpack(m, 0, idx, in.data(), x.data());
  m.sync();  // the host reads x below
  EXPECT_DOUBLE_EQ(x[4], -1);
  EXPECT_DOUBLE_EQ(x[0], -2);
  EXPECT_DOUBLE_EQ(x[2], -3);
  EXPECT_DOUBLE_EQ(x[1], 20);
}

TEST(DeviceBlas, SpmvEllChargesAndComputes) {
  Machine m(1);
  const auto a = sparse::make_laplace2d(6, 6);
  const auto e = sparse::to_ell(a);
  const int n = a.n_rows;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y1(static_cast<std::size_t>(n)), y2(static_cast<std::size_t>(n));
  dev_spmv_ell(m, 0, e, x.data(), y1.data());
  m.sync();  // the host reads y1 below
  sparse::spmv(a, x.data(), y2.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)], 1e-13);
  EXPECT_GT(m.clock().device_time(0), 0.0);
}

TEST(Machine, PerKernelCountersBreakDownTheWork) {
  Machine m(2);
  m.charge_device(0, Kernel::kGemm, 1e6, 8e4);
  m.charge_device(1, Kernel::kGemm, 2e6, 8e4);
  m.charge_device(0, Kernel::kDot, 2e3, 16e3);
  const auto& c = m.counters();
  const auto gi = static_cast<std::size_t>(kernel_index(Kernel::kGemm));
  const auto di = static_cast<std::size_t>(kernel_index(Kernel::kDot));
  EXPECT_DOUBLE_EQ(c.kernel_flops[gi], 3e6);
  EXPECT_EQ(c.kernel_count[gi], 2);
  EXPECT_GT(c.kernel_seconds[gi], 0.0);
  EXPECT_EQ(c.kernel_count[di], 1);
  // Per-kernel flops sum to the per-device totals.
  double per_kernel = 0.0;
  for (const double f : c.kernel_flops) per_kernel += f;
  EXPECT_DOUBLE_EQ(per_kernel, c.total_dev_flops());
  // Snapshot diff covers the arrays too.
  const Counters snap = c;
  m.charge_device(0, Kernel::kGemm, 5e5, 8e3);
  EXPECT_DOUBLE_EQ((m.counters() - snap).kernel_flops[gi], 5e5);
}

TEST(TraceTest, RecordsChargedOperationsWithPhases) {
  Machine m(2);
  m.enable_trace();
  m.set_phase("alpha");
  m.charge_device(0, Kernel::kDot, 2e5, 16e5);
  m.d2h(0, 8.0);
  m.set_phase("beta");
  m.charge_host(Kernel::kAxpy, 1e5, 8e5);
  const auto& ev = m.trace().events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].device, 0);
  EXPECT_EQ(ev[0].name, "dot");
  EXPECT_EQ(ev[0].phase, "alpha");
  EXPECT_LT(ev[0].t_start, ev[0].t_end);
  EXPECT_EQ(ev[1].name, "d2h");
  EXPECT_GE(ev[1].t_start, ev[0].t_end - 1e-15);  // queued after the kernel
  EXPECT_EQ(ev[2].device, -1);
  EXPECT_EQ(ev[2].phase, "beta");
  m.reset();
  EXPECT_TRUE(m.trace().events().empty());
}

TEST(TraceTest, DisabledByDefaultAndJsonWellFormed) {
  Machine m(1);
  m.charge_device(0, Kernel::kAxpy, 1.0, 8.0);
  EXPECT_TRUE(m.trace().events().empty());

  m.enable_trace();
  m.charge_device(0, Kernel::kGemm, 1e6, 8e5);
  m.d2h(0, 64.0);
  std::ostringstream os;
  m.trace().write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"d2h\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy).
  long brace = 0, bracket = 0;
  for (const char c : json) {
    brace += (c == '{') - (c == '}');
    bracket += (c == '[') - (c == ']');
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

TEST(TraceTest, KernelNamesCoverAllClasses) {
  for (const Kernel k :
       {Kernel::kDot, Kernel::kAxpy, Kernel::kScal, Kernel::kCopy,
        Kernel::kGemv, Kernel::kGemm, Kernel::kTrsm, Kernel::kGeqrf,
        Kernel::kSpmvEll, Kernel::kSpmvCsr, Kernel::kPack, Kernel::kSmall}) {
    EXPECT_NE(kernel_name(k), "?");
  }
}

TEST(Topology, NodeMappingAndRemoteness) {
  Machine m(Topology{2, 3});
  EXPECT_EQ(m.n_devices(), 6);
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(2), 0);
  EXPECT_EQ(m.node_of(3), 1);
  EXPECT_FALSE(m.is_remote(1));
  EXPECT_TRUE(m.is_remote(5));
  // Single-node ctor: nothing is remote.
  Machine s(3);
  EXPECT_FALSE(s.is_remote(2));
  EXPECT_EQ(s.topology().n_nodes, 1);
}

TEST(Topology, RemoteTransfersPayTheNetworkHop) {
  const PerfModel pm;
  Machine m(Topology{2, 1});
  m.d2h(0, 800.0);  // local
  m.d2h(1, 800.0);  // remote
  EXPECT_NEAR(m.clock().device_time(0), pm.transfer_seconds(800.0), 1e-15);
  EXPECT_NEAR(m.clock().device_time(1),
              pm.transfer_seconds(800.0) + pm.net_seconds(800.0), 1e-15);
  EXPECT_EQ(m.counters().net_msgs, 1);
  EXPECT_DOUBLE_EQ(m.counters().net_bytes, 800.0);
  m.h2d(1, 8.0);
  EXPECT_EQ(m.counters().net_msgs, 2);
}

TEST(Topology, ReductionSlowerAcrossNodesThanWithin) {
  // Same device count, different placement: the all-to-root reduction is
  // strictly slower when half the devices are remote.
  auto reduction_time = [](Topology t) {
    Machine m(t);
    for (int d = 0; d < m.n_devices(); ++d) m.d2h(d, 8.0);
    m.host_wait_all();
    return m.clock().elapsed();
  };
  EXPECT_LT(reduction_time(Topology{1, 4}), reduction_time(Topology{2, 2}));
}

TEST(Topology, ZeroFaultSolveIsByteIdenticalAcrossModesAndWorkers) {
  // set_topology only changes where bytes are charged (peer vs PCIe vs
  // network hops), never the arithmetic: with no faults armed, x, the
  // residual history, and the charged clock must match bitwise across
  // {barrier, event} x {0, 2 workers} on a 2x2 multi-node machine.
  const auto a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const int ng = 4;
  const core::Problem p =
      core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
  core::SolverOptions opts;
  opts.m = 30;
  opts.s = 6;
  opts.tol = 1e-6;
  opts.max_restarts = 400;

  std::vector<core::SolveResult> results;
  std::vector<double> elapsed;
  for (const SyncMode mode : {SyncMode::kBarrier, SyncMode::kEvent}) {
    for (const int workers : {0, 2}) {
      Machine m(ng);
      m.set_topology(2, 2);
      m.set_sync_mode(mode);
      m.set_host_workers(workers);
      results.push_back(core::ca_gmres(m, p, opts));
      elapsed.push_back(m.clock().elapsed());
    }
  }
  // Within a mode: everything identical, including the charged clock.
  for (const std::size_t base : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(results[base].x, results[base + 1].x);
    EXPECT_EQ(results[base].stats.time_total, results[base + 1].stats.time_total);
    EXPECT_EQ(results[base].stats.residual_history,
              results[base + 1].stats.residual_history);
    EXPECT_EQ(elapsed[base], elapsed[base + 1]);
  }
  // Across modes: same arithmetic, so x matches bitwise; event sync may
  // only ever remove charged blocking.
  EXPECT_EQ(results[0].x, results[2].x);
  EXPECT_EQ(results[0].stats.iterations, results[2].stats.iterations);
  EXPECT_LE(results[2].stats.time_total, results[0].stats.time_total);
}

TEST(HierReduce, SolversByteIdenticalAcrossKnobModeWorkersAndShapes) {
  // The hierarchical two-stage collectives (DESIGN §13) only move charges,
  // never bits: for GMRES and CA-GMRES, at 2x2 and 2x4, x must match
  // bitwise across {flat, hier} x {barrier, event} x {0, 2 workers} — the
  // grouped fold tree is a pure function of the charge sequence, and the
  // leader stages are busy-normalized so even the fold permutation is
  // knob-invariant. At the deeper shape the hierarchical fold must also
  // charge less: that is the whole point of shipping one message per node.
  const auto a = sparse::make_laplace3d(10, 10, 10, 0.05);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const std::pair<int, int> shapes[] = {{2, 2}, {2, 4}};
  for (const auto& [nodes, gpn] : shapes) {
    const int ng = nodes * gpn;
    const core::Problem p =
        core::make_problem(a, b, ng, graph::Ordering::kKway, true, 3, nodes);
    core::SolverOptions opts;
    opts.m = 20;
    opts.s = 4;
    opts.tol = 1e-8;
    opts.max_restarts = 6;
    for (const bool ca : {false, true}) {
      std::vector<double> x0;
      bool first = true;
      double flat_event = 0.0, hier_event = 0.0;
      for (const bool hier : {false, true}) {
        for (const SyncMode mode : {SyncMode::kBarrier, SyncMode::kEvent}) {
          for (const int workers : {0, 2}) {
            Machine m(Topology{nodes, gpn});
            m.set_hier_reduce(hier);
            m.set_sync_mode(mode);
            m.set_host_workers(workers);
            const core::SolveResult r = ca ? core::ca_gmres(m, p, opts)
                                           : core::gmres(m, p, opts);
            if (first) {
              x0 = r.x;
              first = false;
            } else {
              EXPECT_EQ(r.x, x0)
                  << (ca ? "ca_gmres" : "gmres") << " " << nodes << "x" << gpn
                  << " hier=" << hier << " event="
                  << (mode == SyncMode::kEvent) << " workers=" << workers;
            }
            if (mode == SyncMode::kEvent && workers == 0) {
              (hier ? hier_event : flat_event) = m.clock().elapsed();
            }
          }
        }
      }
      if (gpn >= 4) {
        EXPECT_LT(hier_event, flat_event)
            << (ca ? "ca_gmres" : "gmres") << " at " << nodes << "x" << gpn;
      }
    }
  }
}

TEST(DeviceBlas, ReductionPatternTiming) {
  // A scalar all-reduce (dot) across 3 devices should cost roughly:
  // dot kernel + D2H latency (concurrent) + host add + (broadcast H2D).
  Machine m(3);
  const PerfModel& pm = m.perf();
  const int n = 1000;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  for (int d = 0; d < 3; ++d) dev_dot(m, d, n, x.data(), x.data());
  for (int d = 0; d < 3; ++d) m.d2h(d, 8.0);
  m.host_wait_all();
  const double t = m.clock().elapsed();
  const double kernel = pm.device_seconds(Kernel::kDot, 2.0 * n, 16.0 * n);
  const double xfer = pm.transfer_seconds(8.0);
  // Concurrent devices: one kernel + one transfer, NOT three of each.
  EXPECT_NEAR(t, kernel + xfer, 1e-9);
}

// --- host execution engine (DESIGN.md §9) -----------------------------

TEST(HostPool, SerialModeRunsInline) {
  HostPool pool(3, 0);
  EXPECT_EQ(pool.n_workers(), 0);
  int ran = 0;
  pool.enqueue(1, [&] { ++ran; });
  EXPECT_EQ(ran, 1);  // executed on the calling thread, immediately
  pool.drain_all();
}

TEST(HostPool, StreamsAreFifoAndDrainWaits) {
  HostPool pool(2, 2);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 64; ++i) {
    pool.enqueue(0, [&, i] {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(i);
    });
  }
  pool.drain(0);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(HostPool, ExceptionsLatchPerStreamAndRethrowAtDrain) {
  HostPool pool(2, 1);
  pool.enqueue(0, [] { throw Error("boom"); });
  pool.enqueue(0, [] { ADD_FAILURE() << "ran after a latched exception"; });
  pool.enqueue(1, [] {});  // the other stream is unaffected
  EXPECT_THROW(pool.drain(0), Error);
  pool.drain(1);
  pool.drain(0);  // latched error was consumed by the first drain
}

TEST(UnwindDrainGuard, HappyPathSkipsBarrierAndUnwindDrains) {
  Machine m(2);
  m.set_host_workers(2);

  // Happy path: leaving the guard's scope with a task still parked on a
  // stream must NOT drain — a drain here would deadlock on the latch.
  std::promise<void> gate;
  std::shared_future<void> opened(gate.get_future());
  m.run_on_device(0, [opened] { opened.wait(); });
  { UnwindDrainGuard guard(m); }  // two integer reads, no barrier
  gate.set_value();
  m.sync();

  // Unwind path: the guard drains before the frame's buffer dies, so every
  // closure referencing it has finished by the catch site (the
  // use-after-free class DESIGN §9 calls out; run under TSan via this
  // test's tsan label).
  std::atomic<int> ran{0};
  try {
    std::vector<double> buf(256, 0.0);
    UnwindDrainGuard guard(m);
    for (int i = 0; i < 64; ++i) {
      m.run_on_device(i % 2, [&buf, &ran, i] {
        buf[static_cast<std::size_t>(i * 4 % 256)] += 1.0;
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    throw Error("induced unwind");
  } catch (const Error&) {
    EXPECT_EQ(ran.load(), 64);  // all in-flight work drained by the guard
  }
}

TEST(HostPool, ResizeDrainsThenChangesWorkerCount) {
  HostPool pool(2, 1);
  int ran = 0;
  std::mutex mu;
  for (int i = 0; i < 16; ++i) {
    pool.enqueue(i % 2, [&] {
      std::lock_guard<std::mutex> lk(mu);
      ++ran;
    });
  }
  pool.resize(2);
  EXPECT_EQ(ran, 16);
  EXPECT_EQ(pool.n_workers(), 2);
  pool.resize(0);
  pool.enqueue(0, [&] { ++ran; });
  EXPECT_EQ(ran, 17);  // back to inline serial mode
}

TEST(Machine, HostWorkerCountComesFromEnvOrApi) {
  Machine m(3);
  m.set_host_workers(2);
  EXPECT_EQ(m.host_workers(), 2);
  m.set_host_workers(0);
  EXPECT_EQ(m.host_workers(), 0);
}

/// The engine's core guarantee (ISSUE 3, extended by ISSUE 4 to both sync
/// modes): identical RESULTS and identical SIMULATED TIMES for any worker
/// count, because charging happens on the calling thread in program order
/// and only pure numeric closures move to the pool. Exact ==, modeled on
/// the ZeroFault byte-identity tests. Across modes the numerics are the
/// same arithmetic in the same order, so x must also match bitwise — while
/// the event-mode charged time must not exceed the barrier-mode time (a
/// per-buffer wait can only remove charged blocking, never add it).
TEST(Machine, SolveIsByteIdenticalForAnyWorkerCount) {
  const auto a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const int ng = 3;
  const core::Problem p =
      core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
  core::SolverOptions opts;
  opts.m = 30;
  opts.s = 6;
  opts.tol = 1e-6;
  opts.max_restarts = 400;

  std::vector<core::SolveResult> mode_ref;
  for (const SyncMode mode : {SyncMode::kBarrier, SyncMode::kEvent}) {
    std::vector<core::SolveResult> results;
    std::vector<double> elapsed;
    for (const int workers : {0, 1, 2, ng}) {
      Machine m(ng);
      m.set_sync_mode(mode);
      m.set_host_workers(workers);
      results.push_back(core::ca_gmres(m, p, opts));
      elapsed.push_back(m.clock().elapsed());
    }
    const core::SolveStats& ref = results[0].stats;
    for (std::size_t i = 1; i < results.size(); ++i) {
      const core::SolveStats& st = results[i].stats;
      EXPECT_EQ(ref.time_total, st.time_total) << "workers case " << i;
      EXPECT_EQ(ref.iterations, st.iterations);
      EXPECT_EQ(ref.restarts, st.restarts);
      EXPECT_EQ(ref.residual_history, st.residual_history);
      EXPECT_EQ(results[0].x, results[i].x);
      EXPECT_EQ(elapsed[0], elapsed[i]);
    }
    mode_ref.push_back(results[0]);
  }
  EXPECT_EQ(mode_ref[0].x, mode_ref[1].x);  // bitwise across sync modes
  EXPECT_EQ(mode_ref[0].stats.iterations, mode_ref[1].stats.iterations);
  EXPECT_LE(mode_ref[1].stats.time_total, mode_ref[0].stats.time_total);
}

TEST(Machine, PipelinedSolveIsByteIdenticalForAnyWorkerCount) {
  const auto a = sparse::make_laplace2d(20, 18, 0.25, 0.3);
  std::vector<double> b(static_cast<std::size_t>(a.n_rows));
  Rng rng(21);
  for (auto& e : b) e = rng.normal();
  const core::Problem p =
      core::make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  core::SolverOptions opts;
  opts.m = 25;
  opts.tol = 1e-8;

  std::vector<core::SolveResult> results;
  for (const int workers : {0, 1, 2}) {
    Machine m(2);
    m.set_host_workers(workers);
    results.push_back(core::pipelined_gmres(m, p, opts));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].stats.time_total, results[i].stats.time_total);
    EXPECT_EQ(results[0].stats.residual_history,
              results[i].stats.residual_history);
    EXPECT_EQ(results[0].x, results[i].x);
  }
}

// --- per-buffer events (DESIGN.md §10) --------------------------------

TEST(HostPool, WaitTicketDoesNotWaitForLaterTasks) {
  HostPool pool(2, 1);
  std::atomic<int> ran{0};
  std::mutex gate;
  gate.lock();  // holds the SECOND task hostage
  pool.enqueue(0, [&] { ran.fetch_add(1); });
  const std::int64_t t = pool.ticket(0);
  pool.enqueue(0, [&] {
    std::lock_guard<std::mutex> lk(gate);
    ran.fetch_add(1);
  });
  // The ticket was taken before the gated task was enqueued, so this must
  // return once the first task completes — the blocked second task sits
  // behind the ticket and may not be waited for.
  pool.wait_ticket(0, t);
  EXPECT_EQ(ran.load(), 1);
  gate.unlock();
  pool.drain_all();
  EXPECT_EQ(ran.load(), 2);
}

TEST(HostPool, EnqueueWaitOrdersCrossStreamWork) {
  HostPool pool(2, 2);  // streams on distinct workers
  std::atomic<int> x{0};
  std::atomic<int> observed{-1};
  std::mutex gate;
  gate.lock();
  pool.enqueue(0, [&] {
    std::lock_guard<std::mutex> lk(gate);
    x.store(42);
  });
  const std::int64_t t = pool.ticket(0);
  // Stream 1 must not read x until stream 0's producer completed, even
  // though the producer is stuck behind the gate on another worker.
  pool.enqueue_wait(1, 0, t);
  pool.enqueue(1, [&] { observed.store(x.load()); });
  gate.unlock();
  pool.drain_all();
  EXPECT_EQ(observed.load(), 42);
}

TEST(HostPool, EnqueueWaitOnSameStreamIsANoOp) {
  HostPool pool(2, 1);
  int ran = 0;
  pool.enqueue(0, [&] { ++ran; });
  pool.enqueue_wait(0, 0, pool.ticket(0));  // FIFO already orders these
  pool.enqueue(0, [&] { ++ran; });
  pool.drain_all();
  EXPECT_EQ(ran, 2);
}

TEST(HostPool, GatesBetweenStreamsOnTheSameWorkerMakeProgress) {
  // One worker owns both streams, so a gate's consumer stream can reach the
  // front while its producer is still queued on the same thread. The gate
  // must park (the worker moves on to the producer stream), never block:
  // a long chain of cross-stream handoffs completes without deadlock and
  // every consumer observes its producer's write.
  HostPool pool(2, 1);
  const int rounds = 1000;
  std::vector<int> box(static_cast<std::size_t>(rounds), -1);
  std::vector<int> out(static_cast<std::size_t>(rounds), -2);
  for (int i = 0; i < rounds; ++i) {
    const int s = i & 1;
    const int o = 1 - s;
    pool.enqueue(s, [&box, i] { box[static_cast<std::size_t>(i)] = i; });
    pool.enqueue_wait(o, s, pool.ticket(s));
    pool.enqueue(o, [&box, &out, i] {
      out[static_cast<std::size_t>(i)] = box[static_cast<std::size_t>(i)];
    });
  }
  pool.drain_all();
  for (int i = 0; i < rounds; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  }
}

TEST(HostPool, RingWrapsPastCapacityWithBackpressure) {
  // The per-stream ring holds 512 slots; enqueueing four times that many
  // wraps the producer cursor repeatedly and forces it to block for slot
  // reuse. FIFO order must survive the wraps.
  HostPool pool(1, 1);
  const int n = 2048;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.enqueue(0, [&order, i] { order.push_back(i); });
  }
  pool.drain(0);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(HostPool, OversizedClosureFallsBackToHeapAndIsDestroyed) {
  // An inline slot holds kSlotBytes minus two dispatch pointers; a 256-byte
  // capture cannot fit, so construct_task takes the one-heap-allocation
  // branch. The payload must arrive intact and the closure must be
  // destroyed after running (the shared_ptr refcount drops back to one).
  HostPool pool(1, 1);
  std::array<unsigned char, 256> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<unsigned char>(i);
  }
  auto alive = std::make_shared<int>(0);
  std::atomic<long> sum{-1};
  pool.enqueue(0, [payload, alive, &sum] {
    long s = 0;
    for (const unsigned char b : payload) s += b;
    sum.store(s);
  });
  pool.drain_all();
  long expect = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    expect += static_cast<long>(static_cast<unsigned char>(i));
  }
  EXPECT_EQ(sum.load(), expect);
  EXPECT_EQ(alive.use_count(), 1);
}

TEST(Machine, EventCarriesProducerTimestampToWaiterStream) {
  Machine m(2);
  m.charge_device(0, Kernel::kDot, 2e5, 16e5);
  const double t0 = m.clock().device_time(0);
  ASSERT_GT(t0, 0.0);
  const Event e = m.record_event(0);
  EXPECT_EQ(e.t, t0);
  // cudaStreamWaitEvent analogue: the waiter's timeline advances to the
  // event's charged timestamp without involving the host.
  m.stream_wait_event(1, e);
  EXPECT_EQ(m.clock().device_time(1), t0);
  EXPECT_EQ(m.clock().host_time(), 0.0);
}

TEST(Machine, WaitOnAlreadyCompleteEventIsFree) {
  Machine m(2);
  m.charge_device(1, Kernel::kDot, 1e4, 8e4);
  const Event early = m.record_event(1);
  m.charge_device(0, Kernel::kGemm, 2e8, 8e6);  // device 0 is now far ahead
  const double dev0 = m.clock().device_time(0);
  ASSERT_GT(dev0, early.t);
  m.stream_wait_event(0, early);
  EXPECT_EQ(m.clock().device_time(0), dev0);  // no charged cost
  // Host-side: waiting on the small event advances the host only to that
  // event's time, NOT to the global maximum a host_wait_all would charge.
  m.host_wait_event(early);
  EXPECT_EQ(m.clock().host_time(), early.t);
  const double host_before = m.clock().host_time();
  m.host_wait_event(early);  // second wait on a complete event
  EXPECT_EQ(m.clock().host_time(), host_before);
  EXPECT_LT(m.clock().host_time(), dev0);
}

/// Acceptance: a device kill with events in flight must recover without
/// deadlock — orphaned wait tickets are satisfied by the kill path's
/// drain, and physical stream ids survive the retirement remap. Two
/// workers so the threaded enqueue_wait path is exercised (this test runs
/// under the tsan preset via the suite's label).
TEST(Machine, EventSolveSurvivesDeviceKillWithTwoWorkers) {
  const auto a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 3, graph::Ordering::kNatural, true, 1);
  core::SolverOptions opts;
  opts.m = 30;
  opts.s = 6;
  opts.tol = 1e-6;
  opts.max_restarts = 400;

  Machine machine(3);
  machine.set_sync_mode(SyncMode::kEvent);
  machine.set_host_workers(2);
  parse_fault_spec("kill:d1@op=400", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);  // one device retired
  EXPECT_EQ(res.stats.recovery.device_failures, 1);
}

}  // namespace
}  // namespace cagmres::sim
