// Tests for block-Jacobi preconditioning.
#include <cmath>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/precondition.hpp"
#include "sim/machine.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"

namespace cagmres::core {
namespace {

TEST(BlockJacobi, PreconditionedSystemHasSameSolution) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(14, 13, 0.3, 0.2);
  const int n = a.n_rows;
  Rng rng(31);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.normal();
  std::vector<double> b(static_cast<std::size_t>(n));
  sparse::spmv(a, x_true.data(), b.data());

  Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  const PreconditionStats st = apply_block_jacobi(p, 6);
  EXPECT_GT(st.blocks, n / 6 - 2);
  EXPECT_GE(st.nnz_after, st.nnz_before);  // row mixing adds fill

  // x_true still solves the transformed system M^{-1}A x = M^{-1}b.
  std::vector<double> lhs(static_cast<std::size_t>(n));
  // The prepared system is in permuted space (natural here => identity).
  sparse::spmv(p.a, x_true.data(), lhs.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(lhs[static_cast<std::size_t>(i)],
                p.b[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(BlockJacobi, DiagonalBlocksBecomeIdentity) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(10, 10, 0.1, 0.5);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  const int bs = 5;
  apply_block_jacobi(p, bs);
  for (int b0 = 0; b0 < p.n(); b0 += bs) {
    const int b1 = std::min(b0 + bs, p.n());
    for (int i = b0; i < b1; ++i) {
      for (int j = b0; j < b1; ++j) {
        EXPECT_NEAR(p.a.at(i, j), i == j ? 1.0 : 0.0, 1e-10);
      }
    }
  }
}

TEST(BlockJacobi, ReducesIterationsOnIllScaledSystem) {
  // A diagonally ill-scaled grid (no balancing): block-Jacobi must slash
  // the unpreconditioned iteration count.
  sparse::CsrMatrix a = sparse::make_laplace2d(24, 24, 0.0, 0.01);
  Rng rng(32);
  for (int i = 0; i < a.n_rows; ++i) {
    const double s = std::pow(10.0, 3.0 * rng.uniform());
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) a.vals[static_cast<std::size_t>(k)] *= s;
  }
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);

  SolverOptions opts;
  opts.m = 30;
  opts.tol = 1e-6;
  opts.max_restarts = 400;

  Problem plain = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  sim::Machine m1(1);
  const auto r_plain = gmres(m1, plain, opts).stats;

  Problem pre = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  apply_block_jacobi(pre, 8);
  sim::Machine m2(1);
  const auto r_pre = gmres(m2, pre, opts).stats;

  ASSERT_TRUE(r_pre.converged);
  EXPECT_LT(r_pre.iterations, r_plain.iterations / 2 + 2);
}

TEST(BlockJacobi, WorksUnderCaGmresWithMpk) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 16, 0.2, 0.1);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  Problem p = make_problem(a, b, 2, graph::Ordering::kKway, false, 3);
  apply_block_jacobi(p, 4);
  sim::Machine machine(2);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-7;
  const SolveResult res = ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  // Verify in the ORIGINAL system: recover and check A x = b.
  const double rel =
      true_residual(a, b, res.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
}

TEST(BlockJacobi, SingularBlockFallsBackToIdentity) {
  // A matrix with a zero 2x2 diagonal block: that block must stay as-is.
  sparse::CooBuilder builder(4, 4);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 3.0);
  builder.add(2, 3, 1.0);  // rows 2,3 have zero diagonal block? no:
  builder.add(3, 2, 1.0);  // block {2,3} = [[0,1],[1,0]] — invertible.
  // Make rows 2..3 exactly singular instead: both rows identical.
  builder.add(2, 0, 1.0);
  builder.add(3, 0, 1.0);
  sparse::CsrMatrix a = builder.build();
  // Overwrite to create a singular diagonal block {2,3}: zero it out.
  for (int i = 2; i < 4; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      if (a.col_idx[static_cast<std::size_t>(k)] >= 2) {
        a.vals[static_cast<std::size_t>(k)] = 0.0;
      }
    }
  }
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
  Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  const PreconditionStats st = apply_block_jacobi(p, 2);
  EXPECT_EQ(st.blocks, 2);
  // Block {0,1} was preconditioned (unit diagonal)...
  EXPECT_NEAR(p.a.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(p.a.at(1, 1), 1.0, 1e-12);
  // ...while the singular block kept its original rows and rhs.
  EXPECT_DOUBLE_EQ(p.b[2], 3.0);
  EXPECT_DOUBLE_EQ(p.b[3], 4.0);
}

TEST(Preconditioned, DriversMatchManualTransformThenSolve) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 14, 0.2, 0.1);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-7;

  // GMRES: wrapper vs transform-then-solve by hand — byte-identical.
  Problem manual = p;
  const PreconditionStats manual_st = apply_block_jacobi(manual, 6);
  sim::Machine m1(2);
  const SolveResult by_hand = gmres(m1, manual, opts);
  sim::Machine m2(2);
  const PreconditionedResult wrapped = preconditioned_gmres(m2, p, opts, 6);
  EXPECT_EQ(wrapped.precond.blocks, manual_st.blocks);
  EXPECT_EQ(wrapped.precond.nnz_after, manual_st.nnz_after);
  EXPECT_EQ(wrapped.solve.x, by_hand.x);
  EXPECT_EQ(wrapped.solve.stats.iterations, by_hand.stats.iterations);
  EXPECT_EQ(wrapped.solve.stats.time_total, by_hand.stats.time_total);

  // CA-GMRES: same contract, and a real solution of the original system.
  sim::Machine m3(2);
  const PreconditionedResult ca = preconditioned_ca_gmres(m3, p, opts, 6);
  ASSERT_TRUE(ca.solve.stats.converged);
  const double rel =
      true_residual(a, b, ca.solve.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
}

TEST(Preconditioned, DriverLeavesCallerProblemUntouched) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(10, 10, 0.1, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  const std::vector<double> vals_before = p.a.vals;
  sim::Machine m(1);
  SolverOptions opts;
  opts.m = 15;
  opts.tol = 1e-8;
  preconditioned_gmres(m, p, opts, 5);
  EXPECT_EQ(p.a.vals, vals_before);
  EXPECT_EQ(p.b, b);
}

TEST(Preconditioned, HealthMonitorRidesThroughTheWrapper) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.0, 0.005);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-12;
  opts.max_restarts = 200;

  // An iteration budget armed through opts.health must fire inside the
  // delegated solver, for both wrapped drivers.
  opts.health.max_iterations = 10;
  sim::Machine mg(2);
  EXPECT_THROW(preconditioned_gmres(mg, p, opts, 8), Error);
  sim::Machine mc(2);
  EXPECT_THROW(preconditioned_ca_gmres(mc, p, opts, 8), Error);

  // Report-only stagnation monitoring surfaces events in the returned
  // stats without changing the outcome.
  opts.health = HealthOptions{};
  opts.health.monitor_stagnation = true;
  opts.health.stagnation_window = 2;
  opts.health.stagnation_reduction = 1.0;
  opts.health.escalate = false;
  opts.tol = 1e-6;
  sim::Machine m(2);
  const PreconditionedResult res = preconditioned_ca_gmres(m, p, opts, 8);
  EXPECT_TRUE(res.solve.stats.converged);
}

}  // namespace
}  // namespace cagmres::core
