// Tests for the preconditioner layer: the block-Jacobi one-shot transform
// and the ILU(k) handle subsystem (src/precond/).
#include <cmath>
#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "codec_tol.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/pipelined.hpp"
#include "core/precondition.hpp"
#include "precond/ilu.hpp"
#include "precond/precond.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"

namespace cagmres::core {
namespace {

TEST(BlockJacobi, PreconditionedSystemHasSameSolution) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(14, 13, 0.3, 0.2);
  const int n = a.n_rows;
  Rng rng(31);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.normal();
  std::vector<double> b(static_cast<std::size_t>(n));
  sparse::spmv(a, x_true.data(), b.data());

  Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  const PreconditionStats st = apply_block_jacobi(p, 6);
  EXPECT_GT(st.blocks, n / 6 - 2);
  EXPECT_GE(st.nnz_after, st.nnz_before);  // row mixing adds fill

  // x_true still solves the transformed system M^{-1}A x = M^{-1}b.
  std::vector<double> lhs(static_cast<std::size_t>(n));
  // The prepared system is in permuted space (natural here => identity).
  sparse::spmv(p.a, x_true.data(), lhs.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(lhs[static_cast<std::size_t>(i)],
                p.b[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(BlockJacobi, DiagonalBlocksBecomeIdentity) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(10, 10, 0.1, 0.5);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  const int bs = 5;
  apply_block_jacobi(p, bs);
  for (int b0 = 0; b0 < p.n(); b0 += bs) {
    const int b1 = std::min(b0 + bs, p.n());
    for (int i = b0; i < b1; ++i) {
      for (int j = b0; j < b1; ++j) {
        EXPECT_NEAR(p.a.at(i, j), i == j ? 1.0 : 0.0, 1e-10);
      }
    }
  }
}

TEST(BlockJacobi, ReducesIterationsOnIllScaledSystem) {
  // A diagonally ill-scaled grid (no balancing): block-Jacobi must slash
  // the unpreconditioned iteration count.
  sparse::CsrMatrix a = sparse::make_laplace2d(24, 24, 0.0, 0.01);
  Rng rng(32);
  for (int i = 0; i < a.n_rows; ++i) {
    const double s = std::pow(10.0, 3.0 * rng.uniform());
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) a.vals[static_cast<std::size_t>(k)] *= s;
  }
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);

  SolverOptions opts;
  opts.m = 30;
  opts.tol = 1e-6;
  opts.max_restarts = 400;

  Problem plain = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  sim::Machine m1(1);
  const auto r_plain = gmres(m1, plain, opts).stats;

  Problem pre = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  apply_block_jacobi(pre, 8);
  sim::Machine m2(1);
  const auto r_pre = gmres(m2, pre, opts).stats;

  ASSERT_TRUE(r_pre.converged);
  EXPECT_LT(r_pre.iterations, r_plain.iterations / 2 + 2);
}

TEST(BlockJacobi, WorksUnderCaGmresWithMpk) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 16, 0.2, 0.1);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  Problem p = make_problem(a, b, 2, graph::Ordering::kKway, false, 3);
  apply_block_jacobi(p, 4);
  sim::Machine machine(2);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-7;
  const SolveResult res = ca_gmres(machine, p, opts);
  EXPECT_TRUE(res.stats.converged);
  // Verify in the ORIGINAL system: recover and check A x = b.
  const double rel =
      true_residual(a, b, res.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
}

TEST(BlockJacobi, SingularBlockFallsBackToIdentity) {
  // A matrix with a zero 2x2 diagonal block: that block must stay as-is.
  sparse::CooBuilder builder(4, 4);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 3.0);
  builder.add(2, 3, 1.0);  // rows 2,3 have zero diagonal block? no:
  builder.add(3, 2, 1.0);  // block {2,3} = [[0,1],[1,0]] — invertible.
  // Make rows 2..3 exactly singular instead: both rows identical.
  builder.add(2, 0, 1.0);
  builder.add(3, 0, 1.0);
  sparse::CsrMatrix a = builder.build();
  // Overwrite to create a singular diagonal block {2,3}: zero it out.
  for (int i = 2; i < 4; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      if (a.col_idx[static_cast<std::size_t>(k)] >= 2) {
        a.vals[static_cast<std::size_t>(k)] = 0.0;
      }
    }
  }
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
  Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  const PreconditionStats st = apply_block_jacobi(p, 2);
  EXPECT_EQ(st.blocks, 2);
  EXPECT_EQ(st.identity_fallbacks, 1);  // exactly the singular block
  // Block {0,1} was preconditioned (unit diagonal)...
  EXPECT_NEAR(p.a.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(p.a.at(1, 1), 1.0, 1e-12);
  // ...while the singular block kept its original rows and rhs.
  EXPECT_DOUBLE_EQ(p.b[2], 3.0);
  EXPECT_DOUBLE_EQ(p.b[3], 4.0);
}

TEST(Preconditioned, DriversMatchManualTransformThenSolve) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 14, 0.2, 0.1);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-7;

  // GMRES: wrapper vs transform-then-solve by hand — byte-identical.
  Problem manual = p;
  const PreconditionStats manual_st = apply_block_jacobi(manual, 6);
  sim::Machine m1(2);
  const SolveResult by_hand = gmres(m1, manual, opts);
  sim::Machine m2(2);
  const PreconditionedResult wrapped = preconditioned_gmres(m2, p, opts, 6);
  EXPECT_EQ(wrapped.precond.blocks, manual_st.blocks);
  EXPECT_EQ(wrapped.precond.nnz_after, manual_st.nnz_after);
  EXPECT_EQ(wrapped.solve.x, by_hand.x);
  EXPECT_EQ(wrapped.solve.stats.iterations, by_hand.stats.iterations);
  EXPECT_EQ(wrapped.solve.stats.time_total, by_hand.stats.time_total);

  // CA-GMRES: same contract, and a real solution of the original system.
  sim::Machine m3(2);
  const PreconditionedResult ca = preconditioned_ca_gmres(m3, p, opts, 6);
  ASSERT_TRUE(ca.solve.stats.converged);
  const double rel =
      true_residual(a, b, ca.solve.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, 1e-5);
}

TEST(Preconditioned, DriverLeavesCallerProblemUntouched) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(10, 10, 0.1, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 1, graph::Ordering::kNatural, false, 1);
  const std::vector<double> vals_before = p.a.vals;
  sim::Machine m(1);
  SolverOptions opts;
  opts.m = 15;
  opts.tol = 1e-8;
  preconditioned_gmres(m, p, opts, 5);
  EXPECT_EQ(p.a.vals, vals_before);
  EXPECT_EQ(p.b, b);
}

TEST(Preconditioned, HealthMonitorRidesThroughTheWrapper) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.0, 0.005);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-12;
  opts.max_restarts = 200;

  // An iteration budget armed through opts.health must fire inside the
  // delegated solver, for both wrapped drivers.
  opts.health.max_iterations = 10;
  sim::Machine mg(2);
  EXPECT_THROW(preconditioned_gmres(mg, p, opts, 8), Error);
  sim::Machine mc(2);
  EXPECT_THROW(preconditioned_ca_gmres(mc, p, opts, 8), Error);

  // Report-only stagnation monitoring surfaces events in the returned
  // stats without changing the outcome.
  opts.health = HealthOptions{};
  opts.health.monitor_stagnation = true;
  opts.health.stagnation_window = 2;
  opts.health.stagnation_reduction = 1.0;
  opts.health.escalate = false;
  opts.tol = 1e-6;
  sim::Machine m(2);
  const PreconditionedResult res = preconditioned_ca_gmres(m, p, opts, 8);
  EXPECT_TRUE(res.solve.stats.converged);
}

// === ILU(k) handle subsystem (src/precond/) ===========================

using precond::DeviceFactor;
using precond::LevelSchedule;
using precond::PrecondHandle;
using precond::PrecondKind;
using precond::PrecondSpec;
using precond::parse_precond_spec;
using test::codec_tol;

/// Row -> level map of a schedule (-1 when a row never appears).
std::vector<int> level_of(const LevelSchedule& s, int n) {
  std::vector<int> lvl(static_cast<std::size_t>(n), -1);
  for (int l = 0; l < s.levels(); ++l) {
    for (int k = s.level_ptr[static_cast<std::size_t>(l)];
         k < s.level_ptr[static_cast<std::size_t>(l) + 1]; ++k) {
      lvl[static_cast<std::size_t>(s.order[static_cast<std::size_t>(k)])] = l;
    }
  }
  return lvl;
}

/// Dense M(i, j) of the factored block: M = (I + L) * (D + U) with
/// D = diag(1 / inv_diag).
double factor_entry(const DeviceFactor& f, int i, int j) {
  auto lower = [&](int r, int c) -> double {  // (I + L)(r, c)
    if (r == c) return 1.0;
    for (auto k = f.l_ptr[static_cast<std::size_t>(r)];
         k < f.l_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      if (f.l_idx[static_cast<std::size_t>(k)] == c) {
        return f.l_val[static_cast<std::size_t>(k)];
      }
    }
    return 0.0;
  };
  auto upper = [&](int r, int c) -> double {  // (D + U)(r, c)
    if (r == c) return 1.0 / f.inv_diag[static_cast<std::size_t>(r)];
    for (auto k = f.u_ptr[static_cast<std::size_t>(r)];
         k < f.u_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      if (f.u_idx[static_cast<std::size_t>(k)] == c) {
        return f.u_val[static_cast<std::size_t>(k)];
      }
    }
    return 0.0;
  };
  double acc = 0.0;
  for (int p = 0; p <= std::min(i, j); ++p) acc += lower(i, p) * upper(p, j);
  return acc;
}

TEST(IluFactor, IluZeroIsExactOnTridiagonal) {
  // A tridiagonal matrix fills nowhere, so ILU(0) IS the LU factorization:
  // L * U must reproduce A entry for entry.
  const sparse::CsrMatrix a = sparse::make_laplace2d(18, 1, 0.2, 0.3);
  const int n = a.n_rows;
  DeviceFactor f;
  precond::ilu_symbolic(a, 0, n, /*level=*/0, /*underlap=*/0, f);
  precond::ilu_numeric(a, f);
  EXPECT_EQ(f.pivot_fallbacks, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(factor_entry(f, i, j), a.at(i, j), 1e-10)
          << "at (" << i << ", " << j << ")";
    }
  }
}

TEST(IluFactor, FillLevelGrowsPattern) {
  // On a 2D stencil ILU(0) keeps exactly the block-local pattern of A (plus
  // the always-present diagonal) and ILU(1) strictly adds fill.
  const sparse::CsrMatrix a = sparse::make_laplace2d(12, 12, 0.1, 0.2);
  const int n = a.n_rows;
  DeviceFactor f0, f1;
  precond::ilu_symbolic(a, 0, n, 0, 0, f0);
  precond::ilu_symbolic(a, 0, n, 1, 0, f1);
  EXPECT_EQ(f0.fill_nnz(), a.nnz());  // generator emits full diagonal
  EXPECT_GT(f1.fill_nnz(), f0.fill_nnz());
  // Deeper fill couples more rows, so the schedules cannot get shallower.
  EXPECT_GE(f1.l_sched.levels(), f0.l_sched.levels());
}

TEST(IluFactor, LevelScheduleRespectsDependencies) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(11, 9, 0.3, 0.1);
  const int n = a.n_rows;
  DeviceFactor f;
  precond::ilu_symbolic(a, 0, n, 1, 0, f);
  const std::vector<int> ll = level_of(f.l_sched, n);
  const std::vector<int> lu = level_of(f.u_sched, n);
  for (int i = 0; i < n; ++i) {
    ASSERT_GE(ll[static_cast<std::size_t>(i)], 0);  // every row scheduled
    ASSERT_GE(lu[static_cast<std::size_t>(i)], 0);
    // The forward sweep reads out[j] for every j in L's row i: j must have
    // been finished in a strictly earlier level. Mirrored for U (deps are
    // higher-numbered rows, swept backwards).
    for (auto k = f.l_ptr[static_cast<std::size_t>(i)];
         k < f.l_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = f.l_idx[static_cast<std::size_t>(k)];
      EXPECT_LT(ll[static_cast<std::size_t>(j)], ll[static_cast<std::size_t>(i)]);
    }
    for (auto k = f.u_ptr[static_cast<std::size_t>(i)];
         k < f.u_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = f.u_idx[static_cast<std::size_t>(k)];
      EXPECT_LT(lu[static_cast<std::size_t>(j)], lu[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(IluFactor, UnderlapRowsAreJacobiTreated) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(10, 10, 0.0, 0.2);
  const int n = a.n_rows;
  const int u = 3;
  DeviceFactor f;
  precond::ilu_symbolic(a, 0, n, 1, u, f);
  precond::ilu_numeric(a, f);
  for (int i = 0; i < n; ++i) {
    const bool margin = i < u || i >= n - u;
    const bool l_empty = f.l_ptr[static_cast<std::size_t>(i)] ==
                         f.l_ptr[static_cast<std::size_t>(i) + 1];
    const bool u_empty = f.u_ptr[static_cast<std::size_t>(i)] ==
                         f.u_ptr[static_cast<std::size_t>(i) + 1];
    if (margin) {
      EXPECT_TRUE(l_empty && u_empty) << "row " << i;
      // Jacobi rows keep the raw diagonal of A.
      EXPECT_NEAR(1.0 / f.inv_diag[static_cast<std::size_t>(i)], a.at(i, i),
                  1e-12);
    }
  }
  // underlap >= block size degenerates to plain diagonal scaling: one
  // trivially parallel level per sweep.
  DeviceFactor g;
  precond::ilu_symbolic(a, 0, n, 1, n, g);
  EXPECT_EQ(g.l_sched.levels(), 1);
  EXPECT_EQ(g.u_sched.levels(), 1);
  EXPECT_EQ(g.fill_nnz(), static_cast<std::int64_t>(n));
}

TEST(IluFactor, TinyPivotFallsBackAndIsCounted) {
  // Row 0 has a structurally zero diagonal: the numeric phase must not
  // divide by it — the documented fallback pins u_00 = 1 and counts it.
  sparse::CooBuilder builder(3, 3);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 2.0);
  builder.add(2, 2, 3.0);
  const sparse::CsrMatrix a = builder.build();
  DeviceFactor f;
  precond::ilu_symbolic(a, 0, 3, 0, 0, f);
  precond::ilu_numeric(a, f);
  EXPECT_GE(f.pivot_fallbacks, 1);
  EXPECT_DOUBLE_EQ(f.inv_diag[0], 1.0);
  for (const double d : f.inv_diag) EXPECT_TRUE(std::isfinite(d));
}

TEST(PrecondSpec, ParsesKnobsAliasesAndRejectsGarbage) {
  EXPECT_FALSE(parse_precond_spec("").armed());
  EXPECT_FALSE(parse_precond_spec("none").armed());
  EXPECT_FALSE(parse_precond_spec("off").armed());
  EXPECT_FALSE(parse_precond_spec("0").armed());

  const PrecondSpec plain = parse_precond_spec("ilu");
  EXPECT_EQ(plain.kind, PrecondKind::kIlu);
  EXPECT_EQ(plain.level, 0);
  EXPECT_EQ(plain.underlap, 0);

  const PrecondSpec full = parse_precond_spec("ilu:k=2,underlap=1");
  EXPECT_EQ(full.level, 2);
  EXPECT_EQ(full.underlap, 1);
  const PrecondSpec alias = parse_precond_spec("ilu:level=1,u=3");
  EXPECT_EQ(alias.level, 1);
  EXPECT_EQ(alias.underlap, 3);

  // to_string round-trips through the parser.
  const PrecondSpec again = parse_precond_spec(full.to_string());
  EXPECT_EQ(again.level, full.level);
  EXPECT_EQ(again.underlap, full.underlap);

  EXPECT_THROW(parse_precond_spec("lu"), Error);
  EXPECT_THROW(parse_precond_spec("ilu:k=x"), Error);
  EXPECT_THROW(parse_precond_spec("ilu:fill=2"), Error);
  EXPECT_THROW(parse_precond_spec("ilu:k=-1"), Error);
}

TEST(IluPrecond, ReducesIterationsAndSolvesOriginalSystem) {
  // The headline contract: on a plain Poisson problem ILU(1) must slash
  // the GMRES iteration count, while the recovered x still solves the
  // ORIGINAL system (right preconditioning never changes the residual).
  const sparse::CsrMatrix a = sparse::make_laplace2d(24, 24, 0.1, 0.0);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 30;
  opts.tol = codec_tol(1e-8, 1e-6);  // fp32 wire caps the reachable residual
  opts.max_restarts = 400;

  sim::Machine m_plain(2);
  const IluPreconditionedResult plain =
      preconditioned_gmres(m_plain, p, opts, parse_precond_spec("none"));
  sim::Machine m_ilu(2);
  const IluPreconditionedResult ilu =
      preconditioned_gmres(m_ilu, p, opts, parse_precond_spec("ilu:k=1"));

  ASSERT_TRUE(plain.solve.stats.converged);
  ASSERT_TRUE(ilu.solve.stats.converged);
  EXPECT_LT(ilu.solve.stats.iterations, plain.solve.stats.iterations / 2 + 2);
  EXPECT_GT(ilu.precond.applies, 0);
  EXPECT_GT(ilu.precond.fill_nnz, 0);
  EXPECT_GT(ilu.precond.setup_seconds, 0.0);
  EXPECT_GT(ilu.solve.stats.time_precond, 0.0);
  const double rel =
      true_residual(a, b, ilu.solve.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, codec_tol(1e-6, 1e-4));
}

TEST(IluPrecond, KNoneSpecIsByteIdenticalToPlainSolvers) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 14, 0.2, 0.1);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-7;

  sim::Machine m1(2), m2(2);
  const SolveResult direct = ca_gmres(m1, p, opts);
  const IluPreconditionedResult wrapped =
      preconditioned_ca_gmres(m2, p, opts, PrecondSpec{});
  EXPECT_EQ(wrapped.solve.x, direct.x);
  EXPECT_EQ(wrapped.solve.stats.time_total, direct.stats.time_total);
  EXPECT_EQ(wrapped.solve.stats.residual_history,
            direct.stats.residual_history);
  EXPECT_EQ(wrapped.precond.applies, 0);
  EXPECT_EQ(wrapped.precond.symbolic_builds, 0);
}

TEST(IluPrecond, AllThreeSolversConvergeOnOriginalSystem) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(16, 16, 0.2, 0.05);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.s = 5;
  opts.tol = 1e-7;
  opts.max_restarts = 200;
  const PrecondSpec spec = parse_precond_spec("ilu:k=1");
  const double bn = blas::nrm2(a.n_rows, b.data());

  sim::Machine mg(2);
  const IluPreconditionedResult rg = preconditioned_gmres(mg, p, opts, spec);
  sim::Machine mc(2);
  const IluPreconditionedResult rc = preconditioned_ca_gmres(mc, p, opts, spec);
  sim::Machine mp(2);
  const IluPreconditionedResult rp =
      preconditioned_pipelined_gmres(mp, p, opts, spec);
  for (const IluPreconditionedResult* r : {&rg, &rc, &rp}) {
    ASSERT_TRUE(r->solve.stats.converged);
    EXPECT_GT(r->precond.applies, 0);
    EXPECT_LT(true_residual(a, b, r->solve.x) / bn, codec_tol(1e-5));
  }
  // CA-GMRES with a preconditioner routes blocks through plain SpMVs (the
  // fused MPK kernel cannot interleave the trisolve), so MPK time is zero.
  EXPECT_EQ(rc.solve.stats.time_mpk, 0.0);
}

TEST(IluPrecond, BitwiseIdenticalAcrossModesWorkersAndShapes) {
  // The trisolve charges on the calling thread in program order, so for a
  // fixed handle the preconditioned solve must be bit-for-bit reproducible
  // across {barrier, event} x {0, 2 workers} x {flat, hier} collectives on
  // a fixed 2x2 machine (the hier-reduce contract of DESIGN §13).
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const int ng = 4;
  const Problem p = make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
  SolverOptions opts;
  opts.m = 25;
  opts.s = 5;
  opts.tol = codec_tol(1e-7);
  opts.max_restarts = 200;
  const PrecondSpec spec = parse_precond_spec("ilu:k=1,underlap=1");

  std::vector<double> x0;
  std::vector<double> hist0;
  bool first = true;
  for (const bool hier : {false, true}) {
    for (const sim::SyncMode mode :
         {sim::SyncMode::kBarrier, sim::SyncMode::kEvent}) {
      for (const int workers : {0, 2}) {
        sim::Machine m(ng);
        m.set_topology(2, 2);
        m.set_hier_reduce(hier);
        m.set_sync_mode(mode);
        m.set_host_workers(workers);
        const IluPreconditionedResult r =
            preconditioned_ca_gmres(m, p, opts, spec);
        ASSERT_TRUE(r.solve.stats.converged);
        if (first) {
          x0 = r.solve.x;
          hist0 = r.solve.stats.residual_history;
          first = false;
        } else {
          EXPECT_EQ(r.solve.x, x0)
              << "hier=" << hier << " event="
              << (mode == sim::SyncMode::kEvent) << " workers=" << workers;
          EXPECT_EQ(r.solve.stats.residual_history, hist0);
        }
      }
    }
  }
}

TEST(IluPrecond, BitwiseIdenticalUnderInjectedKernelNan) {
  // Regression: the preconditioned CA block generation stages M^{-1}v in
  // the MPK executor's scratch multivector. Reusing ONE scratch column for
  // every step of a block let step i+1's trisolve overwrite rows that a
  // peer's still-parked halo closure from step i was reading — a
  // write-after-read hazard only visible in event mode with live workers,
  // and only observable when the two orders produce different bytes (an
  // injected NaN makes them wildly different). generate_by_spmv now stages
  // one column per step; a NaN-poisoned run must be bit-identical across
  // every sync mode and worker count, like any other run.
  const sparse::CsrMatrix a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const int ng = 4;
  const Problem p = make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
  SolverOptions opts;
  opts.m = 30;
  opts.s = 6;
  opts.tol = codec_tol(1e-6, 1e-4);
  opts.max_restarts = 400;
  const PrecondSpec spec = parse_precond_spec("ilu:k=1");

  std::vector<double> x0;
  std::vector<double> hist0;
  bool first = true;
  for (const sim::SyncMode mode :
       {sim::SyncMode::kBarrier, sim::SyncMode::kEvent}) {
    for (const int workers : {0, 2}) {
      sim::Machine m(ng);
      m.set_topology(2, 2);
      m.set_sync_mode(mode);
      m.set_host_workers(workers);
      sim::parse_fault_spec("nan:d3@op=335", m.fault_injector());
      const IluPreconditionedResult r =
          preconditioned_ca_gmres(m, p, opts, spec);
      ASSERT_TRUE(r.solve.stats.converged);
      EXPECT_GE(r.solve.stats.recovery.blocks_replayed, 1);
      if (first) {
        x0 = r.solve.x;
        hist0 = r.solve.stats.residual_history;
        first = false;
      } else {
        EXPECT_EQ(r.solve.x, x0)
            << "event=" << (mode == sim::SyncMode::kEvent)
            << " workers=" << workers;
        EXPECT_EQ(r.solve.stats.residual_history, hist0);
      }
    }
  }
}

TEST(IluPrecond, SymbolicHandleBuiltOnceAcrossRestarts) {
  // Shift-free Poisson at a loose restart length forces several restarts;
  // the handle must factor each device exactly once (symbolic AND numeric)
  // and serve every later restart from matches().
  const sparse::CsrMatrix a = sparse::make_laplace2d(22, 22, 0.0, 0.0);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 8;
  opts.tol = codec_tol(1e-8);
  opts.max_restarts = 500;

  PrecondHandle handle(parse_precond_spec("ilu:k=1"));
  SolverOptions popts = opts;
  popts.precond = &handle;
  sim::Machine m(2);
  const SolveResult r = gmres(m, p, popts);
  ASSERT_TRUE(r.stats.converged);
  ASSERT_GE(r.stats.restarts, 2);
  EXPECT_EQ(handle.stats().symbolic_builds, 2);  // once per device, ever
  EXPECT_EQ(handle.stats().numeric_builds, 2);
  EXPECT_TRUE(handle.matches(p.offsets));

  // The same handle serves a whole second solve without refactoring.
  sim::Machine m2(2);
  const SolveResult r2 = gmres(m2, p, popts);
  ASSERT_TRUE(r2.stats.converged);
  EXPECT_EQ(handle.stats().symbolic_builds, 2);
  EXPECT_EQ(r2.x, r.x);  // same factors, same machine config: same bits
}

TEST(IluPrecond, RebuildRefactorsOnlyChangedRanges) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(18, 18, 0.1, 0.1);
  const int n = a.n_rows;
  sim::Machine m(3);
  PrecondHandle handle(parse_precond_spec("ilu:k=1"));
  const std::vector<int> before = {0, n / 3, 2 * n / 3, n};
  handle.build(m, a, before);
  EXPECT_EQ(handle.stats().symbolic_builds, 3);

  // Move only the SECOND split point: device 0's range is untouched and
  // must come back from the cache; devices 1 and 2 are refactored.
  const std::vector<int> after = {0, n / 3, 2 * n / 3 + 5, n};
  handle.rebuild(m, a, after);
  EXPECT_EQ(handle.stats().device_reuses, 1);
  EXPECT_EQ(handle.stats().device_rebuilds, 2);
  EXPECT_EQ(handle.stats().symbolic_builds, 5);
  EXPECT_TRUE(handle.matches(after));
  EXPECT_FALSE(handle.matches(before));

  // Rebuilding back reuses ALL three cached factors (the cache keeps
  // superseded ranges alive).
  handle.rebuild(m, a, before);
  EXPECT_EQ(handle.stats().device_reuses, 4);
  EXPECT_EQ(handle.stats().symbolic_builds, 5);
}

TEST(IluPrecond, DeviceKillRepartitionsRebuildsAndConverges) {
  // A permanent device loss mid-solve: the recovery path must repartition,
  // rebuild the handle for the survivors' ranges, and still converge on
  // the original system.
  const sparse::CsrMatrix a = sparse::make_laplace2d(20, 20, 0.1, 0.05);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 3, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 20;
  opts.tol = 1e-7;
  opts.max_restarts = 300;

  PrecondHandle handle(parse_precond_spec("ilu:k=1"));
  SolverOptions popts = opts;
  popts.precond = &handle;
  sim::Machine machine(3);
  sim::parse_fault_spec("kill:d1@op=400", machine.fault_injector());
  const SolveResult res = gmres(machine, p, popts);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);
  EXPECT_EQ(res.stats.recovery.repartitions, 1);
  // 3 factors up front, then the 2-way resplit refactored what moved.
  EXPECT_GE(handle.stats().device_rebuilds, 1);
  EXPECT_EQ(handle.stats().symbolic_builds,
            3 + handle.stats().device_rebuilds);
  EXPECT_FALSE(handle.matches(p.offsets));  // now targeting the new split
  const double rel =
      true_residual(a, b, res.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, codec_tol(1e-4));
}

TEST(IluPrecond, FullUnderlapDegeneratesToJacobiAndStillSolves) {
  const sparse::CsrMatrix a = sparse::make_laplace2d(14, 14, 0.1, 0.3);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const Problem p = make_problem(a, b, 2, graph::Ordering::kNatural, false, 1);
  SolverOptions opts;
  opts.m = 25;
  opts.tol = 1e-7;
  opts.max_restarts = 200;
  sim::Machine m(2);
  const IluPreconditionedResult r = preconditioned_gmres(
      m, p, opts, parse_precond_spec("ilu:k=0,underlap=100000"));
  ASSERT_TRUE(r.solve.stats.converged);
  EXPECT_EQ(r.precond.max_levels_l, 1);  // diagonal-only: fully parallel
  EXPECT_EQ(r.precond.max_levels_u, 1);
  const double rel =
      true_residual(a, b, r.solve.x) / blas::nrm2(a.n_rows, b.data());
  EXPECT_LT(rel, codec_tol(1e-5));
}

}  // namespace
}  // namespace cagmres::core
