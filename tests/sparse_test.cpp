// Unit tests for the sparse-matrix substrate: CSR/ELL/COO, I/O, generators,
// balancing, and stats.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/balance.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"

namespace cagmres::sparse {
namespace {

CsrMatrix small_matrix() {
  // [[2, -1, 0], [0, 3, 1], [4, 0, 5]]
  CooBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(0, 1, -1.0);
  b.add(1, 1, 3.0);
  b.add(1, 2, 1.0);
  b.add(2, 0, 4.0);
  b.add(2, 2, 5.0);
  return b.build();
}

TEST(Coo, BuildsSortedCsrAndMergesDuplicates) {
  CooBuilder b(2, 2);
  b.add(1, 1, 1.0);
  b.add(0, 1, 2.0);
  b.add(0, 0, 3.0);
  b.add(0, 1, 4.0);  // duplicate, summed
  CsrMatrix a = b.build();
  a.validate();
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);
}

TEST(Csr, SpmvMatchesDense) {
  CsrMatrix a = small_matrix();
  const double x[3] = {1.0, 2.0, 3.0};
  double y[3];
  spmv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 1 - 1.0 * 2);
  EXPECT_DOUBLE_EQ(y[1], 3.0 * 2 + 1.0 * 3);
  EXPECT_DOUBLE_EQ(y[2], 4.0 * 1 + 5.0 * 3);
}

TEST(Csr, SpmvTransposeMatchesExplicitTranspose) {
  CsrMatrix a = small_matrix();
  CsrMatrix at = transpose(a);
  at.validate();
  const double x[3] = {-1.0, 0.5, 2.0};
  double y1[3], y2[3];
  spmv_transpose(a, x, y1);
  spmv(at, x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(Csr, ExtractRowsKeepsValues) {
  CsrMatrix a = small_matrix();
  CsrMatrix sub = extract_rows(a, {2, 0});
  EXPECT_EQ(sub.n_rows, 2);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 1), -1.0);
}

TEST(Csr, SymmetricPermutationPreservesSpmv) {
  Rng rng(21);
  CsrMatrix a = make_laplace2d(7, 5, 0.3);
  const int n = a.n_rows;
  const std::vector<int> p = rng.permutation(n);
  CsrMatrix ap = permute_symmetric(a, p);
  ap.validate();

  std::vector<double> x(n), y(n), xp(n), yp(n);
  for (int i = 0; i < n; ++i) x[i] = rng.normal();
  for (int i = 0; i < n; ++i) xp[i] = x[static_cast<std::size_t>(p[i])];
  spmv(a, x.data(), y.data());
  spmv(ap, xp.data(), yp.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(yp[i], y[static_cast<std::size_t>(p[i])], 1e-13);
  }
}

TEST(Csr, PermuteRejectsNonPermutation) {
  CsrMatrix a = small_matrix();
  EXPECT_THROW(permute_symmetric(a, {0, 0, 1}), Error);
  EXPECT_THROW(permute_symmetric(a, {0, 1}), Error);
}

TEST(Csr, FrobeniusNorm) {
  CsrMatrix a = small_matrix();
  EXPECT_NEAR(frobenius_norm(a), std::sqrt(4.0 + 1 + 9 + 1 + 16 + 25), 1e-14);
}

TEST(Ell, ConversionAndSpmvMatchCsr) {
  Rng rng(22);
  CsrMatrix a = make_circuit_like(0.06, true, 7);
  EllMatrix e = to_ell(a);
  EXPECT_GE(e.width, 1);
  const int n = a.n_rows;
  std::vector<double> x(n), y1(n), y2(n);
  for (int i = 0; i < n; ++i) x[i] = rng.normal();
  spmv(a, x.data(), y1.data());
  spmv(e, x.data(), y2.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
  EXPECT_GE(padding_ratio(e, a.nnz()), 0.0);
  EXPECT_LT(padding_ratio(e, a.nnz()), 1.0);
}

TEST(Io, RoundTripsGeneralMatrix) {
  CsrMatrix a = small_matrix();
  std::stringstream ss;
  write_matrix_market(a, ss);
  CsrMatrix b = read_matrix_market(ss);
  b.validate();
  EXPECT_EQ(b.n_rows, a.n_rows);
  EXPECT_EQ(b.nnz(), a.nnz());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b.at(i, j), a.at(i, j));
  }
}

TEST(Io, ExpandsSymmetricStorage) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "3 3 3\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "3 3 5.0\n";
  CsrMatrix a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(Io, RejectsGarbage) {
  std::stringstream ss("not a matrix\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(Generators, Laplace2dStructure) {
  CsrMatrix a = make_laplace2d(4, 3);
  a.validate();
  EXPECT_EQ(a.n_rows, 12);
  const MatrixStats st = compute_stats(a);
  EXPECT_TRUE(st.structurally_symmetric);
  EXPECT_EQ(st.max_row_nnz, 5);
  // Diagonal dominance for the pure Laplacian with boundary.
  for (int i = 0; i < a.n_rows; ++i) {
    double off = 0.0;
    const double d = a.at(i, i);
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      if (a.col_idx[static_cast<std::size_t>(k)] != i) {
        off += std::fabs(a.vals[static_cast<std::size_t>(k)]);
      }
    }
    EXPECT_GE(d, off);
  }
}

TEST(Generators, ConvectionBreaksSymmetryOfValuesNotPattern) {
  CsrMatrix a = make_laplace3d(4, 4, 4, 0.5);
  const MatrixStats st = compute_stats(a);
  EXPECT_TRUE(st.structurally_symmetric);
  // Values differ across the diagonal.
  EXPECT_NE(a.at(0, 1), a.at(1, 0));
}

TEST(Generators, CantLikeIsBandedStencil) {
  CsrMatrix a = make_cant_like(0.35);
  a.validate();
  const MatrixStats st = compute_stats(a);
  EXPECT_GT(st.avg_row_nnz, 15.0);  // 27-pt stencil, thin beam boundary
  EXPECT_LE(st.max_row_nnz, 27);
  // Banded: bandwidth much smaller than n (the beam's long axis is the
  // fastest-varying index, so the band is ~ 2 * nx * ny).
  EXPECT_LT(st.bandwidth, st.n / 2);
}

TEST(Generators, CircuitLikeScrambledHasNoLocality) {
  CsrMatrix scr = make_circuit_like(0.06, true, 11);
  CsrMatrix nat = make_circuit_like(0.06, false, 11);
  const MatrixStats s1 = compute_stats(scr);
  const MatrixStats s2 = compute_stats(nat);
  EXPECT_EQ(s1.nnz, s2.nnz);
  // Scrambling should blow up the average bandwidth.
  EXPECT_GT(s1.avg_bandwidth, 5.0 * s2.avg_bandwidth);
  EXPECT_LT(s1.avg_row_nnz, 8.0);  // low-degree circuit graph
}

TEST(Generators, KktLikeIsSymmetricSaddle) {
  CsrMatrix a = make_kkt_like(0.12);
  a.validate();
  const MatrixStats st = compute_stats(a);
  EXPECT_TRUE(st.structurally_symmetric);
  // The (2,2) block has negative diagonal (saddle point).
  EXPECT_LT(a.at(a.n_rows - 1, a.n_rows - 1), 0.0);
  EXPECT_GT(a.at(0, 0), 0.0);
}

TEST(Generators, PaperLookupAndUnknownName) {
  EXPECT_GT(make_paper_matrix("cant", 0.1).n_rows, 0);
  EXPECT_GT(make_paper_matrix("g3", 0.05).n_rows, 0);
  EXPECT_THROW(make_paper_matrix("nope", 1.0), Error);
}

TEST(Generators, DeterministicForFixedSeed) {
  const CsrMatrix a1 = make_circuit_like(0.05, true, 99);
  const CsrMatrix a2 = make_circuit_like(0.05, true, 99);
  EXPECT_EQ(a1.col_idx, a2.col_idx);
  EXPECT_EQ(a1.vals, a2.vals);
  const CsrMatrix b1 = make_circuit_like(0.05, true, 100);
  EXPECT_NE(a1.vals, b1.vals);  // different seed, different wires
}

TEST(Generators, ScaleGrowsEveryAnalog) {
  for (const char* name : {"cant", "g3_circuit", "dielfilter", "nlpkkt"}) {
    const int small = make_paper_matrix(name, 0.25).n_rows;
    const int big = make_paper_matrix(name, 0.5).n_rows;
    EXPECT_GT(big, 2 * small) << name;
  }
}

TEST(Balance, UnitRowAndColumnNorms) {
  CsrMatrix a = make_laplace2d(6, 6, 0.2);
  // Skew the scales.
  for (std::size_t k = 0; k < a.vals.size(); ++k) a.vals[k] *= 1e3;
  const BalanceScaling s = balance(a);

  // Column norms are exactly 1 after the final pass.
  std::vector<double> colsq(static_cast<std::size_t>(a.n_cols), 0.0);
  for (int i = 0; i < a.n_rows; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      colsq[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])] +=
          a.vals[static_cast<std::size_t>(k)] * a.vals[static_cast<std::size_t>(k)];
    }
  }
  for (int j = 0; j < a.n_cols; ++j) {
    EXPECT_NEAR(std::sqrt(colsq[static_cast<std::size_t>(j)]), 1.0, 1e-12);
  }
  // Row norms are bounded (row pass ran before the column pass).
  for (int i = 0; i < a.n_rows; ++i) {
    double acc = 0.0;
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      acc += a.vals[static_cast<std::size_t>(k)] * a.vals[static_cast<std::size_t>(k)];
    }
    EXPECT_LE(std::sqrt(acc), 2.0);
  }
  EXPECT_EQ(static_cast<int>(s.row.size()), a.n_rows);
}

TEST(Balance, ScaledSystemIsEquivalent) {
  // Solve consistency: (Dr A Dc) y = Dr b with x = Dc y reproduces A x = b.
  CsrMatrix a = make_laplace2d(5, 4, 0.1);
  CsrMatrix ab = a;
  const BalanceScaling s = balance(ab);
  const int n = a.n_rows;
  Rng rng(23);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = rng.normal();
  std::vector<double> b(static_cast<std::size_t>(n));
  spmv(a, x.data(), b.data());
  // y = Dc^{-1} x must satisfy the balanced system with rhs Dr b.
  std::vector<double> y(static_cast<std::size_t>(n)), rhs = b;
  for (int i = 0; i < n; ++i) y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)] / s.col[static_cast<std::size_t>(i)];
  scale_rhs(s, rhs);
  std::vector<double> lhs(static_cast<std::size_t>(n));
  spmv(ab, y.data(), lhs.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(lhs[static_cast<std::size_t>(i)], rhs[static_cast<std::size_t>(i)], 1e-11);
  }
  // And unscale_solution maps y back to x.
  unscale_solution(s, y);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST(Stats, BandwidthAndSymmetry) {
  CsrMatrix a = small_matrix();
  const MatrixStats st = compute_stats(a);
  EXPECT_EQ(st.n, 3);
  EXPECT_EQ(st.nnz, 6);
  EXPECT_EQ(st.bandwidth, 2);
  EXPECT_FALSE(st.structurally_symmetric);
  EXPECT_FALSE(to_string(st).empty());
}

}  // namespace
}  // namespace cagmres::sparse
