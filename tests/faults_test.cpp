// Fault-injection and self-healing tests: the deterministic injector
// itself, the spec parser, the error taxonomy, and the acceptance
// scenarios — device dropout, transfer corruption, and transient NaN
// kernel faults must all leave GMRES and CA-GMRES converged with the
// recovery recorded in SolveStats, while a zero-fault schedule stays
// byte-identical to a machine without the layer.
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "common/error.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/solver_common.hpp"
#include "ortho/tsqr.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sparse/generators.hpp"

#include "codec_tol.hpp"

namespace cagmres {
namespace {

using sim::FaultEvent;
using sim::FaultInjector;
using sim::FaultKind;
using sim::Machine;

struct TestSystem {
  sparse::CsrMatrix a;
  std::vector<double> b;
  core::Problem p;
};

TestSystem make_system(int ng) {
  TestSystem s;
  s.a = sparse::make_laplace2d(24, 24, 0.1, 0.02);
  s.b.assign(static_cast<std::size_t>(s.a.n_rows), 1.0);
  s.p = core::make_problem(s.a, s.b, ng, graph::Ordering::kNatural, true, 1);
  return s;
}

core::SolverOptions base_opts() {
  core::SolverOptions o;
  o.m = 30;
  o.s = 6;
  o.tol = 1e-6;
  o.max_restarts = 400;
  return o;
}

double relative_residual(const TestSystem& s, const std::vector<double>& x) {
  return core::true_residual(s.a, s.b, x) /
         blas::nrm2(s.a.n_rows, s.b.data());
}

// --- injector unit tests ---------------------------------------------

TEST(FaultInjector, UnarmedByDefaultAndArmedBySchedule) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  FaultEvent e;
  e.kind = FaultKind::kKernelNan;
  e.device = 0;
  e.at_op = 10;
  inj.schedule(e);
  EXPECT_TRUE(inj.armed());
}

TEST(FaultInjector, OpTriggerFiresOnceOnTargetDevice) {
  FaultInjector inj;
  FaultEvent e;
  e.kind = FaultKind::kKernelNan;
  e.device = 1;
  e.at_op = 5;
  inj.schedule(e);
  EXPECT_FALSE(inj.poll_kernel_nan(1, 0.0, 4));  // before the trigger
  EXPECT_FALSE(inj.poll_kernel_nan(0, 0.0, 9));  // wrong device
  EXPECT_TRUE(inj.poll_kernel_nan(1, 0.0, 5));   // fires
  EXPECT_FALSE(inj.poll_kernel_nan(1, 0.0, 6));  // one-shot
  EXPECT_EQ(inj.stats().kernel_nans, 1);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].device, 1);
}

TEST(FaultInjector, DeviceFailureIsPermanent) {
  FaultInjector inj;
  FaultEvent e;
  e.kind = FaultKind::kDeviceFail;
  e.device = 0;
  e.at_time = 1.0;
  inj.schedule(e);
  EXPECT_FALSE(inj.poll_device_fail(0, 0.5, 0));
  EXPECT_FALSE(inj.device_dead(0));
  EXPECT_TRUE(inj.poll_device_fail(0, 1.5, 1));
  EXPECT_TRUE(inj.device_dead(0));
  // Every later poll on the dead device keeps reporting failure.
  EXPECT_TRUE(inj.poll_device_fail(0, 2.0, 2));
  EXPECT_EQ(inj.stats().device_failures, 1);
}

TEST(FaultInjector, ResetReplaysTheSameSchedule) {
  FaultInjector inj;
  inj.set_seed(42);
  sim::FaultRates rates;
  rates.kernel_nan = 0.25;
  inj.set_rates(rates);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(inj.poll_kernel_nan(0, 0.0, i));
  }
  inj.reset();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(inj.poll_kernel_nan(0, 0.0, i),
              first[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultInjectorOrder, WildcardIdenticalTriggersFireInScheduleOrder) {
  // Several device=-1 events with identical triggers are the spec idiom for
  // cascading faults ("kill:*@t=1;kill:*@t=1" takes down the next two
  // devices to reach t=1). poll_scheduled must fire them strictly in
  // schedule order, one per qualifying op.
  FaultInjector inj;
  FaultEvent kill;
  kill.kind = FaultKind::kDeviceFail;
  kill.device = -1;
  kill.at_time = 1.0;
  inj.schedule(kill);
  inj.schedule(kill);
  // Device 2 polls first: it must consume the FIRST scheduled event.
  EXPECT_TRUE(inj.poll_device_fail(2, 1.5, 10));
  EXPECT_TRUE(inj.device_dead(2));
  // The dead device keeps reporting failure WITHOUT consuming event #2.
  EXPECT_TRUE(inj.poll_device_fail(2, 1.6, 11));
  EXPECT_FALSE(inj.device_dead(0));
  // The next device to poll takes the second event of the cascade.
  EXPECT_TRUE(inj.poll_device_fail(0, 1.7, 12));
  EXPECT_TRUE(inj.device_dead(0));
  // Both events consumed: a third device survives.
  EXPECT_FALSE(inj.poll_device_fail(1, 2.0, 13));
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_EQ(inj.log()[0].device, 2);  // schedule order, not device order
  EXPECT_EQ(inj.log()[1].device, 0);
}

TEST(FaultInjectorOrder, OnePerPollEvenWhenSeveralAreDue) {
  FaultInjector inj;
  FaultEvent nan;
  nan.kind = FaultKind::kKernelNan;
  nan.device = -1;
  nan.at_op = 5;
  inj.schedule(nan);
  inj.schedule(nan);
  EXPECT_TRUE(inj.poll_kernel_nan(3, 0.0, 5));   // event #1
  EXPECT_TRUE(inj.poll_kernel_nan(3, 0.0, 6));   // event #2, next poll
  EXPECT_FALSE(inj.poll_kernel_nan(3, 0.0, 7));  // schedule exhausted
  EXPECT_EQ(inj.stats().kernel_nans, 2);
}

TEST(FaultInjectorOrder, NodeKillIsAtomicAndFiresInScheduleOrder) {
  // Two node kills on a 2-node x 2-GPU layout: the first polling device
  // consumes event #1 and takes its WHOLE node down in the same poll; the
  // surviving node's first poll consumes event #2. Order is fixed by the
  // schedule, not by which device ids poll.
  FaultInjector inj;
  inj.set_gpus_per_node(2);  // devices {0,1} = node 0, {2,3} = node 1
  FaultEvent kill;
  kill.kind = FaultKind::kNodeFail;
  kill.device = -1;  // whichever node's device reaches the trigger first
  kill.at_time = 1.0;
  inj.schedule(kill);
  kill.device = 0;  // then node 0 explicitly
  inj.schedule(kill);
  // Device 3 polls first: event #1 fires and node 1 dies atomically.
  EXPECT_TRUE(inj.poll_device_fail(3, 1.5, 10));
  EXPECT_TRUE(inj.device_dead(3));
  EXPECT_TRUE(inj.device_dead(2));  // sibling dead without ever polling
  EXPECT_FALSE(inj.device_dead(0));
  EXPECT_FALSE(inj.device_dead(1));
  // Dead siblings keep reporting failure WITHOUT consuming event #2.
  EXPECT_TRUE(inj.poll_device_fail(2, 1.6, 11));
  EXPECT_FALSE(inj.device_dead(0));
  // Node 0's first poll consumes event #2: both members die together.
  EXPECT_TRUE(inj.poll_device_fail(0, 1.7, 12));
  EXPECT_TRUE(inj.device_dead(0));
  EXPECT_TRUE(inj.device_dead(1));
  EXPECT_EQ(inj.stats().node_failures, 2);
  EXPECT_EQ(inj.stats().device_failures, 4);  // node kills count members
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_EQ(inj.log()[0].kind, FaultKind::kNodeFail);
  EXPECT_EQ(inj.log()[0].device, 3);  // the polling victim, schedule order
  EXPECT_EQ(inj.log()[1].device, 0);

  // Replay determinism: reset() rewinds the fired flags and the same poll
  // sequence reproduces the same trigger order and log bytes.
  inj.reset();
  EXPECT_TRUE(inj.poll_device_fail(3, 1.5, 10));
  EXPECT_TRUE(inj.poll_device_fail(2, 1.6, 11));
  EXPECT_TRUE(inj.poll_device_fail(0, 1.7, 12));
  ASSERT_EQ(inj.log().size(), 2u);
  EXPECT_EQ(inj.log()[0].device, 3);
  EXPECT_EQ(inj.log()[1].device, 0);
}

TEST(FaultInjector, RejectsBadProbabilitiesAndTriggers) {
  FaultInjector inj;
  sim::FaultRates rates;
  rates.transfer_corrupt = 1.5;
  EXPECT_THROW(inj.set_rates(rates), Error);
  FaultEvent e;  // no trigger at all
  e.kind = FaultKind::kKernelNan;
  EXPECT_THROW(inj.schedule(e), Error);
}

// --- spec parser ------------------------------------------------------

TEST(FaultSpec, ParsesEventsRatesAndKnobs) {
  FaultInjector inj;
  sim::parse_fault_spec("seed=42;kill:d1@t=5ms;nan:p=0.001;corrupt:p=0.01",
                        inj);
  EXPECT_TRUE(inj.armed());
  // The kill fires for device 1 once its simulated time passes 5 ms.
  EXPECT_FALSE(inj.poll_device_fail(1, 4e-3, 0));
  EXPECT_TRUE(inj.poll_device_fail(1, 6e-3, 1));
}

TEST(FaultSpec, ParsesOpTriggerAndWildcardDevice) {
  FaultInjector inj;
  sim::parse_fault_spec("stall:*@op=7;stall_us=100", inj);
  EXPECT_DOUBLE_EQ(inj.stall_seconds(), 100e-6);
  EXPECT_FALSE(inj.poll_transfer_stall(2, 0.0, 6));
  EXPECT_TRUE(inj.poll_transfer_stall(2, 0.0, 7));  // any device qualifies
}

TEST(FaultSpec, MalformedSpecsThrowBadInput) {
  const char* bad[] = {
      "bogus:p=0.1",       // unknown kind
      "kill:p=0.5",        // kill has no rate form
      "nan:d0",            // missing trigger
      "nan:d0@x=3",        // unknown trigger key
      "corrupt:p=oops",    // not a number
      "seed=",             // empty value
  };
  for (const char* spec : bad) {
    FaultInjector inj;
    try {
      sim::parse_fault_spec(spec, inj);
      FAIL() << "accepted malformed spec: " << spec;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadInput) << spec;
    }
  }
}

// --- error taxonomy (satellites 1 and 2) ------------------------------

TEST(ErrorCodes, CarryCodeAndDevice) {
  const Error plain("x");
  EXPECT_EQ(plain.code(), ErrorCode::kBadInput);
  EXPECT_EQ(plain.device(), -1);
  const Error dev("y", ErrorCode::kDeviceFault, 2);
  EXPECT_EQ(dev.code(), ErrorCode::kDeviceFault);
  EXPECT_EQ(dev.device(), 2);
  EXPECT_EQ(to_string(ErrorCode::kRetriesExhausted), "retries_exhausted");
}

TEST(ErrorCodes, CholqrReportsBreakdownPivotColumn) {
  // An exactly zero third column makes the Gram matrix singular with its
  // first non-positive pivot at column 2.
  Machine machine(1);
  sim::DistMultiVec v({8}, 3);
  for (int i = 0; i < 8; ++i) {
    v.col(0, 0)[i] = static_cast<double>(i + 1);
    v.col(0, 1)[i] = (i % 2 == 0) ? 1.0 : -1.0;
    v.col(0, 2)[i] = 0.0;
  }
  ortho::TsqrOptions topts;
  topts.cholqr_shift_on_breakdown = false;
  try {
    ortho::tsqr(machine, ortho::Method::kCholQr, v, 0, 3, topts);
    FAIL() << "singular block did not break down";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBreakdown);
    EXPECT_NE(std::string(e.what()).find("pivot column 2"), std::string::npos)
        << e.what();
  }
  // With the shifted retry the breakdown column is reported in the result.
  topts.cholqr_shift_on_breakdown = true;
  const ortho::TsqrResult res =
      ortho::tsqr(machine, ortho::Method::kCholQr, v, 0, 3, topts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_EQ(res.breakdown_col, 2);
}

TEST(ErrorCodes, CholqrFailsFastOnNonFiniteGram) {
  // A NaN anywhere in the block makes the Gram matrix non-finite; the
  // shifted retry can't fix that, so CholQR must throw kBreakdown
  // immediately (even with shifts enabled) rather than loop its shifts.
  Machine machine(1);
  sim::DistMultiVec v({8}, 2);
  for (int i = 0; i < 8; ++i) {
    v.col(0, 0)[i] = static_cast<double>(i + 1);
    v.col(0, 1)[i] = 1.0;
  }
  v.col(0, 1)[3] = std::numeric_limits<double>::quiet_NaN();
  try {
    ortho::tsqr(machine, ortho::Method::kCholQr, v, 0, 2,
                ortho::TsqrOptions{});
    FAIL() << "NaN block did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBreakdown);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << e.what();
  }
}

// --- zero-fault no-regression -----------------------------------------

TEST(ZeroFault, SeedOnlySpecIsByteIdenticalToPlainMachine) {
  const TestSystem s = make_system(3);
  const core::SolverOptions opts = base_opts();

  Machine plain(3);
  const core::SolveResult r_plain = core::ca_gmres(plain, s.p, opts);

  Machine seeded(3);
  sim::parse_fault_spec("seed=123", seeded.fault_injector());
  ASSERT_FALSE(seeded.faults_armed());  // a seed alone schedules nothing
  const core::SolveResult r_seeded = core::ca_gmres(seeded, s.p, opts);

  EXPECT_EQ(r_plain.stats.time_total, r_seeded.stats.time_total);
  EXPECT_EQ(r_plain.stats.iterations, r_seeded.stats.iterations);
  EXPECT_EQ(r_plain.stats.residual_history, r_seeded.stats.residual_history);
  EXPECT_EQ(r_plain.x, r_seeded.x);
  EXPECT_FALSE(r_seeded.stats.recovery.any());
  EXPECT_EQ(plain.clock().elapsed(), seeded.clock().elapsed());
}

// --- acceptance scenario (a): permanent device dropout ----------------

TEST(DeviceDropout, GmresSurvivesAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("kill:d1@op=400", machine.fault_injector());
  const core::SolveResult res = core::gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);  // one device retired
  EXPECT_EQ(res.stats.recovery.device_failures, 1);
  EXPECT_EQ(res.stats.recovery.repartitions, 1);
  EXPECT_GE(res.stats.recovery.rollbacks, 1);
  EXPECT_GT(res.stats.recovery.time_lost, 0.0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST(DeviceDropout, CaGmresSurvivesAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("kill:d2@op=600", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);
  EXPECT_EQ(res.stats.recovery.device_failures, 1);
  EXPECT_EQ(res.stats.recovery.repartitions, 1);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST(DeviceDropout, TimeTriggeredKillOnWildcardDevice) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("kill:*@t=2ms", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

// --- acceptance scenario (a'): correlated whole-node dropout ----------

TEST(NodeDropout, CaGmresRecoversViaPartnerCheckpoint) {
  const TestSystem s = make_system(4);
  Machine machine(4);
  machine.set_topology(2, 2);  // node 0 = {0,1}, node 1 = {2,3}
  sim::parse_fault_spec("nodekill:n1@op=600", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);  // the whole node retired at once
  EXPECT_EQ(res.stats.recovery.node_failures, 1);
  EXPECT_EQ(res.stats.recovery.device_failures, 2);
  EXPECT_EQ(res.stats.recovery.repartitions, 1);
  // x came back from node 0's partner mirror, not a host checkpoint.
  EXPECT_GE(res.stats.recovery.partner_restores, 1);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST(NodeDropout, GmresPartnerOffFallsBackToHostCheckpoint) {
  const TestSystem s = make_system(4);
  Machine machine(4);
  machine.set_topology(2, 2);
  sim::parse_fault_spec("nodekill:n1@op=400", machine.fault_injector());
  core::SolverOptions o = base_opts();
  o.partner_checkpoint = false;
  const core::SolveResult res = core::gmres(machine, s.p, o);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);
  EXPECT_EQ(res.stats.recovery.node_failures, 1);
  EXPECT_EQ(res.stats.recovery.partner_restores, 0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

// --- acceptance scenario (b): transfer corruption ---------------------

TEST(TransferCorruption, GmresRetriesAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("seed=9;corrupt:p=0.01", machine.fault_injector());
  const core::SolveResult res = core::gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.transfer_corruptions, 0);
  EXPECT_GT(res.stats.recovery.transfer_retries, 0);
  EXPECT_GT(res.stats.recovery.time_lost, 0.0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST(TransferCorruption, CaGmresRetriesAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("seed=10;corrupt:p=0.01", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.transfer_retries, 0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST(TransferCorruption, ChecksumRetryRepricesTheCompressedWire) {
  // With a transfer codec armed the checksum retry retransmits the CODED
  // message (DESIGN.md §14): under the same corrupt storm the coded run
  // must keep the "identical numerics, strictly more time" contract against
  // a fault-free coded baseline, and each retransmission is priced on wire
  // bytes, so the coded run loses less time per retry than the plain one.
  const TestSystem s = make_system(3);
  sim::CodecSpec fp32;
  fp32.kind = sim::Codec::kFp32;
  const auto arm_codec = [&](Machine& m) {
    m.set_codec(sim::TrafficClass::kHalo, fp32);
    m.set_codec(sim::TrafficClass::kReduce, fp32);
  };

  Machine m_base(3);
  arm_codec(m_base);
  const core::SolveResult r_base = core::ca_gmres(m_base, s.p, base_opts());
  ASSERT_TRUE(r_base.stats.converged);

  Machine m_coded(3);
  arm_codec(m_coded);
  sim::parse_fault_spec("seed=10;corrupt:p=0.01", m_coded.fault_injector());
  const core::SolveResult res = core::ca_gmres(m_coded, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.transfer_retries, 0);
  // The retried payload decodes to exactly what a clean coded transfer
  // delivers: corruption costs time, never numerics.
  EXPECT_EQ(res.x, r_base.x);
  EXPECT_GT(res.stats.time_total, r_base.stats.time_total);

  // CAGMRES_COMPRESS arms every Machine in the process, so the plain
  // reference only exists when the environment is clean.
  if (test::codec_armed()) return;
  Machine m_plain(3);
  sim::parse_fault_spec("seed=10;corrupt:p=0.01", m_plain.fault_injector());
  const core::SolveResult r_plain = core::ca_gmres(m_plain, s.p, base_opts());
  ASSERT_GT(r_plain.stats.recovery.transfer_retries, 0);
  // Wire-byte pricing: simulated seconds lost per retransmission shrink
  // with the 2x smaller fp32 messages.
  const double per_retry_coded =
      res.stats.recovery.time_lost /
      static_cast<double>(res.stats.recovery.transfer_retries);
  const double per_retry_plain =
      r_plain.stats.recovery.time_lost /
      static_cast<double>(r_plain.stats.recovery.transfer_retries);
  EXPECT_LT(per_retry_coded, per_retry_plain);
}

TEST(TransferStall, ChargesExtraLatency) {
  const TestSystem s = make_system(3);
  Machine clean(3);
  const core::SolveResult r0 = core::ca_gmres(clean, s.p, base_opts());
  Machine machine(3);
  sim::parse_fault_spec("seed=3;stall:p=0.05", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.transfer_stalls, 0);
  // Stalls only add latency: identical numerics, strictly more time.
  EXPECT_EQ(r0.x, res.x);
  EXPECT_GT(res.stats.time_total, r0.stats.time_total);
}

// --- acceptance scenario (c): transient NaN kernel faults -------------

TEST(KernelNan, GmresScrubsAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("seed=11;nan:p=0.002", machine.fault_injector());
  const core::SolveResult res = core::gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.kernel_faults, 0);
  EXPECT_GT(res.stats.recovery.blocks_replayed + res.stats.recovery.rollbacks,
            0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
  EXPECT_TRUE(std::isfinite(res.stats.final_residual));
}

TEST(KernelNan, CaGmresScrubsAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("seed=12;nan:p=0.002", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.kernel_faults, 0);
  EXPECT_GT(res.stats.recovery.blocks_replayed + res.stats.recovery.rollbacks,
            0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST(KernelNan, PoisonedGramBreakdownIsReplayedNotFatal) {
  // At this rate the NaN regularly lands in the Gram kernel itself, so
  // CholQR throws kBreakdown (no shift can fix a NaN Gram) before the
  // post-TSQR scrub runs; the solver must treat that as a tainted block
  // and replay, not die. Seeds chosen so every run converges.
  for (const char* spec : {"seed=1;nan:p=0.004", "seed=4;nan:p=0.004",
                           "seed=8;nan:p=0.004"}) {
    const TestSystem s = make_system(3);
    Machine machine(3);
    sim::parse_fault_spec(spec, machine.fault_injector());
    const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
    EXPECT_TRUE(res.stats.converged) << spec;
    EXPECT_GT(res.stats.recovery.blocks_replayed, 0) << spec;
    EXPECT_LT(relative_residual(s, res.x), 1e-5) << spec;
  }
}

TEST(KernelNan, ScheduledSingleFaultIsScrubbed) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("nan:d0@op=200", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(res.stats.recovery.kernel_faults, 1);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

// --- everything at once ------------------------------------------------

TEST(CombinedFaults, CaGmresSurvivesKillCorruptionAndNans) {
  const TestSystem s = make_system(4);
  const core::Problem p =
      core::make_problem(s.a, s.b, 4, graph::Ordering::kNatural, true, 1);
  Machine machine(4);
  sim::parse_fault_spec(
      "seed=7;kill:d3@op=500;nan:p=0.001;corrupt:p=0.005;stall:p=0.01",
      machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 3);
  EXPECT_GT(res.stats.recovery.faults_injected, 1);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

// --- seeded determinism (satellite 5) ---------------------------------

TEST(Determinism, SameFaultSeedGivesBitIdenticalSolves) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("seed=5;nan:p=0.002;corrupt:p=0.005;stall:p=0.01",
                        machine.fault_injector());
  const core::SolveResult r1 = core::ca_gmres(machine, s.p, base_opts());
  machine.reset();  // replays the identical fault schedule
  const core::SolveResult r2 = core::ca_gmres(machine, s.p, base_opts());

  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.stats.converged, r2.stats.converged);
  EXPECT_EQ(r1.stats.iterations, r2.stats.iterations);
  EXPECT_EQ(r1.stats.restarts, r2.stats.restarts);
  EXPECT_EQ(r1.stats.time_total, r2.stats.time_total);
  EXPECT_EQ(r1.stats.residual_history, r2.stats.residual_history);
  EXPECT_EQ(r1.stats.block_sizes, r2.stats.block_sizes);
  EXPECT_EQ(r1.stats.recovery.faults_injected,
            r2.stats.recovery.faults_injected);
  EXPECT_EQ(r1.stats.recovery.kernel_faults, r2.stats.recovery.kernel_faults);
  EXPECT_EQ(r1.stats.recovery.transfer_retries,
            r2.stats.recovery.transfer_retries);
  EXPECT_EQ(r1.stats.recovery.blocks_replayed,
            r2.stats.recovery.blocks_replayed);
  EXPECT_EQ(r1.stats.recovery.time_lost, r2.stats.recovery.time_lost);
}

TEST(Determinism, DeviceKillReplaysIdentically) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  sim::parse_fault_spec("kill:d1@op=400", machine.fault_injector());
  const core::SolveResult r1 = core::gmres(machine, s.p, base_opts());
  machine.reset();
  ASSERT_EQ(machine.n_devices(), 3);  // reset un-retires the device
  const core::SolveResult r2 = core::gmres(machine, s.p, base_opts());
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.stats.time_total, r2.stats.time_total);
  EXPECT_EQ(r1.stats.recovery.repartitions, r2.stats.recovery.repartitions);
}

// --- sync-mode re-key: the stock scenarios on event-mode timelines ----
//
// The time- and op-triggered schedules key off charged timestamps and
// per-device op counts, both of which shift when per-buffer events replace
// the coarse barriers (transfers start earlier, the exchange posts in a
// different per-device order). These run the stock scenarios under both
// sync modes explicitly — not via CAGMRES_SYNC_MODE — so the fault suite
// covers event mode on every CI run, which is what cleared the ROADMAP
// blocker on making kEvent the default.

class SyncModeFaults : public ::testing::TestWithParam<sim::SyncMode> {
 protected:
  void apply_mode(Machine& m) { m.set_sync_mode(GetParam()); }
};

TEST_P(SyncModeFaults, TimeTriggeredKillRetiresAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  apply_mode(machine);
  sim::parse_fault_spec("kill:*@t=2ms", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);  // the trigger fired on this timeline
  EXPECT_EQ(res.stats.recovery.device_failures, 1);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST_P(SyncModeFaults, OpTriggeredKillRetiresAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  apply_mode(machine);
  sim::parse_fault_spec("kill:d2@op=600", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);
  EXPECT_EQ(res.stats.recovery.repartitions, 1);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST_P(SyncModeFaults, StallAddsLatencyOnly) {
  // Stalls must stay latency-only in every mode: same bits, more time.
  // In event mode this additionally pins that the reduce fold order is
  // keyed on fault-free charged time (an injected stall must not reorder
  // the summation, or the bits would move).
  const TestSystem s = make_system(3);
  Machine clean(3);
  apply_mode(clean);
  const core::SolveResult r0 = core::ca_gmres(clean, s.p, base_opts());
  Machine machine(3);
  apply_mode(machine);
  sim::parse_fault_spec("seed=3;stall:p=0.05", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.transfer_stalls, 0);
  EXPECT_EQ(r0.x, res.x);
  EXPECT_GT(res.stats.time_total, r0.stats.time_total);
}

TEST_P(SyncModeFaults, NanScrubConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  apply_mode(machine);
  sim::parse_fault_spec("seed=12;nan:p=0.002", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.kernel_faults, 0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST_P(SyncModeFaults, CorruptRetriesAndConverges) {
  const TestSystem s = make_system(3);
  Machine machine(3);
  apply_mode(machine);
  sim::parse_fault_spec("seed=10;corrupt:p=0.01", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_GT(res.stats.recovery.transfer_retries, 0);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST_P(SyncModeFaults, KillDuringCheckpointRestartRepartition) {
  // Cascading kills with an identical trigger: the first fires on whichever
  // device reaches t=2ms, and the second lands on the very next qualifying
  // op from a survivor — i.e. inside the first kill's checkpoint-restart
  // while the repartitioning transfers are still in flight. Nested recovery
  // must compose: both retirements, both repartitions, still converged.
  const TestSystem s = make_system(4);
  Machine machine(4);
  apply_mode(machine);
  sim::parse_fault_spec("kill:*@t=2ms;kill:*@t=2ms", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_EQ(machine.n_devices(), 2);
  EXPECT_EQ(res.stats.recovery.device_failures, 2);
  // The second kill aborts the first repartition mid-flight; the redo
  // covers both retirements at once, so at least one completes.
  EXPECT_GE(res.stats.recovery.repartitions, 1);
  EXPECT_FALSE(res.stats.degraded.active);
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

TEST_P(SyncModeFaults, CorruptStormExhaustsRetriesIntoCleanError) {
  // A transfer-corruption storm (70% per attempt, every retry re-rolls)
  // reliably drains the bounded retry loop. With the degradation floor
  // disabled the solver must surface ONE clean typed Error — never a hang,
  // a crash, or a silent wrong answer.
  const TestSystem s = make_system(3);
  Machine machine(3);
  apply_mode(machine);
  sim::parse_fault_spec("seed=9;corrupt:p=0.7", machine.fault_injector());
  core::SolverOptions opts = base_opts();
  opts.degrade_to_cpu = false;
  try {
    core::gmres(machine, s.p, opts);
    FAIL() << "a 70% corruption storm must not complete normally";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRetriesExhausted) << e.what();
  }
}

TEST_P(SyncModeFaults, CorruptStormDegradesToCpuAndConverges) {
  // Same storm with the floor enabled: the solver hands off to the host
  // fallback and still produces a correct solution, with the handoff
  // recorded in SolveStats::degraded.
  const TestSystem s = make_system(3);
  Machine machine(3);
  apply_mode(machine);
  sim::parse_fault_spec("seed=9;corrupt:p=0.7", machine.fault_injector());
  const core::SolveResult res = core::ca_gmres(machine, s.p, base_opts());
  EXPECT_TRUE(res.stats.converged);
  EXPECT_TRUE(res.stats.degraded.active);
  EXPECT_FALSE(res.stats.degraded.reason.empty());
  EXPECT_LT(relative_residual(s, res.x), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    BarrierAndEvent, SyncModeFaults,
    ::testing::Values(sim::SyncMode::kBarrier, sim::SyncMode::kEvent),
    [](const ::testing::TestParamInfo<sim::SyncMode>& info) {
      return info.param == sim::SyncMode::kEvent ? "event" : "barrier";
    });

// --- adaptive-s coverage (satellite 3) --------------------------------

TEST(AdaptiveS, HalvesOnBreakdownAndGrowsAfterThreeCleanBlocks) {
  // A deliberately ill-conditioned monomial basis: s=12 monomial powers of
  // this operator reliably overrun CholQR, so the controller must retreat;
  // at the reduced size blocks come out clean and it grows back.
  const sparse::CsrMatrix a = sparse::make_laplace2d(30, 30, 0.1, 0.02);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const core::Problem p =
      core::make_problem(a, b, 2, graph::Ordering::kNatural, true, 1);
  Machine machine(2);
  core::SolverOptions opts;
  opts.m = 36;
  opts.s = 12;
  opts.basis = core::Basis::kMonomial;
  opts.adaptive_s = true;
  opts.adaptive_min_s = 1;
  opts.tol = 1e-8;
  opts.max_restarts = 20;
  const core::SolveResult res = core::ca_gmres(machine, p, opts);
  const auto& sizes = res.stats.block_sizes;
  const auto& broke = res.stats.block_breakdowns;
  ASSERT_EQ(sizes.size(), broke.size());
  ASSERT_GT(res.stats.cholqr_breakdowns, 0);

  // Halve-on-breakdown: every block that broke down is followed by one no
  // larger than max(min_s, half) — the cycle tail can only clamp further.
  bool saw_halving = false;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    if (!broke[i]) continue;
    const int half = std::max(opts.adaptive_min_s, sizes[i] / 2);
    EXPECT_LE(sizes[i + 1], half) << "block " << i;
    if (sizes[i] > opts.adaptive_min_s) saw_halving = true;
  }
  EXPECT_TRUE(saw_halving);

  // Grow-after-3-clean: somewhere three consecutive clean blocks are
  // followed by a strictly larger one.
  bool saw_growth = false;
  for (std::size_t i = 0; i + 3 < sizes.size(); ++i) {
    if (!broke[i] && !broke[i + 1] && !broke[i + 2] &&
        sizes[i + 3] > sizes[i + 2]) {
      saw_growth = true;
      break;
    }
  }
  EXPECT_TRUE(saw_growth);

  // The controller never leaves [min_s, s].
  for (const int bs : sizes) {
    EXPECT_GE(bs, opts.adaptive_min_s);
    EXPECT_LE(bs, opts.s);
  }
}

}  // namespace
}  // namespace cagmres
