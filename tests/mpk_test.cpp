// Unit + property tests for the matrix powers kernel (paper §IV):
// boundary sets, plan construction, execution vs. repeated SpMV, Newton
// shifts with complex pairs, and the communication statistics.
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/partition.hpp"
#include "mpk/boundary.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "sim/machine.hpp"

#include "codec_tol.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

namespace cagmres::mpk {
namespace {

using sim::DistMultiVec;
using sim::Machine;
using sparse::CsrMatrix;

std::vector<int> offsets_of(const CsrMatrix& a, int ng) {
  std::vector<int> off(static_cast<std::size_t>(ng) + 1);
  for (int d = 0; d <= ng; ++d) {
    off[static_cast<std::size_t>(d)] =
        static_cast<int>((static_cast<long long>(a.n_rows) * d) / ng);
  }
  return off;
}

/// Brute-force hop sets via BFS on the directed row->column pattern.
std::vector<std::vector<int>> brute_force_hops(const CsrMatrix& a, int row0,
                                               int row1, int s) {
  std::vector<int> dist(static_cast<std::size_t>(a.n_rows), -1);
  std::vector<int> frontier;
  for (int i = row0; i < row1; ++i) {
    dist[static_cast<std::size_t>(i)] = 0;
    frontier.push_back(i);
  }
  std::vector<std::vector<int>> hops(static_cast<std::size_t>(s));
  for (int t = 1; t <= s; ++t) {
    std::vector<int> next;
    for (const int r : frontier) {
      const auto lo = a.row_ptr[static_cast<std::size_t>(r)];
      const auto hi = a.row_ptr[static_cast<std::size_t>(r) + 1];
      for (auto p = lo; p < hi; ++p) {
        const int c = a.col_idx[static_cast<std::size_t>(p)];
        if (dist[static_cast<std::size_t>(c)] < 0) {
          dist[static_cast<std::size_t>(c)] = t;
          next.push_back(c);
        }
      }
    }
    std::sort(next.begin(), next.end());
    hops[static_cast<std::size_t>(t) - 1] = next;
    frontier = next;
  }
  return hops;
}

TEST(Boundary, MatchesBruteForceBfs) {
  const CsrMatrix a = sparse::make_circuit_like(0.04, true, 13);
  const int row0 = 30, row1 = 150, s = 4;
  const BoundarySets bs = compute_boundary_sets(a, row0, row1, s);
  const auto ref = brute_force_hops(a, row0, row1, s);
  ASSERT_EQ(bs.hops.size(), ref.size());
  for (int t = 0; t < s; ++t) {
    EXPECT_EQ(bs.hops[static_cast<std::size_t>(t)], ref[static_cast<std::size_t>(t)])
        << "hop " << t + 1;
  }
}

TEST(Boundary, BandedMatrixGrowsLinearly) {
  // On a 1D path, each hop adds at most 2 vertices (one per side).
  sparse::CooBuilder b(50, 50);
  for (int i = 0; i < 50; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i < 49) b.add(i, i + 1, -1.0);
  }
  const CsrMatrix a = b.build();
  const BoundarySets bs = compute_boundary_sets(a, 20, 30, 5);
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(bs.hops[static_cast<std::size_t>(t)].size(), 2u);
  }
  EXPECT_EQ(bs.total_external(), 10);
}

TEST(Boundary, StopsAtDependencyClosure) {
  // Whole matrix owned: no external hops at all.
  const CsrMatrix a = sparse::make_laplace2d(5, 5);
  const BoundarySets bs = compute_boundary_sets(a, 0, 25, 3);
  EXPECT_EQ(bs.total_external(), 0);
}

TEST(Plan, StatsAreConsistent) {
  const CsrMatrix a = sparse::make_laplace2d(30, 30);
  const auto off = offsets_of(a, 3);
  for (const int s : {1, 2, 4}) {
    const MpkPlan plan = build_mpk_plan(a, off, s);
    const MpkStats& st = plan.stats;
    // Local blocks tile the matrix.
    std::int64_t local = 0;
    for (int d = 0; d < 3; ++d) local += st.local_nnz[static_cast<std::size_t>(d)];
    EXPECT_EQ(local, a.nnz());
    // Gather == scatter volume summed over devices only when every sent
    // element has exactly one consumer; in general gather <= scatter.
    EXPECT_LE(st.gather_volume(), st.scatter_volume());
    if (s == 1) {
      // No boundary rows are ever multiplied for s=1.
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(st.boundary_nnz[static_cast<std::size_t>(d)], 0);
        EXPECT_EQ(st.extra_flops[static_cast<std::size_t>(d)], 0.0);
      }
    } else {
      EXPECT_GT(st.boundary_nnz[0], 0);
      EXPECT_GT(st.extra_flops[0], 0.0);
    }
  }
}

TEST(Plan, SurfaceGrowsWithS) {
  const CsrMatrix a = sparse::make_laplace2d(40, 40);
  const auto off = offsets_of(a, 2);
  double prev_ratio = -1.0;
  for (const int s : {2, 3, 5, 8}) {
    const MpkPlan plan = build_mpk_plan(a, off, s);
    const double ratio = plan.stats.surface_to_volume(0);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

TEST(Plan, SingleDeviceHasNoCommunication) {
  const CsrMatrix a = sparse::make_laplace2d(12, 12);
  const MpkPlan plan = build_mpk_plan(a, {0, a.n_rows}, 4);
  EXPECT_EQ(plan.stats.total_volume(), 0);
  EXPECT_EQ(plan.dev[0].ext_global.size(), 0u);
  EXPECT_EQ(plan.dev[0].boundary.n_rows, 0);
}

TEST(Plan, RejectsBadArguments) {
  const CsrMatrix a = sparse::make_laplace2d(4, 4);
  EXPECT_THROW(build_mpk_plan(a, {0, 8}, 2), Error);      // offsets wrong end
  EXPECT_THROW(build_mpk_plan(a, {0, 16}, 0), Error);     // s < 1
}

class MpkExecTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MpkExecTest, MonomialPowersMatchRepeatedSpmv) {
  const auto [ng, s] = GetParam();
  const CsrMatrix a = sparse::make_circuit_like(0.05, true, 29);
  const int n = a.n_rows;
  const auto off = offsets_of(a, ng);
  const MpkPlan plan = build_mpk_plan(a, off, s);
  MpkExecutor exec(plan);
  Machine m(ng);

  DistMultiVec v(plan.rows_per_device(), s + 1);
  Rng rng(7);
  std::vector<double> x0(static_cast<std::size_t>(n));
  for (auto& x : x0) x = rng.normal();
  {
    std::size_t offv = 0;
    for (int d = 0; d < ng; ++d) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        v.col(d, 0)[i] = x0[offv + static_cast<std::size_t>(i)];
      }
      offv += static_cast<std::size_t>(v.local_rows(d));
    }
  }
  exec.apply(m, v, 0, s);
  m.sync();  // the host reads the basis columns below

  // Reference: k plain SpMVs on the host.
  std::vector<double> ref = x0, tmp(static_cast<std::size_t>(n));
  for (int k = 1; k <= s; ++k) {
    sparse::spmv(a, ref.data(), tmp.data());
    ref.swap(tmp);
    std::size_t offv = 0;
    for (int d = 0; d < ng; ++d) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        EXPECT_NEAR(v.col(d, k)[i], ref[offv + static_cast<std::size_t>(i)],
                    test::codec_near(1e-9 * std::pow(10.0, k),
                                     ref[offv + static_cast<std::size_t>(i)],
                                     std::pow(10.0, k)))
            << "k=" << k << " d=" << d << " i=" << i;
      }
      offv += static_cast<std::size_t>(v.local_rows(d));
    }
  }
  // Exactly one exchange: one gather + one scatter message per device that
  // has neighbors.
  if (ng > 1) {
    EXPECT_LE(m.counters().d2h_msgs, ng);
    EXPECT_LE(m.counters().h2d_msgs, ng);
    EXPECT_GE(m.counters().d2h_msgs, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MpkExecTest,
                         ::testing::Values(std::make_tuple(1, 4),
                                           std::make_tuple(2, 3),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(3, 1)),
                         [](const auto& info) {
                           return "ng" + std::to_string(std::get<0>(info.param)) +
                                  "_s" + std::to_string(std::get<1>(info.param));
                         });

TEST(MpkExec, NewtonRealShiftsMatchExplicitRecursion) {
  const CsrMatrix a = sparse::make_laplace2d(15, 14, 0.2);
  const int n = a.n_rows;
  const int ng = 2, s = 3;
  const auto off = offsets_of(a, ng);
  const MpkPlan plan = build_mpk_plan(a, off, s);
  MpkExecutor exec(plan);
  Machine m(ng);

  const double re[3] = {1.5, -0.7, 0.3};
  const double im[3] = {0.0, 0.0, 0.0};
  DistMultiVec v(plan.rows_per_device(), s + 1);
  Rng rng(8);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& e : x) e = rng.normal();
  std::size_t offv = 0;
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = x[offv + static_cast<std::size_t>(i)];
    offv += static_cast<std::size_t>(v.local_rows(d));
  }
  exec.apply(m, v, 0, s, {re, im});
  m.sync();  // the host reads the basis columns below

  std::vector<double> cur = x, tmp(static_cast<std::size_t>(n));
  for (int k = 0; k < s; ++k) {
    sparse::spmv(a, cur.data(), tmp.data());
    for (int i = 0; i < n; ++i) tmp[static_cast<std::size_t>(i)] -= re[k] * cur[static_cast<std::size_t>(i)];
    cur = tmp;
    offv = 0;
    for (int d = 0; d < ng; ++d) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        EXPECT_NEAR(v.col(d, k + 1)[i], cur[offv + static_cast<std::size_t>(i)],
                    test::codec_near(1e-10,
                                     cur[offv + static_cast<std::size_t>(i)],
                                     std::pow(10.0, k + 1)));
      }
      offv += static_cast<std::size_t>(v.local_rows(d));
    }
  }
}

TEST(MpkExec, ComplexPairMatchesExplicitRealArithmetic) {
  const CsrMatrix a = sparse::make_laplace2d(12, 12, 0.4);
  const int n = a.n_rows;
  const int ng = 3, s = 4;
  const auto off = offsets_of(a, ng);
  const MpkPlan plan = build_mpk_plan(a, off, s);
  MpkExecutor exec(plan);
  Machine m(ng);

  // Real, then a conjugate pair (alpha +- beta i), then real.
  const double re[4] = {0.5, 1.0, 1.0, -0.2};
  const double im[4] = {0.0, 0.8, -0.8, 0.0};
  DistMultiVec v(plan.rows_per_device(), s + 1);
  Rng rng(9);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& e : x) e = rng.normal();
  std::size_t offv = 0;
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = x[offv + static_cast<std::size_t>(i)];
    offv += static_cast<std::size_t>(v.local_rows(d));
  }
  exec.apply(m, v, 0, s, {re, im});
  m.sync();  // the host reads the basis columns below

  // Reference recursion: v1 = (A-0.5)v0; v2 = (A-1)v1; v3 = (A-1)v2 +
  // 0.64*v1; v4 = (A+0.2)v3.
  std::vector<std::vector<double>> ref(static_cast<std::size_t>(s) + 1,
                                       std::vector<double>(static_cast<std::size_t>(n)));
  ref[0] = x;
  for (int k = 0; k < s; ++k) {
    sparse::spmv(a, ref[static_cast<std::size_t>(k)].data(),
                 ref[static_cast<std::size_t>(k) + 1].data());
    for (int i = 0; i < n; ++i) {
      ref[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(i)] -=
          re[k] * ref[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
      if (im[k] < 0.0) {
        ref[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(i)] +=
            im[k - 1] * im[k - 1] *
            ref[static_cast<std::size_t>(k) - 1][static_cast<std::size_t>(i)];
      }
    }
  }
  offv = 0;
  for (int d = 0; d < ng; ++d) {
    for (int k = 1; k <= s; ++k) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        EXPECT_NEAR(v.col(d, k)[i],
                    ref[static_cast<std::size_t>(k)][offv + static_cast<std::size_t>(i)],
                    test::codec_near(
                        1e-9,
                        ref[static_cast<std::size_t>(k)][offv + static_cast<std::size_t>(i)],
                        std::pow(10.0, k)));
      }
    }
    offv += static_cast<std::size_t>(v.local_rows(d));
  }
}

TEST(MpkExec, PairStraddlingCallBoundaryThrows) {
  const CsrMatrix a = sparse::make_laplace2d(8, 8);
  const MpkPlan plan = build_mpk_plan(a, {0, a.n_rows}, 2);
  MpkExecutor exec(plan);
  Machine m(1);
  DistMultiVec v(plan.rows_per_device(), 3);
  v.col(0, 0)[0] = 1.0;
  const double re[2] = {1.0, 1.0};
  const double im[2] = {0.0, -0.8};  // second member with no first member
  EXPECT_THROW(exec.apply(m, v, 0, 2, {re, im}), Error);
}

TEST(MpkExec, DistributedSpmvMatchesHost) {
  const CsrMatrix a = sparse::make_cant_like(0.15);
  const int n = a.n_rows;
  const int ng = 3;
  const auto off = offsets_of(a, ng);
  const MpkPlan plan = build_mpk_plan(a, off, 1);
  MpkExecutor exec(plan);
  Machine m(ng);

  DistMultiVec v(plan.rows_per_device(), 2);
  Rng rng(10);
  std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  for (auto& e : x) e = rng.normal();
  std::size_t offv = 0;
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = x[offv + static_cast<std::size_t>(i)];
    offv += static_cast<std::size_t>(v.local_rows(d));
  }
  exec.spmv(m, v, 0, 1);
  m.sync();  // the host reads the product column below
  sparse::spmv(a, x.data(), y.data());
  offv = 0;
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) {
      EXPECT_NEAR(v.col(d, 1)[i], y[offv + static_cast<std::size_t>(i)],
                  test::codec_near(1e-10, y[offv + static_cast<std::size_t>(i)]));
    }
    offv += static_cast<std::size_t>(v.local_rows(d));
  }
}

TEST(MpkExec, SpmvRequiresS1Plan) {
  const CsrMatrix a = sparse::make_laplace2d(6, 6);
  const MpkPlan plan = build_mpk_plan(a, {0, 18, 36}, 2);
  MpkExecutor exec(plan);
  Machine m(2);
  DistMultiVec v(plan.rows_per_device(), 2);
  EXPECT_THROW(exec.spmv(m, v, 0, 1), Error);
}

TEST(Plan, GatherVolumeEqualsBruteForceUnion) {
  // gather_volume must equal the number of distinct owned elements any
  // other device needs — computed here by brute force from the hop sets.
  const CsrMatrix a = sparse::make_circuit_like(0.04, true, 31);
  const auto off = offsets_of(a, 3);
  const int s = 3;
  const MpkPlan plan = build_mpk_plan(a, off, s);

  std::vector<char> needed(static_cast<std::size_t>(a.n_rows), 0);
  for (int d = 0; d < 3; ++d) {
    const BoundarySets bs = compute_boundary_sets(
        a, off[static_cast<std::size_t>(d)], off[static_cast<std::size_t>(d) + 1], s);
    for (const auto& hop : bs.hops) {
      for (const int g : hop) needed[static_cast<std::size_t>(g)] = 1;
    }
  }
  std::int64_t union_count = 0;
  for (const char c : needed) union_count += c;
  EXPECT_EQ(plan.stats.gather_volume(), union_count);
}

TEST(Plan, DeterministicForFixedInputs) {
  const CsrMatrix a = sparse::make_cant_like(0.1);
  const auto off = offsets_of(a, 2);
  const MpkPlan p1 = build_mpk_plan(a, off, 4);
  const MpkPlan p2 = build_mpk_plan(a, off, 4);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(p1.dev[static_cast<std::size_t>(d)].ext_global,
              p2.dev[static_cast<std::size_t>(d)].ext_global);
    EXPECT_EQ(p1.dev[static_cast<std::size_t>(d)].send_local_rows,
              p2.dev[static_cast<std::size_t>(d)].send_local_rows);
    EXPECT_EQ(p1.dev[static_cast<std::size_t>(d)].boundary_rows_at_step,
              p2.dev[static_cast<std::size_t>(d)].boundary_rows_at_step);
  }
}

TEST(MpkExec, LatencySavingsVsRepeatedSpmv) {
  // The point of MPK (Fig. 8): one exchange instead of s exchanges. With a
  // banded matrix the extra flops are small, so simulated MPK time beats
  // s x distributed SpMV.
  const CsrMatrix a = sparse::make_cant_like(0.3);
  const int ng = 3, s = 8;
  const auto off = offsets_of(a, ng);
  const MpkPlan plan_s = build_mpk_plan(a, off, s);
  const MpkPlan plan_1 = build_mpk_plan(a, off, 1);
  MpkExecutor mpk(plan_s);
  MpkExecutor spmv(plan_1);

  DistMultiVec v(plan_s.rows_per_device(), s + 1);
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = 1.0;
  }
  Machine m_mpk(ng), m_spmv(ng);
  mpk.apply(m_mpk, v, 0, s);
  for (int k = 0; k < s; ++k) spmv.spmv(m_spmv, v, k, k + 1);
  EXPECT_LT(m_mpk.clock().elapsed(), m_spmv.clock().elapsed());
  // And it used far fewer messages.
  EXPECT_LT(m_mpk.counters().total_msgs(), m_spmv.counters().total_msgs());
}

TEST(MpkCodec, HaloWireBytesMatchTheCodecSize) {
  // With halo=fp32 armed, every gather/scatter message must be priced at
  // exactly CodecSpec::wire_bytes of its payload while the logical counters
  // keep the uncompressed size — the achieved ratio is wire-accurate, not
  // an estimate.
  const CsrMatrix a = sparse::make_laplace2d(12, 10, 0.2);
  const int s = 3;
  const MpkPlan plan = build_mpk_plan(a, offsets_of(a, 2), s);
  MpkExecutor exec(plan);
  Machine m(2);
  sim::CodecSpec cd;
  cd.kind = sim::Codec::kFp32;
  m.set_codec(sim::TrafficClass::kHalo, cd);

  DistMultiVec v(plan.rows_per_device(), s + 1);
  Rng rng(17);
  for (int d = 0; d < 2; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = rng.normal();
  }
  exec.apply(m, v, 0, s);
  m.sync();

  // The MPK ships the deep halo once per block: one pack (d2h) per sending
  // device and one expand (h2d) per receiving device.
  double exp_d2h = 0.0, exp_d2h_logical = 0.0;
  double exp_h2d = 0.0, exp_h2d_logical = 0.0;
  for (int d = 0; d < 2; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    const double send = static_cast<double>(dp.send_local_rows.size());
    if (send > 0.0) {
      exp_d2h += cd.wire_bytes(send);
      exp_d2h_logical += 8.0 * send;
    }
    const double next = static_cast<double>(dp.ext_global.size());
    if (next > 0.0) {
      exp_h2d += cd.wire_bytes(next);
      exp_h2d_logical += 8.0 * next;
    }
  }
  ASSERT_GT(exp_d2h, 0.0);
  const sim::Counters& c = m.counters();
  EXPECT_DOUBLE_EQ(c.d2h_bytes, exp_d2h);
  EXPECT_DOUBLE_EQ(c.h2d_bytes, exp_h2d);
  EXPECT_DOUBLE_EQ(c.d2h_logical_bytes, exp_d2h_logical);
  EXPECT_DOUBLE_EQ(c.h2d_logical_bytes, exp_h2d_logical);
  // fp32 halves the wire exactly.
  EXPECT_DOUBLE_EQ(c.d2h_logical_bytes, 2.0 * c.d2h_bytes);
  EXPECT_DOUBLE_EQ(c.h2d_logical_bytes, 2.0 * c.h2d_bytes);
  // One codec pass per communicating endpoint.
  EXPECT_EQ(c.kernel_count[static_cast<std::size_t>(sim::Kernel::kCodec)], 4);
}

}  // namespace
}  // namespace cagmres::mpk
