// Unit + property tests for the five TSQR procedures and BOrth
// (paper §V, Figs. 9-10).
#include <cmath>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "blas/blas3.hpp"
#include "common/rng.hpp"
#include "ortho/borth.hpp"
#include "ortho/metrics.hpp"
#include "ortho/reduce.hpp"
#include "ortho/tsqr.hpp"
#include "sim/machine.hpp"

#include "codec_tol.hpp"

namespace cagmres::ortho {
namespace {

using sim::DistMultiVec;
using sim::Machine;

std::vector<int> split_rows(int n, int ng) {
  std::vector<int> rows(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    rows[static_cast<std::size_t>(d)] =
        static_cast<int>((static_cast<long long>(n) * (d + 1)) / ng -
                         (static_cast<long long>(n) * d) / ng);
  }
  return rows;
}

void fill_random(DistMultiVec& v, Rng& rng) {
  for (int d = 0; d < v.n_parts(); ++d) {
    for (int j = 0; j < v.cols(); ++j) {
      double* col = v.col(d, j);
      for (int i = 0; i < v.local_rows(d); ++i) col[i] = rng.normal();
    }
  }
}

/// Makes columns [c0, c1) a graded, nearly dependent set (like an MPK
/// monomial basis): col_{j+1} = damp * col_j + eps * noise.
void make_graded(DistMultiVec& v, int c0, int c1, double eps, Rng& rng) {
  for (int j = c0 + 1; j < c1; ++j) {
    for (int d = 0; d < v.n_parts(); ++d) {
      double* prev = v.col(d, j - 1);
      double* col = v.col(d, j);
      for (int i = 0; i < v.local_rows(d); ++i) {
        col[i] = 3.0 * prev[i] + eps * rng.normal();
      }
    }
  }
}

struct Param {
  Method method;
  int ng;
};

class TsqrParamTest : public ::testing::TestWithParam<Param> {};

TEST_P(TsqrParamTest, FactorizesRandomPanel) {
  const auto [method, ng] = GetParam();
  Machine m(ng);
  Rng rng(100 + ng);
  const int n = 400, k = 7;
  DistMultiVec v(split_rows(n, ng), k);
  fill_random(v, rng);
  DistMultiVec v0 = v;

  const TsqrResult res = tsqr(m, method, v, 0, k);
  m.sync();  // the host reads the factored panel below
  EXPECT_FALSE(res.breakdown);
  const OrthoErrors e = measure_errors(v, v0, 0, k, res.r);
  EXPECT_LT(e.orthogonality, test::codec_tol(1e-10)) << to_string(method);
  EXPECT_LT(e.factorization, test::codec_tol(1e-12)) << to_string(method);
  // R upper triangular.
  for (int j = 0; j < k; ++j) {
    for (int i = j + 1; i < k; ++i) EXPECT_EQ(res.r(i, j), 0.0);
  }
  // Simulated time advanced and at least one message flowed per direction
  // when ng > 1 (single device still reduces through the CPU here).
  EXPECT_GT(m.clock().elapsed(), 0.0);
  EXPECT_GE(m.counters().d2h_msgs, 1);
}

TEST_P(TsqrParamTest, SubrangeLeavesOtherColumnsUntouched) {
  const auto [method, ng] = GetParam();
  Machine m(ng);
  Rng rng(200 + ng);
  const int n = 300, cols = 9;
  DistMultiVec v(split_rows(n, ng), cols);
  fill_random(v, rng);
  DistMultiVec v0 = v;

  tsqr(m, method, v, 3, 8);
  m.sync();  // the host reads the panel below
  for (int d = 0; d < ng; ++d) {
    for (const int j : {0, 1, 2, 8}) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        EXPECT_EQ(v.col(d, j)[i], v0.col(d, j)[i]);
      }
    }
  }
  EXPECT_LT(orthogonality_error(v, 3, 8), test::codec_tol(1e-10));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAndDevices, TsqrParamTest,
    ::testing::Values(Param{Method::kMgs, 1}, Param{Method::kMgs, 3},
                      Param{Method::kCgs, 1}, Param{Method::kCgs, 3},
                      Param{Method::kCholQr, 1}, Param{Method::kCholQr, 3},
                      Param{Method::kSvqr, 1}, Param{Method::kSvqr, 3},
                      Param{Method::kCaqr, 1}, Param{Method::kCaqr, 2},
                      Param{Method::kCaqr, 3}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return to_string(info.param.method) + "_ng" +
             std::to_string(info.param.ng);
    });

TEST(TsqrCommunication, MessageCountsMatchFig10) {
  // Fig. 10's GPU-CPU communication column: MGS (s+1)(s+2) messages,
  // CGS 2(s+1), CholQR/SVQR/CAQR 2 — counted per device.
  const int n = 600, k = 6;  // k = s+1
  for (const int ng : {1, 2, 3}) {
    Rng rng(42);
    auto count = [&](Method method) {
      Machine m(ng);
      DistMultiVec v(split_rows(n, ng), k);
      fill_random(v, rng);
      tsqr(m, method, v, 0, k);
      m.sync();  // v dies at scope end; kernels may still reference it
      return m.counters().total_msgs() / ng;
    };
    EXPECT_EQ(count(Method::kMgs), (k) * (k + 1));      // (s+1)(s+2)
    EXPECT_EQ(count(Method::kCgs), 2 * k);              // 2(s+1)
    EXPECT_EQ(count(Method::kCholQr), 2);
    EXPECT_EQ(count(Method::kSvqr), 2);
    EXPECT_EQ(count(Method::kCaqr), 2);
  }
}

TEST(TsqrStability, OrthogonalityDegradesInTheFig10Order) {
  // On an ill-conditioned panel: CAQR ~ eps, MGS ~ eps*kappa,
  // CholQR/SVQR ~ eps*kappa^2. (CGS sits between MGS and CholQR.)
  Machine m(2);
  Rng rng(77);
  const int n = 500, k = 8;
  DistMultiVec v(split_rows(n, 2), k);
  fill_random(v, rng);
  make_graded(v, 0, k, 1e-5, rng);
  const double kappa = condition_number(v, 0, k);
  EXPECT_GT(kappa, 1e4);  // genuinely ill-conditioned

  auto ortho_err = [&](Method method) {
    DistMultiVec work = v;
    Machine mm(2);
    tsqr(mm, method, work, 0, k);
    mm.sync();  // the host reads the panel below
    return orthogonality_error(work, 0, k);
  };
  const double e_caqr = ortho_err(Method::kCaqr);
  const double e_mgs = ortho_err(Method::kMgs);
  const double e_chol = ortho_err(Method::kCholQr);
  EXPECT_LT(e_caqr, 1e-12);
  EXPECT_LT(e_caqr, e_mgs);
  EXPECT_LT(e_mgs, e_chol + 1e-16);
}

TEST(CholQr, BreakdownOnRankDeficientPanelIsReported) {
  Machine m(1);
  Rng rng(88);
  const int n = 200, k = 5;
  DistMultiVec v(split_rows(n, 1), k);
  fill_random(v, rng);
  // Make column 3 an exact copy of column 1: Gram matrix is singular.
  blas::copy(n, v.col(0, 1), v.col(0, 3));

  TsqrOptions opts;
  const TsqrResult res = tsqr(m, Method::kCholQr, v, 0, k, opts);
  m.sync();  // v dies before m at scope end
  EXPECT_TRUE(res.breakdown);  // shifted retry succeeded but flagged

  // With the fallback disabled it must throw instead.
  DistMultiVec v2(split_rows(n, 1), k);
  fill_random(v2, rng);
  blas::copy(n, v2.col(0, 1), v2.col(0, 3));
  opts.cholqr_shift_on_breakdown = false;
  EXPECT_THROW(tsqr(m, Method::kCholQr, v2, 0, k, opts), Error);
}

TEST(Svqr, HandlesRankDeficientPanelWithoutBreakdown) {
  Machine m(2);
  Rng rng(89);
  const int n = 300, k = 5;
  DistMultiVec v(split_rows(n, 2), k);
  fill_random(v, rng);
  for (int d = 0; d < 2; ++d) blas::copy(v.local_rows(d), v.col(d, 0), v.col(d, 2));

  const TsqrResult res = tsqr(m, Method::kSvqr, v, 0, k);
  m.sync();  // the host reads the panel below
  EXPECT_FALSE(res.breakdown);
  // Q spans the panel; R reproduces V on the numerical rank.
  DistMultiVec v0 = v;  // cannot compare factorization on singular input
  // but Q must still be close to orthonormal on its numerical range:
  EXPECT_LT(orthogonality_error(v, 0, 2),
            test::codec_tol(1e-8));  // leading full-rank part
}

TEST(Svqr, DiagonalScalingToggleStillFactors) {
  Machine m(1);
  Rng rng(90);
  const int n = 250, k = 6;
  DistMultiVec v(split_rows(n, 1), k);
  fill_random(v, rng);
  // Badly scaled columns.
  for (int j = 0; j < k; ++j) {
    blas::scal(n, std::pow(10.0, j - 3), v.col(0, j));
  }
  DistMultiVec v0 = v;
  TsqrOptions opts;
  opts.svqr_scale_diagonal = false;
  const TsqrResult r1 = tsqr(m, Method::kSvqr, v, 0, k, opts);
  m.sync();  // the host reads the panel below
  const OrthoErrors e1 = measure_errors(v, v0, 0, k, r1.r);
  EXPECT_LT(e1.orthogonality, test::codec_tol(1e-9));

  DistMultiVec w = v0;
  opts.svqr_scale_diagonal = true;
  const TsqrResult r2 = tsqr(m, Method::kSvqr, w, 0, k, opts);
  m.sync();  // the host reads the panel below
  const OrthoErrors e2 = measure_errors(w, v0, 0, k, r2.r);
  EXPECT_LT(e2.orthogonality, test::codec_tol(1e-9));
  // The paper's observation: scaling does not hurt, usually helps the
  // element-wise error.
  EXPECT_LE(e2.elementwise, e1.elementwise * 10.0);
}

TEST(Borth, CgsProjectsBlockAgainstPreviousBasis) {
  Machine m(3);
  Rng rng(91);
  const int n = 450, prev = 5, blk = 4;
  DistMultiVec v(split_rows(n, 3), prev + blk);
  fill_random(v, rng);
  // Orthonormalize the first `prev` columns first.
  tsqr(m, Method::kCaqr, v, 0, prev);
  DistMultiVec before = v;

  const blas::DMat c = borth(m, BorthMethod::kCgs, v, prev, prev + blk);
  m.sync();  // the host reads the projected block below
  EXPECT_EQ(c.rows(), prev);
  EXPECT_EQ(c.cols(), blk);
  // The block is now orthogonal to the previous basis.
  for (int l = 0; l < prev; ++l) {
    for (int j = prev; j < prev + blk; ++j) {
      double acc = 0.0;
      for (int d = 0; d < 3; ++d) {
        acc += blas::dot(v.local_rows(d), v.col(d, l), v.col(d, j));
      }
      EXPECT_NEAR(acc, 0.0, test::codec_tol(1e-10));
    }
  }
  // And Q_prev * C + V_new == V_old (the projection is exact bookkeeping).
  for (int d = 0; d < 3; ++d) {
    for (int j = 0; j < blk; ++j) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        double recon = v.col(d, prev + j)[i];
        for (int l = 0; l < prev; ++l) recon += v.col(d, l)[i] * c(l, j);
        EXPECT_NEAR(recon, before.col(d, prev + j)[i], 1e-10);
      }
    }
  }
}

TEST(Borth, MgsMatchesCgsNumerically) {
  const int n = 360, prev = 6, blk = 3;
  Rng rng(92);
  Machine m1(2), m2(2);
  DistMultiVec v(split_rows(n, 2), prev + blk);
  fill_random(v, rng);
  tsqr(m1, Method::kCaqr, v, 0, prev);
  DistMultiVec v_cgs = v, v_mgs = v;

  const blas::DMat c1 = borth(m1, BorthMethod::kCgs, v_cgs, prev, prev + blk);
  const blas::DMat c2 = borth(m2, BorthMethod::kMgs, v_mgs, prev, prev + blk);
  m1.sync();  // the host compares the updated blocks below
  m2.sync();
  for (int j = 0; j < blk; ++j) {
    for (int l = 0; l < prev; ++l) {
      EXPECT_NEAR(c1(l, j), c2(l, j), test::codec_tol(1e-9, 1e-4));
    }
    for (int d = 0; d < 2; ++d) {
      for (int i = 0; i < v.local_rows(d); ++i) {
        EXPECT_NEAR(v_cgs.col(d, prev + j)[i], v_mgs.col(d, prev + j)[i],
                    test::codec_tol(1e-9, 1e-4));
      }
    }
  }
  // Communication: MGS pays one reduction per previous column, CGS one.
  EXPECT_GT(m2.counters().total_msgs(), m1.counters().total_msgs());
}

TEST(Borth, EmptyPreviousBasisIsNoop) {
  Machine m(1);
  Rng rng(93);
  DistMultiVec v(split_rows(100, 1), 4);
  fill_random(v, rng);
  DistMultiVec v0 = v;
  const blas::DMat c = borth(m, BorthMethod::kCgs, v, 0, 4);
  EXPECT_EQ(c.rows(), 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v.col(0, 2)[i], v0.col(0, 2)[i]);
}

/// Pins the BOrth reduction schedule: the per-device event chain and the
/// straggler-last fold order may reorder charged time, never arithmetic.
/// Coefficients and the projected block must be bitwise identical across
/// {barrier, event} x {0, 2 host workers} for both flavors, and on 2+
/// devices the event-mode charged time must not exceed barrier mode — a
/// per-buffer wait can only remove charged blocking, never add it.
TEST(Borth, BitwiseIdenticalAcrossSyncModesAndWorkers) {
  const int n = 480, prev = 6, blk = 4, ng = 3;
  for (const BorthMethod method : {BorthMethod::kCgs, BorthMethod::kMgs}) {
    std::vector<double> ref;        // flattened C + projected block
    double barrier_seconds = -1.0;  // workers=0 charged borth time per mode
    for (const sim::SyncMode mode :
         {sim::SyncMode::kBarrier, sim::SyncMode::kEvent}) {
      for (const int workers : {0, 2}) {
        Machine m(ng);
        m.set_sync_mode(mode);
        m.set_host_workers(workers);
        Rng rng(97);
        DistMultiVec v(split_rows(n, ng), prev + blk);
        fill_random(v, rng);
        tsqr(m, Method::kCaqr, v, 0, prev);
        m.sync();
        const double t0 = m.clock().elapsed();
        const blas::DMat c = borth(m, method, v, prev, prev + blk);
        m.sync();
        const double borth_seconds = m.clock().elapsed() - t0;
        if (workers == 0) {
          if (mode == sim::SyncMode::kBarrier) {
            barrier_seconds = borth_seconds;
          } else {
            EXPECT_LE(borth_seconds, barrier_seconds) << to_string(method);
          }
        }
        std::vector<double> sig;
        for (int j = 0; j < blk; ++j) {
          for (int l = 0; l < prev; ++l) sig.push_back(c(l, j));
        }
        for (int d = 0; d < ng; ++d) {
          for (int j = prev; j < prev + blk; ++j) {
            const double* col = v.col(d, j);
            for (int i = 0; i < v.local_rows(d); ++i) sig.push_back(col[i]);
          }
        }
        if (ref.empty()) {
          ref = sig;
        } else {
          EXPECT_EQ(ref, sig) << to_string(method) << " mode "
                              << (mode == sim::SyncMode::kEvent ? "event"
                                                                : "barrier")
                              << " workers " << workers;
        }
      }
    }
  }
}

TEST(Metrics, ConditionNumberOfOrthonormalIsOne) {
  Machine m(2);
  Rng rng(94);
  DistMultiVec v(split_rows(320, 2), 5);
  fill_random(v, rng);
  tsqr(m, Method::kCaqr, v, 0, 5);
  EXPECT_NEAR(condition_number(v, 0, 5), 1.0, 1e-6);
}

TEST(Metrics, ConditionNumberOfDependentColumnsIsInfNotNan) {
  // Roundoff pushes the Gram matrix of exactly dependent columns to a tiny
  // negative eigenvalue; before the clamp, sqrt turned that into NaN and
  // every kappa comparison silently answered false.
  Rng rng(95);
  DistMultiVec v(split_rows(200, 2), 3);
  fill_random(v, rng);
  for (int d = 0; d < 2; ++d) {  // column 2 := column 0 (rank 2 panel)
    for (int i = 0; i < v.local_rows(d); ++i) {
      v.col(d, 2)[i] = v.col(d, 0)[i];
    }
  }
  const double kappa = condition_number(v, 0, 3);
  EXPECT_FALSE(std::isnan(kappa));
  EXPECT_GT(kappa, 1e7);  // inf or huge, but usable in comparisons
}

TEST(Metrics, ConditionNumberOfPoisonedPanelIsInfNotNan) {
  Rng rng(96);
  DistMultiVec v(split_rows(200, 2), 3);
  fill_random(v, rng);
  v.col(0, 1)[7] = std::numeric_limits<double>::quiet_NaN();
  const double kappa = condition_number(v, 0, 3);
  EXPECT_FALSE(std::isnan(kappa));
  EXPECT_TRUE(std::isinf(kappa));
}

TEST(Metrics, ChargedConditionNumberMatchesFreeAndChargesTime) {
  sim::Machine m(2);
  Rng rng(97);
  DistMultiVec v(split_rows(320, 2), 4);
  fill_random(v, rng);
  const double before = m.clock().elapsed();
  const double charged = condition_number_charged(m, v, 0, 4);
  EXPECT_DOUBLE_EQ(charged, condition_number(v, 0, 4));
  EXPECT_GT(m.clock().elapsed(), before);  // honest simulated cost
}

TEST(Tsqr, MoreRobustMethodChainsTowardCaqr) {
  EXPECT_EQ(more_robust_method(Method::kCholQrMp), Method::kCholQr);
  EXPECT_EQ(more_robust_method(Method::kCholQr), Method::kSvqr);
  EXPECT_EQ(more_robust_method(Method::kSvqr), Method::kCaqr);
  EXPECT_EQ(more_robust_method(Method::kMgs), Method::kCaqr);
  EXPECT_EQ(more_robust_method(Method::kCgs), Method::kCaqr);
  EXPECT_EQ(more_robust_method(Method::kCaqr), Method::kCaqr);  // fixpoint
}

TEST(HierReduce, OneInterNodeMessagePerNodeAndBitwiseEqualToFlat) {
  // A bare reduction of 8 partials on a 2x4 machine: the flat fold ships
  // one D2H per device, so the 4 devices on node 1 each cross the network;
  // the hierarchical fold folds node 1 on its leader and ships exactly one
  // inter-node message (node 0 hosts the coordinating CPU — its subtotal
  // never touches the network). The sums must match bitwise: the grouped
  // tree and its fold order are knob-invariant.
  const int len = 13;
  std::vector<std::vector<double>> parts(
      8, std::vector<double>(static_cast<std::size_t>(len)));
  Rng rng(11);
  for (auto& p : parts) {
    for (double& x : p) x = rng.normal();
  }
  std::vector<double> sum_flat(static_cast<std::size_t>(len), -1.0);
  std::vector<double> sum_hier(static_cast<std::size_t>(len), -2.0);
  std::int64_t msgs_flat = 0, msgs_hier = 0;
  for (const bool hier : {false, true}) {
    Machine m(sim::Topology{2, 4});
    m.set_hier_reduce(hier);
    EXPECT_EQ(m.hier_reduce(), hier);
    const std::int64_t before = m.counters().net_msgs;
    detail::reduce_to_host(m, parts, len,
                           (hier ? sum_hier : sum_flat).data());
    m.sync();
    (hier ? msgs_hier : msgs_flat) = m.counters().net_msgs - before;
  }
  EXPECT_EQ(sum_hier, sum_flat);
  EXPECT_EQ(msgs_flat, 4);  // node 1's four devices each cross the network
  EXPECT_EQ(msgs_hier, 1);  // node 1's leader ships one subtotal
}

TEST(HierReduce, KnobInertOnSingleNodeMachine) {
  // On a flat machine the knob must not even engage: same messages, same
  // charges, same bits — the nodes == 1 path is the untouched seed code.
  const int len = 7;
  std::vector<std::vector<double>> parts(
      3, std::vector<double>(static_cast<std::size_t>(len)));
  Rng rng(12);
  for (auto& p : parts) {
    for (double& x : p) x = rng.normal();
  }
  std::vector<double> sum_on(static_cast<std::size_t>(len), 0.0);
  std::vector<double> sum_off(static_cast<std::size_t>(len), 0.0);
  double t_on = 0.0, t_off = 0.0;
  for (const bool knob : {false, true}) {
    Machine m(3);
    m.set_hier_reduce(knob);
    EXPECT_FALSE(m.hier_reduce());  // one node: the knob reads back off
    detail::reduce_to_host(m, parts, len, (knob ? sum_on : sum_off).data());
    m.sync();
    (knob ? t_on : t_off) = m.clock().elapsed();
  }
  EXPECT_EQ(sum_on, sum_off);
  EXPECT_EQ(t_on, t_off);
}

TEST(Parse, MethodNames) {
  EXPECT_EQ(parse_method("cholqr"), Method::kCholQr);
  EXPECT_EQ(to_string(Method::kSvqr), "svqr");
  EXPECT_THROW(parse_method("qr"), Error);
  EXPECT_EQ(parse_borth("mgs"), BorthMethod::kMgs);
  EXPECT_THROW(parse_borth("cholqr"), Error);
}

}  // namespace
}  // namespace cagmres::ortho
