// Transfer codec layer (sim/codec.hpp, DESIGN.md §14): wire formats,
// round-trip error bounds, wire-size math, spec parsing (strict vs the
// lenient environment path), and the Machine-side arming/charging rules.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/codec.hpp"
#include "sim/machine.hpp"

namespace cagmres {
namespace {

using sim::Codec;
using sim::CodecConfig;
using sim::CodecSpec;
using sim::TrafficClass;

CodecSpec make(Codec kind, int bits = 16) {
  CodecSpec s;
  s.kind = kind;
  s.bits = bits;
  return s;
}

TEST(CodecFp32, RoundTripWithinHalfUlpAndIdempotent) {
  const CodecSpec fp32 = make(Codec::kFp32);
  Rng rng(21);
  std::vector<double> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Mixed magnitudes: the demotion error must stay relative throughout.
    x[i] = rng.normal() * std::pow(10.0, static_cast<double>(i % 13) - 6.0);
  }
  std::vector<double> rt = x;
  fp32.roundtrip(rt.data(), static_cast<int>(rt.size()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    // float has a 24-bit significand: relative error <= 2^-24.
    EXPECT_LE(std::fabs(rt[i] - x[i]), std::ldexp(std::fabs(x[i]), -24))
        << "i=" << i;
  }
  // Idempotence is what makes fp32 legal for checkpoints: re-encoding an
  // already-demoted value is lossless, so save/restore/save is stable.
  std::vector<double> rt2 = rt;
  fp32.roundtrip(rt2.data(), static_cast<int>(rt2.size()));
  for (std::size_t i = 0; i < rt.size(); ++i) {
    EXPECT_EQ(rt2[i], rt[i]) << "i=" << i;
  }
}

TEST(CodecFp32, NonFinitePayloadSurvives) {
  const CodecSpec fp32 = make(Codec::kFp32);
  std::vector<double> x = {1.5, std::nan(""), 2.5,
                           std::numeric_limits<double>::infinity()};
  fp32.roundtrip(x.data(), static_cast<int>(x.size()));
  EXPECT_EQ(x[0], 1.5);
  EXPECT_TRUE(std::isnan(x[1]));
  EXPECT_EQ(x[2], 2.5);
  EXPECT_TRUE(std::isinf(x[3]));
}

TEST(CodecFrsz2, ConstantBlockIsExactWhenTheMantissaFits) {
  // A constant block anchors the grid at its own exponent, so the round
  // trip is lossless whenever the value needs at most bits-1 mantissa bits
  // — at any magnitude, including near the subnormal range.
  struct Case {
    int bits;
    double c;
  };
  const Case cases[] = {
      {4, 1.0},   {4, -0.75},        {8, -3.25},
      {8, 0.0},   {16, 96.0625},     {16, std::ldexp(-5.0, -900)},
      {31, 1.0 + 1048575.0 / 1048576.0}};
  for (const Case& t : cases) {
    const CodecSpec spec = make(Codec::kFrsz2, t.bits);
    std::vector<double> x(100, t.c);
    spec.roundtrip(x.data(), static_cast<int>(x.size()));
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x[i], t.c) << "bits=" << t.bits << " c=" << t.c << " i=" << i;
    }
  }
}

TEST(CodecFrsz2, ConstantBlockDecodesToAConstant) {
  // Even when the value does NOT fit the grid, a constant block decodes to
  // one shared value within the fixed-rate relative error.
  const CodecSpec spec = make(Codec::kFrsz2, 16);
  const double c = 7.5e12;  // odd part needs 33 mantissa bits
  std::vector<double> x(64, c);
  spec.roundtrip(x.data(), static_cast<int>(x.size()));
  for (std::size_t i = 1; i < x.size(); ++i) EXPECT_EQ(x[i], x[0]);
  EXPECT_NEAR(x[0], c, std::ldexp(c, 1 - 15));
}

TEST(CodecFrsz2, ErrorBoundedByBlockMaxMagnitude) {
  Rng rng(22);
  for (const int bits : {8, 16}) {
    const CodecSpec spec = make(Codec::kFrsz2, bits);
    std::vector<double> x(CodecSpec::kBlock * 4);
    for (auto& e : x) e = rng.normal();
    double amax = 0.0;
    for (const double e : x) amax = std::max(amax, std::fabs(e));
    std::vector<double> rt = x;
    spec.roundtrip(rt.data(), static_cast<int>(rt.size()));
    // The grid step within one block is 2^(e - (bits-1)) with 2^e <= 2*amax
    // (amax of the whole vector bounds every block's anchor), so rounding
    // adds at most half a step.
    const double bound = amax * std::ldexp(1.0, 1 - (bits - 1));
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_LE(std::fabs(rt[i] - x[i]), bound) << "bits=" << bits;
    }
  }
}

TEST(CodecFrsz2, NonFiniteBlockPassesThroughOthersStillQuantize) {
  // NaN poison (fault injection) must survive the wire so the scrubbers
  // downstream still see it; only the containing block is exempted.
  const CodecSpec spec = make(Codec::kFrsz2, 8);
  std::vector<double> x(CodecSpec::kBlock * 2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.001 * static_cast<double>(i);  // not on an 8-bit grid
  }
  x[3] = std::nan("");
  std::vector<double> rt = x;
  spec.roundtrip(rt.data(), static_cast<int>(rt.size()));
  EXPECT_TRUE(std::isnan(rt[3]));
  for (int i = 0; i < CodecSpec::kBlock; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(rt[static_cast<std::size_t>(i)],
              x[static_cast<std::size_t>(i)])  // poisoned block: untouched
        << "i=" << i;
  }
  bool second_block_changed = false;
  for (int i = CodecSpec::kBlock; i < 2 * CodecSpec::kBlock; ++i) {
    if (rt[static_cast<std::size_t>(i)] != x[static_cast<std::size_t>(i)]) {
      second_block_changed = true;
    }
  }
  EXPECT_TRUE(second_block_changed);
}

TEST(CodecSpecTest, WireBytesMath) {
  EXPECT_EQ(make(Codec::kNone).wire_bytes(100.0), 800.0);
  EXPECT_EQ(make(Codec::kFp32).wire_bytes(100.0), 400.0);
  // frsz2:16 over 100 values: ceil(100/32)=4 block headers of 2 bytes plus
  // 2 bytes per value.
  EXPECT_EQ(make(Codec::kFrsz2, 16).wire_bytes(100.0), 208.0);
  EXPECT_EQ(make(Codec::kFrsz2, 8).wire_bytes(32.0), 34.0);
  EXPECT_EQ(make(Codec::kFrsz2, 16).wire_bytes(0.0), 0.0);
  EXPECT_EQ(make(Codec::kFp32).wire_bytes(-5.0), 0.0);
}

TEST(CodecParse, SingleSpecs) {
  EXPECT_EQ(sim::parse_codec("none").kind, Codec::kNone);
  EXPECT_EQ(sim::parse_codec("fp32").kind, Codec::kFp32);
  const CodecSpec dflt = sim::parse_codec("frsz2");
  EXPECT_EQ(dflt.kind, Codec::kFrsz2);
  EXPECT_EQ(dflt.bits, 16);
  EXPECT_EQ(sim::parse_codec("frsz2:8").bits, 8);
  EXPECT_EQ(sim::parse_codec("frsz2:8").to_string(), "frsz2:8");
  EXPECT_THROW(sim::parse_codec("frsz2:2"), Error);
  EXPECT_THROW(sim::parse_codec("frsz2:40"), Error);
  EXPECT_THROW(sim::parse_codec("frsz2:x"), Error);
  EXPECT_THROW(sim::parse_codec("zstd"), Error);
}

TEST(CodecParse, ConfigStrictVsLenientEnvironmentPath) {
  const CodecConfig cfg =
      sim::parse_codec_config("halo=fp32,reduce=frsz2:12,ckpt=fp32");
  EXPECT_EQ(cfg.halo.kind, Codec::kFp32);
  EXPECT_EQ(cfg.reduce.kind, Codec::kFrsz2);
  EXPECT_EQ(cfg.reduce.bits, 12);
  EXPECT_EQ(cfg.ckpt.kind, Codec::kFp32);
  EXPECT_EQ(cfg.to_string(), "halo=fp32,reduce=frsz2:12,ckpt=fp32");

  EXPECT_FALSE(sim::parse_codec_config("").any_active());
  EXPECT_EQ(sim::parse_codec_config("").to_string(), "none");

  // Strict mode refuses garbage and the unrestorable ckpt=frsz2.
  EXPECT_THROW(sim::parse_codec_config("ckpt=frsz2"), Error);
  EXPECT_THROW(sim::parse_codec_config("dma=fp32"), Error);
  EXPECT_THROW(sim::parse_codec_config("halo"), Error);

  // The environment path drops bad entries and keeps the rest, so a stray
  // CAGMRES_COMPRESS value can never blow up every Machine in the process.
  const CodecConfig len = sim::parse_codec_config(
      "halo=fp32,ckpt=frsz2,dma=fp32,reduce=fp32", /*lenient=*/true);
  EXPECT_EQ(len.halo.kind, Codec::kFp32);
  EXPECT_EQ(len.reduce.kind, Codec::kFp32);
  EXPECT_FALSE(len.ckpt.active());
}

TEST(CodecMachine, SetCodecArmsAndRejectsUnrestorableCkpt) {
  sim::Machine m(1);
  m.set_codec(TrafficClass::kHalo, make(Codec::kFp32));
  EXPECT_EQ(m.codec(TrafficClass::kHalo).kind, Codec::kFp32);
  EXPECT_TRUE(m.codec_config().any_active());
  m.set_codec(TrafficClass::kCkpt, make(Codec::kFp32));  // idempotent: fine
  EXPECT_THROW(m.set_codec(TrafficClass::kCkpt, make(Codec::kFrsz2)), Error);
}

TEST(CodecMachine, ChargeCodecBillsTheDeviceOnlyWhenActive) {
  sim::Machine m(1);
  const auto codec_calls = [&] {
    return m.counters()
        .kernel_count[static_cast<std::size_t>(sim::Kernel::kCodec)];
  };
  m.charge_codec(0, make(Codec::kNone), 1000.0);
  m.sync();
  EXPECT_EQ(codec_calls(), 0);
  const double t0 = m.clock().elapsed();
  m.charge_codec(0, make(Codec::kFp32), 1000.0);
  m.sync();
  EXPECT_EQ(codec_calls(), 1);
  EXPECT_GT(m.clock().elapsed(), t0);
}

}  // namespace
}  // namespace cagmres
