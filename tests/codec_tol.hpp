// Env-aware tolerance for accuracy assertions that a quantizing transfer
// codec legitimately loosens. check.sh reruns the mpk/ortho/fault suites
// with CAGMRES_COMPRESS=halo=fp32,reduce=fp32 (sim/codec.hpp): the wire
// then carries ~single-precision coefficients, so results track the
// uncompressed run only to fp32 accuracy. codec_tol(t) returns t normally
// and max(t, coded) when CAGMRES_COMPRESS is set, so one test body serves
// both runs without forking.
#pragma once

#include <algorithm>
#include <cstdlib>

namespace cagmres::test {

inline bool codec_armed() {
  const char* e = std::getenv("CAGMRES_COMPRESS");
  return e != nullptr && *e != '\0';
}

inline double codec_tol(double tol, double coded = 1e-5) {
  return codec_armed() ? std::max(tol, coded) : tol;
}

/// Tolerance for one value against an exact host reference. Normally
/// `abs_tol`; with a codec armed, allows an fp32-grade relative error on
/// `expected`, amplified by `growth` (e.g. compounding across MPK steps).
inline double codec_near(double abs_tol, double expected, double growth = 1.0) {
  if (!codec_armed()) return abs_tol;
  return std::max(abs_tol, 1e-6 * growth * (1.0 + std::abs(expected)));
}

}  // namespace cagmres::test
