// Unit tests for the dense BLAS / LAPACK-lite substrate.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "blas/blas1.hpp"
#include "blas/blas2.hpp"
#include "blas/blas3.hpp"
#include "blas/eig.hpp"
#include "blas/lapack.hpp"
#include "blas/least_squares.hpp"
#include "blas/matrix.hpp"
#include "blas/svd.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace cagmres::blas {
namespace {

DMat random_matrix(int rows, int cols, Rng& rng) {
  DMat a(rows, cols);
  for (int j = 0; j < cols; ++j) {
    for (int i = 0; i < rows; ++i) a(i, j) = rng.normal();
  }
  return a;
}

double frob_diff(const DMat& a, const DMat& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double acc = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) {
      const double d = a(i, j) - b(i, j);
      acc += d * d;
    }
  }
  return std::sqrt(acc);
}

TEST(Blas1, DotAxpyScalCopy) {
  const int n = 257;
  Rng rng(1);
  std::vector<double> x(n), y(n), y0(n);
  for (int i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
    y0[i] = y[i];
  }
  double expected = 0.0;
  for (int i = 0; i < n; ++i) expected += x[i] * y[i];
  EXPECT_NEAR(dot(n, x.data(), y.data()), expected, 1e-12 * n);

  axpy(n, 2.5, x.data(), y.data());
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], y0[i] + 2.5 * x[i]);

  scal(n, 0.5, y.data());
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], 0.5 * (y0[i] + 2.5 * x[i]));

  copy(n, x.data(), y.data());
  for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Blas1, Nrm2MatchesDotAndResistsOverflow) {
  const int n = 100;
  Rng rng(2);
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) x[i] = rng.normal();
  EXPECT_NEAR(nrm2(n, x.data()), std::sqrt(dot(n, x.data(), x.data())),
              1e-12);
  // Entries near DBL_MAX's sqrt would overflow a naive sum of squares.
  std::vector<double> big(4, 1e200);
  EXPECT_NEAR(nrm2(4, big.data()), 2e200, 1e186);
  std::vector<double> zero(4, 0.0);
  EXPECT_EQ(nrm2(4, zero.data()), 0.0);
}

TEST(Blas1, Amax) {
  std::vector<double> x = {1.0, -7.5, 3.0};
  EXPECT_DOUBLE_EQ(amax(3, x.data()), 7.5);
  EXPECT_DOUBLE_EQ(amax(0, x.data()), 0.0);
}

TEST(Blas2, GemvAgainstReference) {
  const int m = 37, n = 11;
  Rng rng(3);
  DMat a = random_matrix(m, n, rng);
  std::vector<double> x(n), y(m, 1.0), xt(m), yt(n, 2.0);
  for (int j = 0; j < n; ++j) x[j] = rng.normal();
  for (int i = 0; i < m; ++i) xt[i] = rng.normal();

  std::vector<double> y_ref(m), yt_ref(n);
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += a(i, j) * x[j];
    y_ref[i] = 1.5 * acc + 0.5 * 1.0;
  }
  gemv_n(m, n, 1.5, a.data(), a.ld(), x.data(), 0.5, y.data());
  for (int i = 0; i < m; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);

  for (int j = 0; j < n; ++j) {
    double acc = 0.0;
    for (int i = 0; i < m; ++i) acc += a(i, j) * xt[i];
    yt_ref[j] = -1.0 * acc + 2.0 * 2.0;
  }
  gemv_t(m, n, -1.0, a.data(), a.ld(), xt.data(), 2.0, yt.data());
  for (int j = 0; j < n; ++j) EXPECT_NEAR(yt[j], yt_ref[j], 1e-12);
}

TEST(Blas2, GerRank1Update) {
  const int m = 8, n = 5;
  Rng rng(4);
  DMat a = random_matrix(m, n, rng);
  DMat a0 = a;
  std::vector<double> x(m), y(n);
  for (int i = 0; i < m; ++i) x[i] = rng.normal();
  for (int j = 0; j < n; ++j) y[j] = rng.normal();
  ger(m, n, -2.0, x.data(), y.data(), a.data(), a.ld());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(a(i, j), a0(i, j) - 2.0 * x[i] * y[j], 1e-13);
    }
  }
}

TEST(Blas3, GemmAllTransposeCombos) {
  const int m = 9, n = 7, k = 5;
  Rng rng(5);
  DMat an = random_matrix(m, k, rng);
  DMat at = random_matrix(k, m, rng);
  DMat bn = random_matrix(k, n, rng);
  DMat bt = random_matrix(n, k, rng);

  auto reference = [&](const DMat& aa, bool tra, const DMat& bb, bool trb) {
    DMat c(m, n);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) {
        double acc = 0.0;
        for (int p = 0; p < k; ++p) {
          const double av = tra ? aa(p, i) : aa(i, p);
          const double bv = trb ? bb(j, p) : bb(p, j);
          acc += av * bv;
        }
        c(i, j) = acc;
      }
    }
    return c;
  };

  struct Case {
    Trans ta, tb;
    const DMat *a, *b;
    bool ra, rb;
  };
  const Case cases[] = {
      {Trans::N, Trans::N, &an, &bn, false, false},
      {Trans::T, Trans::N, &at, &bn, true, false},
      {Trans::N, Trans::T, &an, &bt, false, true},
      {Trans::T, Trans::T, &at, &bt, true, true},
  };
  for (const auto& cs : cases) {
    DMat c(m, n);
    gemm(cs.ta, cs.tb, m, n, k, 1.0, cs.a->data(), cs.a->ld(), cs.b->data(),
         cs.b->ld(), 0.0, c.data(), c.ld());
    const DMat ref = reference(*cs.a, cs.ra, *cs.b, cs.rb);
    EXPECT_LT(frob_diff(c, ref), 1e-12) << "ta=" << (cs.ta == Trans::T)
                                        << " tb=" << (cs.tb == Trans::T);
  }
}

TEST(Blas3, GemmAlphaBeta) {
  const int m = 4, n = 3, k = 2;
  Rng rng(6);
  DMat a = random_matrix(m, k, rng);
  DMat b = random_matrix(k, n, rng);
  DMat c = random_matrix(m, n, rng);
  DMat c0 = c;
  gemm(Trans::N, Trans::N, m, n, k, 2.0, a.data(), a.ld(), b.data(), b.ld(),
       -1.0, c.data(), c.ld());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), 2.0 * acc - c0(i, j), 1e-12);
    }
  }
}

TEST(Blas3, GemmTransTransWithAlphaBeta) {
  const int m = 11, n = 6, k = 8;
  Rng rng(55);
  DMat a = random_matrix(k, m, rng);  // op(A) = A^T is m x k
  DMat b = random_matrix(n, k, rng);  // op(B) = B^T is k x n
  DMat c = random_matrix(m, n, rng);
  DMat c0 = c;
  gemm(Trans::T, Trans::T, m, n, k, 1.5, a.data(), a.ld(), b.data(), b.ld(),
       -0.5, c.data(), c.ld());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += a(p, i) * b(j, p);
      EXPECT_NEAR(c(i, j), 1.5 * acc - 0.5 * c0(i, j), 1e-12)
          << "i=" << i << " j=" << j;
    }
  }
}

// The cache-blocked tall-skinny paths (N,N panel update, T,N Gram product,
// syrk) kick in past the 1024-row long-dimension block; check them against
// the reference triple loop on shapes that straddle the block boundary and
// the OpenMP-enable thresholds.
TEST(Blas3, BlockedTallSkinnyPathsMatchReference) {
  const int m = 3000, k = 7;  // crosses kLongBlock twice, m*k > 1<<14
  Rng rng(56);
  DMat v = random_matrix(m, k, rng);
  DMat w = random_matrix(m, k, rng);

  // Gram product V^T W (T,N path).
  DMat g(k, k), g_ref(k, k);
  gemm(Trans::T, Trans::N, k, k, m, 1.0, v.data(), v.ld(), w.data(), w.ld(),
       0.0, g.data(), g.ld());
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < k; ++i) {
      double acc = 0.0;
      for (int p = 0; p < m; ++p) acc += v(p, i) * w(p, j);
      g_ref(i, j) = acc;
    }
  }
  EXPECT_LT(frob_diff(g, g_ref), 1e-9 * std::sqrt(static_cast<double>(m)));

  // Panel update V <- V - W G (N,N path, the BOrth projection shape).
  DMat upd = v;
  gemm(Trans::N, Trans::N, m, k, k, -1.0, w.data(), w.ld(), g.data(), g.ld(),
       1.0, upd.data(), upd.ld());
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += w(i, p) * g(p, j);
      EXPECT_NEAR(upd(i, j), v(i, j) - acc, 1e-9);
    }
  }

  // syrk against the blocked T,N gemm on the same panel.
  DMat s(k, k), s_ref(k, k);
  syrk_tn(m, k, v.data(), v.ld(), s.data(), s.ld());
  gemm(Trans::T, Trans::N, k, k, m, 1.0, v.data(), v.ld(), v.data(), v.ld(),
       0.0, s_ref.data(), s_ref.ld());
  EXPECT_LT(frob_diff(s, s_ref), 1e-9 * std::sqrt(static_cast<double>(m)));
}

// The transposed-B branches (N,T and T,T) share the blocking schemes above
// (ISSUE 4 satellite). Their determinism contract is exact — the per-element
// term order matches the naive loops they replaced — so compare with ==, on
// shapes that straddle kLongBlock, the OpenMP thresholds, and a k with a
// 4-fuse remainder.
TEST(Blas3, BlockedTransposedBPathsAreBitIdenticalToNaive) {
  Rng rng(57);
  {
    // N,T: long dimension kept; m crosses the block twice, k % 4 == 2, and
    // m*n*k exceeds the parallel threshold.
    const int m = 2500, n = 8, k = 14;
    DMat a = random_matrix(m, k, rng);
    DMat b = random_matrix(n, k, rng);
    const DMat c0 = random_matrix(m, n, rng);
    DMat c = c0, ref = c0;
    const double alpha = 1.5, beta = -0.5;
    gemm(Trans::N, Trans::T, m, n, k, alpha, a.data(), a.ld(), b.data(),
         b.ld(), beta, c.data(), c.ld());
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) ref(i, j) *= beta;
      for (int p = 0; p < k; ++p) {
        const double t = alpha * b(j, p);
        for (int i = 0; i < m; ++i) ref(i, j) += t * a(i, p);
      }
    }
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) {
        EXPECT_EQ(c(i, j), ref(i, j)) << "N,T i=" << i << " j=" << j;
      }
    }
  }
  {
    // T,T: contracted dimension crosses the block twice and m*k exceeds
    // the parallel threshold; alpha applied once after the blocked sum.
    const int m = 30, n = 5, k = 2300;
    DMat a = random_matrix(k, m, rng);
    DMat b = random_matrix(n, k, rng);
    const DMat c0 = random_matrix(m, n, rng);
    DMat c = c0, ref = c0;
    const double alpha = 2.0;
    gemm(Trans::T, Trans::T, m, n, k, alpha, a.data(), a.ld(), b.data(),
         b.ld(), 1.0, c.data(), c.ld());
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < m; ++i) {
        double s = 0.0;
        for (int p = 0; p < k; ++p) s += a(p, i) * b(j, p);
        ref(i, j) += alpha * s;
        EXPECT_EQ(c(i, j), ref(i, j)) << "T,T i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Blas3, SyrkMatchesGemm) {
  const int m = 50, n = 6;
  Rng rng(7);
  DMat a = random_matrix(m, n, rng);
  DMat c(n, n), ref(n, n);
  syrk_tn(m, n, a.data(), a.ld(), c.data(), c.ld());
  gemm(Trans::T, Trans::N, n, n, m, 1.0, a.data(), a.ld(), a.data(), a.ld(),
       0.0, ref.data(), ref.ld());
  EXPECT_LT(frob_diff(c, ref), 1e-11);
  // Exact symmetry by construction.
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) EXPECT_EQ(c(i, j), c(j, i));
  }
}

TEST(Blas3, TrsmThenTrmmRoundTrips) {
  const int m = 20, n = 5;
  Rng rng(8);
  DMat r(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) r(i, j) = rng.normal();
    r(j, j) += 4.0;  // well conditioned
  }
  DMat b = random_matrix(m, n, rng);
  DMat b0 = b;
  trsm_right_upper(m, n, r.data(), r.ld(), b.data(), b.ld());
  trmm_right_upper(m, n, r.data(), r.ld(), b.data(), b.ld());
  EXPECT_LT(frob_diff(b, b0), 1e-12);
}

TEST(Blas3, TrsmSingularThrows) {
  DMat r(2, 2);
  r(0, 0) = 1.0;
  r(1, 1) = 0.0;
  DMat b(3, 2);
  EXPECT_THROW(trsm_right_upper(3, 2, r.data(), r.ld(), b.data(), b.ld()),
               Error);
}

TEST(Lapack, CholeskyFactorizesSpd) {
  const int n = 8;
  Rng rng(9);
  DMat g = random_matrix(20, n, rng);
  DMat b(n, n);
  syrk_tn(20, n, g.data(), g.ld(), b.data(), b.ld());
  for (int j = 0; j < n; ++j) b(j, j) += 1.0;

  DMat r = b;
  ASSERT_EQ(potrf_upper(r), -1);
  // R^T R == B.
  DMat rtr(n, n);
  gemm(Trans::T, Trans::N, n, n, n, 1.0, r.data(), r.ld(), r.data(), r.ld(),
       0.0, rtr.data(), rtr.ld());
  EXPECT_LT(frob_diff(rtr, b), 1e-10);
  // Strict lower triangle zeroed.
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) EXPECT_EQ(r(i, j), 0.0);
  }
}

TEST(Lapack, CholeskyReportsBreakdownColumn) {
  DMat b(3, 3);
  b(0, 0) = 4.0;
  b(1, 1) = 1.0;
  b(2, 2) = -1.0;  // indefinite
  EXPECT_EQ(potrf_upper(b), 2);

  DMat nan_mat(2, 2);
  nan_mat(0, 0) = std::nan("");
  EXPECT_EQ(potrf_upper(nan_mat), 0);
}

TEST(Lapack, QrExplicitReconstructs) {
  const int m = 40, n = 7;
  Rng rng(10);
  DMat v = random_matrix(m, n, rng);
  DMat q, r;
  qr_explicit(v, q, r);

  // Q^T Q == I.
  DMat qtq(n, n);
  gemm(Trans::T, Trans::N, n, n, m, 1.0, q.data(), q.ld(), q.data(), q.ld(),
       0.0, qtq.data(), qtq.ld());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
  // Q R == V.
  DMat qr = q;
  trmm_right_upper(m, n, r.data(), r.ld(), qr.data(), qr.ld());
  EXPECT_LT(frob_diff(qr, v), 1e-11);
  // Positive diagonal and upper triangularity of R.
  for (int j = 0; j < n; ++j) {
    EXPECT_GT(r(j, j), 0.0);
    for (int i = j + 1; i < n; ++i) EXPECT_EQ(r(i, j), 0.0);
  }
}

TEST(Lapack, QrHandlesSquareAndSingleColumn) {
  Rng rng(11);
  DMat v = random_matrix(5, 5, rng);
  DMat q, r;
  qr_explicit(v, q, r);
  DMat qr = q;
  trmm_right_upper(5, 5, r.data(), r.ld(), qr.data(), qr.ld());
  EXPECT_LT(frob_diff(qr, v), 1e-11);

  DMat col = random_matrix(9, 1, rng);
  qr_explicit(col, q, r);
  EXPECT_NEAR(r(0, 0), nrm2(9, col.col(0)), 1e-12);
}

TEST(Lapack, TrsvAndTrtri) {
  const int n = 6;
  Rng rng(12);
  DMat r(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) r(i, j) = rng.normal();
    r(j, j) += 3.0;
  }
  std::vector<double> b(n), x(n);
  for (int i = 0; i < n; ++i) b[i] = rng.normal();
  x = b;
  trsv_upper(r, x.data());
  // R x == b.
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = i; j < n; ++j) acc += r(i, j) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-11);
  }

  DMat rinv = r;
  trtri_upper(rinv);
  DMat prod(n, n);
  gemm(Trans::N, Trans::N, n, n, n, 1.0, r.data(), r.ld(), rinv.data(),
       rinv.ld(), 0.0, prod.data(), prod.ld());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-11);
    }
  }
}

TEST(JacobiEigh, DiagonalizesSymmetricMatrix) {
  const int n = 10;
  Rng rng(13);
  DMat g = random_matrix(30, n, rng);
  DMat b(n, n);
  syrk_tn(30, n, g.data(), g.ld(), b.data(), b.ld());

  const EighResult e = jacobi_eigh(b);
  // Eigenvalues descending and non-negative (B is a Gram matrix).
  for (int i = 1; i < n; ++i) EXPECT_LE(e.w[i], e.w[i - 1]);
  EXPECT_GE(e.w.back(), -1e-10);

  // U diag(w) U^T == B.
  DMat usqrt = e.u;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) usqrt(i, j) *= e.w[static_cast<std::size_t>(j)];
  }
  DMat recon(n, n);
  gemm(Trans::N, Trans::T, n, n, n, 1.0, usqrt.data(), usqrt.ld(),
       e.u.data(), e.u.ld(), 0.0, recon.data(), recon.ld());
  EXPECT_LT(frob_diff(recon, b), 1e-9 * (1.0 + e.w.front()));

  // U orthonormal.
  DMat utu(n, n);
  gemm(Trans::T, Trans::N, n, n, n, 1.0, e.u.data(), e.u.ld(), e.u.data(),
       e.u.ld(), 0.0, utu.data(), utu.ld());
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(utu(i, j), i == j ? 1.0 : 0.0, 1e-11);
    }
  }
}

TEST(JacobiEigh, KnownEigenvalues) {
  DMat a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const EighResult e = jacobi_eigh(a);
  EXPECT_NEAR(e.w[0], 3.0, 1e-13);
  EXPECT_NEAR(e.w[1], 1.0, 1e-13);
}

TEST(HessenbergEig, UpperTriangularGivesDiagonal) {
  const int n = 5;
  DMat h(n, n);
  for (int i = 0; i < n; ++i) h(i, i) = i + 1.0;
  h(0, 4) = 3.0;
  auto eig = hessenberg_eig(h);
  std::vector<double> re;
  for (const auto& e : eig) {
    EXPECT_NEAR(e.imag(), 0.0, 1e-12);
    re.push_back(e.real());
  }
  std::sort(re.begin(), re.end());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(re[i], i + 1.0, 1e-10);
}

TEST(HessenbergEig, RotationBlockGivesComplexPair) {
  // [[cos, -sin], [sin, cos]] scaled by rho has eigenvalues rho*e^{+-i t}.
  const double rho = 2.0, t = 0.7;
  DMat h(2, 2);
  h(0, 0) = rho * std::cos(t);
  h(0, 1) = -rho * std::sin(t);
  h(1, 0) = rho * std::sin(t);
  h(1, 1) = rho * std::cos(t);
  auto eig = hessenberg_eig(h);
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_NEAR(std::abs(eig[0]), rho, 1e-12);
  EXPECT_NEAR(std::abs(eig[0].imag()), rho * std::sin(t), 1e-12);
  EXPECT_NEAR(eig[0].real(), rho * std::cos(t), 1e-12);
  EXPECT_NEAR(eig[0].imag() + eig[1].imag(), 0.0, 1e-12);
}

TEST(HessenbergEig, RandomHessenbergTraceAndProduct) {
  // Eigenvalue sum equals the trace; their product equals the determinant
  // (checked via |det| from the eigenvalue moduli of a small matrix).
  const int n = 8;
  Rng rng(14);
  DMat h(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= std::min(j + 1, n - 1); ++i) h(i, j) = rng.normal();
  }
  auto eig = hessenberg_eig(h);
  std::complex<double> sum = 0.0;
  for (const auto& e : eig) sum += e;
  double trace = 0.0;
  for (int i = 0; i < n; ++i) trace += h(i, i);
  EXPECT_NEAR(sum.real(), trace, 1e-9);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-9);
}

TEST(GivensLS, MatchesNormalEquationsOnHessenberg) {
  const int m = 6;
  Rng rng(15);
  DMat h(m + 1, m);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j + 1; ++i) h(i, j) = rng.normal();
  }
  const double beta = 3.0;
  double res = 0.0;
  const std::vector<double> y = solve_hessenberg_ls(h, beta, &res);

  // Residual vector r = beta*e1 - H y must be orthogonal to range(H).
  std::vector<double> r(static_cast<std::size_t>(m) + 1, 0.0);
  r[0] = beta;
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j + 1; ++i) r[static_cast<std::size_t>(i)] -= h(i, j) * y[static_cast<std::size_t>(j)];
  }
  for (int j = 0; j < m; ++j) {
    double acc = 0.0;
    for (int i = 0; i <= j + 1; ++i) acc += h(i, j) * r[static_cast<std::size_t>(i)];
    EXPECT_NEAR(acc, 0.0, 1e-10);
  }
  EXPECT_NEAR(res, nrm2(m + 1, r.data()), 1e-10);
}

TEST(GivensLS, ProgressiveResidualIsMonotone) {
  const int m = 10;
  Rng rng(16);
  GivensLS ls(m, 1.0);
  double prev = 1.0;
  std::vector<double> col(static_cast<std::size_t>(m) + 1);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j + 1; ++i) col[static_cast<std::size_t>(i)] = rng.normal();
    const double res = ls.append_column(col.data());
    EXPECT_LE(res, prev + 1e-12);
    prev = res;
  }
  EXPECT_EQ(ls.size(), m);
}

TEST(GivensLS, ExactSystemGivesZeroResidual) {
  // H y = beta*e1 solvable exactly when H is square-ish with last row 0.
  DMat h(3, 2);
  h(0, 0) = 2.0;
  h(1, 0) = 1.0;
  h(0, 1) = 0.0;
  h(1, 1) = 1.0;
  h(2, 1) = 0.0;
  // With h(2,1)=0 the 3rd equation is trivially satisfiable.
  double res = 0.0;
  const auto y = solve_hessenberg_ls(h, 4.0, &res);
  EXPECT_NEAR(res, 0.0, 1e-12);
  EXPECT_NEAR(2.0 * y[0] + 0.0 * y[1], 4.0, 1e-12);
  EXPECT_NEAR(1.0 * y[0] + 1.0 * y[1], 0.0, 1e-12);
}

TEST(MatrixClass, BoundsAndFill) {
  DMat a(3, 2);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  a.fill(7.0);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), 7.0);
  }
  EXPECT_EQ(a.col(1), a.data() + 3);
}

}  // namespace
}  // namespace cagmres::blas
