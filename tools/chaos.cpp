// Chaos campaign driver (see src/sim/chaos.hpp and DESIGN.md §11).
//
// Default: generate --schedules randomized fault schedules from --seed, run
// each over {barrier, event} x {0, 2 host workers} with alternating
// CA-GMRES / GMRES, and check the invariant oracle. Any violation is
// delta-debugged to a minimal reproducer and printed as a --faults spec.
// Exit code 1 when violations were found.
//
//   ./tools/chaos --schedules=64 --seed=7
//   ./tools/chaos --faults="seed=42;kill:*@t=5ms;corrupt:p=0.7" --solver=ca
//   ./tools/chaos --schedules=16 --demo-bug-kills=2   # exercise the minimizer
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/options.hpp"
#include "sim/chaos.hpp"

namespace {

using cagmres::sim::ChaosConfig;
using cagmres::sim::ChaosRunner;
using cagmres::sim::ChaosSchedule;
using cagmres::sim::ChaosSolver;
using cagmres::sim::ChaosViolation;
using cagmres::sim::SyncMode;

std::vector<SyncMode> parse_modes(const std::string& s) {
  if (s == "barrier") return {SyncMode::kBarrier};
  if (s == "event") return {SyncMode::kEvent};
  CAGMRES_REQUIRE(s == "both", "--modes must be barrier, event, or both");
  return {SyncMode::kBarrier, SyncMode::kEvent};
}

const char* mode_name(SyncMode m) {
  return m == SyncMode::kBarrier ? "barrier" : "event";
}

void print_violation(const ChaosViolation& v) {
  std::printf("VIOLATION schedule=%d solver=%s mode=%s workers=%d\n",
              v.schedule_index, to_string(v.solver).c_str(),
              mode_name(v.mode), v.workers);
  std::printf("  what: %s\n  spec: %s\n", v.what.c_str(), v.spec.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cagmres::Options opts(
      "Chaos campaign: randomized fault schedules vs the invariant oracle");
  opts.add("schedules", "64", "number of schedules to generate and run");
  opts.add("seed", "7", "campaign seed (fixes every schedule)");
  opts.add("devices", "4", "simulated GPU count");
  opts.add("nodes", "1",
           "fault domains: devices are split into this many nodes (must "
           "divide --devices); >1 adds node kills and link faults");
  opts.add("matrix", "",
           "paper-matrix analog instead of the Laplacian: cant | g3_circuit "
           "| dielfilter | nlpkkt");
  opts.add("matrix-scale", "1.0", "size scale for --matrix");
  opts.add("modes", "both", "sync modes to cover: barrier | event | both");
  opts.add("workers", "0,2", "host worker counts to cover");
  opts.add("solver", "both", "ca | gmres | both (alternate by index)");
  opts.add("precond", "",
           "ILU spec (e.g. ilu:k=1,underlap=1): widen the alternation with "
           "right-preconditioned drivers so faults land in precond setup "
           "and the level-scheduled trisolves too");
  opts.add("min-devices", "1", "degradation floor passed to the solvers");
  opts.add("degrade", "1", "enable the cpu_gmres degradation floor");
  opts.add("deadline-factor", "50",
           "watchdog deadline as a multiple of the fault-free baseline");
  opts.add("minimize", "1", "delta-debug violations to minimal reproducers");
  opts.add("faults", "",
           "run ONE schedule from this spec instead of a campaign");
  opts.add("demo-bug-kills", "-1",
           "demo oracle: flag runs with >= this many device kills (-1 off)");
  opts.add("progress", "0", "print one line per schedule");
  if (!opts.parse(argc, argv)) return 0;

  ChaosConfig cfg;
  cfg.n_devices = opts.get_int("devices");
  cfg.n_nodes = opts.get_int("nodes");
  cfg.matrix = opts.get("matrix");
  cfg.matrix_scale = opts.get_double("matrix-scale");
  cfg.min_devices = opts.get_int("min-devices");
  cfg.degrade_to_cpu = opts.get_bool("degrade");
  cfg.deadline_factor = opts.get_double("deadline-factor");
  cfg.modes = parse_modes(opts.get("modes"));
  cfg.worker_counts = opts.get_int_list("workers");
  cfg.demo_bug_kills = opts.get_int("demo-bug-kills");
  const std::string solver_arg = opts.get("solver");
  cfg.both_solvers = solver_arg == "both";
  cfg.precond = opts.get("precond");

  ChaosRunner runner(cfg);
  std::vector<ChaosViolation> violations;

  const std::string spec = opts.get("faults");
  if (!spec.empty()) {
    const ChaosSchedule sched = ChaosSchedule::from_spec(spec);
    std::printf("schedule: %s\n", sched.to_spec().c_str());
    violations = runner.run_schedule(sched, solver_arg == "gmres" ? 1 : 0);
    if (violations.empty()) std::printf("ok: no invariant violations\n");
  } else {
    int n = opts.get_int("schedules");
    if (!cfg.matrix.empty() && n > 16) {
      // Paper-matrix analogs are orders of magnitude bigger than the 24x24
      // default; budget the campaign so a --matrix run stays in the same
      // wall-clock ballpark. Ask for <= 16 schedules explicitly to silence.
      std::printf("note: --matrix campaign budgeted to 16 schedules "
                  "(asked for %d)\n", n);
      n = 16;
    }
    const std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed"));
    const bool progress = opts.get_bool("progress");
    const auto stats = runner.run_campaign(
        seed, n,
        [&](int i, const ChaosSchedule& s,
            const std::vector<ChaosViolation>& v) {
          if (progress || !v.empty()) {
            std::printf("[%3d] %-9s %s%s\n", i,
                        s.armed() ? "faulty" : "zero-fault",
                        s.to_spec().c_str(), v.empty() ? "" : "  <-- VIOLATES");
          }
        });
    violations = stats.violations;
    std::printf(
        "campaign: %d schedules (%d zero-fault), %d runs: "
        "%d converged, %d unconverged, %d clean errors, %d watchdog trips, "
        "%d degraded to cpu_gmres\n",
        stats.schedules, stats.zero_fault, stats.runs, stats.converged,
        stats.unconverged, stats.clean_errors, stats.watchdogs,
        stats.degraded);
    // Campaign-wide interconnect traffic; with CAGMRES_COMPRESS armed the
    // achieved per-tier compression ratio (payload/wire) rides along.
    const bool compressed = stats.peer_logical_bytes > stats.peer_bytes ||
                            stats.pcie_logical_bytes > stats.pcie_bytes ||
                            stats.net_logical_bytes > stats.net_bytes;
    const auto ratio = [](double logical, double wire) {
      return (wire > 0.0 && logical > 0.0) ? logical / wire : 1.0;
    };
    if (compressed) {
      std::printf(
          "traffic: peer %.1f MB (x%.2f), pcie %.1f MB (x%.2f), "
          "net %.1f MB (x%.2f)\n",
          stats.peer_bytes / 1048576.0,
          ratio(stats.peer_logical_bytes, stats.peer_bytes),
          stats.pcie_bytes / 1048576.0,
          ratio(stats.pcie_logical_bytes, stats.pcie_bytes),
          stats.net_bytes / 1048576.0,
          ratio(stats.net_logical_bytes, stats.net_bytes));
    } else {
      std::printf("traffic: peer %.1f MB, pcie %.1f MB, net %.1f MB\n",
                  stats.peer_bytes / 1048576.0, stats.pcie_bytes / 1048576.0,
                  stats.net_bytes / 1048576.0);
    }
  }

  if (violations.empty()) {
    std::printf("oracle: PASS\n");
    return 0;
  }
  std::printf("oracle: FAIL (%zu violations)\n", violations.size());
  for (const ChaosViolation& v : violations) print_violation(v);

  if (opts.get_bool("minimize")) {
    // Minimize the first violation per (solver) — later ones are usually
    // the same schedule seen through another configuration.
    const ChaosViolation& v = violations.front();
    std::printf("minimizing schedule %d for %s...\n", v.schedule_index,
                to_string(v.solver).c_str());
    const ChaosSchedule full = ChaosSchedule::from_spec(v.spec);
    const ChaosSchedule min = runner.minimize(full, v.solver);
    std::printf("minimal reproducer (%zu events):\n  --faults=\"%s\"\n",
                min.events.size(), min.to_spec().c_str());
  }
  return 1;
}
