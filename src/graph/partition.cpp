#include "graph/partition.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/bfs.hpp"
#include "graph/rcm.hpp"

namespace cagmres::graph {

Ordering parse_ordering(const std::string& name) {
  if (name == "natural" || name == "nat") return Ordering::kNatural;
  if (name == "rcm") return Ordering::kRcm;
  if (name == "kway" || name == "kwy") return Ordering::kKway;
  throw Error("unknown ordering: " + name + " (expected natural|rcm|kway)");
}

std::string to_string(Ordering o) {
  switch (o) {
    case Ordering::kNatural:
      return "natural";
    case Ordering::kRcm:
      return "rcm";
    case Ordering::kKway:
      return "kway";
  }
  return "?";
}

namespace {

/// Picks n_parts seeds spread across the graph: a random first seed, then
/// repeatedly the vertex furthest (in BFS distance) from all chosen seeds.
std::vector<int> spread_seeds(const Adjacency& g, int n_parts,
                              std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b9u + 1);
  std::vector<int> seeds;
  seeds.push_back(
      static_cast<int>(rng.bounded(static_cast<std::uint64_t>(g.n))));
  while (static_cast<int>(seeds.size()) < n_parts) {
    const LevelStructure ls = bfs_levels(g, seeds);
    int far = -1;
    int far_level = -1;
    int unreached = -1;
    for (int v = 0; v < g.n; ++v) {
      const int l = ls.level[static_cast<std::size_t>(v)];
      if (l < 0) {
        if (unreached < 0) unreached = v;
        continue;
      }
      if (l > far_level) {
        far = v;
        far_level = l;
      }
    }
    // A vertex BFS never reached sits in a component no seed covers —
    // infinitely far, so it wins over stretching a seeded component
    // further. This is what lets k-way split a block-diagonal matrix into
    // its components exactly (the node tier of the two-level partition).
    if (unreached >= 0) {
      seeds.push_back(unreached);
      continue;
    }
    if (far_level <= 0) {
      far = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(g.n)));
    }
    seeds.push_back(far);
  }
  return seeds;
}

/// Induced subgraph over `verts` (ascending); cross edges are dropped.
Adjacency induced_subgraph(const Adjacency& g, const std::vector<int>& verts,
                           const std::vector<int>& local) {
  Adjacency s;
  s.n = static_cast<int>(verts.size());
  s.xadj.assign(static_cast<std::size_t>(s.n) + 1, 0);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    const int v = verts[i];
    std::int64_t deg = 0;
    for (const int* q = g.begin(v); q != g.end(v); ++q) {
      if (local[static_cast<std::size_t>(*q)] >= 0) ++deg;
    }
    s.xadj[i + 1] = s.xadj[i] + deg;
  }
  s.adj.resize(static_cast<std::size_t>(s.xadj.back()));
  for (std::size_t i = 0; i < verts.size(); ++i) {
    const int v = verts[i];
    std::int64_t at = s.xadj[i];
    for (const int* q = g.begin(v); q != g.end(v); ++q) {
      const int lq = local[static_cast<std::size_t>(*q)];
      if (lq >= 0) s.adj[static_cast<std::size_t>(at++)] = lq;
    }
  }
  return s;
}

}  // namespace

std::vector<int> kway_partition(const Adjacency& g, int n_parts,
                                std::uint64_t seed, int refine_passes) {
  CAGMRES_REQUIRE(n_parts >= 1, "need at least one part");
  const int n = g.n;
  std::vector<int> part(static_cast<std::size_t>(n), -1);
  if (n_parts == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  const int cap = (n + n_parts - 1) / n_parts;
  std::vector<int> size(static_cast<std::size_t>(n_parts), 0);
  std::vector<std::deque<int>> frontier(static_cast<std::size_t>(n_parts));
  const std::vector<int> seeds = spread_seeds(g, n_parts, seed);
  for (int p = 0; p < n_parts; ++p) {
    const int s = seeds[static_cast<std::size_t>(p)];
    if (part[static_cast<std::size_t>(s)] < 0) {
      part[static_cast<std::size_t>(s)] = p;
      ++size[static_cast<std::size_t>(p)];
      frontier[static_cast<std::size_t>(p)].push_back(s);
    }
  }

  // Balanced synchronous region growing: parts take turns expanding their
  // BFS frontier one vertex at a time until full.
  int unassigned = n;
  for (const int s : part) {
    if (s >= 0) --unassigned;
  }
  bool progress = true;
  while (unassigned > 0 && progress) {
    progress = false;
    for (int p = 0; p < n_parts; ++p) {
      if (size[static_cast<std::size_t>(p)] >= cap) continue;
      auto& fq = frontier[static_cast<std::size_t>(p)];
      while (!fq.empty() && size[static_cast<std::size_t>(p)] < cap) {
        const int v = fq.front();
        // Claim one unassigned neighbor of v; rotate v to the back when its
        // neighborhood is exhausted.
        bool claimed = false;
        for (const int* q = g.begin(v); q != g.end(v); ++q) {
          if (part[static_cast<std::size_t>(*q)] < 0) {
            part[static_cast<std::size_t>(*q)] = p;
            ++size[static_cast<std::size_t>(p)];
            fq.push_back(*q);
            --unassigned;
            claimed = true;
            progress = true;
            break;
          }
        }
        if (claimed) break;
        fq.pop_front();
      }
    }
  }
  // Disconnected leftovers: round-robin into the least-loaded parts.
  if (unassigned > 0) {
    for (int v = 0; v < n; ++v) {
      if (part[static_cast<std::size_t>(v)] >= 0) continue;
      const int p = static_cast<int>(
          std::min_element(size.begin(), size.end()) - size.begin());
      part[static_cast<std::size_t>(v)] = p;
      ++size[static_cast<std::size_t>(p)];
    }
  }

  // FM-style refinement: move boundary vertices to the neighboring part
  // with the largest positive gain, respecting the balance cap.
  std::vector<int> conn(static_cast<std::size_t>(n_parts), 0);
  const int slack_cap = cap + cap / 20 + 1;
  for (int pass = 0; pass < refine_passes; ++pass) {
    int moves = 0;
    for (int v = 0; v < n; ++v) {
      const int pv = part[static_cast<std::size_t>(v)];
      std::fill(conn.begin(), conn.end(), 0);
      bool boundary = false;
      for (const int* q = g.begin(v); q != g.end(v); ++q) {
        const int pq = part[static_cast<std::size_t>(*q)];
        ++conn[static_cast<std::size_t>(pq)];
        if (pq != pv) boundary = true;
      }
      if (!boundary) continue;
      int best = pv;
      int best_gain = 0;
      for (int p = 0; p < n_parts; ++p) {
        if (p == pv || conn[static_cast<std::size_t>(p)] == 0) continue;
        if (size[static_cast<std::size_t>(p)] + 1 > slack_cap) continue;
        const int gain = conn[static_cast<std::size_t>(p)] -
                         conn[static_cast<std::size_t>(pv)];
        if (gain > best_gain ||
            (gain == best_gain && best != pv &&
             size[static_cast<std::size_t>(p)] <
                 size[static_cast<std::size_t>(best)])) {
          best = p;
          best_gain = gain;
        }
      }
      if (best != pv && size[static_cast<std::size_t>(pv)] > 1) {
        part[static_cast<std::size_t>(v)] = best;
        --size[static_cast<std::size_t>(pv)];
        ++size[static_cast<std::size_t>(best)];
        ++moves;
      }
    }
    if (moves == 0) break;
  }
  return part;
}

Partition make_partition(const sparse::CsrMatrix& a, int n_parts,
                         Ordering scheme, std::uint64_t seed, int n_nodes) {
  CAGMRES_REQUIRE(a.n_rows == a.n_cols, "partition needs a square matrix");
  CAGMRES_REQUIRE(n_parts >= 1, "need at least one part");
  const int n = a.n_rows;
  Partition out;
  out.scheme = scheme;
  out.n_parts = n_parts;

  switch (scheme) {
    case Ordering::kNatural: {
      out.perm.resize(static_cast<std::size_t>(n));
      std::iota(out.perm.begin(), out.perm.end(), 0);
      break;
    }
    case Ordering::kRcm: {
      out.perm = rcm_ordering(build_adjacency(a));
      break;
    }
    case Ordering::kKway: {
      const Adjacency g = build_adjacency(a);
      std::vector<int> part;
      if (n_nodes > 1 && n_nodes < n_parts && n_parts % n_nodes == 0) {
        // Two-level node-first split: k-way into node bands (so the
        // expensive inter-node cut is minimized over the whole graph
        // first), then each node's induced subgraph k-way into its
        // devices. Part ids come out node-major — part d lands on node
        // d / (n_parts / n_nodes), matching Topology::node_of — so halo
        // edges between devices of one node stay on the peer tier.
        // Keep the node assignment separate from the final part ids: the
        // per-node loop writes ids 0..per-1 for node 0, which would alias
        // later nodes' labels if it scanned the same array it rewrites.
        const std::vector<int> node_of = kway_partition(g, n_nodes, seed);
        part.assign(static_cast<std::size_t>(n), -1);
        const int per = n_parts / n_nodes;
        std::vector<int> local(static_cast<std::size_t>(n), -1);
        for (int k = 0; k < n_nodes; ++k) {
          std::vector<int> verts;
          for (int v = 0; v < n; ++v) {
            if (node_of[static_cast<std::size_t>(v)] == k) {
              local[static_cast<std::size_t>(v)] =
                  static_cast<int>(verts.size());
              verts.push_back(v);
            }
          }
          const Adjacency sg = induced_subgraph(g, verts, local);
          const std::vector<int> sub = kway_partition(
              sg, per, seed + static_cast<std::uint64_t>(k) + 1);
          for (std::size_t i = 0; i < verts.size(); ++i) {
            part[static_cast<std::size_t>(verts[i])] = k * per + sub[i];
          }
          for (const int v : verts) local[static_cast<std::size_t>(v)] = -1;
        }
      } else {
        part = kway_partition(g, n_parts, seed);
      }
      // Order vertices by part; within a part keep original order (stable),
      // which preserves whatever locality the input had.
      out.perm.reserve(static_cast<std::size_t>(n));
      out.offsets.assign(static_cast<std::size_t>(n_parts) + 1, 0);
      for (int p = 0; p < n_parts; ++p) {
        for (int v = 0; v < n; ++v) {
          if (part[static_cast<std::size_t>(v)] == p) out.perm.push_back(v);
        }
        out.offsets[static_cast<std::size_t>(p) + 1] =
            static_cast<int>(out.perm.size());
      }
      return out;
    }
  }
  // Natural / RCM: contiguous near-equal row blocks.
  out.offsets.resize(static_cast<std::size_t>(n_parts) + 1);
  for (int p = 0; p <= n_parts; ++p) {
    out.offsets[static_cast<std::size_t>(p)] =
        static_cast<int>((static_cast<std::int64_t>(n) * p) / n_parts);
  }
  return out;
}

std::int64_t cross_node_edges(const sparse::CsrMatrix& a, const Partition& p,
                              int n_nodes) {
  CAGMRES_REQUIRE(n_nodes >= 1 && p.n_parts % n_nodes == 0,
                  "cross_node_edges: nodes must tile the parts");
  const int per = p.n_parts / n_nodes;
  const int n = a.n_rows;
  // node of each ORIGINAL row: invert the permutation through the offsets.
  std::vector<int> node(static_cast<std::size_t>(n), 0);
  for (int d = 0; d < p.n_parts; ++d) {
    for (int i = p.offsets[static_cast<std::size_t>(d)];
         i < p.offsets[static_cast<std::size_t>(d) + 1]; ++i) {
      node[static_cast<std::size_t>(p.perm[static_cast<std::size_t>(i)])] =
          d / per;
    }
  }
  const Adjacency g = build_adjacency(a);
  std::int64_t cut = 0;
  for (int v = 0; v < n; ++v) {
    for (const int* q = g.begin(v); q != g.end(v); ++q) {
      if (*q > v &&
          node[static_cast<std::size_t>(v)] != node[static_cast<std::size_t>(*q)]) {
        ++cut;
      }
    }
  }
  return cut;
}

}  // namespace cagmres::graph
