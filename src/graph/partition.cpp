#include "graph/partition.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/bfs.hpp"
#include "graph/rcm.hpp"

namespace cagmres::graph {

Ordering parse_ordering(const std::string& name) {
  if (name == "natural" || name == "nat") return Ordering::kNatural;
  if (name == "rcm") return Ordering::kRcm;
  if (name == "kway" || name == "kwy") return Ordering::kKway;
  throw Error("unknown ordering: " + name + " (expected natural|rcm|kway)");
}

std::string to_string(Ordering o) {
  switch (o) {
    case Ordering::kNatural:
      return "natural";
    case Ordering::kRcm:
      return "rcm";
    case Ordering::kKway:
      return "kway";
  }
  return "?";
}

namespace {

/// Picks n_parts seeds spread across the graph: a random first seed, then
/// repeatedly the vertex furthest (in BFS distance) from all chosen seeds.
std::vector<int> spread_seeds(const Adjacency& g, int n_parts,
                              std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b9u + 1);
  std::vector<int> seeds;
  seeds.push_back(
      static_cast<int>(rng.bounded(static_cast<std::uint64_t>(g.n))));
  while (static_cast<int>(seeds.size()) < n_parts) {
    const LevelStructure ls = bfs_levels(g, seeds);
    int far = -1;
    int far_level = -1;
    for (int v = 0; v < g.n; ++v) {
      const int l = ls.level[static_cast<std::size_t>(v)];
      if (l > far_level) {
        far = v;
        far_level = l;
      }
    }
    // Disconnected leftovers have level -1; BFS never reaches them, so the
    // max search above still finds a valid vertex (level -1 beats nothing
    // only if everything is reached — then fall back to any vertex).
    if (far_level <= 0) {
      far = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(g.n)));
    }
    seeds.push_back(far);
  }
  return seeds;
}

}  // namespace

std::vector<int> kway_partition(const Adjacency& g, int n_parts,
                                std::uint64_t seed, int refine_passes) {
  CAGMRES_REQUIRE(n_parts >= 1, "need at least one part");
  const int n = g.n;
  std::vector<int> part(static_cast<std::size_t>(n), -1);
  if (n_parts == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  const int cap = (n + n_parts - 1) / n_parts;
  std::vector<int> size(static_cast<std::size_t>(n_parts), 0);
  std::vector<std::deque<int>> frontier(static_cast<std::size_t>(n_parts));
  const std::vector<int> seeds = spread_seeds(g, n_parts, seed);
  for (int p = 0; p < n_parts; ++p) {
    const int s = seeds[static_cast<std::size_t>(p)];
    if (part[static_cast<std::size_t>(s)] < 0) {
      part[static_cast<std::size_t>(s)] = p;
      ++size[static_cast<std::size_t>(p)];
      frontier[static_cast<std::size_t>(p)].push_back(s);
    }
  }

  // Balanced synchronous region growing: parts take turns expanding their
  // BFS frontier one vertex at a time until full.
  int unassigned = n;
  for (const int s : part) {
    if (s >= 0) --unassigned;
  }
  bool progress = true;
  while (unassigned > 0 && progress) {
    progress = false;
    for (int p = 0; p < n_parts; ++p) {
      if (size[static_cast<std::size_t>(p)] >= cap) continue;
      auto& fq = frontier[static_cast<std::size_t>(p)];
      while (!fq.empty() && size[static_cast<std::size_t>(p)] < cap) {
        const int v = fq.front();
        // Claim one unassigned neighbor of v; rotate v to the back when its
        // neighborhood is exhausted.
        bool claimed = false;
        for (const int* q = g.begin(v); q != g.end(v); ++q) {
          if (part[static_cast<std::size_t>(*q)] < 0) {
            part[static_cast<std::size_t>(*q)] = p;
            ++size[static_cast<std::size_t>(p)];
            fq.push_back(*q);
            --unassigned;
            claimed = true;
            progress = true;
            break;
          }
        }
        if (claimed) break;
        fq.pop_front();
      }
    }
  }
  // Disconnected leftovers: round-robin into the least-loaded parts.
  if (unassigned > 0) {
    for (int v = 0; v < n; ++v) {
      if (part[static_cast<std::size_t>(v)] >= 0) continue;
      const int p = static_cast<int>(
          std::min_element(size.begin(), size.end()) - size.begin());
      part[static_cast<std::size_t>(v)] = p;
      ++size[static_cast<std::size_t>(p)];
    }
  }

  // FM-style refinement: move boundary vertices to the neighboring part
  // with the largest positive gain, respecting the balance cap.
  std::vector<int> conn(static_cast<std::size_t>(n_parts), 0);
  const int slack_cap = cap + cap / 20 + 1;
  for (int pass = 0; pass < refine_passes; ++pass) {
    int moves = 0;
    for (int v = 0; v < n; ++v) {
      const int pv = part[static_cast<std::size_t>(v)];
      std::fill(conn.begin(), conn.end(), 0);
      bool boundary = false;
      for (const int* q = g.begin(v); q != g.end(v); ++q) {
        const int pq = part[static_cast<std::size_t>(*q)];
        ++conn[static_cast<std::size_t>(pq)];
        if (pq != pv) boundary = true;
      }
      if (!boundary) continue;
      int best = pv;
      int best_gain = 0;
      for (int p = 0; p < n_parts; ++p) {
        if (p == pv || conn[static_cast<std::size_t>(p)] == 0) continue;
        if (size[static_cast<std::size_t>(p)] + 1 > slack_cap) continue;
        const int gain = conn[static_cast<std::size_t>(p)] -
                         conn[static_cast<std::size_t>(pv)];
        if (gain > best_gain ||
            (gain == best_gain && best != pv &&
             size[static_cast<std::size_t>(p)] <
                 size[static_cast<std::size_t>(best)])) {
          best = p;
          best_gain = gain;
        }
      }
      if (best != pv && size[static_cast<std::size_t>(pv)] > 1) {
        part[static_cast<std::size_t>(v)] = best;
        --size[static_cast<std::size_t>(pv)];
        ++size[static_cast<std::size_t>(best)];
        ++moves;
      }
    }
    if (moves == 0) break;
  }
  return part;
}

Partition make_partition(const sparse::CsrMatrix& a, int n_parts,
                         Ordering scheme, std::uint64_t seed) {
  CAGMRES_REQUIRE(a.n_rows == a.n_cols, "partition needs a square matrix");
  CAGMRES_REQUIRE(n_parts >= 1, "need at least one part");
  const int n = a.n_rows;
  Partition out;
  out.scheme = scheme;
  out.n_parts = n_parts;

  switch (scheme) {
    case Ordering::kNatural: {
      out.perm.resize(static_cast<std::size_t>(n));
      std::iota(out.perm.begin(), out.perm.end(), 0);
      break;
    }
    case Ordering::kRcm: {
      out.perm = rcm_ordering(build_adjacency(a));
      break;
    }
    case Ordering::kKway: {
      const Adjacency g = build_adjacency(a);
      const std::vector<int> part = kway_partition(g, n_parts, seed);
      // Order vertices by part; within a part keep original order (stable),
      // which preserves whatever locality the input had.
      out.perm.reserve(static_cast<std::size_t>(n));
      out.offsets.assign(static_cast<std::size_t>(n_parts) + 1, 0);
      for (int p = 0; p < n_parts; ++p) {
        for (int v = 0; v < n; ++v) {
          if (part[static_cast<std::size_t>(v)] == p) out.perm.push_back(v);
        }
        out.offsets[static_cast<std::size_t>(p) + 1] =
            static_cast<int>(out.perm.size());
      }
      return out;
    }
  }
  // Natural / RCM: contiguous near-equal row blocks.
  out.offsets.resize(static_cast<std::size_t>(n_parts) + 1);
  for (int p = 0; p <= n_parts; ++p) {
    out.offsets[static_cast<std::size_t>(p)] =
        static_cast<int>((static_cast<std::int64_t>(n) * p) / n_parts);
  }
  return out;
}

}  // namespace cagmres::graph
