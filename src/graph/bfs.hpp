// Breadth-first search utilities: level structures and peripheral vertices.
#pragma once

#include <vector>

#include "graph/adjacency.hpp"

namespace cagmres::graph {

/// Level structure rooted at a seed set: level[v] = BFS distance from the
/// seeds, or -1 if unreachable. `height` is the largest level reached.
struct LevelStructure {
  std::vector<int> level;
  int height = 0;
  int reached = 0;  ///< number of reachable vertices (including seeds)
};

/// BFS from multiple seeds (all at level 0).
LevelStructure bfs_levels(const Adjacency& g, const std::vector<int>& seeds);

/// BFS from a single seed.
LevelStructure bfs_levels(const Adjacency& g, int seed);

/// George-Liu pseudo-peripheral vertex heuristic starting from `start`:
/// repeatedly jump to a minimum-degree vertex in the last BFS level until
/// the eccentricity stops growing. Used to pick good RCM roots.
int pseudo_peripheral_vertex(const Adjacency& g, int start);

}  // namespace cagmres::graph
