#include "graph/adjacency.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cagmres::graph {

Adjacency build_adjacency(const sparse::CsrMatrix& a) {
  CAGMRES_REQUIRE(a.n_rows == a.n_cols, "adjacency needs a square matrix");
  const int n = a.n_rows;
  // Count undirected edges by bucketing (i,j) and (j,i) for every stored
  // off-diagonal entry, then dedupe per-vertex.
  std::vector<std::vector<int>> nbr(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      const int j = a.col_idx[static_cast<std::size_t>(k)];
      if (j == i) continue;
      nbr[static_cast<std::size_t>(i)].push_back(j);
      nbr[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  Adjacency g;
  g.n = n;
  g.xadj.resize(static_cast<std::size_t>(n) + 1);
  g.xadj[0] = 0;
  for (int v = 0; v < n; ++v) {
    auto& list = nbr[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    g.xadj[static_cast<std::size_t>(v) + 1] =
        g.xadj[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(list.size());
  }
  g.adj.resize(static_cast<std::size_t>(g.xadj[static_cast<std::size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    std::copy(nbr[static_cast<std::size_t>(v)].begin(),
              nbr[static_cast<std::size_t>(v)].end(),
              g.adj.begin() + g.xadj[static_cast<std::size_t>(v)]);
  }
  return g;
}

}  // namespace cagmres::graph
