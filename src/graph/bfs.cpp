#include "graph/bfs.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cagmres::graph {

LevelStructure bfs_levels(const Adjacency& g, const std::vector<int>& seeds) {
  LevelStructure ls;
  ls.level.assign(static_cast<std::size_t>(g.n), -1);
  std::vector<int> frontier;
  for (const int s : seeds) {
    CAGMRES_REQUIRE(0 <= s && s < g.n, "seed out of range");
    if (ls.level[static_cast<std::size_t>(s)] < 0) {
      ls.level[static_cast<std::size_t>(s)] = 0;
      frontier.push_back(s);
      ++ls.reached;
    }
  }
  std::vector<int> next;
  int depth = 0;
  while (!frontier.empty()) {
    next.clear();
    for (const int v : frontier) {
      for (const int* p = g.begin(v); p != g.end(v); ++p) {
        if (ls.level[static_cast<std::size_t>(*p)] < 0) {
          ls.level[static_cast<std::size_t>(*p)] = depth + 1;
          next.push_back(*p);
          ++ls.reached;
        }
      }
    }
    if (!next.empty()) ++depth;
    frontier.swap(next);
  }
  ls.height = depth;
  return ls;
}

LevelStructure bfs_levels(const Adjacency& g, int seed) {
  return bfs_levels(g, std::vector<int>{seed});
}

int pseudo_peripheral_vertex(const Adjacency& g, int start) {
  CAGMRES_REQUIRE(0 <= start && start < g.n, "start out of range");
  int v = start;
  LevelStructure ls = bfs_levels(g, v);
  while (true) {
    // Minimum-degree vertex in the deepest level.
    int best = -1;
    int best_deg = g.n + 1;
    for (int u = 0; u < g.n; ++u) {
      if (ls.level[static_cast<std::size_t>(u)] == ls.height &&
          g.degree(u) < best_deg) {
        best = u;
        best_deg = g.degree(u);
      }
    }
    if (best < 0) return v;
    LevelStructure ls2 = bfs_levels(g, best);
    if (ls2.height <= ls.height) return best;
    v = best;
    ls = std::move(ls2);
  }
}

}  // namespace cagmres::graph
