#include "graph/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cagmres::graph {

std::int64_t edge_cut(const Adjacency& g, const std::vector<int>& part) {
  CAGMRES_REQUIRE(static_cast<int>(part.size()) == g.n, "part size mismatch");
  std::int64_t cut = 0;
  for (int v = 0; v < g.n; ++v) {
    for (const int* q = g.begin(v); q != g.end(v); ++q) {
      if (*q > v && part[static_cast<std::size_t>(v)] !=
                        part[static_cast<std::size_t>(*q)]) {
        ++cut;
      }
    }
  }
  return cut;
}

double imbalance(const std::vector<int>& part, int n_parts) {
  const std::vector<int> sizes = part_sizes(part, n_parts);
  const int max_size = *std::max_element(sizes.begin(), sizes.end());
  const double ideal =
      static_cast<double>(part.size()) / static_cast<double>(n_parts);
  return (ideal > 0.0) ? static_cast<double>(max_size) / ideal : 1.0;
}

std::vector<int> part_sizes(const std::vector<int>& part, int n_parts) {
  std::vector<int> sizes(static_cast<std::size_t>(n_parts), 0);
  for (const int p : part) {
    CAGMRES_REQUIRE(0 <= p && p < n_parts, "part id out of range");
    ++sizes[static_cast<std::size_t>(p)];
  }
  return sizes;
}

}  // namespace cagmres::graph
