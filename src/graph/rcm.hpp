// Reverse Cuthill-McKee bandwidth-reducing ordering (the paper's "RCM",
// played by HSL MC60 there).
#pragma once

#include <vector>

#include "graph/adjacency.hpp"

namespace cagmres::graph {

/// Computes the RCM permutation of the graph. perm[i] is the original vertex
/// placed at position i of the new ordering. Disconnected components are
/// each ordered from their own pseudo-peripheral root.
std::vector<int> rcm_ordering(const Adjacency& g);

}  // namespace cagmres::graph
