// Row distribution of the matrix across devices (paper §IV).
//
// The paper distributes A block-row-wise and compares three schemes:
//  - natural: equal row blocks of the matrix as given;
//  - RCM:     equal row blocks after reverse Cuthill-McKee reordering;
//  - KWY:     METIS-style k-way graph partitioning that minimizes edge cut
//             and balances the parts.
// All three are expressed the same way here: a symmetric permutation plus
// contiguous block offsets, so MPK and the solvers are scheme-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/adjacency.hpp"
#include "sparse/csr.hpp"

namespace cagmres::graph {

/// Row distribution scheme (paper Figs. 6-8 legend: NAT / RCM / KWY).
enum class Ordering { kNatural, kRcm, kKway };

/// Parses "natural"/"nat", "rcm", "kway"/"kwy" (case-sensitive, lowercase).
Ordering parse_ordering(const std::string& name);
std::string to_string(Ordering o);

/// A block-row distribution: apply `perm` symmetrically, then rows
/// [offsets[d], offsets[d+1]) of the permuted matrix live on device d.
struct Partition {
  Ordering scheme = Ordering::kNatural;
  int n_parts = 1;
  std::vector<int> perm;     ///< permuted row i = original row perm[i]
  std::vector<int> offsets;  ///< size n_parts + 1, offsets[0]=0, back()=n

  int part_rows(int d) const {
    return offsets[static_cast<std::size_t>(d) + 1] -
           offsets[static_cast<std::size_t>(d)];
  }
};

/// Builds a Partition of `a` into n_parts blocks under the given scheme.
/// `seed` feeds the KWY seed selection; natural and RCM ignore it.
///
/// When the parts back a multi-node Topology, pass its node count as
/// `n_nodes`: KWY then splits node-first (k-way into n_nodes bands, each
/// band k-way into its devices, node-major part ids), so halo edges
/// concentrate inside nodes and as few as possible cross the inter-node
/// link. Natural and RCM blocks are contiguous and therefore node-
/// contiguous already; they ignore the parameter, as does a shape that
/// does not tile (n_parts % n_nodes != 0).
Partition make_partition(const sparse::CsrMatrix& a, int n_parts,
                         Ordering scheme, std::uint64_t seed = 0,
                         int n_nodes = 1);

/// Number of adjacency edges of `a` whose endpoints land on different
/// nodes when parts are grouped node-major into n_nodes equal groups —
/// the halo traffic that must cross the inter-node link under MPK.
std::int64_t cross_node_edges(const sparse::CsrMatrix& a, const Partition& p,
                              int n_nodes);

/// Raw k-way partitioner on a graph: returns part[v] in [0, n_parts).
/// Greedy balanced region growing from spread seeds followed by
/// boundary-refinement passes that reduce the edge cut.
std::vector<int> kway_partition(const Adjacency& g, int n_parts,
                                std::uint64_t seed = 0, int refine_passes = 8);

}  // namespace cagmres::graph
