// Undirected adjacency structure of a sparse matrix pattern.
//
// Reordering (RCM) and partitioning (KWY) both operate on the symmetrized
// pattern of A (the adjacency graph of A + A^T, no self loops), matching how
// HSL MC60 and METIS consume matrices in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace cagmres::graph {

/// Symmetric adjacency graph in CSR-of-pattern form.
struct Adjacency {
  int n = 0;
  std::vector<std::int64_t> xadj;  ///< size n + 1
  std::vector<int> adj;            ///< neighbor lists, no self loops

  int degree(int v) const {
    return static_cast<int>(xadj[static_cast<std::size_t>(v) + 1] -
                            xadj[static_cast<std::size_t>(v)]);
  }
  /// Neighbors of v as a (begin, end) pointer pair.
  const int* begin(int v) const {
    return adj.data() + xadj[static_cast<std::size_t>(v)];
  }
  const int* end(int v) const {
    return adj.data() + xadj[static_cast<std::size_t>(v) + 1];
  }
};

/// Builds the adjacency graph of A + A^T (square A), dropping self loops.
Adjacency build_adjacency(const sparse::CsrMatrix& a);

}  // namespace cagmres::graph
