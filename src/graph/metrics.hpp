// Partition quality metrics (edge cut, balance) for the experiment reports.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/adjacency.hpp"

namespace cagmres::graph {

/// Number of graph edges whose endpoints land in different parts.
std::int64_t edge_cut(const Adjacency& g, const std::vector<int>& part);

/// Load imbalance: max part size / ideal part size (1.0 = perfect).
double imbalance(const std::vector<int>& part, int n_parts);

/// Part sizes histogram.
std::vector<int> part_sizes(const std::vector<int>& part, int n_parts);

}  // namespace cagmres::graph
