#include "graph/rcm.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace cagmres::graph {

std::vector<int> rcm_ordering(const Adjacency& g) {
  const int n = g.n;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<int> nbrs;

  for (int comp_start = 0; comp_start < n; ++comp_start) {
    if (visited[static_cast<std::size_t>(comp_start)]) continue;
    const int root = pseudo_peripheral_vertex(g, comp_start);
    // Cuthill-McKee: BFS from the root, children sorted by ascending degree.
    std::size_t head = order.size();
    order.push_back(root);
    visited[static_cast<std::size_t>(root)] = 1;
    while (head < order.size()) {
      const int v = order[head++];
      nbrs.assign(g.begin(v), g.end(v));
      std::sort(nbrs.begin(), nbrs.end(), [&](int a, int b) {
        const int da = g.degree(a);
        const int db = g.degree(b);
        if (da != db) return da < db;
        return a < b;
      });
      for (const int u : nbrs) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = 1;
          order.push_back(u);
        }
      }
    }
  }
  // Reverse (the "R" of RCM): shrinks the profile, not just the bandwidth.
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace cagmres::graph
