// Matrix powers kernel execution (paper §IV-A, Fig. 4).
//
// MpkExecutor::apply generates steps new basis vectors from one starting
// column with a single halo exchange:
//   v_{c0+k} = (A - theta_k I) v_{c0+k-1}  (+ beta_k^2 v_{c0+k-2} for the
//   second member of a complex conjugate shift pair — Hoemmen §7.3.2's
//   real-arithmetic Newton basis).
// theta = 0 everywhere gives the monomial basis. MpkExecutor::spmv runs the
// plain one-hop distributed SpMV on an s=1 plan (the GMRES baseline).
#pragma once

#include <vector>

#include "mpk/plan.hpp"
#include "sim/machine.hpp"

namespace cagmres::mpk {

/// Newton-basis shift sequence; null pointers mean the monomial basis.
/// re/im must hold at least `steps` entries; a complex conjugate pair
/// occupies two adjacent slots (im > 0 then im < 0) and must not straddle
/// an apply() boundary (core::prepare_block_shifts enforces this).
struct ShiftSeq {
  const double* re = nullptr;
  const double* im = nullptr;
};

/// Executes MPK invocations against a fixed plan, reusing its z-buffers.
class MpkExecutor {
 public:
  explicit MpkExecutor(const MpkPlan& plan);

  const MpkPlan& plan() const { return *plan_; }

  /// Generates v(:, c0+1 .. c0+steps) from v(:, c0). Requires
  /// steps <= plan.s and c0 + steps < v.cols(). Charges all kernels and the
  /// exchange to `machine` under phase "mpk".
  void apply(sim::Machine& machine, sim::DistMultiVec& v, int c0, int steps,
             ShiftSeq shifts = {});

  /// y(:, ycol) := A x(:, xcol) with the standard one-hop halo exchange.
  /// Requires a plan built with s == 1. Charged under phase "spmv".
  void spmv(sim::Machine& machine, sim::DistMultiVec& v, int xcol, int ycol);

  /// Cross-multivector variant: y(:, ycol) := A x(:, xcol). Used by
  /// pipelined GMRES, whose lookahead products live in a second basis.
  void spmv(sim::Machine& machine, const sim::DistMultiVec& x, int xcol,
            sim::DistMultiVec& y, int ycol);

  /// Lazily-allocated device-resident scratch multivector split like the
  /// plan (at least `cols` columns). The right-preconditioned solvers stage
  /// M^{-1} v here between the preconditioner apply and the SpMV, so they
  /// need no extra distributed state of their own.
  sim::DistMultiVec& stage(int cols);

 private:
  /// Halo exchange of column c0 into z-buffer `slot` of every device.
  /// Dispatches on machine.sync_mode(): the barrier path is the seed's
  /// gather / host_wait_all / scatter, the event path hands each consumer
  /// only the senders it reads (exchange_events).
  void exchange(sim::Machine& machine, const sim::DistMultiVec& v, int c0,
                int slot);
  void exchange_events(sim::Machine& machine, const sim::DistMultiVec& v,
                       int c0, int slot);

  /// Rebuilds the per-sender node split (send_local_bytes_ /
  /// send_cross_bytes_) if the machine's topology changed since the last
  /// exchange. No-op on a flat machine.
  void build_node_split(const sim::Machine& machine);

  const MpkPlan* plan_;
  sim::DistMultiVec stage_;  ///< see stage(); empty until first use
  // Triple-buffered working vectors per device (pair shifts read two back).
  std::vector<std::vector<std::vector<double>>> z_;
  std::vector<std::vector<double>> pack_buf_;
  // Distinct sending devices whose packed entries device d consumes, in
  // ascending order (derived once from ext_owner; drives the event path).
  std::vector<std::vector<int>> ext_owners_;
  // Multi-node sender split (build_node_split): bytes of each sender's
  // packed rows read by same-node consumers (shipped d2h_node, peer tier)
  // vs off-node consumers (shipped d2h, which prices the network hop).
  // A row read from both sides counts in both — two honest messages.
  std::vector<double> send_local_bytes_;
  std::vector<double> send_cross_bytes_;
  int split_nodes_ = 0;  ///< topology key the split was built for
  int split_gpn_ = 0;
};

}  // namespace cagmres::mpk
