#include "mpk/exec.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::mpk {

namespace {

/// Injected transient kernel fault on one of the executor's inline charged
/// loops (boundary SpMV, fused shift AXPY, halo expand): NaN-poison the
/// region that loop produced, mirroring sim/device_blas.cpp.
void poison(double* p, int n) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < n; ++i) p[i] = nan;
}

/// Consumer side of the multi-node halo split: bytes of device d's external slice
/// owned by devices on d's own node — those arrive over the intra-node
/// link; the rest keeps the host (+network) route.
double node_local_ext_bytes(const sim::Machine& m, int d,
                            const std::vector<int>& ext_owner) {
  const int myn = m.node_of(d);
  double bytes = 0.0;
  for (const int o : ext_owner) {
    if (m.node_of(o) == myn) bytes += 8.0;
  }
  return bytes;
}

}  // namespace

MpkExecutor::MpkExecutor(const MpkPlan& plan) : plan_(&plan) {
  const int ng = plan.n_devices();
  z_.resize(static_cast<std::size_t>(ng));
  pack_buf_.resize(static_cast<std::size_t>(ng));
  ext_owners_.resize(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    z_[static_cast<std::size_t>(d)].assign(
        3, std::vector<double>(static_cast<std::size_t>(dp.z_size()), 0.0));
    pack_buf_[static_cast<std::size_t>(d)].assign(dp.send_local_rows.size(),
                                                  0.0);
    // ext_owner lists one owner per external index in hop order; reduce it
    // to the set of distinct senders this device depends on.
    std::vector<char> seen(static_cast<std::size_t>(ng), 0);
    for (const int o : dp.ext_owner) seen[static_cast<std::size_t>(o)] = 1;
    auto& owners = ext_owners_[static_cast<std::size_t>(d)];
    for (int o = 0; o < ng; ++o) {
      if (seen[static_cast<std::size_t>(o)] != 0) owners.push_back(o);
    }
  }
}

void MpkExecutor::build_node_split(const sim::Machine& m) {
  const sim::Topology& topo = m.topology();
  if (split_nodes_ == topo.n_nodes && split_gpn_ == topo.gpus_per_node) {
    return;
  }
  split_nodes_ = topo.n_nodes;
  split_gpn_ = topo.gpus_per_node;
  const MpkPlan& plan = *plan_;
  const int ng = plan.n_devices();
  send_local_bytes_.assign(static_cast<std::size_t>(ng), 0.0);
  send_cross_bytes_.assign(static_cast<std::size_t>(ng), 0.0);
  // Distinct owned rows each sender ships to same-node vs off-node readers
  // (2-bit marks per owned row; a row read from both sides goes in both
  // messages). Walking every consumer's ext list once is O(plan size).
  std::vector<std::vector<char>> mark(static_cast<std::size_t>(ng));
  for (int o = 0; o < ng; ++o) {
    mark[static_cast<std::size_t>(o)].assign(
        static_cast<std::size_t>(plan.dev[static_cast<std::size_t>(o)].owned),
        0);
  }
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    const int myn = m.node_of(d);
    for (std::size_t e = 0; e < dp.ext_owner.size(); ++e) {
      const int o = dp.ext_owner[e];
      const auto r = static_cast<std::size_t>(dp.ext_owner_row[e]);
      const char side = (m.node_of(o) == myn) ? 1 : 2;
      char& mk = mark[static_cast<std::size_t>(o)][r];
      if ((mk & side) == 0) {
        mk = static_cast<char>(mk | side);
        if (side == 1) {
          send_local_bytes_[static_cast<std::size_t>(o)] += 8.0;
        } else {
          send_cross_bytes_[static_cast<std::size_t>(o)] += 8.0;
        }
      }
    }
  }
}

void MpkExecutor::exchange(sim::Machine& m, const sim::DistMultiVec& v,
                           int c0, int slot) {
  if (m.event_sync()) {
    exchange_events(m, v, c0, slot);
    return;
  }
  const MpkPlan& plan = *plan_;
  const int ng = plan.n_devices();
  const bool hier = m.topology().n_nodes > 1;
  if (hier) build_node_split(m);

  // Gather: each device packs the owned entries other devices need and
  // ships one message to the CPU (Fig. 4 "Setup", first loop). On a
  // multi-node topology the pack splits per sender: rows read on the
  // sender's own node go to node-host memory over the peer link, only the
  // rows an off-node consumer reads travel through the coordinating host
  // (and pay the network hop for remote senders).
  const sim::CodecSpec& cd = m.codec(sim::TrafficClass::kHalo);
  double gathered = 0.0;
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    if (dp.send_local_rows.empty()) continue;
    sim::dev_pack(m, d, dp.send_local_rows, v.col(d, c0),
                  pack_buf_[static_cast<std::size_t>(d)].data());
    if (hier) {
      const double lb = send_local_bytes_[static_cast<std::size_t>(d)];
      const double cb = send_cross_bytes_[static_cast<std::size_t>(d)];
      m.charge_codec(d, cd, (lb + cb) / 8.0);
      if (lb > 0.0) m.d2h_node(d, cd.wire_bytes(lb / 8.0), lb);
      if (cb > 0.0) m.d2h(d, cd.wire_bytes(cb / 8.0), cb);
    } else {
      const double rows = static_cast<double>(dp.send_local_rows.size());
      m.charge_codec(d, cd, rows);
      m.d2h(d, cd.wire_bytes(rows), 8.0 * rows);
    }
    gathered += static_cast<double>(dp.send_local_rows.size());
  }
  m.host_wait_all();
  if (gathered > 0.0) {
    // CPU expands the per-device messages into the full vector w.
    m.charge_host(sim::Kernel::kCopy, 0.0, 16.0 * gathered);
  }

  // Scatter: each device receives its external elements and assembles its
  // local working vector z (Fig. 4 "Setup", third loop).
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    std::vector<double>& zd =
        z_[static_cast<std::size_t>(d)][static_cast<std::size_t>(slot)];
    const int next = static_cast<int>(dp.ext_global.size());
    if (next > 0) {
      if (hier) {
        const double local = node_local_ext_bytes(m, d, dp.ext_owner);
        if (local > 0.0) m.h2d_node(d, cd.wire_bytes(local / 8.0), local);
        if (8.0 * next > local) {
          m.h2d(d, cd.wire_bytes(next - local / 8.0), 8.0 * next - local);
        }
      } else {
        m.h2d(d, cd.wire_bytes(next), 8.0 * next);
      }
      m.charge_codec(d, cd, next);
    }
    sim::dev_copy(m, d, dp.owned, v.col(d, c0), zd.data());
    if (next > 0) {
      // Expand the received buffer into z's external slots. Values are read
      // straight from the owners' blocks (all host memory); the transfer
      // cost was charged above. In this barrier path the host_wait_all of
      // the gather loop drained every owner's stream, so the loop can run
      // inline on the host while the enqueued dev_copy above fills
      // zd[0, owned) — it writes only zd[owned, owned+next). The event path
      // (exchange_events) has no such global drain and must run the expand
      // as a consumer-stream closure behind stream_wait_event instead.
      for (int e = 0; e < next; ++e) {
        zd[static_cast<std::size_t>(dp.owned + e)] =
            v.col(dp.ext_owner[static_cast<std::size_t>(e)],
                  c0)[dp.ext_owner_row[static_cast<std::size_t>(e)]];
      }
      // The coded wire image is modeled on the consumer's assembled external
      // slice (identical in both sync paths and on either side of the
      // hier/flat split, so the halo numerics stay mode-invariant).
      if (cd.active()) cd.roundtrip(zd.data() + dp.owned, next);
      m.charge_device(d, sim::Kernel::kPack, 0.0, 20.0 * next);
      if (m.consume_kernel_fault(d)) poison(zd.data() + dp.owned, next);
    }
  }
}

void MpkExecutor::exchange_events(sim::Machine& m, const sim::DistMultiVec& v,
                                  int c0, int slot) {
  // Same messages, charges, and arithmetic as the barrier path, but the
  // dependency structure is per-buffer: consumer d waits only on the pack
  // messages of the senders it actually reads (ext_owners_[d]), never on
  // the rest of the machine. With >= 3 devices in a 1D partition that turns
  // the exchange from a global barrier into a neighbor-wise pipeline — the
  // measured charged-time win in BENCH_wallclock.json's event_overlap.
  const MpkPlan& plan = *plan_;
  const int ng = plan.n_devices();
  const bool hier = m.topology().n_nodes > 1;
  if (hier) build_node_split(m);

  // Gather, recording one event per sender message. On a multi-node
  // topology each sender ships the split pair from the barrier path —
  // same-node rows over the peer link, off-node rows through the
  // coordinating host — with an event after each, so a same-node consumer
  // chains off the cheap intra-node message and never waits behind the
  // sender's network hop. The intra-node message goes first: the stream is
  // in-order, so the opposite order would price the hop into the peer
  // event anyway.
  const sim::CodecSpec& cd = m.codec(sim::TrafficClass::kHalo);
  std::vector<sim::Event> pk_local(static_cast<std::size_t>(ng));
  std::vector<sim::Event> pk_cross(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    if (dp.send_local_rows.empty()) continue;
    sim::dev_pack(m, d, dp.send_local_rows, v.col(d, c0),
                  pack_buf_[static_cast<std::size_t>(d)].data());
    if (hier) {
      const double lb = send_local_bytes_[static_cast<std::size_t>(d)];
      const double cb = send_cross_bytes_[static_cast<std::size_t>(d)];
      m.charge_codec(d, cd, (lb + cb) / 8.0);
      if (lb > 0.0) m.d2h_node(d, cd.wire_bytes(lb / 8.0), lb);
      pk_local[static_cast<std::size_t>(d)] = m.record_event(d);
      if (cb > 0.0) m.d2h(d, cd.wire_bytes(cb / 8.0), cb);
      pk_cross[static_cast<std::size_t>(d)] = m.record_event(d);
    } else {
      const double rows = static_cast<double>(dp.send_local_rows.size());
      m.charge_codec(d, cd, rows);
      m.d2h(d, cd.wire_bytes(rows), 8.0 * rows);
      pk_local[static_cast<std::size_t>(d)] = m.record_event(d);
      pk_cross[static_cast<std::size_t>(d)] =
          pk_local[static_cast<std::size_t>(d)];
    }
  }
  // Event a consumer on device d waits on for sender o's packed rows.
  const auto pack_event = [&](int d, int o) -> const sim::Event& {
    const bool same = !hier || m.node_of(o) == m.node_of(d);
    return same ? pk_local[static_cast<std::size_t>(o)]
                : pk_cross[static_cast<std::size_t>(o)];
  };

  // Owned rows never leave their device: assemble them before the host
  // blocks on anyone, so the copy overlaps every in-flight message.
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    std::vector<double>& zd =
        z_[static_cast<std::size_t>(d)][static_cast<std::size_t>(slot)];
    sim::dev_copy(m, d, dp.owned, v.col(d, c0), zd.data());
  }

  // Scatter: per consumer, wait for its senders, expand its slice of the
  // received data on the host, and forward it. The host-side expand is
  // charged per consumer (sum over consumers >= the barrier path's single
  // `gathered` charge, since shared senders count once per reader — the
  // accounting bias runs against the event path, so its win is honest).
  //
  // Consumers are served in device order. Measured against the
  // alternatives (earliest-ready, latest-ready, reversed), device order
  // ties for best on the bench partitions: the host has slack between
  // exchanges, so serving device 0 — the most heavily charged timeline in
  // a 1D partition, hence the machine's critical chain — first is what
  // matters, and device order does exactly that.
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    if (dp.ext_global.empty()) continue;
    std::vector<double>& zd =
        z_[static_cast<std::size_t>(d)][static_cast<std::size_t>(slot)];
    const int next = static_cast<int>(dp.ext_global.size());
    const auto& owners = ext_owners_[static_cast<std::size_t>(d)];
    for (const int o : owners) {
      m.host_wait_event(pack_event(d, o));
    }
    m.charge_host(sim::Kernel::kCopy, 0.0, 16.0 * next);
    if (hier) {
      const double local = node_local_ext_bytes(m, d, dp.ext_owner);
      if (local > 0.0) m.h2d_node(d, cd.wire_bytes(local / 8.0), local);
      if (8.0 * next > local) {
        m.h2d(d, cd.wire_bytes(next - local / 8.0), 8.0 * next - local);
      }
    } else {
      m.h2d(d, cd.wire_bytes(next), 8.0 * next);
    }
    m.charge_codec(d, cd, next);
    // Wall-clock guard for the closure below: it reads the owners' basis
    // blocks, which their pack closures read too, but a late kernel on an
    // owner stream could already be overwriting by then in a future layout;
    // the stream waits pin the closure behind the recorded prefix. Charged,
    // they are free: the h2d above already starts at >= every event time.
    for (const int o : owners) {
      m.stream_wait_event(d, pack_event(d, o));
    }
    m.charge_device(d, sim::Kernel::kPack, 0.0, 20.0 * next);
    const bool hit = m.consume_kernel_fault(d);
    const MpkDevicePlan* dpp = &dp;
    double* zp = zd.data();
    const sim::DistMultiVec* vp = &v;
    const sim::CodecSpec cdv = cd;
    m.run_on_device(d, [=] {
      for (int e = 0; e < next; ++e) {
        zp[static_cast<std::size_t>(dpp->owned + e)] =
            vp->col(dpp->ext_owner[static_cast<std::size_t>(e)],
                    c0)[dpp->ext_owner_row[static_cast<std::size_t>(e)]];
      }
      // Same wire-image model as the barrier path: the codec round trip
      // runs on the consumer's assembled external slice.
      if (cdv.active()) cdv.roundtrip(zp + dpp->owned, next);
      if (hit) poison(zp + dpp->owned, next);
    });
  }
}

void MpkExecutor::apply(sim::Machine& m, sim::DistMultiVec& v, int c0,
                        int steps, ShiftSeq shifts) {
  const MpkPlan& plan = *plan_;
  CAGMRES_REQUIRE(1 <= steps && steps <= plan.s,
                  "steps must be in [1, plan.s]");
  CAGMRES_REQUIRE(c0 >= 0 && c0 + steps < v.cols(), "column range overflow");
  CAGMRES_REQUIRE(v.n_parts() == plan.n_devices(), "layout mismatch");
  sim::PhaseScope phase(m, "mpk");
  // The complex-pair check below can throw mid-loop with device closures
  // still parked on the streams (reading z_ and v); drain on unwind so the
  // caller's fault handler never races a stale SpMV during rollback.
  sim::UnwindDrainGuard unwind_guard(m);
  const int ng = plan.n_devices();

  for (int d = 0; d < ng; ++d) {
    CAGMRES_REQUIRE(v.local_rows(d) == plan.dev[static_cast<std::size_t>(d)].owned,
                    "multivector rows do not match the plan");
  }
  // Slot 0 holds the starting vector (z^(d,1) of Fig. 4).
  exchange(m, v, c0, /*slot=*/0);

  for (int k = 1; k <= steps; ++k) {
    const double theta = (shifts.re != nullptr) ? shifts.re[k - 1] : 0.0;
    const bool pair_second =
        (shifts.im != nullptr) && (shifts.im[k - 1] < 0.0);
    CAGMRES_REQUIRE(!pair_second || (k >= 2 && shifts.im[k - 2] > 0.0),
                    "complex pair straddles the MPK call boundary");
    const double beta2 =
        pair_second ? shifts.im[k - 2] * shifts.im[k - 2] : 0.0;

    for (int d = 0; d < ng; ++d) {
      const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
      auto& bufs = z_[static_cast<std::size_t>(d)];
      const std::vector<double>& zin =
          bufs[static_cast<std::size_t>((k - 1) % 3)];
      std::vector<double>& zout = bufs[static_cast<std::size_t>(k % 3)];
      const std::vector<double>& zprev2 =
          bufs[static_cast<std::size_t>((k + 1) % 3)];  // two steps back

      // Local block multiply (the reused A^(d), ELLPACK on the device).
      if (plan.use_ell) {
        sim::dev_spmv_ell(m, d, dp.local_ell, zin.data(), zout.data());
      } else {
        sim::dev_spmv_csr(m, d, dp.local_csr, zin.data(), zout.data());
      }

      // Boundary rows this step still has to produce (hop <= s-k prefix).
      // Charged here, computed on the device's stream: the closure reads
      // zin (finished earlier on the same in-order stream) and writes zout
      // positions disjoint from the local-block SpMV ahead of it.
      const int brows =
          dp.boundary_rows_at_step[static_cast<std::size_t>(k) - 1];
      if (brows > 0) {
        const double bnnz = static_cast<double>(
            dp.boundary.row_ptr[static_cast<std::size_t>(brows)]);
        m.charge_device(d, sim::Kernel::kSpmvCsr, 2.0 * bnnz,
                        bnnz * 20.0 + 12.0 * brows);
        const bool hit = m.consume_kernel_fault(d);
        const MpkDevicePlan* dpp = &dp;
        const double* zi = zin.data();
        double* zo = zout.data();
        m.run_on_device(d, [=] {
          const auto& b = dpp->boundary;
#pragma omp parallel for schedule(static) if (brows > 1 << 10)
          for (int i = 0; i < brows; ++i) {
            double acc = 0.0;
            const auto lo = b.row_ptr[static_cast<std::size_t>(i)];
            const auto hi = b.row_ptr[static_cast<std::size_t>(i) + 1];
            for (auto p = lo; p < hi; ++p) {
              acc += b.vals[static_cast<std::size_t>(p)] *
                     zi[b.col_idx[static_cast<std::size_t>(p)]];
            }
            zo[dpp->boundary_out_pos[static_cast<std::size_t>(i)]] = acc;
          }
          if (hit) {
            for (int i = 0; i < brows; ++i) {
              zo[dpp->boundary_out_pos[static_cast<std::size_t>(i)]] =
                  std::numeric_limits<double>::quiet_NaN();
            }
          }
        });
      }

      // Newton shift: zout -= theta * zin on every computed position
      // (owned rows plus the boundary prefix), fused into one AXPY charge.
      if (theta != 0.0 || pair_second) {
        const double rows = static_cast<double>(dp.owned + brows);
        m.charge_device(d, sim::Kernel::kAxpy,
                        (pair_second ? 4.0 : 2.0) * rows,
                        (pair_second ? 4.0 : 3.0) * 8.0 * rows);
        const bool hit = m.consume_kernel_fault(d);
        const MpkDevicePlan* dpp = &dp;
        const int owned = dp.owned;
        const double* zi = zin.data();
        const double* zp2 = zprev2.data();
        double* zo = zout.data();
        m.run_on_device(d, [=] {
#pragma omp parallel for schedule(static) if (owned > 1 << 13)
          for (int i = 0; i < owned; ++i) {
            zo[i] -= theta * zi[i];
            if (pair_second) zo[i] += beta2 * zp2[i];
          }
          for (int i = 0; i < brows; ++i) {
            const int pos =
                dpp->boundary_out_pos[static_cast<std::size_t>(i)];
            zo[pos] -= theta * zi[pos];
            if (pair_second) zo[pos] += beta2 * zp2[pos];
          }
          if (hit) poison(zo, owned);
        });
      }

      // Store the owned part as the next basis column (Fig. 4 last line).
      sim::dev_copy(m, d, dp.owned, zout.data(), v.col(d, c0 + k));
    }
  }
}

void MpkExecutor::spmv(sim::Machine& m, sim::DistMultiVec& v, int xcol,
                       int ycol) {
  spmv(m, v, xcol, v, ycol);
}

void MpkExecutor::spmv(sim::Machine& m, const sim::DistMultiVec& x, int xcol,
                       sim::DistMultiVec& y, int ycol) {
  const MpkPlan& plan = *plan_;
  CAGMRES_REQUIRE(plan.s == 1, "spmv requires an s=1 plan");
  CAGMRES_REQUIRE(&x != &y || xcol != ycol, "in-place SpMV not supported");
  sim::PhaseScope phase(m, "spmv");
  const int ng = plan.n_devices();

  exchange(m, x, xcol, /*slot=*/0);
  for (int d = 0; d < ng; ++d) {
    const MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    const double* zin = z_[static_cast<std::size_t>(d)][0].data();
    if (plan.use_ell) {
      sim::dev_spmv_ell(m, d, dp.local_ell, zin, y.col(d, ycol));
    } else {
      sim::dev_spmv_csr(m, d, dp.local_csr, zin, y.col(d, ycol));
    }
  }
}

sim::DistMultiVec& MpkExecutor::stage(int cols) {
  if (stage_.cols() < cols || stage_.n_parts() != plan_->n_devices()) {
    stage_ = sim::DistMultiVec(plan_->rows_per_device(), cols);
  }
  return stage_;
}

}  // namespace cagmres::mpk
