// Boundary ("surface") set computation for the matrix powers kernel
// (paper §IV-A, Fig. 5).
//
// For a device owning rows [row0, row1), the vertices of the adjacency
// graph of A are classified by *hop distance*: hop 0 = owned rows, hop t =
// vertices whose shortest directed path (following row -> column-index
// edges) from an owned row has length t. In the paper's notation,
// delta^(d,k) is exactly the hop-(s-k+1) set, and i^(d,k) is the union of
// hops 0..s-k+1. Organizing by hop makes the per-step dependency a prefix:
// step k of an s-step MPK needs boundary rows of hops 1..s-k.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace cagmres::mpk {

/// Hop-classified dependency sets of one device's row block.
struct BoundarySets {
  int row0 = 0;  ///< first owned row
  int row1 = 0;  ///< one past last owned row
  /// hops[t-1] = sorted global indices at hop distance t, for t = 1..s.
  std::vector<std::vector<int>> hops;

  /// Total number of external indices (all hops).
  int total_external() const;
};

/// Computes the hop sets up to distance s for the block [row0, row1) of `a`.
/// The expansion follows stored column indices of A (the directed pattern),
/// matching the paper's str(a_i,:) recursion.
BoundarySets compute_boundary_sets(const sparse::CsrMatrix& a, int row0,
                                   int row1, int s);

}  // namespace cagmres::mpk
