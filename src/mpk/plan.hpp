// Matrix powers kernel plan: everything the CPU precomputes before the
// iteration begins (paper §IV-A).
//
// For each device the plan holds (all in a device-local index space where
// owned rows come first, followed by external indices in hop order):
//  - the local block A^(d) (owned rows) in ELLPACK for the device SpMV;
//  - the boundary submatrix (rows at hop 1..s-1) as one CSR whose rows are
//    sorted by hop, so the rows step k must multiply are exactly a prefix;
//  - the gather/scatter index lists for the one-shot halo exchange.
// The same plan with s=1 implements the baseline distributed SpMV.
#pragma once

#include <cstdint>
#include <vector>

#include "mpk/stats.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"

namespace cagmres::mpk {

/// Per-device slice of an MpkPlan.
struct MpkDevicePlan {
  int row0 = 0;   ///< first owned global row
  int owned = 0;  ///< number of owned rows

  /// External (non-owned) global indices the device ever needs, hop order.
  std::vector<int> ext_global;
  /// Owning device of each external index.
  std::vector<int> ext_owner;
  /// Row offset of each external index within its owner's block.
  std::vector<int> ext_owner_row;

  sparse::EllMatrix local_ell;  ///< owned rows, device-local column indices
  sparse::CsrMatrix local_csr;  ///< same block in CSR (host/CSR-profile path)

  /// Boundary rows (hops 1..s-1) in hop order, device-local columns.
  sparse::CsrMatrix boundary;
  /// z-buffer position each boundary row's result is scattered to.
  std::vector<int> boundary_out_pos;
  /// boundary_rows_at_step[k-1]: how many leading boundary rows step k
  /// multiplies (rows of hop <= s-k).
  std::vector<int> boundary_rows_at_step;

  /// Owned-local row indices that any other device needs (the pack list for
  /// the gather-to-CPU side of the exchange).
  std::vector<int> send_local_rows;

  /// Size of the working vector: owned + external.
  int z_size() const {
    return owned + static_cast<int>(ext_global.size());
  }
};

/// A complete s-step matrix powers plan over all devices.
struct MpkPlan {
  int s = 1;
  bool use_ell = true;
  std::vector<int> offsets;  ///< block-row offsets, size n_devices + 1
  std::vector<MpkDevicePlan> dev;
  MpkStats stats;

  int n_devices() const { return static_cast<int>(dev.size()); }
  /// Rows-per-device vector for constructing matching DistMultiVecs.
  std::vector<int> rows_per_device() const;
};

/// Builds the plan for matrix `a` distributed by `offsets` (size n_dev + 1)
/// with `s` powers per invocation. `a` must already be permuted so that the
/// device blocks are contiguous (see graph::make_partition).
MpkPlan build_mpk_plan(const sparse::CsrMatrix& a,
                       const std::vector<int>& offsets, int s,
                       bool use_ell = true);

}  // namespace cagmres::mpk
