#include "mpk/boundary.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cagmres::mpk {

int BoundarySets::total_external() const {
  int n = 0;
  for (const auto& h : hops) n += static_cast<int>(h.size());
  return n;
}

BoundarySets compute_boundary_sets(const sparse::CsrMatrix& a, int row0,
                                   int row1, int s) {
  CAGMRES_REQUIRE(0 <= row0 && row0 <= row1 && row1 <= a.n_rows,
                  "bad row range");
  CAGMRES_REQUIRE(s >= 1, "s must be positive");
  BoundarySets out;
  out.row0 = row0;
  out.row1 = row1;
  out.hops.resize(static_cast<std::size_t>(s));

  // seen[v]: already classified (owned or an earlier hop).
  std::vector<char> seen(static_cast<std::size_t>(a.n_rows), 0);
  for (int i = row0; i < row1; ++i) seen[static_cast<std::size_t>(i)] = 1;

  std::vector<int> frontier;
  frontier.reserve(static_cast<std::size_t>(row1 - row0));
  for (int i = row0; i < row1; ++i) frontier.push_back(i);

  for (int t = 1; t <= s; ++t) {
    std::vector<int>& next = out.hops[static_cast<std::size_t>(t) - 1];
    for (const int r : frontier) {
      const auto lo = a.row_ptr[static_cast<std::size_t>(r)];
      const auto hi = a.row_ptr[static_cast<std::size_t>(r) + 1];
      for (auto k = lo; k < hi; ++k) {
        const int c = a.col_idx[static_cast<std::size_t>(k)];
        if (!seen[static_cast<std::size_t>(c)]) {
          seen[static_cast<std::size_t>(c)] = 1;
          next.push_back(c);
        }
      }
    }
    std::sort(next.begin(), next.end());
    frontier = next;
    if (frontier.empty()) break;  // dependency closure reached
  }
  return out;
}

}  // namespace cagmres::mpk
