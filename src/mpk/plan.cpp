#include "mpk/plan.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "mpk/boundary.hpp"

namespace cagmres::mpk {

std::vector<int> MpkPlan::rows_per_device() const {
  std::vector<int> rows;
  rows.reserve(dev.size());
  for (const auto& d : dev) rows.push_back(d.owned);
  return rows;
}

namespace {

/// Owner device of a global row under the block offsets.
int owner_of(const std::vector<int>& offsets, int row) {
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), row);
  return static_cast<int>(it - offsets.begin()) - 1;
}

}  // namespace

MpkPlan build_mpk_plan(const sparse::CsrMatrix& a,
                       const std::vector<int>& offsets, int s, bool use_ell) {
  CAGMRES_REQUIRE(a.n_rows == a.n_cols, "MPK needs a square matrix");
  CAGMRES_REQUIRE(offsets.size() >= 2 && offsets.front() == 0 &&
                      offsets.back() == a.n_rows,
                  "bad offsets");
  CAGMRES_REQUIRE(s >= 1, "s must be positive");
  const int ng = static_cast<int>(offsets.size()) - 1;
  const int n = a.n_rows;

  MpkPlan plan;
  plan.s = s;
  plan.use_ell = use_ell;
  plan.offsets = offsets;
  plan.dev.resize(static_cast<std::size_t>(ng));
  plan.stats.s = s;
  plan.stats.n_devices = ng;
  plan.stats.local_nnz.assign(static_cast<std::size_t>(ng), 0);
  plan.stats.boundary_nnz.assign(static_cast<std::size_t>(ng), 0);
  plan.stats.ext_count.assign(static_cast<std::size_t>(ng), 0);
  plan.stats.send_count.assign(static_cast<std::size_t>(ng), 0);
  plan.stats.extra_flops.assign(static_cast<std::size_t>(ng), 0.0);

  // Global send sets: owned rows of each device needed elsewhere.
  std::vector<std::vector<int>> send_global(static_cast<std::size_t>(ng));

  // Scratch global -> local map, stamped per device.
  std::vector<int> loc(static_cast<std::size_t>(n), -1);
  std::vector<int> touched;

  for (int d = 0; d < ng; ++d) {
    MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    dp.row0 = offsets[static_cast<std::size_t>(d)];
    dp.owned = offsets[static_cast<std::size_t>(d) + 1] - dp.row0;

    const BoundarySets bs = compute_boundary_sets(a, dp.row0,
                                                  dp.row0 + dp.owned, s);
    // External indices in hop order; remember each one's hop for the
    // boundary prefix bookkeeping.
    std::vector<int> ext_hop;
    for (int t = 1; t <= s; ++t) {
      for (const int g : bs.hops[static_cast<std::size_t>(t) - 1]) {
        dp.ext_global.push_back(g);
        ext_hop.push_back(t);
      }
    }
    dp.ext_owner.reserve(dp.ext_global.size());
    dp.ext_owner_row.reserve(dp.ext_global.size());
    for (const int g : dp.ext_global) {
      const int o = owner_of(offsets, g);
      dp.ext_owner.push_back(o);
      dp.ext_owner_row.push_back(g - offsets[static_cast<std::size_t>(o)]);
      send_global[static_cast<std::size_t>(o)].push_back(g);
    }

    // Device-local index space: owned rows first, then externals.
    touched.clear();
    for (int i = 0; i < dp.owned; ++i) {
      loc[static_cast<std::size_t>(dp.row0 + i)] = i;
      touched.push_back(dp.row0 + i);
    }
    for (std::size_t e = 0; e < dp.ext_global.size(); ++e) {
      loc[static_cast<std::size_t>(dp.ext_global[e])] =
          dp.owned + static_cast<int>(e);
      touched.push_back(dp.ext_global[e]);
    }

    // Local block A^(d) with remapped columns.
    {
      sparse::CsrMatrix local;
      local.n_rows = dp.owned;
      local.n_cols = dp.z_size();
      local.row_ptr.resize(static_cast<std::size_t>(dp.owned) + 1);
      local.row_ptr[0] = 0;
      for (int i = 0; i < dp.owned; ++i) {
        local.row_ptr[static_cast<std::size_t>(i) + 1] =
            local.row_ptr[static_cast<std::size_t>(i)] +
            a.row_nnz(dp.row0 + i);
      }
      local.col_idx.resize(static_cast<std::size_t>(local.row_ptr.back()));
      local.vals.resize(static_cast<std::size_t>(local.row_ptr.back()));
      for (int i = 0; i < dp.owned; ++i) {
        const auto lo = a.row_ptr[static_cast<std::size_t>(dp.row0 + i)];
        const int len = a.row_nnz(dp.row0 + i);
        auto dst = local.row_ptr[static_cast<std::size_t>(i)];
        for (int k = 0; k < len; ++k) {
          const int g = a.col_idx[static_cast<std::size_t>(lo) + k];
          const int l = loc[static_cast<std::size_t>(g)];
          CAGMRES_ASSERT(l >= 0, "owned row references unclassified column");
          local.col_idx[static_cast<std::size_t>(dst)] = l;
          local.vals[static_cast<std::size_t>(dst)] =
              a.vals[static_cast<std::size_t>(lo) + k];
          ++dst;
        }
      }
      plan.stats.local_nnz[static_cast<std::size_t>(d)] = local.nnz();
      if (use_ell) dp.local_ell = sparse::to_ell(local);
      dp.local_csr = std::move(local);
    }

    // Boundary submatrix: rows at hops 1..s-1, hop order. Step k multiplies
    // the prefix of rows with hop <= s-k.
    {
      std::vector<int> brow_global;
      std::vector<int> rows_with_hop_le(static_cast<std::size_t>(s), 0);
      for (int t = 1; t <= s - 1; ++t) {
        for (const int g : bs.hops[static_cast<std::size_t>(t) - 1]) {
          brow_global.push_back(g);
          dp.boundary_out_pos.push_back(loc[static_cast<std::size_t>(g)]);
        }
        rows_with_hop_le[static_cast<std::size_t>(t)] =
            static_cast<int>(brow_global.size());
      }
      dp.boundary_rows_at_step.resize(static_cast<std::size_t>(s));
      for (int k = 1; k <= s; ++k) {
        const int max_hop = s - k;
        dp.boundary_rows_at_step[static_cast<std::size_t>(k) - 1] =
            (max_hop >= 1) ? rows_with_hop_le[static_cast<std::size_t>(max_hop)]
                           : 0;
      }

      sparse::CsrMatrix b;
      b.n_rows = static_cast<int>(brow_global.size());
      b.n_cols = dp.z_size();
      b.row_ptr.resize(brow_global.size() + 1);
      b.row_ptr[0] = 0;
      for (std::size_t i = 0; i < brow_global.size(); ++i) {
        b.row_ptr[i + 1] = b.row_ptr[i] + a.row_nnz(brow_global[i]);
      }
      b.col_idx.resize(static_cast<std::size_t>(b.row_ptr.back()));
      b.vals.resize(static_cast<std::size_t>(b.row_ptr.back()));
      for (std::size_t i = 0; i < brow_global.size(); ++i) {
        const int g = brow_global[i];
        const auto lo = a.row_ptr[static_cast<std::size_t>(g)];
        const int len = a.row_nnz(g);
        auto dst = b.row_ptr[i];
        for (int k = 0; k < len; ++k) {
          const int gc = a.col_idx[static_cast<std::size_t>(lo) + k];
          const int l = loc[static_cast<std::size_t>(gc)];
          CAGMRES_ASSERT(l >= 0, "boundary row references unclassified column");
          b.col_idx[static_cast<std::size_t>(dst)] = l;
          b.vals[static_cast<std::size_t>(dst)] =
              a.vals[static_cast<std::size_t>(lo) + k];
          ++dst;
        }
      }
      plan.stats.boundary_nnz[static_cast<std::size_t>(d)] = b.nnz();
      // Extra flops per MPK call: 2 * sum over steps of the boundary nnz
      // multiplied at that step.
      double w = 0.0;
      for (int k = 1; k <= s; ++k) {
        const int rows =
            dp.boundary_rows_at_step[static_cast<std::size_t>(k) - 1];
        w += 2.0 * static_cast<double>(b.row_ptr[static_cast<std::size_t>(rows)]);
      }
      plan.stats.extra_flops[static_cast<std::size_t>(d)] = w;
      dp.boundary = std::move(b);
    }

    plan.stats.ext_count[static_cast<std::size_t>(d)] =
        static_cast<std::int64_t>(dp.ext_global.size());

    // Un-stamp the scratch map.
    for (const int g : touched) loc[static_cast<std::size_t>(g)] = -1;
  }

  // Dedupe send sets and convert to owned-local indices.
  for (int d = 0; d < ng; ++d) {
    auto& sg = send_global[static_cast<std::size_t>(d)];
    std::sort(sg.begin(), sg.end());
    sg.erase(std::unique(sg.begin(), sg.end()), sg.end());
    MpkDevicePlan& dp = plan.dev[static_cast<std::size_t>(d)];
    dp.send_local_rows.reserve(sg.size());
    for (const int g : sg) dp.send_local_rows.push_back(g - dp.row0);
    plan.stats.send_count[static_cast<std::size_t>(d)] =
        static_cast<std::int64_t>(sg.size());
  }
  return plan;
}

}  // namespace cagmres::mpk
