#include "mpk/stats.hpp"

#include <numeric>

namespace cagmres::mpk {

std::int64_t MpkStats::gather_volume() const {
  return std::accumulate(send_count.begin(), send_count.end(),
                         std::int64_t{0});
}

std::int64_t MpkStats::scatter_volume() const {
  return std::accumulate(ext_count.begin(), ext_count.end(), std::int64_t{0});
}

}  // namespace cagmres::mpk
