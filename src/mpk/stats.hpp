// Structural statistics of a matrix powers plan (paper Figs. 6-7).
#pragma once

#include <cstdint>
#include <vector>

namespace cagmres::mpk {

/// Storage / computation / communication overheads of an MPK plan, per
/// device and aggregated. Populated by build_mpk_plan.
struct MpkStats {
  int s = 1;
  int n_devices = 1;
  std::vector<std::int64_t> local_nnz;     ///< nnz(A^(d)) per device
  std::vector<std::int64_t> boundary_nnz;  ///< nnz of multiplied boundary rows
  std::vector<std::int64_t> ext_count;     ///< gathered vector elements per dev
  std::vector<std::int64_t> send_count;    ///< scattered-to-others elements
  std::vector<double> extra_flops;         ///< W^(d,s): extra MPK flops per call

  /// Fig. 6 y-axis: boundary nnz relative to the local block's nnz.
  double surface_to_volume(int d) const {
    return local_nnz[static_cast<std::size_t>(d)] > 0
               ? static_cast<double>(boundary_nnz[static_cast<std::size_t>(d)]) /
                     static_cast<double>(local_nnz[static_cast<std::size_t>(d)])
               : 0.0;
  }

  /// Elements gathered from the devices to the CPU per MPK call
  /// (first term of the paper's communication-volume expression).
  std::int64_t gather_volume() const;

  /// Elements scattered from the CPU to the devices per MPK call
  /// (second term: sum over devices of |delta^(d,1:s)|).
  std::int64_t scatter_volume() const;

  /// Total vector elements moved per MPK call.
  std::int64_t total_volume() const { return gather_volume() + scatter_volume(); }
};

}  // namespace cagmres::mpk
