#include "common/error.hpp"

#include <sstream>

namespace cagmres::detail {

void fail(const char* cond, const char* file, int line,
          const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace cagmres::detail
