#include "common/error.hpp"

#include <sstream>

namespace cagmres {

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadInput:
      return "bad_input";
    case ErrorCode::kBreakdown:
      return "breakdown";
    case ErrorCode::kDeviceFault:
      return "device_fault";
    case ErrorCode::kRetriesExhausted:
      return "retries_exhausted";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

namespace detail {

void fail(const char* cond, const char* file, int line,
          const std::string& msg, ErrorCode code) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str(), code);
}

}  // namespace detail
}  // namespace cagmres
