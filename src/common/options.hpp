// Minimal command-line option parser used by the bench and example binaries.
//
// Accepts "--key=value", "--key value" and boolean "--flag" forms. Unknown
// keys raise an error listing everything that was registered, so every
// binary gets a usable --help for free.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cagmres {

/// Declarative command-line parser: register options, then parse().
class Options {
 public:
  explicit Options(std::string program_description);

  /// Registers an option with a default value and a help string.
  void add(const std::string& key, const std::string& default_value,
           const std::string& help);

  /// Parses argv; throws cagmres::Error on unknown keys. Returns false when
  /// --help was requested (help text already printed to stdout).
  bool parse(int argc, char** argv);

  std::string get(const std::string& key) const;
  int get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Comma-separated list of integers, e.g. "--s=1,2,4,8".
  std::vector<int> get_int_list(const std::string& key) const;

  /// Renders the help text.
  std::string help() const;

 private:
  struct Opt {
    std::string default_value;
    std::string value;
    std::string help;
  };
  std::string description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace cagmres
