#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace cagmres {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  CAGMRES_REQUIRE(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  std::ostringstream os;
  emit(os, headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << std::string(total, '-') << "\n";
    } else {
      emit(os, row);
    }
  }
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

}  // namespace cagmres
