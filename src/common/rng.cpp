#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace cagmres {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::bounded(std::uint64_t n) {
  CAGMRES_REQUIRE(n > 0, "bounded(0)");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(bounded(static_cast<std::uint64_t>(i) + 1));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return p;
}

}  // namespace cagmres
