// Deterministic random number generation.
//
// All randomness in the library (synthetic matrices, random test panels,
// permutations) flows through Rng so that every experiment is reproducible
// from a seed printed in its output.
#pragma once

#include <cstdint>
#include <vector>

namespace cagmres {

/// Small deterministic RNG (splitmix64-seeded xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t bounded(std::uint64_t n);

  /// Fisher-Yates shuffle of the identity permutation of length n.
  std::vector<int> permutation(int n);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace cagmres
