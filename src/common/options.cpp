#include "common/options.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace cagmres {

Options::Options(std::string program_description)
    : description_(std::move(program_description)) {}

void Options::add(const std::string& key, const std::string& default_value,
                  const std::string& help) {
  CAGMRES_REQUIRE(!opts_.count(key), "duplicate option --" + key);
  opts_[key] = Opt{default_value, default_value, help};
  order_.push_back(key);
}

bool Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", help().c_str());
      return false;
    }
    CAGMRES_REQUIRE(arg.rfind("--", 0) == 0,
                    "expected --key[=value], got '" + arg + "'\n" + help());
    arg = arg.substr(2);
    std::string key, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      auto it = opts_.find(key);
      CAGMRES_REQUIRE(it != opts_.end(), "unknown option --" + key + "\n" + help());
      // Boolean flag if the next token is absent or itself an option.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "1";
      }
    }
    auto it = opts_.find(key);
    CAGMRES_REQUIRE(it != opts_.end(), "unknown option --" + key + "\n" + help());
    it->second.value = value;
  }
  return true;
}

std::string Options::get(const std::string& key) const {
  auto it = opts_.find(key);
  CAGMRES_REQUIRE(it != opts_.end(), "option --" + key + " not registered");
  return it->second.value;
}

int Options::get_int(const std::string& key) const {
  return std::stoi(get(key));
}

double Options::get_double(const std::string& key) const {
  return std::stod(get(key));
}

bool Options::get_bool(const std::string& key) const {
  const std::string v = get(key);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<int> Options::get_int_list(const std::string& key) const {
  const std::string raw = get(key);
  std::vector<int> out;
  if (raw.empty()) return out;
  std::stringstream ss(raw);
  std::string tok;
  bool last_was_sep = true;  // getline drops a trailing empty token
  while (std::getline(ss, tok, ',')) {
    last_was_sep = !ss.eof();
    CAGMRES_REQUIRE(!tok.empty(), "--" + key + "='" + raw +
                                      "': empty entry in integer list");
    std::size_t pos = 0;
    int value = 0;
    try {
      value = std::stoi(tok, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    CAGMRES_REQUIRE(pos == tok.size(), "--" + key + "='" + raw +
                                           "': bad integer entry '" + tok +
                                           "'");
    out.push_back(value);
  }
  CAGMRES_REQUIRE(!last_was_sep, "--" + key + "='" + raw +
                                     "': empty entry in integer list");
  return out;
}

std::string Options::help() const {
  std::ostringstream os;
  os << description_ << "\n\noptions:\n";
  for (const auto& key : order_) {
    const Opt& o = opts_.at(key);
    os << "  --" << key << " (default: " << o.default_value << ")\n      "
       << o.help << "\n";
  }
  return os.str();
}

}  // namespace cagmres
