// Error handling utilities shared across the library.
//
// The library throws cagmres::Error for precondition violations and
// unrecoverable numerical failures (e.g. Cholesky breakdown when the caller
// disabled the fallback path). Hot loops use CAGMRES_ASSERT, which compiles
// away in NDEBUG builds; API boundaries use CAGMRES_REQUIRE, which does not.
#pragma once

#include <stdexcept>
#include <string>

namespace cagmres {

/// Exception type thrown on precondition violations and numerical failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* cond, const char* file, int line,
                       const std::string& msg);
}  // namespace detail

}  // namespace cagmres

/// Always-on check for public API preconditions.
#define CAGMRES_REQUIRE(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) ::cagmres::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Debug-only check for internal invariants on hot paths.
#ifdef NDEBUG
#define CAGMRES_ASSERT(cond, msg) ((void)0)
#else
#define CAGMRES_ASSERT(cond, msg) CAGMRES_REQUIRE(cond, msg)
#endif
