// Error handling utilities shared across the library.
//
// The library throws cagmres::Error for precondition violations and
// unrecoverable numerical failures (e.g. Cholesky breakdown when the caller
// disabled the fallback path). Hot loops use CAGMRES_ASSERT, which compiles
// away in NDEBUG builds; API boundaries use CAGMRES_REQUIRE, which does not.
//
// Every Error carries an ErrorCode so callers can tell programmer error
// (kBadInput — fix the call site) from recoverable numerical or runtime
// failures (kBreakdown / kDeviceFault / kRetriesExhausted — the resilient
// solver paths catch these and degrade gracefully).
#pragma once

#include <stdexcept>
#include <string>

namespace cagmres {

/// Classification of a thrown Error.
enum class ErrorCode {
  kBadInput,          ///< precondition violation: caller bug, never caught
  kBreakdown,         ///< numerical breakdown (rank loss, failed Cholesky)
  kDeviceFault,       ///< a simulated device failed permanently
  kRetriesExhausted,  ///< bounded retry/replay loop gave up
  kDeadlineExceeded,  ///< a solve overran its iteration/simulated-time
                      ///< budget, or stagnated after the escalation ladder
                      ///< was exhausted (core/health.hpp)
};

std::string to_string(ErrorCode code);

/// Exception type thrown on precondition violations and numerical failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCode code = ErrorCode::kBadInput, int device = -1)
      : std::runtime_error(what), code_(code), device_(device) {}

  ErrorCode code() const { return code_; }

  /// Logical device the fault concerns (kDeviceFault / kRetriesExhausted
  /// raised by the simulated machine); -1 when not device-specific.
  int device() const { return device_; }

 private:
  ErrorCode code_ = ErrorCode::kBadInput;
  int device_ = -1;
};

namespace detail {
[[noreturn]] void fail(const char* cond, const char* file, int line,
                       const std::string& msg,
                       ErrorCode code = ErrorCode::kBadInput);
}  // namespace detail

}  // namespace cagmres

/// Always-on check for public API preconditions.
#define CAGMRES_REQUIRE(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) ::cagmres::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Always-on check that throws with an explicit ErrorCode, so recoverable
/// numerical/runtime failures are distinguishable from kBadInput.
#define CAGMRES_REQUIRE_CODE(cond, code, msg)                        \
  do {                                                               \
    if (!(cond))                                                     \
      ::cagmres::detail::fail(#cond, __FILE__, __LINE__, (msg), (code)); \
  } while (0)

/// Debug-only check for internal invariants on hot paths.
#ifdef NDEBUG
#define CAGMRES_ASSERT(cond, msg) ((void)0)
#else
#define CAGMRES_ASSERT(cond, msg) CAGMRES_REQUIRE(cond, msg)
#endif
