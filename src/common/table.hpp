// Aligned plain-text table printer for the paper-style bench outputs.
#pragma once

#include <string>
#include <vector>

namespace cagmres {

/// Collects rows of cells and renders them with aligned columns.
class Table {
 public:
  /// Starts a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Renders the table (headers, separator, rows).
  std::string str() const;

  /// Convenience numeric formatting helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace cagmres
