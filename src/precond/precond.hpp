// The preconditioner subsystem's public face: a parsed spec
// (CAGMRES_PRECOND=ilu:k=1,underlap=1), and a PrecondHandle owning the
// per-device ILU(k) factors with the symbolic phase cached across numeric
// refreshes, restarts, and repartitions (a repartition rebuilds only the
// devices whose row ranges changed; unchanged ranges reuse their factor).
//
// The handle applies M^{-1} right-preconditioned: solvers iterate on
// A M^{-1} u = b, so the Arnoldi residual is the TRUE residual and x is
// recovered by one extra M^{-1} apply inside the solution update. The
// apply is block-local per device (no communication), charged through
// PerfModel one kernel per triangular level (precond/trisolve.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "precond/ilu.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"

namespace cagmres::precond {

enum class PrecondKind {
  kNone,  ///< identity M (the unpreconditioned path, bit-for-bit)
  kIlu,   ///< device-local ILU(k) with optional underlap
};

/// Parsed preconditioner request. `level` is the ILU fill level k;
/// `underlap` Jacobi-treats that many leading/trailing rows of each device
/// block (0 = full block ILU, >= block size = plain Jacobi scaling).
struct PrecondSpec {
  PrecondKind kind = PrecondKind::kNone;
  int level = 0;
  int underlap = 0;

  bool armed() const { return kind != PrecondKind::kNone; }
  std::string to_string() const;
};

/// Parses "ilu", "ilu:k=1", "ilu:k=1,underlap=2" (key aliases: k/level,
/// underlap/u). "", "none", "off", and "0" give kNone. Throws
/// Error(kBadConfig) on anything else.
PrecondSpec parse_precond_spec(const std::string& text);

/// Spec from the CAGMRES_PRECOND environment variable (kNone when unset).
PrecondSpec env_precond_spec();

/// Cumulative handle telemetry (never reset by rebuilds).
struct PrecondStats {
  int symbolic_builds = 0;   ///< ilu_symbolic runs (cache misses)
  int numeric_builds = 0;    ///< ilu_numeric runs
  int device_rebuilds = 0;   ///< devices refactored by rebuild()
  int device_reuses = 0;     ///< devices whose cached factor was reused
  std::int64_t applies = 0;  ///< M^{-1} applications
  int pivot_fallbacks = 0;   ///< tiny pivots replaced by 1 (active factors)
  std::int64_t fill_nnz = 0; ///< total factor nonzeros (active factors)
  int max_levels_l = 0;      ///< deepest L schedule among active factors
  int max_levels_u = 0;      ///< deepest U schedule among active factors
  double setup_seconds = 0.0;  ///< simulated seconds charged to setup
};

/// Owns the per-device factors for one prepared matrix. build() starts
/// from fresh matrix values (clears the factor cache); rebuild() keeps it,
/// so a repartition that leaves some devices' (row0, row1) ranges intact
/// reuses their factors untouched — the matrix values are unchanged by
/// repartitioning, only the block boundaries move.
class PrecondHandle {
 public:
  explicit PrecondHandle(PrecondSpec spec) : spec_(spec) {}

  const PrecondSpec& spec() const { return spec_; }
  bool armed() const { return spec_.armed(); }

  /// Factors every device block of `a` split at `offsets`. Charges the
  /// symbolic phase to the host and the numeric phase to each device
  /// under phase "precond_setup". Clears any previously cached factors.
  void build(sim::Machine& m, const sparse::CsrMatrix& a,
             const std::vector<int>& offsets);

  /// Re-targets the handle at a new device split of the SAME matrix
  /// (post-repartition): devices whose row range is unchanged reuse their
  /// cached factor; only changed ranges are refactored.
  void rebuild(sim::Machine& m, const sparse::CsrMatrix& a,
               const std::vector<int>& offsets);

  /// out[:, outcol] = M^{-1} in[:, incol], device-local level-scheduled
  /// trisolves under phase "precond". in and out may be the same
  /// multivector (and the same column). Both must match the build split.
  void apply(sim::Machine& m, const sim::DistMultiVec& in, int incol,
             sim::DistMultiVec& out, int outcol);

  /// True when the active factors cover exactly this device split (the
  /// solvers use this to build lazily once and skip on later restarts).
  /// Pure host inspection: charges nothing.
  bool matches(const std::vector<int>& offsets) const;

  const PrecondStats& stats() const { return stats_; }
  int n_devices() const { return static_cast<int>(active_.size()); }
  const DeviceFactor& factor(int d) const { return *active_[d]; }

 private:
  DeviceFactor* factor_for(sim::Machine& m, const sparse::CsrMatrix& a,
                           int row0, int row1, bool reuse_cache);
  void refresh_aggregate_stats();

  PrecondSpec spec_;
  /// Factors keyed by exact row range. Entries are never erased while the
  /// handle lives (device closures may still reference superseded factors
  /// until their streams drain).
  std::map<std::pair<int, int>, std::unique_ptr<DeviceFactor>> cache_;
  std::vector<DeviceFactor*> active_;  ///< per logical device
  PrecondStats stats_;
};

}  // namespace cagmres::precond
