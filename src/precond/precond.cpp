#include "precond/precond.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "precond/trisolve.hpp"

namespace cagmres::precond {

std::string PrecondSpec::to_string() const {
  if (!armed()) return "none";
  std::string out = "ilu:k=" + std::to_string(level);
  if (underlap > 0) out += ",underlap=" + std::to_string(underlap);
  return out;
}

PrecondSpec parse_precond_spec(const std::string& text) {
  PrecondSpec spec;
  if (text.empty() || text == "none" || text == "off" || text == "0")
    return spec;
  std::string body;
  if (text == "ilu") {
    spec.kind = PrecondKind::kIlu;
    return spec;
  }
  if (text.rfind("ilu:", 0) == 0) {
    spec.kind = PrecondKind::kIlu;
    body = text.substr(4);
  } else {
    throw Error("precond spec: unknown preconditioner "
                "(want none|ilu[:k=K,underlap=U]): " + text);
  }
  std::size_t pos = 0;
  while (pos <= body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string entry = body.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos)
      throw Error("precond spec: want key=value: " + entry);
    const std::string key = entry.substr(0, eq);
    int value = 0;
    try {
      value = std::stoi(entry.substr(eq + 1));
    } catch (const std::exception&) {
      throw Error("precond spec: bad integer in: " + entry);
    }
    if (value < 0) throw Error("precond spec: negative value in: " + entry);
    if (key == "k" || key == "level") {
      spec.level = value;
    } else if (key == "underlap" || key == "u") {
      spec.underlap = value;
    } else {
      throw Error("precond spec: unknown key (want k|level|underlap|u): " +
                  key);
    }
  }
  return spec;
}

PrecondSpec env_precond_spec() {
  const char* s = std::getenv("CAGMRES_PRECOND");
  if (s == nullptr) return {};
  return parse_precond_spec(s);
}

DeviceFactor* PrecondHandle::factor_for(sim::Machine& m,
                                        const sparse::CsrMatrix& a, int row0,
                                        int row1, bool reuse_cache) {
  const auto key = std::make_pair(row0, row1);
  if (reuse_cache) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.device_reuses;
      return it->second.get();
    }
  }
  auto f = std::make_unique<DeviceFactor>();
  ilu_symbolic(a, row0, row1, spec_.level, spec_.underlap, *f);
  ++stats_.symbolic_builds;
  const double fill = static_cast<double>(f->fill_nnz());
  // Symbolic analysis is host-side graph work: the pattern merge touches
  // index data proportional to the fill.
  m.charge_host(sim::Kernel::kSmall, fill, 12.0 * fill);
  ilu_numeric(a, *f);
  ++stats_.numeric_builds;
  DeviceFactor* out = f.get();
  cache_[key] = std::move(f);
  return out;
}

void PrecondHandle::refresh_aggregate_stats() {
  stats_.pivot_fallbacks = 0;
  stats_.fill_nnz = 0;
  stats_.max_levels_l = 0;
  stats_.max_levels_u = 0;
  for (const DeviceFactor* f : active_) {
    stats_.pivot_fallbacks += f->pivot_fallbacks;
    stats_.fill_nnz += f->fill_nnz();
    stats_.max_levels_l = std::max(stats_.max_levels_l, f->l_sched.levels());
    stats_.max_levels_u = std::max(stats_.max_levels_u, f->u_sched.levels());
  }
}

void PrecondHandle::build(sim::Machine& m, const sparse::CsrMatrix& a,
                          const std::vector<int>& offsets) {
  CAGMRES_REQUIRE(armed(), "PrecondHandle::build on an unarmed handle");
  CAGMRES_REQUIRE(offsets.size() >= 2 && offsets.front() == 0 &&
                      offsets.back() == a.n_rows,
                  "precond: bad device offsets");
  sim::PhaseScope phase(m, "precond_setup");
  const double t0 = m.phases().get("precond_setup");
  // Fresh matrix values: every cached numeric factor is stale.
  cache_.clear();
  active_.clear();
  const int nd = static_cast<int>(offsets.size()) - 1;
  for (int d = 0; d < nd; ++d) {
    DeviceFactor* f = factor_for(m, a, offsets[static_cast<std::size_t>(d)],
                                 offsets[static_cast<std::size_t>(d) + 1],
                                 /*reuse_cache=*/false);
    // The numeric sweep is modeled as one device kernel. Deliberately no
    // consume_kernel_fault here: a transient NaN injection landing on this
    // charge stays latched and poisons the NEXT apply kernel instead of
    // the cached factor, so the health scrub heals it by replaying one
    // step rather than solving against a permanently poisoned M.
    m.charge_device(d, sim::Kernel::kSpmvCsr, f->numeric_flops,
                    20.0 * static_cast<double>(f->fill_nnz()));
    active_.push_back(f);
  }
  refresh_aggregate_stats();
  stats_.setup_seconds += m.phases().get("precond_setup") - t0;
}

void PrecondHandle::rebuild(sim::Machine& m, const sparse::CsrMatrix& a,
                            const std::vector<int>& offsets) {
  CAGMRES_REQUIRE(armed(), "PrecondHandle::rebuild on an unarmed handle");
  CAGMRES_REQUIRE(offsets.size() >= 2 && offsets.front() == 0 &&
                      offsets.back() == a.n_rows,
                  "precond: bad device offsets");
  sim::PhaseScope phase(m, "precond_setup");
  const double t0 = m.phases().get("precond_setup");
  active_.clear();
  const int nd = static_cast<int>(offsets.size()) - 1;
  for (int d = 0; d < nd; ++d) {
    const int row0 = offsets[static_cast<std::size_t>(d)];
    const int row1 = offsets[static_cast<std::size_t>(d) + 1];
    const bool cached = cache_.count(std::make_pair(row0, row1)) != 0;
    DeviceFactor* f = factor_for(m, a, row0, row1, /*reuse_cache=*/true);
    if (!cached) {
      ++stats_.device_rebuilds;
      m.charge_device(d, sim::Kernel::kSpmvCsr, f->numeric_flops,
                      20.0 * static_cast<double>(f->fill_nnz()));
    }
    active_.push_back(f);
  }
  refresh_aggregate_stats();
  stats_.setup_seconds += m.phases().get("precond_setup") - t0;
}

bool PrecondHandle::matches(const std::vector<int>& offsets) const {
  if (active_.empty() || active_.size() + 1 != offsets.size()) return false;
  for (std::size_t d = 0; d < active_.size(); ++d) {
    if (active_[d]->row0 != offsets[d] || active_[d]->row1 != offsets[d + 1])
      return false;
  }
  return true;
}

void PrecondHandle::apply(sim::Machine& m, const sim::DistMultiVec& in,
                          int incol, sim::DistMultiVec& out, int outcol) {
  const int nd = n_devices();
  CAGMRES_REQUIRE(nd > 0, "PrecondHandle::apply before build");
  CAGMRES_REQUIRE(in.n_parts() == nd && out.n_parts() == nd,
                  "precond: multivector split does not match the handle");
  sim::PhaseScope phase(m, "precond");
  for (int d = 0; d < nd; ++d) {
    const DeviceFactor& f = *active_[static_cast<std::size_t>(d)];
    CAGMRES_REQUIRE(in.local_rows(d) == f.n() && out.local_rows(d) == f.n(),
                    "precond: multivector rows do not match the factor");
    level_trisolve(m, d, f, in.col(d, incol), out.col(d, outcol));
  }
  ++stats_.applies;
}

}  // namespace cagmres::precond
