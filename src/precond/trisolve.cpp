#include "precond/trisolve.hpp"

#include <limits>

namespace cagmres::precond {

namespace {

/// Injected transient kernel fault on a trisolve level: NaN-poison the
/// rows that level produced, mirroring mpk/exec.cpp.
void poison_rows(double* out, const int* rows, int n) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < n; ++i) out[rows[i]] = nan;
}

}  // namespace

void level_trisolve(sim::Machine& m, int d, const DeviceFactor& f,
                    const double* in, double* out) {
  const DeviceFactor* fp = &f;

  // Forward sweep: L y = in, unit diagonal. out[i] = in[i] - sum l_ij y[j]
  // with every j in an earlier level, so the whole level is one parallel
  // kernel. Charged per level like the boundary SpMV in mpk/exec.cpp.
  for (int l = 0; l < f.l_sched.levels(); ++l) {
    const int lo = f.l_sched.level_ptr[static_cast<std::size_t>(l)];
    const int rows = f.l_sched.level_rows(l);
    const double nnz = f.l_sched.level_nnz[static_cast<std::size_t>(l)];
    m.charge_device(d, sim::Kernel::kSpmvCsr, 2.0 * nnz,
                    nnz * 20.0 + 16.0 * rows);
    const bool hit = m.consume_kernel_fault(d);
    m.run_on_device(d, [=] {
      const int* ord = fp->l_sched.order.data() + lo;
#pragma omp parallel for schedule(static) if (rows > 1 << 10)
      for (int r = 0; r < rows; ++r) {
        const int i = ord[r];
        double acc = in[i];
        const auto plo = fp->l_ptr[static_cast<std::size_t>(i)];
        const auto phi = fp->l_ptr[static_cast<std::size_t>(i) + 1];
        for (auto p = plo; p < phi; ++p) {
          acc -= fp->l_val[static_cast<std::size_t>(p)] *
                 out[fp->l_idx[static_cast<std::size_t>(p)]];
        }
        out[i] = acc;
      }
      if (hit) poison_rows(out, ord, rows);
    });
  }
  // Backward sweep, in place: U x = y with the diagonal held inverted.
  // out[i] = (out[i] - sum u_ij out[j]) * inv_diag[i], dependencies in
  // earlier (higher-row) levels.
  for (int l = 0; l < f.u_sched.levels(); ++l) {
    const int lo = f.u_sched.level_ptr[static_cast<std::size_t>(l)];
    const int rows = f.u_sched.level_rows(l);
    const double nnz = f.u_sched.level_nnz[static_cast<std::size_t>(l)];
    m.charge_device(d, sim::Kernel::kSpmvCsr, 2.0 * nnz + rows,
                    nnz * 20.0 + 24.0 * rows);
    const bool hit = m.consume_kernel_fault(d);
    m.run_on_device(d, [=] {
      const int* ord = fp->u_sched.order.data() + lo;
#pragma omp parallel for schedule(static) if (rows > 1 << 10)
      for (int r = 0; r < rows; ++r) {
        const int i = ord[r];
        double acc = out[i];
        const auto plo = fp->u_ptr[static_cast<std::size_t>(i)];
        const auto phi = fp->u_ptr[static_cast<std::size_t>(i) + 1];
        for (auto p = plo; p < phi; ++p) {
          acc -= fp->u_val[static_cast<std::size_t>(p)] *
                 out[fp->u_idx[static_cast<std::size_t>(p)]];
        }
        out[i] = acc * fp->inv_diag[static_cast<std::size_t>(i)];
      }
      if (hit) poison_rows(out, ord, rows);
    });
  }
}

}  // namespace cagmres::precond
