// Level-scheduled sparse triangular solves for the device-local ILU(k)
// factors: one charged kernel per level per device, rows inside a level
// running in parallel (the factor's LevelSchedule guarantees their
// dependencies live in earlier levels). Device-local by construction, so
// the per-device level chains overlap freely across devices in event mode
// with no cross-device waits.
#pragma once

#include "precond/ilu.hpp"
#include "sim/machine.hpp"

namespace cagmres::precond {

/// Applies M^{-1} = U^{-1} L^{-1} of device d's factor to `in` (length
/// f.n(), the device's local rows), writing `out` (may alias `in`).
/// Dispatches one charged kernel per L level (forward) then per U level
/// (backward); kernels run on device d's in-order stream. Charges land on
/// the calling thread in program order, keeping simulated time bitwise
/// identical across sync modes and worker counts.
void level_trisolve(sim::Machine& m, int d, const DeviceFactor& f,
                    const double* in, double* out);

}  // namespace cagmres::precond
