// ILU(k) factorization of device-local blocks, split into a cached
// symbolic phase and a cheap numeric phase (the spiluk-style design the
// roadmap asks for; DESIGN.md §15).
//
// The factor is block-local: only couplings inside one device's row range
// [row0, row1) enter M, so M^{-1} applies with zero communication and the
// s-step MPK dependency structure of A survives unchanged. An `underlap`
// of u additionally replaces the u leading and trailing rows of the block
// by their diagonal (Jacobi-treated), trimming the triangular dependency
// chains near the partition boundary; underlap >= block size degenerates
// to plain diagonal (Jacobi) scaling.
//
// The symbolic phase computes the fill pattern by level of fill
// (lev(fill at (i,j) via pivot p) = lev(i,p) + lev(p,j) + 1, kept while
// <= k) plus the level sets that make the triangular solves parallel:
// within one level every row's in-factor dependencies are already done,
// so the solver dispatches one kernel per level (precond/trisolve.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace cagmres::precond {

/// Parallel schedule of one triangular factor: `order` lists the rows
/// level-major (ascending within a level), `level_ptr` delimits levels.
/// Rows inside one level are mutually independent.
struct LevelSchedule {
  std::vector<int> level_ptr;  ///< size levels() + 1, indexes into order
  std::vector<int> order;      ///< local rows in level-major order
  std::vector<double> level_nnz;  ///< factor nonzeros per level (charge size)

  int levels() const { return static_cast<int>(level_ptr.size()) - 1; }
  int level_rows(int l) const {
    return level_ptr[static_cast<std::size_t>(l) + 1] -
           level_ptr[static_cast<std::size_t>(l)];
  }
};

/// One device block's ILU(k) factor A_local ~= L U in local row indices
/// (local row i = global row row0 + i). L is strictly lower triangular
/// with an implicit unit diagonal; U is strictly upper triangular with the
/// diagonal held inverted in inv_diag (the solve multiplies, never
/// divides). The pattern (ptr/idx, schedules) is the cached symbolic
/// state; ilu_numeric refreshes only vals/inv_diag.
struct DeviceFactor {
  int row0 = 0;  ///< first global row of the block
  int row1 = 0;  ///< one past the last global row

  std::vector<std::int64_t> l_ptr;  ///< size n() + 1
  std::vector<int> l_idx;
  std::vector<double> l_val;
  std::vector<std::int64_t> u_ptr;  ///< strictly upper, size n() + 1
  std::vector<int> u_idx;
  std::vector<double> u_val;
  std::vector<double> inv_diag;  ///< 1 / u_ii per local row

  LevelSchedule l_sched;  ///< forward (L) schedule
  LevelSchedule u_sched;  ///< backward (U) schedule

  int pivot_fallbacks = 0;     ///< tiny pivots replaced by 1 (last numeric)
  double numeric_flops = 0.0;  ///< flop count of the last numeric phase

  int n() const { return row1 - row0; }
  std::int64_t fill_nnz() const {
    return static_cast<std::int64_t>(l_idx.size() + u_idx.size()) + n();
  }
};

/// Symbolic ILU(k): computes the fill pattern and both level schedules for
/// the block-local rows [row0, row1) of the prepared matrix `a` (couplings
/// outside the block are dropped; the `underlap` leading/trailing rows
/// keep only their diagonal). Values are left unset — call ilu_numeric.
void ilu_symbolic(const sparse::CsrMatrix& a, int row0, int row1, int level,
                  int underlap, DeviceFactor& f);

/// Numeric ILU on the cached pattern (IKJ row sweep, fill outside the
/// pattern dropped). Tiny pivots (|u_ii| <= 1e-13 * max block diagonal)
/// fall back to 1 and are counted in f.pivot_fallbacks. Refreshes
/// l_val/u_val/inv_diag/numeric_flops only; the pattern is untouched, so
/// the same symbolic factor serves every numeric refresh.
void ilu_numeric(const sparse::CsrMatrix& a, DeviceFactor& f);

}  // namespace cagmres::precond
