#include "precond/ilu.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cagmres::precond {

namespace {

/// Builds the level schedule of one triangular factor: a row's level is one
/// past the maximum level of its in-factor dependencies. `forward` walks
/// rows ascending (L); otherwise descending (U, whose dependencies sit
/// below the diagonal's row in the sweep order).
LevelSchedule build_schedule(int n, const std::vector<std::int64_t>& ptr,
                             const std::vector<int>& idx, bool forward) {
  std::vector<int> lvl(static_cast<std::size_t>(n), 0);
  int max_lvl = -1;
  for (int step = 0; step < n; ++step) {
    const int i = forward ? step : n - 1 - step;
    int l = 0;
    for (auto p = ptr[static_cast<std::size_t>(i)];
         p < ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      l = std::max(l, lvl[static_cast<std::size_t>(idx[static_cast<std::size_t>(p)])] + 1);
    }
    lvl[static_cast<std::size_t>(i)] = l;
    max_lvl = std::max(max_lvl, l);
  }
  LevelSchedule s;
  const int levels = n > 0 ? max_lvl + 1 : 0;
  s.level_ptr.assign(static_cast<std::size_t>(levels) + 1, 0);
  for (int i = 0; i < n; ++i) {
    ++s.level_ptr[static_cast<std::size_t>(lvl[static_cast<std::size_t>(i)]) + 1];
  }
  for (int l = 0; l < levels; ++l) {
    s.level_ptr[static_cast<std::size_t>(l) + 1] +=
        s.level_ptr[static_cast<std::size_t>(l)];
  }
  s.order.resize(static_cast<std::size_t>(n));
  std::vector<int> at(s.level_ptr.begin(), s.level_ptr.end() - 1);
  for (int i = 0; i < n; ++i) {  // ascending i => ascending within a level
    s.order[static_cast<std::size_t>(at[static_cast<std::size_t>(
        lvl[static_cast<std::size_t>(i)])]++)] = i;
  }
  s.level_nnz.assign(static_cast<std::size_t>(levels), 0.0);
  for (int i = 0; i < n; ++i) {
    s.level_nnz[static_cast<std::size_t>(lvl[static_cast<std::size_t>(i)])] +=
        static_cast<double>(ptr[static_cast<std::size_t>(i) + 1] -
                            ptr[static_cast<std::size_t>(i)]);
  }
  return s;
}

}  // namespace

void ilu_symbolic(const sparse::CsrMatrix& a, int row0, int row1, int level,
                  int underlap, DeviceFactor& f) {
  CAGMRES_REQUIRE(0 <= row0 && row0 <= row1 && row1 <= a.n_rows,
                  "ILU block out of range");
  CAGMRES_REQUIRE(level >= 0 && underlap >= 0, "bad ILU(k) parameters");
  const int n = row1 - row0;
  f.row0 = row0;
  f.row1 = row1;
  f.l_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  f.u_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  f.l_idx.clear();
  f.u_idx.clear();

  // A local row is Jacobi-treated (diagonal-only in M) when it falls in the
  // underlap margin at either end of the block.
  auto jacobi_row = [&](int i) { return i < underlap || i >= n - underlap; };

  // Per-U-entry fill levels, needed while later rows merge this row.
  std::vector<std::int64_t> ulev_ptr(f.u_ptr.begin(), f.u_ptr.end());
  std::vector<int> u_fill_lev;

  // Sorted-pattern working row as a linked list over local columns:
  // nxt[c] = next pattern column after c (n = list head sentinel, -1 = end).
  const int kHead = n;
  std::vector<int> nxt(static_cast<std::size_t>(n) + 1, -1);
  std::vector<int> lev(static_cast<std::size_t>(n), 0);
  std::vector<char> in_row(static_cast<std::size_t>(n), 0);

  for (int i = 0; i < n; ++i) {
    if (jacobi_row(i)) {  // diagonal-only: empty L and U rows
      f.l_ptr[static_cast<std::size_t>(i) + 1] =
          static_cast<std::int64_t>(f.l_idx.size());
      f.u_ptr[static_cast<std::size_t>(i) + 1] =
          static_cast<std::int64_t>(f.u_idx.size());
      continue;
    }
    // Seed the pattern with the block-local part of A's row i + the
    // diagonal (level 0).
    nxt[static_cast<std::size_t>(kHead)] = -1;
    int tail = kHead;
    const auto rlo = a.row_ptr[static_cast<std::size_t>(row0 + i)];
    const auto rhi = a.row_ptr[static_cast<std::size_t>(row0 + i) + 1];
    bool have_diag = false;
    for (auto p = rlo; p < rhi; ++p) {
      const int c = a.col_idx[static_cast<std::size_t>(p)] - row0;
      if (c < 0 || c >= n) continue;  // coupling outside the block: dropped
      nxt[static_cast<std::size_t>(tail)] = c;
      nxt[static_cast<std::size_t>(c)] = -1;
      lev[static_cast<std::size_t>(c)] = 0;
      in_row[static_cast<std::size_t>(c)] = 1;
      tail = c;
      if (c == i) have_diag = true;
    }
    if (!have_diag) {  // structurally missing diagonal: add it (value 0)
      int at = kHead;
      while (nxt[static_cast<std::size_t>(at)] != -1 &&
             nxt[static_cast<std::size_t>(at)] < i) {
        at = nxt[static_cast<std::size_t>(at)];
      }
      nxt[static_cast<std::size_t>(i)] = nxt[static_cast<std::size_t>(at)];
      nxt[static_cast<std::size_t>(at)] = i;
      lev[static_cast<std::size_t>(i)] = 0;
      in_row[static_cast<std::size_t>(i)] = 1;
    }

    // Merge the U rows of every pivot p < i in the (growing, sorted)
    // pattern: fill at column q gets level lev(i,p) + lev(p,q) + 1.
    for (int p = nxt[static_cast<std::size_t>(kHead)]; p != -1 && p < i;
         p = nxt[static_cast<std::size_t>(p)]) {
      const int lip = lev[static_cast<std::size_t>(p)];
      if (lip >= level) continue;  // any fill through p would exceed k
      int at = p;  // merged columns are > p: scan forward from p
      for (auto e = ulev_ptr[static_cast<std::size_t>(p)];
           e < ulev_ptr[static_cast<std::size_t>(p) + 1]; ++e) {
        const int q = f.u_idx[static_cast<std::size_t>(e)];
        const int lq =
            lip + u_fill_lev[static_cast<std::size_t>(e)] + 1;
        if (lq > level) continue;
        if (in_row[static_cast<std::size_t>(q)] != 0) {
          lev[static_cast<std::size_t>(q)] =
              std::min(lev[static_cast<std::size_t>(q)], lq);
          continue;
        }
        while (nxt[static_cast<std::size_t>(at)] != -1 &&
               nxt[static_cast<std::size_t>(at)] < q) {
          at = nxt[static_cast<std::size_t>(at)];
        }
        nxt[static_cast<std::size_t>(q)] = nxt[static_cast<std::size_t>(at)];
        nxt[static_cast<std::size_t>(at)] = q;
        lev[static_cast<std::size_t>(q)] = lq;
        in_row[static_cast<std::size_t>(q)] = 1;
      }
    }

    // Harvest the row into L (c < i) and U (c > i), clearing the markers.
    for (int c = nxt[static_cast<std::size_t>(kHead)]; c != -1;
         c = nxt[static_cast<std::size_t>(c)]) {
      in_row[static_cast<std::size_t>(c)] = 0;
      if (c < i) {
        f.l_idx.push_back(c);
      } else if (c > i) {
        f.u_idx.push_back(c);
        u_fill_lev.push_back(lev[static_cast<std::size_t>(c)]);
      }
    }
    f.l_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(f.l_idx.size());
    f.u_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(f.u_idx.size());
    ulev_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(f.u_idx.size());
  }

  f.l_val.assign(f.l_idx.size(), 0.0);
  f.u_val.assign(f.u_idx.size(), 0.0);
  f.inv_diag.assign(static_cast<std::size_t>(n), 1.0);
  f.l_sched = build_schedule(n, f.l_ptr, f.l_idx, /*forward=*/true);
  f.u_sched = build_schedule(n, f.u_ptr, f.u_idx, /*forward=*/false);
  f.pivot_fallbacks = 0;
  f.numeric_flops = 0.0;
}

void ilu_numeric(const sparse::CsrMatrix& a, DeviceFactor& f) {
  const int n = f.n();
  const int row0 = f.row0;
  f.pivot_fallbacks = 0;
  double flops = 0.0;

  // Pivot-fallback threshold scales with the block's largest diagonal,
  // mirroring invert_dense in core/precondition.cpp.
  double dmax = 0.0;
  for (int i = 0; i < n; ++i) {
    dmax = std::max(dmax, std::fabs(a.at(row0 + i, row0 + i)));
  }
  const double tiny = 1e-13 * (dmax + 1e-300);

  std::vector<double> w(static_cast<std::size_t>(n), 0.0);
  std::vector<double> diag(static_cast<std::size_t>(n), 1.0);
  // pos[c] = i + 1 marks column c as present in row i's pattern (updates
  // landing outside the pattern are dropped — the ILU(k) dropping rule).
  std::vector<int> pos(static_cast<std::size_t>(n), 0);

  for (int i = 0; i < n; ++i) {
    const auto llo = f.l_ptr[static_cast<std::size_t>(i)];
    const auto lhi = f.l_ptr[static_cast<std::size_t>(i) + 1];
    const auto ulo = f.u_ptr[static_cast<std::size_t>(i)];
    const auto uhi = f.u_ptr[static_cast<std::size_t>(i) + 1];

    // Scatter the pattern (zeros) and A's block-local row values into w.
    for (auto p = llo; p < lhi; ++p) {
      const int c = f.l_idx[static_cast<std::size_t>(p)];
      w[static_cast<std::size_t>(c)] = 0.0;
      pos[static_cast<std::size_t>(c)] = i + 1;
    }
    for (auto p = ulo; p < uhi; ++p) {
      const int c = f.u_idx[static_cast<std::size_t>(p)];
      w[static_cast<std::size_t>(c)] = 0.0;
      pos[static_cast<std::size_t>(c)] = i + 1;
    }
    w[static_cast<std::size_t>(i)] = 0.0;
    pos[static_cast<std::size_t>(i)] = i + 1;
    const auto rlo = a.row_ptr[static_cast<std::size_t>(row0 + i)];
    const auto rhi = a.row_ptr[static_cast<std::size_t>(row0 + i) + 1];
    for (auto p = rlo; p < rhi; ++p) {
      const int c = a.col_idx[static_cast<std::size_t>(p)] - row0;
      if (c < 0 || c >= n) continue;
      if (pos[static_cast<std::size_t>(c)] == i + 1) {
        w[static_cast<std::size_t>(c)] = a.vals[static_cast<std::size_t>(p)];
      }
    }

    // IKJ elimination: for each pivot column p (ascending — l_idx is
    // sorted), divide and fold pivot row p's U part into the working row.
    for (auto lp = llo; lp < lhi; ++lp) {
      const int p = f.l_idx[static_cast<std::size_t>(lp)];
      const double lip =
          w[static_cast<std::size_t>(p)] / diag[static_cast<std::size_t>(p)];
      w[static_cast<std::size_t>(p)] = lip;
      flops += 1.0;
      if (lip == 0.0) continue;
      for (auto e = f.u_ptr[static_cast<std::size_t>(p)];
           e < f.u_ptr[static_cast<std::size_t>(p) + 1]; ++e) {
        const int q = f.u_idx[static_cast<std::size_t>(e)];
        if (pos[static_cast<std::size_t>(q)] == i + 1) {
          w[static_cast<std::size_t>(q)] -=
              lip * f.u_val[static_cast<std::size_t>(e)];
          flops += 2.0;
        }
      }
    }

    // Gather the eliminated row back into the factor.
    for (auto p = llo; p < lhi; ++p) {
      f.l_val[static_cast<std::size_t>(p)] =
          w[static_cast<std::size_t>(f.l_idx[static_cast<std::size_t>(p)])];
    }
    for (auto p = ulo; p < uhi; ++p) {
      f.u_val[static_cast<std::size_t>(p)] =
          w[static_cast<std::size_t>(f.u_idx[static_cast<std::size_t>(p)])];
    }
    double di = w[static_cast<std::size_t>(i)];
    if (!(std::fabs(di) > tiny)) {  // tiny/zero/NaN pivot: identity row
      di = 1.0;
      ++f.pivot_fallbacks;
    }
    diag[static_cast<std::size_t>(i)] = di;
    f.inv_diag[static_cast<std::size_t>(i)] = 1.0 / di;
  }
  f.numeric_flops = flops;
}

}  // namespace cagmres::precond
