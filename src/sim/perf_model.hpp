// Calibrated performance model for the simulated multi-GPU node.
//
// The paper's testbed is one Keeneland node: two 8-core Sandy Bridge CPUs
// and three NVIDIA M2090 (Fermi) GPUs on PCIe gen2, CUDA/CUBLAS 4.2 with
// MAGMA/batched kernel optimizations. No GPU exists in this environment, so
// every device operation and every host<->device transfer is *charged*
// against this model instead of timed. The numerics still execute for real;
// only the clock is synthetic.
//
// Cost of one kernel:   t = launch + flops / peak(kernel) + bytes / mem_bw
// Cost of one transfer: t = pcie_latency + bytes / pcie_bandwidth
//
// The additive form naturally reproduces the paper's Fig. 11 curves: small
// inputs are launch/latency bound (low effective GFlop/s), large inputs
// saturate at the kernel-class peak, and BLAS-1 kernels stay memory bound.
//
// Two profiles mirror the paper's before/after kernel study:
//  - kStandard:  CUBLAS 4.2 rates (poor on tall-skinny shapes),
//  - kOptimized: MAGMA tall-skinny DGEMV + batched DGEMM rates.
#pragma once

namespace cagmres::sim {

/// Device kernel classes with distinct throughput characteristics.
enum class Kernel {
  kDot,         ///< BLAS-1 reduction (DDOT/DNRM2)
  kAxpy,        ///< BLAS-1 update
  kScal,
  kCopy,
  kGemv,        ///< BLAS-2 tall-skinny matrix-vector
  kGemm,        ///< BLAS-3 tall-skinny matrix-matrix (Gram, block updates)
  kTrsm,        ///< triangular solve against a tall panel
  kGeqrf,       ///< local Householder QR (BLAS-1/2 bound; CAQR leaf)
  kSpmvEll,     ///< sparse matrix-vector, ELLPACK layout
  kSpmvCsr,     ///< sparse matrix-vector, CSR layout
  kPack,        ///< gather/scatter of indexed vector elements
  kSmall,       ///< tiny O(s^2)-O(s^3) device work (norm fixups etc.)
  kCodec,       ///< transfer payload (de)compression (DESIGN.md §14)
};

/// Kernel implementation generation (paper §V-F).
enum class KernelProfile {
  kStandard,   ///< CUBLAS 4.2 as shipped
  kOptimized,  ///< MAGMA tall-skinny DGEMV + batched DGEMM (the paper's)
};

/// Rate tables. Defaults are calibrated to the paper's M2090 numbers.
struct PerfModel {
  KernelProfile profile = KernelProfile::kOptimized;

  // --- device (calibrated to the paper's Fig. 11 M2090 measurements) ---
  double kernel_launch_s = 7e-6;       ///< per kernel launch
  double dev_mem_bw = 170e9;           ///< B/s streaming (M2090 ~177 peak)
  double gemm_peak_std = 25e9;         ///< CUBLAS 4.2 tall-skinny DGEMM
  double gemm_peak_opt = 140e9;        ///< batched DGEMM (~110 GF/s effective)
  double gemv_peak_std = 10e9;         ///< CUBLAS 4.2 DGEMV
  double gemv_peak_opt = 500e9;        ///< MAGMA DGEMV: bandwidth bound
                                       ///< (~44 GF/s effective at 0.25 f/B)
  double dot_peak = 30e9;              ///< DDOT (bandwidth bound in practice)
  double trsm_peak = 40e9;             ///< MAGMA DTRSM on tall panels
  double geqrf_peak = 9e9;             ///< panel QR (BLAS-1/2 bound)
  double spmv_bw = 120e9;              ///< effective ELLPACK SpMV streaming

  // --- host (two 8-core Sandy Bridge + MKL, Fig. 11's MKL curves) ---
  double cpu_gemm_peak = 70e9;         ///< MKL tall-skinny DGEMM flop/s
  double cpu_blas12_peak = 12e9;       ///< memory-bound BLAS-1/2 flop/s
  double cpu_mem_bw = 50e9;            ///< B/s
  double cpu_spmv_bw = 25e9;           ///< effective CSR SpMV streaming B/s
  double cpu_small_op_s = 1e-6;        ///< fixed cost of tiny host ops

  // --- interconnect (PCIe gen2 x16) ---
  // Latency includes the cudaMemcpyAsync/driver overhead of the era, which
  // dominated small transfers (calibrated against Fig. 8's s=1 -> s=4 gain).
  double pcie_latency_s = 25e-6;       ///< per message
  double pcie_bw = 5.5e9;              ///< B/s per direction per device

  // --- inter-node network (QDR InfiniBand class, for the multi-node
  // projection the paper's conclusion asks for) ---
  double net_latency_s = 15e-6;        ///< per MPI message (incl. stack)
  double net_bw = 3.2e9;               ///< B/s per link

  // --- intra-node peer link (NVLink-class, for the two-level hierarchy) ---
  // Devices on the same non-coordinating node exchange checkpoint shards and
  // node-local halo traffic at these rates instead of paying PCIe + network.
  double peer_latency_s = 8e-6;        ///< per peer message
  double peer_bw = 20e9;               ///< B/s per direction

  // --- transfer codec (DESIGN.md §14) ---
  // FRSZ2-class fixed-rate (de)compression is bandwidth bound and far above
  // every link rate; charged launch-free because it is modeled as fused into
  // the pack/DMA pipeline rather than as a separate kernel dispatch.
  double codec_bw = 100e9;             ///< B/s touched per (de)compress pass

  /// Seconds one device kernel takes under this model.
  double device_seconds(Kernel k, double flops, double bytes) const;

  /// Seconds the same class of work takes on the 16-core host.
  double host_seconds(Kernel k, double flops, double bytes) const;

  /// Seconds for one host<->device message of `bytes`.
  double transfer_seconds(double bytes) const;

  /// Seconds for one inter-node network message of `bytes`.
  double net_seconds(double bytes) const;

  /// Seconds for one intra-node (NVLink-class) peer message of `bytes`.
  double peer_seconds(double bytes) const;

  /// The flop/s rate this model uses for a device kernel class (peak, before
  /// launch/memory effects) — exposed for the Fig. 11 rate-curve bench.
  double device_peak(Kernel k) const;
};

}  // namespace cagmres::sim
