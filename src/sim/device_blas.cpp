#include "sim/device_blas.hpp"

#include <limits>
#include <vector>

#include "blas/blas1.hpp"
#include "blas/blas2.hpp"
#include "blas/blas3.hpp"
#include "blas/lapack.hpp"

// Execution model (see DESIGN.md §9): every wrapper charges the simulated
// clock, polls/latches injected faults, and bumps counters on the CALLING
// host thread, in program order — then hands the pure numerical body to the
// machine's host pool as a closure on device d's in-order stream. Operands
// that live in device-owned blocks are captured by pointer (disjoint per
// stream); small host-side operands that the caller may overwrite before
// the worker runs (reduction coefficients, R factors) are copied by value
// into the closure. dev_dot and dev_qr_explicit stay synchronous: their
// results feed immediately into host control flow.

namespace cagmres::sim {

namespace {

constexpr double kW = 8.0;  // bytes per double word

/// Injected transient kernel fault: overwrite the op's output with NaN.
/// The recovery layer detects the poison at the next block-norm / finite
/// check and replays the tainted block.
void poison(double* p, int n) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < n; ++i) p[i] = nan;
}

void poison_panel(double* p, int rows, int cols, int ld) {
  for (int j = 0; j < cols; ++j) {
    poison(p + static_cast<std::size_t>(j) * ld, rows);
  }
}

/// Copies `n` doubles starting at `p` for closure capture.
std::vector<double> snap(const double* p, int n) {
  return std::vector<double>(p, p + n);
}

/// Copies a rows x cols panel (leading dimension ld) into a dense column-
/// major copy with leading dimension `rows`, for closure capture.
std::vector<double> snap_panel(const double* p, int rows, int cols, int ld) {
  std::vector<double> out(static_cast<std::size_t>(rows) * cols);
  for (int j = 0; j < cols; ++j) {
    const double* src = p + static_cast<std::size_t>(j) * ld;
    std::copy(src, src + rows,
              out.begin() + static_cast<std::ptrdiff_t>(j) * rows);
  }
  return out;
}

}  // namespace

double dev_dot(Machine& m, int d, int n, const double* x, const double* y) {
  // Synchronous: the caller consumes the scalar immediately (norms,
  // convergence checks), so drain the stream and compute on this thread.
  m.charge_device(d, Kernel::kDot, 2.0 * n, 2.0 * kW * n);
  const bool hit = m.consume_kernel_fault(d);
  m.drain_device(d);
  const double out = blas::dot(n, x, y);
  if (hit) return std::numeric_limits<double>::quiet_NaN();
  return out;
}

void dev_axpy(Machine& m, int d, int n, double alpha, const double* x,
              double* y) {
  m.charge_device(d, Kernel::kAxpy, 2.0 * n, 3.0 * kW * n);
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=] {
    blas::axpy(n, alpha, x, y);
    if (hit) poison(y, n);
  });
}

void dev_scal(Machine& m, int d, int n, double alpha, double* x) {
  m.charge_device(d, Kernel::kScal, 1.0 * n, 2.0 * kW * n);
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=] {
    blas::scal(n, alpha, x);
    if (hit) poison(x, n);
  });
}

void dev_copy(Machine& m, int d, int n, const double* x, double* y) {
  m.charge_device(d, Kernel::kCopy, 0.0, 2.0 * kW * n);
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=] {
    blas::copy(n, x, y);
    if (hit) poison(y, n);
  });
}

void dev_gemv_t(Machine& m, int d, int rows, int k, const double* a, int lda,
                const double* x, double* y) {
  m.charge_device(d, Kernel::kGemv, 2.0 * rows * k,
                  kW * (static_cast<double>(rows) * k + rows + k));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=] {
    blas::gemv_t(rows, k, 1.0, a, lda, x, 0.0, y);
    if (hit) poison(y, k);
  });
}

void dev_gemv_n_sub(Machine& m, int d, int rows, int k, const double* a,
                    int lda, const double* r, double* y) {
  m.charge_device(d, Kernel::kGemv, 2.0 * rows * k,
                  kW * (static_cast<double>(rows) * k + 2.0 * rows + k));
  const bool hit = m.consume_kernel_fault(d);
  // r is a host-side coefficient vector the caller reuses next iteration.
  m.run_on_device(d, [=, rc = snap(r, k)] {
    blas::gemv_n(rows, k, -1.0, a, lda, rc.data(), 1.0, y);
    if (hit) poison(y, rows);
  });
}

void dev_gemv_n_acc(Machine& m, int d, int rows, int k, const double* a,
                    int lda, const double* r, double* y) {
  m.charge_device(d, Kernel::kGemv, 2.0 * static_cast<double>(rows) * k,
                  kW * (static_cast<double>(rows) * k + 2.0 * rows + k));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=, rc = snap(r, k)] {
    blas::gemv_n(rows, k, 1.0, a, lda, rc.data(), 1.0, y);
    if (hit) poison(y, rows);
  });
}

void dev_ger_sub(Machine& m, int d, int rows, int k, const double* x,
                 const double* c, double* b, int ldb) {
  m.charge_device(d, Kernel::kGemv, 2.0 * static_cast<double>(rows) * k,
                  kW * (2.0 * static_cast<double>(rows) * k + rows + k));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=, cc = snap(c, k)] {
    blas::ger(rows, k, -1.0, x, cc.data(), b, ldb);
    if (hit) poison_panel(b, rows, k, ldb);
  });
}

void dev_gram(Machine& m, int d, int rows, int k, const double* a, int lda,
              double* c, int ldc) {
  // Symmetric rank-k: k(k+1)/2 dot products of length `rows`.
  m.charge_device(d, Kernel::kGemm,
                  static_cast<double>(rows) * k * (k + 1),
                  kW * (static_cast<double>(rows) * k + static_cast<double>(k) * k));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=] {
    blas::syrk_tn(rows, k, a, lda, c, ldc);
    if (hit) poison_panel(c, k, k, ldc);
  });
}

void dev_gram_float(Machine& m, int d, int rows, int k, const double* a,
                    int lda, double* c, int ldc) {
  // SGEMM runs at ~2x the DGEMM rate and moves half the bytes; model that
  // by halving both terms of the standard Gram charge.
  m.charge_device(d, Kernel::kGemm,
                  0.5 * static_cast<double>(rows) * k * (k + 1),
                  0.5 * kW *
                      (static_cast<double>(rows) * k +
                       static_cast<double>(k) * k));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=] {
    // Real float numerics: demote the panel column-by-column, accumulate
    // the Gram products in float, promote the result.
    std::vector<float> fa(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      const double* col = a + static_cast<std::size_t>(j) * lda;
      float* fcol = fa.data() + static_cast<std::size_t>(j) * rows;
      for (int i = 0; i < rows; ++i) fcol[i] = static_cast<float>(col[i]);
    }
    for (int j = 0; j < k; ++j) {
      const float* fj = fa.data() + static_cast<std::size_t>(j) * rows;
      for (int i = 0; i <= j; ++i) {
        const float* fi = fa.data() + static_cast<std::size_t>(i) * rows;
        float acc = 0.0f;
        for (int p = 0; p < rows; ++p) acc += fi[p] * fj[p];
        c[static_cast<std::size_t>(j) * ldc + i] = static_cast<double>(acc);
        c[static_cast<std::size_t>(i) * ldc + j] = static_cast<double>(acc);
      }
    }
    if (hit) poison_panel(c, k, k, ldc);
  });
}

void dev_gemm_tn(Machine& m, int d, int rows, int ka, int kb, const double* a,
                 int lda, const double* b, int ldb, double* c, int ldc) {
  m.charge_device(d, Kernel::kGemm,
                  2.0 * static_cast<double>(rows) * ka * kb,
                  kW * (static_cast<double>(rows) * (ka + kb) +
                        static_cast<double>(ka) * kb));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=] {
    blas::gemm(blas::Trans::T, blas::Trans::N, ka, kb, rows, 1.0, a, lda, b,
               ldb, 0.0, c, ldc);
    if (hit) poison_panel(c, ka, kb, ldc);
  });
}

void dev_gemm_nn_sub(Machine& m, int d, int rows, int ka, int kb,
                     const double* a, int lda, const double* c, int ldc,
                     double* b, int ldb) {
  m.charge_device(d, Kernel::kGemm,
                  2.0 * static_cast<double>(rows) * ka * kb,
                  kW * (static_cast<double>(rows) * (ka + 2.0 * kb) +
                        static_cast<double>(ka) * kb));
  const bool hit = m.consume_kernel_fault(d);
  // c is the broadcast host-side coefficient block; callers reuse it.
  m.run_on_device(d, [=, cc = snap_panel(c, ka, kb, ldc)] {
    blas::gemm(blas::Trans::N, blas::Trans::N, rows, kb, ka, -1.0, a, lda,
               cc.data(), ka, 1.0, b, ldb);
    if (hit) poison_panel(b, rows, kb, ldb);
  });
}

void dev_gemm_nn(Machine& m, int d, int rows, int ka, int kb, const double* a,
                 int lda, const double* c, int ldc, double* b, int ldb) {
  m.charge_device(d, Kernel::kGemm,
                  2.0 * static_cast<double>(rows) * ka * kb,
                  kW * (static_cast<double>(rows) * (ka + kb) +
                        static_cast<double>(ka) * kb));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=, cc = snap_panel(c, ka, kb, ldc)] {
    blas::gemm(blas::Trans::N, blas::Trans::N, rows, kb, ka, 1.0, a, lda,
               cc.data(), ka, 0.0, b, ldb);
    if (hit) poison_panel(b, rows, kb, ldb);
  });
}

void dev_trsm(Machine& m, int d, int rows, int k, const double* r, int ldr,
              double* b, int ldb) {
  m.charge_device(d, Kernel::kTrsm,
                  static_cast<double>(rows) * k * k,
                  kW * (2.0 * static_cast<double>(rows) * k +
                        0.5 * static_cast<double>(k) * k));
  const bool hit = m.consume_kernel_fault(d);
  m.run_on_device(d, [=, rc = snap_panel(r, k, k, ldr)] {
    blas::trsm_right_upper(rows, k, rc.data(), k, b, ldb);
    if (hit) poison_panel(b, rows, k, ldb);
  });
}

void dev_qr_explicit(Machine& m, int d, const blas::DMat& v, blas::DMat& q,
                     blas::DMat& r) {
  const double rows = v.rows();
  const double k = v.cols();
  // geqrf ~ 2 m k^2 plus orgqr ~ 2 m k^2 (paper Fig. 10: 4 n s^2, xGEQR2).
  m.charge_device(d, Kernel::kGeqrf, 4.0 * rows * k * k,
                  kW * 4.0 * rows * k);
  const bool hit = m.consume_kernel_fault(d);
  // Synchronous: callers pass loop-local panels and read q/r right away.
  m.drain_device(d);
  blas::qr_explicit(v, q, r);
  if (hit) poison_panel(q.data(), q.rows(), q.cols(), q.ld());
}

void dev_spmv_ell(Machine& m, int d, const sparse::EllMatrix& a,
                  const double* x, double* y) {
  const double slots = static_cast<double>(a.stored_slots());
  // 8B value + 4B index + 8B gathered x per slot, plus the result vector.
  m.charge_device(d, Kernel::kSpmvEll, 2.0 * slots,
                  slots * 20.0 + kW * a.n_rows);
  const bool hit = m.consume_kernel_fault(d);
  const sparse::EllMatrix* ap = &a;
  m.run_on_device(d, [=] {
    sparse::spmv(*ap, x, y);
    if (hit) poison(y, ap->n_rows);
  });
}

void dev_spmv_csr(Machine& m, int d, const sparse::CsrMatrix& a,
                  const double* x, double* y) {
  const double nnz = static_cast<double>(a.nnz());
  m.charge_device(d, Kernel::kSpmvCsr, 2.0 * nnz,
                  nnz * 20.0 + 12.0 * a.n_rows);
  const bool hit = m.consume_kernel_fault(d);
  const sparse::CsrMatrix* ap = &a;
  m.run_on_device(d, [=] {
    sparse::spmv(*ap, x, y);
    if (hit) poison(y, ap->n_rows);
  });
}

void dev_pack(Machine& m, int d, const std::vector<int>& idx, const double* x,
              double* out) {
  const double cnt = static_cast<double>(idx.size());
  m.charge_device(d, Kernel::kPack, 0.0, cnt * 20.0);
  const bool hit = m.consume_kernel_fault(d);
  const std::vector<int>* ip = &idx;  // plan-owned, outlives the solve
  m.run_on_device(d, [=] {
    for (std::size_t i = 0; i < ip->size(); ++i) out[i] = x[(*ip)[i]];
    if (hit) poison(out, static_cast<int>(ip->size()));
  });
}

void dev_unpack(Machine& m, int d, const std::vector<int>& idx,
                const double* in, double* x) {
  const double cnt = static_cast<double>(idx.size());
  m.charge_device(d, Kernel::kPack, 0.0, cnt * 20.0);
  const bool hit = m.consume_kernel_fault(d);
  const std::vector<int>* ip = &idx;
  m.run_on_device(d, [=] {
    for (std::size_t i = 0; i < ip->size(); ++i) x[(*ip)[i]] = in[i];
    if (hit) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      for (const int i : *ip) x[i] = nan;
    }
  });
}

}  // namespace cagmres::sim
