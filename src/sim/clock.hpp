// Simulated timelines for the host and each device.
//
// The execution model matches the paper's implementation style: the host
// posts asynchronous kernels/transfers to each device in a loop, devices run
// concurrently, and the host blocks only at explicit synchronization points.
// Each timeline is a scalar "busy until" timestamp:
//   - a device op appended to device d starts at dev[d] (its queue is FIFO);
//   - an async transfer posted by the host starts at max(dev[d], host) —
//     the host must have reached the post site, but does not block;
//   - a host wait advances host to the device's timestamp;
//   - elapsed() is the global maximum.
#pragma once

#include <algorithm>
#include <vector>

namespace cagmres::sim {

/// Per-entity simulated timelines (see file comment for the model).
class Clock {
 public:
  explicit Clock(int n_devices);

  int n_devices() const { return static_cast<int>(dev_.size()); }

  double host_time() const { return host_; }
  double device_time(int d) const { return dev_[static_cast<std::size_t>(d)]; }

  /// Host executes work for `s` seconds.
  void host_advance(double s) { host_ += s; }

  /// Device d executes a kernel for `s` seconds (enqueued after its current
  /// work; the host is assumed to have already posted it — callers post from
  /// host loops, so the start is also lower-bounded by the host time).
  void device_advance(int d, double s);

  /// Async transfer (either direction) of duration `s` involving device d:
  /// occupies the device's copy queue; the host only posts it.
  void async_transfer(int d, double s) { device_advance(d, s); }

  /// Host blocks until device d is idle.
  void host_wait(int d);

  /// Host blocks until the given simulated timestamp (used to wait for an
  /// event recorded mid-queue — e.g. a transfer posted BEFORE later kernels
  /// — enabling communication/computation overlap a la pipelined GMRES).
  void host_wait_time(double t) { host_ = std::max(host_, t); }

  /// Device d's next op cannot start before the given simulated timestamp
  /// (the cudaStreamWaitEvent analogue: the waiter's timeline advances to
  /// max(own, event), without involving the host).
  void device_wait_time(int d, double t);

  /// Host blocks until all devices are idle.
  void host_wait_all();

  /// Device d's next op cannot start before the host's current time
  /// (e.g. it consumes a value the host just produced).
  void device_wait_host(int d);

  /// Full barrier: all timelines jump to the global maximum.
  void sync_all();

  /// Global maximum over all timelines.
  double elapsed() const;

  /// Resets every timeline to zero.
  void reset();

 private:
  double host_ = 0.0;
  std::vector<double> dev_;
};

}  // namespace cagmres::sim
