#include "sim/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace cagmres::sim {

namespace {

// One FRSZ2 block: scale every value into a fixed-point grid anchored at the
// block's largest exponent, then decode back. All scaling is by powers of two
// (ldexp), so a block whose values need at most bits-1 mantissa bits — in
// particular any constant block — round-trips exactly.
void frsz2_block(double* x, int n, int bits) {
  double amax = 0.0;
  for (int i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) return;  // pass through: poison must survive
    amax = std::max(amax, std::fabs(x[i]));
  }
  if (amax == 0.0) return;
  int e = 0;
  std::frexp(amax, &e);  // amax = f * 2^e with f in [0.5, 1)
  const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
  for (int i = 0; i < n; ++i) {
    std::int64_t q = std::llround(std::ldexp(x[i], (bits - 1) - e));
    q = std::clamp(q, -qmax, qmax);
    x[i] = std::ldexp(static_cast<double>(q), e - (bits - 1));
  }
}

}  // namespace

double CodecSpec::wire_bytes(double n_values) const {
  if (n_values <= 0.0) return 0.0;
  switch (kind) {
    case Codec::kNone:
      return 8.0 * n_values;
    case Codec::kFp32:
      return 4.0 * n_values;
    case Codec::kFrsz2: {
      const double blocks = std::ceil(n_values / kBlock);
      return 2.0 * blocks + n_values * bits / 8.0;
    }
  }
  return 8.0 * n_values;
}

void CodecSpec::roundtrip(double* x, int n) const {
  switch (kind) {
    case Codec::kNone:
      return;
    case Codec::kFp32:
      for (int i = 0; i < n; ++i) {
        // Keep non-finite payloads intact; float demotion would preserve
        // them anyway, but the intent deserves to be explicit.
        if (std::isfinite(x[i])) x[i] = static_cast<double>(static_cast<float>(x[i]));
      }
      return;
    case Codec::kFrsz2:
      for (int i0 = 0; i0 < n; i0 += kBlock)
        frsz2_block(x + i0, std::min(kBlock, n - i0), bits);
      return;
  }
}

std::string CodecSpec::to_string() const {
  switch (kind) {
    case Codec::kNone:
      return "none";
    case Codec::kFp32:
      return "fp32";
    case Codec::kFrsz2:
      return "frsz2:" + std::to_string(bits);
  }
  return "none";
}

CodecSpec parse_codec(const std::string& s) {
  CodecSpec spec;
  if (s == "none") return spec;
  if (s == "fp32") {
    spec.kind = Codec::kFp32;
    return spec;
  }
  if (s == "frsz2" || s.rfind("frsz2:", 0) == 0) {
    spec.kind = Codec::kFrsz2;
    if (s.size() > 6) {
      int bits = 0;
      try {
        bits = std::stoi(s.substr(6));
      } catch (const std::exception&) {
        throw Error("codec spec: bad frsz2 bits: " + s);
      }
      if (bits < 4 || bits > 31)
        throw Error("codec spec: frsz2 bits must be in [4, 31]: " + s);
      spec.bits = bits;
    }
    return spec;
  }
  throw Error("codec spec: unknown codec (want none|fp32|frsz2[:bits]): " + s);
}

const CodecSpec& CodecConfig::at(TrafficClass c) const {
  switch (c) {
    case TrafficClass::kHalo:
      return halo;
    case TrafficClass::kReduce:
      return reduce;
    case TrafficClass::kCkpt:
      return ckpt;
  }
  return halo;
}

CodecSpec& CodecConfig::at(TrafficClass c) {
  return const_cast<CodecSpec&>(static_cast<const CodecConfig&>(*this).at(c));
}

std::string CodecConfig::to_string() const {
  std::string out;
  const auto add = [&](const char* name, const CodecSpec& s) {
    if (!s.active()) return;
    if (!out.empty()) out += ',';
    out += name;
    out += '=';
    out += s.to_string();
  };
  add("halo", halo);
  add("reduce", reduce);
  add("ckpt", ckpt);
  return out.empty() ? "none" : out;
}

CodecConfig parse_codec_config(const std::string& spec, bool lenient) {
  CodecConfig cfg;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    try {
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos)
        throw Error("codec spec: want class=codec: " + entry);
      const std::string cls = entry.substr(0, eq);
      const CodecSpec s = parse_codec(entry.substr(eq + 1));
      if (cls == "halo") {
        cfg.halo = s;
      } else if (cls == "reduce") {
        cfg.reduce = s;
      } else if (cls == "ckpt") {
        if (s.kind == Codec::kFrsz2)
          throw Error(
              "codec spec: ckpt requires a lossless-restorable codec "
              "(none|fp32); frsz2 block boundaries shift on repartition");
        cfg.ckpt = s;
      } else {
        throw Error("codec spec: unknown traffic class "
                    "(want halo|reduce|ckpt): " + cls);
      }
    } catch (const Error&) {
      if (!lenient) throw;
      // Environment path: drop the bad entry, keep the rest.
    }
  }
  return cfg;
}

}  // namespace cagmres::sim
