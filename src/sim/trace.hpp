// Simulated-timeline tracing.
//
// When enabled on a Machine, every charged kernel, transfer, and host
// operation is recorded as a (timeline, start, end, name, phase) interval.
// write_chrome_json emits the Chrome trace-event format, so a whole solve
// can be inspected in chrome://tracing or Perfetto — device concurrency,
// reduction stalls, and MPK's single exchange per s vectors are all
// directly visible.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cagmres::sim {

/// One recorded interval on a simulated timeline.
struct TraceEvent {
  int device = -1;       ///< -1 = host timeline, otherwise the device id
  double t_start = 0.0;  ///< simulated seconds
  double t_end = 0.0;
  std::string name;      ///< kernel class or "d2h"/"h2d"
  std::string phase;     ///< active solver phase when charged
};

/// Collected trace of one Machine.
class Trace {
 public:
  void record(int device, double t_start, double t_end, std::string name,
              std::string phase);

  /// Zero-duration marker on a timeline (fault injections: "fault:kill",
  /// "fault:nan", "fault:corrupt", "fault:stall"). Rendered by Chrome
  /// tracing as an instant tick at the injection point.
  void record_instant(int device, double t, std::string name,
                      std::string phase);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Chrome trace-event JSON ("traceEvents" array of complete events,
  /// microsecond timestamps; pid 0, one tid per timeline).
  void write_chrome_json(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Human-readable name of a device kernel class (for traces and reports).
class PerfModel;
enum class Kernel;
std::string kernel_name(Kernel k);

}  // namespace cagmres::sim
