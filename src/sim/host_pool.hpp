// Host-side worker pool that executes the functional bodies of charged
// device kernels concurrently, one in-order stream per simulated device.
//
// The simulated clock is charged on the *calling* host thread at enqueue
// time, in program order, exactly as before this engine existed; only the
// numerical work (the closure) is deferred to a worker. Per-device data
// blocks live in disjoint allocations and every task on one stream runs in
// FIFO order on a single worker, so results are byte-identical for any
// worker count — including zero, where enqueue() degenerates to an inline
// call on the host thread.
//
// Dispatch fast path (DESIGN §10): posting a closure costs one in-place
// construction into a fixed 128-byte slot of the stream's ring buffer plus
// one atomic release — no heap allocation, no mutex, and no condition-
// variable signal unless a worker is actually asleep. That keeps the
// workers>0 configurations from losing wall-clock to the inline path on
// dispatch overhead alone: the mutex/notify slow path is paid only at the
// sleep/wake edges, amortized across whole bursts of enqueues.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace cagmres::sim {

/// Fixed-size worker pool with per-stream FIFO ordering.
///
/// Streams are dense ids (one per physical device). A stream is pinned to
/// worker `stream % n_workers`, which preserves in-order execution within a
/// stream without any per-task dependency tracking. Exceptions thrown by a
/// task are latched per stream; later tasks on a broken stream are skipped
/// (their inputs may be garbage) and the exception rethrows at the next
/// drain of that stream.
///
/// Each stream is a single-producer / single-consumer ring of small-buffer
/// slots: the (single) posting thread constructs the closure directly into
/// the slot and publishes it with one atomic store; the owning worker
/// invokes and destroys it in place. Closures larger than a slot fall back
/// to one heap allocation, but every closure the simulator posts fits.
///
/// Tickets are the wall-clock half of the cudaEvent analogue: ticket(s)
/// snapshots the number of tasks enqueued to stream s so far, and
/// wait_ticket / enqueue_wait block on only that prefix having *completed*
/// (skipped tasks on a latched stream still count as completed, so a waiter
/// never deadlocks on a broken producer). This is strictly finer than
/// drain(): tasks enqueued after the ticket are not waited on.
///
/// enqueue_wait cannot deadlock: the wait is a *gate* slot in the ring, not
/// a blocking closure. A worker that finds an unsatisfied gate at the front
/// of one stream simply moves on to its other streams (and sleeps only when
/// none has runnable work), so no worker thread ever blocks on another
/// stream's progress. Tickets are snapshotted on the (single) posting
/// thread before the gate is enqueued, so a gate only ever waits on tasks
/// already published ahead of it; inductively the oldest incomplete slot in
/// the pool is always passable, so progress is always possible — even when
/// both streams of a gate are pinned to the same worker.
class HostPool {
 public:
  HostPool(int n_streams, int n_workers);
  ~HostPool();

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  int n_workers() const { return n_workers_; }
  int n_streams() const { return n_streams_; }

  /// Drains, joins the current workers, and respawns `n_workers` of them
  /// (0 = run everything inline on the calling thread).
  void resize(int n_workers);

  /// Appends a task to `stream`. With zero workers the task runs inline and
  /// any exception propagates directly to the caller. The closure is
  /// constructed in place in the stream's ring (no allocation, no lock);
  /// when the ring is full the calling thread blocks until the worker
  /// retires a slot.
  template <typename F>
  void enqueue(int stream, F&& fn) {
    const auto s = check_stream(stream);
    if (n_workers_ == 0) {
      // Serial mode: byte-identical to the pre-engine behaviour, exceptions
      // propagate straight to the caller. The counters still move so that a
      // ticket taken in serial mode is complete by construction.
      bump_serial(s);
      fn();
      return;
    }
    construct_task(producer_slot(s), std::forward<F>(fn));
    publish(s);
  }

  /// Wall-clock barrier on one stream: returns when every task enqueued to
  /// it so far has finished. Rethrows (and clears) the stream's latched
  /// exception, if any.
  void drain(int stream);

  /// Wall-clock barrier on every stream. Rethrows the latched exception of
  /// the lowest-numbered broken stream; all latches are cleared either way.
  void drain_all();

  /// drain_all() that swallows latched exceptions — for unwind paths and
  /// the destructor, where a second throw would terminate.
  void drain_all_nothrow() noexcept;

  /// Snapshot of `stream`'s enqueue counter: a wall-clock event marking
  /// every task posted to the stream so far. With zero workers tasks run
  /// inline, so any returned ticket is already complete.
  std::int64_t ticket(int stream);

  /// Calling-thread block until `stream` has completed (run or skipped) at
  /// least `ticket` tasks. Rethrows (and clears) the stream's latched
  /// exception afterwards, like drain(), so a host-side event wait is also
  /// an error-collection point for that stream.
  void wait_ticket(int stream, std::int64_t ticket);

  /// Appends a gate to `stream` that holds back its later tasks until
  /// `on_stream` has completed at least `ticket` tasks — the
  /// cudaStreamWaitEvent analogue. Never rethrows `on_stream`'s latch (the
  /// producing stream keeps it for its own next drain). No-op with zero
  /// workers or when waiting on itself.
  void enqueue_wait(int stream, int on_stream, std::int64_t ticket);

 private:
  // One ring slot: two dispatch pointers plus inline closure storage.
  // invoke == nullptr marks a gate slot (GateData lives in buf).
  static constexpr std::size_t kSlotBytes = 128;
  static constexpr std::size_t kInlineBytes = kSlotBytes - 2 * sizeof(void*);
  static constexpr std::uint64_t kRingSlots = 512;  // power of two, per stream
  static constexpr std::uint64_t kRingMask = kRingSlots - 1;

  struct Slot {
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };
  static_assert(sizeof(Slot) == kSlotBytes, "slot layout");

  struct GateData {
    std::int64_t ticket;
    std::int32_t on_stream;
  };
  static_assert(sizeof(GateData) <= kInlineBytes, "gate fits a slot");

  template <typename F>
  static void construct_task(Slot& slot, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(slot.buf)) Fn(std::forward<F>(fn));
      slot.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
      slot.destroy = std::is_trivially_destructible_v<Fn>
                         ? nullptr
                         : +[](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      // Oversized closure: one heap allocation, slot stores the pointer.
      auto* heap = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(slot.buf)) Fn*(heap);
      slot.invoke = [](void* p) { (**static_cast<Fn**>(p))(); };
      slot.destroy = [](void* p) { delete *static_cast<Fn**>(p); };
    }
  }

  std::size_t check_stream(int stream) const {
    const auto s = static_cast<std::size_t>(stream);
    CAGMRES_REQUIRE(s < static_cast<std::size_t>(n_streams_),
                    "host pool: bad stream");
    return s;
  }

  void bump_serial(std::size_t s);
  /// Waits for ring space and returns the slot at the producer's cursor.
  Slot& producer_slot(std::size_t s);
  /// Publishes the just-constructed slot and wakes the owning worker if it
  /// is asleep and not already notified.
  void publish(std::size_t s);
  void maybe_wake(std::size_t w);
  void wake_sleeping_workers();
  /// Runs every currently-runnable task at the front of stream s; returns
  /// whether anything ran (or a gate was passed).
  bool run_ready(std::size_t s);
  bool runnable_front(std::size_t s) const;
  bool any_runnable(std::size_t w) const;
  void complete_one(std::size_t s);
  void latch_exception(std::size_t s, std::exception_ptr err);
  void rethrow_latch(std::size_t s);
  /// Calling-thread block until completed_[s] >= target (no latch handling).
  void wait_completed(std::size_t s, std::int64_t target);
  void worker_main(std::size_t w);
  void stop_and_join();
  void spawn(int n_workers);

  int n_streams_ = 0;
  int n_workers_ = 0;
  int spin_ = 0;  ///< pre-sleep rescan budget (0 on single-core hosts)
  std::vector<std::unique_ptr<Slot[]>> rings_;  ///< one ring per stream
  // enqueued_ doubles as the ring head, completed_ as the ring tail: every
  // pop retires exactly one slot. Both are monotonic per stream.
  std::unique_ptr<std::atomic<std::int64_t>[]> enqueued_;
  std::unique_ptr<std::atomic<std::int64_t>[]> completed_;
  std::unique_ptr<std::atomic<bool>[]> broken_;  ///< latch hint for skips
  // Wakeup amortization. Each worker advertises kAwake / kSleeping /
  // kNotified; a publisher pays the mutex + notify only on the kSleeping ->
  // kNotified transition, so a burst of enqueues onto a descheduled worker
  // costs exactly one wake. The (single) host thread registers the stream
  // and completion count it is waiting for, so workers signal cv_done_ only
  // on the completion that actually crosses the target.
  static constexpr int kAwake = 0, kSleeping = 1, kNotified = 2;
  std::unique_ptr<std::atomic<int>[]> wstate_;  ///< one per worker
  std::atomic<int> host_wait_stream_{-1};       ///< -1: no host waiter
  std::atomic<std::int64_t> host_wait_target_{0};
  std::atomic<int> gates_pending_{0};  ///< published, not-yet-passed gates
  std::mutex mu_;                      ///< guards latched_, stop_, the cvs
  std::condition_variable cv_work_;   ///< workers wait for runnable fronts
  std::condition_variable cv_done_;   ///< host waits for completions
  std::vector<std::exception_ptr> latched_;  ///< one per stream, under mu_
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cagmres::sim
