// Host-side worker pool that executes the functional bodies of charged
// device kernels concurrently, one in-order stream per simulated device.
//
// The simulated clock is charged on the *calling* host thread at enqueue
// time, in program order, exactly as before this engine existed; only the
// numerical work (the closure) is deferred to a worker. Per-device data
// blocks live in disjoint allocations and every task on one stream runs in
// FIFO order on a single worker, so results are byte-identical for any
// worker count — including zero, where enqueue() degenerates to an inline
// call on the host thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cagmres::sim {

/// Fixed-size worker pool with per-stream FIFO ordering.
///
/// Streams are dense ids (one per physical device). A stream is pinned to
/// worker `stream % n_workers`, which preserves in-order execution within a
/// stream without any per-task dependency tracking. Exceptions thrown by a
/// task are latched per stream; later tasks on a broken stream are skipped
/// (their inputs may be garbage) and the exception rethrows at the next
/// drain of that stream.
///
/// Tickets are the wall-clock half of the cudaEvent analogue: ticket(s)
/// snapshots the number of tasks enqueued to stream s so far, and
/// wait_ticket / enqueue_wait block on only that prefix having *completed*
/// (skipped tasks on a latched stream still count as completed, so a waiter
/// never deadlocks on a broken producer). This is strictly finer than
/// drain(): tasks enqueued after the ticket are not waited on.
///
/// enqueue_wait cannot deadlock: tickets are snapshotted on the (single)
/// posting thread before the waiter is enqueued, so a waiter only ever
/// blocks on tasks that sit ahead of it in every worker's FIFO deque.
/// Inductively, the oldest incomplete task in the pool is never a waiter
/// whose ticket is unsatisfied, so progress is always possible.
class HostPool {
 public:
  HostPool(int n_streams, int n_workers);
  ~HostPool();

  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  int n_workers() const { return static_cast<int>(threads_.size()); }
  int n_streams() const { return static_cast<int>(in_flight_.size()); }

  /// Drains, joins the current workers, and respawns `n_workers` of them
  /// (0 = run everything inline on the calling thread).
  void resize(int n_workers);

  /// Appends a task to `stream`. With zero workers the task runs inline and
  /// any exception propagates directly to the caller.
  void enqueue(int stream, std::function<void()> fn);

  /// Wall-clock barrier on one stream: returns when every task enqueued to
  /// it so far has finished. Rethrows (and clears) the stream's latched
  /// exception, if any.
  void drain(int stream);

  /// Wall-clock barrier on every stream. Rethrows the latched exception of
  /// the lowest-numbered broken stream; all latches are cleared either way.
  void drain_all();

  /// drain_all() that swallows latched exceptions — for unwind paths and
  /// the destructor, where a second throw would terminate.
  void drain_all_nothrow() noexcept;

  /// Snapshot of `stream`'s enqueue counter: a wall-clock event marking
  /// every task posted to the stream so far. With zero workers tasks run
  /// inline, so any returned ticket is already complete.
  std::int64_t ticket(int stream);

  /// Calling-thread block until `stream` has completed (run or skipped) at
  /// least `ticket` tasks. Rethrows (and clears) the stream's latched
  /// exception afterwards, like drain(), so a host-side event wait is also
  /// an error-collection point for that stream.
  void wait_ticket(int stream, std::int64_t ticket);

  /// Appends a task to `stream` that blocks until `on_stream` has completed
  /// at least `ticket` tasks — the cudaStreamWaitEvent analogue. Never
  /// rethrows `on_stream`'s latch (the producing stream keeps it for its
  /// own next drain). No-op with zero workers or when waiting on itself.
  void enqueue_wait(int stream, int on_stream, std::int64_t ticket);

 private:
  struct Task {
    int stream;
    std::function<void()> fn;
  };

  void worker_main(std::size_t w);
  void wait_stream_idle(std::unique_lock<std::mutex>& lk, int stream);
  void wait_all_idle(std::unique_lock<std::mutex>& lk);
  void stop_and_join();
  void spawn(int n_workers);

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers wait for tasks
  std::condition_variable cv_done_;  ///< drainers wait for idle
  std::vector<std::deque<Task>> queues_;          ///< one per worker
  std::vector<std::int64_t> in_flight_;           ///< one per stream
  std::vector<std::int64_t> enqueued_;            ///< per stream, monotonic
  std::vector<std::int64_t> completed_;           ///< per stream, monotonic
  std::vector<std::exception_ptr> latched_;       ///< one per stream
  std::int64_t total_in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cagmres::sim
