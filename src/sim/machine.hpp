// The simulated multi-GPU machine: devices, clock, counters, and the
// distributed data containers the solvers operate on.
//
// All "device memory" is host memory, but the containers keep per-device
// blocks in separate allocations and all access is routed through the
// charged kernels in device_blas.hpp, so the communication structure of the
// real implementation is preserved and priced.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "blas/matrix.hpp"
#include "sim/clock.hpp"
#include "sim/codec.hpp"
#include "sim/fault.hpp"
#include "sim/host_pool.hpp"
#include "sim/perf_model.hpp"
#include "sim/phase_timers.hpp"
#include "sim/trace.hpp"

namespace cagmres::sim {

/// Number of device kernel classes (size of the Kernel enum).
inline constexpr int kKernelClasses = 13;
/// Index of a kernel class into the per-class counter arrays.
inline int kernel_index(Kernel k) { return static_cast<int>(k); }

/// Aggregate operation counters (flops, bytes, messages). Subtractable so
/// callers can measure a region by diffing snapshots.
struct Counters {
  std::vector<double> dev_flops;    ///< per device
  std::vector<double> dev_bytes;    ///< per device
  std::vector<std::int64_t> dev_kernels;
  double host_flops = 0.0;
  double d2h_bytes = 0.0;
  double h2d_bytes = 0.0;
  std::int64_t d2h_msgs = 0;
  std::int64_t h2d_msgs = 0;
  double net_bytes = 0.0;      ///< bytes that crossed the inter-node network
  std::int64_t net_msgs = 0;   ///< messages that crossed it
  double peer_bytes = 0.0;     ///< bytes over intra-node (NVLink-class) links
  std::int64_t peer_msgs = 0;  ///< messages over them

  /// Logical (pre-codec) byte counts for the same messages. Equal to the
  /// wire counts above when no transfer codec is armed; with a codec on,
  /// wire/logical is the achieved compression ratio (DESIGN.md §14).
  double d2h_logical_bytes = 0.0;
  double h2d_logical_bytes = 0.0;
  double net_logical_bytes = 0.0;
  double peer_logical_bytes = 0.0;

  /// Per-kernel-class aggregates across all devices (indexed by
  /// kernel_index): where the flops and the simulated kernel time went.
  std::array<double, kKernelClasses> kernel_flops{};
  std::array<double, kKernelClasses> kernel_seconds{};
  std::array<std::int64_t, kKernelClasses> kernel_count{};

  explicit Counters(int n_devices = 0)
      : dev_flops(static_cast<std::size_t>(n_devices), 0.0),
        dev_bytes(static_cast<std::size_t>(n_devices), 0.0),
        dev_kernels(static_cast<std::size_t>(n_devices), 0) {}

  Counters operator-(const Counters& rhs) const;
  double total_dev_flops() const;
  std::int64_t total_msgs() const { return d2h_msgs + h2d_msgs; }
};

/// Multi-node topology for the paper-§VII projection: `n_nodes` compute
/// nodes with `gpus_per_node` devices each. Devices on node 0 talk to the
/// coordinating host over PCIe only; devices on other nodes pay an
/// additional network hop per message, and all network hops serialize on
/// the coordinating host's NIC (one in-flight message per direction).
/// Collectives fold intra-node first when hier_reduce() is on — one
/// inter-node message per node instead of one per device (DESIGN.md §13).
struct Topology {
  int n_nodes = 1;
  int gpus_per_node = 1;

  int n_devices() const { return n_nodes * gpus_per_node; }
  int node_of(int device) const { return device / gpus_per_node; }
};

/// A recorded point on one device's stream — the cudaEvent analogue.
///
/// Charged half: `t` is the producing stream's simulated timestamp at record
/// time; a waiter advances its own timeline to max(own, t). Wall-clock half:
/// `ticket` marks every closure enqueued to the stream so far, so a waiter
/// blocks on exactly the work that produced the buffer, not a full drain.
/// The event names the *physical* stream, so it stays meaningful across
/// retire_device relabelling (waiting on a retired producer is safe: its
/// frozen timeline and drained stream make the wait free).
struct Event {
  int physical = -1;        ///< physical stream the event was recorded on
  double t = 0.0;           ///< simulated timestamp of the producing op
  std::int64_t ticket = 0;  ///< host-pool enqueue ticket (wall-clock half)
};

/// How the solvers synchronize producer/consumer buffer hand-offs.
/// kBarrier reproduces the original coarse host_wait_all structure;
/// kEvent replaces those barriers with per-buffer record/wait pairs so a
/// consumer never blocks on streams it does not read (DESIGN.md §10).
enum class SyncMode { kBarrier, kEvent };

/// Bounded retry with exponential backoff for checksum-failed transfers.
/// The retransmission and every backoff interval are charged to the
/// simulated clock; when the budget is exhausted the machine throws
/// Error(kRetriesExhausted) and the resilient solvers retire the device.
struct RetryPolicy {
  int max_retries = 4;
  double backoff_s = 50e-6;   ///< first backoff interval
  double backoff_mult = 2.0;  ///< exponential growth per attempt
};

/// The simulated node: n devices + host, a perf model, a clock, counters,
/// and phase attribution of elapsed time.
///
/// Devices are addressed by *logical* index 0..n_devices()-1. Initially the
/// logical and physical (timeline/counter) ids coincide; when a device
/// suffers a permanent injected failure the solver calls retire_device and
/// the surviving physical devices are relabelled 0..n_devices()-2, so all
/// existing device loops keep working on the shrunken machine.
class Machine {
 public:
  /// Single-node machine with `n_devices` GPUs (the paper's testbed shape).
  Machine(int n_devices, PerfModel model = {});

  /// Multi-node machine (the §VII projection).
  Machine(Topology topology, PerfModel model = {});

  /// Active (non-retired) device count.
  int n_devices() const { return static_cast<int>(dev_map_.size()); }
  /// Devices the machine was constructed with (counters/timelines size).
  int n_physical_devices() const { return clock_.n_devices(); }
  /// Physical timeline id behind logical device d.
  int physical_device(int d) const {
    return dev_map_[static_cast<std::size_t>(d)];
  }
  const Topology& topology() const { return topo_; }
  /// Reshapes the machine into `nodes` fault domains of `devices_per_node`
  /// devices each (nodes * devices_per_node must equal the constructed
  /// device count, and no device may have been retired yet). Every transfer,
  /// retry, and event timestamp from here on is priced through the two-level
  /// rates; the fault injector's node geometry follows along. The flat
  /// default (1 node) is bitwise-identical to a machine without this call.
  void set_topology(int nodes, int devices_per_node);
  /// Node the device lives on (0 = the coordinating node).
  int node_of(int d) const { return topo_.node_of(physical_device(d)); }
  /// True when messages to/from this device cross the network.
  bool is_remote(int d) const { return node_of(d) != 0; }
  const PerfModel& perf() const { return model_; }
  PerfModel& perf() { return model_; }
  Clock& clock() { return clock_; }
  const Clock& clock() const { return clock_; }
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  PhaseTimers& phases() { return phases_; }

  /// Charges a kernel of the given class to device d's timeline.
  void charge_device(int d, Kernel k, double flops, double bytes);

  /// Charges host-side work.
  void charge_host(Kernel k, double flops, double bytes);

  /// Posts an async device-to-host message from device d.
  ///
  /// `bytes` is what actually crosses the wire; `logical_bytes` (default:
  /// same) is the uncompressed payload size, tracked separately so
  /// TierTraffic can report the achieved codec ratio. Call sites that ship
  /// a coded payload pass wire_bytes(n) / 8*n (DESIGN.md §14).
  void d2h(int d, double bytes, double logical_bytes = -1.0);

  /// Posts an async host-to-device message to device d.
  void h2d(int d, double bytes, double logical_bytes = -1.0);

  /// Node-local transfers: device d <-> its *own node's* host memory over
  /// the intra-node (NVLink-class) link. Never crosses the network, so
  /// inter-node link faults cannot touch them. These are the hierarchical
  /// checkpointing fast path; flat-mode solvers never call them.
  void d2h_node(int d, double bytes, double logical_bytes = -1.0);
  void h2d_node(int d, double bytes, double logical_bytes = -1.0);

  /// Charges an inter-node NIC DMA of `bytes` out of node-host memory that
  /// becomes ready no earlier than `ready_s`: the message queues on the
  /// coordinating host's NIC (device->host direction) like any cross-node
  /// transfer and bumps the net byte/msg counters, but occupies no device
  /// stream. Returns the simulated arrival time. The checkpoint partner
  /// mirror is the client (DESIGN.md §12-§13).
  double nic_dma(double bytes, double ready_s, double logical_bytes = -1.0);

  // --- transfer codec layer (DESIGN.md §14) ----------------------------
  /// Codec armed on one traffic class (none by default; CAGMRES_COMPRESS
  /// sets the construction-time default, e.g. "halo=fp32,reduce=frsz2:16").
  const CodecSpec& codec(TrafficClass c) const { return codecs_.at(c); }
  const CodecConfig& codec_config() const { return codecs_; }
  /// Arms `spec` on traffic class `c`. Throws Error(kBadInput) for
  /// ckpt=frsz2: the saved iterate must re-ship bit-identically on restore,
  /// which only an idempotent per-value demotion guarantees.
  void set_codec(TrafficClass c, CodecSpec spec);
  /// Charges the fused (de)compression pass for a coded message of
  /// `n_values` doubles to device d's stream (no-op when `spec` is none).
  /// 16 bytes per value: the pass reads the doubles and writes (or reads)
  /// the wire image through device memory once.
  void charge_codec(int d, const CodecSpec& spec, double n_values) {
    if (spec.active()) charge_device(d, Kernel::kCodec, 0.0, 16.0 * n_values);
  }

  /// Host blocks until device d (and its copy queue) is done. Advances the
  /// simulated host clock AND drains device d's real work stream, so any
  /// enqueued kernel bodies have finished before host code reads the data.
  void host_wait(int d) {
    drain_device(d);
    mark_phase();
    clock_.host_wait(physical_device(d));
  }
  void host_wait_all() {
    sync();
    mark_phase();
    clock_.host_wait_all();
  }
  void sync_all() {
    sync();
    mark_phase();
    clock_.sync_all();
  }

  // --- per-buffer events (the cudaEvent analogue, DESIGN.md §10) -------
  /// Sync structure the solvers should build: coarse barriers (seed
  /// behaviour) or per-buffer events. Defaults to kEvent; overridable at
  /// construction with CAGMRES_SYNC_MODE=event|barrier.
  SyncMode sync_mode() const { return sync_mode_; }
  void set_sync_mode(SyncMode mode) { sync_mode_ = mode; }
  /// Shorthand for the call sites that branch on the mode.
  bool event_sync() const { return sync_mode_ == SyncMode::kEvent; }

  /// Hierarchical collectives knob: when true (the default) AND the
  /// topology is multi-node, reductions fold intra-node on a node-leader
  /// device and broadcasts fan out through one, so at most one message per
  /// node crosses the network (DESIGN.md §13). Results are bitwise
  /// identical to the flat fold either way; only the charged communication
  /// schedule differs. CAGMRES_HIER_REDUCE=0|flat|off disables it at
  /// construction; single-node machines always take the flat path.
  bool hier_reduce() const { return hier_reduce_ && topo_.n_nodes > 1; }
  void set_hier_reduce(bool on) { hier_reduce_ = on; }

  /// Records an event on logical device d's stream after everything posted
  /// to it so far (cudaEventRecord analogue). Pure observation: charges
  /// nothing and never faults.
  Event record_event(int d);

  /// Cumulative charged seconds posted to logical device d's timeline —
  /// kernels and transfers, excluding event waits. Unlike the device clock
  /// (whose stalls depend on the sync mode), this is a pure function of the
  /// charge sequence, so it is identical under kBarrier and kEvent and for
  /// any worker count. The reduce-to-host fold order is keyed on it: the
  /// heaviest-loaded device is the likely straggler, and folding it last
  /// lets the other partials' summation hide under its transfer without the
  /// order ever depending on mode-sensitive timestamps.
  double device_busy(int d) const {
    return dev_busy_[static_cast<std::size_t>(physical_device(d))];
  }

  /// Normalization hook for charge paths that substitute a hierarchical
  /// operation for a flat-equivalent one (the two-stage reduce/broadcast):
  /// adds `delta` to device d's busy account — clock and counters are
  /// untouched — so the fold-order permutation stays keyed on the
  /// flat-equivalent charge sequence and is identical whichever side of
  /// the hier_reduce() knob ran. Same rationale as the stall exclusion in
  /// charge_transfer: busy is an ordering key, not a timing.
  void adjust_device_busy(int d, double delta) {
    dev_busy_[static_cast<std::size_t>(physical_device(d))] += delta;
  }

  /// Device d's next op cannot start before the event (cudaStreamWaitEvent
  /// analogue). Charged: d's timeline advances to max(own, event.t) — free
  /// when the event is already complete. Wall-clock: a closure on d's
  /// stream blocks until the producing stream has run the recorded prefix.
  void stream_wait_event(int d, const Event& e);

  /// Host blocks until the event (cudaEventSynchronize analogue). Charged:
  /// host advances to max(host, event.t). Wall-clock: blocks on exactly the
  /// closures the ticket covers (and collects that stream's latched worker
  /// exception, like drain), NOT on later work or other streams.
  void host_wait_event(const Event& e);

  // --- host execution engine ------------------------------------------
  /// Number of real worker threads backing the simulated devices (0 =
  /// everything runs inline on the calling thread).
  int host_workers() const { return pool_.n_workers(); }
  /// Drains outstanding work and rebuilds the pool with `n` workers.
  void set_host_workers(int n) { pool_.resize(n); }

  /// Enqueues a functional kernel body on logical device d's in-order
  /// stream. The simulated clock must already have been charged by the
  /// caller (on this thread, in program order) — the closure is pure
  /// computation on device-owned memory. The closure type is forwarded
  /// straight into the pool's ring slot: no std::function wrapper, no
  /// heap allocation on the dispatch path.
  template <typename F>
  void run_on_device(int d, F&& fn) {
    pool_.enqueue(physical_device(d), std::forward<F>(fn));
  }

  /// Wall-clock-only barrier on one device's stream. Does NOT touch the
  /// simulated clock — use host_wait(d) when the host should also pay for
  /// the wait in simulated time.
  void drain_device(int d) { pool_.drain(physical_device(d)); }

  /// Wall-clock-only barrier on every stream (the explicit host sync
  /// point). Simulated timelines are untouched, so adding sync() calls can
  /// never change a solver's charged timings.
  void sync() { pool_.drain_all(); }

  /// sync() for unwind paths: swallows latched worker exceptions.
  void sync_nothrow() noexcept { pool_.drain_all_nothrow(); }

  // --- fault injection and recovery -----------------------------------
  /// The fault scheduler; configure it (events/rates/seed) before solving.
  FaultInjector& fault_injector() { return faults_; }
  const FaultInjector& fault_injector() const { return faults_; }
  /// Shorthand: true when any fault schedule is configured. The resilient
  /// solver paths (checkpoints, scrubs) only engage when armed, so a
  /// zero-fault machine behaves bit-identically to one without this layer.
  bool faults_armed() const { return faults_.armed(); }

  RetryPolicy& retry_policy() { return retry_; }

  /// Budget for *nested* recovery rounds (faults landing while a previous
  /// fault is still being recovered from); consulted by the resilient
  /// solvers, which charge an exponentially growing host backoff per round
  /// and give up with a clean Error(kRetriesExhausted) when it runs out.
  RecoveryBudget& recovery_budget() { return recovery_; }
  const RecoveryBudget& recovery_budget() const { return recovery_; }

  // --- simulated watchdog ----------------------------------------------
  /// Arms a deadline on the simulated clock: the first charged operation
  /// that pushes the global elapsed time past `seconds` throws
  /// Error(kDeadlineExceeded) after draining the host pool, converting any
  /// runaway or hung schedule into a clean typed failure. 0 disables (the
  /// default). The deadline is machine configuration: reset() keeps it.
  /// The check itself charges nothing, so an untripped watchdog leaves
  /// every result and timing bit-identical to an unarmed machine.
  void set_deadline(double seconds) { deadline_ = seconds; }
  double deadline() const { return deadline_; }

  /// Consumes the "this device's last kernel was poisoned" latch set by an
  /// injected kKernelNan fault; the charged kernel wrappers call this and
  /// overwrite their output with NaN when it returns true.
  bool consume_kernel_fault(int d) {
    const auto p = static_cast<std::size_t>(physical_device(d));
    const bool hit = dev_poison_[p] != 0;
    dev_poison_[p] = 0;
    return hit;
  }

  /// Removes logical device d from the machine after a permanent failure;
  /// the surviving devices are relabelled contiguously. Requires at least
  /// one survivor. The physical timeline keeps its (frozen) history.
  void retire_device(int d);

  /// Logical ids of every device the injector currently marks dead,
  /// ascending. A correlated node kill marks the whole domain dead but
  /// throws from a single victim's poll; the solver's fault handler surveys
  /// the machine through this before deciding how much to retire.
  std::vector<int> dead_logical_devices() const;

  /// Attributes subsequently elapsed simulated time to `phase`.
  void set_phase(const std::string& phase);

  /// Records a zero-duration marker on the host timeline at the current
  /// simulated time when tracing (no-op otherwise). The numerical health
  /// monitor uses this for trips and escalation-ladder actions
  /// ("health:stagnation", "health:escalate:shrink_s", ...), mirroring how
  /// fault injections are marked on the victim device's timeline.
  void trace_instant(const std::string& name, const std::string& phase);

  /// Starts/stops recording every charged operation into trace().
  void enable_trace(bool on = true) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// Resets the clock, counters, trace, phase attribution, retired-device
  /// map, and the fault injector's fired/stats state (the schedule itself
  /// is kept, so the same faults replay identically).
  void reset();

 private:
  void mark_phase();
  /// Shared body of the four transfer flavours: fault polls (link-scoped
  /// ones only when the message crosses the network), the charged time at
  /// the right rate, counters, and the checksum retry loop.
  void charge_transfer(int d, double bytes, double logical_bytes,
                       bool to_device, bool node_local, const char* name,
                       const char* retry_name);
  /// Pre-op fault gate for one physical device: advances its op counter,
  /// throws Error(kDeviceFault) if it is (or just became) dead, and latches
  /// the NaN-poison flag on an injected kernel fault. Returns the op index.
  std::int64_t poll_faults_kernel(int logical, int physical);
  std::int64_t poll_faults_transfer_pre(int logical, int physical,
                                        bool cross_net, double* extra_stall);
  /// Post-charge corruption check: charges bounded retransmissions with
  /// backoff (`resend_s` per attempt); throws Error(kRetriesExhausted) when
  /// the budget runs out. Cross-network messages additionally re-roll the
  /// inter-node link corruption rate.
  void retry_corrupt_transfer(int logical, int physical, double resend_s,
                              std::int64_t op, bool cross_net,
                              const char* name);
  /// Watchdog gate: throws Error(kDeadlineExceeded) once the armed deadline
  /// is crossed on the simulated clock (see set_deadline).
  void check_deadline();

  PerfModel model_;
  Topology topo_;
  Clock clock_;
  Counters counters_;
  PhaseTimers phases_;
  Trace trace_;
  FaultInjector faults_;
  RetryPolicy retry_;
  RecoveryBudget recovery_;
  double deadline_ = 0.0;  ///< simulated-seconds watchdog (0 = disarmed)
  std::vector<int> dev_map_;              ///< logical -> physical
  std::vector<std::int64_t> dev_ops_;     ///< per-physical op counter
  std::vector<double> dev_busy_;          ///< per-physical charged seconds
  std::vector<char> dev_poison_;          ///< per-physical NaN latch
  /// Coordinating-host NIC: time each link direction frees up
  /// ([0] = into the host / d2h + DMA, [1] = out of the host / h2d).
  /// Cross-network messages queue here; see charge_transfer.
  double net_free_[2] = {0.0, 0.0};
  CodecConfig codecs_;  ///< per-traffic-class transfer codecs (§14)
  bool hier_reduce_;  ///< hierarchical-collectives knob (see hier_reduce())
  bool tracing_ = false;
  SyncMode sync_mode_;
  std::string phase_ = "other";
  double phase_mark_ = 0.0;
  HostPool pool_;  ///< last member: destroyed (joined) first
};

/// RAII barrier for the host pool: drains (nothrow) on scope exit. Solvers
/// declare one right after the device-lifetime buffers they enqueue work
/// on, so that on exceptional unwind no worker still references a buffer
/// that is about to be destroyed.
class DrainGuard {
 public:
  explicit DrainGuard(Machine& m) : m_(m) {}
  ~DrainGuard() { m_.sync_nothrow(); }
  DrainGuard(const DrainGuard&) = delete;
  DrainGuard& operator=(const DrainGuard&) = delete;

 private:
  Machine& m_;
};

/// Drain guard that fires ONLY on exceptional unwind. Functions that throw
/// (CAGMRES_REQUIRE and friends) while the pool may still hold closures
/// referencing their stack frames declare one of these at entry: the happy
/// path costs two integer reads and no barrier, while any exception leaving
/// the scope drains the pool before the frame's buffers are destroyed
/// (the PR 6 use-after-free class, TSan-pinned in sim_test).
class UnwindDrainGuard {
 public:
  explicit UnwindDrainGuard(Machine& m)
      : m_(m), depth_(std::uncaught_exceptions()) {}
  ~UnwindDrainGuard() {
    if (std::uncaught_exceptions() > depth_) m_.sync_nothrow();
  }
  UnwindDrainGuard(const UnwindDrainGuard&) = delete;
  UnwindDrainGuard& operator=(const UnwindDrainGuard&) = delete;

 private:
  Machine& m_;
  int depth_;
};

/// RAII phase label: attributes the enclosed region's elapsed simulated time.
class PhaseScope {
 public:
  PhaseScope(Machine& m, const std::string& phase)
      : m_(m), prev_(m.phases().current()) {
    m_.set_phase(phase);
  }
  ~PhaseScope() { m_.set_phase(prev_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Machine& m_;
  std::string prev_;
};

/// A vector of length sum(rows) distributed block-row-wise over devices.
class DistVec {
 public:
  DistVec() = default;
  explicit DistVec(const std::vector<int>& rows_per_device);

  int n_parts() const { return static_cast<int>(part_.size()); }
  int local_rows(int d) const {
    return static_cast<int>(part_[static_cast<std::size_t>(d)].size());
  }
  int total_rows() const;

  double* local(int d) { return part_[static_cast<std::size_t>(d)].data(); }
  const double* local(int d) const {
    return part_[static_cast<std::size_t>(d)].data();
  }

  /// Copies from a host vector laid out in block order (no charge: setup).
  void assign_from_host(const std::vector<double>& x);

  /// Concatenates the blocks back to one host vector (no charge: teardown).
  std::vector<double> to_host() const;

 private:
  std::vector<std::vector<double>> part_;
};

/// An n x cols multivector distributed block-row-wise: device d owns a
/// (rows_d x cols) column-major panel. This is the Krylov basis V.
class DistMultiVec {
 public:
  DistMultiVec() = default;
  DistMultiVec(const std::vector<int>& rows_per_device, int cols);

  int n_parts() const { return static_cast<int>(part_.size()); }
  int cols() const { return cols_; }
  int local_rows(int d) const {
    return part_[static_cast<std::size_t>(d)].rows();
  }
  int total_rows() const;

  blas::DMat& local(int d) { return part_[static_cast<std::size_t>(d)]; }
  const blas::DMat& local(int d) const {
    return part_[static_cast<std::size_t>(d)];
  }

  /// Pointer to column j of device d's panel.
  double* col(int d, int j) { return local(d).col(j); }
  const double* col(int d, int j) const { return local(d).col(j); }

 private:
  std::vector<blas::DMat> part_;
  int cols_ = 0;
};

}  // namespace cagmres::sim
