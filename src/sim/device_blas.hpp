// Charged device kernels: each function executes the real numerics on the
// corresponding device-resident block AND charges the simulated clock with
// the kernel's cost under the machine's PerfModel.
//
// These are the building blocks Fig. 9's pseudocodes are written in; the
// orthogonalization and MPK modules orchestrate them per device exactly as
// the paper's host code orchestrates CUDA kernels.
#pragma once

#include <vector>

#include "blas/matrix.hpp"
#include "sim/machine.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"

namespace cagmres::sim {

/// Local dot product on device d. The result conceptually stays on the
/// device; callers charge the d2h transfer when they reduce it on the host.
double dev_dot(Machine& m, int d, int n, const double* x, const double* y);

/// y := alpha*x + y on device d.
void dev_axpy(Machine& m, int d, int n, double alpha, const double* x,
              double* y);

/// x := alpha*x on device d.
void dev_scal(Machine& m, int d, int n, double alpha, double* x);

/// y := x on device d.
void dev_copy(Machine& m, int d, int n, const double* x, double* y);

/// y := A^T x for a tall-skinny m x k panel on device d (the CGS projection
/// kernel; rate depends on the machine's KernelProfile).
void dev_gemv_t(Machine& m, int d, int rows, int k, const double* a, int lda,
                const double* x, double* y);

/// y := y - A r for a tall-skinny m x k panel on device d (the CGS update).
void dev_gemv_n_sub(Machine& m, int d, int rows, int k, const double* a,
                    int lda, const double* r, double* y);

/// y := y + A r for a tall-skinny m x k panel on device d (the solution
/// update x += V y at the end of a restart cycle).
void dev_gemv_n_acc(Machine& m, int d, int rows, int k, const double* a,
                    int lda, const double* r, double* y);

/// B := B - x * c^T rank-1 update of an m x k panel (the MGS-based BOrth
/// update; BLAS-2 rate).
void dev_ger_sub(Machine& m, int d, int rows, int k, const double* x,
                 const double* c, double* b, int ldb);

/// C := A^T A (k x k Gram matrix of an m x k panel) on device d. BLAS-3;
/// under the Standard profile this is the slow CUBLAS DGEMM, under
/// Optimized it is the paper's batched DGEMM.
void dev_gram(Machine& m, int d, int rows, int k, const double* a, int lda,
              double* c, int ldc);

/// Mixed-precision Gram matrix: the panel is demoted to single precision
/// and C := A^T A is accumulated in float, then promoted back to double
/// (the paper's reference [23] scheme). Runs at twice the batched-DGEMM
/// rate with half the memory traffic; the result carries float rounding.
void dev_gram_float(Machine& m, int d, int rows, int k, const double* a,
                    int lda, double* c, int ldc);

/// C := A^T B for tall-skinny panels A (m x ka) and B (m x kb) on device d
/// (the BOrth projection).
void dev_gemm_tn(Machine& m, int d, int rows, int ka, int kb, const double* a,
                 int lda, const double* b, int ldb, double* c, int ldc);

/// B := B - A C for tall panels (the BOrth update): A is m x ka, C is
/// ka x kb, B is m x kb.
void dev_gemm_nn_sub(Machine& m, int d, int rows, int ka, int kb,
                     const double* a, int lda, const double* c, int ldc,
                     double* b, int ldb);

/// B := A * C for a tall m x ka panel A and small ka x kb C, overwriting the
/// m x kb panel B (the CAQR Q-update V := V_local_Q * Q_reduced).
void dev_gemm_nn(Machine& m, int d, int rows, int ka, int kb, const double* a,
                 int lda, const double* c, int ldc, double* b, int ldb);

/// B := B * R^{-1} for an m x k panel and upper-triangular k x k R on
/// device d (the CholQR orthogonalization step; MAGMA DTRSM in the paper).
void dev_trsm(Machine& m, int d, int rows, int k, const double* r, int ldr,
              double* b, int ldb);

/// Explicit thin QR of an m x k panel on device d (the CAQR leaf): returns
/// Q (m x k) and R (k x k). Charged at the BLAS-1/2 bound geqrf rate with
/// the 4 m k^2 flops of factor+form-Q (paper Fig. 10, CAQR row).
void dev_qr_explicit(Machine& m, int d, const blas::DMat& v, blas::DMat& q,
                     blas::DMat& r);

/// y := A x for a device-resident ELLPACK block.
void dev_spmv_ell(Machine& m, int d, const sparse::EllMatrix& a,
                  const double* x, double* y);

/// y := A x for a device-resident CSR block.
void dev_spmv_csr(Machine& m, int d, const sparse::CsrMatrix& a,
                  const double* x, double* y);

/// out[i] := x[idx[i]] — gather (compress) kernel used by MPK and the
/// reduction paths to pack boundary elements into a contiguous send buffer.
void dev_pack(Machine& m, int d, const std::vector<int>& idx, const double* x,
              double* out);

/// x[idx[i]] := in[i] — scatter (expand) kernel.
void dev_unpack(Machine& m, int d, const std::vector<int>& idx,
                const double* in, double* x);

}  // namespace cagmres::sim
