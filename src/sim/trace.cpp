#include "sim/trace.hpp"

#include <ostream>

#include "sim/perf_model.hpp"

namespace cagmres::sim {

void Trace::record(int device, double t_start, double t_end, std::string name,
                   std::string phase) {
  events_.push_back(
      {device, t_start, t_end, std::move(name), std::move(phase)});
}

void Trace::record_instant(int device, double t, std::string name,
                           std::string phase) {
  events_.push_back({device, t, t, std::move(name), std::move(phase)});
}

void Trace::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    // tid 0 = host, tid d+1 = device d. Complete ("X") events in us.
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.phase
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << (e.device + 1)
        << ",\"ts\":" << e.t_start * 1e6
        << ",\"dur\":" << (e.t_end - e.t_start) * 1e6 << "}";
  }
  out << "]}";
}

std::string kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kDot:
      return "dot";
    case Kernel::kAxpy:
      return "axpy";
    case Kernel::kScal:
      return "scal";
    case Kernel::kCopy:
      return "copy";
    case Kernel::kGemv:
      return "gemv";
    case Kernel::kGemm:
      return "gemm";
    case Kernel::kTrsm:
      return "trsm";
    case Kernel::kGeqrf:
      return "geqrf";
    case Kernel::kSpmvEll:
      return "spmv_ell";
    case Kernel::kSpmvCsr:
      return "spmv_csr";
    case Kernel::kPack:
      return "pack";
    case Kernel::kSmall:
      return "small";
    case Kernel::kCodec:
      return "codec";
  }
  return "?";
}

}  // namespace cagmres::sim
