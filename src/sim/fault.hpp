// Deterministic, seeded fault injection for the simulated machine.
//
// The FaultInjector is owned by Machine and consulted from every charged
// device kernel and every host<->device transfer. It supports two kinds of
// schedule:
//   - one-shot events, fired when a target device's simulated time or
//     per-device op counter reaches a trigger (kill a device, poison one
//     kernel's output, corrupt or stall one transfer);
//   - continuous rates, drawn per qualifying operation from the injector's
//     seeded RNG (e.g. "corrupt 1% of transfers").
// Every injection is appended to the injection log and counted in
// FaultStats, and — when the machine is tracing — recorded on the victim's
// simulated timeline, so the cost of faults and of recovering from them is
// measurable in the same currency as everything else.
//
// Determinism: all randomness flows through one splitmix64-seeded xoshiro
// stream that is consumed in program order, so a given schedule (seed +
// events + rates) produces bit-identical fault sequences, SolveStats, and
// simulated times on every run. An injector with no events and all-zero
// rates is "unarmed": the machine then skips every poll and charges exactly
// what it charged before this layer existed (zero-fault no-regression).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace cagmres::sim {

/// The injectable fault classes.
enum class FaultKind {
  kDeviceFail,       ///< permanent device failure: every later op throws
  kKernelNan,        ///< transient kernel fault: the op's output is NaN
  kTransferCorrupt,  ///< transfer fails its checksum and must be resent
  kTransferStall,    ///< transfer is charged extra latency
  kNodeFail,         ///< correlated: every device in one node fails at once
  kLinkCorrupt,      ///< inter-node link corruption (cross-node only; rate)
  kLinkStall,        ///< inter-node link stall (cross-node only; rate)
};

std::string to_string(FaultKind kind);

/// One scheduled (one-shot) fault. `device` is a physical device id, or -1
/// for "whichever device reaches the trigger first". Exactly one of
/// `at_time` (simulated seconds) and `at_op` (per-device op counter) must
/// be set; the event fires on the first qualifying op at/after the trigger.
/// For kNodeFail the `device` field holds a *node* id (or -1 for "whichever
/// node's device reaches the trigger first"); firing kills every device in
/// that node atomically.
struct FaultEvent {
  FaultKind kind = FaultKind::kKernelNan;
  int device = -1;
  double at_time = -1.0;        ///< simulated-seconds trigger (< 0: unused)
  std::int64_t at_op = -1;      ///< op-count trigger (< 0: unused)
  bool fired = false;
};

/// Continuous per-operation fault probabilities (seeded-RNG driven).
struct FaultRates {
  double kernel_nan = 0.0;        ///< per device kernel
  double transfer_corrupt = 0.0;  ///< per transfer (each retry re-rolls)
  double transfer_stall = 0.0;    ///< per transfer
  double link_corrupt = 0.0;      ///< per *cross-node* transfer only
  double link_stall = 0.0;        ///< per *cross-node* transfer only
  double node_corrupt = 0.0;      ///< corrupt storm scoped to `corrupt_node`
  int corrupt_node = -1;          ///< node the storm targets (-1: disabled)
};

/// Budget for *nested* recovery: how many consecutive recovery rounds (a
/// device retirement, checkpoint restore, or block replay re-entered by a
/// fresh fault before the solver completed a clean restart) the resilient
/// solvers may attempt before giving up with a clean
/// Error(kRetriesExhausted). Each round charges `backoff_s * mult^round`
/// of host time, so a fault storm drains the budget in bounded simulated
/// time instead of livelocking the solver inside recovery.
struct RecoveryBudget {
  int max_rounds = 16;
  double backoff_s = 100e-6;  ///< first inter-round backoff
  double backoff_mult = 2.0;  ///< exponential growth per round
};

/// Injection and recovery-cost counters. Injections are counted here by the
/// injector; the retry/stall costs are filled in by the Machine, which is
/// the party that charges them to the simulated clock.
struct FaultStats {
  std::int64_t injected_total = 0;
  int device_failures = 0;
  int node_failures = 0;              ///< correlated whole-node losses
  std::int64_t kernel_nans = 0;
  std::int64_t transfer_corruptions = 0;
  std::int64_t transfer_stalls = 0;
  std::int64_t link_corruptions = 0;  ///< cross-node scoped corruptions
  std::int64_t link_stalls = 0;       ///< cross-node scoped stalls
  std::int64_t transfer_retries = 0;  ///< retransmissions charged
  double retry_seconds = 0.0;         ///< sim seconds of backoff + resend
  double stall_seconds = 0.0;         ///< sim seconds of injected stalls

  FaultStats operator-(const FaultStats& rhs) const;
};

/// One line of the injection log.
struct InjectionRecord {
  FaultKind kind;
  int device;        ///< physical device id
  double time;       ///< simulated seconds at injection
  std::int64_t op;   ///< the victim device's op counter at injection
};

/// The seeded fault scheduler (see file comment). Polls take the *physical*
/// device id, that device's current simulated time, and its op counter.
class FaultInjector {
 public:
  void schedule(const FaultEvent& event);
  void set_rates(const FaultRates& rates);
  void set_seed(std::uint64_t seed);
  /// Node geometry for the correlated fault kinds (kNodeFail, node storms):
  /// physical device d lives on node d / gpus_per_node. Machine keeps this
  /// in sync with its Topology; under the flat default (1) each node is a
  /// single-device domain, so a node kill degenerates to a device kill.
  void set_gpus_per_node(int gpus) { gpus_per_node_ = gpus < 1 ? 1 : gpus; }
  int gpus_per_node() const { return gpus_per_node_; }
  int node_of(int device) const { return device / gpus_per_node_; }
  /// Extra latency one injected stall adds to a transfer.
  void set_stall_seconds(double s) { stall_seconds_ = s; }
  double stall_seconds() const { return stall_seconds_; }

  /// True when any event is scheduled or any rate is positive. Unarmed
  /// injectors must leave the machine's behavior bit-identical to a build
  /// without fault injection.
  bool armed() const { return armed_; }

  bool poll_device_fail(int device, double now, std::int64_t op);
  bool poll_kernel_nan(int device, double now, std::int64_t op);
  bool poll_transfer_corrupt(int device, double now, std::int64_t op);
  bool poll_transfer_stall(int device, double now, std::int64_t op);
  /// Cross-node-only polls: the machine consults these in addition to the
  /// transfer polls, but only for messages that actually cross the network,
  /// so intra-node traffic is immune to link degradation by construction.
  bool poll_link_corrupt(int device, double now, std::int64_t op);
  bool poll_link_stall(int device, double now, std::int64_t op);

  /// True once a kDeviceFail event fired for this device.
  bool device_dead(int device) const;

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }
  const std::vector<InjectionRecord>& log() const { return log_; }

  /// The configured schedule, readable back (the chaos engine round-trips
  /// --faults specs through here).
  const std::vector<FaultEvent>& events() const { return events_; }
  const FaultRates& rates() const { return rates_; }
  std::uint64_t seed() const { return seed_; }

  /// Clears fired flags, stats, the log, and reseeds the RNG, so the same
  /// schedule replays identically (Machine::reset calls this).
  void reset();

 private:
  bool poll_scheduled(FaultKind kind, int device, double now,
                      std::int64_t op);
  bool roll(double prob);
  void record(FaultKind kind, int device, double now, std::int64_t op);

  std::vector<FaultEvent> events_;
  FaultRates rates_;
  std::uint64_t seed_ = 0x5eedULL;
  Rng rng_{0x5eedULL};
  double stall_seconds_ = 250e-6;  ///< default: 10x the PCIe latency
  int gpus_per_node_ = 1;          ///< node geometry for correlated kinds
  std::vector<int> dead_;          ///< physical ids of failed devices
  FaultStats stats_;
  std::vector<InjectionRecord> log_;
  bool armed_ = false;
};

/// Parses a fault-schedule spec into `out` (used by the --faults flag):
///   spec    := elem (';' elem)*
///   elem    := "seed=" uint | "stall_us=" float
///            | kind ':' (rate | target)
///            | "nodecorrupt:n" int "@p=" float (node-scoped corrupt storm)
///   kind    := "kill" | "nan" | "corrupt" | "stall"
///            | "nodekill" | "linkcorrupt" | "linkstall"
///   rate    := "p=" float        (not valid for kill/nodekill; the only
///                                 form for linkcorrupt/linkstall)
///   target  := ("d" int | "n" int | "*") '@' trigger   (n<k> = nodekill)
///   trigger := "t=" time | "op=" uint          (time suffix: s, ms, us)
/// Example: "seed=42;nodekill:n1@t=5ms;linkcorrupt:p=0.01;nan:p=0.001"
/// Throws Error(kBadInput) on malformed specs.
void parse_fault_spec(const std::string& spec, FaultInjector& out);

}  // namespace cagmres::sim
