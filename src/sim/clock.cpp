#include "sim/clock.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cagmres::sim {

Clock::Clock(int n_devices) : dev_(static_cast<std::size_t>(n_devices), 0.0) {
  CAGMRES_REQUIRE(n_devices >= 1, "need at least one device");
}

void Clock::device_advance(int d, double s) {
  CAGMRES_ASSERT(0 <= d && d < n_devices(), "device out of range");
  auto& t = dev_[static_cast<std::size_t>(d)];
  // The host posts kernels in program order, so a kernel cannot start before
  // the host reached the launch site.
  t = std::max(t, host_) + s;
}

void Clock::host_wait(int d) {
  CAGMRES_ASSERT(0 <= d && d < n_devices(), "device out of range");
  host_ = std::max(host_, dev_[static_cast<std::size_t>(d)]);
}

void Clock::host_wait_all() {
  for (const double t : dev_) host_ = std::max(host_, t);
}

void Clock::device_wait_time(int d, double t) {
  CAGMRES_ASSERT(0 <= d && d < n_devices(), "device out of range");
  auto& own = dev_[static_cast<std::size_t>(d)];
  own = std::max(own, t);
}

void Clock::device_wait_host(int d) {
  CAGMRES_ASSERT(0 <= d && d < n_devices(), "device out of range");
  auto& t = dev_[static_cast<std::size_t>(d)];
  t = std::max(t, host_);
}

void Clock::sync_all() {
  host_wait_all();
  for (auto& t : dev_) t = host_;
}

double Clock::elapsed() const {
  double m = host_;
  for (const double t : dev_) m = std::max(m, t);
  return m;
}

void Clock::reset() {
  host_ = 0.0;
  std::fill(dev_.begin(), dev_.end(), 0.0);
}

}  // namespace cagmres::sim
