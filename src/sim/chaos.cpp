#include "sim/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "blas/blas1.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/solver_common.hpp"
#include "precond/precond.hpp"
#include "sparse/generators.hpp"

namespace cagmres::sim {

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// FNV-1a over a byte range, chained through `h`.
std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_double(double v, std::uint64_t h) {
  return fnv1a(&v, sizeof(v), h);
}

}  // namespace

std::string to_string(ChaosSolver s) {
  switch (s) {
    case ChaosSolver::kCaGmres:
      return "ca_gmres";
    case ChaosSolver::kGmres:
      return "gmres";
    case ChaosSolver::kPrecondCaGmres:
      return "precond_ca_gmres";
    case ChaosSolver::kPrecondGmres:
      return "precond_gmres";
  }
  return "?";
}

namespace {

bool is_precond(ChaosSolver s) {
  return s == ChaosSolver::kPrecondCaGmres || s == ChaosSolver::kPrecondGmres;
}

bool is_ca(ChaosSolver s) {
  return s == ChaosSolver::kCaGmres || s == ChaosSolver::kPrecondCaGmres;
}

}  // namespace

std::string to_string(ChaosOutcome o) {
  switch (o) {
    case ChaosOutcome::kConverged:
      return "converged";
    case ChaosOutcome::kUnconverged:
      return "unconverged";
    case ChaosOutcome::kCleanError:
      return "clean_error";
    case ChaosOutcome::kWatchdog:
      return "watchdog";
  }
  return "?";
}

bool ChaosSchedule::armed() const {
  return !events.empty() || rates.kernel_nan > 0.0 ||
         rates.transfer_corrupt > 0.0 || rates.transfer_stall > 0.0 ||
         rates.link_corrupt > 0.0 || rates.link_stall > 0.0 ||
         (rates.node_corrupt > 0.0 && rates.corrupt_node >= 0);
}

std::string ChaosSchedule::to_spec() const {
  std::string out = "seed=" + std::to_string(seed);
  out += ";stall_us=" + fmt_double(stall_us);
  for (const FaultEvent& e : events) {
    out += ";" + to_string(e.kind) + ":";
    // A node kill's device field names a NODE, rendered n<k>.
    const char prefix = e.kind == FaultKind::kNodeFail ? 'n' : 'd';
    out += e.device < 0 ? "*" : prefix + std::to_string(e.device);
    if (e.at_time >= 0.0) {
      out += "@t=" + fmt_double(e.at_time);  // bare number = seconds
    } else {
      out += "@op=" + std::to_string(e.at_op);
    }
  }
  if (rates.kernel_nan > 0.0) out += ";nan:p=" + fmt_double(rates.kernel_nan);
  if (rates.transfer_corrupt > 0.0) {
    out += ";corrupt:p=" + fmt_double(rates.transfer_corrupt);
  }
  if (rates.transfer_stall > 0.0) {
    out += ";stall:p=" + fmt_double(rates.transfer_stall);
  }
  if (rates.link_corrupt > 0.0) {
    out += ";linkcorrupt:p=" + fmt_double(rates.link_corrupt);
  }
  if (rates.link_stall > 0.0) {
    out += ";linkstall:p=" + fmt_double(rates.link_stall);
  }
  if (rates.node_corrupt > 0.0 && rates.corrupt_node >= 0) {
    out += ";nodecorrupt:n" + std::to_string(rates.corrupt_node) +
           "@p=" + fmt_double(rates.node_corrupt);
  }
  return out;
}

void ChaosSchedule::arm(FaultInjector& fi) const {
  fi.set_seed(seed);
  fi.set_stall_seconds(stall_us * 1e-6);
  for (FaultEvent e : events) {
    e.fired = false;
    fi.schedule(e);
  }
  fi.set_rates(rates);
}

ChaosSchedule ChaosSchedule::from_spec(const std::string& spec) {
  FaultInjector fi;
  parse_fault_spec(spec, fi);
  ChaosSchedule out;
  out.seed = fi.seed();
  // Recover stall_us from the text, not via seconds: the us -> s -> us
  // conversion chain is lossy in the last ulp and would break the
  // to_spec/from_spec fixed point.
  const std::size_t pos = spec.find("stall_us=");
  out.stall_us = pos != std::string::npos
                     ? std::strtod(spec.c_str() + pos + 9, nullptr)
                     : fi.stall_seconds() * 1e6;
  out.events = fi.events();
  out.rates = fi.rates();
  return out;
}

// ---------------------------------------------------------------------

struct ChaosRunner::Impl {
  ChaosConfig cfg;
  sparse::CsrMatrix a;       ///< original (unprepared) system — the oracle
  std::vector<double> b;     ///< checks the TRUE residual against it
  double b_norm = 0.0;
  core::Problem prob;
  precond::PrecondSpec pspec;  ///< parsed cfg.precond (kNone when empty)

  struct Baseline {
    std::uint64_t fingerprint = 0;
    double elapsed = 0.0;
  };
  /// Fault-free fingerprints per (solver, mode, workers) configuration.
  std::map<int, Baseline> baselines;
  bool baselines_ready = false;
  double time_hint = 0.0;  ///< slowest fault-free run (scales triggers)
  double deadline = 0.0;   ///< watchdog armed on every faulty run

  explicit Impl(const ChaosConfig& c) : cfg(c) {
    a = cfg.matrix.empty()
            ? sparse::make_laplace2d(cfg.nx, cfg.ny, 0.1, 0.02)
            : sparse::make_paper_matrix(cfg.matrix, cfg.matrix_scale);
    b.assign(static_cast<std::size_t>(a.n_rows), 1.0);
    b_norm = blas::nrm2(a.n_rows, b.data());
    prob = core::make_problem(a, b, cfg.n_devices, graph::Ordering::kNatural,
                              true, 1);
    pspec = precond::parse_precond_spec(cfg.precond);
  }

  /// Applies the configured multi-node topology to a fresh machine (no-op
  /// for the flat default, so single-node campaigns are byte-identical to
  /// the pre-topology engine).
  void shape(Machine& m) const {
    if (cfg.n_nodes > 1) {
      m.set_topology(cfg.n_nodes, cfg.n_devices / cfg.n_nodes);
    }
  }

  core::SolverOptions solver_opts() const {
    core::SolverOptions o;
    o.m = cfg.m;
    o.s = cfg.s;
    o.tol = cfg.tol;
    o.max_restarts = cfg.max_restarts;
    o.min_devices = cfg.min_devices;
    o.degrade_to_cpu = cfg.degrade_to_cpu;
    return o;
  }

  int config_key(ChaosSolver solver, SyncMode mode, int workers) const {
    return static_cast<int>(solver) * 1000 +
           (mode == SyncMode::kEvent ? 1 : 0) * 100 + workers;
  }

  /// The campaign's driver roster: the unpreconditioned pair, widened by
  /// the preconditioned pair when a spec is armed.
  std::vector<ChaosSolver> roster() const {
    std::vector<ChaosSolver> out = {ChaosSolver::kCaGmres};
    if (cfg.both_solvers) out.push_back(ChaosSolver::kGmres);
    if (pspec.armed()) {
      out.push_back(ChaosSolver::kPrecondCaGmres);
      if (cfg.both_solvers) out.push_back(ChaosSolver::kPrecondGmres);
    }
    return out;
  }

  ChaosSolver solver_for(int index) const {
    const std::vector<ChaosSolver> r = roster();
    return r[static_cast<std::size_t>(index) % r.size()];
  }

  /// Runs the solver on an already-armed machine and applies the per-run
  /// half of the oracle. Never throws: every escape is classified.
  ChaosRunResult run_with(Machine& m, ChaosSolver solver) {
    ChaosRunResult r;
    const double t0 = m.clock().elapsed();
    core::SolveResult sr;
    bool have_x = false;
    // A fresh handle per run: its build/rebuild sequence is a pure function
    // of the run (same schedule + same machine state => same factors), so
    // the same-seed replay after Machine::reset stays bit-identical even
    // across mid-solve repartition rebuilds.
    precond::PrecondHandle handle(pspec);
    core::SolverOptions opts = solver_opts();
    if (is_precond(solver)) opts.precond = &handle;
    try {
      sr = is_ca(solver) ? core::ca_gmres(m, prob, opts)
                         : core::gmres(m, prob, opts);
      have_x = true;
      r.outcome =
          sr.stats.converged ? ChaosOutcome::kConverged : ChaosOutcome::kUnconverged;
      r.degraded = sr.stats.degraded.active;
      r.final_residual = sr.stats.final_residual;
      r.peer_bytes = sr.stats.traffic.peer_bytes;
      r.peer_logical_bytes = sr.stats.traffic.peer_logical_bytes;
      r.pcie_bytes = sr.stats.traffic.pcie_bytes;
      r.pcie_logical_bytes = sr.stats.traffic.pcie_logical_bytes;
      r.net_bytes = sr.stats.traffic.net_bytes;
      r.net_logical_bytes = sr.stats.traffic.net_logical_bytes;
    } catch (const Error& e) {
      r.error_code = to_string(e.code());
      if (e.code() == ErrorCode::kDeadlineExceeded && m.deadline() > 0.0 &&
          m.clock().elapsed() > m.deadline()) {
        r.outcome = ChaosOutcome::kWatchdog;
      } else if (e.code() == ErrorCode::kBadInput) {
        r.outcome = ChaosOutcome::kCleanError;
        r.violation = "solver rejected its own input mid-run: " +
                      std::string(e.what());
      } else {
        r.outcome = ChaosOutcome::kCleanError;
      }
    } catch (const std::exception& e) {
      r.outcome = ChaosOutcome::kCleanError;
      r.error_code = "untyped";
      r.violation = "untyped exception escaped the solver: " +
                    std::string(e.what());
    }
    r.elapsed = m.clock().elapsed() - t0;
    r.device_failures = m.fault_injector().stats().device_failures;

    if (have_x) {
      for (const double v : sr.x) {
        if (!std::isfinite(v)) {
          r.violation = "solver returned a non-finite solution";
          break;
        }
      }
      if (r.violation.empty() && r.outcome == ChaosOutcome::kConverged) {
        // The solver claimed convergence: hold it to the TRUE residual of
        // the original system (generous slack for fault-perturbed paths —
        // a false claim is orders of magnitude off).
        const double rel = core::true_residual(a, b, sr.x) / b_norm;
        if (!(rel <= cfg.tol * 100.0)) {
          r.violation =
              "claimed convergence but true relative residual is " +
              fmt_double(rel);
        }
      }
    }

    // Fingerprint: solution bytes + terminal state + charged time.
    std::uint64_t h = 1469598103934665603ULL;
    if (have_x) h = fnv1a(sr.x.data(), sr.x.size() * sizeof(double), h);
    const int oc = static_cast<int>(r.outcome);
    h = fnv1a(&oc, sizeof(oc), h);
    h = fnv1a(r.error_code.data(), r.error_code.size(), h);
    h = fnv1a_double(r.elapsed, h);
    if (have_x) {
      h = fnv1a(&sr.stats.restarts, sizeof(sr.stats.restarts), h);
      h = fnv1a(&sr.stats.iterations, sizeof(sr.stats.iterations), h);
      const int deg = r.degraded ? 1 : 0;
      h = fnv1a(&deg, sizeof(deg), h);
    }
    r.fingerprint = h;
    return r;
  }

  void configure(Machine& m, SyncMode mode, int workers) {
    m.set_sync_mode(mode);
    m.set_host_workers(workers);
  }

  void ensure_baselines() {
    if (baselines_ready) return;
    const ChaosSchedule none;  // unarmed: the byte-identity reference
    for (const ChaosSolver solver : roster()) {
      for (const SyncMode mode : cfg.modes) {
        for (const int w : cfg.worker_counts) {
          Machine m(cfg.n_devices);
          shape(m);
          configure(m, mode, w);
          none.arm(m.fault_injector());
          const ChaosRunResult r = run_with(m, solver);
          CAGMRES_REQUIRE(r.outcome == ChaosOutcome::kConverged &&
                              r.violation.empty(),
                          "chaos baseline run failed to converge");
          baselines[config_key(solver, mode, w)] = {r.fingerprint, r.elapsed};
          time_hint = std::max(time_hint, r.elapsed);
        }
      }
    }
    deadline = cfg.deadline_factor * time_hint;
    baselines_ready = true;
  }

  /// Full oracle for one schedule/solver over every configuration.
  std::vector<ChaosViolation> collect(const ChaosSchedule& sched,
                                      ChaosSolver solver, int index,
                                      ChaosCampaignStats* stats) {
    ensure_baselines();
    std::vector<ChaosViolation> out;
    auto flag = [&](SyncMode mode, int w, const std::string& what) {
      out.push_back({index, solver, mode, w, what, sched.to_spec()});
    };
    for (const SyncMode mode : cfg.modes) {
      for (const int w : cfg.worker_counts) {
        Machine m(cfg.n_devices);
        shape(m);
        configure(m, mode, w);
        sched.arm(m.fault_injector());
        if (sched.armed()) m.set_deadline(deadline);
        const ChaosRunResult r1 = run_with(m, solver);
        if (stats != nullptr) {
          ++stats->runs;
          switch (r1.outcome) {
            case ChaosOutcome::kConverged: ++stats->converged; break;
            case ChaosOutcome::kUnconverged: ++stats->unconverged; break;
            case ChaosOutcome::kCleanError: ++stats->clean_errors; break;
            case ChaosOutcome::kWatchdog: ++stats->watchdogs; break;
          }
          if (r1.degraded) ++stats->degraded;
          stats->peer_bytes += r1.peer_bytes;
          stats->peer_logical_bytes += r1.peer_logical_bytes;
          stats->pcie_bytes += r1.pcie_bytes;
          stats->pcie_logical_bytes += r1.pcie_logical_bytes;
          stats->net_bytes += r1.net_bytes;
          stats->net_logical_bytes += r1.net_logical_bytes;
        }
        if (!r1.violation.empty()) flag(mode, w, r1.violation);
        if (cfg.demo_bug_kills >= 0 &&
            r1.device_failures >= cfg.demo_bug_kills) {
          flag(mode, w, "[demo oracle] observed " +
                            std::to_string(r1.device_failures) +
                            " device kills (threshold " +
                            std::to_string(cfg.demo_bug_kills) + ")");
        }
        if (cfg.check_replay) {
          m.reset();
          const ChaosRunResult r2 = run_with(m, solver);
          if (r2.fingerprint != r1.fingerprint) {
            flag(mode, w,
                 "same-seed replay diverged (fingerprint " +
                     std::to_string(r1.fingerprint) + " vs " +
                     std::to_string(r2.fingerprint) + ")");
          }
        }
        if (!sched.armed()) {
          const Baseline& base = baselines.at(config_key(solver, mode, w));
          if (r1.fingerprint != base.fingerprint) {
            flag(mode, w, "zero-fault schedule diverged from baseline");
          }
        }
      }
    }
    return out;
  }
};

ChaosRunner::ChaosRunner(const ChaosConfig& cfg)
    : impl_(std::make_unique<Impl>(cfg)) {
  CAGMRES_REQUIRE(cfg.n_devices >= 1 && !cfg.modes.empty() &&
                      !cfg.worker_counts.empty(),
                  "chaos: empty configuration");
  CAGMRES_REQUIRE(cfg.n_nodes >= 1 && cfg.n_devices % cfg.n_nodes == 0,
                  "chaos: n_nodes must divide n_devices");
}

ChaosRunner::~ChaosRunner() = default;

const ChaosConfig& ChaosRunner::config() const { return impl_->cfg; }

ChaosSchedule ChaosRunner::generate(std::uint64_t campaign_seed, int index) {
  impl_->ensure_baselines();
  const double hint = impl_->time_hint;
  ChaosSchedule s;
  // Every 8th schedule is zero-fault: those pin the armed-but-empty layer
  // to the unarmed baseline bytes.
  if (index % 8 == 0) return s;

  Rng g(campaign_seed ^
        (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1)));
  s.seed = g.next_u64() & 0xffffffffULL;  // must survive the spec round-trip
  s.stall_us = g.uniform(50.0, 500.0);

  auto rand_device = [&]() {
    return g.uniform() < 0.4
               ? -1
               : static_cast<int>(g.bounded(
                     static_cast<std::uint64_t>(impl_->cfg.n_devices)));
  };
  auto rand_op = [&]() {
    // Log-uniform op trigger: early, mid and late faults all likely.
    return static_cast<std::int64_t>(
        std::exp(g.uniform(std::log(10.0), std::log(20000.0))));
  };
  auto push_event = [&](FaultKind kind, int device, double at_time,
                        std::int64_t at_op) {
    FaultEvent e;
    e.kind = kind;
    e.device = device;
    e.at_time = at_time;
    e.at_op = at_op;
    s.events.push_back(e);
  };

  const int nn = impl_->cfg.n_nodes;
  auto rand_node = [&]() {
    return g.uniform() < 0.3
               ? -1
               : static_cast<int>(g.bounded(static_cast<std::uint64_t>(nn)));
  };

  // Permanent kills: none (50%), one (30%), or a cascading cluster (20%)
  // whose members land close enough together that the later kills hit the
  // checkpoint-restart of the earlier ones. On a multi-node topology a
  // third of the kill schedules are atomic whole-node kills instead —
  // including clusters where a second node dies mid-recovery of the first
  // (the partner-checkpoint double-loss path).
  const double kill_roll = g.uniform();
  if (kill_roll >= 0.5) {
    const int kills = kill_roll < 0.8 ? 1 : 2 + static_cast<int>(g.bounded(2));
    const bool node_kill = nn > 1 && g.uniform() < 1.0 / 3.0;
    const FaultKind kkind =
        node_kill ? FaultKind::kNodeFail : FaultKind::kDeviceFail;
    auto target = [&]() { return node_kill ? rand_node() : rand_device(); };
    if (g.uniform() < 0.4) {  // op-triggered
      std::int64_t op = rand_op();
      for (int i = 0; i < kills; ++i) {
        push_event(kkind, target(), -1.0, op);
        op += 1 + static_cast<std::int64_t>(g.bounded(200));
      }
    } else {  // time-triggered cluster
      double t = g.uniform(0.02, 1.0) * hint;
      for (int i = 0; i < kills; ++i) {
        push_event(kkind, target(), t, -1);
        t += g.uniform(0.0, 0.15) * hint;
      }
    }
  }

  // Transient one-shot events.
  const int transients = static_cast<int>(g.bounded(4));
  for (int i = 0; i < transients; ++i) {
    const std::uint64_t pick = g.bounded(3);
    const FaultKind kind = pick == 0   ? FaultKind::kKernelNan
                           : pick == 1 ? FaultKind::kTransferCorrupt
                                       : FaultKind::kTransferStall;
    if (g.uniform() < 0.5) {
      push_event(kind, rand_device(), g.uniform(0.0, 1.2) * hint, -1);
    } else {
      push_event(kind, rand_device(), -1.0, rand_op());
    }
  }

  // Continuous rates (half of the schedules).
  if (g.uniform() < 0.5) {
    if (g.uniform() < 0.5) s.rates.kernel_nan = g.uniform(0.0, 0.002);
    if (g.uniform() < 0.5) {
      // Mostly survivable drizzle; occasionally a storm strong enough to
      // exhaust the transfer retry budget.
      s.rates.transfer_corrupt = g.uniform() < 0.15 ? g.uniform(0.5, 0.9)
                                                    : g.uniform(0.0, 0.03);
    }
    if (g.uniform() < 0.5) s.rates.transfer_stall = g.uniform(0.0, 0.05);
  }

  // Node- and link-scoped rates (multi-node topologies only): degradation
  // of the inter-node links, and corrupt storms pinned to one node.
  if (nn > 1 && g.uniform() < 0.4) {
    if (g.uniform() < 0.5) s.rates.link_corrupt = g.uniform(0.0, 0.05);
    if (g.uniform() < 0.5) s.rates.link_stall = g.uniform(0.0, 0.08);
    if (g.uniform() < 0.4) {
      s.rates.corrupt_node =
          static_cast<int>(g.bounded(static_cast<std::uint64_t>(nn)));
      s.rates.node_corrupt = g.uniform(0.0, 0.05);
    }
  }

  if (!s.armed()) {
    // Degenerate draw: keep the schedule interesting with one transient.
    push_event(FaultKind::kKernelNan, rand_device(), -1.0, rand_op());
  }
  return s;
}

std::vector<ChaosViolation> ChaosRunner::run_schedule(
    const ChaosSchedule& schedule, int index) {
  return impl_->collect(schedule, impl_->solver_for(index), index, nullptr);
}

ChaosCampaignStats ChaosRunner::run_campaign(
    std::uint64_t campaign_seed, int n_schedules,
    const std::function<void(int, const ChaosSchedule&,
                             const std::vector<ChaosViolation>&)>& progress) {
  ChaosCampaignStats stats;
  for (int i = 0; i < n_schedules; ++i) {
    const ChaosSchedule sched = generate(campaign_seed, i);
    ++stats.schedules;
    if (!sched.armed()) ++stats.zero_fault;
    const std::vector<ChaosViolation> v =
        impl_->collect(sched, impl_->solver_for(i), i, &stats);
    stats.violations.insert(stats.violations.end(), v.begin(), v.end());
    if (progress) progress(i, sched, v);
  }
  return stats;
}

ChaosRunResult ChaosRunner::run_one(const ChaosSchedule& schedule,
                                    ChaosSolver solver, SyncMode mode,
                                    int workers) {
  impl_->ensure_baselines();
  Machine m(impl_->cfg.n_devices);
  impl_->shape(m);
  impl_->configure(m, mode, workers);
  schedule.arm(m.fault_injector());
  if (schedule.armed()) m.set_deadline(impl_->deadline);
  return impl_->run_with(m, solver);
}

bool ChaosRunner::violates(const ChaosSchedule& schedule, ChaosSolver solver) {
  return !impl_->collect(schedule, solver, -1, nullptr).empty();
}

ChaosSchedule ChaosRunner::minimize(
    const ChaosSchedule& schedule,
    const std::function<bool(const ChaosSchedule&)>& still_violates) {
  CAGMRES_REQUIRE(still_violates(schedule),
                  "minimize: the schedule does not violate the oracle");
  ChaosSchedule cur = schedule;

  // Phase 1: ddmin over the event list (Zeller's algorithm: try each chunk
  // alone, then each complement, refining granularity until 1-minimal).
  auto chunk = [](const std::vector<FaultEvent>& ev, std::size_t i,
                  std::size_t n, bool complement) {
    std::vector<FaultEvent> out;
    const std::size_t lo = ev.size() * i / n;
    const std::size_t hi = ev.size() * (i + 1) / n;
    for (std::size_t k = 0; k < ev.size(); ++k) {
      const bool inside = k >= lo && k < hi;
      if (inside != complement) out.push_back(ev[k]);
    }
    return out;
  };
  std::size_t n = 2;
  while (cur.events.size() >= 2) {
    if (n > cur.events.size()) n = cur.events.size();
    const std::size_t before = cur.events.size();
    bool reduced = false;
    for (int complement = 0; complement < 2 && !reduced; ++complement) {
      for (std::size_t i = 0; i < n && !reduced; ++i) {
        ChaosSchedule cand = cur;
        cand.events = chunk(cur.events, i, n, complement != 0);
        if (cand.events.size() >= before) continue;
        if (still_violates(cand)) {
          cur = cand;
          n = complement != 0 ? std::max<std::size_t>(n - 1, 2) : 2;
          reduced = true;
        }
      }
    }
    if (!reduced) {
      if (n >= cur.events.size()) break;
      n = std::min(2 * n, cur.events.size());
    }
  }
  if (!cur.events.empty()) {
    ChaosSchedule cand = cur;
    cand.events.clear();
    if (still_violates(cand)) cur = cand;
  }

  // Phase 2: zero each continuous rate that is not needed.
  const auto try_zero = [&](double FaultRates::* field) {
    if (cur.rates.*field == 0.0) return;
    ChaosSchedule cand = cur;
    cand.rates.*field = 0.0;
    if (still_violates(cand)) cur = cand;
  };
  try_zero(&FaultRates::kernel_nan);
  try_zero(&FaultRates::transfer_corrupt);
  try_zero(&FaultRates::transfer_stall);
  try_zero(&FaultRates::link_corrupt);
  try_zero(&FaultRates::link_stall);
  try_zero(&FaultRates::node_corrupt);
  return cur;
}

ChaosSchedule ChaosRunner::minimize(const ChaosSchedule& schedule,
                                    ChaosSolver solver) {
  return minimize(schedule, [this, solver](const ChaosSchedule& s) {
    return violates(s, solver);
  });
}

}  // namespace cagmres::sim
