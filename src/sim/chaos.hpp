// Chaos campaign engine: randomized multi-fault schedules against the
// resilient solvers, with a machine-readable invariant oracle and
// delta-debugged minimal reproducers.
//
// From one campaign seed the runner deterministically generates N fault
// schedules — mixed kill/NaN/corrupt/stall one-shot events (time- and
// op-triggered, including cascading multi-device kills clustered tightly
// enough to land inside a previous kill's checkpoint-restart) plus
// continuous rates — and runs each over {barrier, event} x configured host
// worker counts, alternating CA-GMRES and GMRES. Every run must end in one
// of the sanctioned states:
//   - converged, with a finite solution whose TRUE residual (checked
//     against the original, unprepared system) meets the tolerance;
//   - clean non-convergence (restart budget spent, solution finite);
//   - a clean typed Error (any code except kBadInput);
//   - a tripped simulated watchdog (Machine deadline -> kDeadlineExceeded).
// Additionally a same-seed replay (Machine::reset) must be bit-identical,
// and a zero-fault schedule must reproduce the unarmed baseline bytes for
// its configuration. Anything else is an invariant violation, and the
// violating schedule is auto-minimized (ddmin over events, then rate
// zeroing) to a minimal reproducer printable as a --faults spec string.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace cagmres::sim {

/// Which solver a run drives (the campaign alternates by schedule index).
/// The kPrecond* variants run the same solvers right-preconditioned with a
/// fresh ILU(k) PrecondHandle per run (ChaosConfig::precond), so kills and
/// corrupt storms land inside preconditioner setup and the level-scheduled
/// trisolves as well as the solver proper.
enum class ChaosSolver { kCaGmres, kGmres, kPrecondCaGmres, kPrecondGmres };
std::string to_string(ChaosSolver s);

/// Sanctioned terminal states of one run (see file comment).
enum class ChaosOutcome { kConverged, kUnconverged, kCleanError, kWatchdog };
std::string to_string(ChaosOutcome o);

/// One generated fault schedule; representable as (and round-trippable
/// through) the --faults spec grammar of parse_fault_spec.
struct ChaosSchedule {
  std::uint64_t seed = 0x5eedULL;  ///< injector RNG seed
  double stall_us = 250.0;         ///< injected stall latency
  std::vector<FaultEvent> events;  ///< one-shot events, in schedule order
  FaultRates rates;                ///< continuous per-op probabilities

  /// True when the schedule would arm an injector (any event or rate).
  bool armed() const;
  /// Renders the schedule as a --faults spec string.
  std::string to_spec() const;
  /// Applies the schedule to an injector (seed, stall, events, rates).
  void arm(FaultInjector& fi) const;
  /// Parses a --faults spec string back into a schedule.
  static ChaosSchedule from_spec(const std::string& spec);
};

/// Result of one (schedule, solver, mode, workers) run.
struct ChaosRunResult {
  ChaosOutcome outcome = ChaosOutcome::kConverged;
  std::string error_code;    ///< to_string(code) when outcome==kCleanError
  std::string violation;     ///< non-empty = the oracle failed (the reason)
  bool degraded = false;     ///< finished on the cpu_gmres floor
  int device_failures = 0;   ///< injected permanent kills observed
  double elapsed = 0.0;      ///< simulated seconds of the run
  double final_residual = 0.0;
  std::uint64_t fingerprint = 0;  ///< hash of x bytes + outcome + timing
  /// Per-tier interconnect traffic of the run: wire bytes actually moved
  /// and the pre-codec payload ("logical") bytes — equal unless a transfer
  /// codec was armed (CAGMRES_COMPRESS). Zero when the solver threw before
  /// returning stats.
  double peer_bytes = 0.0, peer_logical_bytes = 0.0;
  double pcie_bytes = 0.0, pcie_logical_bytes = 0.0;
  double net_bytes = 0.0, net_logical_bytes = 0.0;
};

/// One confirmed invariant violation.
struct ChaosViolation {
  int schedule_index = -1;
  ChaosSolver solver = ChaosSolver::kCaGmres;
  SyncMode mode = SyncMode::kEvent;
  int workers = 0;
  std::string what;  ///< which invariant broke, and how
  std::string spec;  ///< the offending schedule as a --faults spec
};

/// Campaign configuration. The defaults match the faults_test scale: a
/// 24x24 convection-diffusion Laplacian over 4 simulated devices.
struct ChaosConfig {
  int n_devices = 4;
  /// Multi-node topology: n_nodes fault domains of n_devices/n_nodes
  /// devices each (must divide n_devices). When > 1, every machine the
  /// campaign builds gets Machine::set_topology and the generator mixes in
  /// node-scoped faults: atomic whole-node kills, inter-node link
  /// corruption/stall rates, and node-targeted corrupt storms.
  int n_nodes = 1;
  int nx = 24, ny = 24;        ///< grid of the generated test matrix
  /// Non-empty: use a paper-matrix analog from make_paper_matrix ("cant",
  /// "g3_circuit", "dielfilter", "nlpkkt") at `matrix_scale` instead of the
  /// nx x ny convection-diffusion Laplacian.
  std::string matrix;
  double matrix_scale = 1.0;
  int m = 30;                  ///< restart length
  int s = 6;                   ///< CA-GMRES block size
  double tol = 1e-6;
  int max_restarts = 400;
  int min_devices = 1;         ///< degradation floor passed to the solvers
  bool degrade_to_cpu = true;
  /// Watchdog: deadline = deadline_factor x the slowest fault-free
  /// baseline, armed on every faulty run.
  double deadline_factor = 50.0;
  std::vector<SyncMode> modes = {SyncMode::kBarrier, SyncMode::kEvent};
  std::vector<int> worker_counts = {0, 2};
  bool both_solvers = true;    ///< alternate CA-GMRES / GMRES by index
  /// Non-empty: a parse_precond_spec string ("ilu:k=1"); the alternation
  /// widens to a 4-cycle {ca, gmres, precond_ca, precond_gmres} (2-cycle
  /// {ca, precond_ca} when both_solvers is off), so half of all schedules
  /// chaos the preconditioned drivers. Empty (the default) keeps the
  /// campaign byte-identical to the pre-preconditioner engine — schedule
  /// generation never consumes RNG for this knob.
  std::string precond;
  bool check_replay = true;    ///< rerun each config after Machine::reset
  /// Demo hook for exercising the minimizer on a healthy build: when >= 0,
  /// any run observing at least this many device kills is flagged as a
  /// violation (see tools/chaos --demo-bug-kills).
  int demo_bug_kills = -1;
};

/// Aggregate campaign outcome.
struct ChaosCampaignStats {
  int schedules = 0;
  int zero_fault = 0;  ///< schedules generated unarmed (baseline checks)
  int runs = 0;
  int converged = 0;
  int unconverged = 0;
  int clean_errors = 0;
  int watchdogs = 0;
  int degraded = 0;
  /// Summed per-tier traffic over every run (wire vs pre-codec payload
  /// bytes; see ChaosRunResult) so the driver can report the campaign's
  /// achieved compression ratios.
  double peer_bytes = 0.0, peer_logical_bytes = 0.0;
  double pcie_bytes = 0.0, pcie_logical_bytes = 0.0;
  double net_bytes = 0.0, net_logical_bytes = 0.0;
  std::vector<ChaosViolation> violations;
};

/// The campaign engine (see file comment). Deterministic end to end: the
/// campaign seed fixes every schedule, every run, and every fingerprint.
class ChaosRunner {
 public:
  explicit ChaosRunner(const ChaosConfig& cfg = {});
  ~ChaosRunner();
  ChaosRunner(const ChaosRunner&) = delete;
  ChaosRunner& operator=(const ChaosRunner&) = delete;

  const ChaosConfig& config() const;

  /// Deterministically generates schedule `index` of a campaign.
  ChaosSchedule generate(std::uint64_t campaign_seed, int index);

  /// Runs one schedule over every configured (mode, workers) pair with the
  /// index-selected solver, checking the full oracle (terminal state,
  /// replay bit-identity, zero-fault baseline match). Returns violations.
  std::vector<ChaosViolation> run_schedule(const ChaosSchedule& schedule,
                                           int index);

  /// Generates and runs `n_schedules` schedules.
  ChaosCampaignStats run_campaign(
      std::uint64_t campaign_seed, int n_schedules,
      const std::function<void(int, const ChaosSchedule&,
                               const std::vector<ChaosViolation>&)>&
          progress = nullptr);

  /// One run of one configuration (no replay/baseline cross-checks beyond
  /// the run's own oracle).
  ChaosRunResult run_one(const ChaosSchedule& schedule, ChaosSolver solver,
                         SyncMode mode, int workers);

  /// True when run_schedule-style checks find any violation for `solver`.
  bool violates(const ChaosSchedule& schedule, ChaosSolver solver);

  /// Delta-debugs a violating schedule down to a minimal one that still
  /// satisfies `still_violates`: ddmin over the event list, then zeroing
  /// each continuous rate. Requires still_violates(schedule).
  ChaosSchedule minimize(
      const ChaosSchedule& schedule,
      const std::function<bool(const ChaosSchedule&)>& still_violates);

  /// minimize() against the standard oracle for one solver.
  ChaosSchedule minimize(const ChaosSchedule& schedule, ChaosSolver solver);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cagmres::sim
