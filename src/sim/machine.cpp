#include "sim/machine.hpp"

#include <numeric>

#include "common/error.hpp"

namespace cagmres::sim {

Counters Counters::operator-(const Counters& rhs) const {
  Counters out(static_cast<int>(dev_flops.size()));
  for (std::size_t d = 0; d < dev_flops.size(); ++d) {
    out.dev_flops[d] = dev_flops[d] - rhs.dev_flops[d];
    out.dev_bytes[d] = dev_bytes[d] - rhs.dev_bytes[d];
    out.dev_kernels[d] = dev_kernels[d] - rhs.dev_kernels[d];
  }
  out.host_flops = host_flops - rhs.host_flops;
  out.d2h_bytes = d2h_bytes - rhs.d2h_bytes;
  out.h2d_bytes = h2d_bytes - rhs.h2d_bytes;
  out.d2h_msgs = d2h_msgs - rhs.d2h_msgs;
  out.h2d_msgs = h2d_msgs - rhs.h2d_msgs;
  out.net_bytes = net_bytes - rhs.net_bytes;
  out.net_msgs = net_msgs - rhs.net_msgs;
  for (int k = 0; k < kKernelClasses; ++k) {
    out.kernel_flops[static_cast<std::size_t>(k)] =
        kernel_flops[static_cast<std::size_t>(k)] -
        rhs.kernel_flops[static_cast<std::size_t>(k)];
    out.kernel_seconds[static_cast<std::size_t>(k)] =
        kernel_seconds[static_cast<std::size_t>(k)] -
        rhs.kernel_seconds[static_cast<std::size_t>(k)];
    out.kernel_count[static_cast<std::size_t>(k)] =
        kernel_count[static_cast<std::size_t>(k)] -
        rhs.kernel_count[static_cast<std::size_t>(k)];
  }
  return out;
}

double Counters::total_dev_flops() const {
  return std::accumulate(dev_flops.begin(), dev_flops.end(), 0.0);
}

Machine::Machine(int n_devices, PerfModel model)
    : model_(model),
      topo_{1, n_devices},
      clock_(n_devices),
      counters_(n_devices) {}

Machine::Machine(Topology topology, PerfModel model)
    : model_(model),
      topo_(topology),
      clock_(topology.n_devices()),
      counters_(topology.n_devices()) {
  CAGMRES_REQUIRE(topology.n_nodes >= 1 && topology.gpus_per_node >= 1,
                  "empty topology");
}

void Machine::mark_phase() {
  const double now = clock_.elapsed();
  phases_.add(phase_, now - phase_mark_);
  phase_mark_ = now;
}

void Machine::set_phase(const std::string& phase) {
  mark_phase();
  phase_ = phase;
  phases_.set_current(phase);
}

void Machine::charge_device(int d, Kernel k, double flops, double bytes) {
  const double t = model_.device_seconds(k, flops, bytes);
  clock_.device_advance(d, t);
  if (tracing_) {
    trace_.record(d, clock_.device_time(d) - t, clock_.device_time(d),
                  kernel_name(k), phase_);
  }
  counters_.dev_flops[static_cast<std::size_t>(d)] += flops;
  counters_.dev_bytes[static_cast<std::size_t>(d)] += bytes;
  ++counters_.dev_kernels[static_cast<std::size_t>(d)];
  const auto ki = static_cast<std::size_t>(kernel_index(k));
  counters_.kernel_flops[ki] += flops;
  counters_.kernel_seconds[ki] += t;
  ++counters_.kernel_count[ki];
  mark_phase();
}

void Machine::charge_host(Kernel k, double flops, double bytes) {
  const double before = clock_.host_time();
  clock_.host_advance(model_.host_seconds(k, flops, bytes));
  if (tracing_) {
    trace_.record(-1, before, clock_.host_time(), kernel_name(k), phase_);
  }
  counters_.host_flops += flops;
  mark_phase();
}

void Machine::d2h(int d, double bytes) {
  // A message from a remote node travels GPU -> local host -> network ->
  // coordinating host; the serial path is folded into the device timeline
  // (the device-side data is in flight either way).
  double t = model_.transfer_seconds(bytes);
  if (is_remote(d)) {
    t += model_.net_seconds(bytes);
    counters_.net_bytes += bytes;
    ++counters_.net_msgs;
  }
  clock_.async_transfer(d, t);
  if (tracing_) {
    trace_.record(d, clock_.device_time(d) - t, clock_.device_time(d), "d2h",
                  phase_);
  }
  counters_.d2h_bytes += bytes;
  ++counters_.d2h_msgs;
  mark_phase();
}

void Machine::h2d(int d, double bytes) {
  double t = model_.transfer_seconds(bytes);
  if (is_remote(d)) {
    t += model_.net_seconds(bytes);
    counters_.net_bytes += bytes;
    ++counters_.net_msgs;
  }
  clock_.async_transfer(d, t);
  if (tracing_) {
    trace_.record(d, clock_.device_time(d) - t, clock_.device_time(d), "h2d",
                  phase_);
  }
  counters_.h2d_bytes += bytes;
  ++counters_.h2d_msgs;
  mark_phase();
}

void Machine::reset() {
  clock_.reset();
  counters_ = Counters(n_devices());
  phases_.clear();
  trace_.clear();
  phase_mark_ = 0.0;
}

DistVec::DistVec(const std::vector<int>& rows_per_device) {
  part_.reserve(rows_per_device.size());
  for (const int r : rows_per_device) {
    CAGMRES_REQUIRE(r >= 0, "negative block size");
    part_.emplace_back(static_cast<std::size_t>(r), 0.0);
  }
}

int DistVec::total_rows() const {
  int n = 0;
  for (const auto& p : part_) n += static_cast<int>(p.size());
  return n;
}

void DistVec::assign_from_host(const std::vector<double>& x) {
  CAGMRES_REQUIRE(static_cast<int>(x.size()) == total_rows(),
                  "host vector size mismatch");
  std::size_t off = 0;
  for (auto& p : part_) {
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(off),
              x.begin() + static_cast<std::ptrdiff_t>(off + p.size()),
              p.begin());
    off += p.size();
  }
}

std::vector<double> DistVec::to_host() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(total_rows()));
  for (const auto& p : part_) out.insert(out.end(), p.begin(), p.end());
  return out;
}

DistMultiVec::DistMultiVec(const std::vector<int>& rows_per_device, int cols)
    : cols_(cols) {
  CAGMRES_REQUIRE(cols >= 0, "negative column count");
  part_.reserve(rows_per_device.size());
  for (const int r : rows_per_device) {
    CAGMRES_REQUIRE(r >= 0, "negative block size");
    part_.emplace_back(r, cols);
  }
}

int DistMultiVec::total_rows() const {
  int n = 0;
  for (const auto& p : part_) n += p.rows();
  return n;
}

}  // namespace cagmres::sim
