#include "sim/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/error.hpp"

namespace cagmres::sim {

namespace {

/// Worker count for new machines: CAGMRES_HOST_WORKERS in the environment,
/// clamped at the physical device count (extra workers would idle — streams
/// are pinned worker = stream % n_workers). Unset/0 = serial inline mode.
int default_host_workers(int n_devices) {
  const char* s = std::getenv("CAGMRES_HOST_WORKERS");
  if (s == nullptr || *s == '\0') return 0;
  const int n = std::atoi(s);
  return std::clamp(n, 0, n_devices);
}

/// Sync mode for new machines: per-buffer events are the default (they are
/// bitwise identical to the barriers and never slower on the charged
/// clock); CAGMRES_SYNC_MODE=barrier restores the seed's coarse
/// host_wait_all structure as an escape hatch.
SyncMode default_sync_mode() {
  const char* s = std::getenv("CAGMRES_SYNC_MODE");
  if (s != nullptr && std::string(s) == "barrier") return SyncMode::kBarrier;
  return SyncMode::kEvent;
}

/// Topology for machines built by device count: CAGMRES_TOPOLOGY in the
/// environment as "NxG" (N nodes of G devices) or a bare node count "N"
/// (devices split evenly). A shape that does not tile the device count is
/// silently ignored — the same binary drives machines of many sizes, and a
/// 2x4 request must not blow up the 3-device paper testbed. Machines built
/// from an explicit Topology are never overridden.
/// Hierarchical-collectives default for new machines: on (it charges
/// strictly less on deep shapes and is bitwise identical);
/// CAGMRES_HIER_REDUCE=0|flat|off restores the flat per-device fold as an
/// escape hatch. Only consulted on multi-node topologies.
bool default_hier_reduce() {
  const char* s = std::getenv("CAGMRES_HIER_REDUCE");
  if (s == nullptr || *s == '\0') return true;
  const std::string v(s);
  return !(v == "0" || v == "flat" || v == "off");
}

Topology default_topology(int n_devices) {
  const Topology flat{1, n_devices};
  const char* s = std::getenv("CAGMRES_TOPOLOGY");
  if (s == nullptr || *s == '\0') return flat;
  int nodes = 0, gpus = 0;
  if (std::sscanf(s, "%dx%d", &nodes, &gpus) < 2) {
    if (std::sscanf(s, "%d", &nodes) == 1 && nodes > 0 &&
        n_devices % nodes == 0) {
      gpus = n_devices / nodes;
    }
  }
  if (nodes >= 1 && gpus >= 1 && nodes * gpus == n_devices) {
    return Topology{nodes, gpus};
  }
  return flat;
}

/// Transfer codecs for new machines: CAGMRES_COMPRESS in the environment,
/// e.g. "halo=fp32,reduce=frsz2:16,ckpt=fp32" (DESIGN.md §14). Parsed
/// leniently like CAGMRES_TOPOLOGY — invalid entries are dropped rather
/// than blowing up every Machine in the process. Unset = all none, which
/// is bitwise identical to a machine without the codec layer.
CodecConfig default_codec_config() {
  const char* s = std::getenv("CAGMRES_COMPRESS");
  if (s == nullptr || *s == '\0') return {};
  return parse_codec_config(s, /*lenient=*/true);
}

}  // namespace

Counters Counters::operator-(const Counters& rhs) const {
  Counters out(static_cast<int>(dev_flops.size()));
  for (std::size_t d = 0; d < dev_flops.size(); ++d) {
    out.dev_flops[d] = dev_flops[d] - rhs.dev_flops[d];
    out.dev_bytes[d] = dev_bytes[d] - rhs.dev_bytes[d];
    out.dev_kernels[d] = dev_kernels[d] - rhs.dev_kernels[d];
  }
  out.host_flops = host_flops - rhs.host_flops;
  out.d2h_bytes = d2h_bytes - rhs.d2h_bytes;
  out.h2d_bytes = h2d_bytes - rhs.h2d_bytes;
  out.d2h_msgs = d2h_msgs - rhs.d2h_msgs;
  out.h2d_msgs = h2d_msgs - rhs.h2d_msgs;
  out.net_bytes = net_bytes - rhs.net_bytes;
  out.net_msgs = net_msgs - rhs.net_msgs;
  out.peer_bytes = peer_bytes - rhs.peer_bytes;
  out.peer_msgs = peer_msgs - rhs.peer_msgs;
  out.d2h_logical_bytes = d2h_logical_bytes - rhs.d2h_logical_bytes;
  out.h2d_logical_bytes = h2d_logical_bytes - rhs.h2d_logical_bytes;
  out.net_logical_bytes = net_logical_bytes - rhs.net_logical_bytes;
  out.peer_logical_bytes = peer_logical_bytes - rhs.peer_logical_bytes;
  for (int k = 0; k < kKernelClasses; ++k) {
    out.kernel_flops[static_cast<std::size_t>(k)] =
        kernel_flops[static_cast<std::size_t>(k)] -
        rhs.kernel_flops[static_cast<std::size_t>(k)];
    out.kernel_seconds[static_cast<std::size_t>(k)] =
        kernel_seconds[static_cast<std::size_t>(k)] -
        rhs.kernel_seconds[static_cast<std::size_t>(k)];
    out.kernel_count[static_cast<std::size_t>(k)] =
        kernel_count[static_cast<std::size_t>(k)] -
        rhs.kernel_count[static_cast<std::size_t>(k)];
  }
  return out;
}

double Counters::total_dev_flops() const {
  return std::accumulate(dev_flops.begin(), dev_flops.end(), 0.0);
}

Machine::Machine(int n_devices, PerfModel model)
    : model_(model),
      topo_(default_topology(n_devices)),
      clock_(n_devices),
      counters_(n_devices),
      dev_ops_(static_cast<std::size_t>(n_devices), 0),
      dev_busy_(static_cast<std::size_t>(n_devices), 0.0),
      dev_poison_(static_cast<std::size_t>(n_devices), 0),
      codecs_(default_codec_config()),
      hier_reduce_(default_hier_reduce()),
      sync_mode_(default_sync_mode()),
      pool_(n_devices, default_host_workers(n_devices)) {
  dev_map_.resize(static_cast<std::size_t>(n_devices));
  std::iota(dev_map_.begin(), dev_map_.end(), 0);
  faults_.set_gpus_per_node(topo_.gpus_per_node);
}

Machine::Machine(Topology topology, PerfModel model)
    : model_(model),
      topo_(topology),
      clock_(topology.n_devices()),
      counters_(topology.n_devices()),
      dev_ops_(static_cast<std::size_t>(topology.n_devices()), 0),
      dev_busy_(static_cast<std::size_t>(topology.n_devices()), 0.0),
      dev_poison_(static_cast<std::size_t>(topology.n_devices()), 0),
      codecs_(default_codec_config()),
      hier_reduce_(default_hier_reduce()),
      sync_mode_(default_sync_mode()),
      pool_(topology.n_devices(),
            default_host_workers(topology.n_devices())) {
  CAGMRES_REQUIRE(topology.n_nodes >= 1 && topology.gpus_per_node >= 1,
                  "empty topology");
  dev_map_.resize(static_cast<std::size_t>(topology.n_devices()));
  std::iota(dev_map_.begin(), dev_map_.end(), 0);
  faults_.set_gpus_per_node(topo_.gpus_per_node);
}

void Machine::set_topology(int nodes, int devices_per_node) {
  CAGMRES_REQUIRE(nodes >= 1 && devices_per_node >= 1 &&
                      nodes * devices_per_node == n_physical_devices(),
                  "set_topology: nodes * devices_per_node must equal the "
                  "constructed device count");
  CAGMRES_REQUIRE(n_devices() == n_physical_devices(),
                  "set_topology: cannot reshape after a retirement");
  topo_ = Topology{nodes, devices_per_node};
  faults_.set_gpus_per_node(devices_per_node);
}

std::vector<int> Machine::dead_logical_devices() const {
  std::vector<int> out;
  for (int d = 0; d < n_devices(); ++d) {
    if (faults_.device_dead(physical_device(d))) out.push_back(d);
  }
  return out;
}

void Machine::retire_device(int d) {
  CAGMRES_REQUIRE(0 <= d && d < n_devices(), "retire: bad logical device");
  CAGMRES_REQUIRE(n_devices() > 1, "retire: cannot retire the last device");
  // Retirement happens inside a solver's fault handler; finish (or discard)
  // whatever the pool still holds without letting a latched exception
  // preempt the recovery already in progress.
  sync_nothrow();
  dev_map_.erase(dev_map_.begin() + d);
}

std::int64_t Machine::poll_faults_kernel(int logical, int physical) {
  const auto p = static_cast<std::size_t>(physical);
  const std::int64_t op = ++dev_ops_[p];
  const double now = clock_.device_time(physical);
  if (faults_.poll_device_fail(physical, now, op)) {
    if (tracing_) trace_.record_instant(physical, now, "fault:kill", phase_);
    // Drain before unwinding: the stack between here and the solver's
    // fault handler owns buffers that closures still queued on the
    // surviving devices' streams may reference.
    sync_nothrow();
    throw Error("simulated device " + std::to_string(physical) + " failed",
                ErrorCode::kDeviceFault, logical);
  }
  if (faults_.poll_kernel_nan(physical, now, op)) {
    if (tracing_) trace_.record_instant(physical, now, "fault:nan", phase_);
    dev_poison_[p] = 1;
  }
  return op;
}

std::int64_t Machine::poll_faults_transfer_pre(int logical, int physical,
                                               bool cross_net,
                                               double* extra_stall) {
  const auto p = static_cast<std::size_t>(physical);
  const std::int64_t op = ++dev_ops_[p];
  const double now = clock_.device_time(physical);
  if (faults_.poll_device_fail(physical, now, op)) {
    if (tracing_) trace_.record_instant(physical, now, "fault:kill", phase_);
    sync_nothrow();  // see poll_faults_kernel: drain before unwinding
    throw Error("simulated device " + std::to_string(physical) +
                    " failed (transfer)",
                ErrorCode::kDeviceFault, logical);
  }
  if (faults_.poll_transfer_stall(physical, now, op)) {
    if (tracing_) trace_.record_instant(physical, now, "fault:stall", phase_);
    *extra_stall = faults_.stall_seconds();
    faults_.stats().stall_seconds += *extra_stall;
  }
  // Inter-node link degradation only touches messages that actually cross
  // the network; node-local and coordinating-node traffic never polls it.
  if (cross_net && faults_.poll_link_stall(physical, now, op)) {
    if (tracing_) {
      trace_.record_instant(physical, now, "fault:linkstall", phase_);
    }
    *extra_stall += faults_.stall_seconds();
    faults_.stats().stall_seconds += faults_.stall_seconds();
  }
  return op;
}

void Machine::retry_corrupt_transfer(int logical, int physical,
                                     double resend_s, std::int64_t op,
                                     bool cross_net, const char* name) {
  // Checksum verification: an injected corruption fails it and forces a
  // charged backoff + retransmission; the payload in host memory is the
  // authoritative copy, so a verified transfer always delivers clean data.
  // Cross-network messages are additionally exposed to the inter-node
  // link's own corruption rate, and each retry re-rolls both.
  double backoff = retry_.backoff_s;
  int attempts = 0;
  while (faults_.poll_transfer_corrupt(physical, clock_.device_time(physical),
                                       op) ||
         (cross_net && faults_.poll_link_corrupt(
                           physical, clock_.device_time(physical), op))) {
    if (tracing_) {
      trace_.record_instant(physical, clock_.device_time(physical),
                            "fault:corrupt", phase_);
    }
    if (attempts++ >= retry_.max_retries) {
      // Drain before unwinding, like the kill/NaN throws: host workers may
      // still hold tasks referencing stack buffers of the caller that is
      // about to unwind (use-after-free otherwise — found by the chaos
      // campaign as heap corruption under a corrupt storm with workers).
      sync_nothrow();
      throw Error("transfer to/from device " + std::to_string(physical) +
                      " still corrupt after " +
                      std::to_string(retry_.max_retries) + " retries",
                  ErrorCode::kRetriesExhausted, logical);
    }
    const double t = backoff + resend_s;
    clock_.async_transfer(physical, t);
    if (tracing_) {
      trace_.record(physical, clock_.device_time(physical) - t,
                    clock_.device_time(physical), name, phase_);
    }
    ++faults_.stats().transfer_retries;
    faults_.stats().retry_seconds += t;
    backoff *= retry_.backoff_mult;
  }
}

void Machine::check_deadline() {
  if (deadline_ <= 0.0 || clock_.elapsed() <= deadline_) return;
  if (tracing_) {
    trace_.record_instant(-1, clock_.elapsed(), "watchdog:deadline", phase_);
  }
  // Drain before unwinding, like the fault throws: workers may still hold
  // closures referencing buffers the unwind is about to destroy.
  sync_nothrow();
  throw Error("simulated watchdog: elapsed " + std::to_string(clock_.elapsed()) +
                  "s exceeded deadline " + std::to_string(deadline_) + "s",
              ErrorCode::kDeadlineExceeded);
}

void Machine::mark_phase() {
  const double now = clock_.elapsed();
  phases_.add(phase_, now - phase_mark_);
  phase_mark_ = now;
}

void Machine::set_phase(const std::string& phase) {
  mark_phase();
  phase_ = phase;
  phases_.set_current(phase);
}

void Machine::trace_instant(const std::string& name,
                            const std::string& phase) {
  if (tracing_) trace_.record_instant(-1, clock_.elapsed(), name, phase);
}

void Machine::charge_device(int d, Kernel k, double flops, double bytes) {
  const int p = physical_device(d);
  if (faults_.armed()) poll_faults_kernel(d, p);
  const double t = model_.device_seconds(k, flops, bytes);
  clock_.device_advance(p, t);
  dev_busy_[static_cast<std::size_t>(p)] += t;
  if (tracing_) {
    trace_.record(p, clock_.device_time(p) - t, clock_.device_time(p),
                  kernel_name(k), phase_);
  }
  counters_.dev_flops[static_cast<std::size_t>(p)] += flops;
  counters_.dev_bytes[static_cast<std::size_t>(p)] += bytes;
  ++counters_.dev_kernels[static_cast<std::size_t>(p)];
  const auto ki = static_cast<std::size_t>(kernel_index(k));
  counters_.kernel_flops[ki] += flops;
  counters_.kernel_seconds[ki] += t;
  ++counters_.kernel_count[ki];
  mark_phase();
  check_deadline();
}

void Machine::charge_host(Kernel k, double flops, double bytes) {
  const double before = clock_.host_time();
  clock_.host_advance(model_.host_seconds(k, flops, bytes));
  if (tracing_) {
    trace_.record(-1, before, clock_.host_time(), kernel_name(k), phase_);
  }
  counters_.host_flops += flops;
  mark_phase();
  check_deadline();
}

void Machine::charge_transfer(int d, double bytes, double logical_bytes,
                              bool to_device, bool node_local,
                              const char* name, const char* retry_name) {
  // A message from a remote node travels GPU -> local host -> network ->
  // coordinating host; the serial path is folded into the device timeline
  // (the device-side data is in flight either way). Node-local messages
  // stay on the intra-node peer link and never touch the network.
  const int p = physical_device(d);
  const bool cross_net = !node_local && is_remote(d);
  double stall = 0.0;
  std::int64_t op = 0;
  if (faults_.armed()) {
    op = poll_faults_transfer_pre(d, p, cross_net, &stall);
  }
  double resend = node_local ? model_.peer_seconds(bytes)
                             : model_.transfer_seconds(bytes);
  double queue = 0.0;
  if (cross_net) {
    // The network hop serializes on the coordinating host's NIC: the
    // message reaches the wire once its PCIe stage (plus any injected
    // stall) completes, then waits for the link direction to free up.
    // Charging runs on the main thread in program order, so the queue is
    // deterministic for any sync mode or worker count.
    const double net = model_.net_seconds(bytes);
    const double ready = clock_.device_time(p) + resend + stall;
    double& link = net_free_[to_device ? 1 : 0];
    const double start = std::max(ready, link);
    queue = start - ready;
    link = start + net;
    resend += net;
    counters_.net_bytes += bytes;
    counters_.net_logical_bytes += logical_bytes;
    ++counters_.net_msgs;
  }
  const double t = resend + stall + queue;
  clock_.async_transfer(p, t);
  // Busy excludes the injected stall, the NIC queue wait, and the retries
  // below: latency-only faults and contention (both of which depend on
  // mode-sensitive timestamps) must not perturb the reduce fold order, or
  // "identical numerics, strictly more time" would stop holding.
  dev_busy_[static_cast<std::size_t>(p)] += resend;
  if (tracing_) {
    trace_.record(p, clock_.device_time(p) - t, clock_.device_time(p), name,
                  phase_);
  }
  if (node_local) {
    counters_.peer_bytes += bytes;
    counters_.peer_logical_bytes += logical_bytes;
    ++counters_.peer_msgs;
  } else if (to_device) {
    counters_.h2d_bytes += bytes;
    counters_.h2d_logical_bytes += logical_bytes;
    ++counters_.h2d_msgs;
  } else {
    counters_.d2h_bytes += bytes;
    counters_.d2h_logical_bytes += logical_bytes;
    ++counters_.d2h_msgs;
  }
  if (faults_.armed()) {
    retry_corrupt_transfer(d, p, resend, op, cross_net, retry_name);
  }
  mark_phase();
  check_deadline();
}

void Machine::d2h(int d, double bytes, double logical_bytes) {
  if (logical_bytes < 0.0) logical_bytes = bytes;
  charge_transfer(d, bytes, logical_bytes, false, false, "d2h", "retry:d2h");
}

void Machine::h2d(int d, double bytes, double logical_bytes) {
  if (logical_bytes < 0.0) logical_bytes = bytes;
  charge_transfer(d, bytes, logical_bytes, true, false, "h2d", "retry:h2d");
}

void Machine::d2h_node(int d, double bytes, double logical_bytes) {
  if (logical_bytes < 0.0) logical_bytes = bytes;
  charge_transfer(d, bytes, logical_bytes, false, true, "d2h_node",
                  "retry:d2h_node");
}

void Machine::h2d_node(int d, double bytes, double logical_bytes) {
  if (logical_bytes < 0.0) logical_bytes = bytes;
  charge_transfer(d, bytes, logical_bytes, true, true, "h2d_node",
                  "retry:h2d_node");
}

void Machine::set_codec(TrafficClass c, CodecSpec spec) {
  CAGMRES_REQUIRE(spec.bits >= 4 && spec.bits <= 31,
                  "set_codec: frsz2 bits must be in [4, 31]");
  CAGMRES_REQUIRE(!(c == TrafficClass::kCkpt && spec.kind == Codec::kFrsz2),
                  "set_codec: ckpt requires a lossless-restorable codec "
                  "(none|fp32); frsz2 block boundaries shift on repartition");
  codecs_.at(c) = spec;
}

double Machine::nic_dma(double bytes, double ready_s, double logical_bytes) {
  if (logical_bytes < 0.0) logical_bytes = bytes;
  // Node-host to node-host DMA: queues on the into-host NIC direction like
  // a d2h network hop, but no device stream carries it — the caller holds
  // the arrival time (typically inside an Event) and charges any wait
  // itself. No fault polls: link faults are scoped to device-addressed
  // messages, and the mirror client re-validates on restore.
  const double net = model_.net_seconds(bytes);
  const double start = std::max(ready_s, net_free_[0]);
  net_free_[0] = start + net;
  counters_.net_bytes += bytes;
  counters_.net_logical_bytes += logical_bytes;
  ++counters_.net_msgs;
  return start + net;
}

Event Machine::record_event(int d) {
  Event e;
  e.physical = physical_device(d);
  e.t = clock_.device_time(e.physical);
  e.ticket = pool_.ticket(e.physical);
  if (tracing_) trace_.record_instant(e.physical, e.t, "event:record", phase_);
  return e;
}

void Machine::stream_wait_event(int d, const Event& e) {
  CAGMRES_REQUIRE(e.physical >= 0, "wait on default-constructed event");
  const int p = physical_device(d);
  mark_phase();
  clock_.device_wait_time(p, e.t);
  if (tracing_) {
    trace_.record_instant(p, clock_.device_time(p), "event:stream_wait",
                          phase_);
  }
  // Wall-clock half: closures later enqueued on p must not run before the
  // producer's recorded prefix. Same-stream waits are free (FIFO order).
  pool_.enqueue_wait(p, e.physical, e.ticket);
}

void Machine::host_wait_event(const Event& e) {
  CAGMRES_REQUIRE(e.physical >= 0, "wait on default-constructed event");
  // Wall-clock half first: the host is about to read data produced by the
  // recorded closures. Unlike host_wait(), only the event's prefix of that
  // one stream is drained — later closures and other streams keep running.
  pool_.wait_ticket(e.physical, e.ticket);
  mark_phase();
  clock_.host_wait_time(e.t);
  if (tracing_) {
    trace_.record_instant(-1, clock_.host_time(), "event:host_wait", phase_);
  }
}

void Machine::reset() {
  sync_nothrow();
  clock_.reset();
  counters_ = Counters(n_physical_devices());
  phases_.clear();
  trace_.clear();
  faults_.reset();
  dev_map_.resize(static_cast<std::size_t>(n_physical_devices()));
  std::iota(dev_map_.begin(), dev_map_.end(), 0);
  std::fill(dev_ops_.begin(), dev_ops_.end(), 0);
  std::fill(dev_busy_.begin(), dev_busy_.end(), 0.0);
  std::fill(dev_poison_.begin(), dev_poison_.end(), 0);
  net_free_[0] = net_free_[1] = 0.0;
  phase_mark_ = 0.0;
}

DistVec::DistVec(const std::vector<int>& rows_per_device) {
  part_.reserve(rows_per_device.size());
  for (const int r : rows_per_device) {
    CAGMRES_REQUIRE(r >= 0, "negative block size");
    part_.emplace_back(static_cast<std::size_t>(r), 0.0);
  }
}

int DistVec::total_rows() const {
  int n = 0;
  for (const auto& p : part_) n += static_cast<int>(p.size());
  return n;
}

void DistVec::assign_from_host(const std::vector<double>& x) {
  CAGMRES_REQUIRE(static_cast<int>(x.size()) == total_rows(),
                  "host vector size mismatch");
  std::size_t off = 0;
  for (auto& p : part_) {
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(off),
              x.begin() + static_cast<std::ptrdiff_t>(off + p.size()),
              p.begin());
    off += p.size();
  }
}

std::vector<double> DistVec::to_host() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(total_rows()));
  for (const auto& p : part_) out.insert(out.end(), p.begin(), p.end());
  return out;
}

DistMultiVec::DistMultiVec(const std::vector<int>& rows_per_device, int cols)
    : cols_(cols) {
  CAGMRES_REQUIRE(cols >= 0, "negative column count");
  part_.reserve(rows_per_device.size());
  for (const int r : rows_per_device) {
    CAGMRES_REQUIRE(r >= 0, "negative block size");
    part_.emplace_back(r, cols);
  }
}

int DistMultiVec::total_rows() const {
  int n = 0;
  for (const auto& p : part_) n += p.rows();
  return n;
}

}  // namespace cagmres::sim
