#include "sim/fault.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace cagmres::sim {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceFail:
      return "kill";
    case FaultKind::kKernelNan:
      return "nan";
    case FaultKind::kTransferCorrupt:
      return "corrupt";
    case FaultKind::kTransferStall:
      return "stall";
    case FaultKind::kNodeFail:
      return "nodekill";
    case FaultKind::kLinkCorrupt:
      return "linkcorrupt";
    case FaultKind::kLinkStall:
      return "linkstall";
  }
  return "?";
}

FaultStats FaultStats::operator-(const FaultStats& rhs) const {
  FaultStats out;
  out.injected_total = injected_total - rhs.injected_total;
  out.device_failures = device_failures - rhs.device_failures;
  out.node_failures = node_failures - rhs.node_failures;
  out.kernel_nans = kernel_nans - rhs.kernel_nans;
  out.transfer_corruptions = transfer_corruptions - rhs.transfer_corruptions;
  out.transfer_stalls = transfer_stalls - rhs.transfer_stalls;
  out.link_corruptions = link_corruptions - rhs.link_corruptions;
  out.link_stalls = link_stalls - rhs.link_stalls;
  out.transfer_retries = transfer_retries - rhs.transfer_retries;
  out.retry_seconds = retry_seconds - rhs.retry_seconds;
  out.stall_seconds = stall_seconds - rhs.stall_seconds;
  return out;
}

void FaultInjector::schedule(const FaultEvent& event) {
  CAGMRES_REQUIRE((event.at_time >= 0.0) != (event.at_op >= 0),
                  "fault event needs exactly one of at_time / at_op");
  events_.push_back(event);
  armed_ = true;
}

void FaultInjector::set_rates(const FaultRates& rates) {
  CAGMRES_REQUIRE(rates.kernel_nan >= 0.0 && rates.kernel_nan <= 1.0 &&
                      rates.transfer_corrupt >= 0.0 &&
                      rates.transfer_corrupt <= 1.0 &&
                      rates.transfer_stall >= 0.0 &&
                      rates.transfer_stall <= 1.0 &&
                      rates.link_corrupt >= 0.0 && rates.link_corrupt <= 1.0 &&
                      rates.link_stall >= 0.0 && rates.link_stall <= 1.0 &&
                      rates.node_corrupt >= 0.0 && rates.node_corrupt <= 1.0,
                  "fault rates must be probabilities");
  rates_ = rates;
  armed_ = !events_.empty() || rates_.kernel_nan > 0.0 ||
           rates_.transfer_corrupt > 0.0 || rates_.transfer_stall > 0.0 ||
           rates_.link_corrupt > 0.0 || rates_.link_stall > 0.0 ||
           (rates_.node_corrupt > 0.0 && rates_.corrupt_node >= 0);
}

void FaultInjector::set_seed(std::uint64_t seed) {
  seed_ = seed;
  rng_ = Rng(seed);
}

bool FaultInjector::device_dead(int device) const {
  return std::find(dead_.begin(), dead_.end(), device) != dead_.end();
}

void FaultInjector::record(FaultKind kind, int device, double now,
                           std::int64_t op) {
  ++stats_.injected_total;
  switch (kind) {
    case FaultKind::kDeviceFail:
      ++stats_.device_failures;
      break;
    case FaultKind::kKernelNan:
      ++stats_.kernel_nans;
      break;
    case FaultKind::kTransferCorrupt:
      ++stats_.transfer_corruptions;
      break;
    case FaultKind::kTransferStall:
      ++stats_.transfer_stalls;
      break;
    case FaultKind::kNodeFail:
      ++stats_.node_failures;
      break;
    case FaultKind::kLinkCorrupt:
      ++stats_.link_corruptions;
      break;
    case FaultKind::kLinkStall:
      ++stats_.link_stalls;
      break;
  }
  log_.push_back({kind, device, now, op});
}

bool FaultInjector::poll_scheduled(FaultKind kind, int device, double now,
                                   std::int64_t op) {
  // One poll consumes at most one event: the earliest *scheduled* event of
  // this kind that matches the polling device and whose trigger has been
  // reached. In particular, several device=-1 events with identical
  // triggers fire strictly in schedule order, one per qualifying op — this
  // is how a spec expresses cascading faults ("kill:*@t=1ms;kill:*@t=1ms"
  // takes down the next two devices to touch the machine after 1ms), and
  // the order is pinned by FaultInjectorOrder in faults_test.
  for (std::size_t i = 0; i < events_.size(); ++i) {
    FaultEvent& e = events_[i];
    if (e.fired || e.kind != kind) continue;
    if (e.device >= 0 && e.device != device) continue;
    const bool due = (e.at_time >= 0.0 && now >= e.at_time) ||
                     (e.at_op >= 0 && op >= e.at_op);
    if (!due) continue;
    e.fired = true;
    return true;
  }
  return false;
}

bool FaultInjector::roll(double prob) {
  if (prob <= 0.0) return false;
  return rng_.uniform() < prob;
}

bool FaultInjector::poll_device_fail(int device, double now,
                                     std::int64_t op) {
  if (device_dead(device)) return true;  // dead stays dead
  if (poll_scheduled(FaultKind::kDeviceFail, device, now, op)) {
    dead_.push_back(device);
    record(FaultKind::kDeviceFail, device, now, op);
    return true;
  }
  // Correlated node loss: a kNodeFail event matches on the polling device's
  // *node* id and takes down every device in that node atomically, so the
  // solver's fault handler sees one kDeviceFault throw but finds the whole
  // domain dead when it surveys the machine. Schedule-order semantics are
  // identical to device kills (FaultInjectorOrder pins both).
  if (poll_scheduled(FaultKind::kNodeFail, node_of(device), now, op)) {
    const int first = node_of(device) * gpus_per_node_;
    for (int k = first; k < first + gpus_per_node_; ++k) {
      if (!device_dead(k)) {
        dead_.push_back(k);
        ++stats_.device_failures;
      }
    }
    record(FaultKind::kNodeFail, device, now, op);
    return true;
  }
  return false;
}

bool FaultInjector::poll_kernel_nan(int device, double now, std::int64_t op) {
  if (poll_scheduled(FaultKind::kKernelNan, device, now, op) ||
      roll(rates_.kernel_nan)) {
    record(FaultKind::kKernelNan, device, now, op);
    return true;
  }
  return false;
}

bool FaultInjector::poll_transfer_corrupt(int device, double now,
                                          std::int64_t op) {
  // The node-scoped storm term only rolls for devices on the target node,
  // so arming it cannot perturb the RNG stream other devices observe.
  const bool storm = rates_.corrupt_node >= 0 &&
                     node_of(device) == rates_.corrupt_node &&
                     roll(rates_.node_corrupt);
  if (poll_scheduled(FaultKind::kTransferCorrupt, device, now, op) ||
      roll(rates_.transfer_corrupt) || storm) {
    record(FaultKind::kTransferCorrupt, device, now, op);
    return true;
  }
  return false;
}

bool FaultInjector::poll_transfer_stall(int device, double now,
                                        std::int64_t op) {
  if (poll_scheduled(FaultKind::kTransferStall, device, now, op) ||
      roll(rates_.transfer_stall)) {
    record(FaultKind::kTransferStall, device, now, op);
    return true;
  }
  return false;
}

bool FaultInjector::poll_link_corrupt(int device, double now,
                                      std::int64_t op) {
  if (roll(rates_.link_corrupt)) {
    record(FaultKind::kLinkCorrupt, device, now, op);
    return true;
  }
  return false;
}

bool FaultInjector::poll_link_stall(int device, double now, std::int64_t op) {
  if (roll(rates_.link_stall)) {
    record(FaultKind::kLinkStall, device, now, op);
    return true;
  }
  return false;
}

void FaultInjector::reset() {
  for (FaultEvent& e : events_) e.fired = false;
  dead_.clear();
  stats_ = FaultStats{};
  log_.clear();
  rng_ = Rng(seed_);
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

double parse_number(const std::string& s, const std::string& ctx) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  CAGMRES_REQUIRE(end != s.c_str(), "faults spec: bad number in " + ctx);
  return v;
}

/// "5ms" -> 5e-3 etc.; a bare number is seconds.
double parse_time(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  CAGMRES_REQUIRE(end != s.c_str(), "faults spec: bad time: " + s);
  const std::string suffix(end);
  if (suffix.empty() || suffix == "s") return v;
  if (suffix == "ms") return v * 1e-3;
  if (suffix == "us") return v * 1e-6;
  throw Error("faults spec: bad time suffix: " + s);
}

FaultKind parse_kind(const std::string& s) {
  if (s == "kill") return FaultKind::kDeviceFail;
  if (s == "nan") return FaultKind::kKernelNan;
  if (s == "corrupt") return FaultKind::kTransferCorrupt;
  if (s == "stall") return FaultKind::kTransferStall;
  if (s == "nodekill") return FaultKind::kNodeFail;
  if (s == "linkcorrupt") return FaultKind::kLinkCorrupt;
  if (s == "linkstall") return FaultKind::kLinkStall;
  throw Error("faults spec: unknown fault kind: " + s +
              " (expected kill|nan|corrupt|stall|nodekill|linkcorrupt|"
              "linkstall)");
}

}  // namespace

void parse_fault_spec(const std::string& spec, FaultInjector& out) {
  FaultRates rates;
  for (const std::string& elem : split(spec, ';')) {
    if (elem.empty()) continue;
    if (elem.rfind("seed=", 0) == 0) {
      out.set_seed(static_cast<std::uint64_t>(
          parse_number(elem.substr(5), elem)));
      continue;
    }
    if (elem.rfind("stall_us=", 0) == 0) {
      out.set_stall_seconds(parse_number(elem.substr(9), elem) * 1e-6);
      continue;
    }
    if (elem.rfind("nodecorrupt:", 0) == 0) {
      // Node-scoped corrupt storm: "nodecorrupt:n<k>@p=<rate>".
      const std::string rest = elem.substr(12);
      const std::size_t at = rest.find('@');
      CAGMRES_REQUIRE(at != std::string::npos && rest.size() >= 2 &&
                          rest[0] == 'n' && rest.rfind("p=", at + 1) == at + 1,
                      "faults spec: want nodecorrupt:n<k>@p=<rate> in " +
                          elem);
      rates.corrupt_node =
          static_cast<int>(parse_number(rest.substr(1, at - 1), elem));
      rates.node_corrupt = parse_number(rest.substr(at + 3), elem);
      continue;
    }
    const std::size_t colon = elem.find(':');
    CAGMRES_REQUIRE(colon != std::string::npos,
                    "faults spec: expected kind:target in " + elem);
    const FaultKind kind = parse_kind(elem.substr(0, colon));
    const std::string rest = elem.substr(colon + 1);

    if (rest.rfind("p=", 0) == 0) {  // continuous rate
      const double p = parse_number(rest.substr(2), elem);
      switch (kind) {
        case FaultKind::kKernelNan:
          rates.kernel_nan = p;
          break;
        case FaultKind::kTransferCorrupt:
          rates.transfer_corrupt = p;
          break;
        case FaultKind::kTransferStall:
          rates.transfer_stall = p;
          break;
        case FaultKind::kLinkCorrupt:
          rates.link_corrupt = p;
          break;
        case FaultKind::kLinkStall:
          rates.link_stall = p;
          break;
        case FaultKind::kDeviceFail:
          throw Error("faults spec: kill has no rate form (use d<k>@...)");
        case FaultKind::kNodeFail:
          throw Error(
              "faults spec: nodekill has no rate form (use n<k>@...)");
      }
      continue;
    }
    CAGMRES_REQUIRE(
        kind != FaultKind::kLinkCorrupt && kind != FaultKind::kLinkStall,
        "faults spec: link faults are rate-only (use p=...): " + elem);

    // One-shot event: ("d" int | "n" int | "*") '@' ("t="time | "op="uint)
    const std::size_t at = rest.find('@');
    CAGMRES_REQUIRE(at != std::string::npos,
                    "faults spec: expected <dev>@<trigger> in " + elem);
    const std::string dev = rest.substr(0, at);
    const std::string trig = rest.substr(at + 1);
    FaultEvent e;
    e.kind = kind;
    if (dev == "*") {
      e.device = -1;
    } else if (kind == FaultKind::kNodeFail) {
      CAGMRES_REQUIRE(dev.size() >= 2 && dev[0] == 'n',
                      "faults spec: bad node (want n<k> or *): " + elem);
      e.device = static_cast<int>(parse_number(dev.substr(1), elem));
    } else {
      CAGMRES_REQUIRE(dev.size() >= 2 && dev[0] == 'd',
                      "faults spec: bad device (want d<k> or *): " + elem);
      e.device = static_cast<int>(parse_number(dev.substr(1), elem));
    }
    if (trig.rfind("t=", 0) == 0) {
      e.at_time = parse_time(trig.substr(2));
    } else if (trig.rfind("op=", 0) == 0) {
      e.at_op = static_cast<std::int64_t>(parse_number(trig.substr(3), elem));
    } else {
      throw Error("faults spec: bad trigger (want t=|op=): " + elem);
    }
    out.schedule(e);
  }
  out.set_rates(rates);
}

}  // namespace cagmres::sim
