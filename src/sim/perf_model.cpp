#include "sim/perf_model.hpp"

#include <algorithm>

namespace cagmres::sim {

double PerfModel::device_peak(Kernel k) const {
  const bool opt = (profile == KernelProfile::kOptimized);
  switch (k) {
    case Kernel::kDot:
      return dot_peak;
    case Kernel::kAxpy:
    case Kernel::kScal:
    case Kernel::kCopy:
      return dev_mem_bw;  // pure streaming; flops negligible
    case Kernel::kGemv:
      return opt ? gemv_peak_opt : gemv_peak_std;
    case Kernel::kGemm:
      return opt ? gemm_peak_opt : gemm_peak_std;
    case Kernel::kTrsm:
      return trsm_peak;
    case Kernel::kGeqrf:
      return geqrf_peak;
    case Kernel::kSpmvEll:
    case Kernel::kSpmvCsr:
    case Kernel::kPack:
      return spmv_bw;  // memory bound
    case Kernel::kSmall:
      return 1e9;
    case Kernel::kCodec:
      return codec_bw;  // bandwidth bound by construction
  }
  return 1e9;
}

double PerfModel::device_seconds(Kernel k, double flops, double bytes) const {
  // kCodec is launch-free: (de)compression is fused into the pack/DMA
  // pipeline, so compressing a tiny message can never lose to shipping it
  // raw through a fixed dispatch cost the fused path does not pay.
  if (k == Kernel::kCodec) return bytes / codec_bw;
  double t = kernel_launch_s;
  switch (k) {
    case Kernel::kDot:
      t += flops / dot_peak + bytes / dev_mem_bw;
      break;
    case Kernel::kAxpy:
    case Kernel::kScal:
    case Kernel::kCopy:
    case Kernel::kPack:
      t += bytes / dev_mem_bw;
      break;
    case Kernel::kSpmvEll:
      t += bytes / spmv_bw;
      break;
    case Kernel::kSpmvCsr:
      // CSR on the device suffers uncoalesced row traversal; the paper uses
      // ELLPACK on GPUs for exactly this reason.
      t += 1.8 * bytes / spmv_bw;
      break;
    case Kernel::kGemv:
    case Kernel::kGemm:
    case Kernel::kTrsm:
    case Kernel::kGeqrf:
      t += flops / device_peak(k) + bytes / dev_mem_bw;
      break;
    case Kernel::kSmall:
      t += flops / device_peak(k);
      break;
    case Kernel::kCodec:
      break;  // handled above
  }
  return t;
}

double PerfModel::host_seconds(Kernel k, double flops, double bytes) const {
  double t = cpu_small_op_s;
  switch (k) {
    case Kernel::kGemm:
    case Kernel::kTrsm:
      t += flops / cpu_gemm_peak + bytes / cpu_mem_bw;
      break;
    case Kernel::kSpmvCsr:
    case Kernel::kSpmvEll:
      t += bytes / cpu_spmv_bw;
      break;
    case Kernel::kGeqrf:
      t += flops / (cpu_blas12_peak * 2.0) + bytes / cpu_mem_bw;
      break;
    default:
      t += flops / cpu_blas12_peak + bytes / cpu_mem_bw;
      break;
  }
  return t;
}

double PerfModel::transfer_seconds(double bytes) const {
  return pcie_latency_s + bytes / pcie_bw;
}

double PerfModel::net_seconds(double bytes) const {
  return net_latency_s + bytes / net_bw;
}

double PerfModel::peer_seconds(double bytes) const {
  return peer_latency_s + bytes / peer_bw;
}

}  // namespace cagmres::sim
