#include "sim/host_pool.hpp"

namespace cagmres::sim {

namespace {
// Memory-ordering note. The pool relies on two Dekker-style store-then-load
// pairs, both seq_cst so the "flag set after publication" race resolves the
// same way on every architecture:
//   producer: enqueued_[s].fetch_add  ; sleeping_.load
//   worker:   sleeping_.fetch_add     ; enqueued_/completed_ rescan
// and symmetrically for completions vs host_waiters_. Either the publisher
// sees the flag and takes the (locked) notify slow path, or the flagged
// thread's rescan sees the publication and never sleeps. The mutex is only
// ever taken at those edges, so a burst of N enqueues onto a busy worker
// costs N atomic RMWs and zero lock round-trips.
constexpr auto kSc = std::memory_order_seq_cst;
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

HostPool::HostPool(int n_streams, int n_workers) : n_streams_(n_streams) {
  CAGMRES_REQUIRE(n_streams >= 0, "host pool: negative stream count");
  const auto ns = static_cast<std::size_t>(n_streams);
  rings_.resize(ns);
  for (auto& r : rings_) r = std::make_unique<Slot[]>(kRingSlots);
  enqueued_ = std::make_unique<std::atomic<std::int64_t>[]>(ns);
  completed_ = std::make_unique<std::atomic<std::int64_t>[]>(ns);
  broken_ = std::make_unique<std::atomic<bool>[]>(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    enqueued_[s].store(0, kRelaxed);
    completed_[s].store(0, kRelaxed);
    broken_[s].store(false, kRelaxed);
  }
  latched_.resize(ns);
  spin_ = std::thread::hardware_concurrency() > 1 ? 64 : 0;
  spawn(n_workers);
}

HostPool::~HostPool() {
  drain_all_nothrow();
  stop_and_join();
}

void HostPool::spawn(int n_workers) {
  CAGMRES_REQUIRE(n_workers >= 0, "host pool: negative worker count");
  n_workers_ = n_workers;  // set before the first thread reads it
  wstate_ = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) wstate_[w].store(kAwake, kRelaxed);
  threads_.reserve(static_cast<std::size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) {
    threads_.emplace_back(
        [this, w] { worker_main(static_cast<std::size_t>(w)); });
  }
}

void HostPool::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  n_workers_ = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;
  }
}

void HostPool::resize(int n_workers) {
  drain_all();
  if (n_workers == n_workers_) return;
  stop_and_join();
  spawn(n_workers);
}

void HostPool::bump_serial(std::size_t s) {
  enqueued_[s].store(enqueued_[s].load(kRelaxed) + 1, kRelaxed);
  completed_[s].store(completed_[s].load(kRelaxed) + 1, kRelaxed);
}

HostPool::Slot& HostPool::producer_slot(std::size_t s) {
  const std::int64_t h = enqueued_[s].load(kRelaxed);  // producer-owned
  // completed_ is the ring tail; a retired slot has already been destroyed
  // (destroy happens before complete_one), so once the wait returns the
  // slot is safe to reuse.
  if (h - completed_[s].load(kSc) >= static_cast<std::int64_t>(kRingSlots)) {
    wait_completed(s, h - static_cast<std::int64_t>(kRingSlots) + 1);
  }
  return rings_[s][static_cast<std::uint64_t>(h) & kRingMask];
}

void HostPool::publish(std::size_t s) {
  enqueued_[s].fetch_add(1, kSc);  // release: publishes the slot contents
  maybe_wake(s % static_cast<std::size_t>(n_workers_));
}

void HostPool::maybe_wake(std::size_t w) {
  int st = wstate_[w].load(kSc);
  if (st == kSleeping &&
      wstate_[w].compare_exchange_strong(st, kNotified, kSc)) {
    std::lock_guard<std::mutex> lk(mu_);
    cv_work_.notify_all();
  }
}

void HostPool::wake_sleeping_workers() {
  bool any = false;
  for (int w = 0; w < n_workers_; ++w) {
    int st = wstate_[w].load(kSc);
    if (st == kSleeping &&
        wstate_[w].compare_exchange_strong(st, kNotified, kSc)) {
      any = true;
    }
  }
  if (any) {
    std::lock_guard<std::mutex> lk(mu_);
    cv_work_.notify_all();
  }
}

void HostPool::complete_one(std::size_t s) {
  completed_[s].fetch_add(1, kSc);
  // Signal the host only on the completion that crosses its registered
  // target — a burst of completions costs one notify, not one each.
  if (host_wait_stream_.load(kSc) == static_cast<int>(s) &&
      completed_[s].load(kSc) >= host_wait_target_.load(kSc)) {
    std::lock_guard<std::mutex> lk(mu_);
    cv_done_.notify_all();
  }
  // A gate on another worker's stream may just have become passable.
  if (gates_pending_.load(kSc) > 0) wake_sleeping_workers();
}

bool HostPool::runnable_front(std::size_t s) const {
  const std::int64_t t = completed_[s].load(kSc);
  if (enqueued_[s].load(kSc) <= t) return false;
  const Slot& slot = rings_[s][static_cast<std::uint64_t>(t) & kRingMask];
  if (slot.invoke != nullptr) return true;
  GateData g;
  std::memcpy(&g, slot.buf, sizeof g);
  return completed_[static_cast<std::size_t>(g.on_stream)].load(kSc) >=
         g.ticket;
}

bool HostPool::any_runnable(std::size_t w) const {
  const auto ns = static_cast<std::size_t>(n_streams_);
  const auto nw = static_cast<std::size_t>(n_workers_);
  for (std::size_t s = w; s < ns; s += nw) {
    if (runnable_front(s)) return true;
  }
  return false;
}

bool HostPool::run_ready(std::size_t s) {
  bool did = false;
  for (;;) {
    const std::int64_t t = completed_[s].load(kRelaxed);  // consumer-owned
    if (enqueued_[s].load(kSc) <= t) break;
    Slot& slot = rings_[s][static_cast<std::uint64_t>(t) & kRingMask];
    if (slot.invoke == nullptr) {  // gate: pass or leave it at the front
      GateData g;
      std::memcpy(&g, slot.buf, sizeof g);
      if (completed_[static_cast<std::size_t>(g.on_stream)].load(kSc) <
          g.ticket) {
        break;
      }
      gates_pending_.fetch_sub(1, kSc);
      complete_one(s);
      did = true;
      continue;
    }
    std::exception_ptr err;
    if (!broken_[s].load(kRelaxed)) {
      try {
        slot.invoke(slot.buf);
      } catch (...) {
        err = std::current_exception();
      }
    }
    if (slot.destroy != nullptr) slot.destroy(slot.buf);
    if (err) latch_exception(s, err);
    complete_one(s);
    did = true;
  }
  return did;
}

void HostPool::worker_main(std::size_t w) {
  const auto ns = static_cast<std::size_t>(n_streams_);
  const auto nw = static_cast<std::size_t>(n_workers_);
  for (;;) {
    bool did = false;
    for (std::size_t s = w; s < ns; s += nw) did |= run_ready(s);
    if (did) continue;
    for (int i = 0; i < spin_ && !did; ++i) did = any_runnable(w);
    if (did) continue;
    // Advertise kSleeping *before* the rescan (Dekker pairing with the
    // publisher's publish-then-check): either the rescan sees the new work
    // or the publisher sees kSleeping and pays the notify. The predicate
    // re-advertises on every evaluation because a notify_all meant for a
    // sibling worker leaves this one in kNotified.
    wstate_[w].store(kSleeping, kSc);
    if (!any_runnable(w)) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        wstate_[w].store(kSleeping, kSc);
        return stop_ || any_runnable(w);
      });
      if (stop_ && !any_runnable(w)) {
        wstate_[w].store(kAwake, kSc);
        return;  // stop requested and nothing left to run
      }
    }
    wstate_[w].store(kAwake, kSc);
  }
}

void HostPool::latch_exception(std::size_t s, std::exception_ptr err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!latched_[s]) latched_[s] = err;
  broken_[s].store(true, kRelaxed);
}

void HostPool::rethrow_latch(std::size_t s) {
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(mu_);
    err = std::exchange(latched_[s], nullptr);
    broken_[s].store(false, kRelaxed);
  }
  if (err) std::rethrow_exception(err);
}

void HostPool::wait_completed(std::size_t s, std::int64_t target) {
  if (completed_[s].load(kSc) >= target) return;
  // Register what we are waiting for (target before stream, so a worker
  // that reads the stream id also sees the right target), then recheck:
  // either the recheck sees the final completion or the completing worker
  // sees the registration and notifies.
  host_wait_target_.store(target, kSc);
  host_wait_stream_.store(static_cast<int>(s), kSc);
  if (completed_[s].load(kSc) < target) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return completed_[s].load(kSc) >= target; });
  }
  host_wait_stream_.store(-1, kSc);
}

void HostPool::drain(int stream) {
  const auto s = check_stream(stream);
  if (n_workers_ == 0) return;
  wait_completed(s, enqueued_[s].load(kRelaxed));
  rethrow_latch(s);
}

void HostPool::drain_all() {
  if (n_workers_ == 0) return;
  const auto ns = static_cast<std::size_t>(n_streams_);
  for (std::size_t s = 0; s < ns; ++s) {
    wait_completed(s, enqueued_[s].load(kRelaxed));
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t s = 0; s < ns; ++s) {
      if (latched_[s] && !err) err = latched_[s];
      latched_[s] = nullptr;
      broken_[s].store(false, kRelaxed);
    }
  }
  if (err) std::rethrow_exception(err);
}

void HostPool::drain_all_nothrow() noexcept {
  if (n_workers_ == 0) return;
  const auto ns = static_cast<std::size_t>(n_streams_);
  for (std::size_t s = 0; s < ns; ++s) {
    wait_completed(s, enqueued_[s].load(kRelaxed));
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t s = 0; s < ns; ++s) {
    latched_[s] = nullptr;
    broken_[s].store(false, kRelaxed);
  }
}

std::int64_t HostPool::ticket(int stream) {
  const auto s = check_stream(stream);
  return enqueued_[s].load(kRelaxed);  // single posting thread
}

void HostPool::wait_ticket(int stream, std::int64_t ticket) {
  const auto s = check_stream(stream);
  if (n_workers_ == 0) return;  // serial mode: every ticket is complete
  wait_completed(s, ticket);
  rethrow_latch(s);
}

void HostPool::enqueue_wait(int stream, int on_stream, std::int64_t ticket) {
  const auto o = check_stream(on_stream);
  if (n_workers_ == 0 || stream == on_stream) return;  // FIFO covers it
  const auto s = check_stream(stream);
  Slot& slot = producer_slot(s);
  slot.invoke = nullptr;
  slot.destroy = nullptr;
  GateData g;
  g.ticket = ticket;
  g.on_stream = static_cast<std::int32_t>(o);
  std::memcpy(slot.buf, &g, sizeof g);
  gates_pending_.fetch_add(1, kSc);  // before the gate becomes visible
  publish(s);
}

}  // namespace cagmres::sim
