#include "sim/host_pool.hpp"

#include <utility>

#include "common/error.hpp"

namespace cagmres::sim {

HostPool::HostPool(int n_streams, int n_workers)
    : in_flight_(static_cast<std::size_t>(n_streams), 0),
      enqueued_(static_cast<std::size_t>(n_streams), 0),
      completed_(static_cast<std::size_t>(n_streams), 0),
      latched_(static_cast<std::size_t>(n_streams)) {
  CAGMRES_REQUIRE(n_streams >= 0, "host pool: negative stream count");
  spawn(n_workers);
}

HostPool::~HostPool() {
  drain_all_nothrow();
  stop_and_join();
}

void HostPool::spawn(int n_workers) {
  CAGMRES_REQUIRE(n_workers >= 0, "host pool: negative worker count");
  queues_.assign(static_cast<std::size_t>(n_workers), {});
  threads_.reserve(static_cast<std::size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) {
    threads_.emplace_back(
        [this, w] { worker_main(static_cast<std::size_t>(w)); });
  }
}

void HostPool::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  queues_.clear();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;
  }
}

void HostPool::resize(int n_workers) {
  drain_all();
  if (n_workers == static_cast<int>(threads_.size())) return;
  stop_and_join();
  spawn(n_workers);
}

void HostPool::enqueue(int stream, std::function<void()> fn) {
  const auto s = static_cast<std::size_t>(stream);
  CAGMRES_REQUIRE(s < in_flight_.size(), "host pool: bad stream");
  if (threads_.empty()) {
    // Serial mode: byte-identical to the pre-engine behaviour, exceptions
    // propagate straight to the caller. The counters still move so that a
    // ticket taken in serial mode is complete by construction.
    ++enqueued_[s];
    ++completed_[s];
    fn();
    return;
  }
  const auto w = s % threads_.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queues_[w].push_back(Task{stream, std::move(fn)});
    ++enqueued_[s];
    ++in_flight_[s];
    ++total_in_flight_;
  }
  cv_work_.notify_all();
}

void HostPool::worker_main(std::size_t w) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || !queues_[w].empty(); });
    if (queues_[w].empty()) return;  // stop_ set and nothing left to run
    Task task = std::move(queues_[w].front());
    queues_[w].pop_front();
    const auto s = static_cast<std::size_t>(task.stream);
    const bool skip = latched_[s] != nullptr;
    lk.unlock();
    std::exception_ptr err;
    if (!skip) {
      try {
        task.fn();
      } catch (...) {
        err = std::current_exception();
      }
    }
    lk.lock();
    if (err && !latched_[s]) latched_[s] = err;
    ++completed_[s];
    --in_flight_[s];
    --total_in_flight_;
    // Every completion is notified (not just stream/pool idleness): ticket
    // waiters block on a completed_ threshold that can be crossed mid-stream.
    cv_done_.notify_all();
  }
}

void HostPool::wait_stream_idle(std::unique_lock<std::mutex>& lk, int stream) {
  const auto s = static_cast<std::size_t>(stream);
  cv_done_.wait(lk, [&] { return in_flight_[s] == 0; });
}

void HostPool::wait_all_idle(std::unique_lock<std::mutex>& lk) {
  cv_done_.wait(lk, [&] { return total_in_flight_ == 0; });
}

void HostPool::drain(int stream) {
  if (threads_.empty()) return;
  const auto s = static_cast<std::size_t>(stream);
  CAGMRES_REQUIRE(s < in_flight_.size(), "host pool: bad stream");
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    wait_stream_idle(lk, stream);
    err = std::exchange(latched_[s], nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void HostPool::drain_all() {
  if (threads_.empty()) return;
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    wait_all_idle(lk);
    for (auto& e : latched_) {
      if (e && !err) err = e;
      e = nullptr;
    }
  }
  if (err) std::rethrow_exception(err);
}

std::int64_t HostPool::ticket(int stream) {
  const auto s = static_cast<std::size_t>(stream);
  CAGMRES_REQUIRE(s < in_flight_.size(), "host pool: bad stream");
  if (threads_.empty()) return enqueued_[s];
  std::lock_guard<std::mutex> lk(mu_);
  return enqueued_[s];
}

void HostPool::wait_ticket(int stream, std::int64_t ticket) {
  const auto s = static_cast<std::size_t>(stream);
  CAGMRES_REQUIRE(s < in_flight_.size(), "host pool: bad stream");
  if (threads_.empty()) return;  // serial mode: every ticket is complete
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return completed_[s] >= ticket; });
    err = std::exchange(latched_[s], nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void HostPool::enqueue_wait(int stream, int on_stream, std::int64_t ticket) {
  CAGMRES_REQUIRE(
      static_cast<std::size_t>(on_stream) < in_flight_.size(),
      "host pool: bad stream");
  if (threads_.empty() || stream == on_stream) return;  // FIFO covers it
  const auto o = static_cast<std::size_t>(on_stream);
  enqueue(stream, [this, o, ticket] {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return completed_[o] >= ticket; });
  });
}

void HostPool::drain_all_nothrow() noexcept {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lk(mu_);
  wait_all_idle(lk);
  for (auto& e : latched_) e = nullptr;
}

}  // namespace cagmres::sim
