// Attribution of elapsed simulated time to named solver phases.
//
// The paper's tables break the restart loop into Orth (BOrth + TSQR), SpMV/
// MPK, and "rest" time. The solvers label regions with Machine::set_phase /
// PhaseScope, and this accumulator records how much global elapsed time
// passed under each label.
#pragma once

#include <map>
#include <string>

namespace cagmres::sim {

/// Named accumulators of simulated seconds.
class PhaseTimers {
 public:
  /// Adds `seconds` to `phase`.
  void add(const std::string& phase, double seconds);

  /// Accumulated seconds for `phase` (0 when never seen).
  double get(const std::string& phase) const;

  /// Sum over all phases.
  double total() const;

  /// All phases and their accumulated time.
  const std::map<std::string, double>& all() const { return acc_; }

  void clear() { acc_.clear(); }

  /// Currently active label, maintained by Machine.
  const std::string& current() const { return current_; }
  void set_current(const std::string& phase) { current_ = phase; }

 private:
  std::map<std::string, double> acc_;
  std::string current_ = "other";
};

}  // namespace cagmres::sim
