// Per-buffer transfer codec layer (DESIGN.md §14): optional compression of
// the bytes a Machine transfer ships. The numerics actually flow through the
// codec round trip — consumers read the quantized values, not the originals —
// so the convergence penalty of a lossy wire format is real and the existing
// health monitors / TRUE-residual oracles guard correctness. Only the wire
// image is modeled (no bit-packing happens in host memory); wire_bytes()
// prices the message and roundtrip() applies the exact value error.
#pragma once

#include <string>

namespace cagmres::sim {

/// Wire formats a transfer payload can be shipped in.
enum class Codec {
  kNone,   ///< 8-byte doubles, bit-exact (the default)
  kFp32,   ///< IEEE float demotion: 2x, idempotent (re-encode is lossless)
  kFrsz2,  ///< FRSZ2-style fixed-rate blocks: shared per-block exponent +
           ///< fixed-width two's-complement mantissas (Grützmacher et al.)
};

/// Traffic classes a codec is armed on independently (Machine::set_codec).
enum class TrafficClass {
  kHalo,    ///< MPK halo exchange (pack/scatter messages)
  kReduce,  ///< reduction partials and coefficient broadcasts
  kCkpt,    ///< checkpoint shards and partner mirrors (fp32 only: the saved
            ///< iterate must re-ship bit-identically on restore, which only
            ///< an idempotent per-value demotion guarantees — FRSZ2 block
            ///< boundaries shift under repartitioning)
};
inline constexpr int kTrafficClasses = 3;

/// One traffic class's codec choice.
struct CodecSpec {
  Codec kind = Codec::kNone;
  int bits = 16;                     ///< FRSZ2 mantissa width (incl. sign)
  static constexpr int kBlock = 32;  ///< FRSZ2 values per block

  bool active() const { return kind != Codec::kNone; }

  /// Bytes `n_values` doubles occupy on the wire under this codec.
  /// FRSZ2: a 2-byte exponent header per block plus bits/8 per value.
  double wire_bytes(double n_values) const;

  /// In-place encode+decode round trip: x[0..n) afterwards holds exactly
  /// what a consumer of the compressed message would decode. A pure function
  /// of the input values — identical across sync modes, worker counts, and
  /// the hier_reduce knob. FRSZ2 blocks containing non-finite values pass
  /// through unchanged so injected NaN poison survives for the fault scrubs.
  void roundtrip(double* x, int n) const;

  std::string to_string() const;  ///< "none" | "fp32" | "frsz2:<bits>"
};

/// Parses one codec spec: "none" | "fp32" | "frsz2[:bits]". Throws Error on
/// unknown names or a bits width outside [4, 31].
CodecSpec parse_codec(const std::string& s);

/// The per-traffic-class codec table a Machine carries.
struct CodecConfig {
  CodecSpec halo;
  CodecSpec reduce;
  CodecSpec ckpt;

  const CodecSpec& at(TrafficClass c) const;
  CodecSpec& at(TrafficClass c);
  bool any_active() const {
    return halo.active() || reduce.active() || ckpt.active();
  }
  /// Active entries only, e.g. "halo=fp32,reduce=frsz2:16"; "none" if empty.
  std::string to_string() const;
};

/// Parses the CAGMRES_COMPRESS syntax: comma-separated `class=codec` entries,
/// e.g. "halo=fp32,reduce=frsz2:16,ckpt=fp32". Strict mode throws Error on
/// unknown classes/codecs and on the unrestorable ckpt=frsz2 combination;
/// lenient mode (the environment path, matching CAGMRES_TOPOLOGY's behavior)
/// silently drops invalid entries instead, so a stray value in the
/// environment can never blow up every Machine in the process.
CodecConfig parse_codec_config(const std::string& spec, bool lenient = false);

}  // namespace cagmres::sim
