#include "sim/phase_timers.hpp"

namespace cagmres::sim {

void PhaseTimers::add(const std::string& phase, double seconds) {
  if (seconds != 0.0) acc_[phase] += seconds;
}

double PhaseTimers::get(const std::string& phase) const {
  const auto it = acc_.find(phase);
  return (it == acc_.end()) ? 0.0 : it->second;
}

double PhaseTimers::total() const {
  double t = 0.0;
  for (const auto& [_, v] : acc_) t += v;
  return t;
}

}  // namespace cagmres::sim
