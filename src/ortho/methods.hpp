// Internal: per-method TSQR entry points, dispatched by tsqr().
#pragma once

#include "ortho/tsqr.hpp"

namespace cagmres::ortho::detail {

TsqrResult tsqr_mgs(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1);
TsqrResult tsqr_cgs(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1);
TsqrResult tsqr_cholqr(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1,
                       const TsqrOptions& opts, bool float_gram = false);
TsqrResult tsqr_svqr(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1,
                     const TsqrOptions& opts);
TsqrResult tsqr_caqr(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1);

}  // namespace cagmres::ortho::detail
