// Numerical quality metrics for TSQR factorizations (paper Fig. 13).
//
// These are measurement utilities for the experiments — they read the
// distributed data directly and charge nothing to the simulated clock.
#pragma once

#include "blas/matrix.hpp"
#include "sim/machine.hpp"

namespace cagmres::ortho {

/// The three error norms of the paper's Fig. 13.
struct OrthoErrors {
  double orthogonality = 0.0;   ///< ||I - Q^T Q||_F
  double factorization = 0.0;   ///< ||V - Q R||_F / ||V||_F
  double elementwise = 0.0;     ///< ||(V - Q R) ./ V||_F over stored entries
};

/// Measures the TSQR errors for columns [c0, c1): `q` holds the computed
/// orthonormal block, `v_orig` the pre-factorization block in the same
/// distributed layout, and `r` the k x k factor with V ~ Q R.
OrthoErrors measure_errors(const sim::DistMultiVec& q,
                           const sim::DistMultiVec& v_orig, int c0, int c1,
                           const blas::DMat& r);

/// ||I - Q^T Q||_F over columns [c0, c1) only.
double orthogonality_error(const sim::DistMultiVec& q, int c0, int c1);

/// 2-norm condition number of the block's columns, via the eigenvalues of
/// its Gram matrix: kappa(V) = sqrt(lambda_max / lambda_min). Tiny negative
/// eigenvalues from roundoff are clamped, so a near-singular (or poisoned)
/// block reports inf/huge kappa rather than NaN.
double condition_number(const sim::DistMultiVec& v, int c0, int c1);

/// In-solve variant for the health monitor (core/health.hpp): same kappa,
/// but the Gram accumulation, its reduction to the host, and the host
/// eigensolve are charged to the simulated clock — the monitor pays for the
/// device data it touches.
double condition_number_charged(sim::Machine& machine,
                                const sim::DistMultiVec& v, int c0, int c1);

}  // namespace cagmres::ortho
