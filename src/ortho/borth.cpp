#include "ortho/borth.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "ortho/reduce.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::ortho {

BorthMethod parse_borth(const std::string& name) {
  if (name == "mgs") return BorthMethod::kMgs;
  if (name == "cgs") return BorthMethod::kCgs;
  throw Error("unknown BOrth method: " + name + " (expected mgs|cgs)");
}

std::string to_string(BorthMethod m) {
  return m == BorthMethod::kMgs ? "mgs" : "cgs";
}

blas::DMat borth(sim::Machine& machine, BorthMethod method,
                 sim::DistMultiVec& v, int c0, int c1) {
  CAGMRES_REQUIRE(0 <= c0 && c0 < c1 && c1 <= v.cols(),
                  "borth: bad column range");
  const int ng = machine.n_devices();
  const int prev = c0;
  const int blk = c1 - c0;
  blas::DMat c(prev, blk);
  if (prev == 0) return c;

  // Sync structure — the dedicated BOrth event chain (DESIGN §10). Each
  // projection gemm/gemv is followed on its own stream by the d2h of its
  // partial Gram block; reduce_to_host_events records one event per device
  // right there, and the host waits on exactly those events (batching the
  // partial sums against the stragglers' transfers when that is charged-
  // cheaper). The subtraction update is then enqueued as a consumer-stream
  // closure behind the coefficient broadcast: the h2d and the update gemm
  // share the device's FIFO stream, so the update is gated on the broadcast
  // without any machine-wide barrier, and the next cycle's MPK — already
  // queued on other streams — keeps running through the whole hand-off.
  if (method == BorthMethod::kCgs) {
    // One projection C = Q_prev^T V_block and one update, a single
    // reduction of prev*blk coefficients.
    std::vector<std::vector<double>> partial(
        static_cast<std::size_t>(ng),
        std::vector<double>(static_cast<std::size_t>(prev) * blk, 0.0));
    for (int d = 0; d < ng; ++d) {
      sim::dev_gemm_tn(machine, d, v.local_rows(d), prev, blk, v.col(d, 0),
                       v.local(d).ld(), v.col(d, c0), v.local(d).ld(),
                       partial[static_cast<std::size_t>(d)].data(), prev);
    }
    detail::reduce_to_host_events(machine, partial, prev * blk, c.data());
    detail::broadcast_charge(machine, prev * blk, c.data());
    for (int d = 0; d < ng; ++d) {
      sim::dev_gemm_nn_sub(machine, d, v.local_rows(d), prev, blk,
                           v.col(d, 0), v.local(d).ld(), c.data(), c.ld(),
                           v.col(d, c0), v.local(d).ld());
    }
    return c;
  }

  // MGS flavor: one reduction per previous column (still blocked across the
  // s+1 new columns — "the s+1 vectors are orthogonalized against v_l at
  // once", paper §V-A). Each column's gemv -> reduce -> rank-1 update is
  // one link of the per-column event chain; successive links on a device
  // are ordered by its FIFO stream, so no cross-column barrier is needed.
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(blk), 0.0));
  std::vector<double> row(static_cast<std::size_t>(blk), 0.0);
  for (int l = 0; l < prev; ++l) {
    for (int d = 0; d < ng; ++d) {
      sim::dev_gemv_t(machine, d, v.local_rows(d), blk, v.col(d, c0),
                      v.local(d).ld(), v.col(d, l),
                      partial[static_cast<std::size_t>(d)].data());
    }
    detail::reduce_to_host_events(machine, partial, blk, row.data());
    detail::broadcast_charge(machine, blk, row.data());
    // Copied after the broadcast so the returned coefficients are the
    // values the devices actually applied (the broadcast may quantize row
    // in place; a no-op reorder with no codec armed).
    for (int j = 0; j < blk; ++j) c(l, j) = row[static_cast<std::size_t>(j)];
    for (int d = 0; d < ng; ++d) {
      sim::dev_ger_sub(machine, d, v.local_rows(d), blk, v.col(d, l),
                       row.data(), v.col(d, c0), v.local(d).ld());
    }
  }
  return c;
}

bool block_norms_finite(sim::Machine& machine, const sim::DistMultiVec& v,
                        int c0, int c1) {
  CAGMRES_REQUIRE(0 <= c0 && c0 <= c1 && c1 <= v.cols(),
                  "block_norms_finite: bad column range");
  const int ng = machine.n_devices();
  const int blk = c1 - c0;
  if (blk == 0) return true;
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(blk), 0.0));
  for (int d = 0; d < ng; ++d) {
    for (int j = 0; j < blk; ++j) {
      partial[static_cast<std::size_t>(d)][static_cast<std::size_t>(j)] =
          sim::dev_dot(machine, d, v.local_rows(d), v.col(d, c0 + j),
                       v.col(d, c0 + j));
    }
  }
  std::vector<double> norms(static_cast<std::size_t>(blk), 0.0);
  detail::reduce_to_host(machine, partial, blk, norms.data());
  for (const double n : norms) {
    if (!std::isfinite(n)) return false;
  }
  return true;
}

}  // namespace cagmres::ortho
