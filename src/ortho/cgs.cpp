// Classical Gram-Schmidt TSQR (paper §V-B, Fig. 9 top-right).
//
// Projects each column against all previous block columns at once via a
// tall-skinny GEMV. The column's norm is fused into the same reduction
// (Pythagoras: ||v - V r||^2 = ||v||^2 - ||r||^2 for orthonormal V), so each
// column costs exactly one reduce + one broadcast — the 2(s+1) messages of
// the paper's Fig. 10. When cancellation makes the fused norm untrustworthy
// (nearly dependent columns) the norm is recomputed with one extra
// reduction. The price of CGS remains its O(eps * kappa^k) orthogonality.
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::ortho::detail {

TsqrResult tsqr_cgs(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1) {
  const int ng = m.n_devices();
  const int k = c1 - c0;
  TsqrResult res;
  res.r = blas::DMat(k, k);

  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(k) + 1, 0.0));
  std::vector<double> coeff(static_cast<std::size_t>(k) + 1, 0.0);
  for (int col = c0; col < c1; ++col) {
    const int prev = col - c0;
    // Fused projection + norm: one kernel pair, one reduction.
    for (int d = 0; d < ng; ++d) {
      auto& p = partial[static_cast<std::size_t>(d)];
      if (prev > 0) {
        sim::dev_gemv_t(m, d, v.local_rows(d), prev, v.col(d, c0),
                        v.local(d).ld(), v.col(d, col), p.data());
      }
      p[static_cast<std::size_t>(prev)] =
          sim::dev_dot(m, d, v.local_rows(d), v.col(d, col), v.col(d, col));
    }
    reduce_to_host(m, partial, prev + 1, coeff.data());
    // Broadcast before reading the coefficients: it may quantize them in
    // place, and host and devices must agree on the values R records and
    // the update subtracts (charge order is unchanged — nothing between
    // the reduce and the broadcast charges the clock).
    broadcast_charge(m, prev + 1, coeff.data());
    const double norm2_before = coeff[static_cast<std::size_t>(prev)];
    double proj2 = 0.0;
    for (int i = 0; i < prev; ++i) {
      res.r(i, prev) = coeff[static_cast<std::size_t>(i)];
      proj2 += coeff[static_cast<std::size_t>(i)] * coeff[static_cast<std::size_t>(i)];
    }
    const double nrm2_est = norm2_before - proj2;

    if (prev > 0) {
      for (int d = 0; d < ng; ++d) {
        sim::dev_gemv_n_sub(m, d, v.local_rows(d), prev, v.col(d, c0),
                            v.local(d).ld(), coeff.data(), v.col(d, col));
      }
    }

    double nrm;
    if (nrm2_est > 1e-8 * norm2_before && nrm2_est > 0.0) {
      nrm = std::sqrt(nrm2_est);
    } else {
      // Heavy cancellation: recompute the norm of the projected column with
      // one extra reduction (rare; keeps the method robust near rank
      // deficiency).
      for (int d = 0; d < ng; ++d) {
        partial[static_cast<std::size_t>(d)][0] = sim::dev_dot(
            m, d, v.local_rows(d), v.col(d, col), v.col(d, col));
      }
      double nrm2 = 0.0;
      reduce_to_host(m, partial, 1, &nrm2);
      broadcast_charge(m, 1, &nrm2);
      nrm = std::sqrt(std::max(nrm2, 0.0));
    }
    CAGMRES_REQUIRE_CODE(nrm > 0.0, ErrorCode::kBreakdown,
                         "CGS: zero column encountered");
    res.r(prev, prev) = nrm;
    for (int d = 0; d < ng; ++d) {
      sim::dev_scal(m, d, v.local_rows(d), 1.0 / nrm, v.col(d, col));
    }
  }
  return res;
}

}  // namespace cagmres::ortho::detail
