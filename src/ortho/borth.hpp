// Block orthogonalization (BOrth) of a fresh basis block against the
// previously orthonormalized basis vectors (paper §V-A/B).
//
// CA-GMRES orthogonalizes each new s+1-column block in two stages: BOrth
// projects it against all previous Q columns, then TSQR orthonormalizes it
// internally. BOrth comes in an MGS flavor (one reduction per previous
// column, BLAS-2) and a CGS flavor (a single matrix-matrix projection,
// BLAS-3, one reduction total) — the paper's experiments use CGS.
#pragma once

#include <string>

#include "blas/matrix.hpp"
#include "sim/machine.hpp"

namespace cagmres::ortho {

/// BOrth projection flavor.
enum class BorthMethod { kMgs, kCgs };

/// Parses "mgs" or "cgs".
BorthMethod parse_borth(const std::string& name);
std::string to_string(BorthMethod m);

/// Orthogonalizes columns [c0, c1) of `v` against columns [0, c0) in place.
/// Returns the c0 x (c1-c0) coefficient block C = Q_prev^T * V_block, which
/// the caller stores into the R factor bookkeeping.
blas::DMat borth(sim::Machine& machine, BorthMethod method,
                 sim::DistMultiVec& v, int c0, int c1);

/// Charged health scrub for the recovery layer: computes the squared column
/// norms of columns [c0, c1) (one DOT per column per device plus one
/// reduction) and reports whether every norm is finite. A single NaN/Inf
/// anywhere in the panel makes its column norm non-finite, so the norms act
/// as a one-number-per-column checksum for data poisoned by an injected
/// kernel fault. Only called when the machine's fault injection is armed.
bool block_norms_finite(sim::Machine& machine, const sim::DistMultiVec& v,
                        int c0, int c1);

}  // namespace cagmres::ortho
