// Cholesky QR TSQR (paper §V-C, Fig. 9 bottom-left).
//
// One BLAS-3 Gram matrix per device, a single reduction, a tiny host
// Cholesky, and one triangular solve: the minimum-communication TSQR
// (2 messages total). The price is the squared condition number of the
// Gram matrix — for ill-conditioned CA-GMRES bases Cholesky can break
// down, which we detect and (optionally) absorb with a shifted retry that
// the caller should follow with reorthogonalization ("2x CholQR").
#include <cmath>
#include <string>
#include <vector>

#include "blas/lapack.hpp"
#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::ortho::detail {

TsqrResult tsqr_cholqr(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1,
                       const TsqrOptions& opts, bool float_gram) {
  const int ng = m.n_devices();
  const int k = c1 - c0;
  TsqrResult res;
  // On any breakdown throw below, drain before unwinding: host workers may
  // still run overlapped tasks referencing the caller's cycle-local buffers.
  sim::UnwindDrainGuard unwind_guard(m);

  // Local Gram matrices (batched DGEMM class under the Optimized profile;
  // SGEMM-rate single-precision accumulation for the mixed variant).
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(k) * k, 0.0));
  for (int d = 0; d < ng; ++d) {
    if (float_gram) {
      sim::dev_gram_float(m, d, v.local_rows(d), k, v.col(d, c0),
                          v.local(d).ld(),
                          partial[static_cast<std::size_t>(d)].data(), k);
    } else {
      sim::dev_gram(m, d, v.local_rows(d), k, v.col(d, c0), v.local(d).ld(),
                    partial[static_cast<std::size_t>(d)].data(), k);
    }
  }
  blas::DMat b(k, k);
  reduce_to_host(m, partial, k * k, b.data());

  // A poisoned basis block (injected kernel NaN) makes the Gram matrix
  // non-finite; no diagonal shift can fix that, so fail before the retry
  // loop. The resilient solvers treat this breakdown as tainted data.
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i <= j; ++i) {
      if (!std::isfinite(b(i, j))) {
        throw Error("CholQR: Gram matrix has non-finite entries",
                    ErrorCode::kBreakdown);
      }
    }
  }

  // Host Cholesky (O(k^3/3) — negligible next to the panels).
  blas::DMat r = b;
  int fail = blas::potrf_upper(r);
  m.charge_host(sim::Kernel::kGemm, static_cast<double>(k) * k * k / 3.0,
                8.0 * k * k);
  if (fail >= 0) {
    res.breakdown = true;
    res.breakdown_col = fail;  // lapack's first non-positive pivot column
    if (!opts.cholqr_shift_on_breakdown) {
      throw Error("CholQR breakdown at pivot column " + std::to_string(fail) +
                      " of " + std::to_string(k) +
                      " (Gram matrix numerically indefinite)",
                  ErrorCode::kBreakdown);
    }
    // Escalating diagonal shift relative to the Gram diagonal.
    double shift = opts.cholqr_shift;
    for (int attempt = 0; attempt < 8 && fail >= 0; ++attempt) {
      r = b;
      for (int j = 0; j < k; ++j) r(j, j) = b(j, j) * (1.0 + shift) + shift;
      fail = blas::potrf_upper(r);
      shift *= 100.0;
    }
    if (fail >= 0) {
      throw Error("CholQR: shifted Cholesky still failing at pivot column " +
                      std::to_string(fail),
                  ErrorCode::kBreakdown);
    }
  }

  // Broadcast R (coded wire image when a reduce codec is armed — the
  // returned R then holds the values the devices solved against), then the
  // panel-wide triangular solve on each device.
  broadcast_charge(m, k * k, r.data());
  for (int d = 0; d < ng; ++d) {
    sim::dev_trsm(m, d, v.local_rows(d), k, r.data(), r.ld(), v.col(d, c0),
                  v.local(d).ld());
  }
  res.r = std::move(r);
  return res;
}

}  // namespace cagmres::ortho::detail
