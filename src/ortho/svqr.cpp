// Singular Value QR TSQR (paper §V-D).
//
// Same communication pattern and BLAS-3 Gram matrix as CholQR, but the tiny
// host factorization goes through the SVD of the Gram matrix, which cannot
// break down on rank-deficient blocks: B = U S U^T, then R = qr(S^{1/2} U^T)
// satisfies R^T R = B. Following the paper's observation, the Gram matrix is
// first scaled to unit diagonal (configurable) to tame element-wise errors.
#include <cmath>
#include <vector>

#include "blas/lapack.hpp"
#include "blas/svd.hpp"
#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::ortho::detail {

TsqrResult tsqr_svqr(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1,
                     const TsqrOptions& opts) {
  const int ng = m.n_devices();
  const int k = c1 - c0;
  TsqrResult res;

  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(k) * k, 0.0));
  for (int d = 0; d < ng; ++d) {
    sim::dev_gram(m, d, v.local_rows(d), k, v.col(d, c0), v.local(d).ld(),
                  partial[static_cast<std::size_t>(d)].data(), k);
  }
  blas::DMat b(k, k);
  reduce_to_host(m, partial, k * k, b.data());

  // Optional unit-diagonal scaling B_hat = D^{-1} B D^{-1}.
  std::vector<double> dscale(static_cast<std::size_t>(k), 1.0);
  if (opts.svqr_scale_diagonal) {
    for (int j = 0; j < k; ++j) {
      const double dj = b(j, j);
      // A non-positive diagonal means the column collapsed numerically
      // (rank-deficient basis); keep scale 1 and let the sigma floor below
      // absorb it — surviving such blocks is SVQR's raison d'etre.
      dscale[static_cast<std::size_t>(j)] = (dj > 0.0) ? std::sqrt(dj) : 1.0;
    }
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < k; ++i) {
        b(i, j) /= dscale[static_cast<std::size_t>(i)] *
                   dscale[static_cast<std::size_t>(j)];
      }
    }
  }

  // Tiny host SVD (Jacobi) + QR; charged as host BLAS-1/2 work.
  const blas::EighResult eig = blas::jacobi_eigh(b);
  m.charge_host(sim::Kernel::kGeqrf,
                12.0 * static_cast<double>(k) * k * k * eig.sweeps,
                8.0 * k * k);
  const double smax = std::max(eig.w.front(), 0.0);
  CAGMRES_REQUIRE_CODE(smax > 0.0, ErrorCode::kBreakdown,
                       "SVQR: Gram matrix is zero");
  // M = S^{1/2} U^T, with singular values floored so R stays invertible on
  // rank-deficient input.
  blas::DMat mmat(k, k);
  for (int i = 0; i < k; ++i) {
    const double si =
        std::sqrt(std::max(eig.w[static_cast<std::size_t>(i)],
                           opts.svqr_sigma_floor * smax));
    for (int j = 0; j < k; ++j) mmat(i, j) = si * eig.u(j, i);
  }
  // Undo the diagonal scaling: B = D B_hat D => R_final = qr(M * D).
  if (opts.svqr_scale_diagonal) {
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < k; ++i) mmat(i, j) *= dscale[static_cast<std::size_t>(j)];
    }
  }
  blas::DMat q_small, r(k, k);
  blas::qr_explicit(mmat, q_small, r);
  m.charge_host(sim::Kernel::kGeqrf, 4.0 * static_cast<double>(k) * k * k,
                8.0 * k * k);

  broadcast_charge(m, k * k, r.data());
  for (int d = 0; d < ng; ++d) {
    sim::dev_trsm(m, d, v.local_rows(d), k, r.data(), r.ld(), v.col(d, c0),
                  v.local(d).ld());
  }
  res.r = std::move(r);
  return res;
}

}  // namespace cagmres::ortho::detail
