// Communication-Avoiding QR TSQR (paper §V-E, Fig. 9 bottom-right).
//
// Each device computes a local Householder QR of its row block; the small
// local R factors are gathered and a second QR on the host combines them
// (a one-level reduction tree — enough for <= a handful of devices). The
// devices then multiply their local Q by their slice of the reduction Q.
// Unconditionally stable (O(eps) orthogonality), but the local QR runs at
// BLAS-1/2 rates, a fraction of CholQR's BLAS-3 throughput.
#include <vector>

#include "blas/blas1.hpp"
#include "blas/lapack.hpp"
#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::ortho::detail {

TsqrResult tsqr_caqr(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1) {
  const int ng = m.n_devices();
  const int k = c1 - c0;
  TsqrResult res;

  // Local QR on each device.
  std::vector<blas::DMat> local_q(static_cast<std::size_t>(ng));
  std::vector<blas::DMat> local_r(static_cast<std::size_t>(ng));
  std::vector<sim::Event> shipped(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    const int rows = v.local_rows(d);
    CAGMRES_REQUIRE(rows >= k,
                    "CAQR: device row block shorter than the panel width "
                    "(need n / n_devices >= s+1)");
    blas::DMat block(rows, k);
    // Wall-clock-only drain: the host copy below reads the panel columns,
    // which kernels enqueued by the caller (e.g. BOrth's block update) may
    // still be writing on this device's stream.
    m.drain_device(d);
    for (int j = 0; j < k; ++j) {
      blas::copy(rows, v.col(d, c0 + j), block.col(j));
    }
    sim::dev_qr_explicit(m, d, block, local_q[static_cast<std::size_t>(d)],
                         local_r[static_cast<std::size_t>(d)]);
    m.d2h(d, 8.0 * k * k);  // ship the local R factor
    if (m.event_sync()) shipped[static_cast<std::size_t>(d)] = m.record_event(d);
  }
  if (m.event_sync()) {
    // The host only needs the ng local R messages, not idle devices: wait
    // on each ship event rather than the whole machine.
    for (int d = 0; d < ng; ++d) {
      m.host_wait_event(shipped[static_cast<std::size_t>(d)]);
    }
  } else {
    m.host_wait_all();
  }

  // Host combines the stacked R factors with one more QR.
  blas::DMat stacked(ng * k, k);
  for (int d = 0; d < ng; ++d) {
    const blas::DMat& r = local_r[static_cast<std::size_t>(d)];
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < k; ++i) stacked(d * k + i, j) = r(i, j);
    }
  }
  blas::DMat q_red, r_final;
  blas::qr_explicit(stacked, q_red, r_final);
  m.charge_host(sim::Kernel::kGeqrf,
                4.0 * static_cast<double>(ng) * k * k * k, 8.0 * ng * k * k);

  // Scatter the reduction-Q slices and form the final Q on each device.
  for (int d = 0; d < ng; ++d) {
    m.h2d(d, 8.0 * k * k);
    blas::DMat slice(k, k);
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < k; ++i) slice(i, j) = q_red(d * k + i, j);
    }
    sim::dev_gemm_nn(m, d, v.local_rows(d), k, k,
                     local_q[static_cast<std::size_t>(d)].data(),
                     local_q[static_cast<std::size_t>(d)].ld(), slice.data(),
                     slice.ld(), v.col(d, c0), v.local(d).ld());
  }
  // Wall-clock-only barrier: the enqueued dev_gemm_nn closures read the
  // loop-scoped local_q panels, which die when this function returns.
  m.sync();
  res.r = std::move(r_final);
  return res;
}

}  // namespace cagmres::ortho::detail
