// Internal helpers shared by the orthogonalization kernels: the
// reduce-to-CPU / broadcast-to-GPUs communication pattern of Fig. 9.
#pragma once

#include <vector>

#include "sim/machine.hpp"

namespace cagmres::ortho::detail {

/// Sums the per-device partial buffers (each `len` doubles) into `out`,
/// charging one asynchronous D2H message per device, the wait for those
/// messages, and the host-side additions. This is the "on CPU (comm)" step
/// of Fig. 9. Under SyncMode::kBarrier the wait is a host_wait_all; under
/// kEvent it is one host_wait_event per message, so the wall-clock block
/// covers exactly the closures that filled each partial and later work on
/// other streams keeps running.
void reduce_to_host(sim::Machine& m,
                    const std::vector<std::vector<double>>& partials, int len,
                    double* out);

/// Charges the broadcast of `len` doubles from the host to every device
/// (one H2D message each) and makes subsequent device kernels wait for it.
void broadcast_charge(sim::Machine& m, int len);

}  // namespace cagmres::ortho::detail
