// Internal helpers shared by the orthogonalization kernels: the
// reduce-to-CPU / broadcast-to-GPUs communication pattern of Fig. 9.
#pragma once

#include <vector>

#include "sim/machine.hpp"

namespace cagmres::ortho::detail {

/// Sums the per-device partial buffers (each `len` doubles) into `out`,
/// charging one asynchronous D2H message per device, the wait for those
/// messages, and the host-side additions. This is the "on CPU (comm)" step
/// of Fig. 9. Returns the per-device event chain: ev[d] marks device d's
/// partial landing on the host (recorded right after its d2h), so callers
/// that ship derived data back — CAQR's R panels, BOrth's block updates —
/// can gate consumer streams on exactly these events.
///
/// Under SyncMode::kBarrier the wait is a host_wait_all. Under kEvent the
/// host waits per event, and the *charged* schedule is chosen
/// deterministically from the (already known) event timestamps: either one
/// bulk add after the last arrival, or arrival-batched partial adds that
/// overlap summation with the stragglers' transfers. Both modes fold the
/// partials in the same order — ascending cumulative charged device time,
/// so the heaviest-loaded device (the likely straggler) is folded last and
/// the post-straggler add covers one partial instead of ng. That order is a
/// pure function of the charge sequence, never of mode-sensitive
/// timestamps, so results are bitwise identical across modes and worker
/// counts; the cheaper charged completion is picked per reduction, so event
/// mode never loses to the barrier here even when the per-charge fixed cost
/// outweighs the overlap win.
std::vector<sim::Event> reduce_to_host_events(
    sim::Machine& m, const std::vector<std::vector<double>>& partials,
    int len, double* out);

/// reduce_to_host_events for callers that do not gate anything downstream.
void reduce_to_host(sim::Machine& m,
                    const std::vector<std::vector<double>>& partials, int len,
                    double* out);

/// Charges the broadcast of `len` doubles from the host to every device
/// (one H2D message each) and makes subsequent device kernels wait for it.
void broadcast_charge(sim::Machine& m, int len);

}  // namespace cagmres::ortho::detail
