// Internal helpers shared by the orthogonalization kernels: the
// reduce-to-CPU / broadcast-to-GPUs communication pattern of Fig. 9.
#pragma once

#include <vector>

#include "sim/machine.hpp"

namespace cagmres::ortho::detail {

/// Sums the per-device partial buffers (each `len` doubles) into `out`,
/// charging one asynchronous D2H message per device, the wait for those
/// messages, and the host-side additions. This is the "on CPU (comm)" step
/// of Fig. 9. Returns the per-device event chain: ev[d] marks device d's
/// partial landing on the host (recorded right after its d2h), so callers
/// that ship derived data back — CAQR's R panels, BOrth's block updates —
/// can gate consumer streams on exactly these events.
///
/// Under SyncMode::kBarrier the wait is a host_wait_all. Under kEvent the
/// host waits per event, and the *charged* schedule is chosen
/// deterministically from the (already known) event timestamps: either one
/// bulk add after the last arrival, or arrival-batched partial adds that
/// overlap summation with the stragglers' transfers. Both modes fold the
/// partials in the same order — ascending cumulative charged device time,
/// so the heaviest-loaded device (the likely straggler) is folded last and
/// the post-straggler add covers one partial instead of ng. That order is a
/// pure function of the charge sequence, never of mode-sensitive
/// timestamps, so results are bitwise identical across modes and worker
/// counts; the cheaper charged completion is picked per reduction, so event
/// mode never loses to the barrier here even when the per-charge fixed cost
/// outweighs the overlap win.
///
/// On a multi-node topology the fold runs through a two-level tree grouped
/// by node (node subtotals in fold order, then subtotals straggler-last —
/// DESIGN.md §13). With Machine::hier_reduce() on, each multi-member node's
/// subtotal is computed on a node-leader device behind intra-node peer
/// transfers, and exactly one D2H per node crosses the inter-node link;
/// with it off every device ships its own partial and the host folds the
/// same tree. Both sides produce bitwise-identical results (the leader
/// stages are busy-normalized so even the fold permutation matches); the
/// single-node path is untouched. ev[d] then marks device d's partial
/// leaving the device (the node leader's event covers its shipped
/// subtotal).
///
/// With a reduce codec armed (Machine::codec(kReduce)), each partial is
/// folded as the consumer of its coded message would see it — quantized
/// exactly once, identically on every schedule and on both sides of the
/// hier knob — messages are wire-priced, and every producer is charged one
/// encode pass per reduction (DESIGN.md §14).
std::vector<sim::Event> reduce_to_host_events(
    sim::Machine& m, const std::vector<std::vector<double>>& partials,
    int len, double* out);

/// reduce_to_host_events for callers that do not gate anything downstream.
void reduce_to_host(sim::Machine& m,
                    const std::vector<std::vector<double>>& partials, int len,
                    double* out);

/// Charges the broadcast of `len` doubles from the host to every device
/// and makes subsequent device kernels wait for it. Flat: one H2D message
/// per device. With Machine::hier_reduce() on, one inter-node H2D per node
/// leader and intra-node relays behind its event (charge-only either way).
///
/// `payload` (optional) is the host buffer being broadcast. When a reduce
/// codec is armed and the payload is supplied, the broadcast ships the
/// coded image: the payload is quantized IN PLACE (host and devices then
/// agree on the decoded values), each message is wire-priced, and every
/// device is charged a decode pass. Without a payload the broadcast stays
/// at full logical size — bytes are only charged compressed when the
/// values really went through the codec round trip (DESIGN.md §14).
void broadcast_charge(sim::Machine& m, int len, double* payload = nullptr);

}  // namespace cagmres::ortho::detail
