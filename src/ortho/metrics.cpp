#include "ortho/metrics.hpp"

#include <cmath>
#include <limits>

#include "blas/blas1.hpp"
#include "blas/blas3.hpp"
#include "blas/svd.hpp"
#include "common/error.hpp"

namespace cagmres::ortho {

namespace {

/// Gram matrix of columns [c0, c1) accumulated across device blocks.
blas::DMat block_gram(const sim::DistMultiVec& v, int c0, int c1) {
  const int k = c1 - c0;
  blas::DMat g(k, k);
  blas::DMat local(k, k);
  for (int d = 0; d < v.n_parts(); ++d) {
    blas::syrk_tn(v.local_rows(d), k, v.col(d, c0), v.local(d).ld(),
                  local.data(), local.ld());
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < k; ++i) g(i, j) += local(i, j);
    }
  }
  return g;
}

}  // namespace

double orthogonality_error(const sim::DistMultiVec& q, int c0, int c1) {
  blas::DMat g = block_gram(q, c0, c1);
  double acc = 0.0;
  for (int j = 0; j < g.cols(); ++j) {
    for (int i = 0; i < g.rows(); ++i) {
      const double e = g(i, j) - (i == j ? 1.0 : 0.0);
      acc += e * e;
    }
  }
  return std::sqrt(acc);
}

double condition_number(const sim::DistMultiVec& v, int c0, int c1) {
  const blas::DMat g = block_gram(v, c0, c1);
  const blas::EighResult eig = blas::jacobi_eigh(g);
  // Roundoff pushes the small eigenvalues of a near-singular Gram matrix
  // slightly negative (and a poisoned block makes them NaN); scan and clamp
  // before the sqrt so callers always see inf/huge kappa, never NaN.
  double lmax = 0.0;
  double lmin = std::numeric_limits<double>::infinity();
  for (const double w : eig.w) {
    if (!std::isfinite(w)) return std::numeric_limits<double>::infinity();
    lmax = std::max(lmax, w);
    lmin = std::min(lmin, w);
  }
  lmin = std::max(lmin, 0.0);
  if (lmin == 0.0 || lmax <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::sqrt(lmax / lmin);
}

double condition_number_charged(sim::Machine& m, const sim::DistMultiVec& v,
                                int c0, int c1) {
  const int k = c1 - c0;
  // Priced like the CholQR Gram step it duplicates: one SYRK per device
  // over the panel, the k x k reduction to the host, and the host-side
  // Jacobi sweeps.
  std::vector<sim::Event> ev;
  for (int d = 0; d < v.n_parts(); ++d) {
    const double rows = static_cast<double>(v.local_rows(d));
    m.charge_device(d, sim::Kernel::kGemm, rows * k * k,
                    8.0 * (rows * k + static_cast<double>(k) * k));
    m.d2h(d, 8.0 * static_cast<double>(k) * k);
    if (m.event_sync()) ev.push_back(m.record_event(d));
  }
  // The waits come after every message is in flight (waiting inside the
  // posting loop would serialize the device kernels through the host).
  for (const sim::Event& e : ev) m.host_wait_event(e);
  if (!m.event_sync()) m.host_wait_all();
  m.charge_host(sim::Kernel::kSmall, 30.0 * static_cast<double>(k) * k * k,
                0.0);
  return condition_number(v, c0, c1);
}

OrthoErrors measure_errors(const sim::DistMultiVec& q,
                           const sim::DistMultiVec& v_orig, int c0, int c1,
                           const blas::DMat& r) {
  CAGMRES_REQUIRE(q.n_parts() == v_orig.n_parts(), "layout mismatch");
  const int k = c1 - c0;
  CAGMRES_REQUIRE(r.rows() == k && r.cols() == k, "R dimension mismatch");
  OrthoErrors e;
  e.orthogonality = orthogonality_error(q, c0, c1);

  double resid_sq = 0.0;
  double v_sq = 0.0;
  double elem_sq = 0.0;
  blas::DMat qr_block;
  for (int d = 0; d < q.n_parts(); ++d) {
    const int rows = q.local_rows(d);
    CAGMRES_REQUIRE(rows == v_orig.local_rows(d), "block size mismatch");
    // QR product for this device block.
    qr_block = blas::DMat(rows, k);
    for (int j = 0; j < k; ++j) {
      blas::copy(rows, q.col(d, c0 + j), qr_block.col(j));
    }
    blas::trmm_right_upper(rows, k, r.data(), r.ld(), qr_block.data(),
                           qr_block.ld());
    for (int j = 0; j < k; ++j) {
      const double* v0 = v_orig.col(d, c0 + j);
      const double* qr = qr_block.col(j);
      for (int i = 0; i < rows; ++i) {
        const double diff = v0[i] - qr[i];
        resid_sq += diff * diff;
        v_sq += v0[i] * v0[i];
        if (v0[i] != 0.0) {
          const double rel = diff / v0[i];
          elem_sq += rel * rel;
        }
      }
    }
  }
  e.factorization = (v_sq > 0.0) ? std::sqrt(resid_sq / v_sq) : 0.0;
  e.elementwise = std::sqrt(elem_sq);
  return e;
}

}  // namespace cagmres::ortho
