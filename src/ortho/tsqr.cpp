#include "ortho/tsqr.hpp"

#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"

namespace cagmres::ortho {

Method parse_method(const std::string& name) {
  if (name == "mgs") return Method::kMgs;
  if (name == "cgs") return Method::kCgs;
  if (name == "cholqr") return Method::kCholQr;
  if (name == "cholqr_mp") return Method::kCholQrMp;
  if (name == "svqr") return Method::kSvqr;
  if (name == "caqr") return Method::kCaqr;
  throw Error("unknown TSQR method: " + name +
              " (expected mgs|cgs|cholqr|svqr|caqr|cholqr_mp)");
}

std::string to_string(Method m) {
  switch (m) {
    case Method::kMgs:
      return "mgs";
    case Method::kCgs:
      return "cgs";
    case Method::kCholQr:
      return "cholqr";
    case Method::kSvqr:
      return "svqr";
    case Method::kCaqr:
      return "caqr";
    case Method::kCholQrMp:
      return "cholqr_mp";
  }
  return "?";
}

Method more_robust_method(Method m) {
  switch (m) {
    case Method::kCholQrMp:
      return Method::kCholQr;
    case Method::kCholQr:
      return Method::kSvqr;
    case Method::kSvqr:
      return Method::kCaqr;
    case Method::kMgs:
    case Method::kCgs:
    case Method::kCaqr:
      return Method::kCaqr;
  }
  return Method::kCaqr;
}

TsqrResult tsqr(sim::Machine& machine, Method method, sim::DistMultiVec& v,
                int c0, int c1, const TsqrOptions& opts) {
  CAGMRES_REQUIRE(0 <= c0 && c0 < c1 && c1 <= v.cols(),
                  "tsqr: bad column range");
  switch (method) {
    case Method::kMgs:
      return detail::tsqr_mgs(machine, v, c0, c1);
    case Method::kCgs:
      return detail::tsqr_cgs(machine, v, c0, c1);
    case Method::kCholQr:
      return detail::tsqr_cholqr(machine, v, c0, c1, opts);
    case Method::kCholQrMp:
      return detail::tsqr_cholqr(machine, v, c0, c1, opts,
                                 /*float_gram=*/true);
    case Method::kSvqr:
      return detail::tsqr_svqr(machine, v, c0, c1, opts);
    case Method::kCaqr:
      return detail::tsqr_caqr(machine, v, c0, c1);
  }
  throw Error("unreachable");
}

namespace detail {

void reduce_to_host(sim::Machine& m,
                    const std::vector<std::vector<double>>& partials, int len,
                    double* out) {
  const int ng = m.n_devices();
  CAGMRES_ASSERT(static_cast<int>(partials.size()) == ng,
                 "partials per device");
  if (m.event_sync()) {
    // Per-buffer sync: one event per partial, recorded right after its d2h.
    // The charged host time lands on the same max as the barrier (every
    // device sends), but the wall-clock wait covers exactly the closures
    // that produced each partial — later work on other streams keeps
    // running, and retired devices' frozen timelines are never consulted.
    std::vector<sim::Event> ev(static_cast<std::size_t>(ng));
    for (int d = 0; d < ng; ++d) {
      m.d2h(d, 8.0 * len);
      ev[static_cast<std::size_t>(d)] = m.record_event(d);
    }
    for (int d = 0; d < ng; ++d) {
      m.host_wait_event(ev[static_cast<std::size_t>(d)]);
    }
  } else {
    for (int d = 0; d < ng; ++d) m.d2h(d, 8.0 * len);
    m.host_wait_all();
  }
  for (int i = 0; i < len; ++i) out[i] = 0.0;
  for (int d = 0; d < ng; ++d) {
    const auto& p = partials[static_cast<std::size_t>(d)];
    CAGMRES_ASSERT(static_cast<int>(p.size()) >= len, "partial too short");
    for (int i = 0; i < len; ++i) out[i] += p[static_cast<std::size_t>(i)];
  }
  m.charge_host(sim::Kernel::kAxpy, static_cast<double>(len) * ng,
                16.0 * len * ng);
}

void broadcast_charge(sim::Machine& m, int len) {
  for (int d = 0; d < m.n_devices(); ++d) m.h2d(d, 8.0 * len);
}

}  // namespace detail

}  // namespace cagmres::ortho
