#include "ortho/tsqr.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"

namespace cagmres::ortho {

Method parse_method(const std::string& name) {
  if (name == "mgs") return Method::kMgs;
  if (name == "cgs") return Method::kCgs;
  if (name == "cholqr") return Method::kCholQr;
  if (name == "cholqr_mp") return Method::kCholQrMp;
  if (name == "svqr") return Method::kSvqr;
  if (name == "caqr") return Method::kCaqr;
  throw Error("unknown TSQR method: " + name +
              " (expected mgs|cgs|cholqr|svqr|caqr|cholqr_mp)");
}

std::string to_string(Method m) {
  switch (m) {
    case Method::kMgs:
      return "mgs";
    case Method::kCgs:
      return "cgs";
    case Method::kCholQr:
      return "cholqr";
    case Method::kSvqr:
      return "svqr";
    case Method::kCaqr:
      return "caqr";
    case Method::kCholQrMp:
      return "cholqr_mp";
  }
  return "?";
}

Method more_robust_method(Method m) {
  switch (m) {
    case Method::kCholQrMp:
      return Method::kCholQr;
    case Method::kCholQr:
      return Method::kSvqr;
    case Method::kSvqr:
      return Method::kCaqr;
    case Method::kMgs:
    case Method::kCgs:
    case Method::kCaqr:
      return Method::kCaqr;
  }
  return Method::kCaqr;
}

TsqrResult tsqr(sim::Machine& machine, Method method, sim::DistMultiVec& v,
                int c0, int c1, const TsqrOptions& opts) {
  CAGMRES_REQUIRE(0 <= c0 && c0 < c1 && c1 <= v.cols(),
                  "tsqr: bad column range");
  switch (method) {
    case Method::kMgs:
      return detail::tsqr_mgs(machine, v, c0, c1);
    case Method::kCgs:
      return detail::tsqr_cgs(machine, v, c0, c1);
    case Method::kCholQr:
      return detail::tsqr_cholqr(machine, v, c0, c1, opts);
    case Method::kCholQrMp:
      return detail::tsqr_cholqr(machine, v, c0, c1, opts,
                                 /*float_gram=*/true);
    case Method::kSvqr:
      return detail::tsqr_svqr(machine, v, c0, c1, opts);
    case Method::kCaqr:
      return detail::tsqr_caqr(machine, v, c0, c1);
  }
  throw Error("unreachable");
}

namespace detail {

namespace {

/// Accumulates partials perm[i0, i1) into out. Every schedule folds the
/// same permutation front to back — the bitwise contract: batching the
/// sequential adds differently never changes a value, only the order does.
/// With a reduce codec armed, each partial is folded as the consumer of its
/// coded message would see it (roundtrip on a scratch copy) — quantized
/// exactly once per reduction, identically on every schedule.
void add_partials(const std::vector<std::vector<double>>& partials,
                  const std::vector<int>& perm, int i0, int i1, int len,
                  double* out, const sim::CodecSpec& cd) {
  std::vector<double> q;
  for (int i = i0; i < i1; ++i) {
    const auto& p = partials[static_cast<std::size_t>(perm[
        static_cast<std::size_t>(i)])];
    CAGMRES_ASSERT(static_cast<int>(p.size()) >= len, "partial too short");
    if (cd.active()) {
      q.assign(p.begin(), p.begin() + len);
      cd.roundtrip(q.data(), len);
      for (int j = 0; j < len; ++j) out[j] += q[static_cast<std::size_t>(j)];
    } else {
      for (int j = 0; j < len; ++j) out[j] += p[static_cast<std::size_t>(j)];
    }
  }
}

/// Fold order for a reduction: devices by ascending cumulative charged
/// seconds (ties by id). The heaviest-loaded device is the likely straggler
/// of the gemm + d2h chains feeding the reduce; putting it last lets the
/// event schedule sum everyone else while its transfer is still in flight.
/// device_busy is a pure function of the charge sequence — identical across
/// sync modes and worker counts — so the summation order (and with it every
/// bit of the result) never depends on mode-sensitive timestamps.
std::vector<int> fold_order(const sim::Machine& m) {
  std::vector<int> perm(static_cast<std::size_t>(m.n_devices()));
  for (std::size_t d = 0; d < perm.size(); ++d) perm[d] = static_cast<int>(d);
  std::stable_sort(perm.begin(), perm.end(), [&m](int a, int b) {
    return m.device_busy(a) < m.device_busy(b);
  });
  return perm;
}

// ---- multi-node grouped fold (DESIGN.md §13) ----------------------------
//
// At nodes > 1 BOTH sides of the Machine::hier_reduce() knob fold through
// the same two-level summation tree: within each node, partials are summed
// in global fold order into a zero-initialized node subtotal; the subtotals
// are then folded into `out` (also zero-initialized) with nodes ordered by
// their last member's position in the fold order (straggler-last across
// nodes). The knob only moves WHERE a subtotal is computed — on the host
// behind ng flat messages, or on a node-leader device behind one inter-node
// message per node — so the bits agree whichever side ran.

/// Node buckets of the fold order: members of the k-th node to finish, each
/// bucket in fold order (so .back() is that node's straggler, the leader).
std::vector<std::vector<int>> node_buckets(const sim::Machine& m,
                                           const std::vector<int>& perm) {
  const auto nn = static_cast<std::size_t>(m.topology().n_nodes);
  std::vector<std::vector<int>> buckets(nn);
  std::vector<int> last(nn, -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto k = static_cast<std::size_t>(m.node_of(perm[i]));
    buckets[k].push_back(perm[i]);
    last[k] = static_cast<int>(i);
  }
  std::vector<std::size_t> ids;
  for (std::size_t k = 0; k < nn; ++k) {
    if (!buckets[k].empty()) ids.push_back(k);
  }
  std::stable_sort(ids.begin(), ids.end(),
                   [&last](std::size_t a, std::size_t b) {
                     return last[a] < last[b];
                   });
  std::vector<std::vector<int>> out;
  out.reserve(ids.size());
  for (const std::size_t k : ids) out.push_back(std::move(buckets[k]));
  return out;
}

/// One node's subtotal: zero-init + sequential member adds. The host (flat
/// knob) and the leader-device closure (hier knob) both run exactly this —
/// including the per-member codec round trip, so the subtotal's bits agree
/// whichever side computed it. The shipped subtotal itself is modeled as a
/// lossless re-encode (wire-priced, not re-quantized): re-quantizing it
/// would make hier fold different values than flat (DESIGN.md §14).
void node_subtotal(const std::vector<std::vector<double>>& partials,
                   const std::vector<int>& members, int len, double* s,
                   const sim::CodecSpec& cd) {
  for (int j = 0; j < len; ++j) s[j] = 0.0;
  std::vector<double> q;
  for (const int d : members) {
    const auto& p = partials[static_cast<std::size_t>(d)];
    CAGMRES_ASSERT(static_cast<int>(p.size()) >= len, "partial too short");
    if (cd.active()) {
      q.assign(p.begin(), p.begin() + len);
      cd.roundtrip(q.data(), len);
      for (int j = 0; j < len; ++j) s[j] += q[static_cast<std::size_t>(j)];
    } else {
      for (int j = 0; j < len; ++j) s[j] += p[static_cast<std::size_t>(j)];
    }
  }
}

/// Flat-equivalent charge of shipping `bytes` between device d and the
/// coordinating host — the busy-normalization target for peer-routed
/// hierarchical stages (see Machine::adjust_device_busy).
double flat_ship_seconds(const sim::Machine& m, int d, double bytes) {
  double t = m.perf().transfer_seconds(bytes);
  if (m.is_remote(d)) t += m.perf().net_seconds(bytes);
  return t;
}

/// The nodes > 1 reduction, both knob settings. Hier stage 1 (per
/// multi-member node): members peer their partials to the node's host
/// memory, the leader stream-waits them, sums them with a charged device
/// add, and ships the one subtotal inter-node. Stage 2: the host folds
/// node contributions in node order, with the bulk-vs-incremental charged
/// schedule chosen exactly like the flat path, per node group.
std::vector<sim::Event> reduce_grouped(
    sim::Machine& m, const std::vector<std::vector<double>>& partials,
    int len, double* out) {
  const bool hier = m.hier_reduce();
  const sim::PerfModel& pm = m.perf();
  std::vector<sim::Event> ev(static_cast<std::size_t>(m.n_devices()));
  // The fold order is sampled at entry, before this reduction's own
  // transfer charges land; the hierarchical stages are busy-normalized to
  // the flat ones, so the permutation — and with it the summation tree —
  // is identical whichever side of the knob runs.
  const std::vector<int> perm = fold_order(m);
  const std::vector<std::vector<int>> nodes = node_buckets(m, perm);
  const std::size_t nn = nodes.size();
  const sim::CodecSpec& cd = m.codec(sim::TrafficClass::kReduce);
  const double bytes = 8.0 * len;          // logical payload
  const double wire = cd.wire_bytes(len);  // what actually ships

  std::vector<std::vector<double>> sums(nn);
  std::vector<std::vector<sim::Event>> waits(nn);
  std::vector<double> ready(nn, 0.0);  // charged time node k is foldable
  std::vector<double> work(nn, 0.0);   // host fold flops for node k

  for (std::size_t k = 0; k < nn; ++k) {
    const std::vector<int>& mem = nodes[k];
    sums[k].assign(static_cast<std::size_t>(len), 0.0);
    if (hier && mem.size() > 1) {
      const int lead = mem.back();  // the within-node straggler
      for (std::size_t i = 0; i + 1 < mem.size(); ++i) {
        const int d = mem[i];
        m.charge_codec(d, cd, len);
        m.d2h_node(d, wire, bytes);
        ev[static_cast<std::size_t>(d)] = m.record_event(d);
        m.adjust_device_busy(
            d, flat_ship_seconds(m, d, wire) - pm.peer_seconds(wire));
      }
      for (std::size_t i = 0; i + 1 < mem.size(); ++i) {
        m.stream_wait_event(lead, ev[static_cast<std::size_t>(mem[i])]);
      }
      const double flops = static_cast<double>(len) * mem.size();
      m.charge_device(lead, sim::Kernel::kAxpy, flops, 16.0 * flops);
      m.adjust_device_busy(lead, -pm.device_seconds(sim::Kernel::kAxpy, flops,
                                                    16.0 * flops));
      const bool poison = m.consume_kernel_fault(lead);
      double* s = sums[k].data();
      const std::vector<int>* mp = &nodes[k];
      m.run_on_device(lead, [&partials, mp, len, s, poison, cd]() {
        node_subtotal(partials, *mp, len, s, cd);
        if (poison) {
          for (int j = 0; j < len; ++j) {
            s[j] = std::numeric_limits<double>::quiet_NaN();
          }
        }
      });
      // One encode per device per reduction on either side of the knob:
      // members encoded their partials above, the leader encodes the one
      // subtotal it ships — same kCodec busy as the flat branch, so the
      // fold-order permutation stays knob-invariant without an adjustment.
      m.charge_codec(lead, cd, len);
      m.d2h(lead, wire, bytes);
      ev[static_cast<std::size_t>(lead)] = m.record_event(lead);
      waits[k].push_back(ev[static_cast<std::size_t>(lead)]);
      ready[k] = ev[static_cast<std::size_t>(lead)].t;
      work[k] = static_cast<double>(len);  // out += subtotal
    } else {
      // Flat knob, or a single-member node: every member ships its own
      // partial and the host computes the subtotal at fold time.
      for (const int d : mem) {
        m.charge_codec(d, cd, len);
        m.d2h(d, wire, bytes);
        ev[static_cast<std::size_t>(d)] = m.record_event(d);
        waits[k].push_back(ev[static_cast<std::size_t>(d)]);
        ready[k] = std::max(ready[k], ev[static_cast<std::size_t>(d)].t);
      }
      work[k] = static_cast<double>(len) * (mem.size() + 1);
    }
  }

  for (int j = 0; j < len; ++j) out[j] = 0.0;
  const auto fold_node = [&](std::size_t k) {
    const std::vector<int>& mem = nodes[k];
    if (!(hier && mem.size() > 1)) {
      node_subtotal(partials, mem, len, sums[k].data(), cd);
    }
    const double* s = sums[k].data();
    for (int j = 0; j < len; ++j) out[j] += s[j];
  };

  if (!m.event_sync()) {
    m.host_wait_all();
    double tot = 0.0;
    for (std::size_t k = 0; k < nn; ++k) {
      fold_node(k);
      tot += work[k];
    }
    m.charge_host(sim::Kernel::kAxpy, tot, 16.0 * tot);
    return ev;
  }

  // Event mode: same bulk-vs-incremental charged-schedule choice as the
  // flat path, over node groups instead of devices (see below).
  double h_bulk = m.clock().host_time();
  double tot = 0.0;
  for (std::size_t k = 0; k < nn; ++k) {
    h_bulk = std::max(h_bulk, ready[k]);
    tot += work[k];
  }
  h_bulk += pm.host_seconds(sim::Kernel::kAxpy, tot, 16.0 * tot);
  double h_inc = m.clock().host_time();
  for (std::size_t i = 0; i < nn;) {
    h_inc = std::max(h_inc, ready[i]);
    std::size_t j = i + 1;
    double w = work[i];
    while (j < nn && ready[j] <= h_inc) {
      w += work[j];
      ++j;
    }
    h_inc += pm.host_seconds(sim::Kernel::kAxpy, w, 16.0 * w);
    i = j;
  }

  if (h_inc < h_bulk) {
    for (std::size_t i = 0; i < nn;) {
      for (const sim::Event& e : waits[i]) m.host_wait_event(e);
      std::size_t j = i + 1;
      double w = work[i];
      while (j < nn && ready[j] <= m.clock().host_time()) {
        for (const sim::Event& e : waits[j]) m.host_wait_event(e);
        w += work[j];
        ++j;
      }
      for (std::size_t k = i; k < j; ++k) fold_node(k);
      m.charge_host(sim::Kernel::kAxpy, w, 16.0 * w);
      i = j;
    }
  } else {
    for (std::size_t k = 0; k < nn; ++k) {
      for (const sim::Event& e : waits[k]) m.host_wait_event(e);
    }
    for (std::size_t k = 0; k < nn; ++k) fold_node(k);
    m.charge_host(sim::Kernel::kAxpy, tot, 16.0 * tot);
  }
  return ev;
}

}  // namespace

std::vector<sim::Event> reduce_to_host_events(
    sim::Machine& m, const std::vector<std::vector<double>>& partials,
    int len, double* out) {
  const int ng = m.n_devices();
  CAGMRES_ASSERT(static_cast<int>(partials.size()) == ng,
                 "partials per device");
  if (m.topology().n_nodes > 1) return reduce_grouped(m, partials, len, out);
  const sim::CodecSpec& cd = m.codec(sim::TrafficClass::kReduce);
  const double wire = cd.wire_bytes(len);
  std::vector<sim::Event> ev(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    m.charge_codec(d, cd, len);
    m.d2h(d, wire, 8.0 * len);
    // The producing chain's event: the gemm/dot that filled the partial and
    // the d2h that shipped it, nothing else on the machine.
    ev[static_cast<std::size_t>(d)] = m.record_event(d);
  }
  for (int i = 0; i < len; ++i) out[i] = 0.0;
  const std::vector<int> perm = fold_order(m);
  const auto ev_at = [&](int i) -> const sim::Event& {
    return ev[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  };

  if (!m.event_sync()) {
    m.host_wait_all();
    add_partials(partials, perm, 0, ng, len, out, cd);
    m.charge_host(sim::Kernel::kAxpy, static_cast<double>(len) * ng,
                  16.0 * len * ng);
    return ev;
  }

  // Event mode. Every event timestamp is already known, so the charged
  // completion of both candidate schedules is computed exactly up front and
  // the cheaper one is executed — a deterministic choice (it depends only
  // on charged times, which are worker-invariant):
  //   bulk:        wait all events, one add of ng*len terms;
  //   incremental: walk the fold order, batching every partial that has
  //                already landed into one add, so summing the early
  //                arrivals overlaps (in charged time) with the straggling
  //                transfers. With the straggler last in the fold order the
  //                final post-straggler add covers one partial, not ng.
  // The incremental schedule wins when the device timelines are skewed by
  // more than the per-charge fixed cost; with near-lockstep devices the
  // bulk add's single fixed cost wins. Both walk the same fold order.
  const sim::PerfModel& pm = m.perf();
  const double h0 = m.clock().host_time();
  double h_bulk = h0;
  for (int d = 0; d < ng; ++d) {
    h_bulk = std::max(h_bulk, ev[static_cast<std::size_t>(d)].t);
  }
  h_bulk += pm.host_seconds(sim::Kernel::kAxpy, static_cast<double>(len) * ng,
                            16.0 * len * ng);
  double h_inc = h0;
  for (int i = 0; i < ng;) {
    h_inc = std::max(h_inc, ev_at(i).t);
    int j = i + 1;
    while (j < ng && ev_at(j).t <= h_inc) ++j;
    h_inc += pm.host_seconds(sim::Kernel::kAxpy,
                             static_cast<double>(len) * (j - i),
                             16.0 * len * (j - i));
    i = j;
  }

  if (h_inc < h_bulk) {
    for (int i = 0; i < ng;) {
      m.host_wait_event(ev_at(i));
      int j = i + 1;
      // Fold in every partial that already landed (their waits are free).
      while (j < ng && ev_at(j).t <= m.clock().host_time()) {
        m.host_wait_event(ev_at(j));
        ++j;
      }
      add_partials(partials, perm, i, j, len, out, cd);
      m.charge_host(sim::Kernel::kAxpy, static_cast<double>(len) * (j - i),
                    16.0 * len * (j - i));
      i = j;
    }
  } else {
    for (int d = 0; d < ng; ++d) {
      m.host_wait_event(ev[static_cast<std::size_t>(d)]);
    }
    add_partials(partials, perm, 0, ng, len, out, cd);
    m.charge_host(sim::Kernel::kAxpy, static_cast<double>(len) * ng,
                  16.0 * len * ng);
  }
  return ev;
}

void reduce_to_host(sim::Machine& m,
                    const std::vector<std::vector<double>>& partials, int len,
                    double* out) {
  (void)reduce_to_host_events(m, partials, len, out);
}

void broadcast_charge(sim::Machine& m, int len, double* payload) {
  // With a reduce codec armed AND the caller handing over the host-side
  // payload, the broadcast ships the coded image: the payload is quantized
  // in place (every device decodes the same values the host keeps working
  // with) and each h2d is wire-priced plus a per-device decode charge.
  // A null payload broadcasts at full logical size — bytes are only charged
  // compressed when the values actually went through the round trip.
  const sim::CodecSpec& cd = m.codec(sim::TrafficClass::kReduce);
  const bool coded = cd.active() && payload != nullptr;
  if (coded) cd.roundtrip(payload, len);
  const double bytes = 8.0 * len;
  const double wire = coded ? cd.wire_bytes(len) : bytes;
  if (!m.hier_reduce()) {
    for (int d = 0; d < m.n_devices(); ++d) {
      m.h2d(d, wire, bytes);
      if (coded) m.charge_codec(d, cd, len);
    }
    return;
  }
  // Hierarchical fan-out (charge-only, like the flat path — the data is in
  // host memory either way): one inter-node h2d to a node leader, then the
  // other members pull over the intra-node link behind the leader's event.
  // The leader is the node's least-busy device, so the relayed copies start
  // as early as possible. Peer-routed members are busy-normalized to the
  // flat h2d they replace, keeping the reduce fold order knob-invariant.
  const sim::PerfModel& pm = m.perf();
  const std::vector<int> perm = fold_order(m);
  for (const std::vector<int>& mem : node_buckets(m, perm)) {
    const int lead = mem.front();
    m.h2d(lead, wire, bytes);
    if (coded) m.charge_codec(lead, cd, len);
    const sim::Event e = m.record_event(lead);
    for (std::size_t i = 1; i < mem.size(); ++i) {
      const int d = mem[i];
      m.stream_wait_event(d, e);
      m.h2d_node(d, wire, bytes);
      if (coded) m.charge_codec(d, cd, len);
      m.adjust_device_busy(
          d, flat_ship_seconds(m, d, wire) - pm.peer_seconds(wire));
    }
  }
}

}  // namespace detail

}  // namespace cagmres::ortho
