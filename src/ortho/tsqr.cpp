#include "ortho/tsqr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"

namespace cagmres::ortho {

Method parse_method(const std::string& name) {
  if (name == "mgs") return Method::kMgs;
  if (name == "cgs") return Method::kCgs;
  if (name == "cholqr") return Method::kCholQr;
  if (name == "cholqr_mp") return Method::kCholQrMp;
  if (name == "svqr") return Method::kSvqr;
  if (name == "caqr") return Method::kCaqr;
  throw Error("unknown TSQR method: " + name +
              " (expected mgs|cgs|cholqr|svqr|caqr|cholqr_mp)");
}

std::string to_string(Method m) {
  switch (m) {
    case Method::kMgs:
      return "mgs";
    case Method::kCgs:
      return "cgs";
    case Method::kCholQr:
      return "cholqr";
    case Method::kSvqr:
      return "svqr";
    case Method::kCaqr:
      return "caqr";
    case Method::kCholQrMp:
      return "cholqr_mp";
  }
  return "?";
}

Method more_robust_method(Method m) {
  switch (m) {
    case Method::kCholQrMp:
      return Method::kCholQr;
    case Method::kCholQr:
      return Method::kSvqr;
    case Method::kSvqr:
      return Method::kCaqr;
    case Method::kMgs:
    case Method::kCgs:
    case Method::kCaqr:
      return Method::kCaqr;
  }
  return Method::kCaqr;
}

TsqrResult tsqr(sim::Machine& machine, Method method, sim::DistMultiVec& v,
                int c0, int c1, const TsqrOptions& opts) {
  CAGMRES_REQUIRE(0 <= c0 && c0 < c1 && c1 <= v.cols(),
                  "tsqr: bad column range");
  switch (method) {
    case Method::kMgs:
      return detail::tsqr_mgs(machine, v, c0, c1);
    case Method::kCgs:
      return detail::tsqr_cgs(machine, v, c0, c1);
    case Method::kCholQr:
      return detail::tsqr_cholqr(machine, v, c0, c1, opts);
    case Method::kCholQrMp:
      return detail::tsqr_cholqr(machine, v, c0, c1, opts,
                                 /*float_gram=*/true);
    case Method::kSvqr:
      return detail::tsqr_svqr(machine, v, c0, c1, opts);
    case Method::kCaqr:
      return detail::tsqr_caqr(machine, v, c0, c1);
  }
  throw Error("unreachable");
}

namespace detail {

namespace {

/// Accumulates partials perm[i0, i1) into out. Every schedule folds the
/// same permutation front to back — the bitwise contract: batching the
/// sequential adds differently never changes a value, only the order does.
void add_partials(const std::vector<std::vector<double>>& partials,
                  const std::vector<int>& perm, int i0, int i1, int len,
                  double* out) {
  for (int i = i0; i < i1; ++i) {
    const auto& p = partials[static_cast<std::size_t>(perm[
        static_cast<std::size_t>(i)])];
    CAGMRES_ASSERT(static_cast<int>(p.size()) >= len, "partial too short");
    for (int j = 0; j < len; ++j) out[j] += p[static_cast<std::size_t>(j)];
  }
}

/// Fold order for a reduction: devices by ascending cumulative charged
/// seconds (ties by id). The heaviest-loaded device is the likely straggler
/// of the gemm + d2h chains feeding the reduce; putting it last lets the
/// event schedule sum everyone else while its transfer is still in flight.
/// device_busy is a pure function of the charge sequence — identical across
/// sync modes and worker counts — so the summation order (and with it every
/// bit of the result) never depends on mode-sensitive timestamps.
std::vector<int> fold_order(const sim::Machine& m) {
  std::vector<int> perm(static_cast<std::size_t>(m.n_devices()));
  for (std::size_t d = 0; d < perm.size(); ++d) perm[d] = static_cast<int>(d);
  std::stable_sort(perm.begin(), perm.end(), [&m](int a, int b) {
    return m.device_busy(a) < m.device_busy(b);
  });
  return perm;
}

}  // namespace

std::vector<sim::Event> reduce_to_host_events(
    sim::Machine& m, const std::vector<std::vector<double>>& partials,
    int len, double* out) {
  const int ng = m.n_devices();
  CAGMRES_ASSERT(static_cast<int>(partials.size()) == ng,
                 "partials per device");
  std::vector<sim::Event> ev(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    m.d2h(d, 8.0 * len);
    // The producing chain's event: the gemm/dot that filled the partial and
    // the d2h that shipped it, nothing else on the machine.
    ev[static_cast<std::size_t>(d)] = m.record_event(d);
  }
  for (int i = 0; i < len; ++i) out[i] = 0.0;
  const std::vector<int> perm = fold_order(m);
  const auto ev_at = [&](int i) -> const sim::Event& {
    return ev[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  };

  if (!m.event_sync()) {
    m.host_wait_all();
    add_partials(partials, perm, 0, ng, len, out);
    m.charge_host(sim::Kernel::kAxpy, static_cast<double>(len) * ng,
                  16.0 * len * ng);
    return ev;
  }

  // Event mode. Every event timestamp is already known, so the charged
  // completion of both candidate schedules is computed exactly up front and
  // the cheaper one is executed — a deterministic choice (it depends only
  // on charged times, which are worker-invariant):
  //   bulk:        wait all events, one add of ng*len terms;
  //   incremental: walk the fold order, batching every partial that has
  //                already landed into one add, so summing the early
  //                arrivals overlaps (in charged time) with the straggling
  //                transfers. With the straggler last in the fold order the
  //                final post-straggler add covers one partial, not ng.
  // The incremental schedule wins when the device timelines are skewed by
  // more than the per-charge fixed cost; with near-lockstep devices the
  // bulk add's single fixed cost wins. Both walk the same fold order.
  const sim::PerfModel& pm = m.perf();
  const double h0 = m.clock().host_time();
  double h_bulk = h0;
  for (int d = 0; d < ng; ++d) {
    h_bulk = std::max(h_bulk, ev[static_cast<std::size_t>(d)].t);
  }
  h_bulk += pm.host_seconds(sim::Kernel::kAxpy, static_cast<double>(len) * ng,
                            16.0 * len * ng);
  double h_inc = h0;
  for (int i = 0; i < ng;) {
    h_inc = std::max(h_inc, ev_at(i).t);
    int j = i + 1;
    while (j < ng && ev_at(j).t <= h_inc) ++j;
    h_inc += pm.host_seconds(sim::Kernel::kAxpy,
                             static_cast<double>(len) * (j - i),
                             16.0 * len * (j - i));
    i = j;
  }

  if (h_inc < h_bulk) {
    for (int i = 0; i < ng;) {
      m.host_wait_event(ev_at(i));
      int j = i + 1;
      // Fold in every partial that already landed (their waits are free).
      while (j < ng && ev_at(j).t <= m.clock().host_time()) {
        m.host_wait_event(ev_at(j));
        ++j;
      }
      add_partials(partials, perm, i, j, len, out);
      m.charge_host(sim::Kernel::kAxpy, static_cast<double>(len) * (j - i),
                    16.0 * len * (j - i));
      i = j;
    }
  } else {
    for (int d = 0; d < ng; ++d) {
      m.host_wait_event(ev[static_cast<std::size_t>(d)]);
    }
    add_partials(partials, perm, 0, ng, len, out);
    m.charge_host(sim::Kernel::kAxpy, static_cast<double>(len) * ng,
                  16.0 * len * ng);
  }
  return ev;
}

void reduce_to_host(sim::Machine& m,
                    const std::vector<std::vector<double>>& partials, int len,
                    double* out) {
  (void)reduce_to_host_events(m, partials, len, out);
}

void broadcast_charge(sim::Machine& m, int len) {
  for (int d = 0; d < m.n_devices(); ++d) m.h2d(d, 8.0 * len);
}

}  // namespace detail

}  // namespace cagmres::ortho
