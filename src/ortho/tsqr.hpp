// Tall-skinny QR orthogonalization strategies (paper §V, Figs. 9-10).
//
// All five procedures factor an n x k block of distributed basis vectors
// V = Q R in place (V's columns become Q's), returning the k x k upper
// triangular R. They differ in numerical robustness and in communication:
//
//   method  | orthogonality error | dominant kernel | GPU-CPU messages
//   --------+---------------------+-----------------+------------------
//   MGS     | O(eps * kappa)      | BLAS-1 DOT      | (k)(k+1) round trips
//   CGS     | O(eps * kappa^k)    | BLAS-2 GEMV     | 2k
//   CholQR  | O(eps * kappa^2)    | BLAS-3 GEMM     | 2
//   SVQR    | O(eps * kappa^2)    | BLAS-3 GEMM     | 2
//   CAQR    | O(eps)              | BLAS-1/2 GEQR2  | 2
#pragma once

#include <string>

#include "blas/matrix.hpp"
#include "sim/machine.hpp"

namespace cagmres::ortho {

/// The five TSQR procedures of paper §V-A..E, plus the mixed-precision
/// CholQR variant the paper's conclusion points to (its reference [23]):
/// the Gram matrix is accumulated in single precision — twice the batched
/// DGEMM throughput and half the traffic — while the Cholesky factor and
/// the triangular solve stay double. Orthogonality degrades from
/// O(eps_d kappa^2) to O(eps_s kappa^2), so it pairs with
/// reorthogonalization or the adaptive-s scheme.
enum class Method { kMgs, kCgs, kCholQr, kSvqr, kCaqr, kCholQrMp };

/// Parses "mgs", "cgs", "cholqr", "svqr", "caqr", "cholqr_mp".
Method parse_method(const std::string& name);
std::string to_string(Method m);

/// The escalation ladder's mid-solve downshift (core/health.hpp): the next
/// more numerically robust TSQR procedure. Chains
/// cholqr_mp -> cholqr -> svqr -> caqr and mgs/cgs -> caqr; caqr (already
/// unconditionally stable) maps to itself, which callers use as the
/// "nothing left to switch to" fixpoint.
Method more_robust_method(Method m);

/// Knobs for the numerically delicate paths.
struct TsqrOptions {
  /// SVQR: scale the Gram matrix to unit diagonal before the SVD (paper
  /// §V-D observes this resolves SVQR's element-wise error issue).
  bool svqr_scale_diagonal = true;
  /// SVQR: relative floor on singular values of the Gram matrix; smaller
  /// singular values are clamped so the triangular solve stays bounded.
  double svqr_sigma_floor = 1e-14;
  /// CholQR: when Cholesky breaks down, retry once on B + shift*diag(B)
  /// instead of failing (the result then needs reorthogonalization, which
  /// the caller decides — `breakdown` is reported either way).
  bool cholqr_shift_on_breakdown = true;
  double cholqr_shift = 1e-12;
};

/// Outcome of one TSQR call.
struct TsqrResult {
  blas::DMat r;            ///< k x k upper triangular factor
  bool breakdown = false;  ///< CholQR pivot failure (R from shifted retry)
  /// 0-based column of the first non-positive Cholesky pivot when
  /// `breakdown` is set (lapack reports it; -1 = no breakdown). Column j
  /// breaking down means the basis lost independence j+1 vectors into the
  /// block — the adaptive-s controller can use this to size the retreat.
  int breakdown_col = -1;
};

/// Orthonormalizes columns [c0, c1) of the distributed multivector V in
/// place with the given method, charging all kernel and communication costs
/// to `machine`. Returns R such that V_in(:, c0:c1) = V_out(:, c0:c1) * R.
TsqrResult tsqr(sim::Machine& machine, Method method, sim::DistMultiVec& v,
                int c0, int c1, const TsqrOptions& opts = {});

}  // namespace cagmres::ortho
