// Modified Gram-Schmidt TSQR (paper §V-A, Fig. 9 top-left).
//
// Orthogonalizes one column at a time against each previous column with an
// individual global reduction per dot product: numerically the most stable
// Gram-Schmidt variant, but it pays (k)(k+1) GPU-CPU round trips of latency.
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "ortho/methods.hpp"
#include "ortho/reduce.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::ortho::detail {

TsqrResult tsqr_mgs(sim::Machine& m, sim::DistMultiVec& v, int c0, int c1) {
  const int ng = m.n_devices();
  const int k = c1 - c0;
  TsqrResult res;
  res.r = blas::DMat(k, k);

  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng), std::vector<double>(1, 0.0));
  for (int col = c0; col < c1; ++col) {
    for (int prev = c0; prev < col; ++prev) {
      // Local dot products, one reduction per (prev, col) pair.
      for (int d = 0; d < ng; ++d) {
        partial[static_cast<std::size_t>(d)][0] = sim::dev_dot(
            m, d, v.local_rows(d), v.col(d, prev), v.col(d, col));
      }
      double r = 0.0;
      reduce_to_host(m, partial, 1, &r);
      // Broadcast may quantize r in place; record it afterwards so R holds
      // the coefficient the devices actually subtract.
      broadcast_charge(m, 1, &r);
      res.r(prev - c0, col - c0) = r;
      for (int d = 0; d < ng; ++d) {
        sim::dev_axpy(m, d, v.local_rows(d), -r, v.col(d, prev),
                      v.col(d, col));
      }
    }
    // Normalize.
    for (int d = 0; d < ng; ++d) {
      partial[static_cast<std::size_t>(d)][0] =
          sim::dev_dot(m, d, v.local_rows(d), v.col(d, col), v.col(d, col));
    }
    double nrm_sq = 0.0;
    reduce_to_host(m, partial, 1, &nrm_sq);
    double nrm = std::sqrt(std::max(nrm_sq, 0.0));
    CAGMRES_REQUIRE_CODE(nrm > 0.0, ErrorCode::kBreakdown,
                         "MGS: zero column encountered");
    // The wire payload is the norm itself; devices scale by the same
    // (possibly quantized) value the host records in R.
    broadcast_charge(m, 1, &nrm);
    res.r(col - c0, col - c0) = nrm;
    for (int d = 0; d < ng; ++d) {
      sim::dev_scal(m, d, v.local_rows(d), 1.0 / nrm, v.col(d, col));
    }
  }
  return res;
}

}  // namespace cagmres::ortho::detail
