#include "core/checkpoint.hpp"

#include <algorithm>

#include "core/gmres.hpp"  // detail::checkpoint_x / detail::restore_x

namespace cagmres::core {

namespace {

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// Checkpointer

Checkpointer::Checkpointer(sim::Machine& m, const SolverOptions& opts,
                           bool resilient)
    : m_(m),
      resilient_(resilient),
      hier_(resilient && opts.partner_checkpoint &&
            m.topology().n_nodes > 1) {
  const auto nn = static_cast<std::size_t>(m.topology().n_nodes);
  mirror_.resize(nn);
  mirror_ok_.assign(nn, 0);
  shard_bytes_.assign(nn, 0.0);
}

void Checkpointer::init_zero(int n) {
  x_.assign(static_cast<std::size_t>(n), 0.0);
  x_zero_ = true;
}

void Checkpointer::save(sim::DistMultiVec& xwork, bool x_is_zero) {
  if (!hier_) {
    x_ = detail::checkpoint_x(m_, xwork);
    x_zero_ = x_is_zero;
    return;
  }
  // Rung 1: every device parks its shard in its own node's host memory over
  // the intra-node link. Same data motion as the flat path, cheaper rate.
  // Stage into locals and commit only after every transfer lands: d2h_node
  // can throw mid-loop under injected transfer faults, and a half-built
  // checkpoint must never clobber the last good one.
  m_.sync();  // wall-clock only: the host reads xwork below
  const sim::CodecSpec& cd = m_.codec(sim::TrafficClass::kCkpt);
  std::vector<double> staged;
  staged.reserve(static_cast<std::size_t>(xwork.total_rows()));
  // shard_bytes_ stays LOGICAL (payload doubles); message sites convert to
  // wire bytes so a later repartition never mis-sizes a shard.
  std::vector<double> staged_bytes(shard_bytes_.size(), 0.0);
  for (int d = 0; d < m_.n_devices(); ++d) {
    const int rows = xwork.local_rows(d);
    m_.charge_codec(d, cd, rows);
    m_.d2h_node(d, cd.wire_bytes(rows), 8.0 * rows);
    staged_bytes[static_cast<std::size_t>(m_.node_of(d))] += 8.0 * rows;
    const double* p = xwork.col(d, 0);
    staged.insert(staged.end(), p, p + rows);
  }
  m_.host_wait_all();
  x_ = std::move(staged);
  // Keep the decoded wire image (idempotent demotion only — see
  // Machine::set_codec), so restores re-ship these exact bits.
  if (cd.active()) cd.roundtrip(x_.data(), static_cast<int>(x_.size()));
  shard_bytes_ = std::move(staged_bytes);
  x_zero_ = x_is_zero;
  arm_mirrors();
}

void Checkpointer::arm_mirrors() {
  // Rung 2: each populated node's shard goes out to its partner node over
  // the inter-node link as NIC DMA from node-host memory — no device stream
  // is occupied, so the cost is a readiness Event a restore may have to
  // wait on, plus the network byte/message counters.
  const int nn = m_.topology().n_nodes;
  std::fill(mirror_ok_.begin(), mirror_ok_.end(), 0);
  for (int k = 0; k < nn; ++k) {
    sim::Event latest;
    bool populated = false;
    for (int d = 0; d < m_.n_devices(); ++d) {
      if (m_.node_of(d) != k) continue;
      const sim::Event e = m_.record_event(d);  // pure: no charge, no fault
      if (!populated || e.t > latest.t) latest = e;
      populated = true;
    }
    if (!populated) continue;
    const double bytes = shard_bytes_[static_cast<std::size_t>(k)];
    // One coalesced message per node, queued on the shared NIC behind any
    // in-flight cross-node traffic (Machine::nic_dma owns the counters).
    // The node-host shard already holds the coded image, so the mirror
    // ships wire bytes with no extra encode charge.
    const sim::CodecSpec& cd = m_.codec(sim::TrafficClass::kCkpt);
    latest.t = m_.nic_dma(cd.wire_bytes(bytes / 8.0), latest.t, bytes);
    mirror_[static_cast<std::size_t>(k)] = latest;
    mirror_ok_[static_cast<std::size_t>(k)] = 1;
  }
}

void Checkpointer::scatter(sim::DistMultiVec& xwork) const {
  std::size_t at = 0;
  for (int d = 0; d < m_.n_devices(); ++d) {
    const int rows = xwork.local_rows(d);
    double* p = xwork.col(d, 0);
    for (int i = 0; i < rows; ++i) {
      p[static_cast<std::size_t>(i)] = x_[at++];
    }
  }
}

void Checkpointer::rollback(sim::DistMultiVec& xwork) {
  if (!hier_) {
    detail::restore_x(m_, xwork, x_);
    return;
  }
  // NaN scrub / tainted cycle: the partition is unchanged, so every shard
  // is already in its own node's host memory — node-local refill only.
  sim::UnwindDrainGuard unwind_guard(m_);  // caller may have work in flight
  CAGMRES_REQUIRE(static_cast<int>(x_.size()) == xwork.total_rows(),
                  "checkpoint size mismatch");
  m_.sync();  // wall-clock only: the host writes xwork below
  const sim::CodecSpec& cd = m_.codec(sim::TrafficClass::kCkpt);
  for (int d = 0; d < m_.n_devices(); ++d) {
    const int rows = xwork.local_rows(d);
    m_.h2d_node(d, cd.wire_bytes(rows), 8.0 * rows);
    m_.charge_codec(d, cd, rows);
  }
  scatter(xwork);
  m_.host_wait_all();
}

void Checkpointer::restore_after_repartition(
    sim::DistMultiVec& xwork, const std::vector<int>& lost_nodes) {
  if (!hier_) {
    detail::restore_x(m_, xwork, x_);
    return;
  }
  sim::UnwindDrainGuard unwind_guard(m_);  // caller may have work in flight
  CAGMRES_REQUIRE(static_cast<int>(x_.size()) == xwork.total_rows(),
                  "checkpoint size mismatch");
  const int nn = m_.topology().n_nodes;
  // Rung 4 check: every lost node needs a live partner holding a valid
  // mirror. A correlated double-node loss that took a partner out falls all
  // the way back to the flat host-checkpoint restore.
  for (int k : lost_nodes) {
    const int partner = (k + 1) % nn;
    bool partner_alive = false;
    for (int d = 0; d < m_.n_devices() && !partner_alive; ++d) {
      partner_alive = m_.node_of(d) == partner;
    }
    if (!partner_alive || !mirror_ok_[static_cast<std::size_t>(k)]) {
      detail::restore_x(m_, xwork, x_);
      return;
    }
  }
  // Rung 3: fetch each lost shard from its partner's mirror copy. The host
  // first waits out the asynchronous mirror (free when the NIC DMA already
  // completed), then the partner ships the shard up — one inter-node
  // message instead of re-sending the whole iterate from the host.
  const sim::CodecSpec& cd = m_.codec(sim::TrafficClass::kCkpt);
  for (int k : lost_nodes) {
    const int partner = (k + 1) % nn;
    m_.host_wait_event(mirror_[static_cast<std::size_t>(k)]);
    int lead = -1;
    for (int d = 0; d < m_.n_devices(); ++d) {
      if (m_.node_of(d) == partner) {
        lead = d;
        break;
      }
    }
    // The mirror holds the coded image; the partner re-ships wire bytes
    // without a fresh encode.
    const double lbytes = shard_bytes_[static_cast<std::size_t>(k)];
    m_.d2h(lead, cd.wire_bytes(lbytes / 8.0), lbytes);
    m_.host_wait(lead);
    ++partner_restores_;
  }
  // Survivors refill node-locally (their shards never left the node).
  m_.sync();  // wall-clock only: the host writes xwork below
  for (int d = 0; d < m_.n_devices(); ++d) {
    const int rows = xwork.local_rows(d);
    m_.h2d_node(d, cd.wire_bytes(rows), 8.0 * rows);
    m_.charge_codec(d, cd, rows);
  }
  scatter(xwork);
  m_.host_wait_all();
}

// ---------------------------------------------------------------------------
// RecoveryDomains

RecoveryDomains::RecoveryDomains(sim::Machine& m, const SolverOptions& opts,
                                 bool resilient)
    : m_(m), opts_(opts), resilient_(resilient) {
  const auto nn =
      static_cast<std::size_t>(std::max(1, m.topology().n_nodes));
  rounds_.assign(nn, 0);
  backoff_.assign(nn, m.recovery_budget().backoff_s);
}

void RecoveryDomains::on_restart_completed() {
  std::fill(rounds_.begin(), rounds_.end(), 0);
  std::fill(backoff_.begin(), backoff_.end(),
            m_.recovery_budget().backoff_s);
}

bool RecoveryDomains::handle(const Error& e, RecoveryStats& rs) {
  // Only injected hardware faults are recoverable; anything else
  // propagates. (Called inside the solver's catch block, so a bare throw
  // rethrows the active exception.)
  if (!resilient_ || (e.code() != ErrorCode::kDeviceFault &&
                      e.code() != ErrorCode::kRetriesExhausted) ||
      e.device() < 0) {
    throw;
  }
  // Survey the damage: a correlated node kill marks the whole domain dead
  // in the injector but throws from one victim's poll. kRetriesExhausted
  // does not mark the injector, so the thrower is unioned in explicitly.
  // On a flat machine this set is always exactly {e.device()}.
  std::vector<int> dead = m_.dead_logical_devices();
  if (!contains(dead, e.device())) {
    dead.push_back(e.device());
    std::sort(dead.begin(), dead.end());
  }
  // Fully-dead domains, surveyed in LOGICAL space so nodes already emptied
  // by earlier retirements don't reappear as fresh losses.
  lost_nodes_.clear();
  const int nn = m_.topology().n_nodes;
  if (nn > 1) {
    std::vector<int> alive(static_cast<std::size_t>(nn), 0);
    std::vector<int> total(static_cast<std::size_t>(nn), 0);
    for (int d = 0; d < m_.n_devices(); ++d) {
      const auto k = static_cast<std::size_t>(m_.node_of(d));
      ++total[k];
      if (!contains(dead, d)) ++alive[k];
    }
    for (int k = 0; k < nn; ++k) {
      if (total[static_cast<std::size_t>(k)] > 0 &&
          alive[static_cast<std::size_t>(k)] == 0) {
        lost_nodes_.push_back(k);
      }
    }
  }
  const auto domain = static_cast<std::size_t>(
      nn > 1 ? m_.node_of(e.device()) : 0);
  const sim::RecoveryBudget& rb = m_.recovery_budget();
  const int survivors = m_.n_devices() - static_cast<int>(dead.size());
  if (rounds_[domain] >= rb.max_rounds) {
    if (opts_.degrade_to_cpu) {
      degrade_reason_ = "nested recovery budget exhausted (" +
                        std::to_string(rb.max_rounds) + " rounds)";
      return true;
    }
    throw Error("nested recovery budget exhausted after " +
                    std::to_string(rb.max_rounds) + " rounds (last: " +
                    std::string(e.what()) + ")",
                ErrorCode::kRetriesExhausted, e.device());
  }
  if (survivors < std::max(1, opts_.min_devices)) {
    if (opts_.degrade_to_cpu) {
      degrade_reason_ = "device floor reached (" + std::to_string(survivors) +
                        " < " + std::to_string(std::max(1, opts_.min_devices)) +
                        ")";
      return true;
    }
    throw;
  }
  ++rounds_[domain];
  m_.clock().host_advance(backoff_[domain]);
  rs.time_lost += backoff_[domain];
  backoff_[domain] *= rb.backoff_mult;
  // Retire descending so logical relabelling never shifts a not-yet-retired
  // dead device out from under the loop.
  for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
    m_.retire_device(*it);
  }
  return false;
}

}  // namespace cagmres::core
