// Numerical health monitoring and the deterministic escalation ladder
// (DESIGN.md §8).
//
// PR 1 made the solvers survive injected *hardware* faults; this layer
// watches the *numerical* failure axis: the s-step basis going dependent as
// s grows (paper §IV-A), CholQR breaking down, the Arnoldi recurrence
// residual silently drifting from the true residual, and plain stagnation.
// Four monitors — each individually toggleable in SolverOptions::health,
// each charged to the simulated clock where it touches device data — feed
// one deterministic escalation ladder shared by GMRES and CA-GMRES:
//
//   force reorthogonalization -> shrink the working s -> rebuild the Newton
//   shifts from the freshest Hessenberg -> switch the TSQR method
//   (CholQR -> SVQR -> CAQR) -> fall back to standard GMRES
//
// (GMRES itself only has the CGS -> MGS orthogonalization downshift.)
// Every trip and every action is appended to SolveStats::health_events and
// — when tracing — recorded as an instant event on the host timeline, so
// "what did the solver do to save this solve" is answerable after the
// fact. Rungs are consumed strictly in order and all decisions depend only
// on solver state, never on wall-clock or randomness, so a given problem +
// options reproduces the identical ladder walk on every run.
//
// With every monitor off (the default) the solvers charge and compute
// exactly what they did before this layer existed — the same byte-identity
// invariant the unarmed fault injector established, and tested the same
// way.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "blas/matrix.hpp"
#include "sim/machine.hpp"

namespace cagmres::core {

/// Monitor and ladder configuration (SolverOptions::health). Everything
/// defaults to off/unlimited.
struct HealthOptions {
  // --- monitor 1: basis/orthogonality condition -----------------------
  /// Estimate each committed block's condition from the TSQR R diagonal
  /// (free, host data) and sample the charged Gram condition number of the
  /// orthonormalized block on a cadence.
  bool monitor_condition = false;
  /// Trip when max|r_ii|/min|r_ii| (a lower bound on kappa of the
  /// generated block) exceeds this. ~eps^-1/2 is where CholQR's O(eps
  /// kappa^2) orthogonality error reaches O(1).
  double kappa_limit = 1e7;
  /// Trip when the sampled kappa of the *orthonormalized* block exceeds
  /// this (an honest "the orthogonalizer failed" signal; ~1 when healthy).
  double q_kappa_limit = 1e3;
  /// Charge an ortho::condition_number_charged sample every Nth committed
  /// block; 0 disables sampling (the free R-diagonal estimate remains).
  int condition_sample_every = 4;
  /// Sample the condition of the *whole* accumulated basis prefix at
  /// restart boundaries instead of per-block cadence samples of the newest
  /// block. Catches the cross-block orthogonality decay a healthy newest
  /// block hides, at one charged Gram sweep over all committed columns per
  /// cycle. Off by default: disabled, every code path (and every charged
  /// time) is identical to before the option existed.
  bool condition_sample_prefix = false;

  // --- monitor 2: false-convergence guard -----------------------------
  /// Compare the recurrence (least-squares) residual against the true
  /// residual at restart boundaries and on declared convergence.
  bool monitor_residual_gap = false;
  /// Trip when true/recurrence exceeds this (healthy solves sit near 1).
  double residual_gap_limit = 10.0;

  // --- monitor 3: stagnation / divergence watchdog --------------------
  bool monitor_stagnation = false;
  /// Sliding window length, in restarts.
  int stagnation_window = 4;
  /// Trip when the residual shrank by less than this factor over the
  /// window (res_now > stagnation_reduction * res_window_ago).
  double stagnation_reduction = 0.9;
  /// Trip (divergence) when the residual exceeds the best seen so far by
  /// this factor.
  double divergence_factor = 1e3;

  // --- monitor 4: budgets ---------------------------------------------
  /// Simulated-seconds budget for the whole solve; 0 = unlimited.
  /// Exceeding it throws Error(kDeadlineExceeded).
  double max_solve_seconds = 0.0;
  /// Total basis-vector budget; 0 = unlimited. Same error on overrun.
  std::int64_t max_iterations = 0;

  // --- ladder ---------------------------------------------------------
  /// When false, trips are logged but never acted on (report-only mode);
  /// progress-class trips then never raise kDeadlineExceeded either.
  bool escalate = true;

  /// Any monitor or budget armed. False (the default configuration) means
  /// the solvers take their pre-health code paths verbatim.
  bool any() const {
    return monitor_condition || monitor_residual_gap || monitor_stagnation ||
           max_solve_seconds > 0.0 || max_iterations > 0;
  }
};

/// One rung of the escalation ladder (kNone = ladder exhausted).
enum class EscalationStep {
  kNone,
  kForceReorth,    ///< BOrth+TSQR twice for every remaining block
  kShrinkS,        ///< halve the working s (reuses the adaptive_s state)
  kRebuildShifts,  ///< fresh Newton shifts from the latest Hessenberg
  kSwitchTsqr,     ///< CholQR -> SVQR -> CAQR for the remainder
  kSwitchOrth,     ///< GMRES: CGS -> MGS per-iteration Orth
  kFallbackGmres,  ///< CA-GMRES: standard GMRES for the remaining budget
};

std::string to_string(EscalationStep step);

/// What a health event records (kNone on HealthEvent::action means the
/// event is a trip/observation, not a ladder action).
enum class HealthEventKind {
  kNone,
  kConditionTrip,     ///< monitor 1: basis or Q-block condition over limit
  kFalseConvergence,  ///< monitor 2: recurrence said converged, truth said no
  kResidualGap,       ///< monitor 2: gap over limit without a claim
  kStagnation,        ///< monitor 3: too little progress over the window
  kDivergence,        ///< monitor 3: residual blew up vs best-so-far
  kEscalation,        ///< ladder action taken (see action)
  kLadderExhausted,   ///< a trip found no applicable rung left
};

std::string to_string(HealthEventKind kind);

/// One entry of SolveStats::health_events.
struct HealthEvent {
  HealthEventKind kind = HealthEventKind::kNone;
  EscalationStep action = EscalationStep::kNone;  ///< kEscalation only
  double time = 0.0;   ///< simulated seconds when recorded
  int restart = 0;     ///< restart loop index
  int iteration = 0;   ///< basis vectors generated so far
  double value = 0.0;  ///< tripping measurement (kappa, gap ratio, ...)
  std::string detail;  ///< human-readable context
};

/// Which ladder rungs the hosting solver can perform (CA-GMRES: all but
/// kSwitchOrth; GMRES: kSwitchOrth only). The policy walks only these.
struct LadderCapabilities {
  bool force_reorth = false;
  bool shrink_s = false;
  bool rebuild_shifts = false;
  int tsqr_switches = 0;  ///< downshifts left in the TSQR chain
  bool switch_orth = false;
  bool fallback_gmres = false;
};

/// The deterministic rung sequence. next() yields rungs strictly in ladder
/// order, each at most the configured number of times, and kNone forever
/// once exhausted; there is no state besides the cursor, so identical trip
/// sequences walk identical ladders.
class EscalationPolicy {
 public:
  explicit EscalationPolicy(const LadderCapabilities& caps);

  EscalationStep next();
  bool exhausted() const { return cursor_ >= rungs_.size(); }

 private:
  std::vector<EscalationStep> rungs_;
  std::size_t cursor_ = 0;
};

/// Per-solve monitor engine. The hosting solver calls the check_* hooks at
/// its natural boundaries; each returns the trip kind (kNone = healthy) and
/// has already logged the trip. On a trip the solver calls escalate() with
/// an applicability predicate (is this rung still useful given my current
/// state?) and applies the returned action. All events are collected here
/// and moved into SolveStats at the end of the solve.
class SolveHealthMonitor {
 public:
  SolveHealthMonitor(sim::Machine& machine, const HealthOptions& opts,
                     const LadderCapabilities& caps, double t_start);

  /// Any monitor or budget armed (mirrors HealthOptions::any).
  bool armed() const { return opts_.any(); }
  const HealthOptions& options() const { return opts_; }

  /// Monitor 1, at CA block commit. `r_block` is the block's TSQR factor
  /// (host data, free to scan); every condition_sample_every-th call also
  /// charges a Gram condition number of the orthonormalized columns
  /// [c0, c1) of v.
  HealthEventKind check_block(const blas::DMat& r_block,
                              const sim::DistMultiVec& v, int c0, int c1,
                              int restart, int iteration);

  /// Monitor 1, whole-prefix variant (condition_sample_prefix): at the end
  /// of a cycle, charge one Gram condition number over every orthonormal
  /// column [0, cols) committed this cycle and trip on q_kappa_limit. The
  /// per-block cadence sample is suppressed while this mode is on (the free
  /// R-diagonal estimate in check_block still runs); escalation mutes apply
  /// as usual. No-op unless monitor_condition && condition_sample_prefix.
  HealthEventKind check_restart_prefix(const sim::DistMultiVec& v, int cols,
                                       int restart, int iteration);

  /// Monitor 2, at a restart boundary: `true_res` is the just-computed
  /// explicit residual, `recurrence_res` the previous cycle's least-squares
  /// estimate, `claimed_converged` whether that estimate met the tolerance,
  /// `still_unconverged` whether the true residual is still above it.
  HealthEventKind check_residual_gap(double true_res, double recurrence_res,
                                     bool claimed_converged,
                                     bool still_unconverged, int restart,
                                     int iteration);

  /// Monitor 3, once per restart with the true residual norm.
  HealthEventKind check_progress(double res, int restart, int iteration);

  /// Monitor 4; throws Error(kDeadlineExceeded) when a budget is exceeded.
  void check_budget(std::int64_t iterations, int restart);

  /// Walks the ladder to the first rung `applicable` accepts, logging the
  /// kEscalation (or kLadderExhausted) event. Returns kNone when no rung is
  /// left; the solver decides what exhaustion means for this cause.
  EscalationStep escalate(
      HealthEventKind cause, double value, int restart, int iteration,
      const std::function<bool(EscalationStep)>& applicable);

  /// Largest and latest true/recurrence gap observed by monitor 2.
  double residual_gap_last() const { return gap_last_; }
  double residual_gap_max() const { return gap_max_; }

  const std::vector<HealthEvent>& events() const { return events_; }
  std::vector<HealthEvent> take_events() { return std::move(events_); }

 private:
  HealthEvent& log(HealthEventKind kind, double value, int restart,
                   int iteration, std::string detail);

  sim::Machine& m_;
  HealthOptions opts_;
  EscalationPolicy policy_;
  double t_start_ = 0.0;

  std::vector<HealthEvent> events_;

  // monitor 1 state
  std::int64_t blocks_seen_ = 0;
  std::int64_t condition_mute_until_block_ = 0;

  // monitor 2/3 state
  double gap_last_ = 0.0;
  double gap_max_ = 0.0;
  std::vector<double> residuals_;
  double best_res_ = 0.0;
  bool have_best_ = false;
  int progress_mute_until_restart_ = 0;
};

}  // namespace cagmres::core
