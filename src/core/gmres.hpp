// Standard restarted GMRES(m) on the simulated multi-GPU machine
// (paper §III, Fig. 1).
//
// Arnoldi with MGS or CGS orthogonalization per iteration, Givens
// least-squares monitoring, restart after m iterations, convergence at a
// `tol` relative residual reduction. All SpMV and Orth costs are charged to
// the machine, phase-labelled "spmv" and "orth".
#pragma once

#include "core/solver_common.hpp"
#include "mpk/exec.hpp"
#include "sim/machine.hpp"

namespace cagmres::core {

/// Solves the prepared problem with GMRES(opts.m); returns the solution in
/// the caller's original ordering/scaling plus telemetry.
SolveResult gmres(sim::Machine& machine, const Problem& problem,
                  const SolverOptions& opts);

namespace detail {

/// One Arnoldi restart cycle (shared with CA-GMRES's shift-harvesting first
/// restart): V(:,0) must hold the unit starting vector; generates up to m
/// more columns, orthogonalizing each with `orth`. Stops early when the
/// least-squares residual drops to `abs_tol` or on happy breakdown.
struct CycleOutcome {
  int k = 0;                ///< basis columns generated (H has k columns)
  blas::DMat h;             ///< (m+1) x m raw Hessenberg (cols 0..k-1 valid)
  std::vector<double> y;    ///< LS solution for the k columns
  double ls_residual = 0.0; ///< final least-squares residual estimate
  int replays = 0;          ///< iterations re-run by the health scrub
};

/// `max_replays` > 0 enables the recovery scrub: each iteration's Hessenberg
/// column and norm (computed anyway — a free checksum) are checked for
/// NaN/Inf before the iteration is accepted; a poisoned iteration is re-run
/// up to max_replays times, after which the cycle stops early at the last
/// clean column. 0 (the fault-free default) changes nothing.
///
/// `pc` non-null runs the right-preconditioned recurrence: each step stages
/// M^{-1} v_j (in the executor's scratch multivector) and multiplies A into
/// that, building a basis of A M^{-1}. The caller must then apply M^{-1}
/// once inside the solution update (update_solution with the same `pc`).
CycleOutcome arnoldi_cycle(sim::Machine& machine, mpk::MpkExecutor& spmv,
                           sim::DistMultiVec& v, int m, ortho::Method orth,
                           double beta, double abs_tol, int max_replays = 0,
                           precond::PrecondHandle* pc = nullptr);

/// Charged checkpoint of the current solution (column 0 of xwork) to the
/// host, in prepared row order (device blocks are contiguous). Recovery-path
/// only: callers gate it on Machine::faults_armed().
std::vector<double> checkpoint_x(sim::Machine& machine,
                                 const sim::DistMultiVec& xwork);

/// Charged restore of a checkpoint into column 0 of xwork, split at xwork's
/// (possibly repartitioned) device blocks.
void restore_x(sim::Machine& machine, sim::DistMultiVec& xwork,
               const std::vector<double>& x);

/// Charges the host->device redistribution of the matrix and rhs blocks
/// after a repartition (the one recovery cost that is not a retry or replay
/// of existing work).
void charge_redistribution(sim::Machine& machine, const Problem& p);

/// r := b - A x into column rcol of v, where x lives in column xcol of
/// `xwork` (a 2-column scratch multivector) — or r := b when first is true.
/// Returns ||r|| (reduced on the host).
double compute_residual(sim::Machine& machine, mpk::MpkExecutor& spmv,
                        const sim::DistVec& b, sim::DistMultiVec& xwork,
                        sim::DistMultiVec& v, int rcol, bool first);

/// x (column 0 of xwork) += V(:, 0:k) * y, broadcasting y to the devices.
/// Right-preconditioned (`pc` non-null): x += M^{-1} (V(:, 0:k) y), staging
/// V y in `stage` (columns 0 and 1; pass the executor's stage(2)) so x
/// stays the true-space iterate.
void update_solution(sim::Machine& machine, sim::DistMultiVec& v, int k,
                     const std::vector<double>& y, sim::DistMultiVec& xwork,
                     precond::PrecondHandle* pc = nullptr,
                     sim::DistMultiVec* stage = nullptr);

}  // namespace detail

}  // namespace cagmres::core
