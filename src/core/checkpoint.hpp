// Hierarchical (buddy) checkpointing and node-level fault domains.
//
// On a flat machine the resilient solvers checkpoint x to the coordinating
// host each restart and restore from there after any loss — the PR 1 path,
// kept bitwise-identical here. On a multi-node topology that host round
// trip pays PCIe + network per remote device, and a whole-node loss makes
// every survivor re-load over the slow link. The hierarchy splits the
// cost:
//
//   rung 1  intra-node checkpoint   each device saves its shard to its own
//                                   node's host memory over the NVLink-class
//                                   peer link (cheap; covers single-device
//                                   loss and NaN rollbacks);
//   rung 2  partner mirror          each node's shard is mirrored to a
//                                   partner node (k -> (k+1) mod N) over the
//                                   inter-node link, asynchronously: the
//                                   mirror is modelled as NIC DMA out of
//                                   node-host memory, so it occupies no
//                                   device stream — only a readiness Event
//                                   whose completion a restore may have to
//                                   wait on (record_event/host_wait_event);
//   rung 3  partner restore         a full node loss repartitions and pulls
//                                   the lost shard from its partner instead
//                                   of re-shipping everything from the
//                                   coordinating host;
//   rung 4  host checkpoint         the partner itself is gone (correlated
//                                   double-node loss): fall back to the
//                                   flat restore path;
//   rung 5  host_gmres floor        below SolverOptions::min_devices the
//                                   solver degrades to the host-only core
//                                   (PR 6), unchanged.
//
// RecoveryDomains is the node-aware half of the solvers' fault handler: it
// surveys which devices a correlated fault actually killed (a node kill
// marks a whole domain dead but throws from one victim's poll), applies the
// per-domain sim::RecoveryBudget, and retires every dead device. On a flat
// machine both classes reproduce the PR 6 behavior exactly.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/solver_common.hpp"
#include "sim/machine.hpp"

namespace cagmres::core {

/// Checkpoint/restore of the distributed iterate x (see file comment).
/// Owns the host-side authoritative copy; on hierarchical machines it also
/// tracks the per-node mirror events and shard sizes.
class Checkpointer {
 public:
  Checkpointer(sim::Machine& m, const SolverOptions& opts, bool resilient);

  /// True when the buddy hierarchy is active (resilient solve, partner
  /// checkpointing enabled, and a topology with more than one node).
  bool hierarchical() const { return hier_; }

  /// Installs the initial all-zero checkpoint of length n (resilient solves
  /// start from x = 0).
  void init_zero(int n);

  /// Captures xwork column 0 as the new checkpoint. Flat: identical to the
  /// PR 1 path (one d2h per device to the coordinating host). Hierarchical:
  /// node-local d2h over the peer link, then the asynchronous partner
  /// mirrors are (re)armed and their network traffic counted.
  void save(sim::DistMultiVec& xwork, bool x_is_zero);

  /// In-place rollback of xwork onto the *current* partition (NaN scrub /
  /// tainted-cycle path; no repartition happened). Flat: PR 1 restore_x.
  /// Hierarchical: node-local h2d — single-device loss and rollbacks never
  /// touch the network.
  void rollback(sim::DistMultiVec& xwork);

  /// Restore after repartition_problem() rebuilt the distributed state.
  /// `lost_nodes` names the fully-dead domains of the fault being recovered
  /// (from RecoveryDomains::lost_nodes()). Hierarchical restores pull each
  /// lost shard from its partner (waiting out an incomplete mirror) and
  /// scatter node-locally; if any lost node's partner is itself dead, the
  /// whole restore falls back to the flat host path.
  void restore_after_repartition(sim::DistMultiVec& xwork,
                                 const std::vector<int>& lost_nodes);

  /// The checkpointed iterate (prepared row order) and whether it is
  /// exactly zero — the degradation floor hands these to host_gmres.
  const std::vector<double>& x() const { return x_; }
  bool x_zero() const { return x_zero_; }

  /// Node shards restored from the partner copy (RecoveryStats).
  int partner_restores() const { return partner_restores_; }

 private:
  /// Re-arms the per-node partner mirrors after a save: one readiness event
  /// per populated node, timestamped at the node's latest device time plus
  /// one inter-node message of the shard's bytes (NIC-DMA model).
  void arm_mirrors();
  /// Writes x_ into xwork column 0 (host-side data motion; charges belong
  /// to the caller).
  void scatter(sim::DistMultiVec& xwork) const;

  sim::Machine& m_;
  bool resilient_;
  bool hier_;
  std::vector<double> x_;
  bool x_zero_ = true;
  std::vector<sim::Event> mirror_;     ///< per-node mirror completion
  std::vector<char> mirror_ok_;        ///< mirror armed for this node
  std::vector<double> shard_bytes_;    ///< per-node checkpoint shard size
  int partner_restores_ = 0;
};

/// Node-aware fault classification + bounded recovery (see file comment).
/// One instance per solve; drives the catch handler both solvers share.
class RecoveryDomains {
 public:
  RecoveryDomains(sim::Machine& m, const SolverOptions& opts, bool resilient);

  /// Handles an Error caught by the solver's restart loop. Must be called
  /// from inside the catch block (it rethrows the active exception for
  /// unrecoverable faults and for floor breaches with degradation off).
  /// Returns true when the solver must degrade to the host floor (reason in
  /// degrade_reason()); returns false when every dead device has been
  /// retired and the caller must rebuild. Charges the per-domain recovery
  /// backoff and accounts it in `rs`.
  bool handle(const Error& e, RecoveryStats& rs);

  /// Domains the handled fault finished off (every device dead), in the
  /// state *before* retirement — the checkpointer restores these from the
  /// partner copies.
  const std::vector<int>& lost_nodes() const { return lost_nodes_; }

  const std::string& degrade_reason() const { return degrade_reason_; }

  /// A completed restart proves the machine is healthy again: refills every
  /// domain's round budget and resets the backoffs.
  void on_restart_completed();

 private:
  sim::Machine& m_;
  const SolverOptions& opts_;
  bool resilient_;
  std::vector<int> rounds_;      ///< consecutive recovery rounds, per node
  std::vector<double> backoff_;  ///< next charged backoff, per node
  std::vector<int> lost_nodes_;
  std::string degrade_reason_;
};

}  // namespace cagmres::core
