#include "core/gmres.hpp"

#include <cmath>

#include "blas/least_squares.hpp"
#include "common/error.hpp"
#include "mpk/plan.hpp"
#include "ortho/reduce.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::core {

namespace detail {

namespace {

/// Global dot product of two distributed columns (Fig. 9's reduction).
double dist_dot(sim::Machine& m, const sim::DistMultiVec& v, int ca, int cb) {
  const int ng = m.n_devices();
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng), std::vector<double>(1, 0.0));
  for (int d = 0; d < ng; ++d) {
    partial[static_cast<std::size_t>(d)][0] =
        sim::dev_dot(m, d, v.local_rows(d), v.col(d, ca), v.col(d, cb));
  }
  double out = 0.0;
  ortho::detail::reduce_to_host(m, partial, 1, &out);
  return out;
}

}  // namespace

double compute_residual(sim::Machine& m, mpk::MpkExecutor& spmv,
                        const sim::DistVec& b, sim::DistMultiVec& xwork,
                        sim::DistMultiVec& v, int rcol, bool first) {
  const int ng = m.n_devices();
  if (first) {
    for (int d = 0; d < ng; ++d) {
      sim::dev_copy(m, d, v.local_rows(d), b.local(d), v.col(d, rcol));
    }
  } else {
    spmv.spmv(m, xwork, /*xcol=*/0, /*ycol=*/1);
    for (int d = 0; d < ng; ++d) {
      sim::dev_copy(m, d, v.local_rows(d), b.local(d), v.col(d, rcol));
      sim::dev_axpy(m, d, v.local_rows(d), -1.0, xwork.col(d, 1),
                    v.col(d, rcol));
    }
  }
  const double nrm_sq = dist_dot(m, v, rcol, rcol);
  return std::sqrt(std::max(nrm_sq, 0.0));
}

void update_solution(sim::Machine& m, sim::DistMultiVec& v, int k,
                     const std::vector<double>& y, sim::DistMultiVec& xwork) {
  CAGMRES_REQUIRE(static_cast<int>(y.size()) >= k, "short LS solution");
  ortho::detail::broadcast_charge(m, k);
  for (int d = 0; d < m.n_devices(); ++d) {
    sim::dev_gemv_n_acc(m, d, v.local_rows(d), k, v.col(d, 0),
                        v.local(d).ld(), y.data(), xwork.col(d, 0));
  }
}

CycleOutcome arnoldi_cycle(sim::Machine& m, mpk::MpkExecutor& spmv,
                           sim::DistMultiVec& v, int mm, ortho::Method orth,
                           double beta, double abs_tol) {
  CAGMRES_REQUIRE(orth == ortho::Method::kMgs || orth == ortho::Method::kCgs,
                  "GMRES Orth must be MGS or CGS");
  const int ng = m.n_devices();
  CycleOutcome out;
  out.h = blas::DMat(mm + 1, mm);
  blas::GivensLS ls(mm, beta);
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(mm) + 1, 0.0));
  std::vector<double> coeff(static_cast<std::size_t>(mm) + 1, 0.0);

  for (int j = 0; j < mm; ++j) {
    spmv.spmv(m, v, j, j + 1);

    sim::PhaseScope phase(m, "orth");
    const int k = j + 1;  // number of previous columns
    if (orth == ortho::Method::kCgs) {
      for (int d = 0; d < ng; ++d) {
        sim::dev_gemv_t(m, d, v.local_rows(d), k, v.col(d, 0),
                        v.local(d).ld(), v.col(d, k),
                        partial[static_cast<std::size_t>(d)].data());
      }
      ortho::detail::reduce_to_host(m, partial, k, coeff.data());
      ortho::detail::broadcast_charge(m, k);
      for (int d = 0; d < ng; ++d) {
        sim::dev_gemv_n_sub(m, d, v.local_rows(d), k, v.col(d, 0),
                            v.local(d).ld(), coeff.data(), v.col(d, k));
      }
      for (int i = 0; i < k; ++i) {
        out.h(i, j) = coeff[static_cast<std::size_t>(i)];
      }
    } else {  // MGS: one reduction per previous column
      for (int l = 0; l < k; ++l) {
        for (int d = 0; d < ng; ++d) {
          partial[static_cast<std::size_t>(d)][0] = sim::dev_dot(
              m, d, v.local_rows(d), v.col(d, l), v.col(d, k));
        }
        double r = 0.0;
        ortho::detail::reduce_to_host(m, partial, 1, &r);
        out.h(l, j) = r;
        ortho::detail::broadcast_charge(m, 1);
        for (int d = 0; d < ng; ++d) {
          sim::dev_axpy(m, d, v.local_rows(d), -r, v.col(d, l), v.col(d, k));
        }
      }
    }
    // Normalize the new vector.
    for (int d = 0; d < ng; ++d) {
      partial[static_cast<std::size_t>(d)][0] =
          sim::dev_dot(m, d, v.local_rows(d), v.col(d, k), v.col(d, k));
    }
    double nrm_sq = 0.0;
    ortho::detail::reduce_to_host(m, partial, 1, &nrm_sq);
    const double nrm = std::sqrt(std::max(nrm_sq, 0.0));
    out.h(k, j) = nrm;
    if (nrm <= 1e-300) {  // happy breakdown: subspace is invariant
      out.k = j + 1;
      // Column j of H is complete with h(k, j) = 0; append and stop.
      std::vector<double> col(static_cast<std::size_t>(k) + 1);
      for (int i = 0; i <= k; ++i) col[static_cast<std::size_t>(i)] = out.h(i, j);
      out.ls_residual = ls.append_column(col.data());
      break;
    }
    ortho::detail::broadcast_charge(m, 1);
    for (int d = 0; d < ng; ++d) {
      sim::dev_scal(m, d, v.local_rows(d), 1.0 / nrm, v.col(d, k));
    }

    std::vector<double> col(static_cast<std::size_t>(k) + 1);
    for (int i = 0; i <= k; ++i) col[static_cast<std::size_t>(i)] = out.h(i, j);
    out.ls_residual = ls.append_column(col.data());
    out.k = j + 1;
    if (out.ls_residual <= abs_tol) break;
  }
  m.charge_host(sim::Kernel::kSmall,
                3.0 * static_cast<double>(out.k) * out.k, 0.0);
  out.y = ls.solve();
  return out;
}

}  // namespace detail

SolveResult gmres(sim::Machine& machine, const Problem& problem,
                  const SolverOptions& opts) {
  CAGMRES_REQUIRE(problem.n_devices() == machine.n_devices(),
                  "problem/machine device count mismatch");
  CAGMRES_REQUIRE(opts.m >= 1, "restart length must be positive");
  const int ng = machine.n_devices();
  const std::vector<int> rows = problem.rows_per_device();

  const mpk::MpkPlan plan = mpk::build_mpk_plan(problem.a, problem.offsets, 1);
  mpk::MpkExecutor spmv(plan);

  sim::DistMultiVec v(rows, opts.m + 1);
  sim::DistMultiVec xwork(rows, 2);
  sim::DistVec b(rows);
  b.assign_from_host(problem.b);

  SolveResult result;
  SolveStats& st = result.stats;
  const double t0 = machine.clock().elapsed();
  const sim::PhaseTimers phases0 = machine.phases();

  double res = 0.0;
  for (int restart = 0; restart < opts.max_restarts; ++restart) {
    res = detail::compute_residual(machine, spmv, b, xwork, v, 0,
                                   restart == 0);
    if (restart == 0) {
      st.initial_residual = res;
      if (res == 0.0) {  // b == 0: x = 0 is exact
        st.converged = true;
        break;
      }
    }
    st.residual_history.push_back(res);
    if (res <= opts.tol * st.initial_residual) {
      st.converged = true;
      break;
    }
    for (int d = 0; d < ng; ++d) {
      sim::dev_scal(machine, d, v.local_rows(d), 1.0 / res, v.col(d, 0));
    }
    detail::CycleOutcome cycle = detail::arnoldi_cycle(
        machine, spmv, v, opts.m, opts.gmres_orth, res,
        opts.tol * st.initial_residual);
    detail::update_solution(machine, v, cycle.k, cycle.y, xwork);
    st.iterations += cycle.k;
    ++st.restarts;
  }
  st.final_residual = res;

  st.time_total = machine.clock().elapsed() - t0;
  const sim::PhaseTimers& ph = machine.phases();
  st.time_spmv = ph.get("spmv") - phases0.get("spmv");
  st.time_orth = ph.get("orth") - phases0.get("orth");
  st.time_other = st.time_total - st.time_spmv - st.time_orth;

  std::vector<double> x_prepared;
  x_prepared.reserve(static_cast<std::size_t>(problem.n()));
  for (int d = 0; d < ng; ++d) {
    const double* p = xwork.col(d, 0);
    x_prepared.insert(x_prepared.end(), p, p + xwork.local_rows(d));
  }
  result.x = recover_solution(problem, x_prepared);
  return result;
}

}  // namespace cagmres::core
