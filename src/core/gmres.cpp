#include "core/gmres.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "blas/least_squares.hpp"
#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/cpu_gmres.hpp"
#include "mpk/plan.hpp"
#include "ortho/reduce.hpp"
#include "precond/precond.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::core {

namespace detail {

namespace {

/// Global dot product of two distributed columns (Fig. 9's reduction).
double dist_dot(sim::Machine& m, const sim::DistMultiVec& v, int ca, int cb) {
  const int ng = m.n_devices();
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng), std::vector<double>(1, 0.0));
  for (int d = 0; d < ng; ++d) {
    partial[static_cast<std::size_t>(d)][0] =
        sim::dev_dot(m, d, v.local_rows(d), v.col(d, ca), v.col(d, cb));
  }
  double out = 0.0;
  ortho::detail::reduce_to_host(m, partial, 1, &out);
  return out;
}

}  // namespace

double compute_residual(sim::Machine& m, mpk::MpkExecutor& spmv,
                        const sim::DistVec& b, sim::DistMultiVec& xwork,
                        sim::DistMultiVec& v, int rcol, bool first) {
  const int ng = m.n_devices();
  if (first) {
    for (int d = 0; d < ng; ++d) {
      sim::dev_copy(m, d, v.local_rows(d), b.local(d), v.col(d, rcol));
    }
  } else {
    spmv.spmv(m, xwork, /*xcol=*/0, /*ycol=*/1);
    for (int d = 0; d < ng; ++d) {
      sim::dev_copy(m, d, v.local_rows(d), b.local(d), v.col(d, rcol));
      sim::dev_axpy(m, d, v.local_rows(d), -1.0, xwork.col(d, 1),
                    v.col(d, rcol));
    }
  }
  const double nrm_sq = dist_dot(m, v, rcol, rcol);
  return std::sqrt(std::max(nrm_sq, 0.0));
}

void update_solution(sim::Machine& m, sim::DistMultiVec& v, int k,
                     const std::vector<double>& y, sim::DistMultiVec& xwork,
                     precond::PrecondHandle* pc, sim::DistMultiVec* stage) {
  CAGMRES_REQUIRE(static_cast<int>(y.size()) >= k, "short LS solution");
  if (k == 0) return;
  // Broadcast the (possibly codec-quantized) wire image of y; the devices
  // accumulate exactly the coefficients that crossed the wire.
  std::vector<double> yq(y.begin(), y.begin() + k);
  ortho::detail::broadcast_charge(m, k, yq.data());
  if (pc == nullptr) {
    for (int d = 0; d < m.n_devices(); ++d) {
      sim::dev_gemv_n_acc(m, d, v.local_rows(d), k, v.col(d, 0),
                          v.local(d).ld(), yq.data(), xwork.col(d, 0));
    }
    return;
  }
  // Right-preconditioned: the basis spans the u-space (A M^{-1} u = b), so
  // the true-space correction is M^{-1} (V y): stage V y in column 1,
  // solve M into column 0, accumulate into x. Column 1 is fully
  // overwritten (copy + scale of the first term, then accumulate), so
  // poison from an earlier faulted update cannot persist across rollbacks.
  CAGMRES_REQUIRE(stage != nullptr && stage->cols() >= 2,
                  "preconditioned update needs a 2-column stage");
  for (int d = 0; d < m.n_devices(); ++d) {
    sim::dev_copy(m, d, v.local_rows(d), v.col(d, 0), stage->col(d, 1));
    sim::dev_scal(m, d, stage->local_rows(d), yq[0], stage->col(d, 1));
    if (k > 1) {
      sim::dev_gemv_n_acc(m, d, v.local_rows(d), k - 1, v.col(d, 1),
                          v.local(d).ld(), yq.data() + 1, stage->col(d, 1));
    }
  }
  pc->apply(m, *stage, 1, *stage, 0);
  for (int d = 0; d < m.n_devices(); ++d) {
    sim::dev_axpy(m, d, xwork.local_rows(d), 1.0, stage->col(d, 0),
                  xwork.col(d, 0));
  }
}

std::vector<double> checkpoint_x(sim::Machine& m,
                                 const sim::DistMultiVec& xwork) {
  m.sync();  // wall-clock only: the host reads xwork below
  const sim::CodecSpec& cd = m.codec(sim::TrafficClass::kCkpt);
  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(xwork.total_rows()));
  for (int d = 0; d < m.n_devices(); ++d) {
    const int rows = xwork.local_rows(d);
    m.charge_codec(d, cd, rows);
    m.d2h(d, cd.wire_bytes(rows), 8.0 * rows);
    const double* p = xwork.col(d, 0);
    x.insert(x.end(), p, p + rows);
  }
  m.host_wait_all();
  // The checkpoint holds the decoded wire image. The ckpt codec is
  // restricted to idempotent demotion (Machine::set_codec), so restore
  // re-ships these exact bits and a save→restore→save cycle is stable.
  if (cd.active()) cd.roundtrip(x.data(), static_cast<int>(x.size()));
  return x;
}

void restore_x(sim::Machine& m, sim::DistMultiVec& xwork,
               const std::vector<double>& x) {
  CAGMRES_REQUIRE(static_cast<int>(x.size()) == xwork.total_rows(),
                  "checkpoint size mismatch");
  m.sync();  // wall-clock only: the host writes xwork below
  const sim::CodecSpec& cd = m.codec(sim::TrafficClass::kCkpt);
  std::size_t at = 0;
  for (int d = 0; d < m.n_devices(); ++d) {
    const int rows = xwork.local_rows(d);
    // The checkpoint already holds decoded wire values (see checkpoint_x),
    // so the restore ships the same coded image and decodes to those bits.
    m.h2d(d, cd.wire_bytes(rows), 8.0 * rows);
    m.charge_codec(d, cd, rows);
    double* p = xwork.col(d, 0);
    for (int i = 0; i < rows; ++i) p[static_cast<std::size_t>(i)] = x[at++];
  }
  m.host_wait_all();
}

CycleOutcome arnoldi_cycle(sim::Machine& m, mpk::MpkExecutor& spmv,
                           sim::DistMultiVec& v, int mm, ortho::Method orth,
                           double beta, double abs_tol, int max_replays,
                           precond::PrecondHandle* pc) {
  CAGMRES_REQUIRE(orth == ortho::Method::kMgs || orth == ortho::Method::kCgs,
                  "GMRES Orth must be MGS or CGS");
  const int ng = m.n_devices();
  CycleOutcome out;
  out.h = blas::DMat(mm + 1, mm);
  blas::GivensLS ls(mm, beta);
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(mm) + 1, 0.0));
  std::vector<double> coeff(static_cast<std::size_t>(mm) + 1, 0.0);

  for (int j = 0; j < mm; ++j) {
    const int k = j + 1;  // number of previous columns
    double nrm = 0.0;
    int attempts = 0;
    bool column_ok = false;
    // Replay loop: the SpMV fully rewrites column k from the (accepted)
    // column j, so re-running a poisoned iteration is side-effect free.
    // (Preconditioned, the apply fully rewrites the stage column too.)
    while (true) {
      if (pc != nullptr) {
        sim::DistMultiVec& stage = spmv.stage(2);
        pc->apply(m, v, j, stage, 0);
        spmv.spmv(m, stage, 0, v, j + 1);
      } else {
        spmv.spmv(m, v, j, j + 1);
      }

      sim::PhaseScope phase(m, "orth");
      if (orth == ortho::Method::kCgs) {
        for (int d = 0; d < ng; ++d) {
          sim::dev_gemv_t(m, d, v.local_rows(d), k, v.col(d, 0),
                          v.local(d).ld(), v.col(d, k),
                          partial[static_cast<std::size_t>(d)].data());
        }
        ortho::detail::reduce_to_host(m, partial, k, coeff.data());
        // Broadcast may quantize the coefficients in place; the device
        // update and the H column below both read the wire image.
        ortho::detail::broadcast_charge(m, k, coeff.data());
        for (int d = 0; d < ng; ++d) {
          sim::dev_gemv_n_sub(m, d, v.local_rows(d), k, v.col(d, 0),
                              v.local(d).ld(), coeff.data(), v.col(d, k));
        }
        for (int i = 0; i < k; ++i) {
          out.h(i, j) = coeff[static_cast<std::size_t>(i)];
        }
      } else {  // MGS: one reduction per previous column
        for (int l = 0; l < k; ++l) {
          for (int d = 0; d < ng; ++d) {
            partial[static_cast<std::size_t>(d)][0] = sim::dev_dot(
                m, d, v.local_rows(d), v.col(d, l), v.col(d, k));
          }
          double r = 0.0;
          ortho::detail::reduce_to_host(m, partial, 1, &r);
          // Record r after the broadcast so H holds the coefficient the
          // devices actually subtract (broadcast may quantize in place).
          ortho::detail::broadcast_charge(m, 1, &r);
          out.h(l, j) = r;
          for (int d = 0; d < ng; ++d) {
            sim::dev_axpy(m, d, v.local_rows(d), -r, v.col(d, l), v.col(d, k));
          }
        }
      }
      // Norm of the new vector (doubles as the health checksum: a finite
      // sum of squares proves the whole column is NaN/Inf free).
      for (int d = 0; d < ng; ++d) {
        partial[static_cast<std::size_t>(d)][0] =
            sim::dev_dot(m, d, v.local_rows(d), v.col(d, k), v.col(d, k));
      }
      double nrm_sq = 0.0;
      ortho::detail::reduce_to_host(m, partial, 1, &nrm_sq);
      if (max_replays > 0) {
        bool ok = std::isfinite(nrm_sq);
        for (int i = 0; ok && i < k; ++i) ok = std::isfinite(out.h(i, j));
        if (!ok) {
          ++out.replays;
          if (++attempts > max_replays) break;  // give up on this iteration
          continue;
        }
      }
      nrm = std::sqrt(std::max(nrm_sq, 0.0));
      column_ok = true;
      break;
    }
    if (!column_ok) break;  // persistent poison: keep the clean prefix
    if (nrm <= 1e-300) {  // happy breakdown: subspace is invariant
      out.h(k, j) = nrm;
      out.k = j + 1;
      // Column j of H is complete with h(k, j) = 0; append and stop.
      std::vector<double> col(static_cast<std::size_t>(k) + 1);
      for (int i = 0; i <= k; ++i) col[static_cast<std::size_t>(i)] = out.h(i, j);
      out.ls_residual = ls.append_column(col.data());
      break;
    }
    // Broadcast first (may quantize nrm), then record: H and the device
    // scaling must agree on the same wire value.
    ortho::detail::broadcast_charge(m, 1, &nrm);
    out.h(k, j) = nrm;
    for (int d = 0; d < ng; ++d) {
      sim::dev_scal(m, d, v.local_rows(d), 1.0 / nrm, v.col(d, k));
    }

    std::vector<double> col(static_cast<std::size_t>(k) + 1);
    for (int i = 0; i <= k; ++i) col[static_cast<std::size_t>(i)] = out.h(i, j);
    out.ls_residual = ls.append_column(col.data());
    out.k = j + 1;
    if (out.ls_residual <= abs_tol) break;
  }
  m.charge_host(sim::Kernel::kSmall,
                3.0 * static_cast<double>(out.k) * out.k, 0.0);
  out.y = ls.solve();
  return out;
}

}  // namespace detail

namespace detail {

void charge_redistribution(sim::Machine& m, const Problem& p) {
  for (int d = 0; d < p.n_devices(); ++d) {
    const int r0 = p.offsets[static_cast<std::size_t>(d)];
    const int r1 = p.offsets[static_cast<std::size_t>(d) + 1];
    const double nnz = static_cast<double>(
        p.a.row_ptr[static_cast<std::size_t>(r1)] -
        p.a.row_ptr[static_cast<std::size_t>(r0)]);
    // vals (8B) + col_idx (4B) per nonzero, row_ptr (8B) + rhs (8B) per row.
    m.h2d(d, 12.0 * nnz + 16.0 * (r1 - r0));
  }
  m.host_wait_all();
}

}  // namespace detail

SolveResult gmres(sim::Machine& machine, const Problem& problem,
                  const SolverOptions& opts) {
  CAGMRES_REQUIRE(problem.n_devices() == machine.n_devices(),
                  "problem/machine device count mismatch");
  CAGMRES_REQUIRE(opts.m >= 1, "restart length must be positive");
  const bool resilient = machine.faults_armed();
  const sim::FaultStats faults0 = machine.fault_injector().stats();
  const sim::Counters ctr0 = machine.counters();
  // Per-restart tier-traffic trace instants diff against this snapshot.
  sim::Counters ctr_last = ctr0;
  if (machine.codec_config().any_active()) {
    machine.trace_instant("codec:" + machine.codec_config().to_string(),
                          "other");
  }
  std::vector<int> rows = problem.rows_per_device();

  // Owned repartitioned copy after a device loss; `prob` always points at
  // the problem currently mapped onto the machine.
  Problem repart;
  const Problem* prob = &problem;
  auto plan = std::make_unique<mpk::MpkPlan>(
      mpk::build_mpk_plan(prob->a, prob->offsets, 1));
  auto spmv = std::make_unique<mpk::MpkExecutor>(*plan);
  precond::PrecondHandle* const pc = opts.precond;

  sim::DistMultiVec v(rows, opts.m + 1);
  sim::DistMultiVec xwork(rows, 2);
  sim::DistVec b(rows);
  b.assign_from_host(prob->b);
  // Declared after the distributed buffers: on exceptional unwind the pool
  // drains before v/xwork/b (and the executor's z buffers) are destroyed.
  sim::DrainGuard drain_guard(machine);

  SolveResult result;
  SolveStats& st = result.stats;
  const double t0 = machine.clock().elapsed();
  const sim::PhaseTimers phases0 = machine.phases();

  // --- numerical health monitor + escalation ladder (core/health.hpp) ---
  // GMRES's ladder has one rung: downshift the per-iteration Orth from CGS
  // to the more stable MGS. With no monitor armed the solver charges and
  // computes exactly what it did before this layer existed.
  LadderCapabilities caps;
  caps.switch_orth = (opts.gmres_orth == ortho::Method::kCgs);
  SolveHealthMonitor hm(machine, opts.health, caps, t0);
  const bool health_on = hm.armed();
  ortho::Method orth_current = opts.gmres_orth;
  double prev_recurrence = -1.0;  // previous cycle's LS residual estimate
  bool prev_claimed = false;      // ... and whether it met the tolerance
  auto respond = [&](HealthEventKind cause, int restart_no) {
    if (!opts.health.escalate) return;
    const double value = hm.events().empty() ? 0.0 : hm.events().back().value;
    const EscalationStep a = hm.escalate(
        cause, value, restart_no, st.iterations, [&](EscalationStep step) {
          return step == EscalationStep::kSwitchOrth &&
                 orth_current == ortho::Method::kCgs;
        });
    if (a == EscalationStep::kSwitchOrth) {
      orth_current = ortho::Method::kMgs;
      ++st.ladder_steps;
      return;
    }
    if (cause == HealthEventKind::kStagnation ||
        cause == HealthEventKind::kDivergence ||
        cause == HealthEventKind::kFalseConvergence) {
      sim::UnwindDrainGuard unwind_guard(machine);
      CAGMRES_REQUIRE_CODE(
          false, ErrorCode::kDeadlineExceeded,
          "escalation ladder exhausted while the solve was not progressing");
    }
  };

  // Restart = checkpoint: the last solution whose residual was proven
  // finite, in prepared row order (valid across repartitions). On a
  // multi-node topology the checkpointer is hierarchical (buddy mirrors,
  // core/checkpoint.hpp); flat machines get the original host path.
  Checkpointer ckpt(machine, opts, resilient);
  if (resilient) ckpt.init_zero(prob->n());
  bool x_is_zero = true;   // x == 0 exactly (first residual is just b)
  bool needs_rebuild = false;
  std::vector<int> pending_lost_nodes;  // domains the last fault finished off

  // Per-node-domain nested-recovery budget (see ca_gmres: same semantics):
  // bounded consecutive hardware-recovery rounds with charged backoff;
  // crossing it or the min_devices floor degrades to the host-only solver.
  RecoveryDomains domains(machine, opts, resilient);
  bool degrade_now = false;
  std::string degrade_reason;

  double res = 0.0;
  int restart = 0;
  while (restart < opts.max_restarts) {
    try {
      if (needs_rebuild) {
        // A device was retired: re-split the prepared problem over the
        // survivors, rebuild the distributed state, and resume from the
        // last checkpoint. All redistribution traffic is charged.
        const double t_reb = machine.clock().elapsed();
        machine.sync();  // the old v/xwork/executor are replaced below
        repart = repartition_problem(*prob, machine.n_devices());
        prob = &repart;
        rows = prob->rows_per_device();
        plan = std::make_unique<mpk::MpkPlan>(
            mpk::build_mpk_plan(prob->a, prob->offsets, 1));
        spmv = std::make_unique<mpk::MpkExecutor>(*plan);
        v = sim::DistMultiVec(rows, opts.m + 1);
        xwork = sim::DistMultiVec(rows, 2);
        b = sim::DistVec(rows);
        b.assign_from_host(prob->b);
        detail::charge_redistribution(machine, *prob);
        // Only the devices whose row ranges moved are refactored; factors
        // for unchanged ranges are reused from the handle's cache.
        if (pc != nullptr) pc->rebuild(machine, prob->a, prob->offsets);
        ckpt.restore_after_repartition(xwork, pending_lost_nodes);
        pending_lost_nodes.clear();
        x_is_zero = ckpt.x_zero();
        ++st.recovery.repartitions;
        ++st.recovery.rollbacks;
        st.recovery.time_lost += machine.clock().elapsed() - t_reb;
        needs_rebuild = false;
      }
      // Factor lazily inside the fault-handling scope: a device kill
      // landing in setup classifies and repartitions like any other fault.
      // Restarts after the first see matches() true and charge nothing.
      if (pc != nullptr && !pc->matches(prob->offsets)) {
        pc->build(machine, prob->a, prob->offsets);
      }

      res = detail::compute_residual(machine, *spmv, b, xwork, v, 0,
                                     x_is_zero);
      if (resilient) {
        // A finite ||b - A x|| proves x is poison-free; a non-finite one
        // means NaN leaked past the in-cycle scrub (or hit x itself), so
        // roll back to the checkpoint and recompute.
        int attempts = 0;
        while (!std::isfinite(res)) {
          CAGMRES_REQUIRE_CODE(++attempts <= opts.max_block_replays,
                               ErrorCode::kRetriesExhausted,
                               "residual stayed non-finite across rollbacks");
          const double t_rb = machine.clock().elapsed();
          ckpt.rollback(xwork);
          x_is_zero = ckpt.x_zero();
          ++st.recovery.rollbacks;
          res = detail::compute_residual(machine, *spmv, b, xwork, v, 0,
                                         x_is_zero);
          st.recovery.time_lost += machine.clock().elapsed() - t_rb;
        }
        ckpt.save(xwork, x_is_zero);
      }
      if (restart == 0) {
        st.initial_residual = res;
        if (res == 0.0) {  // b == 0: x = 0 is exact
          st.converged = true;
          break;
        }
      }
      st.residual_history.push_back(res);
      const bool unconverged = res > opts.tol * st.initial_residual;
      if (health_on) {
        // False-convergence guard: the explicit residual just computed vs
        // the previous cycle's recurrence estimate.
        const HealthEventKind gap_trip = hm.check_residual_gap(
            res, prev_recurrence, prev_claimed, unconverged, restart,
            st.iterations);
        if (gap_trip != HealthEventKind::kNone && unconverged) {
          respond(gap_trip, restart);
        }
      }
      if (!unconverged) {
        st.converged = true;
        break;
      }
      if (health_on) {
        const HealthEventKind prog_trip =
            hm.check_progress(res, restart, st.iterations);
        if (prog_trip != HealthEventKind::kNone) respond(prog_trip, restart);
        hm.check_budget(st.iterations, restart);
      }
      for (int d = 0; d < machine.n_devices(); ++d) {
        sim::dev_scal(machine, d, v.local_rows(d), 1.0 / res, v.col(d, 0));
      }
      detail::CycleOutcome cycle = detail::arnoldi_cycle(
          machine, *spmv, v, opts.m, orth_current, res,
          opts.tol * st.initial_residual,
          resilient ? opts.max_block_replays : 0, pc);
      st.recovery.blocks_replayed += cycle.replays;
      detail::update_solution(machine, v, cycle.k, cycle.y, xwork, pc,
                              pc != nullptr ? &spmv->stage(2) : nullptr);
      if (cycle.k > 0) x_is_zero = false;
      st.iterations += cycle.k;
      prev_recurrence = cycle.k > 0 ? cycle.ls_residual : -1.0;
      prev_claimed =
          cycle.k > 0 && cycle.ls_residual <= opts.tol * st.initial_residual;
      ++st.restarts;
      ++restart;
      if (machine.tracing()) {
        trace_tier_traffic(machine, ctr_last);
        ctr_last = machine.counters();
      }
      domains.on_restart_completed();  // a completed restart refills budgets
    } catch (const Error& e) {
      // The domain handler classifies the fault (single device vs whole
      // node), applies the victim domain's budget and the device floor,
      // charges the backoff, and retires every dead device — or rethrows
      // for unrecoverable errors.
      if (domains.handle(e, st.recovery)) {
        degrade_now = true;
        degrade_reason = domains.degrade_reason();
        break;
      }
      pending_lost_nodes = domains.lost_nodes();
      needs_rebuild = true;  // the rebuild itself runs inside the try
    }
  }

  // Graceful-degradation floor (see ca_gmres): finish on the host-only
  // GMRES core from the last proven-finite checkpoint.
  std::vector<double> x_degraded;
  if (degrade_now) {
    st.degraded.active = true;
    st.degraded.devices_at_handoff = machine.n_devices();
    st.degraded.at_time = machine.clock().elapsed() - t0;
    st.degraded.reason = degrade_reason;
    machine.trace_instant("degrade:cpu_gmres", "other");
    machine.sync();  // the device path is abandoned; drain its closures
    x_degraded = resilient && !ckpt.x().empty()
                     ? ckpt.x()
                     : std::vector<double>(
                           static_cast<std::size_t>(prob->n()), 0.0);
    SolverOptions host_opts = opts;
    host_opts.max_restarts = std::max(1, opts.max_restarts - restart);
    const double abs_tol =
        st.initial_residual > 0.0 ? opts.tol * st.initial_residual : -1.0;
    SolveStats host = detail::host_gmres(machine, *prob, host_opts,
                                         x_degraded, !ckpt.x_zero(), abs_tol);
    st.converged = host.converged;
    res = host.final_residual;
    if (st.initial_residual == 0.0) {
      st.initial_residual = host.initial_residual;
    }
    st.restarts += host.restarts;
    st.iterations += host.iterations;
    st.residual_history.insert(st.residual_history.end(),
                               host.residual_history.begin(),
                               host.residual_history.end());
  }
  st.final_residual = res;
  st.health_events = hm.take_events();
  st.recurrence_residual = prev_recurrence;
  st.residual_gap = hm.residual_gap_last();
  st.residual_gap_max = hm.residual_gap_max();

  st.time_total = machine.clock().elapsed() - t0;
  st.traffic = tier_traffic(ctr0, machine.counters());
  const sim::PhaseTimers& ph = machine.phases();
  st.time_spmv = ph.get("spmv") - phases0.get("spmv");
  st.time_orth = ph.get("orth") - phases0.get("orth");
  st.time_precond = ph.get("precond") - phases0.get("precond") +
                    ph.get("precond_setup") - phases0.get("precond_setup");
  st.time_other =
      st.time_total - st.time_spmv - st.time_orth - st.time_precond;
  if (resilient) {
    const sim::FaultStats df = machine.fault_injector().stats() - faults0;
    st.recovery.faults_injected = df.injected_total;
    st.recovery.device_failures = df.device_failures;
    st.recovery.node_failures = df.node_failures;
    st.recovery.kernel_faults = df.kernel_nans;
    st.recovery.transfer_corruptions =
        df.transfer_corruptions + df.link_corruptions;
    st.recovery.transfer_stalls = df.transfer_stalls + df.link_stalls;
    st.recovery.transfer_retries = df.transfer_retries;
    st.recovery.time_lost += df.retry_seconds + df.stall_seconds;
    st.recovery.partner_restores = ckpt.partner_restores();
  }

  if (st.degraded.active) {
    result.x = recover_solution(*prob, x_degraded);
    return result;
  }
  machine.sync();  // final gather reads xwork on the host
  std::vector<double> x_prepared;
  x_prepared.reserve(static_cast<std::size_t>(prob->n()));
  for (int d = 0; d < machine.n_devices(); ++d) {
    const double* p = xwork.col(d, 0);
    x_prepared.insert(x_prepared.end(), p, p + xwork.local_rows(d));
  }
  result.x = recover_solution(*prob, x_prepared);
  return result;
}

}  // namespace cagmres::core
