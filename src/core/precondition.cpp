#include "core/precondition.hpp"

#include <cmath>
#include <utility>

#include "blas/blas1.hpp"
#include "blas/blas3.hpp"
#include "blas/lapack.hpp"
#include "common/error.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/pipelined.hpp"
#include "sparse/coo.hpp"

namespace cagmres::core {

namespace {

/// Dense inverse via QR: B^{-1} = R^{-1} Q^T. Returns false when B is
/// numerically singular (tiny R diagonal).
bool invert_dense(const blas::DMat& b, blas::DMat& inv) {
  const int n = b.rows();
  blas::DMat q, r;
  blas::qr_explicit(b, q, r);
  double dmax = 0.0;
  for (int j = 0; j < n; ++j) dmax = std::max(dmax, std::fabs(r(j, j)));
  for (int j = 0; j < n; ++j) {
    if (std::fabs(r(j, j)) < 1e-13 * (dmax + 1e-300)) return false;
  }
  blas::trtri_upper(r);
  inv = blas::DMat(n, n);
  // inv = R^{-1} * Q^T.
  blas::gemm(blas::Trans::N, blas::Trans::T, n, n, n, 1.0, r.data(), r.ld(),
             q.data(), q.ld(), 0.0, inv.data(), inv.ld());
  return true;
}

}  // namespace

PreconditionStats apply_block_jacobi(Problem& p, int block_size) {
  CAGMRES_REQUIRE(block_size >= 1, "block size must be positive");
  const int n = p.n();
  PreconditionStats stats;
  stats.nnz_before = p.a.nnz();

  sparse::CooBuilder out(n, n);
  std::vector<double> new_b(static_cast<std::size_t>(n), 0.0);
  blas::DMat block, inv;

  // Tile every device row range with blocks of at most block_size rows so
  // no block straddles a distribution boundary.
  for (std::size_t dev = 0; dev + 1 < p.offsets.size(); ++dev) {
    const int lo = p.offsets[dev];
    const int hi = p.offsets[dev + 1];
    for (int b0 = lo; b0 < hi; b0 += block_size) {
      const int b1 = std::min(b0 + block_size, hi);
      const int w = b1 - b0;
      ++stats.blocks;

      // Extract the dense diagonal block.
      block = blas::DMat(w, w);
      for (int i = 0; i < w; ++i) {
        const int row = b0 + i;
        const auto rlo = p.a.row_ptr[static_cast<std::size_t>(row)];
        const auto rhi = p.a.row_ptr[static_cast<std::size_t>(row) + 1];
        for (auto k = rlo; k < rhi; ++k) {
          const int c = p.a.col_idx[static_cast<std::size_t>(k)];
          if (b0 <= c && c < b1) {
            block(i, c - b0) = p.a.vals[static_cast<std::size_t>(k)];
          }
        }
      }
      const bool ok = invert_dense(block, inv);
      if (!ok) ++stats.identity_fallbacks;

      // Emit the preconditioned rows: row i of the block becomes
      // sum_r inv(i, r) * A(b0 + r, :), and b likewise.
      for (int i = 0; i < w; ++i) {
        const int row = b0 + i;
        if (!ok) {
          // Singular block: keep the original row (identity fallback).
          const auto rlo = p.a.row_ptr[static_cast<std::size_t>(row)];
          const auto rhi = p.a.row_ptr[static_cast<std::size_t>(row) + 1];
          for (auto k = rlo; k < rhi; ++k) {
            out.add(row, p.a.col_idx[static_cast<std::size_t>(k)],
                    p.a.vals[static_cast<std::size_t>(k)]);
          }
          new_b[static_cast<std::size_t>(row)] =
              p.b[static_cast<std::size_t>(row)];
          continue;
        }
        for (int r = 0; r < w; ++r) {
          const double c = inv(i, r);
          if (c == 0.0) continue;
          const int src = b0 + r;
          const auto rlo = p.a.row_ptr[static_cast<std::size_t>(src)];
          const auto rhi = p.a.row_ptr[static_cast<std::size_t>(src) + 1];
          for (auto k = rlo; k < rhi; ++k) {
            out.add(row, p.a.col_idx[static_cast<std::size_t>(k)],
                    c * p.a.vals[static_cast<std::size_t>(k)]);
          }
          new_b[static_cast<std::size_t>(row)] +=
              c * p.b[static_cast<std::size_t>(src)];
        }
      }
    }
  }

  p.a = out.build();
  p.b = std::move(new_b);
  p.b_norm = blas::nrm2(n, p.b.data());
  stats.nnz_after = p.a.nnz();
  return stats;
}

PreconditionedResult preconditioned_gmres(sim::Machine& machine,
                                          const Problem& problem,
                                          const SolverOptions& opts,
                                          int block_size) {
  Problem transformed = problem;
  PreconditionedResult out;
  out.precond = apply_block_jacobi(transformed, block_size);
  out.solve = gmres(machine, transformed, opts);
  return out;
}

PreconditionedResult preconditioned_ca_gmres(sim::Machine& machine,
                                             const Problem& problem,
                                             const SolverOptions& opts,
                                             int block_size) {
  Problem transformed = problem;
  PreconditionedResult out;
  out.precond = apply_block_jacobi(transformed, block_size);
  out.solve = ca_gmres(machine, transformed, opts);
  return out;
}

namespace {

/// Shared body of the spec-based drivers: a handle on the stack, wired
/// through opts.precond, outliving the delegated solve.
template <typename Solver>
IluPreconditionedResult solve_with_spec(const SolverOptions& opts,
                                        const precond::PrecondSpec& spec,
                                        Solver&& solver) {
  IluPreconditionedResult out;
  if (!spec.armed()) {
    out.solve = solver(opts);
    return out;
  }
  precond::PrecondHandle handle(spec);
  SolverOptions popts = opts;
  popts.precond = &handle;
  out.solve = solver(popts);
  out.precond = handle.stats();
  return out;
}

}  // namespace

IluPreconditionedResult preconditioned_gmres(
    sim::Machine& machine, const Problem& problem, const SolverOptions& opts,
    const precond::PrecondSpec& spec) {
  return solve_with_spec(opts, spec,
                         [&](const SolverOptions& o) {
                           return gmres(machine, problem, o);
                         });
}

IluPreconditionedResult preconditioned_ca_gmres(
    sim::Machine& machine, const Problem& problem, const SolverOptions& opts,
    const precond::PrecondSpec& spec) {
  return solve_with_spec(opts, spec,
                         [&](const SolverOptions& o) {
                           return ca_gmres(machine, problem, o);
                         });
}

IluPreconditionedResult preconditioned_pipelined_gmres(
    sim::Machine& machine, const Problem& problem, const SolverOptions& opts,
    const precond::PrecondSpec& spec) {
  return solve_with_spec(opts, spec,
                         [&](const SolverOptions& o) {
                           return pipelined_gmres(machine, problem, o);
                         });
}

}  // namespace cagmres::core
