#include "core/cpu_gmres.hpp"

#include <cmath>

#include "blas/blas1.hpp"
#include "blas/blas2.hpp"
#include "blas/least_squares.hpp"
#include "blas/matrix.hpp"
#include "common/error.hpp"

namespace cagmres::core {

namespace {

/// Host SpMV with the CPU streaming-rate charge.
void host_spmv(sim::Machine& m, const sparse::CsrMatrix& a, const double* x,
               double* y) {
  sim::PhaseScope phase(m, "spmv");
  const double nnz = static_cast<double>(a.nnz());
  m.charge_host(sim::Kernel::kSpmvCsr, 2.0 * nnz, nnz * 20.0 + 12.0 * a.n_rows);
  sparse::spmv(a, x, y);
}

}  // namespace

namespace detail {

SolveStats host_gmres(sim::Machine& machine, const Problem& problem,
                      const SolverOptions& opts, std::vector<double>& x,
                      bool x_nonzero, double abs_tol) {
  CAGMRES_REQUIRE(opts.m >= 1, "restart length must be positive");
  const int n = problem.n();
  const int mm = opts.m;
  const sparse::CsrMatrix& a = problem.a;
  CAGMRES_REQUIRE(static_cast<int>(x.size()) == n, "host_gmres: bad x size");

  blas::DMat v(n, mm + 1);
  std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
  std::vector<double> coeff(static_cast<std::size_t>(mm) + 1, 0.0);

  SolveStats st;
  const double t0 = machine.clock().elapsed();
  const sim::PhaseTimers phases0 = machine.phases();

  double res = 0.0;
  for (int restart = 0; restart < opts.max_restarts; ++restart) {
    // r = b - A x into v(:,0).
    if (restart == 0 && !x_nonzero) {
      blas::copy(n, problem.b.data(), v.col(0));
    } else {
      host_spmv(machine, a, x.data(), ax.data());
      blas::copy(n, problem.b.data(), v.col(0));
      blas::axpy(n, -1.0, ax.data(), v.col(0));
      machine.charge_host(sim::Kernel::kAxpy, 2.0 * n, 24.0 * n);
    }
    res = blas::nrm2(n, v.col(0));
    machine.charge_host(sim::Kernel::kDot, 2.0 * n, 8.0 * n);
    if (restart == 0) {
      st.initial_residual = res;
      if (res == 0.0) {
        st.converged = true;
        break;
      }
    }
    const double target =
        abs_tol > 0.0 ? abs_tol : opts.tol * st.initial_residual;
    st.residual_history.push_back(res);
    if (res <= target) {
      st.converged = true;
      break;
    }
    blas::scal(n, 1.0 / res, v.col(0));
    machine.charge_host(sim::Kernel::kScal, 1.0 * n, 16.0 * n);

    blas::GivensLS ls(mm, res);
    int k = 0;
    for (int j = 0; j < mm; ++j) {
      host_spmv(machine, a, v.col(j), v.col(j + 1));
      sim::PhaseScope phase(machine, "orth");
      const int prev = j + 1;
      if (opts.gmres_orth == ortho::Method::kCgs) {
        blas::gemv_t(n, prev, 1.0, v.col(0), v.ld(), v.col(prev), 0.0,
                     coeff.data());
        blas::gemv_n(n, prev, -1.0, v.col(0), v.ld(), coeff.data(), 1.0,
                     v.col(prev));
        machine.charge_host(sim::Kernel::kGemv,
                            4.0 * static_cast<double>(n) * prev,
                            2.0 * 8.0 * static_cast<double>(n) * prev);
      } else {  // MGS
        for (int l = 0; l < prev; ++l) {
          const double r = blas::dot(n, v.col(l), v.col(prev));
          blas::axpy(n, -r, v.col(l), v.col(prev));
          coeff[static_cast<std::size_t>(l)] = r;
        }
        machine.charge_host(sim::Kernel::kDot,
                            4.0 * static_cast<double>(n) * prev,
                            4.0 * 8.0 * static_cast<double>(n) * prev);
      }
      const double nrm = blas::nrm2(n, v.col(prev));
      machine.charge_host(sim::Kernel::kDot, 2.0 * n, 8.0 * n);
      coeff[static_cast<std::size_t>(prev)] = nrm;
      k = j + 1;
      if (nrm <= 1e-300) {
        ls.append_column(coeff.data());
        break;
      }
      blas::scal(n, 1.0 / nrm, v.col(prev));
      machine.charge_host(sim::Kernel::kScal, 1.0 * n, 16.0 * n);
      const double ls_res = ls.append_column(coeff.data());
      if (ls_res <= target) break;
    }
    const std::vector<double> y = ls.solve();
    blas::gemv_n(n, k, 1.0, v.col(0), v.ld(), y.data(), 1.0, x.data());
    machine.charge_host(sim::Kernel::kGemv, 2.0 * static_cast<double>(n) * k,
                        8.0 * static_cast<double>(n) * k);
    st.iterations += k;
    ++st.restarts;
  }
  st.final_residual = res;

  st.time_total = machine.clock().elapsed() - t0;
  const sim::PhaseTimers& ph = machine.phases();
  st.time_spmv = ph.get("spmv") - phases0.get("spmv");
  st.time_orth = ph.get("orth") - phases0.get("orth");
  st.time_other = st.time_total - st.time_spmv - st.time_orth;
  return st;
}

}  // namespace detail

SolveResult cpu_gmres(sim::Machine& machine, const Problem& problem,
                      const SolverOptions& opts) {
  std::vector<double> x(static_cast<std::size_t>(problem.n()), 0.0);
  SolveResult result;
  result.stats = detail::host_gmres(machine, problem, opts, x);
  result.x = recover_solution(problem, x);
  return result;
}

}  // namespace cagmres::core
