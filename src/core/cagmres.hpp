// Communication-Avoiding GMRES (paper §III, Fig. 2).
//
// CA-GMRES(s, m) replaces the SpMV + Orth pair of s standard GMRES
// iterations with three block kernels:
//   MPK   — generate s new basis vectors with one halo exchange (§IV),
//   BOrth — project the block against the previous basis (one reduction),
//   TSQR  — orthonormalize the block internally (§V).
// The Hessenberg matrix is recovered on the host from the triangular
// bookkeeping (H = R B R^{-1}, see core/hessenberg.hpp) and the usual
// least-squares update closes each restart cycle.
//
// With the Newton basis (the default), the first restart runs standard
// GMRES to harvest Ritz values for the shifts, exactly as in the paper.
#pragma once

#include "core/solver_common.hpp"
#include "sim/machine.hpp"

namespace cagmres::core {

/// Solves the prepared problem with CA-GMRES(opts.s, opts.m).
SolveResult ca_gmres(sim::Machine& machine, const Problem& problem,
                     const SolverOptions& opts);

}  // namespace cagmres::core
