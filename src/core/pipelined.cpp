#include "core/pipelined.hpp"

#include <cmath>

#include "blas/least_squares.hpp"
#include "common/error.hpp"
#include "core/gmres.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "ortho/reduce.hpp"
#include "precond/precond.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::core {

SolveResult pipelined_gmres(sim::Machine& machine, const Problem& problem,
                            const SolverOptions& opts) {
  CAGMRES_REQUIRE(problem.n_devices() == machine.n_devices(),
                  "problem/machine device count mismatch");
  CAGMRES_REQUIRE(opts.m >= 1, "restart length must be positive");
  const int ng = machine.n_devices();
  const int mm = opts.m;
  const std::vector<int> rows = problem.rows_per_device();

  const mpk::MpkPlan plan = mpk::build_mpk_plan(problem.a, problem.offsets, 1);
  mpk::MpkExecutor spmv(plan);
  precond::PrecondHandle* const pc = opts.precond;

  sim::DistMultiVec v(rows, mm + 1);
  sim::DistMultiVec z(rows, mm + 1);  // Z = A * V, the pipelining basis
  sim::DistMultiVec xwork(rows, 2);
  sim::DistVec b(rows);
  b.assign_from_host(problem.b);
  // Declared after the distributed buffers: on exceptional unwind the pool
  // drains before v/z/xwork/b are destroyed.
  sim::DrainGuard drain_guard(machine);

  SolveResult result;
  SolveStats& st = result.stats;
  const double t0 = machine.clock().elapsed();
  const sim::PhaseTimers phases0 = machine.phases();
  const sim::Counters ctr0 = machine.counters();
  // Per-restart tier-traffic trace instants diff against this snapshot.
  sim::Counters ctr_last = ctr0;
  if (machine.codec_config().any_active()) {
    machine.trace_instant("codec:" + machine.codec_config().to_string(),
                          "other");
  }
  // The fused reduction below is hand-rolled (raw d2h per device), so the
  // reduce-class codec is applied here directly: encode on the device,
  // wire-priced ship, decode at the host fold.
  const sim::CodecSpec& rcd = machine.codec(sim::TrafficClass::kReduce);

  // --- numerical health monitor (core/health.hpp) ---
  // The pipelined recurrence is fixed by construction (CGS-style fused
  // update, no orthogonalizer to swap), so its escalation ladder is empty:
  // watchdog trips are logged, and a progress-class trip — with nothing
  // left to try — stops the solve instead of burning the restart budget.
  // With no monitor armed the solver behaves byte-identically to the
  // pre-health code.
  LadderCapabilities caps;  // every rung off
  SolveHealthMonitor hm(machine, opts.health, caps, t0);
  const bool health_on = hm.armed();
  double prev_recurrence = -1.0;  // previous cycle's LS residual estimate
  bool prev_claimed = false;      // ... and whether it met the tolerance
  auto respond = [&](HealthEventKind cause, int restart_no) {
    if (!opts.health.escalate) return;
    const double value = hm.events().empty() ? 0.0 : hm.events().back().value;
    hm.escalate(cause, value, restart_no, st.iterations,
                [](EscalationStep) { return false; });
    if (cause == HealthEventKind::kStagnation ||
        cause == HealthEventKind::kDivergence ||
        cause == HealthEventKind::kFalseConvergence) {
      CAGMRES_REQUIRE_CODE(
          false, ErrorCode::kDeadlineExceeded,
          "escalation ladder exhausted while the solve was not progressing");
    }
  };

  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(ng),
      std::vector<double>(static_cast<std::size_t>(mm) + 2, 0.0));
  std::vector<double> coeff(static_cast<std::size_t>(mm) + 2, 0.0);

  // Right preconditioning: factor once up front (the pipelined solver has
  // no repartition path, so the handle never changes during the solve).
  // The pipelining basis becomes Z = (A M^{-1}) V; residuals and x stay in
  // the true space.
  if (pc != nullptr && !pc->matches(problem.offsets)) {
    pc->build(machine, problem.a, problem.offsets);
  }

  double res = 0.0;
  for (int restart = 0; restart < opts.max_restarts; ++restart) {
    res = detail::compute_residual(machine, spmv, b, xwork, v, 0,
                                   restart == 0);
    if (restart == 0) {
      st.initial_residual = res;
      if (res == 0.0) {
        st.converged = true;
        break;
      }
    }
    st.residual_history.push_back(res);
    const bool unconverged = res > opts.tol * st.initial_residual;
    if (health_on) {
      // False-convergence guard: the explicit residual just computed vs
      // the previous cycle's recurrence estimate.
      const HealthEventKind gap_trip = hm.check_residual_gap(
          res, prev_recurrence, prev_claimed, unconverged, restart,
          st.iterations);
      if (gap_trip != HealthEventKind::kNone && unconverged) {
        respond(gap_trip, restart);
      }
    }
    if (!unconverged) {
      st.converged = true;
      break;
    }
    if (health_on) {
      const HealthEventKind prog_trip =
          hm.check_progress(res, restart, st.iterations);
      if (prog_trip != HealthEventKind::kNone) respond(prog_trip, restart);
      hm.check_budget(st.iterations, restart);
    }
    for (int d = 0; d < ng; ++d) {
      sim::dev_scal(machine, d, v.local_rows(d), 1.0 / res, v.col(d, 0));
    }
    // Prime the pipeline: z_0 = A v_0 (A M^{-1} v_0 preconditioned).
    if (pc != nullptr) {
      sim::DistMultiVec& stage = spmv.stage(2);
      pc->apply(machine, v, 0, stage, 0);
      spmv.spmv(machine, stage, 0, z, 0);
    } else {
      spmv.spmv(machine, v, 0, z, 0);
    }

    blas::GivensLS ls(mm, res);
    int k = 0;
    double cycle_ls_res = -1.0;
    for (int j = 0; j < mm; ++j) {
      sim::PhaseScope phase(machine, "orth");
      const int prev = j + 1;  // columns v_0..v_j are orthonormal

      // (1) Post the fused reduction for z_j: projections V^T z_j plus
      //     ||z_j||^2, one D2H message per device, and record one event per
      //     message — the reduction's arrival, before the lookahead SpMV is
      //     queued behind it. (Barrier mode keeps the hand-rolled timestamp
      //     capture this event API generalizes; both charge identically.)
      std::vector<sim::Event> red_ev(static_cast<std::size_t>(ng));
      for (int d = 0; d < ng; ++d) {
        auto& p = partial[static_cast<std::size_t>(d)];
        sim::dev_gemv_t(machine, d, v.local_rows(d), prev, v.col(d, 0),
                        v.local(d).ld(), z.col(d, j), p.data());
        p[static_cast<std::size_t>(prev)] = sim::dev_dot(
            machine, d, v.local_rows(d), z.col(d, j), z.col(d, j));
        machine.charge_codec(d, rcd, prev + 1);
        machine.d2h(d, rcd.wire_bytes(prev + 1), 8.0 * (prev + 1));
        if (machine.event_sync()) red_ev[static_cast<std::size_t>(d)] =
            machine.record_event(d);
      }
      double t_red = machine.clock().host_time();
      if (!machine.event_sync()) {
        for (int d = 0; d < ng; ++d) {
          t_red = std::max(t_red, machine.clock().device_time(d));
        }
      }

      // (2) Lookahead product w = A z_j (A M^{-1} z_j preconditioned),
      //     overlapping the reduction wait. The trisolve is device-local,
      //     so it overlaps the in-flight reduction messages the same way.
      if (j + 1 <= mm) {
        if (pc != nullptr) {
          sim::DistMultiVec& stage = spmv.stage(2);
          pc->apply(machine, z, j, stage, 0);
          spmv.spmv(machine, stage, 0, z, j + 1);
        } else {
          spmv.spmv(machine, z, j, z, j + 1);
        }
      }

      // (3) The host waits only for the reduction messages, not the SpMV.
      //     In event mode the waits also cover, wall-clock, exactly the
      //     closures that filled partial[] — the host sum below no longer
      //     leans on the lookahead exchange having drained the machine.
      {
        sim::PhaseScope phase2(machine, "orth");
        if (machine.event_sync()) {
          for (int d = 0; d < ng; ++d) {
            machine.host_wait_event(red_ev[static_cast<std::size_t>(d)]);
          }
        } else {
          machine.clock().host_wait_time(t_red);
        }
        machine.charge_host(sim::Kernel::kAxpy,
                            static_cast<double>(prev + 1) * ng,
                            16.0 * (prev + 1) * ng);
      }
      // Fold the decoded wire images of the partials (partial[] is fully
      // rewritten next iteration, so quantizing in place is safe).
      if (rcd.active()) {
        for (int d = 0; d < ng; ++d) {
          rcd.roundtrip(partial[static_cast<std::size_t>(d)].data(), prev + 1);
        }
      }
      for (int i = 0; i <= prev; ++i) {
        coeff[static_cast<std::size_t>(i)] = 0.0;
        for (int d = 0; d < ng; ++d) {
          coeff[static_cast<std::size_t>(i)] +=
              partial[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
        }
      }
      // Broadcast before reading the coefficients: it may quantize them in
      // place, and the recurrence below must use the values the devices
      // subtract (charge order unchanged — the fold is pure host work).
      ortho::detail::broadcast_charge(machine, prev + 1, coeff.data());
      const double n2 = coeff[static_cast<std::size_t>(prev)];
      double proj2 = 0.0;
      for (int i = 0; i < prev; ++i) {
        proj2 += coeff[static_cast<std::size_t>(i)] * coeff[static_cast<std::size_t>(i)];
      }
      double nu2 = n2 - proj2;

      // (4) Update BOTH bases by linearity (coefficients broadcast above):
      //     v_{j+1} = (z_j - V a)/nu,  z_{j+1} = (w - Z a)/nu.
      for (int d = 0; d < ng; ++d) {
        sim::dev_copy(machine, d, v.local_rows(d), z.col(d, j),
                      v.col(d, prev));
        sim::dev_gemv_n_sub(machine, d, v.local_rows(d), prev, v.col(d, 0),
                            v.local(d).ld(), coeff.data(), v.col(d, prev));
        sim::dev_gemv_n_sub(machine, d, v.local_rows(d), prev, z.col(d, 0),
                            z.local(d).ld(), coeff.data(), z.col(d, prev));
      }
      double nu;
      if (nu2 > 1e-8 * n2 && nu2 > 0.0) {
        nu = std::sqrt(nu2);
      } else {
        // Cancellation: recompute ||v_{j+1}|| explicitly (extra reduction;
        // the pipelined recurrence inherits CGS-grade stability).
        for (int d = 0; d < ng; ++d) {
          partial[static_cast<std::size_t>(d)][0] =
              sim::dev_dot(machine, d, v.local_rows(d), v.col(d, prev),
                           v.col(d, prev));
        }
        double explicit_n2 = 0.0;
        ortho::detail::reduce_to_host(machine, partial, 1, &explicit_n2);
        ortho::detail::broadcast_charge(machine, 1, &explicit_n2);
        nu = std::sqrt(std::max(explicit_n2, 0.0));
      }
      if (nu <= 1e-300) {  // happy breakdown: the space is invariant
        k = j;
        break;
      }
      for (int d = 0; d < ng; ++d) {
        sim::dev_scal(machine, d, v.local_rows(d), 1.0 / nu, v.col(d, prev));
        sim::dev_scal(machine, d, v.local_rows(d), 1.0 / nu, z.col(d, prev));
      }

      // (5) Least squares bookkeeping (H column = [a; nu]).
      coeff[static_cast<std::size_t>(prev)] = nu;
      const double ls_res = ls.append_column(coeff.data());
      cycle_ls_res = ls_res;
      k = j + 1;
      st.iterations += 1;
      if (ls_res <= opts.tol * st.initial_residual) break;
    }
    machine.charge_host(sim::Kernel::kSmall, 3.0 * static_cast<double>(k) * k,
                        0.0);
    if (k > 0) {
      detail::update_solution(machine, v, k, ls.solve(), xwork, pc,
                              pc != nullptr ? &spmv.stage(2) : nullptr);
    }
    prev_recurrence = k > 0 ? cycle_ls_res : -1.0;
    prev_claimed =
        k > 0 && cycle_ls_res >= 0.0 &&
        cycle_ls_res <= opts.tol * st.initial_residual;
    ++st.restarts;
    if (machine.tracing()) {
      trace_tier_traffic(machine, ctr_last);
      ctr_last = machine.counters();
    }
  }
  st.final_residual = res;
  st.health_events = hm.take_events();
  st.recurrence_residual = prev_recurrence;
  st.residual_gap = hm.residual_gap_last();
  st.residual_gap_max = hm.residual_gap_max();

  st.time_total = machine.clock().elapsed() - t0;
  st.traffic = tier_traffic(ctr0, machine.counters());
  const sim::PhaseTimers& ph = machine.phases();
  st.time_spmv = ph.get("spmv") - phases0.get("spmv");
  st.time_orth = ph.get("orth") - phases0.get("orth");
  st.time_precond = ph.get("precond") - phases0.get("precond") +
                    ph.get("precond_setup") - phases0.get("precond_setup");
  st.time_other =
      st.time_total - st.time_spmv - st.time_orth - st.time_precond;

  machine.sync();  // final gather reads xwork on the host
  std::vector<double> x_prepared;
  x_prepared.reserve(static_cast<std::size_t>(problem.n()));
  for (int d = 0; d < ng; ++d) {
    const double* p = xwork.col(d, 0);
    x_prepared.insert(x_prepared.end(), p, p + xwork.local_rows(d));
  }
  result.x = recover_solution(problem, x_prepared);
  return result;
}

}  // namespace cagmres::core
