// CPU reference GMRES (the threaded-MKL baseline of the paper's Fig. 3).
//
// Runs the same restarted Arnoldi-GMRES entirely on the host timeline:
// CSR SpMV and BLAS-1/2 orthogonalization charged at the PerfModel's
// cpu_* rates, no device transfers. Numerics are identical to the device
// solver up to reduction order.
#pragma once

#include "core/solver_common.hpp"
#include "sim/machine.hpp"

namespace cagmres::core {

/// Solves the prepared problem with host-only GMRES(opts.m).
SolveResult cpu_gmres(sim::Machine& machine, const Problem& problem,
                      const SolverOptions& opts);

namespace detail {

/// The host-only restarted-GMRES core on the PREPARED system, reusable as
/// the graceful-degradation floor of the device solvers: continues from the
/// initial guess in `x` (prepared space, updated in place) when `x_nonzero`
/// is set, and targets the absolute residual `abs_tol` when positive
/// (otherwise opts.tol relative to this call's own initial residual).
/// Charges host time only — no device kernels or transfers — so it makes
/// progress on a machine whose devices keep faulting.
SolveStats host_gmres(sim::Machine& machine, const Problem& problem,
                      const SolverOptions& opts, std::vector<double>& x,
                      bool x_nonzero = false, double abs_tol = -1.0);

}  // namespace detail

}  // namespace cagmres::core
