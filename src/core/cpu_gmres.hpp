// CPU reference GMRES (the threaded-MKL baseline of the paper's Fig. 3).
//
// Runs the same restarted Arnoldi-GMRES entirely on the host timeline:
// CSR SpMV and BLAS-1/2 orthogonalization charged at the PerfModel's
// cpu_* rates, no device transfers. Numerics are identical to the device
// solver up to reduction order.
#pragma once

#include "core/solver_common.hpp"
#include "sim/machine.hpp"

namespace cagmres::core {

/// Solves the prepared problem with host-only GMRES(opts.m).
SolveResult cpu_gmres(sim::Machine& machine, const Problem& problem,
                      const SolverOptions& opts);

}  // namespace cagmres::core
