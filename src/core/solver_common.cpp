#include "core/solver_common.hpp"

#include <cmath>
#include <cstdio>

#include "blas/blas1.hpp"
#include "common/error.hpp"

namespace cagmres::core {

Basis parse_basis(const std::string& name) {
  if (name == "monomial") return Basis::kMonomial;
  if (name == "newton") return Basis::kNewton;
  throw Error("unknown basis: " + name + " (expected monomial|newton)");
}

std::string to_string(Basis b) {
  return b == Basis::kMonomial ? "monomial" : "newton";
}

TierTraffic tier_traffic(const sim::Counters& before,
                         const sim::Counters& after) {
  TierTraffic t;
  t.peer_bytes = after.peer_bytes - before.peer_bytes;
  t.peer_msgs = after.peer_msgs - before.peer_msgs;
  t.pcie_bytes = (after.d2h_bytes + after.h2d_bytes) -
                 (before.d2h_bytes + before.h2d_bytes);
  t.pcie_msgs =
      (after.d2h_msgs + after.h2d_msgs) - (before.d2h_msgs + before.h2d_msgs);
  t.net_bytes = after.net_bytes - before.net_bytes;
  t.net_msgs = after.net_msgs - before.net_msgs;
  t.peer_logical_bytes = after.peer_logical_bytes - before.peer_logical_bytes;
  t.pcie_logical_bytes =
      (after.d2h_logical_bytes + after.h2d_logical_bytes) -
      (before.d2h_logical_bytes + before.h2d_logical_bytes);
  t.net_logical_bytes = after.net_logical_bytes - before.net_logical_bytes;
  return t;
}

void trace_tier_traffic(sim::Machine& machine, const sim::Counters& before) {
  if (!machine.tracing()) return;
  const TierTraffic t = tier_traffic(before, machine.counters());
  const bool compressed = t.compressed();
  const auto fmt = [compressed](double bytes, std::int64_t msgs,
                                double ratio) {
    char buf[80];
    if (compressed) {
      std::snprintf(buf, sizeof(buf), "%.1fKB/%lld(x%.2f)", bytes / 1024.0,
                    static_cast<long long>(msgs), ratio);
    } else {
      std::snprintf(buf, sizeof(buf), "%.1fKB/%lld", bytes / 1024.0,
                    static_cast<long long>(msgs));
    }
    return std::string(buf);
  };
  machine.trace_instant(
      "traffic:peer=" + fmt(t.peer_bytes, t.peer_msgs, t.peer_ratio()) +
          ":pcie=" + fmt(t.pcie_bytes, t.pcie_msgs, t.pcie_ratio()) +
          ":net=" + fmt(t.net_bytes, t.net_msgs, t.net_ratio()),
      "other");
}

std::vector<int> Problem::rows_per_device() const {
  std::vector<int> rows;
  rows.reserve(offsets.size() - 1);
  for (std::size_t d = 0; d + 1 < offsets.size(); ++d) {
    rows.push_back(offsets[d + 1] - offsets[d]);
  }
  return rows;
}

Problem make_problem(const sparse::CsrMatrix& a, const std::vector<double>& b,
                     int n_devices, graph::Ordering ordering, bool balance,
                     std::uint64_t seed, int n_nodes) {
  CAGMRES_REQUIRE(a.n_rows == a.n_cols, "need a square system");
  CAGMRES_REQUIRE(static_cast<int>(b.size()) == a.n_rows, "rhs size mismatch");
  Problem p;
  const graph::Partition part =
      graph::make_partition(a, n_devices, ordering, seed, n_nodes);
  p.perm = part.perm;
  p.offsets = part.offsets;
  p.a = sparse::permute_symmetric(a, p.perm);
  p.b.resize(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    p.b[i] = b[static_cast<std::size_t>(p.perm[i])];
  }
  p.balanced = balance;
  if (balance) {
    p.scaling = sparse::balance(p.a);
    sparse::scale_rhs(p.scaling, p.b);
  } else {
    p.scaling.row.assign(b.size(), 1.0);
    p.scaling.col.assign(b.size(), 1.0);
  }
  p.b_norm = blas::nrm2(static_cast<int>(p.b.size()), p.b.data());
  return p;
}

Problem repartition_problem(const Problem& p, int n_devices) {
  CAGMRES_REQUIRE(n_devices >= 1, "need at least one device");
  Problem q = p;
  const graph::Partition part =
      graph::make_partition(q.a, n_devices, graph::Ordering::kNatural);
  q.offsets = part.offsets;
  return q;
}

std::vector<double> recover_solution(const Problem& p,
                                     const std::vector<double>& x_prepared) {
  CAGMRES_REQUIRE(x_prepared.size() == p.perm.size(), "solution size mismatch");
  std::vector<double> x(x_prepared.size());
  for (std::size_t i = 0; i < x_prepared.size(); ++i) {
    x[static_cast<std::size_t>(p.perm[i])] = p.scaling.col[i] * x_prepared[i];
  }
  return x;
}

double true_residual(const sparse::CsrMatrix& a_orig,
                     const std::vector<double>& b_orig,
                     const std::vector<double>& x_orig) {
  std::vector<double> ax(b_orig.size(), 0.0);
  sparse::spmv(a_orig, x_orig.data(), ax.data());
  double acc = 0.0;
  for (std::size_t i = 0; i < b_orig.size(); ++i) {
    const double r = b_orig[i] - ax[i];
    acc += r * r;
  }
  return std::sqrt(acc);
}

}  // namespace cagmres::core
