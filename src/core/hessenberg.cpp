#include "core/hessenberg.hpp"

#include "blas/blas3.hpp"
#include "common/error.hpp"

namespace cagmres::core {

blas::DMat build_change_of_basis(const Shifts& col_shifts) {
  const int m = col_shifts.size();
  CAGMRES_REQUIRE(m >= 1, "empty shift record");
  blas::DMat b(m + 1, m);
  for (int j = 0; j < m; ++j) {
    b(j, j) = col_shifts.re[static_cast<std::size_t>(j)];
    b(j + 1, j) = 1.0;
    // Second member of a conjugate pair: the MPK recursion added
    // +beta^2 * g_{j-1}, i.e. A g_j = g_{j+1} + alpha g_j - beta^2 g_{j-1}.
    if (col_shifts.im[static_cast<std::size_t>(j)] < 0.0) {
      CAGMRES_REQUIRE(j >= 1, "pair second member at column 0");
      const double beta = col_shifts.im[static_cast<std::size_t>(j) - 1];
      b(j - 1, j) = -beta * beta;
    }
  }
  return b;
}

blas::DMat hessenberg_from_basis(const blas::DMat& r, const blas::DMat& b) {
  const int m = b.cols();
  CAGMRES_REQUIRE(r.rows() == m + 1 && r.cols() == m + 1,
                  "R must be (m+1) x (m+1)");
  CAGMRES_REQUIRE(b.rows() == m + 1, "B must be (m+1) x m");

  // X := B * R(1:m,1:m)^{-1} via a right triangular solve on B's columns.
  blas::DMat x = b;
  // Build the leading m x m block of R contiguously for the solve.
  blas::DMat r_mm(m, m);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j; ++i) r_mm(i, j) = r(i, j);
  }
  blas::trsm_right_upper(m + 1, m, r_mm.data(), r_mm.ld(), x.data(), x.ld());

  // H := R * X.
  blas::DMat h(m + 1, m);
  blas::gemm(blas::Trans::N, blas::Trans::N, m + 1, m, m + 1, 1.0, r.data(),
             r.ld(), x.data(), x.ld(), 0.0, h.data(), h.ld());

  // Exact zeros below the first subdiagonal; remove roundoff noise.
  for (int j = 0; j < m; ++j) {
    for (int i = j + 2; i <= m; ++i) h(i, j) = 0.0;
  }
  return h;
}

blas::DMat hessenberg_blocked(const blas::DMat& r_hat,
                              const std::vector<char>& is_block_start,
                              const Shifts& col_shifts) {
  const int m = col_shifts.size();
  CAGMRES_REQUIRE(r_hat.rows() == m + 1 && r_hat.cols() == m + 1,
                  "r_hat must be (m+1) x (m+1)");
  CAGMRES_REQUIRE(static_cast<int>(is_block_start.size()) >= m,
                  "is_block_start too short");

  // R-tilde: the coefficients of the vectors the recursion actually
  // multiplied (q_j at block starts, g_j elsewhere).
  blas::DMat rt = r_hat;
  for (int j = 0; j < m; ++j) {
    if (is_block_start[static_cast<std::size_t>(j)]) {
      for (int i = 0; i <= m; ++i) rt(i, j) = (i == j) ? 1.0 : 0.0;
    }
  }

  // M(:,j) = r_hat(:,j+1) + theta_j Rt(:,j) - [pair] beta^2 Rt(:,j-1).
  blas::DMat mmat(m + 1, m);
  for (int j = 0; j < m; ++j) {
    const double theta = col_shifts.re[static_cast<std::size_t>(j)];
    const bool pair_second = col_shifts.im[static_cast<std::size_t>(j)] < 0.0;
    for (int i = 0; i <= m; ++i) {
      double v = r_hat(i, j + 1) + theta * rt(i, j);
      if (pair_second) {
        CAGMRES_ASSERT(j >= 1, "pair second member at column 0");
        const double beta = col_shifts.im[static_cast<std::size_t>(j) - 1];
        v -= beta * beta * rt(i, j - 1);
      }
      mmat(i, j) = v;
    }
  }

  // H = M * Rt(1:m,1:m)^{-1}.
  blas::DMat rt_mm(m, m);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j; ++i) rt_mm(i, j) = rt(i, j);
  }
  blas::trsm_right_upper(m + 1, m, rt_mm.data(), rt_mm.ld(), mmat.data(),
                         mmat.ld());
  for (int j = 0; j < m; ++j) {
    for (int i = j + 2; i <= m; ++i) mmat(i, j) = 0.0;
  }
  return mmat;
}

}  // namespace cagmres::core
