#include "core/health.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "ortho/metrics.hpp"

namespace cagmres::core {

std::string to_string(EscalationStep step) {
  switch (step) {
    case EscalationStep::kNone:
      return "none";
    case EscalationStep::kForceReorth:
      return "force_reorth";
    case EscalationStep::kShrinkS:
      return "shrink_s";
    case EscalationStep::kRebuildShifts:
      return "rebuild_shifts";
    case EscalationStep::kSwitchTsqr:
      return "switch_tsqr";
    case EscalationStep::kSwitchOrth:
      return "switch_orth";
    case EscalationStep::kFallbackGmres:
      return "fallback_gmres";
  }
  return "?";
}

std::string to_string(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kNone:
      return "none";
    case HealthEventKind::kConditionTrip:
      return "condition";
    case HealthEventKind::kFalseConvergence:
      return "false_convergence";
    case HealthEventKind::kResidualGap:
      return "residual_gap";
    case HealthEventKind::kStagnation:
      return "stagnation";
    case HealthEventKind::kDivergence:
      return "divergence";
    case HealthEventKind::kEscalation:
      return "escalation";
    case HealthEventKind::kLadderExhausted:
      return "ladder_exhausted";
  }
  return "?";
}

EscalationPolicy::EscalationPolicy(const LadderCapabilities& caps) {
  if (caps.force_reorth) rungs_.push_back(EscalationStep::kForceReorth);
  if (caps.shrink_s) rungs_.push_back(EscalationStep::kShrinkS);
  if (caps.rebuild_shifts) rungs_.push_back(EscalationStep::kRebuildShifts);
  for (int i = 0; i < caps.tsqr_switches; ++i) {
    rungs_.push_back(EscalationStep::kSwitchTsqr);
  }
  if (caps.switch_orth) rungs_.push_back(EscalationStep::kSwitchOrth);
  if (caps.fallback_gmres) rungs_.push_back(EscalationStep::kFallbackGmres);
}

EscalationStep EscalationPolicy::next() {
  if (cursor_ >= rungs_.size()) return EscalationStep::kNone;
  return rungs_[cursor_++];
}

SolveHealthMonitor::SolveHealthMonitor(sim::Machine& machine,
                                       const HealthOptions& opts,
                                       const LadderCapabilities& caps,
                                       double t_start)
    : m_(machine), opts_(opts), policy_(caps), t_start_(t_start) {
  CAGMRES_REQUIRE(opts.stagnation_window >= 1, "bad stagnation window");
  CAGMRES_REQUIRE(opts.kappa_limit > 0.0 && opts.q_kappa_limit > 0.0,
                  "condition limits must be positive");
  CAGMRES_REQUIRE(opts.residual_gap_limit > 1.0,
                  "residual gap limit must exceed 1");
  CAGMRES_REQUIRE(opts.condition_sample_every >= 0, "bad sample cadence");
}

HealthEvent& SolveHealthMonitor::log(HealthEventKind kind, double value,
                                     int restart, int iteration,
                                     std::string detail) {
  HealthEvent e;
  e.kind = kind;
  e.time = m_.clock().elapsed();
  e.restart = restart;
  e.iteration = iteration;
  e.value = value;
  e.detail = std::move(detail);
  m_.trace_instant("health:" + to_string(kind), "health");
  events_.push_back(std::move(e));
  return events_.back();
}

HealthEventKind SolveHealthMonitor::check_block(const blas::DMat& r_block,
                                                const sim::DistMultiVec& v,
                                                int c0, int c1, int restart,
                                                int iteration) {
  if (!opts_.monitor_condition) return HealthEventKind::kNone;
  const std::int64_t block = blocks_seen_++;

  // Free estimate: the R diagonal of V = Q R bounds kappa(V) from below by
  // max|r_ii|/min|r_ii| (R inherits V's conditioning while Q stays ~1).
  double dmax = 0.0;
  double dmin = std::numeric_limits<double>::infinity();
  bool finite = true;
  const int k = std::min(r_block.rows(), r_block.cols());
  for (int i = 0; i < k; ++i) {
    const double d = std::abs(r_block(i, i));
    if (!std::isfinite(d)) finite = false;
    dmax = std::max(dmax, d);
    dmin = std::min(dmin, d);
  }
  const double est = (!finite || dmin <= 0.0)
                         ? std::numeric_limits<double>::infinity()
                         : dmax / dmin;

  // Charged sample on the cadence: kappa of the *orthonormalized* block —
  // an honest measurement of whether the orthogonalizer actually worked.
  // In prefix mode the charged sampling moves to check_restart_prefix (one
  // whole-basis sweep per cycle instead of per-block newest-block samples).
  double q_kappa = 0.0;
  const bool sampled = !opts_.condition_sample_prefix &&
                       opts_.condition_sample_every > 0 &&
                       block % opts_.condition_sample_every == 0;
  if (sampled) q_kappa = ortho::condition_number_charged(m_, v, c0, c1);

  if (block < condition_mute_until_block_) return HealthEventKind::kNone;
  if (est > opts_.kappa_limit) {
    std::ostringstream os;
    os << "R-diagonal kappa estimate " << est << " > " << opts_.kappa_limit;
    log(HealthEventKind::kConditionTrip, est, restart, iteration, os.str());
    return HealthEventKind::kConditionTrip;
  }
  if (sampled && q_kappa > opts_.q_kappa_limit) {
    std::ostringstream os;
    os << "orthonormalized-block kappa " << q_kappa << " > "
       << opts_.q_kappa_limit;
    log(HealthEventKind::kConditionTrip, q_kappa, restart, iteration,
        os.str());
    return HealthEventKind::kConditionTrip;
  }
  return HealthEventKind::kNone;
}

HealthEventKind SolveHealthMonitor::check_restart_prefix(
    const sim::DistMultiVec& v, int cols, int restart, int iteration) {
  if (!opts_.monitor_condition || !opts_.condition_sample_prefix ||
      cols < 2) {
    return HealthEventKind::kNone;
  }
  const double q_kappa = ortho::condition_number_charged(m_, v, 0, cols);
  if (blocks_seen_ < condition_mute_until_block_) {
    return HealthEventKind::kNone;
  }
  if (q_kappa > opts_.q_kappa_limit) {
    std::ostringstream os;
    os << "basis-prefix kappa over " << cols << " columns: " << q_kappa
       << " > " << opts_.q_kappa_limit;
    log(HealthEventKind::kConditionTrip, q_kappa, restart, iteration,
        os.str());
    return HealthEventKind::kConditionTrip;
  }
  return HealthEventKind::kNone;
}

HealthEventKind SolveHealthMonitor::check_residual_gap(
    double true_res, double recurrence_res, bool claimed_converged,
    bool still_unconverged, int restart, int iteration) {
  if (!opts_.monitor_residual_gap || recurrence_res < 0.0) {
    return HealthEventKind::kNone;
  }
  const double gap =
      true_res / std::max(recurrence_res, 1e-300 * (1.0 + true_res));
  gap_last_ = gap;
  gap_max_ = std::max(gap_max_, gap);
  if (restart < progress_mute_until_restart_) return HealthEventKind::kNone;

  if (claimed_converged && still_unconverged) {
    std::ostringstream os;
    os << "recurrence residual " << recurrence_res
       << " met the tolerance but the true residual is " << true_res
       << " (gap " << gap << "x)";
    log(HealthEventKind::kFalseConvergence, gap, restart, iteration,
        os.str());
    return HealthEventKind::kFalseConvergence;
  }
  if (gap > opts_.residual_gap_limit) {
    std::ostringstream os;
    os << "true/recurrence residual gap " << gap << " > "
       << opts_.residual_gap_limit;
    log(HealthEventKind::kResidualGap, gap, restart, iteration, os.str());
    return HealthEventKind::kResidualGap;
  }
  return HealthEventKind::kNone;
}

HealthEventKind SolveHealthMonitor::check_progress(double res, int restart,
                                                   int iteration) {
  if (!opts_.monitor_stagnation) return HealthEventKind::kNone;
  residuals_.push_back(res);
  if (!have_best_ || res < best_res_) {
    best_res_ = res;
    have_best_ = true;
  }
  if (restart < progress_mute_until_restart_) return HealthEventKind::kNone;

  if (best_res_ > 0.0 && res > opts_.divergence_factor * best_res_) {
    std::ostringstream os;
    os << "residual " << res << " exceeds best-so-far " << best_res_
       << " by more than " << opts_.divergence_factor << "x";
    log(HealthEventKind::kDivergence, res / best_res_, restart, iteration,
        os.str());
    return HealthEventKind::kDivergence;
  }
  const std::size_t w = static_cast<std::size_t>(opts_.stagnation_window);
  if (residuals_.size() > w) {
    const double old = residuals_[residuals_.size() - 1 - w];
    if (res > opts_.stagnation_reduction * old) {
      std::ostringstream os;
      os << "residual shrank only " << (old > 0.0 ? res / old : 1.0)
         << "x over the last " << opts_.stagnation_window << " restarts";
      log(HealthEventKind::kStagnation, old > 0.0 ? res / old : 1.0, restart,
          iteration, os.str());
      return HealthEventKind::kStagnation;
    }
  }
  return HealthEventKind::kNone;
}

void SolveHealthMonitor::check_budget(std::int64_t iterations, int restart) {
  // On either budget throw, drain before unwinding the solver frame: host
  // workers may still reference solver-local buffers the unwind destroys.
  sim::UnwindDrainGuard unwind_guard(m_);
  if (opts_.max_solve_seconds > 0.0) {
    const double spent = m_.clock().elapsed() - t_start_;
    if (spent > opts_.max_solve_seconds) {
      m_.trace_instant("health:deadline", "health");
      std::ostringstream os;
      os << "simulated-time budget exceeded: " << spent << "s > "
         << opts_.max_solve_seconds << "s at restart " << restart;
      throw Error(os.str(), ErrorCode::kDeadlineExceeded);
    }
  }
  if (opts_.max_iterations > 0 && iterations > opts_.max_iterations) {
    m_.trace_instant("health:deadline", "health");
    std::ostringstream os;
    os << "iteration budget exceeded: " << iterations << " > "
       << opts_.max_iterations << " basis vectors at restart " << restart;
    throw Error(os.str(), ErrorCode::kDeadlineExceeded);
  }
}

EscalationStep SolveHealthMonitor::escalate(
    HealthEventKind cause, double value, int restart, int iteration,
    const std::function<bool(EscalationStep)>& applicable) {
  EscalationStep step = policy_.next();
  // Burn rungs the solver's current state makes useless (e.g. shrink_s at
  // the floor, switch_tsqr already at CAQR): strictly in order, so the walk
  // stays deterministic.
  while (step != EscalationStep::kNone && !applicable(step)) {
    step = policy_.next();
  }
  // Give whatever we just changed a window to show progress before the
  // watchdogs may trip again; condition trips get one sampling period.
  progress_mute_until_restart_ = restart + opts_.stagnation_window;
  condition_mute_until_block_ =
      blocks_seen_ + std::max(1, opts_.condition_sample_every);
  if (step == EscalationStep::kNone) {
    log(HealthEventKind::kLadderExhausted, value, restart, iteration,
        "no applicable rung left for " + to_string(cause) + " trip");
    return step;
  }
  HealthEvent& e = log(HealthEventKind::kEscalation, value, restart,
                       iteration, "ladder response to " + to_string(cause));
  e.action = step;
  m_.trace_instant("health:escalate:" + to_string(step), "health");
  return step;
}

}  // namespace cagmres::core
