// Newton basis shifts for CA-GMRES (paper §IV-A last paragraph).
//
// The monomial basis [v, Av, A^2 v, ...] becomes numerically dependent at a
// rate of |lambda_2/lambda_1| per power; CA-GMRES instead generates
// v_{k+1} = (A - theta_k I) v_k with the theta_k chosen as Ritz values of A
// (eigenvalues of the first restart's Hessenberg matrix), ordered by the
// Leja rule so consecutive shifts stay far apart. Complex conjugate pairs
// are kept adjacent and applied in real arithmetic (Hoemmen §7.3.2).
#pragma once

#include <complex>
#include <vector>

namespace cagmres::core {

/// A shift sequence in real storage: entry k is real when im[k] == 0;
/// a conjugate pair occupies slots (k, k+1) with im[k] > 0 and
/// im[k+1] = -im[k].
struct Shifts {
  std::vector<double> re;
  std::vector<double> im;

  int size() const { return static_cast<int>(re.size()); }
  bool empty() const { return re.empty(); }
};

/// Leja-orders the given values: the first is the largest in magnitude, and
/// each subsequent value maximizes the product of distances to all already
/// chosen ones (log-sum form to avoid overflow). Conjugate pairs (detected
/// by matching conjugates in the input) are emitted adjacently.
Shifts leja_order(const std::vector<std::complex<double>>& values);

/// Builds s Newton shifts from the Ritz values of a first-restart Hessenberg
/// matrix: Leja-orders all Ritz values and takes a prefix of length s,
/// demoting a complex pair that would straddle the cutoff to its real part.
Shifts newton_shifts(const std::vector<std::complex<double>>& ritz, int s);

/// Clips the shift sequence to a block of `steps` entries for one MPK call:
/// returns a copy of the first `steps` shifts where a pair that would
/// straddle the block end is demoted to a real shift (any shift still
/// produces a valid Krylov basis — only conditioning is affected).
Shifts block_shifts(const Shifts& shifts, int steps);

/// True when the sequence is a valid real-storage shift train: every entry
/// with im != 0 belongs to an adjacent (+beta, -beta) pair with matching
/// real parts. newton_shifts and block_shifts only ever produce consistent
/// trains; the adaptive-s controller and the escalation ladder rely on this
/// when they shrink the working block size mid-solve.
bool shifts_consistent(const Shifts& shifts);

}  // namespace cagmres::core
