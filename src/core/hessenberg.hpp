// Hessenberg matrix recovery for CA-GMRES (DESIGN.md §5).
//
// The generated basis G = [g_1 .. g_{m+1}] satisfies A G(:,1:m) = G B with B
// the (m+1) x m change-of-basis matrix (Newton shifts on the diagonal, ones
// on the subdiagonal, and a -beta^2 superdiagonal entry per complex pair).
// BOrth+TSQR bookkeeping gives G = Q R with R upper triangular, hence
//   A Q(:,1:m) = Q * H,  H = R B R(1:m,1:m)^{-1},
// which is upper Hessenberg and feeds the usual GMRES least-squares update.
#pragma once

#include "blas/matrix.hpp"
#include "core/shifts.hpp"

namespace cagmres::core {

/// Builds the (m+1) x m change-of-basis matrix B from the per-column shift
/// record: col_shifts holds the shift used to generate column j+1 from
/// column j, for j = 0..m-1 (all zeros = monomial basis).
blas::DMat build_change_of_basis(const Shifts& col_shifts);

/// Computes H = R B R(1:m,1:m)^{-1} for the (m+1) x (m+1) triangular factor
/// R and (m+1) x m change-of-basis B. Entries below the first subdiagonal
/// (exact zeros in exact arithmetic) are cleaned to zero.
/// Valid when the whole basis was generated as ONE chain (a single block).
blas::DMat hessenberg_from_basis(const blas::DMat& r, const blas::DMat& b);

/// Blocked CA-GMRES Hessenberg recovery. Each block's recursion restarts
/// from the ORTHONORMALIZED vector q_j, not the generated g_j, so the
/// plain R B R^{-1} identity breaks at block boundaries. Let r_hat hold the
/// coefficients of every generated vector (column j = g_j in the Q basis,
/// upper triangular, g_0 = q_0 = e_0), and let R-tilde be r_hat with column
/// j replaced by e_j wherever is_block_start[j] (the recursion input was
/// q_j there). Then A Q(:,1:m) = Q M R-tilde(1:m,1:m)^{-1} with
///   M(:,j) = r_hat(:,j+1) + theta_j Rt(:,j) - [pair] beta^2 Rt(:,j-1),
/// which this function assembles and returns as the (m+1) x m H.
/// is_block_start must have m+1 entries (entry m is ignored).
blas::DMat hessenberg_blocked(const blas::DMat& r_hat,
                              const std::vector<char>& is_block_start,
                              const Shifts& col_shifts);

}  // namespace cagmres::core
