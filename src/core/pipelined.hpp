// Pipelined GMRES — the communication-HIDING alternative the paper's
// footnote 5 studied (Ghysels, Ashby, Meerbergen, Vanroose, ref [19]).
//
// Depth-1 pipelining (p(1)-GMRES): the solver keeps a second basis
// Z = A·V. Each iteration posts the orthogonalization reduction for z_j,
// then launches the next SpMV w = A z_j BEFORE waiting for the reduction —
// the global-reduce latency hides behind the matrix-vector product. The
// orthogonalized vectors are then recovered by linearity:
//   v_{j+1} = (z_j - V a) / nu,   z_{j+1} = (w - Z a) / nu,
// at the price of doubled update flops + basis storage and CGS-grade
// stability (the coefficients come from the not-yet-normalized z_j).
//
// Contrast with CA-GMRES: pipelining hides the latency of communication
// that still happens; communication avoidance removes it. The bench
// `ext_pipelined` puts the two head-to-head as a function of latency.
#pragma once

#include "core/solver_common.hpp"
#include "sim/machine.hpp"

namespace cagmres::core {

/// Solves the prepared problem with depth-1 pipelined GMRES(opts.m).
/// Uses opts.m / tol / max_restarts; the orthogonalization is the fused
/// CGS-style single reduction inherent to the algorithm.
SolveResult pipelined_gmres(sim::Machine& machine, const Problem& problem,
                            const SolverOptions& opts);

}  // namespace cagmres::core
