#include "core/cagmres.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "blas/blas1.hpp"
#include "blas/blas3.hpp"
#include "blas/eig.hpp"
#include "blas/least_squares.hpp"
#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/cpu_gmres.hpp"
#include "core/gmres.hpp"
#include "core/hessenberg.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "ortho/borth.hpp"
#include "precond/precond.hpp"
#include "sim/device_blas.hpp"

namespace cagmres::core {

namespace {

/// Generates `steps` shifted basis vectors from column c0 with one SpMV +
/// AXPY per step (the paper's Fig. 15 fallback when MPK loses to SpMV).
/// `pc` non-null applies the operator A M^{-1} instead (right-
/// preconditioned blocks stage M^{-1} v between the trisolve and the
/// SpMV; the shift recurrence is unchanged — it shifts the same operator).
void generate_by_spmv(sim::Machine& m, mpk::MpkExecutor& spmv,
                      sim::DistMultiVec& v, int c0, int steps,
                      const Shifts& shifts, precond::PrecondHandle* pc) {
  // One stage column PER STEP, not one shared scratch column: the halo
  // exchange of step i runs closures on CONSUMER streams that read the
  // owners' stage column in place, ordered only behind the owners' pack
  // events. The block enqueues all `steps` products with no host join in
  // between, so a shared column would let step i+1's trisolve overwrite
  // rows a peer's still-parked closure reads (a write-after-read hazard
  // that only event sync with live workers exposes). The block-boundary
  // reductions (BOrth/TSQR) join every stream before the next block — or a
  // replay of this one — rewinds to column 0.
  sim::DistMultiVec* stage = pc != nullptr ? &spmv.stage(steps) : nullptr;
  for (int i = 0; i < steps; ++i) {
    const int c = c0 + i;
    if (pc != nullptr) {
      pc->apply(m, v, c, *stage, i);
      spmv.spmv(m, *stage, i, v, c + 1);
    } else {
      spmv.spmv(m, v, c, c + 1);
    }
    const double theta = shifts.re[static_cast<std::size_t>(i)];
    const bool pair_second = shifts.im[static_cast<std::size_t>(i)] < 0.0;
    if (theta != 0.0) {
      for (int d = 0; d < m.n_devices(); ++d) {
        sim::dev_axpy(m, d, v.local_rows(d), -theta, v.col(d, c),
                      v.col(d, c + 1));
      }
    }
    if (pair_second) {
      const double beta = shifts.im[static_cast<std::size_t>(i) - 1];
      for (int d = 0; d < m.n_devices(); ++d) {
        sim::dev_axpy(m, d, v.local_rows(d), beta * beta, v.col(d, c - 1),
                      v.col(d, c + 1));
      }
    }
  }
}

/// C := C + C2 * R1 and R := R2 * R1 — the coefficient merge after a
/// reorthogonalization pass (V = Q_prev(C1 + C2 R1) + Q(R2 R1)).
void merge_reorth(blas::DMat& c, const blas::DMat& c2, blas::DMat& r_block,
                  const blas::DMat& r2) {
  const int prev = c.rows();
  const int blk = c.cols();
  if (prev > 0) {
    blas::gemm(blas::Trans::N, blas::Trans::N, prev, blk, blk, 1.0, c2.data(),
               c2.ld(), r_block.data(), r_block.ld(), 1.0, c.data(), c.ld());
  }
  blas::DMat merged(blk, blk);
  blas::gemm(blas::Trans::N, blas::Trans::N, blk, blk, blk, 1.0, r2.data(),
             r2.ld(), r_block.data(), r_block.ld(), 0.0, merged.data(),
             merged.ld());
  r_block = std::move(merged);
}

/// Host-side part of the block health scrub: the BOrth/TSQR coefficient
/// factors live on the host, so scanning them is free.
bool mat_finite(const blas::DMat& m) {
  for (int j = 0; j < m.cols(); ++j) {
    for (int i = 0; i < m.rows(); ++i) {
      if (!std::isfinite(m(i, j))) return false;
    }
  }
  return true;
}

}  // namespace

SolveResult ca_gmres(sim::Machine& machine, const Problem& problem,
                     const SolverOptions& opts) {
  CAGMRES_REQUIRE(problem.n_devices() == machine.n_devices(),
                  "problem/machine device count mismatch");
  CAGMRES_REQUIRE(opts.m >= 1 && opts.s >= 1, "bad (s, m)");
  const int mm = opts.m;
  const int s = std::min(opts.s, mm);
  const bool resilient = machine.faults_armed();
  const sim::FaultStats faults0 = machine.fault_injector().stats();
  const sim::Counters ctr0 = machine.counters();
  // Per-restart tier-traffic trace instants diff against this snapshot.
  sim::Counters ctr_last = ctr0;
  if (machine.codec_config().any_active()) {
    machine.trace_instant("codec:" + machine.codec_config().to_string(),
                          "other");
  }
  std::vector<int> rows = problem.rows_per_device();

  // Owned repartitioned copy after a device loss; `prob` always points at
  // the problem currently mapped onto the machine.
  Problem repart;
  const Problem* prob = &problem;
  auto plan1 = std::make_unique<mpk::MpkPlan>(
      mpk::build_mpk_plan(prob->a, prob->offsets, 1));
  auto spmv = std::make_unique<mpk::MpkExecutor>(*plan1);
  precond::PrecondHandle* const pc = opts.precond;
  std::unique_ptr<mpk::MpkPlan> plan_s;
  std::unique_ptr<mpk::MpkExecutor> mpk_exec;
  // Right-preconditioned blocks interleave a block-local trisolve between
  // SpMVs, which the fused s-step MPK kernel cannot express: use the
  // step-by-step generator instead (same operator, one halo per step).
  if (opts.use_mpk && s > 1 && pc == nullptr) {
    plan_s = std::make_unique<mpk::MpkPlan>(
        mpk::build_mpk_plan(prob->a, prob->offsets, s));
    mpk_exec = std::make_unique<mpk::MpkExecutor>(*plan_s);
  }

  sim::DistMultiVec v(rows, mm + 1);
  sim::DistMultiVec xwork(rows, 2);
  sim::DistVec b(rows);
  b.assign_from_host(prob->b);
  // Declared after the distributed buffers: on exceptional unwind the pool
  // drains before v/xwork/b (and the executors' z buffers) are destroyed.
  sim::DrainGuard drain_guard(machine);

  SolveResult result;
  SolveStats& st = result.stats;
  const double t0 = machine.clock().elapsed();
  const sim::PhaseTimers phases0 = machine.phases();

  // Step shifts, reused for every block of every restart.
  Shifts step_shifts;
  if (opts.basis == Basis::kMonomial) {
    step_shifts.re.assign(static_cast<std::size_t>(s), 0.0);
    step_shifts.im.assign(static_cast<std::size_t>(s), 0.0);
  }
  bool have_shifts = (opts.basis == Basis::kMonomial);

  // Adaptive block-size state (opts.adaptive_s): shared across restarts so
  // a learned-safe s persists.
  int s_current = s;
  int clean_streak = 0;

  // --- numerical health monitor + escalation ladder (core/health.hpp) ---
  LadderCapabilities caps;
  caps.force_reorth = !opts.reorthogonalize;
  caps.shrink_s = true;
  caps.rebuild_shifts = (opts.basis == Basis::kNewton);
  for (ortho::Method t = opts.tsqr;;) {
    const ortho::Method n = ortho::more_robust_method(t);
    if (n == t) break;
    ++caps.tsqr_switches;
    t = n;
  }
  caps.fallback_gmres = true;
  SolveHealthMonitor hm(machine, opts.health, caps, t0);
  const bool health_on = hm.armed();

  // Ladder-mutable solver state. Only ladder actions touch these, and the
  // ladder only runs off armed monitors, so an unmonitored solve behaves
  // byte-identically to the pre-health code.
  ortho::Method tsqr_current = opts.tsqr;
  bool force_reorth = false;
  bool ladder_shrunk_s = false;  // use s_current even without adaptive_s
  bool fallback_gmres = false;
  blas::DMat last_h;  // freshest Hessenberg, kept for a shift rebuild
  int last_h_k = 0;
  // kRebuildShifts is deferred: the rung only marks the rebuild, and the
  // Ritz values are harvested from the Hessenberg of the next *completed*
  // cycle — the first one run under the escalated settings — instead of
  // the stale pre-escalation one.
  bool rebuild_shifts_pending = false;
  double prev_recurrence = -1.0;  // previous cycle's LS residual estimate
  bool prev_claimed = false;      // ... and whether it met the tolerance

  auto rung_applicable = [&](EscalationStep a) {
    switch (a) {
      case EscalationStep::kForceReorth:
        return !force_reorth;
      case EscalationStep::kShrinkS:
        return s_current > opts.adaptive_min_s;
      case EscalationStep::kRebuildShifts:
        return have_shifts && last_h_k > 1 && !rebuild_shifts_pending;
      case EscalationStep::kSwitchTsqr:
        return ortho::more_robust_method(tsqr_current) != tsqr_current;
      case EscalationStep::kFallbackGmres:
        return !fallback_gmres;
      default:
        return false;
    }
  };
  auto apply_rung = [&](EscalationStep a) {
    switch (a) {
      case EscalationStep::kForceReorth:
        force_reorth = true;
        break;
      case EscalationStep::kShrinkS:
        s_current = std::max(opts.adaptive_min_s, s_current / 2);
        ladder_shrunk_s = true;
        clean_streak = 0;
        break;
      case EscalationStep::kRebuildShifts:
        rebuild_shifts_pending = true;  // harvested post-escalation, below
        break;
      case EscalationStep::kSwitchTsqr:
        tsqr_current = ortho::more_robust_method(tsqr_current);
        break;
      case EscalationStep::kFallbackGmres:
        fallback_gmres = true;
        break;
      default:
        break;
    }
    ++st.ladder_steps;
  };
  // One trip -> at most one rung. A progress-class trip that finds the
  // ladder exhausted stops the solve instead of burning the whole restart
  // budget on a solve that is going nowhere.
  auto respond = [&](HealthEventKind cause, int restart_no) {
    if (!opts.health.escalate) return;
    const double value =
        hm.events().empty() ? 0.0 : hm.events().back().value;
    const EscalationStep a =
        hm.escalate(cause, value, restart_no, st.iterations, rung_applicable);
    if (a != EscalationStep::kNone) {
      apply_rung(a);
      return;
    }
    if (cause == HealthEventKind::kStagnation ||
        cause == HealthEventKind::kDivergence ||
        cause == HealthEventKind::kFalseConvergence) {
      sim::UnwindDrainGuard unwind_guard(machine);
      CAGMRES_REQUIRE_CODE(
          false, ErrorCode::kDeadlineExceeded,
          "escalation ladder exhausted while the solve was not progressing");
    }
  };

  // Deferred kRebuildShifts harvest: called right after a cycle completed
  // and refreshed last_h, so the Ritz values come from the escalated
  // cycle's own Hessenberg (same host charge as the initial harvest).
  auto harvest_pending_shifts = [&]() {
    if (!rebuild_shifts_pending || last_h_k <= 1) return;
    blas::DMat h_sq(last_h_k, last_h_k);
    for (int j = 0; j < last_h_k; ++j) {
      for (int i = 0; i < last_h_k; ++i) h_sq(i, j) = last_h(i, j);
    }
    step_shifts = newton_shifts(blas::hessenberg_eig(h_sq), s);
    machine.charge_host(sim::Kernel::kGeqrf,
                        10.0 * static_cast<double>(last_h_k) * last_h_k *
                            last_h_k,
                        0.0);
    rebuild_shifts_pending = false;
  };

  // Restart = checkpoint: the last solution whose residual was proven
  // finite, in prepared row order (valid across repartitions). On a
  // multi-node topology the checkpointer is hierarchical (buddy mirrors,
  // core/checkpoint.hpp); flat machines get the original host path.
  Checkpointer ckpt(machine, opts, resilient);
  if (resilient) ckpt.init_zero(prob->n());
  bool x_is_zero = true;   // x == 0 exactly (first residual is just b)
  bool needs_rebuild = false;
  std::vector<int> pending_lost_nodes;  // domains the last fault finished off
  int tainted_rollbacks = 0;  // consecutive, reset by a completed restart

  // Per-node-domain nested-recovery budget: consecutive hardware-recovery
  // rounds (a fresh fault landing before a post-recovery restart completed)
  // charge an exponentially growing host backoff and are bounded by the
  // machine's RecoveryBudget, per fault domain; crossing it (or the
  // min_devices floor) degrades to the host-only solver, or throws when
  // degradation is disabled.
  RecoveryDomains domains(machine, opts, resilient);
  bool degrade_now = false;
  std::string degrade_reason;

  double res = 0.0;
  int restart = 0;
  while (restart < opts.max_restarts) {
    try {
      if (needs_rebuild) {
        // A device was retired: re-split the prepared problem over the
        // survivors, rebuild the distributed state and both MPK plans, and
        // resume from the last checkpoint. Redistribution is charged.
        const double t_reb = machine.clock().elapsed();
        machine.sync();  // the old v/xwork/executors are replaced below
        repart = repartition_problem(*prob, machine.n_devices());
        prob = &repart;
        rows = prob->rows_per_device();
        plan1 = std::make_unique<mpk::MpkPlan>(
            mpk::build_mpk_plan(prob->a, prob->offsets, 1));
        spmv = std::make_unique<mpk::MpkExecutor>(*plan1);
        if (opts.use_mpk && s > 1 && pc == nullptr) {
          plan_s = std::make_unique<mpk::MpkPlan>(
              mpk::build_mpk_plan(prob->a, prob->offsets, s));
          mpk_exec = std::make_unique<mpk::MpkExecutor>(*plan_s);
        }
        v = sim::DistMultiVec(rows, mm + 1);
        xwork = sim::DistMultiVec(rows, 2);
        b = sim::DistVec(rows);
        b.assign_from_host(prob->b);
        detail::charge_redistribution(machine, *prob);
        // Only the devices whose row ranges moved are refactored; factors
        // for unchanged ranges are reused from the handle's cache.
        if (pc != nullptr) pc->rebuild(machine, prob->a, prob->offsets);
        ckpt.restore_after_repartition(xwork, pending_lost_nodes);
        pending_lost_nodes.clear();
        x_is_zero = ckpt.x_zero();
        ++st.recovery.repartitions;
        ++st.recovery.rollbacks;
        st.recovery.time_lost += machine.clock().elapsed() - t_reb;
        needs_rebuild = false;
      }
      // Factor lazily inside the fault-handling scope: a device kill
      // landing in setup classifies and repartitions like any other fault.
      // Restarts after the first see matches() true and charge nothing.
      if (pc != nullptr && !pc->matches(prob->offsets)) {
        pc->build(machine, prob->a, prob->offsets);
      }
      const int ng = machine.n_devices();

      res = detail::compute_residual(machine, *spmv, b, xwork, v, 0,
                                     x_is_zero);
      if (resilient) {
        // A finite ||b - A x|| proves x is poison-free; a non-finite one
        // means NaN leaked into x (or this residual evaluation), so roll
        // back to the checkpoint and recompute.
        int attempts = 0;
        while (!std::isfinite(res)) {
          CAGMRES_REQUIRE_CODE(++attempts <= opts.max_block_replays,
                               ErrorCode::kRetriesExhausted,
                               "residual stayed non-finite across rollbacks");
          const double t_rb = machine.clock().elapsed();
          ckpt.rollback(xwork);
          x_is_zero = ckpt.x_zero();
          ++st.recovery.rollbacks;
          res = detail::compute_residual(machine, *spmv, b, xwork, v, 0,
                                         x_is_zero);
          st.recovery.time_lost += machine.clock().elapsed() - t_rb;
        }
        ckpt.save(xwork, x_is_zero);
      }
      if (restart == 0) {
        st.initial_residual = res;
        if (res == 0.0) {
          st.converged = true;
          break;
        }
      }
      st.residual_history.push_back(res);
      const bool unconverged = res > opts.tol * st.initial_residual;
      if (health_on) {
        // False-convergence guard: the explicit residual just computed vs
        // the previous cycle's recurrence estimate.
        const HealthEventKind gap_trip = hm.check_residual_gap(
            res, prev_recurrence, prev_claimed, unconverged, restart,
            st.iterations);
        if (gap_trip != HealthEventKind::kNone && unconverged) {
          respond(gap_trip, restart);
        }
      }
      if (!unconverged) {
        st.converged = true;
        break;
      }
      if (health_on) {
        const HealthEventKind prog_trip =
            hm.check_progress(res, restart, st.iterations);
        if (prog_trip != HealthEventKind::kNone) respond(prog_trip, restart);
        hm.check_budget(st.iterations, restart);
      }
      for (int d = 0; d < ng; ++d) {
        sim::dev_scal(machine, d, v.local_rows(d), 1.0 / res, v.col(d, 0));
      }

      if (!have_shifts || fallback_gmres) {
        // First restart (standard GMRES cycle to harvest Ritz values), or
        // the ladder's terminal rung running the remaining budget as
        // standard GMRES.
        detail::CycleOutcome cycle = detail::arnoldi_cycle(
            machine, *spmv, v, mm, opts.gmres_orth, res,
            opts.tol * st.initial_residual,
            resilient ? opts.max_block_replays : 0, pc);
        st.recovery.blocks_replayed += cycle.replays;
        detail::update_solution(machine, v, cycle.k, cycle.y, xwork, pc,
                                pc != nullptr ? &spmv->stage(2) : nullptr);
        if (cycle.k > 0) x_is_zero = false;
        st.iterations += cycle.k;
        ++st.restarts;
        ++restart;
        if (machine.tracing()) {
          trace_tier_traffic(machine, ctr_last);
          ctr_last = machine.counters();
        }
        domains.on_restart_completed();  // refills the recovery budgets
        if (cycle.k == 0) {
          prev_recurrence = -1.0;  // no usable estimate from this cycle
          continue;                // poisoned cycle: retry next restart
        }
        prev_recurrence = cycle.ls_residual;
        prev_claimed = cycle.ls_residual <= opts.tol * st.initial_residual;
        if (health_on) {
          last_h = cycle.h;
          last_h_k = cycle.k;
        }
        harvest_pending_shifts();
        if (!have_shifts) {
          blas::DMat h_sq(cycle.k, cycle.k);
          for (int j = 0; j < cycle.k; ++j) {
            for (int i = 0; i < cycle.k; ++i) h_sq(i, j) = cycle.h(i, j);
          }
          step_shifts = newton_shifts(blas::hessenberg_eig(h_sq), s);
          machine.charge_host(sim::Kernel::kGeqrf,
                              10.0 * static_cast<double>(cycle.k) * cycle.k *
                                  cycle.k,
                              0.0);
          have_shifts = true;
        }
        continue;
      }

      // --- CA restart cycle ---
      blas::DMat r_total(mm + 1, mm + 1);
      r_total(0, 0) = 1.0;  // g_0 = q_0
      Shifts col_shifts;
      col_shifts.re.assign(static_cast<std::size_t>(mm), 0.0);
      col_shifts.im.assign(static_cast<std::size_t>(mm), 0.0);
      // Columns where a block's recursion restarted from the orthonormalized
      // vector (see hessenberg_blocked).
      std::vector<char> is_block_start(static_cast<std::size_t>(mm) + 1, 0);
      is_block_start[0] = 1;

      int done = 1;
      bool cycle_converged = false;
      bool cycle_tainted = false;
      double cycle_ls_res = -1.0;
      while (done < mm + 1) {
        if (health_on) hm.check_budget(st.iterations, restart);
        const int steps = std::min(
            (opts.adaptive_s || ladder_shrunk_s) ? s_current : s,
            mm + 1 - done);
        is_block_start[static_cast<std::size_t>(done) - 1] = 1;
        const Shifts bs = block_shifts(step_shifts, steps);
        for (int i = 0; i < steps; ++i) {
          col_shifts.re[static_cast<std::size_t>(done - 1 + i)] =
              bs.re[static_cast<std::size_t>(i)];
          col_shifts.im[static_cast<std::size_t>(done - 1 + i)] =
              bs.im[static_cast<std::size_t>(i)];
        }

        // Snapshot of the block (pre-TSQR, post-BOrth) for error
        // instrumentation; untouched simulated clock (measurement only).
        auto snapshot_block = [&]() {
          machine.sync();  // wall-clock only: host copy of the device panel
          sim::DistMultiVec snap(rows, steps);
          for (int d = 0; d < ng; ++d) {
            for (int i = 0; i < steps; ++i) {
              blas::copy(v.local_rows(d), v.col(d, done + i), snap.col(d, i));
            }
          }
          return snap;
        };
        auto record_errors = [&](const sim::DistMultiVec& before,
                                 const blas::DMat& r_blk, int pass) {
          TsqrErrorSample sample;
          sample.restart = restart;
          sample.pass = pass;
          sample.kappa_block = ortho::condition_number(before, 0, steps);
          sim::DistMultiVec after = snapshot_block();
          sample.errors = ortho::measure_errors(after, before, 0, steps, r_blk);
          st.tsqr_errors.push_back(sample);
        };

        blas::DMat c;
        ortho::TsqrResult tq;
        bool block_reorthed = false;
        int attempts = 0;
        const std::size_t tsqr_errors_mark = st.tsqr_errors.size();
        // Block replay loop: generation fully rewrites columns
        // done..done+steps from the accepted column done-1, so a block the
        // health scrub rejects can simply be re-run.
        while (true) {
          st.tsqr_errors.resize(tsqr_errors_mark);  // drop replayed samples
          try {
            if (mpk_exec != nullptr && steps > 1) {
              mpk_exec->apply(machine, v, done - 1, steps,
                              {bs.re.data(), bs.im.data()});
            } else {
              generate_by_spmv(machine, *spmv, v, done - 1, steps, bs, pc);
            }

            {
              sim::PhaseScope phase(machine, "borth");
              c = ortho::borth(machine, opts.borth, v, done, done + steps);
            }
            sim::DistMultiVec pre_tsqr;
            if (opts.collect_tsqr_errors) pre_tsqr = snapshot_block();
            {
              sim::PhaseScope phase(machine, "tsqr");
              tq = ortho::tsqr(machine, tsqr_current, v, done, done + steps,
                               opts.tsqr_opts);
            }
            if (opts.collect_tsqr_errors) record_errors(pre_tsqr, tq.r, 0);
            block_reorthed = opts.reorthogonalize || force_reorth ||
                             (tq.breakdown && opts.reorth_on_breakdown);
            if (block_reorthed) {
              blas::DMat c2;
              {
                sim::PhaseScope phase(machine, "borth");
                c2 = ortho::borth(machine, opts.borth, v, done, done + steps);
              }
              if (opts.collect_tsqr_errors) pre_tsqr = snapshot_block();
              ortho::TsqrResult tq2;
              {
                sim::PhaseScope phase(machine, "tsqr");
                tq2 = ortho::tsqr(machine, tsqr_current, v, done, done + steps,
                                  opts.tsqr_opts);
              }
              if (opts.collect_tsqr_errors) record_errors(pre_tsqr, tq2.r, 1);
              merge_reorth(c, c2, tq.r, tq2.r);
              machine.charge_host(sim::Kernel::kGemm,
                                  2.0 * static_cast<double>(done) * steps *
                                      steps,
                                  0.0);
            }
          } catch (const Error& e) {
            // A poisoned block can surface as a (shift-proof) TSQR
            // breakdown before the scrub sees it — e.g. an injected NaN in
            // the Gram kernel itself. Treat it like a failed health check:
            // the replay regenerates everything from the last accepted
            // column. A breakdown on an unarmed machine still propagates.
            if (!resilient || e.code() != ErrorCode::kBreakdown) throw;
            ++st.recovery.blocks_replayed;
            if (++attempts > opts.max_block_replays) {
              cycle_tainted = true;  // escalate to a cycle rollback
              break;
            }
            continue;
          }

          if (resilient) {
            // Block-boundary health scrub: the host-side factors are free
            // to scan; the device panel gets one charged norm-per-column
            // checksum pass.
            const double t_scrub = machine.clock().elapsed();
            const bool clean =
                mat_finite(c) && mat_finite(tq.r) &&
                ortho::block_norms_finite(machine, v, done, done + steps);
            if (!clean) {
              ++st.recovery.blocks_replayed;
              st.recovery.time_lost += machine.clock().elapsed() - t_scrub;
              if (++attempts > opts.max_block_replays) {
                cycle_tainted = true;  // escalate to a cycle rollback
                break;
              }
              continue;
            }
          }
          break;
        }
        if (cycle_tainted) break;

        // Commit the accepted block: bookkeeping that must not see
        // discarded (replayed) attempts.
        st.block_sizes.push_back(steps);
        st.block_breakdowns.push_back(tq.breakdown ? 1 : 0);
        if (tq.breakdown) ++st.cholqr_breakdowns;
        if (opts.adaptive_s) {
          if (tq.breakdown) {
            s_current = std::max(opts.adaptive_min_s, s_current / 2);
            clean_streak = 0;
          } else if (++clean_streak >= 3 && s_current < s) {
            ++s_current;
            clean_streak = 0;
          }
        }
        if (block_reorthed) ++st.reorth_blocks;

        if (health_on) {
          // Basis-condition monitor on the committed block: free R-diagonal
          // estimate plus the charged Gram sample on its cadence. A trip
          // hardens the *next* block (this one is already orthogonalized).
          const HealthEventKind cond_trip = hm.check_block(
              tq.r, v, done, done + steps, restart, st.iterations);
          if (cond_trip != HealthEventKind::kNone) respond(cond_trip, restart);
        }

        // Record the block's columns of the global triangular factor.
        for (int i = 0; i < steps; ++i) {
          const int col = done + i;
          for (int row = 0; row < done; ++row) r_total(row, col) = c(row, i);
          for (int row = 0; row <= i; ++row) {
            r_total(done + row, col) = tq.r(row, i);
          }
        }
        done += steps;
        st.iterations += steps;

        // Host-side convergence probe at block granularity: assemble the
        // Hessenberg matrix for the columns so far and check the LS
        // residual.
        const int k = done - 1;
        Shifts used;
        used.re.assign(col_shifts.re.begin(), col_shifts.re.begin() + k);
        used.im.assign(col_shifts.im.begin(), col_shifts.im.begin() + k);
        blas::DMat r_lead(k + 1, k + 1);
        for (int j = 0; j <= k; ++j) {
          for (int i = 0; i <= j; ++i) r_lead(i, j) = r_total(i, j);
        }
        const std::vector<char> starts(
            is_block_start.begin(), is_block_start.begin() + k + 1);
        const blas::DMat h = hessenberg_blocked(r_lead, starts, used);
        machine.charge_host(sim::Kernel::kGemm,
                            2.0 * static_cast<double>(k) * k * k, 0.0);
        double ls_res = 0.0;
        const std::vector<double> y =
            blas::solve_hessenberg_ls(h, res, &ls_res);
        cycle_ls_res = ls_res;
        if (health_on) {
          last_h = h;  // freshest Hessenberg for a possible shift rebuild
          last_h_k = k;
        }
        if (ls_res <= opts.tol * st.initial_residual || done == mm + 1) {
          detail::update_solution(machine, v, k, y, xwork, pc,
                                  pc != nullptr ? &spmv->stage(2) : nullptr);
          if (k > 0) x_is_zero = false;
          cycle_converged = (ls_res <= opts.tol * st.initial_residual);
          break;
        }
      }
      if (cycle_tainted) {
        // Persistent poison inside the cycle (e.g. the scaled residual
        // column itself was hit): discard the cycle, restore the
        // checkpointed x, and redo this restart with fresh data.
        CAGMRES_REQUIRE_CODE(++tainted_rollbacks <= opts.max_block_replays,
                             ErrorCode::kRetriesExhausted,
                             "cycle stayed tainted across rollbacks");
        ++st.recovery.rollbacks;
        ckpt.rollback(xwork);
        x_is_zero = ckpt.x_zero();
        prev_recurrence = -1.0;  // discarded cycle: no estimate to compare
        continue;
      }
      tainted_rollbacks = 0;
      if (health_on) {
        // Whole-prefix condition sample (opt-in): one charged Gram sweep
        // over every orthonormal column this cycle produced, catching
        // cross-block orthogonality decay the per-block samples miss.
        const HealthEventKind prefix_trip =
            hm.check_restart_prefix(v, done, restart, st.iterations);
        if (prefix_trip != HealthEventKind::kNone) {
          respond(prefix_trip, restart);
        }
      }
      ++st.restarts;
      ++restart;
      if (machine.tracing()) {
        trace_tier_traffic(machine, ctr_last);
        ctr_last = machine.counters();
      }
      domains.on_restart_completed();  // a completed restart refills budgets
      harvest_pending_shifts();
      // The true residual decides at the top of the next restart; the
      // recurrence estimate feeds the false-convergence guard there.
      prev_recurrence = cycle_ls_res;
      prev_claimed = cycle_converged;
    } catch (const Error& e) {
      // The domain handler classifies the fault (single device vs whole
      // node), applies the victim domain's budget and the device floor,
      // charges the backoff, and retires every dead device — or rethrows
      // for unrecoverable errors.
      if (domains.handle(e, st.recovery)) {
        degrade_now = true;
        degrade_reason = domains.degrade_reason();
        break;
      }
      pending_lost_nodes = domains.lost_nodes();
      needs_rebuild = true;  // the rebuild itself runs inside the try
    }
  }

  // Graceful-degradation floor: finish on the host-only GMRES core from
  // the last proven-finite checkpoint. Host work charges no device kernels
  // or transfers, so it makes progress no matter how the devices fault.
  std::vector<double> x_degraded;
  if (degrade_now) {
    st.degraded.active = true;
    st.degraded.devices_at_handoff = machine.n_devices();
    st.degraded.at_time = machine.clock().elapsed() - t0;
    st.degraded.reason = degrade_reason;
    machine.trace_instant("degrade:cpu_gmres", "other");
    machine.sync();  // the device path is abandoned; drain its closures
    x_degraded = resilient && !ckpt.x().empty()
                     ? ckpt.x()
                     : std::vector<double>(
                           static_cast<std::size_t>(prob->n()), 0.0);
    SolverOptions host_opts = opts;
    host_opts.max_restarts = std::max(1, opts.max_restarts - restart);
    const double abs_tol =
        st.initial_residual > 0.0 ? opts.tol * st.initial_residual : -1.0;
    SolveStats host = detail::host_gmres(machine, *prob, host_opts,
                                         x_degraded, !ckpt.x_zero(), abs_tol);
    st.converged = host.converged;
    res = host.final_residual;
    if (st.initial_residual == 0.0) {
      st.initial_residual = host.initial_residual;
    }
    st.restarts += host.restarts;
    st.iterations += host.iterations;
    st.residual_history.insert(st.residual_history.end(),
                               host.residual_history.begin(),
                               host.residual_history.end());
  }
  st.final_residual = res;
  st.health_events = hm.take_events();
  st.recurrence_residual = prev_recurrence;
  st.residual_gap = hm.residual_gap_last();
  st.residual_gap_max = hm.residual_gap_max();

  st.time_total = machine.clock().elapsed() - t0;
  st.traffic = tier_traffic(ctr0, machine.counters());
  const sim::PhaseTimers& ph = machine.phases();
  st.time_spmv = ph.get("spmv") - phases0.get("spmv");
  st.time_mpk = ph.get("mpk") - phases0.get("mpk");
  st.time_orth = ph.get("orth") - phases0.get("orth");
  st.time_borth = ph.get("borth") - phases0.get("borth");
  st.time_tsqr = ph.get("tsqr") - phases0.get("tsqr");
  st.time_precond = ph.get("precond") - phases0.get("precond") +
                    ph.get("precond_setup") - phases0.get("precond_setup");
  st.time_other = st.time_total - st.time_spmv - st.time_mpk - st.time_orth -
                  st.time_borth - st.time_tsqr - st.time_precond;
  if (resilient) {
    const sim::FaultStats df = machine.fault_injector().stats() - faults0;
    st.recovery.faults_injected = df.injected_total;
    st.recovery.device_failures = df.device_failures;
    st.recovery.node_failures = df.node_failures;
    st.recovery.kernel_faults = df.kernel_nans;
    st.recovery.transfer_corruptions =
        df.transfer_corruptions + df.link_corruptions;
    st.recovery.transfer_stalls = df.transfer_stalls + df.link_stalls;
    st.recovery.transfer_retries = df.transfer_retries;
    st.recovery.time_lost += df.retry_seconds + df.stall_seconds;
    st.recovery.partner_restores = ckpt.partner_restores();
  }

  if (st.degraded.active) {
    result.x = recover_solution(*prob, x_degraded);
    return result;
  }
  machine.sync();  // final gather reads xwork on the host
  std::vector<double> x_prepared;
  x_prepared.reserve(static_cast<std::size_t>(prob->n()));
  for (int d = 0; d < machine.n_devices(); ++d) {
    const double* p = xwork.col(d, 0);
    x_prepared.insert(x_prepared.end(), p, p + xwork.local_rows(d));
  }
  result.x = recover_solution(*prob, x_prepared);
  return result;
}

}  // namespace cagmres::core
