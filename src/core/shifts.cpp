#include "core/shifts.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cagmres::core {

namespace {

/// Canonicalizes eigenvalues: keeps one representative (im >= 0) per
/// conjugate pair, tagging whether it had a conjugate partner.
struct Candidate {
  std::complex<double> value;
  bool is_pair;
};

std::vector<Candidate> canonicalize(
    const std::vector<std::complex<double>>& values) {
  std::vector<Candidate> out;
  std::vector<char> used(values.size(), 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (used[i]) continue;
    const auto v = values[i];
    if (std::abs(v.imag()) < 1e-14 * (1.0 + std::abs(v.real()))) {
      out.push_back({{v.real(), 0.0}, false});
      continue;
    }
    // Find the conjugate partner.
    bool paired = false;
    for (std::size_t j = i + 1; j < values.size(); ++j) {
      if (used[j]) continue;
      const auto w = values[j];
      if (std::abs(w.real() - v.real()) <=
              1e-10 * (1.0 + std::abs(v.real())) &&
          std::abs(w.imag() + v.imag()) <=
              1e-10 * (1.0 + std::abs(v.imag()))) {
        used[j] = 1;
        paired = true;
        break;
      }
    }
    out.push_back({{v.real(), std::abs(v.imag())}, paired});
    if (!paired) {
      // Unpaired complex value (shouldn't happen for real matrices);
      // demote to its real part so the Newton recursion stays real.
      out.back().value = {v.real(), 0.0};
      out.back().is_pair = false;
    }
  }
  return out;
}

}  // namespace

Shifts leja_order(const std::vector<std::complex<double>>& values) {
  Shifts out;
  std::vector<Candidate> cand = canonicalize(values);
  if (cand.empty()) return out;

  std::vector<char> used(cand.size(), 0);
  // First: largest magnitude.
  std::size_t first = 0;
  for (std::size_t i = 1; i < cand.size(); ++i) {
    if (std::abs(cand[i].value) > std::abs(cand[first].value)) first = i;
  }
  auto emit = [&](std::size_t i) {
    const auto v = cand[i].value;
    out.re.push_back(v.real());
    out.im.push_back(v.imag());
    if (cand[i].is_pair && v.imag() != 0.0) {
      out.re.push_back(v.real());
      out.im.push_back(-v.imag());
    }
    used[i] = 1;
  };
  emit(first);

  while (true) {
    double best_score = -1.0;
    std::size_t best = cand.size();
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (used[i]) continue;
      // log product of distances to the already chosen shifts (both pair
      // members contribute).
      double score = 0.0;
      for (std::size_t k = 0; k < out.re.size(); ++k) {
        const std::complex<double> chosen(out.re[k], out.im[k]);
        score += std::log(std::abs(cand[i].value - chosen) + 1e-300);
      }
      if (best == cand.size() || score > best_score) {
        best = i;
        best_score = score;
      }
    }
    if (best == cand.size()) break;
    emit(best);
  }
  return out;
}

Shifts newton_shifts(const std::vector<std::complex<double>>& ritz, int s) {
  CAGMRES_REQUIRE(s >= 1, "need at least one shift");
  Shifts all = leja_order(ritz);
  if (all.empty()) return all;
  // Cycle the Leja sequence if fewer Ritz values than s were available.
  Shifts out;
  out.re.reserve(static_cast<std::size_t>(s));
  out.im.reserve(static_cast<std::size_t>(s));
  for (int k = 0; k < s; ++k) {
    const std::size_t src = static_cast<std::size_t>(k) % all.re.size();
    out.re.push_back(all.re[src]);
    out.im.push_back(all.im[src]);
  }
  // A pair straddling either the cutoff or the wrap point degenerates to a
  // real shift.
  for (int k = 0; k < s; ++k) {
    if (out.im[static_cast<std::size_t>(k)] > 0.0 &&
        (k + 1 >= s || out.im[static_cast<std::size_t>(k) + 1] >= 0.0)) {
      out.im[static_cast<std::size_t>(k)] = 0.0;
    }
    if (out.im[static_cast<std::size_t>(k)] < 0.0 &&
        (k == 0 || out.im[static_cast<std::size_t>(k) - 1] <= 0.0)) {
      out.im[static_cast<std::size_t>(k)] = 0.0;
    }
  }
  return out;
}

Shifts block_shifts(const Shifts& shifts, int steps) {
  CAGMRES_REQUIRE(steps >= 1, "need at least one step");
  CAGMRES_REQUIRE(shifts.size() >= steps, "not enough shifts for the block");
  Shifts out;
  out.re.assign(shifts.re.begin(), shifts.re.begin() + steps);
  out.im.assign(shifts.im.begin(), shifts.im.begin() + steps);
  // Demote a pair whose first member is the last step of the block.
  if (steps >= 1 && out.im[static_cast<std::size_t>(steps) - 1] > 0.0) {
    out.im[static_cast<std::size_t>(steps) - 1] = 0.0;
  }
  CAGMRES_ASSERT(shifts_consistent(out), "block_shifts broke a pair");
  return out;
}

bool shifts_consistent(const Shifts& shifts) {
  if (shifts.re.size() != shifts.im.size()) return false;
  const int n = shifts.size();
  for (int k = 0; k < n; ++k) {
    const double im = shifts.im[static_cast<std::size_t>(k)];
    if (im > 0.0) {
      // First member of a pair: the conjugate must sit right after it.
      if (k + 1 >= n ||
          shifts.im[static_cast<std::size_t>(k) + 1] != -im ||
          shifts.re[static_cast<std::size_t>(k) + 1] !=
              shifts.re[static_cast<std::size_t>(k)]) {
        return false;
      }
    } else if (im < 0.0) {
      // Second member: must be preceded by its conjugate.
      if (k == 0 || shifts.im[static_cast<std::size_t>(k) - 1] != -im) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cagmres::core
