// Preconditioned solver drivers.
//
// Two families. (1) The original left block-Jacobi one-shot transform:
// with M the block diagonal of A (dense blocks aligned inside device row
// ranges), M^{-1}A has the same block-row distribution and a dependency
// pattern that is the within-block union of A's — so the MPK/TSQR
// machinery applies to the transformed system completely unchanged; the
// transform is performed once, up front, like the paper's balancing.
// (2) The spec-based drivers over precond::PrecondHandle (src/precond/):
// right-preconditioned device-local ILU(k) with cached symbolic factors
// and level-scheduled triangular solves, charged inside the solve and
// composing with recovery/repartitioning. See DESIGN.md §15.
#pragma once

#include "core/solver_common.hpp"
#include "precond/precond.hpp"

namespace cagmres::core {

/// Outcome of apply_block_jacobi (diagnostics).
struct PreconditionStats {
  int blocks = 0;             ///< dense diagonal blocks inverted
  std::int64_t nnz_before = 0;
  std::int64_t nnz_after = 0; ///< fill from mixing rows within each block
  /// Numerically singular diagonal blocks left untransformed (the
  /// documented identity fallback), counted so callers can see how much of
  /// the system is actually preconditioned.
  int identity_fallbacks = 0;
};

/// Transforms the prepared problem in place to M^{-1} A x = M^{-1} b with
/// block-Jacobi M (dense diagonal blocks of at most `block_size` rows,
/// never straddling a device boundary). Singular blocks fall back to
/// identity (left unpreconditioned). Solver tolerances then apply to the
/// preconditioned residual, as usual for left preconditioning; the
/// recovered solution x is unchanged in meaning.
PreconditionStats apply_block_jacobi(Problem& p, int block_size);

/// Result of a preconditioned solve: the solver outcome on the transformed
/// system plus the transform's own diagnostics.
struct PreconditionedResult {
  SolveResult solve;
  PreconditionStats precond;
};

/// Block-Jacobi preconditioned drivers: copy the prepared problem, apply
/// the transform, and delegate to the standard solver. The numerical
/// health monitor (core/health.hpp) rides along through `opts.health` —
/// the delegated driver arms it against the preconditioned residuals, so
/// watchdogs and the escalation ladder work unchanged; with `opts.health`
/// defaulted the behaviour is byte-identical to transform-then-solve by
/// hand.
PreconditionedResult preconditioned_gmres(sim::Machine& machine,
                                          const Problem& problem,
                                          const SolverOptions& opts,
                                          int block_size);
PreconditionedResult preconditioned_ca_gmres(sim::Machine& machine,
                                             const Problem& problem,
                                             const SolverOptions& opts,
                                             int block_size);

/// Result of a spec-based (handle) preconditioned solve: the solver
/// outcome plus the handle's cumulative telemetry (factor sizes, level
/// depths, cache reuse, charged setup seconds).
struct IluPreconditionedResult {
  SolveResult solve;
  precond::PrecondStats precond;
};

/// Spec-based preconditioned drivers: build a precond::PrecondHandle for
/// `spec`, point opts.precond at it, and delegate to the standard solver
/// (which factors lazily inside its fault-handling scope and rebuilds
/// affected device factors after a repartition). A kNone spec delegates
/// unpreconditioned — bit-for-bit the plain solver. The returned stats
/// are the handle's final state after the solve.
IluPreconditionedResult preconditioned_gmres(sim::Machine& machine,
                                             const Problem& problem,
                                             const SolverOptions& opts,
                                             const precond::PrecondSpec& spec);
IluPreconditionedResult preconditioned_ca_gmres(
    sim::Machine& machine, const Problem& problem, const SolverOptions& opts,
    const precond::PrecondSpec& spec);
IluPreconditionedResult preconditioned_pipelined_gmres(
    sim::Machine& machine, const Problem& problem, const SolverOptions& opts,
    const precond::PrecondSpec& spec);

}  // namespace cagmres::core
