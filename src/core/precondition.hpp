// Block-Jacobi preconditioning.
//
// The paper evaluates unpreconditioned CA-GMRES (its MPK discussion notes
// preconditioning via Hoemmen's thesis); a usable library needs at least
// the CA-compatible baseline. Left block-Jacobi fits naturally: with M the
// block diagonal of A (dense blocks aligned inside device row ranges),
// M^{-1}A has the same block-row distribution and a dependency pattern that
// is the within-block union of A's — so the MPK/TSQR machinery applies to
// the transformed system completely unchanged. The transform is performed
// once, up front, like the paper's balancing.
#pragma once

#include "core/solver_common.hpp"

namespace cagmres::core {

/// Outcome of apply_block_jacobi (diagnostics).
struct PreconditionStats {
  int blocks = 0;             ///< dense diagonal blocks inverted
  std::int64_t nnz_before = 0;
  std::int64_t nnz_after = 0; ///< fill from mixing rows within each block
};

/// Transforms the prepared problem in place to M^{-1} A x = M^{-1} b with
/// block-Jacobi M (dense diagonal blocks of at most `block_size` rows,
/// never straddling a device boundary). Singular blocks fall back to
/// identity (left unpreconditioned). Solver tolerances then apply to the
/// preconditioned residual, as usual for left preconditioning; the
/// recovered solution x is unchanged in meaning.
PreconditionStats apply_block_jacobi(Problem& p, int block_size);

/// Result of a preconditioned solve: the solver outcome on the transformed
/// system plus the transform's own diagnostics.
struct PreconditionedResult {
  SolveResult solve;
  PreconditionStats precond;
};

/// Block-Jacobi preconditioned drivers: copy the prepared problem, apply
/// the transform, and delegate to the standard solver. The numerical
/// health monitor (core/health.hpp) rides along through `opts.health` —
/// the delegated driver arms it against the preconditioned residuals, so
/// watchdogs and the escalation ladder work unchanged; with `opts.health`
/// defaulted the behaviour is byte-identical to transform-then-solve by
/// hand.
PreconditionedResult preconditioned_gmres(sim::Machine& machine,
                                          const Problem& problem,
                                          const SolverOptions& opts,
                                          int block_size);
PreconditionedResult preconditioned_ca_gmres(sim::Machine& machine,
                                             const Problem& problem,
                                             const SolverOptions& opts,
                                             int block_size);

}  // namespace cagmres::core
