// Symmetric eigendecomposition via cyclic Jacobi rotations.
//
// SVQR needs the SVD of the (s+1)x(s+1) Gram matrix B = V^T V. B is
// symmetric positive semidefinite, so its SVD coincides with its
// eigendecomposition B = U diag(w) U^T, which Jacobi computes to high
// relative accuracy — exactly the property §V-D of the paper leans on.
#pragma once

#include <vector>

#include "blas/matrix.hpp"

namespace cagmres::blas {

/// Result of a symmetric eigendecomposition A = U diag(w) U^T.
struct EighResult {
  std::vector<double> w;  ///< eigenvalues, descending
  DMat u;                 ///< orthonormal eigenvectors (columns)
  int sweeps = 0;         ///< Jacobi sweeps used
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
/// Converges quadratically; `max_sweeps` bounds the worst case.
EighResult jacobi_eigh(const DMat& a, int max_sweeps = 64);

}  // namespace cagmres::blas
