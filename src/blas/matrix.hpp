// Column-major dense matrix container and views.
//
// Everything dense in the library (tall-skinny panels, Gram matrices,
// Hessenberg matrices, R factors) is column-major with an explicit leading
// dimension, matching LAPACK conventions so the kernels below read like
// their reference counterparts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cagmres::blas {

/// Owning column-major dense matrix of doubles.
class DMat {
 public:
  DMat() = default;

  /// rows x cols matrix, zero-initialized, leading dimension == rows.
  DMat(int rows, int cols)
      : rows_(rows), cols_(cols), ld_(rows),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0) {
    CAGMRES_REQUIRE(rows >= 0 && cols >= 0, "negative dimension");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return ld_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Pointer to the start of column j.
  double* col(int j) {
    CAGMRES_ASSERT(0 <= j && j < cols_, "column out of range");
    return data_.data() + static_cast<std::size_t>(j) * ld_;
  }
  const double* col(int j) const {
    CAGMRES_ASSERT(0 <= j && j < cols_, "column out of range");
    return data_.data() + static_cast<std::size_t>(j) * ld_;
  }

  double& operator()(int i, int j) {
    CAGMRES_ASSERT(0 <= i && i < rows_ && 0 <= j && j < cols_, "out of range");
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }
  double operator()(int i, int j) const {
    CAGMRES_ASSERT(0 <= i && i < rows_ && 0 <= j && j < cols_, "out of range");
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }

  /// Sets every entry to v.
  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  int ld_ = 0;
  std::vector<double> data_;
};

}  // namespace cagmres::blas
