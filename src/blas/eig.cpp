#include "blas/eig.hpp"

#include <cmath>
#include <limits>

namespace cagmres::blas {

std::vector<std::complex<double>> hessenberg_eig(const DMat& h) {
  const int n = h.rows();
  CAGMRES_REQUIRE(h.cols() == n, "hessenberg_eig: matrix not square");
  std::vector<std::complex<double>> eig(static_cast<std::size_t>(n));
  if (n == 0) return eig;

  DMat a = h;
  for (int j = 0; j < n; ++j) {
    for (int i = j + 2; i < n; ++i) a(i, j) = 0.0;
  }

  const double eps = std::numeric_limits<double>::epsilon();
  double anorm = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 1); j < n; ++j) anorm += std::fabs(a(i, j));
  }
  if (anorm == 0.0) return eig;  // zero matrix: all eigenvalues zero

  int nn = n - 1;
  double t = 0.0;  // accumulated exceptional shifts
  while (nn >= 0) {
    int its = 0;
    int l;
    do {
      // Look for a single small subdiagonal element to split the matrix.
      for (l = nn; l >= 1; --l) {
        double s = std::fabs(a(l - 1, l - 1)) + std::fabs(a(l, l));
        if (s == 0.0) s = anorm;
        if (std::fabs(a(l, l - 1)) <= eps * s) {
          a(l, l - 1) = 0.0;
          break;
        }
      }
      double x = a(nn, nn);
      if (l == nn) {  // one real root found
        eig[static_cast<std::size_t>(nn)] = {x + t, 0.0};
        --nn;
      } else {
        double y = a(nn - 1, nn - 1);
        double w = a(nn, nn - 1) * a(nn - 1, nn);
        if (l == nn - 1) {  // a 2x2 block: two roots found
          double p = 0.5 * (y - x);
          double q = p * p + w;
          double z = std::sqrt(std::fabs(q));
          x += t;
          if (q >= 0.0) {  // real pair
            z = p + std::copysign(z, p);
            double r1 = x + z;
            double r2 = (z != 0.0) ? x - w / z : x + z;
            eig[static_cast<std::size_t>(nn - 1)] = {r1, 0.0};
            eig[static_cast<std::size_t>(nn)] = {r2, 0.0};
          } else {  // complex conjugate pair
            eig[static_cast<std::size_t>(nn - 1)] = {x + p, z};
            eig[static_cast<std::size_t>(nn)] = {x + p, -z};
          }
          nn -= 2;
        } else {  // no root yet: perform a double QR step
          CAGMRES_REQUIRE(its < 60, "hessenberg_eig: QR iteration stalled");
          if (its == 10 || its == 20 || its == 30 || its == 40 || its == 50) {
            // Exceptional shift to break symmetry-induced cycles.
            t += x;
            for (int i = 0; i <= nn; ++i) a(i, i) -= x;
            double s = std::fabs(a(nn, nn - 1)) + std::fabs(a(nn - 1, nn - 2));
            y = x = 0.75 * s;
            w = -0.4375 * s * s;
          }
          ++its;
          int m;
          double p = 0.0, q = 0.0, r = 0.0, z = 0.0;
          for (m = nn - 2; m >= l; --m) {
            z = a(m, m);
            double rr = x - z;
            double ss = y - z;
            p = (rr * ss - w) / a(m + 1, m) + a(m, m + 1);
            q = a(m + 1, m + 1) - z - rr - ss;
            r = a(m + 2, m + 1);
            double s = std::fabs(p) + std::fabs(q) + std::fabs(r);
            p /= s;
            q /= s;
            r /= s;
            if (m == l) break;
            const double u =
                std::fabs(a(m, m - 1)) * (std::fabs(q) + std::fabs(r));
            const double v =
                std::fabs(p) * (std::fabs(a(m - 1, m - 1)) + std::fabs(z) +
                                std::fabs(a(m + 1, m + 1)));
            if (u <= eps * v) break;
          }
          for (int i = m + 2; i <= nn; ++i) {
            a(i, i - 2) = 0.0;
            if (i != m + 2) a(i, i - 3) = 0.0;
          }
          for (int k = m; k <= nn - 1; ++k) {
            if (k != m) {
              p = a(k, k - 1);
              q = a(k + 1, k - 1);
              r = (k != nn - 1) ? a(k + 2, k - 1) : 0.0;
              x = std::fabs(p) + std::fabs(q) + std::fabs(r);
              if (x != 0.0) {
                p /= x;
                q /= x;
                r /= x;
              }
            }
            double s = std::copysign(std::sqrt(p * p + q * q + r * r), p);
            if (s == 0.0) continue;
            if (k == m) {
              if (l != m) a(k, k - 1) = -a(k, k - 1);
            } else {
              a(k, k - 1) = -s * x;
            }
            p += s;
            x = p / s;
            double yy = q / s;
            z = r / s;
            q /= p;
            r /= p;
            for (int j = k; j <= nn; ++j) {  // row modification
              double pp = a(k, j) + q * a(k + 1, j);
              if (k != nn - 1) {
                pp += r * a(k + 2, j);
                a(k + 2, j) -= pp * z;
              }
              a(k + 1, j) -= pp * yy;
              a(k, j) -= pp * x;
            }
            const int mmin = (nn < k + 3) ? nn : k + 3;
            for (int i = l; i <= mmin; ++i) {  // column modification
              double pp = x * a(i, k) + yy * a(i, k + 1);
              if (k != nn - 1) {
                pp += z * a(i, k + 2);
                a(i, k + 2) -= pp * r;
              }
              a(i, k + 1) -= pp * q;
              a(i, k) -= pp;
            }
          }
          l = 0;  // keep iterating on this block
        }
      }
    } while (nn >= 0 && l < nn - 1);
  }
  return eig;
}

}  // namespace cagmres::blas
