// Eigenvalues of an upper Hessenberg matrix.
//
// CA-GMRES harvests Ritz values (eigenvalues of the m x m Hessenberg matrix
// from the first restart cycle) to build the Newton basis shifts, so this
// solver only needs eigenvalues, not vectors. We implement the classic
// Francis implicit double-shift QR iteration (EISPACK hqr), which handles
// real matrices with complex-conjugate eigenvalue pairs in real arithmetic.
#pragma once

#include <complex>
#include <vector>

#include "blas/matrix.hpp"

namespace cagmres::blas {

/// Eigenvalues of an upper Hessenberg matrix `h` (entries below the first
/// subdiagonal are ignored). Complex eigenvalues come out as adjacent
/// conjugate pairs. Throws cagmres::Error if the QR iteration fails to
/// converge (does not happen for the well-scaled GMRES Hessenberg matrices).
std::vector<std::complex<double>> hessenberg_eig(const DMat& h);

}  // namespace cagmres::blas
