#include "blas/least_squares.hpp"

#include <cmath>

namespace cagmres::blas {

GivensLS::GivensLS(int max_cols, double beta)
    : max_cols_(max_cols),
      r_(max_cols, max_cols),
      g_(static_cast<std::size_t>(max_cols) + 1, 0.0),
      cs_(static_cast<std::size_t>(max_cols), 0.0),
      sn_(static_cast<std::size_t>(max_cols), 0.0) {
  CAGMRES_REQUIRE(max_cols >= 0, "negative column count");
  g_[0] = beta;
}

double GivensLS::append_column(const double* hcol) {
  CAGMRES_REQUIRE(k_ < max_cols_, "GivensLS: too many columns");
  const int j = k_;
  // Work on a local copy of the new column (j+2 entries).
  std::vector<double> v(hcol, hcol + j + 2);
  // Apply the j previous rotations.
  for (int i = 0; i < j; ++i) {
    const double t = cs_[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)] +
                     sn_[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i) + 1];
    v[static_cast<std::size_t>(i) + 1] =
        -sn_[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)] +
        cs_[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i) + 1];
    v[static_cast<std::size_t>(i)] = t;
  }
  // New rotation to annihilate the subdiagonal entry.
  const double a = v[static_cast<std::size_t>(j)];
  const double b = v[static_cast<std::size_t>(j) + 1];
  const double rho = std::hypot(a, b);
  double c = 1.0, s = 0.0;
  if (rho > 0.0) {
    c = a / rho;
    s = b / rho;
  }
  cs_[static_cast<std::size_t>(j)] = c;
  sn_[static_cast<std::size_t>(j)] = s;
  v[static_cast<std::size_t>(j)] = rho;
  for (int i = 0; i <= j; ++i) r_(i, j) = v[static_cast<std::size_t>(i)];
  // Rotate the rhs.
  const double gj = g_[static_cast<std::size_t>(j)];
  g_[static_cast<std::size_t>(j)] = c * gj;
  g_[static_cast<std::size_t>(j) + 1] = -s * gj;
  ++k_;
  return std::fabs(g_[static_cast<std::size_t>(k_)]);
}

double GivensLS::residual_norm() const {
  return std::fabs(g_[static_cast<std::size_t>(k_)]);
}

std::vector<double> GivensLS::solve() const {
  std::vector<double> y(g_.begin(), g_.begin() + k_);
  for (int i = k_ - 1; i >= 0; --i) {
    double v = y[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k_; ++j) v -= r_(i, j) * y[static_cast<std::size_t>(j)];
    const double d = r_(i, i);
    CAGMRES_REQUIRE(d != 0.0, "GivensLS: singular triangular factor");
    y[static_cast<std::size_t>(i)] = v / d;
  }
  return y;
}

std::vector<double> solve_hessenberg_ls(const DMat& h, double beta,
                                        double* residual_norm) {
  const int m = h.cols();
  CAGMRES_REQUIRE(h.rows() == m + 1, "H must be (m+1) x m");
  GivensLS ls(m, beta);
  std::vector<double> col(static_cast<std::size_t>(m) + 1);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i <= j + 1; ++i) col[static_cast<std::size_t>(i)] = h(i, j);
    ls.append_column(col.data());
  }
  if (residual_norm != nullptr) *residual_norm = ls.residual_norm();
  return ls.solve();
}

}  // namespace cagmres::blas
