#include "blas/blas2.hpp"

#include <cstddef>

namespace cagmres::blas {

void gemv_n(int m, int n, double alpha, const double* a, int lda,
            const double* x, double beta, double* y) {
  if (beta == 0.0) {
    for (int i = 0; i < m; ++i) y[i] = 0.0;
  } else if (beta != 1.0) {
    for (int i = 0; i < m; ++i) y[i] *= beta;
  }
  // Column-sweep order keeps the inner loop unit-stride over A.
  for (int j = 0; j < n; ++j) {
    const double t = alpha * x[j];
    const double* col = a + static_cast<std::size_t>(j) * lda;
    for (int i = 0; i < m; ++i) y[i] += t * col[i];
  }
}

void gemv_t(int m, int n, double alpha, const double* a, int lda,
            const double* x, double beta, double* y) {
  // One column per task: each output entry is an independent serial dot
  // product, so the result is thread-count independent.
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * n > 1 << 16)
  for (int j = 0; j < n; ++j) {
    const double* col = a + static_cast<std::size_t>(j) * lda;
    double acc = 0.0;
    for (int i = 0; i < m; ++i) acc += col[i] * x[i];
    y[j] = alpha * acc + (beta == 0.0 ? 0.0 : beta * y[j]);
  }
}

void ger(int m, int n, double alpha, const double* x, const double* y,
         double* a, int lda) {
  for (int j = 0; j < n; ++j) {
    const double t = alpha * y[j];
    double* col = a + static_cast<std::size_t>(j) * lda;
    for (int i = 0; i < m; ++i) col[i] += t * x[i];
  }
}

}  // namespace cagmres::blas
