#include "blas/blas3.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

// Blocking strategy (ISSUE 3 tentpole): the hot GEMM shapes here are tall-
// skinny — a panel V of m rows by n,k <= s+1 columns, either V^T V (Gram,
// Trans::T x Trans::N with the long dimension contracted) or V * R (panel
// update, Trans::N x Trans::N with the long dimension kept). Both are
// memory-bound, so the win is a single pass over V: block the long
// dimension so every involved column block stays cache-resident, and
// register-block the skinny dimension (4 fused terms per pass) to amortize
// loads of the running sums. The transposed-B branches (N,T and T,T) use
// the same two schemes, so every gemm shape is now cache-blocked.
//
// Determinism contract: every output element accumulates its inner-
// dimension terms ONE AT A TIME in the same order as the naive triple
// loop; between cache blocks the running sum is spilled through memory and
// picked back up. The operation sequence per element is therefore
// unchanged, and results are bit-identical to the pre-blocked kernels for
// any block size or OpenMP thread count.

namespace cagmres::blas {

namespace {

inline const double* elem(const double* a, int lda, int i, int j) {
  return a + static_cast<std::size_t>(j) * lda + i;
}

/// Rows of the long dimension per cache block: with n <= 32 skinny columns
/// the working set is n * 1024 * 8B <= 256 KiB, L2-resident.
constexpr int kLongBlock = 1024;

}  // namespace

void gemm(Trans ta, Trans tb, int m, int n, int k, double alpha,
          const double* a, int lda, const double* b, int ldb, double beta,
          double* c, int ldc) {
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * n > 1 << 16)
  for (int j = 0; j < n; ++j) {
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    if (beta == 0.0) {
      for (int i = 0; i < m; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  if (ta == Trans::N && tb == Trans::N) {
    // C += alpha * A * B — the V * R panel-update shape (m large; n, k
    // skinny). Row-blocked so an i-block of A (all k columns of it) stays
    // cache-resident across the n output columns: A streams from DRAM
    // once instead of n times. Four p terms are fused per pass over the
    // block, added to the running sum one at a time in p order.
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * n * k > 1 << 18)
    for (int i0 = 0; i0 < m; i0 += kLongBlock) {
      const int i1 = std::min(m, i0 + kLongBlock);
      for (int j = 0; j < n; ++j) {
        double* cj = c + static_cast<std::size_t>(j) * ldc;
        int p = 0;
        for (; p + 4 <= k; p += 4) {
          const double t0 = alpha * *elem(b, ldb, p, j);
          const double t1 = alpha * *elem(b, ldb, p + 1, j);
          const double t2 = alpha * *elem(b, ldb, p + 2, j);
          const double t3 = alpha * *elem(b, ldb, p + 3, j);
          const double* a0 = a + static_cast<std::size_t>(p) * lda;
          const double* a1 = a + static_cast<std::size_t>(p + 1) * lda;
          const double* a2 = a + static_cast<std::size_t>(p + 2) * lda;
          const double* a3 = a + static_cast<std::size_t>(p + 3) * lda;
          for (int i = i0; i < i1; ++i) {
            double x = cj[i];
            x += t0 * a0[i];
            x += t1 * a1[i];
            x += t2 * a2[i];
            x += t3 * a3[i];
            cj[i] = x;
          }
        }
        for (; p < k; ++p) {
          const double t = alpha * *elem(b, ldb, p, j);
          const double* ap = a + static_cast<std::size_t>(p) * lda;
          for (int i = i0; i < i1; ++i) cj[i] += t * ap[i];
        }
      }
    }
  } else if (ta == Trans::T && tb == Trans::N) {
    // C(i,j) += alpha * dot(A(:,i), B(:,j)) — the V^T W Gram/projection
    // shape (k large; m, n skinny). The contracted dimension is blocked so
    // all m + n column blocks stay cache-resident; the running dot for
    // each (i,j) is spilled through a small m x n scratch between blocks.
    std::vector<double> acc(static_cast<std::size_t>(m) * n, 0.0);
    for (int p0 = 0; p0 < k; p0 += kLongBlock) {
      const int p1 = std::min(k, p0 + kLongBlock);
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * k > 1 << 16)
      for (int j = 0; j < n; ++j) {
        const double* bj = b + static_cast<std::size_t>(j) * ldb;
        double* accj = acc.data() + static_cast<std::size_t>(j) * m;
        for (int i = 0; i < m; ++i) {
          const double* ai = a + static_cast<std::size_t>(i) * lda;
          double s = accj[i];
          int p = p0;
          for (; p + 4 <= p1; p += 4) {
            s += ai[p] * bj[p];
            s += ai[p + 1] * bj[p + 1];
            s += ai[p + 2] * bj[p + 2];
            s += ai[p + 3] * bj[p + 3];
          }
          for (; p < p1; ++p) s += ai[p] * bj[p];
          accj[i] = s;
        }
      }
    }
    for (int j = 0; j < n; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      const double* accj = acc.data() + static_cast<std::size_t>(j) * m;
      for (int i = 0; i < m; ++i) cj[i] += alpha * accj[i];
    }
  } else if (ta == Trans::N && tb == Trans::T) {
    // C += alpha * A * B^T — long dimension kept, like N,N but with B read
    // across a row. Row-blocked the same way: an i-block of A's k columns
    // stays cache-resident across the n output columns, with four p terms
    // fused per pass and added one at a time in p order (bit-identical to
    // the naive j/p/i loop this replaces).
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * n * k > 1 << 18)
    for (int i0 = 0; i0 < m; i0 += kLongBlock) {
      const int i1 = std::min(m, i0 + kLongBlock);
      for (int j = 0; j < n; ++j) {
        double* cj = c + static_cast<std::size_t>(j) * ldc;
        int p = 0;
        for (; p + 4 <= k; p += 4) {
          const double t0 = alpha * *elem(b, ldb, j, p);
          const double t1 = alpha * *elem(b, ldb, j, p + 1);
          const double t2 = alpha * *elem(b, ldb, j, p + 2);
          const double t3 = alpha * *elem(b, ldb, j, p + 3);
          const double* a0 = a + static_cast<std::size_t>(p) * lda;
          const double* a1 = a + static_cast<std::size_t>(p + 1) * lda;
          const double* a2 = a + static_cast<std::size_t>(p + 2) * lda;
          const double* a3 = a + static_cast<std::size_t>(p + 3) * lda;
          for (int i = i0; i < i1; ++i) {
            double x = cj[i];
            x += t0 * a0[i];
            x += t1 * a1[i];
            x += t2 * a2[i];
            x += t3 * a3[i];
            cj[i] = x;
          }
        }
        for (; p < k; ++p) {
          const double t = alpha * *elem(b, ldb, j, p);
          const double* ap = a + static_cast<std::size_t>(p) * lda;
          for (int i = i0; i < i1; ++i) cj[i] += t * ap[i];
        }
      }
    }
  } else {  // T, T
    // C(i,j) += alpha * dot(A(:,i), B(j,:)) — contracted dimension blocked
    // like T,N, with the running dot spilled through an m x n scratch
    // between p-blocks. Inner accumulation stays strictly p-ordered, so the
    // result is bit-identical to the naive j/i/p loop this replaces.
    std::vector<double> acc(static_cast<std::size_t>(m) * n, 0.0);
    for (int p0 = 0; p0 < k; p0 += kLongBlock) {
      const int p1 = std::min(k, p0 + kLongBlock);
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * k > 1 << 16)
      for (int j = 0; j < n; ++j) {
        double* accj = acc.data() + static_cast<std::size_t>(j) * m;
        for (int i = 0; i < m; ++i) {
          const double* ai = a + static_cast<std::size_t>(i) * lda;
          double s = accj[i];
          for (int p = p0; p < p1; ++p) s += ai[p] * *elem(b, ldb, j, p);
          accj[i] = s;
        }
      }
    }
    for (int j = 0; j < n; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      const double* accj = acc.data() + static_cast<std::size_t>(j) * m;
      for (int i = 0; i < m; ++i) cj[i] += alpha * accj[i];
    }
  }
}

void syrk_tn(int m, int n, const double* a, int lda, double* c, int ldc) {
  // Single cache-blocked pass over the tall panel: a block of kLongBlock
  // rows of all n columns stays resident while every Gram pair consumes
  // it, so V streams from DRAM once instead of ~n/2 times. The running sum
  // for each c(i,j) is spilled through the output between blocks and the
  // inner loop stays strictly p-ordered (4 terms fused per pass, added one
  // at a time), so the result is bit-identical to a naive serial dot for
  // any block size or thread count. Each (i,j) is owned by one thread.
  const bool big = static_cast<long long>(m) * n > 1 << 16;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) {
      c[static_cast<std::size_t>(j) * ldc + i] = 0.0;
    }
  }
  for (int p0 = 0; p0 < m; p0 += kLongBlock) {
    const int p1 = std::min(m, p0 + kLongBlock);
#pragma omp parallel for schedule(dynamic) if (big)
    for (int j = 0; j < n; ++j) {
      const double* aj = a + static_cast<std::size_t>(j) * lda;
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      for (int i = 0; i <= j; ++i) {
        const double* ai = a + static_cast<std::size_t>(i) * lda;
        double s = cj[i];
        int p = p0;
        for (; p + 4 <= p1; p += 4) {
          s += ai[p] * aj[p];
          s += ai[p + 1] * aj[p + 1];
          s += ai[p + 2] * aj[p + 2];
          s += ai[p + 3] * aj[p + 3];
        }
        for (; p < p1; ++p) s += ai[p] * aj[p];
        cj[i] = s;
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) {
      c[static_cast<std::size_t>(i) * ldc + j] =
          c[static_cast<std::size_t>(j) * ldc + i];
    }
  }
}

void trsm_right_upper(int m, int n, const double* r, int ldr, double* b,
                      int ldb) {
  // Column j of B*R^{-1} depends only on columns 0..j of B: solve left to
  // right, subtracting the already-finished columns.
  for (int j = 0; j < n; ++j) {
    double* bj = b + static_cast<std::size_t>(j) * ldb;
    for (int p = 0; p < j; ++p) {
      const double t = *elem(r, ldr, p, j);
      if (t == 0.0) continue;
      const double* bp = b + static_cast<std::size_t>(p) * ldb;
      for (int i = 0; i < m; ++i) bj[i] -= t * bp[i];
    }
    const double d = *elem(r, ldr, j, j);
    CAGMRES_REQUIRE(d != 0.0, "trsm: zero diagonal in R");
    const double inv = 1.0 / d;
    for (int i = 0; i < m; ++i) bj[i] *= inv;
  }
}

void trmm_right_upper(int m, int n, const double* r, int ldr, double* b,
                      int ldb) {
  // Process right to left so untouched columns of B remain available.
  for (int j = n - 1; j >= 0; --j) {
    double* bj = b + static_cast<std::size_t>(j) * ldb;
    const double d = *elem(r, ldr, j, j);
    for (int i = 0; i < m; ++i) bj[i] *= d;
    for (int p = 0; p < j; ++p) {
      const double t = *elem(r, ldr, p, j);
      if (t == 0.0) continue;
      const double* bp = b + static_cast<std::size_t>(p) * ldb;
      for (int i = 0; i < m; ++i) bj[i] += t * bp[i];
    }
  }
}

}  // namespace cagmres::blas
