#include "blas/blas3.hpp"

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cagmres::blas {

namespace {

inline const double* elem(const double* a, int lda, int i, int j) {
  return a + static_cast<std::size_t>(j) * lda + i;
}

}  // namespace

void gemm(Trans ta, Trans tb, int m, int n, int k, double alpha,
          const double* a, int lda, const double* b, int ldb, double beta,
          double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    double* cj = c + static_cast<std::size_t>(j) * ldc;
    if (beta == 0.0) {
      for (int i = 0; i < m; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  if (ta == Trans::N && tb == Trans::N) {
    // C += alpha * A * B, unit-stride over columns of A.
    for (int j = 0; j < n; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      for (int p = 0; p < k; ++p) {
        const double t = alpha * *elem(b, ldb, p, j);
        const double* ap = a + static_cast<std::size_t>(p) * lda;
        for (int i = 0; i < m; ++i) cj[i] += t * ap[i];
      }
    }
  } else if (ta == Trans::T && tb == Trans::N) {
    // C(i,j) += alpha * dot(A(:,i), B(:,j)).
    for (int j = 0; j < n; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      const double* bj = b + static_cast<std::size_t>(j) * ldb;
      for (int i = 0; i < m; ++i) {
        const double* ai = a + static_cast<std::size_t>(i) * lda;
        double acc = 0.0;
        for (int p = 0; p < k; ++p) acc += ai[p] * bj[p];
        cj[i] += alpha * acc;
      }
    }
  } else if (ta == Trans::N && tb == Trans::T) {
    for (int j = 0; j < n; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      for (int p = 0; p < k; ++p) {
        const double t = alpha * *elem(b, ldb, j, p);
        const double* ap = a + static_cast<std::size_t>(p) * lda;
        for (int i = 0; i < m; ++i) cj[i] += t * ap[i];
      }
    }
  } else {  // T, T
    for (int j = 0; j < n; ++j) {
      double* cj = c + static_cast<std::size_t>(j) * ldc;
      for (int i = 0; i < m; ++i) {
        const double* ai = a + static_cast<std::size_t>(i) * lda;
        double acc = 0.0;
        for (int p = 0; p < k; ++p) acc += ai[p] * *elem(b, ldb, j, p);
        cj[i] += alpha * acc;
      }
    }
  }
}

void syrk_tn(int m, int n, const double* a, int lda, double* c, int ldc) {
  // Columns are independent; each Gram entry is a serial dot product, so
  // the result does not depend on the thread count.
#pragma omp parallel for schedule(dynamic) if (static_cast<long long>(m) * n > 1 << 16)
  for (int j = 0; j < n; ++j) {
    const double* aj = a + static_cast<std::size_t>(j) * lda;
    for (int i = 0; i <= j; ++i) {
      const double* ai = a + static_cast<std::size_t>(i) * lda;
      double acc = 0.0;
      for (int p = 0; p < m; ++p) acc += ai[p] * aj[p];
      c[static_cast<std::size_t>(j) * ldc + i] = acc;
      c[static_cast<std::size_t>(i) * ldc + j] = acc;
    }
  }
}

void trsm_right_upper(int m, int n, const double* r, int ldr, double* b,
                      int ldb) {
  // Column j of B*R^{-1} depends only on columns 0..j of B: solve left to
  // right, subtracting the already-finished columns.
  for (int j = 0; j < n; ++j) {
    double* bj = b + static_cast<std::size_t>(j) * ldb;
    for (int p = 0; p < j; ++p) {
      const double t = *elem(r, ldr, p, j);
      if (t == 0.0) continue;
      const double* bp = b + static_cast<std::size_t>(p) * ldb;
      for (int i = 0; i < m; ++i) bj[i] -= t * bp[i];
    }
    const double d = *elem(r, ldr, j, j);
    CAGMRES_REQUIRE(d != 0.0, "trsm: zero diagonal in R");
    const double inv = 1.0 / d;
    for (int i = 0; i < m; ++i) bj[i] *= inv;
  }
}

void trmm_right_upper(int m, int n, const double* r, int ldr, double* b,
                      int ldb) {
  // Process right to left so untouched columns of B remain available.
  for (int j = n - 1; j >= 0; --j) {
    double* bj = b + static_cast<std::size_t>(j) * ldb;
    const double d = *elem(r, ldr, j, j);
    for (int i = 0; i < m; ++i) bj[i] *= d;
    for (int p = 0; p < j; ++p) {
      const double t = *elem(r, ldr, p, j);
      if (t == 0.0) continue;
      const double* bp = b + static_cast<std::size_t>(p) * ldb;
      for (int i = 0; i < m; ++i) bj[i] += t * bp[i];
    }
  }
}

}  // namespace cagmres::blas
