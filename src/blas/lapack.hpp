// LAPACK-lite: the small dense factorizations CA-GMRES needs on the host.
//
// Everything here operates on matrices of dimension O(s) or O(m) — tiny
// compared to the n-dimensional panels — so clarity beats blocking.
#pragma once

#include "blas/matrix.hpp"

namespace cagmres::blas {

/// Upper Cholesky factorization B = R^T R in place (upper triangle of `a`
/// becomes R; the strict lower triangle is zeroed).
/// Returns -1 on success, or the 0-based column index of the first
/// non-positive pivot (the CholQR breakdown signal — the matrix is left
/// partially factored and must not be used).
int potrf_upper(DMat& a);

/// Householder QR of an m x n (m >= n) matrix in place: on exit the upper
/// triangle of `a` holds R and the lower trapezoid holds the Householder
/// vectors; `tau` receives the n reflector scalars.
void geqrf(DMat& a, std::vector<double>& tau);

/// Forms the explicit m x n orthonormal Q from geqrf output (the paper's
/// implementation also forms Q explicitly; see its footnote 6).
void orgqr(const DMat& qr, const std::vector<double>& tau, DMat& q);

/// Convenience: computes the thin QR factorization of `v` (m x n, m >= n),
/// returning Q in `q` (m x n) and R in `r` (n x n upper triangular).
/// The diagonal of R is forced non-negative by column sign flips so that QR
/// factorizations are unique and comparable across methods.
void qr_explicit(const DMat& v, DMat& q, DMat& r);

/// Householder QR with column pivoting (rank-revealing QR — the direction
/// the paper's conclusion cites via Demmel et al. [10]). Factors
/// A P = Q R with non-increasing |R(j,j)|; `rank` is the numerical rank
/// with respect to rtol (first diagonal below rtol * |R(0,0)| truncates).
struct PivotedQr {
  DMat qr;                 ///< packed Householder form (as geqrf)
  std::vector<double> tau; ///< reflector scalars
  std::vector<int> jpvt;   ///< column permutation: A(:, jpvt[k]) -> col k
  int rank = 0;            ///< numerical rank at the given tolerance
};
PivotedQr qr_pivoted(const DMat& a, double rtol = 1e-12);

/// Solves R x = b in place for upper-triangular R (n x n); b has n entries.
void trsv_upper(const DMat& r, double* b);

/// In-place inversion of an upper triangular matrix (small n only).
void trtri_upper(DMat& r);

}  // namespace cagmres::blas
