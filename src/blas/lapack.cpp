#include "blas/lapack.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "blas/blas1.hpp"

namespace cagmres::blas {

int potrf_upper(DMat& a) {
  const int n = a.rows();
  CAGMRES_REQUIRE(a.cols() == n, "potrf: matrix not square");
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int p = 0; p < j; ++p) d -= a(p, j) * a(p, j);
    if (!(d > 0.0)) return j;  // also catches NaN
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (int k = j + 1; k < n; ++k) {
      double v = a(j, k);
      for (int p = 0; p < j; ++p) v -= a(p, j) * a(p, k);
      a(j, k) = v * inv;
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) a(i, j) = 0.0;
  }
  return -1;
}

void geqrf(DMat& a, std::vector<double>& tau) {
  const int m = a.rows();
  const int n = a.cols();
  CAGMRES_REQUIRE(m >= n, "geqrf: need m >= n");
  tau.assign(static_cast<std::size_t>(n), 0.0);
  for (int k = 0; k < n; ++k) {
    double* x = a.col(k) + k;  // column k, rows k..m-1
    const int len = m - k;
    const double alpha = x[0];
    const double xnorm = nrm2(len - 1, x + 1);
    if (xnorm == 0.0 && alpha >= 0.0) {
      tau[static_cast<std::size_t>(k)] = 0.0;
      continue;
    }
    double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    const double t = (beta - alpha) / beta;
    const double inv = 1.0 / (alpha - beta);
    for (int i = 1; i < len; ++i) x[i] *= inv;
    x[0] = beta;
    tau[static_cast<std::size_t>(k)] = t;
    // Apply H = I - tau * v v^T to trailing columns.
    for (int j = k + 1; j < n; ++j) {
      double* y = a.col(j) + k;
      double w = y[0];
      for (int i = 1; i < len; ++i) w += x[i] * y[i];
      w *= t;
      y[0] -= w;
      for (int i = 1; i < len; ++i) y[i] -= w * x[i];
    }
  }
}

void orgqr(const DMat& qr, const std::vector<double>& tau, DMat& q) {
  const int m = qr.rows();
  const int n = qr.cols();
  q = DMat(m, n);
  for (int j = 0; j < n; ++j) q(j, j) = 1.0;
  // Accumulate reflectors back to front.
  for (int k = n - 1; k >= 0; --k) {
    const double t = tau[static_cast<std::size_t>(k)];
    if (t == 0.0) continue;
    const double* v = qr.col(k) + k;  // v[0] implicitly 1
    const int len = m - k;
    for (int j = 0; j < n; ++j) {
      double* y = q.col(j) + k;
      double w = y[0];
      for (int i = 1; i < len; ++i) w += v[i] * y[i];
      w *= t;
      y[0] -= w;
      for (int i = 1; i < len; ++i) y[i] -= w * v[i];
    }
  }
}

void qr_explicit(const DMat& v, DMat& q, DMat& r) {
  DMat work = v;
  std::vector<double> tau;
  geqrf(work, tau);
  const int n = v.cols();
  r = DMat(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j && i < n; ++i) r(i, j) = work(i, j);
  }
  orgqr(work, tau, q);
  // Normalize sign so diag(R) >= 0.
  for (int j = 0; j < n; ++j) {
    if (r(j, j) < 0.0) {
      for (int k = j; k < n; ++k) r(j, k) = -r(j, k);
      double* qj = q.col(j);
      for (int i = 0; i < q.rows(); ++i) qj[i] = -qj[i];
    }
  }
}

PivotedQr qr_pivoted(const DMat& a, double rtol) {
  const int m = a.rows();
  const int n = a.cols();
  CAGMRES_REQUIRE(m >= n, "qr_pivoted: need m >= n");
  PivotedQr out;
  out.qr = a;
  out.tau.assign(static_cast<std::size_t>(n), 0.0);
  out.jpvt.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) out.jpvt[static_cast<std::size_t>(j)] = j;

  // Running column norms with the classic downdate + recompute safeguard.
  std::vector<double> colnorm(static_cast<std::size_t>(n));
  std::vector<double> colnorm_ref(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    colnorm[static_cast<std::size_t>(j)] = nrm2(m, out.qr.col(j));
    colnorm_ref[static_cast<std::size_t>(j)] = colnorm[static_cast<std::size_t>(j)];
  }

  DMat& q = out.qr;
  double first_diag = 0.0;
  out.rank = n;
  for (int k = 0; k < n; ++k) {
    // Pivot: bring the largest remaining column to position k.
    int piv = k;
    for (int j = k + 1; j < n; ++j) {
      if (colnorm[static_cast<std::size_t>(j)] >
          colnorm[static_cast<std::size_t>(piv)]) {
        piv = j;
      }
    }
    if (piv != k) {
      for (int i = 0; i < m; ++i) std::swap(q(i, k), q(i, piv));
      std::swap(colnorm[static_cast<std::size_t>(k)],
                colnorm[static_cast<std::size_t>(piv)]);
      std::swap(colnorm_ref[static_cast<std::size_t>(k)],
                colnorm_ref[static_cast<std::size_t>(piv)]);
      std::swap(out.jpvt[static_cast<std::size_t>(k)],
                out.jpvt[static_cast<std::size_t>(piv)]);
    }

    // Householder reflector for column k.
    double* x = q.col(k) + k;
    const int len = m - k;
    const double alpha = x[0];
    const double xnorm = nrm2(len - 1, x + 1);
    double t = 0.0;
    if (!(xnorm == 0.0 && alpha >= 0.0)) {
      const double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
      t = (beta - alpha) / beta;
      const double inv = 1.0 / (alpha - beta);
      for (int i = 1; i < len; ++i) x[i] *= inv;
      x[0] = beta;
    }
    out.tau[static_cast<std::size_t>(k)] = t;
    if (k == 0) {
      first_diag = std::fabs(q(0, 0));
      if (first_diag == 0.0) out.rank = 0;  // zero matrix
    }
    if (std::fabs(q(k, k)) < rtol * first_diag && out.rank == n) {
      out.rank = k;
    }

    // Apply to the trailing columns and downdate their norms.
    for (int j = k + 1; j < n; ++j) {
      double* y = q.col(j) + k;
      if (t != 0.0) {
        double w = y[0];
        for (int i = 1; i < len; ++i) w += x[i] * y[i];
        w *= t;
        y[0] -= w;
        for (int i = 1; i < len; ++i) y[i] -= w * x[i];
      }
      double& cn = colnorm[static_cast<std::size_t>(j)];
      if (cn != 0.0) {
        const double ratio = std::fabs(y[0]) / cn;
        const double tmp = std::max(0.0, 1.0 - ratio * ratio);
        cn *= std::sqrt(tmp);
        // Recompute when cancellation ate the running value.
        if (cn <= 0.05 * colnorm_ref[static_cast<std::size_t>(j)]) {
          cn = nrm2(m - k - 1, q.col(j) + k + 1);
          colnorm_ref[static_cast<std::size_t>(j)] = cn;
        }
      }
    }
  }
  return out;
}

void trsv_upper(const DMat& r, double* b) {
  const int n = r.rows();
  CAGMRES_REQUIRE(r.cols() == n, "trsv: matrix not square");
  for (int i = n - 1; i >= 0; --i) {
    double v = b[i];
    for (int j = i + 1; j < n; ++j) v -= r(i, j) * b[j];
    const double d = r(i, i);
    CAGMRES_REQUIRE(d != 0.0, "trsv: singular R");
    b[i] = v / d;
  }
}

void trtri_upper(DMat& r) {
  // Left-to-right column sweep (LAPACK dtrti2): when column j is processed
  // the leading (j x j) block already holds its own inverse, so
  // inv(0:j-1, j) = -inv_block * r(0:j-1, j) / r(j, j).
  const int n = r.rows();
  CAGMRES_REQUIRE(r.cols() == n, "trtri: matrix not square");
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double d = r(j, j);
    CAGMRES_REQUIRE(d != 0.0, "trtri: singular R");
    const double invd = 1.0 / d;
    for (int i = 0; i < j; ++i) {
      double acc = 0.0;
      for (int k = i; k < j; ++k) acc += r(i, k) * r(k, j);
      w[static_cast<std::size_t>(i)] = acc;
    }
    for (int i = 0; i < j; ++i) r(i, j) = -w[static_cast<std::size_t>(i)] * invd;
    r(j, j) = invd;
  }
}

}  // namespace cagmres::blas
