// Level-2 dense kernels (matrix-vector products) on column-major storage.
#pragma once

namespace cagmres::blas {

/// y := alpha * A * x + beta * y for column-major A (m x n, leading dim lda).
void gemv_n(int m, int n, double alpha, const double* a, int lda,
            const double* x, double beta, double* y);

/// y := alpha * A^T * x + beta * y for column-major A (m x n, leading dim lda).
/// This is the tall-skinny projection kernel of CGS: each output entry is a
/// dot product of one column of A with x, which is exactly how the paper's
/// optimized MAGMA DGEMV assigns thread blocks.
void gemv_t(int m, int n, double alpha, const double* a, int lda,
            const double* x, double beta, double* y);

/// Rank-1 update A := A + alpha * x * y^T.
void ger(int m, int n, double alpha, const double* x, const double* y,
         double* a, int lda);

}  // namespace cagmres::blas
