// Level-3 dense kernels on column-major storage.
#pragma once

namespace cagmres::blas {

/// Transpose selector for gemm operands.
enum class Trans { N, T };

/// C := alpha * op(A) * op(B) + beta * C, all column-major.
/// op(A) is m x k, op(B) is k x n, C is m x n.
void gemm(Trans ta, Trans tb, int m, int n, int k, double alpha,
          const double* a, int lda, const double* b, int ldb, double beta,
          double* c, int ldc);

/// Gram matrix C := A^T * A for a tall-skinny m x n panel A (C is n x n).
/// Exploits symmetry: only the upper triangle is computed, then mirrored.
/// This is the BLAS-3 workhorse of CholQR/SVQR.
void syrk_tn(int m, int n, const double* a, int lda, double* c, int ldc);

/// Right triangular solve B := B * R^{-1} for upper-triangular n x n R and
/// m x n panel B. This is the CholQR "orthogonalize by triangular solve" step.
void trsm_right_upper(int m, int n, const double* r, int ldr, double* b,
                      int ldb);

/// Right triangular multiply B := B * R for upper-triangular R (used when
/// reconstructing V = Q*R in error metrics and tests).
void trmm_right_upper(int m, int n, const double* r, int ldr, double* b,
                      int ldb);

}  // namespace cagmres::blas
