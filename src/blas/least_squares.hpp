// Hessenberg least-squares solvers for the GMRES projected problem.
//
// GMRES updates its solution by minimizing ||beta*e1 - H y|| where H is the
// (m+1) x m upper Hessenberg matrix from the Arnoldi (or CA) process. The
// standard technique is a progressive Givens QR of H: each new column costs
// O(m) and the rotated right-hand side's trailing entry gives the residual
// norm for free — which is how GMRES monitors convergence without forming
// the residual vector.
#pragma once

#include <vector>

#include "blas/matrix.hpp"

namespace cagmres::blas {

/// Progressive Givens least-squares solver for Hessenberg systems.
class GivensLS {
 public:
  /// Prepares for up to max_cols columns; rhs starts as beta * e1.
  GivensLS(int max_cols, double beta);

  /// Appends column j (0-based, must be appended in order) with entries
  /// hcol[0..j+1] = H(0..j+1, j). Returns |residual| of the LS problem using
  /// the first j+1 columns.
  /// Caveat: an all-zero column makes the triangular factor singular —
  /// solve() then throws and the returned residual estimate is not
  /// meaningful. GMRES never produces one (happy breakdown is detected on
  /// the basis-vector norm before the column reaches the LS solver).
  double append_column(const double* hcol);

  /// Number of columns appended so far.
  int size() const { return k_; }

  /// Current least-squares residual norm.
  double residual_norm() const;

  /// Solves the triangular system for the k appended columns.
  std::vector<double> solve() const;

 private:
  int max_cols_;
  int k_ = 0;
  DMat r_;                  // triangular factor, (max_cols) x (max_cols)
  std::vector<double> g_;   // rotated rhs, max_cols+1
  std::vector<double> cs_;  // rotation cosines
  std::vector<double> sn_;  // rotation sines
};

/// One-shot solve of min ||beta*e1 - H y|| for an (m+1) x m Hessenberg H.
/// Returns y; *residual_norm (if non-null) receives the minimal residual.
std::vector<double> solve_hessenberg_ls(const DMat& h, double beta,
                                        double* residual_norm = nullptr);

}  // namespace cagmres::blas
