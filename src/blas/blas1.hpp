// Level-1 dense kernels on raw column storage.
//
// These are the host reference kernels the simulated device executes. They
// are deliberately simple loops: with -O3 GCC vectorizes all of them, and
// the simulated clock — not wall time — is what the experiments report.
#pragma once

#include <cstddef>

namespace cagmres::blas {

/// Dot product x·y over n entries.
double dot(int n, const double* x, const double* y);

/// Euclidean norm with scaling to avoid overflow/underflow.
double nrm2(int n, const double* x);

/// y := alpha*x + y.
void axpy(int n, double alpha, const double* x, double* y);

/// x := alpha*x.
void scal(int n, double alpha, double* x);

/// y := x.
void copy(int n, const double* x, double* y);

/// Infinity norm max_i |x_i|.
double amax(int n, const double* x);

}  // namespace cagmres::blas
