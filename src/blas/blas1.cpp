#include "blas/blas1.hpp"

#include <cmath>

// Host kernels parallelize elementwise loops with OpenMP; reductions (dot,
// nrm2) stay serial so results are bitwise reproducible run to run and
// independent of the thread count.

namespace cagmres::blas {

double dot(int n, const double* x, const double* y) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double nrm2(int n, const double* x) {
  // Two-pass scaled norm: cheap and immune to overflow for the magnitudes
  // that show up in graded CA-GMRES bases.
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = std::fabs(x[i]);
    if (a > scale) scale = a;
  }
  if (scale == 0.0) return 0.0;
  double ssq = 0.0;
  const double inv = 1.0 / scale;
  for (int i = 0; i < n; ++i) {
    const double t = x[i] * inv;
    ssq += t * t;
  }
  return scale * std::sqrt(ssq);
}

void axpy(int n, double alpha, const double* x, double* y) {
#pragma omp parallel for schedule(static) if (n > 1 << 15)
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(int n, double alpha, double* x) {
#pragma omp parallel for schedule(static) if (n > 1 << 15)
  for (int i = 0; i < n; ++i) x[i] *= alpha;
}

void copy(int n, const double* x, double* y) {
#pragma omp parallel for schedule(static) if (n > 1 << 15)
  for (int i = 0; i < n; ++i) y[i] = x[i];
}

double amax(int n, const double* x) {
  double m = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  return m;
}

}  // namespace cagmres::blas
