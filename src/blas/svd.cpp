#include "blas/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cagmres::blas {

EighResult jacobi_eigh(const DMat& a, int max_sweeps) {
  const int n = a.rows();
  CAGMRES_REQUIRE(a.cols() == n, "jacobi_eigh: matrix not square");
  DMat m = a;
  DMat u(n, n);
  for (int i = 0; i < n; ++i) u(i, i) = 1.0;

  EighResult res;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    res.sweeps = sweep + 1;
    double off = 0.0;
    for (int j = 1; j < n; ++j) {
      for (int i = 0; i < j; ++i) off += m(i, j) * m(i, j);
    }
    double diag = 0.0;
    for (int i = 0; i < n; ++i) diag += m(i, i) * m(i, i);
    if (off <= 1e-30 * (diag + 1e-300)) break;

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (apq == 0.0) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        // Stable rotation angle computation (Golub & Van Loan §8.5).
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply J^T M J with J the (p,q) rotation.
        for (int k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (int k = 0; k < n; ++k) {
          const double ukp = u(k, p);
          const double ukq = u(k, q);
          u(k, p) = c * ukp - s * ukq;
          u(k, q) = s * ukp + c * ukq;
        }
      }
    }
  }

  // Sort eigenpairs descending.
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](int i, int j) { return m(i, i) > m(j, j); });
  res.w.resize(static_cast<std::size_t>(n));
  res.u = DMat(n, n);
  for (int j = 0; j < n; ++j) {
    const int src = idx[static_cast<std::size_t>(j)];
    res.w[static_cast<std::size_t>(j)] = m(src, src);
    for (int i = 0; i < n; ++i) res.u(i, j) = u(i, src);
  }
  return res;
}

}  // namespace cagmres::blas
