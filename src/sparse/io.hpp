// Matrix Market I/O.
//
// The paper's test matrices come from the UF (SuiteSparse) collection in
// Matrix Market format. This environment is offline, so our experiments use
// the synthetic analogs in generators.hpp — but a downstream user with the
// real files drops them in via read_matrix_market and every bench accepts a
// --matrix=path override.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace cagmres::sparse {

/// Reads a Matrix Market coordinate file (real, general/symmetric/
/// skew-symmetric; `pattern` entries get value 1.0). Symmetric storage is
/// expanded to full. Throws cagmres::Error on malformed input.
CsrMatrix read_matrix_market(const std::string& path);

/// Stream variant of read_matrix_market.
CsrMatrix read_matrix_market(std::istream& in);

/// Writes `a` as a real general Matrix Market coordinate file.
void write_matrix_market(const CsrMatrix& a, const std::string& path);

/// Stream variant of write_matrix_market.
void write_matrix_market(const CsrMatrix& a, std::ostream& out);

/// Reads a dense vector: MatrixMarket array format (%%MatrixMarket matrix
/// array real general, n x 1) or a bare one-value-per-line file.
std::vector<double> read_vector(const std::string& path);
std::vector<double> read_vector(std::istream& in);

/// Writes a dense vector in MatrixMarket array format.
void write_vector(const std::vector<double>& x, const std::string& path);
void write_vector(const std::vector<double>& x, std::ostream& out);

}  // namespace cagmres::sparse
