#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace cagmres::sparse {

CooBuilder::CooBuilder(int n_rows, int n_cols)
    : n_rows_(n_rows), n_cols_(n_cols) {
  CAGMRES_REQUIRE(n_rows >= 0 && n_cols >= 0, "negative dimension");
}

void CooBuilder::add(int i, int j, double v) {
  CAGMRES_ASSERT(0 <= i && i < n_rows_ && 0 <= j && j < n_cols_,
                 "triplet out of range");
  rows_.push_back(i);
  cols_.push_back(j);
  vals_.push_back(v);
}

CsrMatrix CooBuilder::build() {
  const std::size_t nnz_in = rows_.size();
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows_[a] != rows_[b]) return rows_[a] < rows_[b];
    return cols_[a] < cols_[b];
  });

  CsrMatrix out;
  out.n_rows = n_rows_;
  out.n_cols = n_cols_;
  out.row_ptr.assign(static_cast<std::size_t>(n_rows_) + 1, 0);
  out.col_idx.reserve(nnz_in);
  out.vals.reserve(nnz_in);

  int last_row = -1;
  int last_col = -1;
  for (const std::size_t k : order) {
    const int i = rows_[k];
    const int j = cols_[k];
    if (i == last_row && j == last_col) {
      out.vals.back() += vals_[k];
    } else {
      out.col_idx.push_back(j);
      out.vals.push_back(vals_[k]);
      ++out.row_ptr[static_cast<std::size_t>(i) + 1];
      last_row = i;
      last_col = j;
    }
  }
  for (std::size_t i = 1; i < out.row_ptr.size(); ++i) {
    out.row_ptr[i] += out.row_ptr[i - 1];
  }
  rows_.clear();
  cols_.clear();
  vals_.clear();
  rows_.shrink_to_fit();
  cols_.shrink_to_fit();
  vals_.shrink_to_fit();
  return out;
}

}  // namespace cagmres::sparse
