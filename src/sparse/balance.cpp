#include "sparse/balance.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cagmres::sparse {

BalanceScaling balance(CsrMatrix& a) {
  BalanceScaling s;
  s.row.assign(static_cast<std::size_t>(a.n_rows), 1.0);
  s.col.assign(static_cast<std::size_t>(a.n_cols), 1.0);

  // Row pass.
  for (int i = 0; i < a.n_rows; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    double acc = 0.0;
    for (auto k = lo; k < hi; ++k) {
      const double v = a.vals[static_cast<std::size_t>(k)];
      acc += v * v;
    }
    if (acc > 0.0) {
      const double inv = 1.0 / std::sqrt(acc);
      s.row[static_cast<std::size_t>(i)] = inv;
      for (auto k = lo; k < hi; ++k) a.vals[static_cast<std::size_t>(k)] *= inv;
    }
  }
  // Column pass (on the row-scaled matrix).
  std::vector<double> colsq(static_cast<std::size_t>(a.n_cols), 0.0);
  for (std::size_t k = 0; k < a.vals.size(); ++k) {
    colsq[static_cast<std::size_t>(a.col_idx[k])] += a.vals[k] * a.vals[k];
  }
  for (int j = 0; j < a.n_cols; ++j) {
    if (colsq[static_cast<std::size_t>(j)] > 0.0) {
      s.col[static_cast<std::size_t>(j)] =
          1.0 / std::sqrt(colsq[static_cast<std::size_t>(j)]);
    }
  }
  for (std::size_t k = 0; k < a.vals.size(); ++k) {
    a.vals[k] *= s.col[static_cast<std::size_t>(a.col_idx[k])];
  }
  return s;
}

void scale_rhs(const BalanceScaling& s, std::vector<double>& b) {
  CAGMRES_REQUIRE(b.size() == s.row.size(), "rhs size mismatch");
  for (std::size_t i = 0; i < b.size(); ++i) b[i] *= s.row[i];
}

void unscale_solution(const BalanceScaling& s, std::vector<double>& y) {
  CAGMRES_REQUIRE(y.size() == s.col.size(), "solution size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] *= s.col[i];
}

}  // namespace cagmres::sparse
