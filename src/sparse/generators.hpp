// Synthetic sparse matrix generators.
//
// The paper evaluates on four SuiteSparse matrices (its Fig. 12): cant,
// G3_circuit, dielFilterV2real, and nlpkkt120. Those files are not
// available offline, so each generator below builds an analog that
// preserves the *structural* properties the experiments exercise —
// bandedness vs. irregularity (drives the MPK surface-to-volume story of
// Figs. 6-8), nonzeros per row (drives SpMV cost), and rough conditioning
// (drives restart counts and the orthogonalization error study of Fig. 13).
// DESIGN.md §2 documents the mapping. All generators are deterministic
// given their arguments.
#pragma once

#include <cstdint>
#include <string>

#include "sparse/csr.hpp"

namespace cagmres::sparse {

/// 2D 5-point convection-diffusion operator on an nx x ny grid.
/// `convection` adds a nonsymmetric first-order term (0 = pure Laplacian);
/// `shift` adds shift*I (larger = better conditioned).
CsrMatrix make_laplace2d(int nx, int ny, double convection = 0.0,
                         double shift = 0.0);

/// 3D 7-point convection-diffusion operator on an nx x ny x nz grid.
CsrMatrix make_laplace3d(int nx, int ny, int nz, double convection = 0.0,
                         double shift = 0.0);

/// 3D 27-point stencil with `block` unknowns per grid node (FEM-style dof
/// blocks), optional anisotropy in z and a nonsymmetric convection term.
/// `contrast` > 0 draws a lognormal per-node coefficient field spanning
/// 10^contrast orders of magnitude (edge weight = harmonic mean of the two
/// endpoint coefficients) — the standard way heterogeneous FEM problems get
/// their large condition numbers, and our hardness lever for matching the
/// paper's iteration counts.
CsrMatrix make_stencil27(int nx, int ny, int nz, int block,
                         double convection = 0.0, double anisotropy = 1.0,
                         double shift = 0.0, double contrast = 0.0,
                         std::uint64_t seed = 7);

/// Analog of `cant` (FEM cantilever, n=62k, 64 nnz/row): naturally banded
/// 3D 27-point stencil with 2-dof blocks. grid ~ 31*scale per side.
CsrMatrix make_cant_like(double scale = 1.0);

/// Analog of `G3_circuit` (n=1.58M, 4.8 nnz/row): a 2D 5-point grid plus a
/// sprinkling of random long-range "wire" edges. When `scrambled` (the
/// default, matching how circuit netlists are numbered) the rows are
/// randomly permuted, so the *natural* ordering has terrible locality and
/// reordering (RCM/KWY) pays off exactly as in the paper's Fig. 6.
CsrMatrix make_circuit_like(double scale = 1.0, bool scrambled = true,
                            std::uint64_t seed = 42);

/// Analog of `dielFilterV2real` (FEM electromagnetics, n=1.15M, 42 nnz/row):
/// anisotropic nonsymmetric 3D 27-point stencil, mildly indefinite so GMRES
/// needs many restarts.
CsrMatrix make_fem3d_like(double scale = 1.0);

/// Analog of `nlpkkt120` (KKT system, n=3.54M, 27 nnz/row): a 2x2 block
/// saddle-point system [[H, G^T], [G, -delta*I]] on a 3D grid with a
/// regularized (2,2) block. Hard for unpreconditioned GMRES, as in Fig. 15.
CsrMatrix make_kkt_like(double scale = 1.0);

/// Looks up a paper matrix analog by name: "cant", "g3_circuit"/"g3",
/// "dielfilter", or "nlpkkt". Throws on unknown names.
CsrMatrix make_paper_matrix(const std::string& name, double scale = 1.0);

}  // namespace cagmres::sparse
