// Compressed sparse row storage — the library's canonical sparse format.
//
// CSR is what the host (CPU) side of the paper uses for SpMV; the device
// side prefers ELLPACK (see ell.hpp). Row pointers are 64-bit so matrices
// at the paper's nlpkkt120 scale (~95M nonzeros) are representable.
#pragma once

#include <cstdint>
#include <vector>

namespace cagmres::sparse {

/// Square-or-rectangular sparse matrix in CSR form. Column indices within a
/// row are kept sorted; duplicates are not allowed (the COO builder merges
/// them).
struct CsrMatrix {
  int n_rows = 0;
  int n_cols = 0;
  std::vector<std::int64_t> row_ptr;  ///< size n_rows + 1
  std::vector<int> col_idx;           ///< size nnz
  std::vector<double> vals;           ///< size nnz

  std::int64_t nnz() const { return row_ptr.empty() ? 0 : row_ptr.back(); }

  /// Number of nonzeros in row i.
  int row_nnz(int i) const {
    return static_cast<int>(row_ptr[static_cast<std::size_t>(i) + 1] -
                            row_ptr[static_cast<std::size_t>(i)]);
  }

  /// Validates structural invariants (sorted columns, in-range indices,
  /// monotone row pointers). Throws cagmres::Error on violation.
  void validate() const;

  /// Value at (i, j), or 0 if not stored (binary search within the row).
  double at(int i, int j) const;
};

/// y := A x (serial reference SpMV).
void spmv(const CsrMatrix& a, const double* x, double* y);

/// y := A^T x.
void spmv_transpose(const CsrMatrix& a, const double* x, double* y);

/// Extracts the submatrix consisting of the given rows (all columns).
/// Row order in `rows` is preserved; column indices are unchanged (global).
CsrMatrix extract_rows(const CsrMatrix& a, const std::vector<int>& rows);

/// Symmetric permutation B = A(p, p): row i of B is row p[i] of A, and
/// column indices are relabeled through the inverse of p.
CsrMatrix permute_symmetric(const CsrMatrix& a, const std::vector<int>& p);

/// Structural transpose (pattern and values).
CsrMatrix transpose(const CsrMatrix& a);

/// Frobenius norm of the matrix.
double frobenius_norm(const CsrMatrix& a);

}  // namespace cagmres::sparse
