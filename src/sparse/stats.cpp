#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sparse/csr.hpp"

namespace cagmres::sparse {

MatrixStats compute_stats(const CsrMatrix& a) {
  MatrixStats s;
  s.n = a.n_rows;
  s.nnz = a.nnz();
  s.avg_row_nnz = (a.n_rows > 0)
                      ? static_cast<double>(s.nnz) / static_cast<double>(a.n_rows)
                      : 0.0;
  double band_acc = 0.0;
  for (int i = 0; i < a.n_rows; ++i) {
    s.max_row_nnz = std::max(s.max_row_nnz, a.row_nnz(i));
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      const int d = std::abs(a.col_idx[static_cast<std::size_t>(k)] - i);
      s.bandwidth = std::max(s.bandwidth, d);
      band_acc += d;
    }
  }
  s.avg_bandwidth = (s.nnz > 0) ? band_acc / static_cast<double>(s.nnz) : 0.0;

  if (a.n_rows == a.n_cols) {
    // Structural symmetry: pattern of A equals pattern of A^T.
    const CsrMatrix at = transpose(a);
    s.structurally_symmetric =
        at.row_ptr == a.row_ptr && at.col_idx == a.col_idx;
  }
  return s;
}

std::string to_string(const MatrixStats& s) {
  std::ostringstream os;
  os << "n=" << s.n << " nnz=" << s.nnz << " nnz/row=" << s.avg_row_nnz
     << " max_row=" << s.max_row_nnz << " bw=" << s.bandwidth
     << " avg_bw=" << s.avg_bandwidth
     << (s.structurally_symmetric ? " sym" : " nonsym");
  return os.str();
}

}  // namespace cagmres::sparse
