#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace cagmres::sparse {

namespace {

int clamp_dim(double v) { return std::max(2, static_cast<int>(std::lround(v))); }

}  // namespace

CsrMatrix make_laplace2d(int nx, int ny, double convection, double shift) {
  CAGMRES_REQUIRE(nx >= 1 && ny >= 1, "grid too small");
  const auto id = [nx](int i, int j) { return j * nx + i; };
  CooBuilder b(nx * ny, nx * ny);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const int c = id(i, j);
      b.add(c, c, 4.0 + shift);
      // Upwinded convection in +x makes the operator nonsymmetric.
      if (i > 0) b.add(c, id(i - 1, j), -1.0 - convection);
      if (i < nx - 1) b.add(c, id(i + 1, j), -1.0 + convection);
      if (j > 0) b.add(c, id(i, j - 1), -1.0);
      if (j < ny - 1) b.add(c, id(i, j + 1), -1.0);
    }
  }
  return b.build();
}

CsrMatrix make_laplace3d(int nx, int ny, int nz, double convection,
                         double shift) {
  CAGMRES_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "grid too small");
  const auto id = [nx, ny](int i, int j, int k) {
    return (k * ny + j) * nx + i;
  };
  CooBuilder b(nx * ny * nz, nx * ny * nz);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const int c = id(i, j, k);
        b.add(c, c, 6.0 + shift);
        if (i > 0) b.add(c, id(i - 1, j, k), -1.0 - convection);
        if (i < nx - 1) b.add(c, id(i + 1, j, k), -1.0 + convection);
        if (j > 0) b.add(c, id(i, j - 1, k), -1.0);
        if (j < ny - 1) b.add(c, id(i, j + 1, k), -1.0);
        if (k > 0) b.add(c, id(i, j, k - 1), -1.0);
        if (k < nz - 1) b.add(c, id(i, j, k + 1), -1.0);
      }
    }
  }
  return b.build();
}

CsrMatrix make_stencil27(int nx, int ny, int nz, int block, double convection,
                         double anisotropy, double shift, double contrast,
                         std::uint64_t seed) {
  CAGMRES_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1 && block >= 1,
                  "bad stencil spec");
  const auto node = [nx, ny](int i, int j, int k) {
    return (k * ny + j) * nx + i;
  };
  const int n = nx * ny * nz * block;
  // Lognormal coefficient field (1 everywhere when contrast == 0).
  std::vector<double> rho(static_cast<std::size_t>(nx) * ny * nz, 1.0);
  if (contrast > 0.0) {
    Rng rng(seed);
    for (auto& r : rho) r = std::pow(10.0, contrast * rng.uniform());
  }
  CooBuilder b(n, n);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const int c = node(i, j, k);
        double diag_acc = 0.0;
        for (int dk = -1; dk <= 1; ++dk) {
          for (int dj = -1; dj <= 1; ++dj) {
            for (int di = -1; di <= 1; ++di) {
              if (di == 0 && dj == 0 && dk == 0) continue;
              const int ii = i + di, jj = j + dj, kk = k + dk;
              if (ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 ||
                  kk >= nz) {
                continue;
              }
              const int nb = node(ii, jj, kk);
              // 27-point weights: face -1, edge -1/2, corner -1/4, scaled by
              // anisotropy in z and skewed by convection in x.
              const int manhattan = std::abs(di) + std::abs(dj) + std::abs(dk);
              double w = (manhattan == 1) ? -1.0
                         : (manhattan == 2) ? -0.5
                                            : -0.25;
              if (dk != 0) w *= anisotropy;
              if (di != 0) w *= (1.0 - convection * di);
              if (contrast > 0.0) {
                const double r1 = rho[static_cast<std::size_t>(c)];
                const double r2 = rho[static_cast<std::size_t>(nb)];
                w *= 2.0 * r1 * r2 / (r1 + r2);  // harmonic mean (FEM flux)
              }
              diag_acc -= w;
              for (int d1 = 0; d1 < block; ++d1) {
                for (int d2 = 0; d2 < block; ++d2) {
                  // Inter-dof coupling is weaker off the dof diagonal.
                  const double scale = (d1 == d2) ? 1.0 : 0.25;
                  b.add(c * block + d1, nb * block + d2, w * scale);
                }
              }
            }
          }
        }
        for (int d1 = 0; d1 < block; ++d1) {
          for (int d2 = 0; d2 < block; ++d2) {
            const double v =
                (d1 == d2) ? diag_acc * (1.0 + 0.25 * (block - 1)) + shift
                           : 0.1 * diag_acc;
            b.add(c * block + d1, c * block + d2, v);
          }
        }
      }
    }
  }
  return b.build();
}

CsrMatrix make_cant_like(double scale) {
  // Paper: n = 62k, 64.2 nnz/row, naturally banded FEM cantilever.
  // Analog: a genuinely thin 3D beam (15 x 10 cross-section, long axis
  // SLOWEST-varying), 27-pt stencil (26.9 nnz/row — see DESIGN.md; dof
  // blocks turned out to over-improve the equilibrated conditioning, so the
  // beam stays scalar). Natural block-row slabs cut across the long axis,
  // giving the small surface-to-volume slope (~1.5%/hop) that makes MPK pay
  // at s = 15 like the real cant. Calibrated to ~6 GMRES(60) restarts at
  // scale 1 (paper: 7).
  const int nx = clamp_dim(15 * scale);
  const int ny = clamp_dim(10 * scale);
  const int nz = clamp_dim(413 * scale);
  return make_stencil27(nx, ny, nz, /*block=*/1, /*convection=*/0.05,
                        /*anisotropy=*/1.0, /*shift=*/0.002);
}

CsrMatrix make_circuit_like(double scale, bool scrambled, std::uint64_t seed) {
  // Paper: n = 1.585M, 4.8 nnz/row. We default to 1/16 linear scale
  // (n ~ 99k) — pass scale=4 to match the paper's size exactly.
  const int nx = clamp_dim(315 * scale);
  const int ny = nx;
  const int n = nx * ny;
  Rng rng(seed);

  // Base 2D resistor grid. The tiny ground leak keeps the system barely
  // nonsingular; the long-range wires are weak so the spectrum stays
  // grid-Laplacian hard (calibrated: ~20 GMRES(30) restarts at scale 1,
  // paper: 16).
  CooBuilder b(n, n);
  std::vector<double> diag(static_cast<std::size_t>(n), 8e-4);  // ground leak
  const auto id = [nx](int i, int j) { return j * nx + i; };
  auto wire = [&](int u, int v, double g) {
    b.add(u, v, -g);
    b.add(v, u, -g);
    diag[static_cast<std::size_t>(u)] += g;
    diag[static_cast<std::size_t>(v)] += g;
  };
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) wire(id(i, j), id(i + 1, j), 1.0);
      if (j + 1 < ny) wire(id(i, j), id(i, j + 1), 1.0);
    }
  }
  // Sparse long-range wires (~0.2 per node) — the "circuit" irregularity
  // that defeats banded orderings.
  const int extra = n / 5;
  for (int e = 0; e < extra; ++e) {
    const int u = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    wire(u, v, 0.002 * (0.5 + rng.uniform()));
  }
  for (int i = 0; i < n; ++i) b.add(i, i, diag[static_cast<std::size_t>(i)]);
  CsrMatrix a = b.build();

  if (scrambled) {
    // Netlist-style arbitrary numbering: the matrix the solver actually
    // receives has no locality until it is reordered.
    Rng prng(seed ^ 0xabcdef12345ULL);
    a = permute_symmetric(a, prng.permutation(n));
  }
  return a;
}

CsrMatrix make_fem3d_like(double scale) {
  // Paper: n = 1.157M, 41.9 nnz/row, FEM electromagnetics, very slow to
  // converge (the paper's hardest Fig. 14 case). Analog: a flat, wide 3D
  // slab — large graph diameter — with strong convection and a near-zero
  // shift. Calibrated to ~10 GMRES(180) restarts (~1800 iterations) at
  // scale 1.
  const int nx = clamp_dim(180 * scale);
  const int ny = clamp_dim(90 * scale);
  const int nz = clamp_dim(4 * scale);
  return make_stencil27(nx, ny, nz, /*block=*/1, /*convection=*/0.45,
                        /*anisotropy=*/1.0, /*shift=*/0.0005);
}

CsrMatrix make_kkt_like(double scale) {
  // Paper: n = 3.54M, 26.9 nnz/row KKT optimization matrix.
  // Analog: saddle-point [[H, G^T], [G, -delta I]] with H a 3D 7-pt
  // diffusion block and G a one-sided difference coupling.
  const int nx = clamp_dim(56 * scale);
  const int ny = clamp_dim(56 * scale);
  const int nz = clamp_dim(28 * scale);
  const int m = nx * ny * nz;  // primal block size; total n = 2m
  const auto idp = [nx, ny](int i, int j, int k) {
    return (k * ny + j) * nx + i;
  };
  CooBuilder b(2 * m, 2 * m);
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const int c = idp(i, j, k);
        // H block: 7-pt diffusion + weak regularization (calibrated so the
        // saddle system is the hardest of the four analogs, as in Fig. 15).
        b.add(c, c, 6.05);
        if (i > 0) b.add(c, idp(i - 1, j, k), -1.0);
        if (i < nx - 1) b.add(c, idp(i + 1, j, k), -1.0);
        if (j > 0) b.add(c, idp(i, j - 1, k), -1.0);
        if (j < ny - 1) b.add(c, idp(i, j + 1, k), -1.0);
        if (k > 0) b.add(c, idp(i, j, k - 1), -1.0);
        if (k < nz - 1) b.add(c, idp(i, j, k + 1), -1.0);
        // G block: forward-difference constraint gradient.
        const int lam = m + c;
        b.add(lam, c, 1.0);
        b.add(c, lam, 1.0);
        if (i < nx - 1) {
          b.add(lam, idp(i + 1, j, k), -0.5);
          b.add(idp(i + 1, j, k), lam, -0.5);
        }
        if (j < ny - 1) {
          b.add(lam, idp(i, j + 1, k), -0.5);
          b.add(idp(i, j + 1, k), lam, -0.5);
        }
        // Regularized (2,2) block keeps the system nonsingular.
        b.add(lam, lam, -0.01);
      }
    }
  }
  return b.build();
}

CsrMatrix make_paper_matrix(const std::string& name, double scale) {
  if (name == "cant") return make_cant_like(scale);
  if (name == "g3_circuit" || name == "g3") return make_circuit_like(scale);
  if (name == "dielfilter" || name == "dielFilterV2real") {
    return make_fem3d_like(scale);
  }
  if (name == "nlpkkt" || name == "nlpkkt120") return make_kkt_like(scale);
  throw Error("unknown paper matrix analog: " + name +
              " (expected cant|g3_circuit|dielfilter|nlpkkt)");
}

}  // namespace cagmres::sparse
