// ELLPACK sparse storage — the GPU-friendly format of the paper.
//
// The paper's device SpMV uses ELLPACK (Fig. 3 caption): every row is padded
// to the same width and the matrix is stored column-of-slots-major so that
// consecutive GPU threads (one per row) read consecutive memory. We keep the
// same layout; the simulated device charges SpMV by the bytes this layout
// actually touches, which is how ELLPACK's padding overhead shows up.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace cagmres::sparse {

/// ELLPACK matrix: `width` slots per row, slot-major storage
/// (entry (row i, slot k) lives at index k * n_rows + i).
struct EllMatrix {
  int n_rows = 0;
  int n_cols = 0;
  int width = 0;
  std::vector<int> col_idx;   ///< size n_rows * width; padding uses row index
  std::vector<double> vals;   ///< size n_rows * width; padding uses 0.0

  std::int64_t stored_slots() const {
    return static_cast<std::int64_t>(n_rows) * width;
  }
};

/// Converts CSR to ELLPACK (width = max row nnz).
EllMatrix to_ell(const CsrMatrix& a);

/// y := A x for ELLPACK A.
void spmv(const EllMatrix& a, const double* x, double* y);

/// Fraction of padded (wasted) slots: 1 - nnz / (n_rows * width).
double padding_ratio(const EllMatrix& a, std::int64_t nnz);

}  // namespace cagmres::sparse
