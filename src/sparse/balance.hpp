// Matrix equilibration (the paper's §VI "balancing").
//
// Before iterating, the paper scales rows by their norms and then columns by
// their norms; this improves the conditioning of the Krylov bases and hence
// the stability of the orthogonalization procedures. Solving the balanced
// system (Dr A Dc) y = Dr b and recovering x = Dc y is handled by the solver
// drivers via the scaling vectors returned here.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace cagmres::sparse {

/// Scaling produced by balance(): A_balanced = diag(row) * A * diag(col).
struct BalanceScaling {
  std::vector<double> row;  ///< left (row) scale factors
  std::vector<double> col;  ///< right (column) scale factors
};

/// Scales rows of `a` by 1/||row||_2, then columns by 1/||col||_2, in place.
/// Zero rows/columns keep scale 1. Returns the applied scaling.
BalanceScaling balance(CsrMatrix& a);

/// Applies b_scaled[i] = scaling.row[i] * b[i] (the rhs of the balanced
/// system).
void scale_rhs(const BalanceScaling& s, std::vector<double>& b);

/// Recovers x[i] = scaling.col[i] * y[i] from the balanced solution y.
void unscale_solution(const BalanceScaling& s, std::vector<double>& y);

}  // namespace cagmres::sparse
