// Structural statistics used by the experiment harnesses (paper Fig. 12).
#pragma once

#include <cstdint>
#include <string>

#include "sparse/csr.hpp"

namespace cagmres::sparse {

/// Summary statistics of a sparse matrix's structure.
struct MatrixStats {
  int n = 0;
  std::int64_t nnz = 0;
  double avg_row_nnz = 0.0;
  int max_row_nnz = 0;
  int bandwidth = 0;          ///< max |i - j| over stored entries
  double avg_bandwidth = 0.0; ///< mean |i - j|
  bool structurally_symmetric = false;
};

/// Computes MatrixStats for `a` (square matrices only for symmetry check).
MatrixStats compute_stats(const CsrMatrix& a);

/// One-line human-readable rendering (for bench headers).
std::string to_string(const MatrixStats& s);

}  // namespace cagmres::sparse
