// Coordinate-format builder: the convenient way to assemble a CsrMatrix.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace cagmres::sparse {

/// Accumulates (i, j, v) triplets and converts them to CSR. Duplicate
/// entries are summed (finite-element style assembly).
class CooBuilder {
 public:
  CooBuilder(int n_rows, int n_cols);

  /// Adds v to entry (i, j).
  void add(int i, int j, double v);

  std::int64_t size() const { return static_cast<std::int64_t>(rows_.size()); }

  /// Sorts, merges duplicates, and produces the CSR matrix. The builder is
  /// left empty afterwards.
  CsrMatrix build();

 private:
  int n_rows_;
  int n_cols_;
  std::vector<int> rows_;
  std::vector<int> cols_;
  std::vector<double> vals_;
};

}  // namespace cagmres::sparse
