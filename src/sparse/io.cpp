#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace cagmres::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  CAGMRES_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty stream");
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  CAGMRES_REQUIRE(banner == "%%matrixmarket", "missing MatrixMarket banner");
  CAGMRES_REQUIRE(object == "matrix" && format == "coordinate",
                  "only coordinate matrices supported");
  CAGMRES_REQUIRE(field == "real" || field == "integer" || field == "pattern",
                  "only real/integer/pattern fields supported");
  const bool pattern = (field == "pattern");
  const bool symmetric = (symmetry == "symmetric");
  const bool skew = (symmetry == "skew-symmetric");
  CAGMRES_REQUIRE(symmetric || skew || symmetry == "general",
                  "unsupported symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  long long rows = 0, cols = 0, entries = 0;
  sizes >> rows >> cols >> entries;
  CAGMRES_REQUIRE(rows > 0 && cols > 0 && entries >= 0, "bad size line");

  CooBuilder builder(static_cast<int>(rows), static_cast<int>(cols));
  for (long long k = 0; k < entries; ++k) {
    CAGMRES_REQUIRE(static_cast<bool>(std::getline(in, line)),
                    "truncated matrix file");
    std::istringstream entry(line);
    long long i = 0, j = 0;
    double v = 1.0;
    entry >> i >> j;
    if (!pattern) entry >> v;
    CAGMRES_REQUIRE(1 <= i && i <= rows && 1 <= j && j <= cols,
                    "entry index out of range");
    builder.add(static_cast<int>(i - 1), static_cast<int>(j - 1), v);
    if ((symmetric || skew) && i != j) {
      builder.add(static_cast<int>(j - 1), static_cast<int>(i - 1),
                  skew ? -v : v);
    }
  }
  return builder.build();
}

CsrMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  CAGMRES_REQUIRE(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(const CsrMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n_rows << " " << a.n_cols << " " << a.nnz() << "\n";
  out.precision(17);
  for (int i = 0; i < a.n_rows; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      out << (i + 1) << " " << (a.col_idx[static_cast<std::size_t>(k)] + 1)
          << " " << a.vals[static_cast<std::size_t>(k)] << "\n";
    }
  }
}

void write_matrix_market(const CsrMatrix& a, const std::string& path) {
  std::ofstream out(path);
  CAGMRES_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(a, out);
}

std::vector<double> read_vector(std::istream& in) {
  std::vector<double> x;
  std::string line;
  bool mm_header = false;
  bool sizes_read = false;
  long long expected = -1;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '%') {
      if (!mm_header && lower(line).rfind("%%matrixmarket", 0) == 0) {
        CAGMRES_REQUIRE(lower(line).find("array") != std::string::npos,
                        "vector file must be MatrixMarket array format");
        mm_header = true;
      }
      continue;
    }
    std::istringstream row(line);
    if (mm_header && !sizes_read) {
      long long rows = 0, cols = 0;
      row >> rows >> cols;
      CAGMRES_REQUIRE(rows > 0 && cols == 1, "expected an n x 1 array");
      expected = rows;
      x.reserve(static_cast<std::size_t>(rows));
      sizes_read = true;
      continue;
    }
    double v = 0.0;
    while (row >> v) x.push_back(v);
  }
  CAGMRES_REQUIRE(expected < 0 || static_cast<long long>(x.size()) == expected,
                  "vector file shorter than its header claims");
  CAGMRES_REQUIRE(!x.empty(), "empty vector file");
  return x;
}

std::vector<double> read_vector(const std::string& path) {
  std::ifstream in(path);
  CAGMRES_REQUIRE(in.good(), "cannot open " + path);
  return read_vector(in);
}

void write_vector(const std::vector<double>& x, std::ostream& out) {
  out << "%%MatrixMarket matrix array real general\n";
  out << x.size() << " 1\n";
  out.precision(17);
  for (const double v : x) out << v << "\n";
}

void write_vector(const std::vector<double>& x, const std::string& path) {
  std::ofstream out(path);
  CAGMRES_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_vector(x, out);
}

}  // namespace cagmres::sparse
