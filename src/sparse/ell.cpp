#include "sparse/ell.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cagmres::sparse {

EllMatrix to_ell(const CsrMatrix& a) {
  EllMatrix out;
  out.n_rows = a.n_rows;
  out.n_cols = a.n_cols;
  int width = 0;
  for (int i = 0; i < a.n_rows; ++i) width = std::max(width, a.row_nnz(i));
  out.width = width;
  const std::size_t slots =
      static_cast<std::size_t>(a.n_rows) * static_cast<std::size_t>(width);
  out.col_idx.resize(slots);
  out.vals.assign(slots, 0.0);
  for (int i = 0; i < a.n_rows; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const int len = a.row_nnz(i);
    for (int k = 0; k < width; ++k) {
      const std::size_t dst =
          static_cast<std::size_t>(k) * a.n_rows + static_cast<std::size_t>(i);
      if (k < len) {
        out.col_idx[dst] = a.col_idx[static_cast<std::size_t>(lo) + k];
        out.vals[dst] = a.vals[static_cast<std::size_t>(lo) + k];
      } else {
        // Pad with a self-reference and zero value: always a safe read.
        out.col_idx[dst] = std::min(i, a.n_cols - 1);
      }
    }
  }
  return out;
}

void spmv(const EllMatrix& a, const double* x, double* y) {
  // Parallelize over rows; each thread walks its rows' slots serially, so
  // the per-row accumulation order (and hence the result) is fixed.
#pragma omp parallel for schedule(static) if (a.n_rows > 1 << 13)
  for (int i = 0; i < a.n_rows; ++i) {
    double acc = 0.0;
    for (int k = 0; k < a.width; ++k) {
      const std::size_t slot =
          static_cast<std::size_t>(k) * a.n_rows + static_cast<std::size_t>(i);
      acc += a.vals[slot] * x[a.col_idx[slot]];
    }
    y[i] = acc;
  }
}

double padding_ratio(const EllMatrix& a, std::int64_t nnz) {
  if (a.stored_slots() == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz) / static_cast<double>(a.stored_slots());
}

}  // namespace cagmres::sparse
