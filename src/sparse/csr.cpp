#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cagmres::sparse {

void CsrMatrix::validate() const {
  CAGMRES_REQUIRE(row_ptr.size() == static_cast<std::size_t>(n_rows) + 1,
                  "row_ptr size mismatch");
  CAGMRES_REQUIRE(row_ptr.front() == 0, "row_ptr[0] != 0");
  for (int i = 0; i < n_rows; ++i) {
    const auto lo = row_ptr[static_cast<std::size_t>(i)];
    const auto hi = row_ptr[static_cast<std::size_t>(i) + 1];
    CAGMRES_REQUIRE(lo <= hi, "row_ptr not monotone");
    for (auto k = lo; k < hi; ++k) {
      const int c = col_idx[static_cast<std::size_t>(k)];
      CAGMRES_REQUIRE(0 <= c && c < n_cols, "column index out of range");
      if (k > lo) {
        CAGMRES_REQUIRE(col_idx[static_cast<std::size_t>(k) - 1] < c,
                        "columns not strictly sorted within row");
      }
    }
  }
  CAGMRES_REQUIRE(col_idx.size() == static_cast<std::size_t>(nnz()),
                  "col_idx size mismatch");
  CAGMRES_REQUIRE(vals.size() == static_cast<std::size_t>(nnz()),
                  "vals size mismatch");
}

double CsrMatrix::at(int i, int j) const {
  const auto lo = row_ptr[static_cast<std::size_t>(i)];
  const auto hi = row_ptr[static_cast<std::size_t>(i) + 1];
  const auto* begin = col_idx.data() + lo;
  const auto* end = col_idx.data() + hi;
  const auto* it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return vals[static_cast<std::size_t>(lo + (it - begin))];
}

void spmv(const CsrMatrix& a, const double* x, double* y) {
  // Rows are independent; per-row accumulation is serial, so the result is
  // bitwise identical for any thread count.
#pragma omp parallel for schedule(static) if (a.n_rows > 1 << 13)
  for (int i = 0; i < a.n_rows; ++i) {
    double acc = 0.0;
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      acc += a.vals[static_cast<std::size_t>(k)] *
             x[a.col_idx[static_cast<std::size_t>(k)]];
    }
    y[i] = acc;
  }
}

void spmv_transpose(const CsrMatrix& a, const double* x, double* y) {
  for (int j = 0; j < a.n_cols; ++j) y[j] = 0.0;
  for (int i = 0; i < a.n_rows; ++i) {
    const double xi = x[i];
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      y[a.col_idx[static_cast<std::size_t>(k)]] +=
          a.vals[static_cast<std::size_t>(k)] * xi;
    }
  }
}

CsrMatrix extract_rows(const CsrMatrix& a, const std::vector<int>& rows) {
  CsrMatrix out;
  out.n_rows = static_cast<int>(rows.size());
  out.n_cols = a.n_cols;
  out.row_ptr.resize(rows.size() + 1);
  out.row_ptr[0] = 0;
  std::int64_t nnz = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    nnz += a.row_nnz(rows[r]);
    out.row_ptr[r + 1] = nnz;
  }
  out.col_idx.resize(static_cast<std::size_t>(nnz));
  out.vals.resize(static_cast<std::size_t>(nnz));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const int i = rows[r];
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto len = a.row_nnz(i);
    std::copy_n(a.col_idx.data() + lo, len,
                out.col_idx.data() + out.row_ptr[r]);
    std::copy_n(a.vals.data() + lo, len, out.vals.data() + out.row_ptr[r]);
  }
  return out;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, const std::vector<int>& p) {
  CAGMRES_REQUIRE(a.n_rows == a.n_cols, "symmetric permutation needs square A");
  CAGMRES_REQUIRE(static_cast<int>(p.size()) == a.n_rows, "permutation size");
  const int n = a.n_rows;
  std::vector<int> inv(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    CAGMRES_REQUIRE(0 <= p[static_cast<std::size_t>(i)] &&
                        p[static_cast<std::size_t>(i)] < n &&
                        inv[static_cast<std::size_t>(p[static_cast<std::size_t>(i)])] < 0,
                    "p is not a permutation");
    inv[static_cast<std::size_t>(p[static_cast<std::size_t>(i)])] = i;
  }
  CsrMatrix out;
  out.n_rows = n;
  out.n_cols = n;
  out.row_ptr.resize(static_cast<std::size_t>(n) + 1);
  out.row_ptr[0] = 0;
  for (int i = 0; i < n; ++i) {
    out.row_ptr[static_cast<std::size_t>(i) + 1] =
        out.row_ptr[static_cast<std::size_t>(i)] +
        a.row_nnz(p[static_cast<std::size_t>(i)]);
  }
  out.col_idx.resize(static_cast<std::size_t>(out.row_ptr.back()));
  out.vals.resize(static_cast<std::size_t>(out.row_ptr.back()));
  std::vector<std::pair<int, double>> buf;
  for (int i = 0; i < n; ++i) {
    const int src = p[static_cast<std::size_t>(i)];
    const auto lo = a.row_ptr[static_cast<std::size_t>(src)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(src) + 1];
    buf.clear();
    for (auto k = lo; k < hi; ++k) {
      buf.emplace_back(inv[static_cast<std::size_t>(
                           a.col_idx[static_cast<std::size_t>(k)])],
                       a.vals[static_cast<std::size_t>(k)]);
    }
    std::sort(buf.begin(), buf.end());
    auto dst = out.row_ptr[static_cast<std::size_t>(i)];
    for (const auto& [c, v] : buf) {
      out.col_idx[static_cast<std::size_t>(dst)] = c;
      out.vals[static_cast<std::size_t>(dst)] = v;
      ++dst;
    }
  }
  return out;
}

CsrMatrix transpose(const CsrMatrix& a) {
  CsrMatrix out;
  out.n_rows = a.n_cols;
  out.n_cols = a.n_rows;
  out.row_ptr.assign(static_cast<std::size_t>(a.n_cols) + 1, 0);
  for (const int c : a.col_idx) ++out.row_ptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < out.row_ptr.size(); ++i) {
    out.row_ptr[i] += out.row_ptr[i - 1];
  }
  out.col_idx.resize(static_cast<std::size_t>(a.nnz()));
  out.vals.resize(static_cast<std::size_t>(a.nnz()));
  std::vector<std::int64_t> next(out.row_ptr.begin(), out.row_ptr.end() - 1);
  for (int i = 0; i < a.n_rows; ++i) {
    const auto lo = a.row_ptr[static_cast<std::size_t>(i)];
    const auto hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    for (auto k = lo; k < hi; ++k) {
      const int c = a.col_idx[static_cast<std::size_t>(k)];
      const auto dst = next[static_cast<std::size_t>(c)]++;
      out.col_idx[static_cast<std::size_t>(dst)] = i;
      out.vals[static_cast<std::size_t>(dst)] = a.vals[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

double frobenius_norm(const CsrMatrix& a) {
  double acc = 0.0;
  for (const double v : a.vals) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace cagmres::sparse
