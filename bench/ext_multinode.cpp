// Extension experiment (paper §VII's named future work): project CA-GMRES
// vs GMRES onto GPUs spread across multiple compute nodes, on the shared
// Machine::set_topology tier model (peer links inside a node, PCIe to the
// host, an InfiniBand-class hop for anything that crosses nodes) — the
// same machine scale_sweep and the solvers charge, so the numbers compose.
//
// Expected shape: as communication gets more expensive, the CA-GMRES
// advantage GROWS — the latency terms it eliminates (per-iteration
// reductions, per-SpMV halo exchanges) are exactly the ones the network
// amplifies. On the multi-node shapes CA-GMRES runs once with the
// hierarchical two-stage collectives (the default) and once with the flat
// fold forced, so the table also shows what the one-message-per-node
// reductions buy at each depth.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

int main(int argc, char** argv) {
  Options opts(
      "ext_multinode — CA-GMRES vs GMRES when the GPUs sit on multiple "
      "compute nodes (shared Machine topology tiers)");
  bench::add_matrix_options(opts, "cant");
  opts.add("s", "15", "CA-GMRES block size");
  opts.add("tol", "1e-4", "relative residual tolerance");
  opts.add("max_restarts", "6", "restart cap for the timing runs");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = bench::load_matrix(opts);
  const std::string name = opts.get("matrix");
  const int m = bench::default_m(name);
  bench::print_header("Extension — multi-node projection: " + name, a);

  const std::vector<double> b = bench::make_rhs(
      a.n_rows, static_cast<std::uint64_t>(opts.get_int("seed")));

  Table table({"topology", "ng", "solver", "peer KB", "net KB", "net msgs",
               "Ortho/Res", "SpMV|MPK/Res", "Total/Res", "CA speedup"});

  struct Topo {
    const char* label;
    sim::Topology t;
  };
  const Topo topologies[] = {
      {"1 node x 3 GPUs", {1, 3}},
      {"2 nodes x 3 GPUs", {2, 3}},
      {"4 nodes x 3 GPUs", {4, 3}},
  };

  for (const Topo& tp : topologies) {
    const int ng = tp.t.n_devices();
    // Node-first KWY split so halo edges concentrate inside nodes.
    const core::Problem p = core::make_problem(
        a, b, ng, graph::parse_ordering(bench::default_ordering(name)), true,
        7, tp.t.n_nodes);
    core::SolverOptions so;
    so.m = m;
    so.tol = opts.get_double("tol");
    so.max_restarts = opts.get_int("max_restarts");

    sim::Machine mg(tp.t);
    const auto rg = core::gmres(mg, p, so).stats;
    const double gper = rg.restarts ? rg.time_total / rg.restarts : 0.0;
    table.add_row(
        {tp.label, std::to_string(ng), "GMRES",
         Table::fmt(rg.traffic.peer_bytes / 1024.0, 1),
         Table::fmt(rg.traffic.net_bytes / 1024.0, 1),
         Table::fmt_int(rg.traffic.net_msgs),
         bench::ms(rg.restarts ? rg.time_ortho_total() / rg.restarts : 0),
         bench::ms(rg.restarts ? rg.time_spmv / rg.restarts : 0),
         bench::ms(gper), "1.00"});

    so.s = opts.get_int("s");
    so.reorthogonalize = true;
    // CA-GMRES with the hierarchical collectives (the nodes > 1 default),
    // then with the flat per-device fold forced, to price the two-stage
    // reductions at this depth. On one node the knob is inert: skip the
    // duplicate row.
    for (const bool hier : tp.t.n_nodes > 1 ? std::vector<bool>{true, false}
                                            : std::vector<bool>{true}) {
      sim::Machine mc(tp.t);
      mc.set_hier_reduce(hier);
      const auto rc = core::ca_gmres(mc, p, so).stats;
      const double cper = rc.restarts ? rc.time_total / rc.restarts : 0.0;
      table.add_row(
          {tp.label, std::to_string(ng),
           tp.t.n_nodes > 1 ? (hier ? "CA-GMRES hier" : "CA-GMRES flat")
                            : "CA-GMRES",
           Table::fmt(rc.traffic.peer_bytes / 1024.0, 1),
           Table::fmt(rc.traffic.net_bytes / 1024.0, 1),
           Table::fmt_int(rc.traffic.net_msgs),
           bench::ms(rc.restarts ? rc.time_ortho_total() / rc.restarts : 0),
           bench::ms(rc.restarts ? (rc.time_spmv + rc.time_mpk) / rc.restarts
                                 : 0),
           bench::ms(cper),
           cper > 0 ? Table::fmt(gper / cper, 2) : "-"});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "the CA advantage should grow with node count: remote messages add\n"
      "network latency to exactly the reductions CA-GMRES aggregates, and\n"
      "the hierarchical fold caps them at one inter-node message per node.\n");
  return 0;
}
