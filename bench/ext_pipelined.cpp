// Extension experiment: communication HIDING vs communication AVOIDING.
//
// The paper's footnote 5 reports trying pipelined GMRES (Ghysels et al.,
// ref [19]) and seeing no significant improvement on their node. This bench
// puts depth-1 pipelined GMRES head to head with CGS-GMRES and
// CA-GMRES(s=10) while scaling the PCIe latency — the regime where each
// strategy pays off becomes visible:
//  - at low latency all three are close (the paper's observation);
//  - as latency grows, pipelining hides one reduction round per iteration,
//    but CA-GMRES, which eliminates whole communication phases, wins more.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/pipelined.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

int main(int argc, char** argv) {
  Options opts(
      "ext_pipelined — pipelined (latency-hiding) GMRES vs CGS-GMRES vs "
      "CA-GMRES under scaled PCIe latency");
  bench::add_matrix_options(opts, "cant");
  opts.add("ng", "3", "simulated GPUs");
  opts.add("s", "10", "CA-GMRES block size");
  opts.add("tol", "1e-4", "relative residual tolerance");
  opts.add("max_restarts", "6", "restart cap for the timing runs");
  opts.add("latency_scale", "1,4,16", "PCIe latency multipliers to sweep");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = bench::load_matrix(opts);
  const std::string name = opts.get("matrix");
  const int m = bench::default_m(name);
  const int ng = opts.get_int("ng");
  bench::print_header("Extension — pipelined vs CA: " + name, a);

  const std::vector<double> b = bench::make_rhs(
      a.n_rows, static_cast<std::uint64_t>(opts.get_int("seed")));
  const core::Problem p = core::make_problem(
      a, b, ng, graph::parse_ordering(bench::default_ordering(name)), true, 7);

  Table table({"latency x", "solver", "rest", "Orth/Res", "SpMV|MPK/Res",
               "Total/Res", "vs GMRES"});
  for (const int lat : opts.get_int_list("latency_scale")) {
    sim::PerfModel pm;
    pm.pcie_latency_s *= lat;

    core::SolverOptions so;
    so.m = m;
    so.tol = opts.get_double("tol");
    so.max_restarts = opts.get_int("max_restarts");

    double gmres_per = 0.0;
    auto row = [&](const char* label, const core::SolveStats& st) {
      const double per = st.restarts ? st.time_total / st.restarts : 0.0;
      if (std::string(label) == "GMRES (cgs)") gmres_per = per;
      table.add_row(
          {std::to_string(lat) + "x", label, std::to_string(st.restarts),
           bench::ms(st.restarts ? st.time_ortho_total() / st.restarts : 0),
           bench::ms(st.restarts
                         ? (st.time_spmv + st.time_mpk) / st.restarts
                         : 0),
           bench::ms(per),
           per > 0 && gmres_per > 0 ? Table::fmt(gmres_per / per, 2) : "-"});
    };

    {
      sim::Machine mach(ng, pm);
      row("GMRES (cgs)", core::gmres(mach, p, so).stats);
    }
    {
      sim::Machine mach(ng, pm);
      row("pipelined", core::pipelined_gmres(mach, p, so).stats);
    }
    {
      core::SolverOptions ca = so;
      ca.s = opts.get_int("s");
      ca.reorthogonalize = true;
      sim::Machine mach(ng, pm);
      row("CA-GMRES", core::ca_gmres(mach, p, ca).stats);
    }
    table.add_separator();
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
