// Measures what the numerical health monitors (core/health.hpp) cost in
// simulated time. The free monitors (false-convergence guard, stagnation
// watchdog, budgets) are host-side scans of numbers the solver already has
// and must charge nothing; the condition monitor charges one Gram
// condition-number sample per `kappa_every` committed blocks, and the table
// shows how that overhead scales with the cadence.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

core::SolveStats run(const core::Problem& p, int ng,
                     const core::SolverOptions& so) {
  sim::Machine machine(ng);
  return core::ca_gmres(machine, p, so).stats;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "health_overhead — simulated-time cost of the numerical health "
      "monitors at different condition-sampling cadences");
  bench::add_matrix_options(opts, "cant", "0.5");
  opts.add("ng", "3", "simulated GPUs");
  opts.add("s", "10", "CA-GMRES block size");
  opts.add("m", "", "restart length (default: the paper's per-matrix value)");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = bench::load_matrix(opts);
  const std::vector<double> b =
      bench::make_rhs(a.n_rows, opts.get_int("seed"));
  const int ng = opts.get_int("ng");
  const core::Problem p =
      core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);

  core::SolverOptions base;
  base.s = opts.get_int("s");
  base.m = opts.get("m").empty() ? bench::default_m(opts.get("matrix"))
                                 : opts.get_int("m");

  bench::print_header("health monitor overhead", a);
  Table table({"config", "time (ms)", "overhead", "iters", "kappa samples",
               "events", "ladder steps"});

  const core::SolveStats off = run(p, ng, base);
  table.add_row({"monitors off", bench::ms(off.time_total), "--",
                 Table::fmt_int(off.iterations), "0", "0", "0"});

  // Free monitors only: identical simulated time is the expected result.
  core::SolverOptions watch = base;
  watch.health.monitor_residual_gap = true;
  watch.health.monitor_stagnation = true;
  const core::SolveStats w = run(p, ng, watch);
  table.add_row({"watchdogs (free)", bench::ms(w.time_total),
                 Table::fmt((w.time_total / off.time_total - 1.0) * 100.0, 2) +
                     "%",
                 Table::fmt_int(w.iterations), "0",
                 Table::fmt_int(static_cast<long long>(w.health_events.size())),
                 Table::fmt_int(w.ladder_steps)});

  for (const int every : {8, 4, 2, 1}) {
    core::SolverOptions cond = watch;
    cond.health.monitor_condition = true;
    cond.health.condition_sample_every = every;
    const core::SolveStats c = run(p, ng, cond);
    // One sample per `every` committed blocks.
    const long long samples =
        (static_cast<long long>(c.block_sizes.size()) + every - 1) / every;
    char name[64];
    std::snprintf(name, sizeof(name), "+kappa every %d", every);
    table.add_row(
        {name, bench::ms(c.time_total),
         Table::fmt((c.time_total / off.time_total - 1.0) * 100.0, 2) + "%",
         Table::fmt_int(c.iterations), Table::fmt_int(samples),
         Table::fmt_int(static_cast<long long>(c.health_events.size())),
         Table::fmt_int(c.ladder_steps)});
  }

  std::printf("%s\n", table.str().c_str());
  return 0;
}
