// Reproduces paper Fig. 7: total communication volume of the matrix powers
// kernel over m = 100 generated vectors, as a function of s, normalized by
// the volume of 100 standard SpMV halo exchanges.
//
// Volume per MPK call = gather |union_d delta^(d,1:s)| + scatter
// sum_d |delta^(d,1:s)|; calls per 100 vectors = 100/s. Expected shape:
// the per-call boundary grows sublinearly for banded matrices, so the total
// stays flat-to-slightly-increasing; for the circuit matrix under its
// natural ordering it explodes.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "graph/partition.hpp"
#include "mpk/plan.hpp"

using namespace cagmres;

namespace {

void run_matrix(const std::string& name, double scale, int ng, int m,
                const std::vector<int>& svals) {
  const sparse::CsrMatrix a = sparse::make_paper_matrix(name, scale);
  bench::print_header("Fig 7 — MPK communication volume: " + name, a);

  Table table([&] {
    std::vector<std::string> h = {"ordering"};
    for (const int s : svals) h.push_back("s=" + std::to_string(s));
    return h;
  }());

  for (const auto& oname : {"natural", "rcm", "kway"}) {
    const graph::Ordering scheme = graph::parse_ordering(oname);
    const graph::Partition part = graph::make_partition(a, ng, scheme, 1);
    const sparse::CsrMatrix ap = sparse::permute_symmetric(a, part.perm);

    // Baseline: SpMV (s = 1) volume over m iterations.
    const mpk::MpkPlan base = mpk::build_mpk_plan(ap, part.offsets, 1);
    const double spmv_vol =
        static_cast<double>(base.stats.total_volume()) * m;

    std::vector<std::string> row = {oname};
    for (const int s : svals) {
      const mpk::MpkPlan plan = mpk::build_mpk_plan(ap, part.offsets, s);
      const double calls = static_cast<double>(m) / s;
      const double vol =
          static_cast<double>(plan.stats.total_volume()) * calls;
      row.push_back(Table::fmt(vol / spmv_vol, 2));
    }
    table.add_row(row);
  }
  std::printf("volume normalized to %d standard SpMV exchanges (1.00)\n%s\n",
              m, table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig07_comm_volume — paper Fig. 7: MPK total communication volume vs "
      "s, normalized to SpMV");
  opts.add("scale", "1.0", "matrix scale factor");
  opts.add("ng", "3", "number of simulated GPUs");
  opts.add("m", "100", "basis vectors per measurement (paper: 100)");
  opts.add("s", "1,2,3,4,5,6,7,8", "s values to sweep");
  if (!opts.parse(argc, argv)) return 0;

  const std::vector<int> svals = opts.get_int_list("s");
  run_matrix("cant", opts.get_double("scale"), opts.get_int("ng"),
             opts.get_int("m"), svals);
  run_matrix("g3_circuit", opts.get_double("scale"), opts.get_int("ng"),
             opts.get_int("m"), svals);
  return 0;
}
