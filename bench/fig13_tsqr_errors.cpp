// Reproduces paper Fig. 13: TSQR error norms inside CA-GMRES(20,30) and
// CA-GMRES(30,30) on the G3_circuit analog, 1 GPU, for each
// orthogonalization procedure.
//
// Reported per method: avg/min/max over all TSQR calls of
//   ||I - Q^T Q||  (orthogonality),
//   ||V - QR||/||V|| (factorization), and
//   ||(V - QR)./V|| (element-wise),
// plus the condition number of the factored block (the kappa(B) driver of
// the error ordering). Expected shape: CAQR ~ eps << MGS < CGS <
// CholQR/SVQR (squared-kappa effect); CGS needs "2x" (reorthogonalization)
// to converge; all factorization errors ~ eps.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

struct Agg {
  double mn = 1e300, mx = 0.0, sum = 0.0;
  int count = 0;
  void add(double v) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
    ++count;
  }
  std::string str() const {
    if (count == 0) return "-";
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.1e [%.0e,%.0e]", sum / count, mn, mx);
    return buf;
  }
};

void run_case(const sparse::CsrMatrix& a, int s, int m, int max_restarts,
              std::uint64_t seed) {
  std::printf("--- CA-GMRES(%d, %d), G3-analog, 1 GPU ---\n\n", s, m);
  Table table({"method", "passes", "kappa(V) avg", "||I-Q'Q|| avg [min,max]",
               "||V-QR||/||V||", "||(V-QR)./V||", "conv"});

  struct Cfg {
    const char* label;
    ortho::Method method;
    bool reorth;
  };
  const Cfg cfgs[] = {
      {"mgs", ortho::Method::kMgs, false},
      {"cgs", ortho::Method::kCgs, false},
      {"2x cgs", ortho::Method::kCgs, true},
      {"cholqr", ortho::Method::kCholQr, false},
      {"2x cholqr", ortho::Method::kCholQr, true},
      {"svqr", ortho::Method::kSvqr, false},
      {"caqr", ortho::Method::kCaqr, false},
  };

  const std::vector<double> b = bench::make_rhs(a.n_rows, seed);
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kKway, true, 7);

  for (const Cfg& cfg : cfgs) {
    sim::Machine machine(1);
    core::SolverOptions opts;
    opts.m = m;
    opts.s = s;
    opts.tsqr = cfg.method;
    opts.reorthogonalize = cfg.reorth;
    opts.max_restarts = max_restarts;
    opts.collect_tsqr_errors = true;
    core::SolveResult res;
    std::string conv = "?";
    try {
      res = core::ca_gmres(machine, p, opts);
      if (res.stats.converged) {
        conv = "yes";
      } else {
        // Report the residual reduction reached within the restart cap.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0e (cap)",
                      res.stats.final_residual /
                          std::max(res.stats.initial_residual, 1e-300));
        conv = buf;
      }
    } catch (const Error&) {
      conv = "FAIL";
    }
    Agg kappa, orth, fact, elem;
    for (const auto& sample : res.stats.tsqr_errors) {
      kappa.add(sample.kappa_block);
      orth.add(sample.errors.orthogonality);
      fact.add(sample.errors.factorization);
      elem.add(sample.errors.elementwise);
    }
    char kbuf[32];
    std::snprintf(kbuf, sizeof kbuf, "%.1e",
                  kappa.count ? kappa.sum / kappa.count : 0.0);
    table.add_row({cfg.label, std::to_string(orth.count), kbuf, orth.str(),
                   fact.str(), elem.str(), conv});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig13_tsqr_errors — paper Fig. 13: TSQR error norms inside "
      "CA-GMRES(20,30) and CA-GMRES(30,30) per orthogonalization method");
  opts.add("scale", "0.5", "G3-analog scale factor");
  opts.add("seed", "1234", "rhs seed");
  opts.add("restarts", "12", "restart cap (enough TSQR samples, bounded time)");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a =
      sparse::make_paper_matrix("g3_circuit", opts.get_double("scale"));
  bench::print_header("Fig 13 — TSQR errors in CA-GMRES", a);
  run_case(a, 20, 30, opts.get_int("restarts"),
           static_cast<std::uint64_t>(opts.get_int("seed")));
  run_case(a, 30, 30, opts.get_int("restarts"),
           static_cast<std::uint64_t>(opts.get_int("seed")));
  return 0;
}
