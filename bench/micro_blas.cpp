// Real wall-clock microbenchmarks (google-benchmark) of the host kernels
// that execute the simulated device's numerics: BLAS-1/2/3, the panel QR,
// and SpMV in both formats. These measure THIS machine, not the paper's —
// they exist to keep the reference kernels honest (vectorization, layout)
// and to catch performance regressions in the library itself.
#include <benchmark/benchmark.h>

#include "blas/blas1.hpp"
#include "blas/blas2.hpp"
#include "blas/blas3.hpp"
#include "blas/lapack.hpp"
#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/generators.hpp"

using namespace cagmres;

namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Rng rng(seed);
  for (auto& e : v) e = rng.normal();
  return v;
}

void BM_Dot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto x = random_vec(static_cast<std::size_t>(n), 1);
  const auto y = random_vec(static_cast<std::size_t>(n), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blas::dot(n, x.data(), y.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Axpy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto x = random_vec(static_cast<std::size_t>(n), 1);
  auto y = random_vec(static_cast<std::size_t>(n), 2);
  for (auto _ : state) {
    blas::axpy(n, 1.000001, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Axpy)->Arg(1 << 16)->Arg(1 << 20);

void BM_GemvT_TallSkinny(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 30;
  const auto a = random_vec(static_cast<std::size_t>(n) * k, 3);
  const auto x = random_vec(static_cast<std::size_t>(n), 4);
  std::vector<double> y(static_cast<std::size_t>(k));
  for (auto _ : state) {
    blas::gemv_t(n, k, 1.0, a.data(), n, x.data(), 0.0, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * 2);
}
BENCHMARK(BM_GemvT_TallSkinny)->Arg(1 << 14)->Arg(1 << 18);

void BM_Gram_TallSkinny(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 30;
  const auto a = random_vec(static_cast<std::size_t>(n) * k, 5);
  std::vector<double> c(static_cast<std::size_t>(k) * k);
  for (auto _ : state) {
    blas::syrk_tn(n, k, a.data(), n, c.data(), k);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * k);
}
BENCHMARK(BM_Gram_TallSkinny)->Arg(1 << 14)->Arg(1 << 18);

void BM_PanelQr(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 30;
  Rng rng(6);
  blas::DMat v(n, k);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < n; ++i) v(i, j) = rng.normal();
  }
  blas::DMat q, r;
  for (auto _ : state) {
    blas::qr_explicit(v, q, r);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() * 4ll * n * k * k);
}
BENCHMARK(BM_PanelQr)->Arg(1 << 12)->Arg(1 << 15);

void BM_SpmvCsr(benchmark::State& state) {
  const auto a = sparse::make_laplace3d(40, 40, static_cast<int>(state.range(0)));
  const auto x = random_vec(static_cast<std::size_t>(a.n_rows), 7);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));
  for (auto _ : state) {
    sparse::spmv(a, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvCsr)->Arg(10)->Arg(40);

void BM_SpmvEll(benchmark::State& state) {
  const auto a = sparse::make_laplace3d(40, 40, static_cast<int>(state.range(0)));
  const auto e = sparse::to_ell(a);
  const auto x = random_vec(static_cast<std::size_t>(a.n_rows), 8);
  std::vector<double> y(static_cast<std::size_t>(a.n_rows));
  for (auto _ : state) {
    sparse::spmv(e, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvEll)->Arg(10)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
